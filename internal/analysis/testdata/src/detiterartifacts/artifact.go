// Package detiterartifacts is the fixture corpus for the detiter
// analyzer's file-scope rule: outside the experiments package, only
// files that write artifacts are in scope.
package detiterartifacts

import "os"

func dump(path string, rows map[string]string) error {
	var b []byte
	for k, v := range rows { // want `range over map\[string\]string iterates in randomized order`
		b = append(b, k...)
		b = append(b, v...)
	}
	return os.WriteFile(path, b, 0o644)
}
