// Package docknobok is the conforming serving-tree corpus: every
// exported knob field carries a doc comment, so the analyzer stays
// silent even under a shard import path.
package docknobok

// Options configures a fixture front-end.
type Options struct {
	// Vnodes is the ring density per backend.
	Vnodes int
	// LoadFactor bounds per-backend overload.
	LoadFactor float64
	// unexported fields stay free-form.
	depth int
}

// TierConfig is a nested knob struct whose embedded field rides on the
// embedded type's docs.
type TierConfig struct {
	Options
	// Name labels the tier.
	Name string
}

// use keeps the unexported plumbing referenced.
func use() int { return Options{}.depth }
