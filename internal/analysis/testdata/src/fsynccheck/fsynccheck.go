// Package fsynccheck is the fixture corpus for the fsynccheck
// analyzer: renames that commit unsynced data and must flag, plus a
// documented //quq:fsync-ok suppression for a rename that moves no new
// bytes.
package fsynccheck

import "os"

// commitUnsynced publishes a temp file that was never fsynced: a crash
// after the rename can leave the final name pointing at torn content.
func commitUnsynced(tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		//quq:errdrop-ok fixture keeps the failing shape minimal
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `os.Rename in commitUnsynced`
}

// renameOnly has no write at all in scope; the analyzer still flags it
// because the enclosing function gives no durability evidence.
func renameOnly(tmp, final string) error {
	return os.Rename(tmp, final) // want `os.Rename in renameOnly`
}

// quarantine renames an already-committed file aside; the suppression
// documents why no Sync is needed.
func quarantine(path string) error {
	//quq:fsync-ok the source file was fsynced when it was committed; this rename moves no new data
	return os.Rename(path, path+".quarantined")
}
