package snapstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"quq/internal/data"
	"quq/internal/ptq"
	"quq/internal/vit"
)

// testModel calibrates one cheap ViT-Nano QUQ model, the fixture every
// codec test encodes.
func testModel(t *testing.T) *ptq.QuantizedModel {
	t.Helper()
	cfg := vit.ViTNano
	m := vit.New(cfg, 99)
	calib := data.CalibrationSet(cfg, 2, 1)
	qm, err := ptq.Quantize(m, ptq.NewQUQ(), ptq.CalibOptions{Bits: 6, Regime: ptq.Partial, Images: calib})
	if err != nil {
		t.Fatal(err)
	}
	return qm
}

const testKey = "ViT-Nano/QUQ/w6a6/partial"

func TestSnapshotRoundtrip(t *testing.T) {
	qm := testModel(t)
	blob, digest, err := Encode(testKey, qm)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if e.Key != testKey {
		t.Fatalf("key %q, want %q", e.Key, testKey)
	}
	if e.Config != "ViT-Nano" {
		t.Fatalf("config %q, want ViT-Nano", e.Config)
	}
	if e.Digest != digest {
		t.Fatalf("decoded digest %s, want %s", e.Digest, digest)
	}
	got := e.Model
	if got.Bits != qm.Bits || got.Regime != qm.Regime || got.Method != qm.Method {
		t.Fatalf("metadata mismatch: got %d/%v/%s want %d/%v/%s",
			got.Bits, got.Regime, got.Method, qm.Bits, qm.Regime, qm.Method)
	}
	if len(got.Acts) != len(qm.Acts) {
		t.Fatalf("decoded %d activation quantizers, want %d", len(got.Acts), len(qm.Acts))
	}
	if (got.WeightParams == nil) != (qm.WeightParams == nil) {
		t.Fatalf("weight-params presence diverged")
	}

	// The decoded model must answer byte-identically to the original.
	img := data.Images(vit.ViTNano, 1, 7)[0]
	want := qm.Forward(img).Data()
	have := got.Forward(img).Data()
	if len(want) != len(have) {
		t.Fatalf("logit length %d, want %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("logit %d diverged: %v vs %v", i, have[i], want[i])
		}
	}

	// Canonical encoding: re-encoding the decoded model reproduces the
	// file image bit-for-bit — the property anti-entropy digest
	// comparison rests on.
	blob2, digest2, err := Encode(testKey, got)
	if err != nil {
		t.Fatal(err)
	}
	if digest2 != digest || !bytes.Equal(blob, blob2) {
		t.Fatalf("re-encode is not canonical: digest %s vs %s", digest2, digest)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	qm := testModel(t)
	blob, _, err := Encode(testKey, qm)
	if err != nil {
		t.Fatal(err)
	}
	flip := append([]byte(nil), blob...)
	flip[len(flip)-1] ^= 0x40 // payload bit flip
	if _, err := Decode(flip); err == nil {
		t.Fatal("decode accepted a bit-flipped payload")
	}
	if _, err := Decode(blob[:len(blob)/2]); err == nil {
		t.Fatal("decode accepted a truncated file")
	}
	short := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(short[44:52], uint64(len(blob))) // lie about payload length
	if _, err := Decode(short); err == nil {
		t.Fatal("decode accepted a payload-length mismatch")
	}
	badVersion := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(badVersion[8:12], 9)
	if _, err := Decode(badVersion); err == nil {
		t.Fatal("decode accepted an unknown version")
	}
}

func TestStoreWriteLoadQuarantine(t *testing.T) {
	qm := testModel(t)
	blob, digest, err := Encode(testKey, qm)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, swept, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if swept != 0 {
		t.Fatalf("fresh dir swept %d temp files", swept)
	}
	if err := s.WriteBlob(testKey, blob); err != nil {
		t.Fatal(err)
	}
	loaded, quarantined, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if quarantined != 0 || len(loaded) != 1 {
		t.Fatalf("load: %d entries, %d quarantined; want 1, 0", len(loaded), quarantined)
	}
	if loaded[0].Entry.Digest != digest || loaded[0].Entry.Key != testKey {
		t.Fatalf("loaded %s (%s), want %s (%s)", loaded[0].Entry.Key, loaded[0].Entry.Digest, testKey, digest)
	}

	// Corrupt the file on disk: the next load must quarantine it, not
	// serve it and not fail the whole load.
	path := PathFor(dir, testKey)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, quarantined, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if quarantined != 1 || len(loaded) != 0 {
		t.Fatalf("corrupt load: %d entries, %d quarantined; want 0, 1", len(loaded), quarantined)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}

	// A crash mid-write leaves *.tmp litter; reopening sweeps it.
	if err := os.WriteFile(filepath.Join(dir, "half-written.qsnap.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, swept, err = Open(dir); err != nil || swept != 1 {
		t.Fatalf("reopen swept %d temp files (err %v), want 1", swept, err)
	}
}

// FuzzSnapshotDecode drives the decoder with truncated, bit-flipped and
// arbitrary inputs. Two properties must hold on every input: Decode
// never panics, and it never returns a payload whose embedded digest
// does not match the payload bytes — corruption is rejected by the hash
// check, not by luck in the parser.
func FuzzSnapshotDecode(f *testing.F) {
	cfg := vit.ViTNano
	m := vit.New(cfg, 99)
	calib := data.CalibrationSet(cfg, 2, 1)
	qm, err := ptq.Quantize(m, ptq.NewQUQ(), ptq.CalibOptions{Bits: 6, Regime: ptq.Partial, Images: calib})
	if err != nil {
		f.Fatal(err)
	}
	blob, _, err := Encode(testKey, qm)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:headerBytes])
	flip := append([]byte(nil), blob...)
	flip[headerBytes+4] ^= 0x80
	f.Add(flip)
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data) // must never panic
		if err != nil {
			return
		}
		if e == nil || e.Model == nil {
			t.Fatal("nil entry without error")
		}
		payload := data[headerBytes:]
		sum := sha256.Sum256(payload)
		if hex.EncodeToString(sum[:]) != e.Digest {
			t.Fatalf("decoder accepted digest %s but payload hashes to %x", e.Digest, sum)
		}
		var want [32]byte
		copy(want[:], data[12:44])
		if want != sum {
			t.Fatal("decoder accepted a payload whose embedded digest does not match")
		}
	})
}
