// Package lockcheckok is the conforming corpus for the lockcheck
// analyzer: every critical section is short, pure, and released on
// every path, so the analyzer must report nothing here.
package lockcheckok

import "sync"

type store struct {
	mu   sync.RWMutex
	data map[string]int
	out  chan int
}

func (s *store) get(k string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[k]
	return v, ok
}

func (s *store) set(k string, v int) {
	s.mu.Lock()
	s.data[k] = v
	s.mu.Unlock()
}

// snapshotThenSend copies under the lock and blocks only after release
// — the pattern the serving stack's metrics writers use.
func (s *store) snapshotThenSend() {
	s.mu.RLock()
	vals := make([]int, 0, len(s.data))
	for _, v := range s.data {
		vals = append(vals, v)
	}
	s.mu.RUnlock()
	for _, v := range vals {
		s.out <- v
	}
}

// twoLocks pairs each mutex independently.
func twoLocks(a, b *sync.Mutex, n *int) {
	a.Lock()
	*n++
	a.Unlock()
	b.Lock()
	*n++
	b.Unlock()
}
