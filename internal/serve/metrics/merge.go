package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file makes the text exposition mergeable: quq-shard scrapes every
// backend's /metrics, parses each with ParseText, folds them together
// with Merge, and renders one deterministic cluster view with WriteText.
//
// ParseText understands exactly the dialect the instruments in this
// package emit — `# HELP` lines, scalar samples, `_bucket{le="..."}`
// cumulative histogram lines, `_sum`/`_count` lines, and
// `{quantile="..."}` lines (which are parsed but dropped: quantiles are
// not mergeable, so Merge recomputes them from the merged buckets with
// the same interpolation live Histograms use).

// scalarSample is one counter or gauge value. The text format does not
// distinguish the two kinds; merging sums either way, which is the
// cluster-view semantics for both (total requests, total queue depth).
type scalarSample struct {
	help  string
	value float64
}

// histSample is one parsed histogram family.
type histSample struct {
	help   string
	bounds []float64 // ascending finite upper bounds
	cum    []uint64  // cumulative counts per bound, plus +Inf last
	sum    float64
	count  uint64
}

// Exposition is a parsed metrics page: a mergeable, order-independent
// view of every sample it carried.
type Exposition struct {
	scalars map[string]*scalarSample
	hists   map[string]*histSample
}

// NewExposition returns an empty exposition (useful as a Merge
// accumulator).
func NewExposition() *Exposition {
	return &Exposition{
		scalars: map[string]*scalarSample{},
		hists:   map[string]*histSample{},
	}
}

// Scalar returns the value of a counter or gauge sample.
func (e *Exposition) Scalar(name string) (float64, bool) {
	s, ok := e.scalars[name]
	if !ok {
		return 0, false
	}
	return s.value, true
}

// HistCount returns the observation count of a histogram family.
func (e *Exposition) HistCount(name string) (uint64, bool) {
	h, ok := e.hists[name]
	if !ok {
		return 0, false
	}
	return h.count, true
}

// Names lists every sample family in sorted order.
func (e *Exposition) Names() []string {
	names := make([]string, 0, len(e.scalars)+len(e.hists))
	for n := range e.scalars {
		names = append(names, n)
	}
	for n := range e.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseText parses one metrics page in this package's exposition dialect.
// Unknown comment lines are skipped; a malformed sample line is an error
// (a half-parsed page must not silently merge as zeros).
func ParseText(r io.Reader) (*Exposition, error) {
	e := NewExposition()
	help := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, _ := strings.Cut(rest, " ")
			help[name] = text
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if err := e.parseSample(line, help); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// parseSample dispatches one non-comment line. Histogram sub-lines are
// recognized by their suffix: the writer emits buckets before
// `_sum`/`_count`, so by the time those suffixes appear the family
// already exists and cannot be mistaken for a scalar.
func (e *Exposition) parseSample(line string, help map[string]string) error {
	name, value, ok := strings.Cut(line, " ")
	if !ok {
		return fmt.Errorf("metrics: malformed sample line %q", line)
	}
	value = strings.TrimSpace(value)

	if base, label, ok := splitLabel(name); ok {
		switch {
		case strings.HasSuffix(base, "_bucket") && strings.HasPrefix(label, "le="):
			return e.parseBucket(strings.TrimSuffix(base, "_bucket"), label, value, help)
		case strings.HasPrefix(label, "quantile="):
			// Quantiles are recomputed from merged buckets; the sample is
			// validated for shape and dropped.
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("metrics: bad quantile value in %q: %w", line, err)
			}
			return nil
		case validScalarLabel(label):
			// A GaugeVec series (per-backend gauge). The full
			// name{label="value"} string is the merge key, so the same
			// series from two pages sums and distinct label values stay
			// distinct; sorted-name rendering keeps the family's lines
			// adjacent and deterministic.
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return fmt.Errorf("metrics: bad labelled scalar value in %q: %w", line, err)
			}
			e.scalars[name] = &scalarSample{value: v}
			return nil
		}
		return fmt.Errorf("metrics: unsupported labelled sample %q", line)
	}

	if base, ok := strings.CutSuffix(name, "_sum"); ok {
		if h := e.hists[base]; h != nil {
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return fmt.Errorf("metrics: bad _sum in %q: %w", line, err)
			}
			h.sum = v
			return nil
		}
	}
	if base, ok := strings.CutSuffix(name, "_count"); ok {
		if h := e.hists[base]; h != nil {
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return fmt.Errorf("metrics: bad _count in %q: %w", line, err)
			}
			h.count = n
			return nil
		}
	}

	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return fmt.Errorf("metrics: bad scalar value in %q: %w", line, err)
	}
	e.scalars[name] = &scalarSample{help: help[name], value: v}
	return nil
}

// validScalarLabel reports whether a label body is a single
// `key="quoted value"` pair — the only labelled-scalar shape the
// instruments in this package emit.
func validScalarLabel(label string) bool {
	key, val, ok := strings.Cut(label, "=")
	if !ok || key == "" || strings.ContainsAny(key, `{}", `) {
		return false
	}
	_, err := strconv.Unquote(val)
	return err == nil
}

// splitLabel splits `name{label="x"}` into name and `label="x"`.
func splitLabel(s string) (base, label string, ok bool) {
	i := strings.IndexByte(s, '{')
	if i < 0 || !strings.HasSuffix(s, "}") {
		return "", "", false
	}
	return s[:i], s[i+1 : len(s)-1], true
}

// parseBucket records one cumulative `name_bucket{le="bound"} n` line.
// The writer emits bounds in ascending order ending at +Inf, which is
// what histSample.cum relies on.
func (e *Exposition) parseBucket(name, label, value string, help map[string]string) error {
	boundStr, err := strconv.Unquote(strings.TrimPrefix(label, "le="))
	if err != nil {
		return fmt.Errorf("metrics: bad le label %q: %w", label, err)
	}
	n, err := strconv.ParseUint(value, 10, 64)
	if err != nil {
		return fmt.Errorf("metrics: bad bucket count for %s{le=%q}: %w", name, boundStr, err)
	}
	h := e.hists[name]
	if h == nil {
		h = &histSample{help: help[name]}
		e.hists[name] = h
	}
	if boundStr == "+Inf" {
		h.cum = append(h.cum, n)
		return nil
	}
	bound, err := strconv.ParseFloat(boundStr, 64)
	if err != nil {
		return fmt.Errorf("metrics: bad le bound %q: %w", boundStr, err)
	}
	if len(h.bounds) > 0 && bound <= h.bounds[len(h.bounds)-1] {
		return fmt.Errorf("metrics: histogram %s bounds not ascending at %g", name, bound)
	}
	if len(h.cum) != len(h.bounds) {
		return fmt.Errorf("metrics: histogram %s has buckets after +Inf", name)
	}
	h.bounds = append(h.bounds, bound)
	h.cum = append(h.cum, n)
	return nil
}

// Merge folds src into e: scalars and histogram buckets/sums/counts add
// up. Histograms must share a bucket layout — in this system every
// backend runs the same binary with the same fixed layouts, so a
// mismatch means the scrape mixed incompatible versions and is an error
// rather than a silent mis-merge.
func (e *Exposition) Merge(src *Exposition) error {
	for name, s := range src.scalars {
		dst, ok := e.scalars[name]
		if !ok {
			e.scalars[name] = &scalarSample{help: s.help, value: s.value}
			continue
		}
		dst.value += s.value
		if dst.help == "" {
			dst.help = s.help
		}
	}
	for name, h := range src.hists {
		dst, ok := e.hists[name]
		if !ok {
			e.hists[name] = &histSample{
				help:   h.help,
				bounds: append([]float64(nil), h.bounds...),
				cum:    append([]uint64(nil), h.cum...),
				sum:    h.sum,
				count:  h.count,
			}
			continue
		}
		if len(dst.bounds) != len(h.bounds) {
			return fmt.Errorf("metrics: histogram %s bucket layouts differ (%d vs %d bounds)",
				name, len(dst.bounds), len(h.bounds))
		}
		for i, b := range h.bounds {
			if dst.bounds[i] != b {
				return fmt.Errorf("metrics: histogram %s bucket bound %d differs (%g vs %g)",
					name, i, dst.bounds[i], b)
			}
		}
		for i := range h.cum {
			dst.cum[i] += h.cum[i]
		}
		dst.sum += h.sum
		dst.count += h.count
		if dst.help == "" {
			dst.help = h.help
		}
	}
	return nil
}

// WriteText renders the exposition in the same dialect the live
// instruments emit, sorted by name, so a merged cluster view is
// byte-deterministic regardless of scrape arrival order.
func (e *Exposition) WriteText(w io.Writer) error {
	for _, name := range e.Names() {
		if s, ok := e.scalars[name]; ok {
			if err := writeHelp(w, name, s.help); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", name, formatScalar(s.value)); err != nil {
				return err
			}
			continue
		}
		h := e.hists[name]
		if err := writeHelp(w, name, h.help); err != nil {
			return err
		}
		counts := h.bucketCounts()
		for i, bound := range h.bounds {
			//quq:label-ok le values are the parsed histogram's own bucket bounds — bounded cardinality
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", bound), h.cum[i]); err != nil {
				return err
			}
		}
		if len(h.cum) > len(h.bounds) {
			//quq:label-ok le is the constant +Inf terminal bucket — bounded cardinality
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, "+Inf", h.cum[len(h.cum)-1]); err != nil {
				return err
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			v := bucketQuantile(h.bounds, counts, h.count, q)
			//quq:label-ok quantile values come from the fixed three-element list above — bounded cardinality
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, h.sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, h.count); err != nil {
			return err
		}
	}
	return nil
}

// bucketCounts converts the cumulative bucket counts back to per-bucket
// counts (len bounds+1, overflow last) for quantile estimation.
func (h *histSample) bucketCounts() []uint64 {
	counts := make([]uint64, len(h.bounds)+1)
	var prev uint64
	for i, c := range h.cum {
		if i >= len(counts) {
			break
		}
		if c >= prev {
			counts[i] = c - prev
		}
		prev = c
	}
	return counts
}

// formatScalar renders counters and gauges as the integers they are in
// this system, falling back to %g for genuinely fractional merges.
func formatScalar(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
