package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory on disk
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by filename
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module without the
// go/packages machinery (the build is offline and dependency-free).
// Module-internal imports resolve directly against the module directory;
// standard-library imports go through the stdlib source importer, which
// type-checks GOROOT sources and therefore needs no pre-compiled export
// data.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the enclosing module of dir (by walking up to
// go.mod) and prepares a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			mod := modulePath(data)
			if mod == "" {
				return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
			}
			fset := token.NewFileSet()
			return &Loader{
				Fset:       fset,
				ModulePath: mod,
				ModuleDir:  root,
				std:        importer.ForCompiler(fset, "source", nil),
				pkgs:       map[string]*Package{},
				loading:    map[string]bool{},
			}, nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// DirImportPath maps a directory inside the module to its import path.
func (l *Loader) DirImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir under the given
// import path (normally DirImportPath(dir); tests override it to place
// a fixture corpus at an arbitrary path). Results are cached per import
// path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.Importer: module-internal
// paths load from disk, everything else defers to the stdlib source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// ExpandPatterns resolves command-line package patterns relative to the
// module: "./..." style patterns walk the tree (skipping testdata,
// hidden and underscore directories, and the artifacts tree), plain
// paths name a single package directory. The result is a sorted list of
// directories containing at least one non-test Go file.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		if !recursive {
			ok, err := hasGoFiles(pat)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("analysis: no Go files in %s", pat)
			}
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "artifacts" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ok, err := hasGoFiles(path)
			if err != nil {
				return err
			}
			if ok {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
