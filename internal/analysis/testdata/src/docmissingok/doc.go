// Package docmissingok demonstrates a conforming package comment: one
// file opens with the godoc-conventional sentence, and that satisfies
// the check for the whole package.
package docmissingok

// Ok does nothing interesting.
func Ok() int { return 4 }
