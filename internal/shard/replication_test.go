package shard_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"quq/internal/serve"
	"quq/internal/shard"
)

// repBackend is a fake quq-serve that records, per endpoint, which keys
// it saw and which replica slot each request was stamped with.
type repBackend struct {
	srv          *httptest.Server
	healthy      atomic.Bool
	modelsBroken atomic.Bool

	mu         sync.Mutex
	quantizes  []string // "key@replica" per /v1/quantize
	classifies []string
	entries    []serve.EntryInfo // what /models reports
}

func (b *repBackend) record(list *[]string, r *http.Request) string {
	var sel struct {
		Model  string `json:"model"`
		Method string `json:"method"`
		Bits   int    `json:"bits"`
		Regime string `json:"regime"`
	}
	//quq:errdrop-ok test fake; malformed bodies surface as a zero key in assertions
	_ = json.NewDecoder(r.Body).Decode(&sel)
	key, _ := serve.KeyFromWire(sel.Model, sel.Method, sel.Bits, sel.Regime)
	replica := r.Header.Get(serve.ReplicaHeader)
	if replica == "" {
		replica = "-"
	}
	stamp := key.String() + "@" + replica
	b.mu.Lock()
	*list = append(*list, stamp)
	b.mu.Unlock()
	return key.String()
}

func (b *repBackend) seen(list *[]string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), *list...)
}

func newRepBackend(t *testing.T) *repBackend {
	t.Helper()
	b := &repBackend{}
	b.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/quantize", func(w http.ResponseWriter, r *http.Request) {
		key := b.record(&b.quantizes, r)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"key":%q,"cached":false,"build_ms":1}`, key)
	})
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		key := b.record(&b.classifies, r)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"key":%q,"results":[]}`, key)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !b.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		if b.modelsBroken.Load() {
			http.Error(w, "wedged", http.StatusInternalServerError)
			return
		}
		b.mu.Lock()
		entries := append([]serve.EntryInfo(nil), b.entries...)
		b.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		//quq:errdrop-ok test fake writing to an in-memory recorder
		_ = json.NewEncoder(w).Encode(map[string]any{"entries": entries})
	})
	b.srv = httptest.NewServer(mux)
	t.Cleanup(b.srv.Close)
	return b
}

// newRepFront builds a replicating front over the fakes, probing and
// retries disabled so health transitions are explicit.
func newRepFront(t *testing.T, replicas int, backends ...*repBackend) *shard.Front {
	t.Helper()
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.srv.URL
	}
	f := shard.New(shard.Options{
		Backends:      addrs,
		Replicas:      replicas,
		ProbeInterval: -1,
		Retries:       -1,
		RetryBackoff:  1,
	})
	t.Cleanup(f.Close)
	return f
}

func byAddr(backends []*repBackend) map[string]*repBackend {
	m := make(map[string]*repBackend, len(backends))
	for _, b := range backends {
		m[b.srv.URL] = b
	}
	return m
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestReplicatedQuantizeFansOut: with R=2 a quantize lands on both
// replica owners — each stamped with its slot — and on nobody else; the
// relayed response is the primary's, epoch-stamped.
func TestReplicatedQuantizeFansOut(t *testing.T) {
	backends := []*repBackend{newRepBackend(t), newRepBackend(t), newRepBackend(t)}
	f := newRepFront(t, 2, backends...)
	addrs := byAddr(backends)

	const key = "ViT-S/QUQ/w6a6/partial"
	owners := f.Ring().OwnerN(key, 2)
	if len(owners) != 2 {
		t.Fatalf("OwnerN returned %d owners, want 2", len(owners))
	}
	w := post(t, f.Handler(), "/v1/quantize", `{"model":"ViT-S","method":"QUQ","bits":6}`)
	if w.Code != http.StatusOK {
		t.Fatalf("replicated quantize: status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get(shard.BackendHeader); got != owners[0].Addr() {
		t.Fatalf("relayed from %s, want primary %s", got, owners[0].Addr())
	}
	if got := w.Header().Get(shard.EpochHeader); got != "3" {
		t.Fatalf("epoch header = %q, want \"3\" (three seed joins)", got)
	}
	for slot, owner := range owners {
		want := fmt.Sprintf("%s@%d", key, slot)
		got := addrs[owner.Addr()].seen(&addrs[owner.Addr()].quantizes)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("replica %d (%s) saw %v, want [%s]", slot, owner.Addr(), got, want)
		}
	}
	for _, b := range backends {
		if b.srv.URL != owners[0].Addr() && b.srv.URL != owners[1].Addr() {
			if n := len(b.seen(&b.quantizes)); n != 0 {
				t.Fatalf("non-owner saw %d quantizes", n)
			}
		}
	}
}

// TestReplicatedReadFailsOverToReplica: with R=2, killing the primary
// owner routes reads to the surviving replica — the backend that
// already holds the calibration — not to an arbitrary ring successor.
func TestReplicatedReadFailsOverToReplica(t *testing.T) {
	backends := []*repBackend{newRepBackend(t), newRepBackend(t), newRepBackend(t)}
	f := newRepFront(t, 2, backends...)
	addrs := byAddr(backends)

	const key = "DeiT-B/QUQ/w6a6/partial"
	body := `{"model":"DeiT-B","method":"QUQ","bits":6}`
	owners := f.Ring().OwnerN(key, 2)

	w := post(t, f.Handler(), "/v1/classify", body)
	if w.Code != http.StatusOK {
		t.Fatalf("classify: status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get(shard.BackendHeader); got != owners[0].Addr() {
		t.Fatalf("read served by %s, want primary %s", got, owners[0].Addr())
	}
	if got := addrs[owners[0].Addr()].seen(&addrs[owners[0].Addr()].classifies); len(got) != 1 || !strings.HasSuffix(got[0], "@0") {
		t.Fatalf("primary read stamps %v, want one @0", got)
	}

	addrs[owners[0].Addr()].srv.Close() // kill the primary
	w = post(t, f.Handler(), "/v1/classify", body)
	if w.Code != http.StatusOK {
		t.Fatalf("failover classify: status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get(shard.BackendHeader); got != owners[1].Addr() {
		t.Fatalf("failover read served by %s, want surviving replica %s", got, owners[1].Addr())
	}
	if got := addrs[owners[1].Addr()].seen(&addrs[owners[1].Addr()].classifies); len(got) != 1 || !strings.HasSuffix(got[0], "@1") {
		t.Fatalf("replica read stamps %v, want one @1", got)
	}
}

// TestAdminJoinAndLeave: joins admit live backends without a restart
// (epoch bump, ring membership, topology gauges), re-joins are
// idempotent, and leaves evict. Unknown leaves are 404, empty bodies
// 400.
func TestAdminJoinAndLeave(t *testing.T) {
	b0, b1 := newRepBackend(t), newRepBackend(t)
	f := newRepFront(t, 1, b0, b1)

	late := newRepBackend(t)
	w := post(t, f.Handler(), "/admin/join", fmt.Sprintf(`{"addr":%q}`, late.srv.URL))
	if w.Code != http.StatusOK {
		t.Fatalf("join: status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Epoch uint64 `json:"epoch"`
		Added bool   `json:"added"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Added || resp.Epoch != 3 {
		t.Fatalf("join = %+v, want added at epoch 3", resp)
	}
	if got := len(f.Ring().Backends()); got != 3 {
		t.Fatalf("ring backends after join = %d, want 3", got)
	}
	if got := f.Metrics().RingBackends.Value(); got != 3 {
		t.Fatalf("quq_shard_ring_backends = %d, want 3", got)
	}
	if got := f.Metrics().RingEpoch.Value(); got != 3 {
		t.Fatalf("quq_shard_ring_epoch = %d, want 3", got)
	}
	if _, ok := f.Metrics().Inflight.Value(late.srv.URL); !ok {
		t.Fatal("joined backend missing from the inflight gauge vec")
	}

	// Idempotent re-join: no epoch movement.
	w = post(t, f.Handler(), "/admin/join", fmt.Sprintf(`{"addr":%q}`, late.srv.URL))
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Added || resp.Epoch != 3 {
		t.Fatalf("re-join = %+v, want not-added at epoch 3", resp)
	}

	w = post(t, f.Handler(), "/admin/leave", fmt.Sprintf(`{"addr":%q}`, late.srv.URL))
	if w.Code != http.StatusOK {
		t.Fatalf("leave: status %d: %s", w.Code, w.Body)
	}
	if got := len(f.Ring().Backends()); got != 2 {
		t.Fatalf("ring backends after leave = %d, want 2", got)
	}
	if _, ok := f.Metrics().Inflight.Value(late.srv.URL); ok {
		t.Fatal("left backend still in the inflight gauge vec")
	}
	if w := post(t, f.Handler(), "/admin/leave", `{"addr":"127.0.0.1:9"}`); w.Code != http.StatusNotFound {
		t.Fatalf("unknown leave: status %d, want 404", w.Code)
	}
	if w := post(t, f.Handler(), "/admin/join", `{}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty join: status %d, want 400", w.Code)
	}
}

// TestAdminDrainHandsOffKeys: a drain re-warms the leaver's ready
// entries on their post-departure owners before removal; not-ready
// entries are skipped; the member is gone from /cluster afterwards.
func TestAdminDrainHandsOffKeys(t *testing.T) {
	backends := []*repBackend{newRepBackend(t), newRepBackend(t), newRepBackend(t)}
	f := newRepFront(t, 1, backends...)
	addrs := byAddr(backends)

	const key = "Swin-T/QUQ/w6a6/partial"
	owner, _ := f.Ring().Owner(key)
	drainee := addrs[owner.Addr()]
	drainee.entries = []serve.EntryInfo{
		{Key: key, Ready: true},
		{Key: "ViT-S/BaseQ/w8a8/full", Ready: false}, // mid-build: not handed off
	}
	newOwners := f.Ring().OwnerNSkip(key, 1, owner.Addr())
	if len(newOwners) != 1 || newOwners[0].Addr() == owner.Addr() {
		t.Fatalf("bad post-departure owners %v", newOwners)
	}

	w := post(t, f.Handler(), "/admin/drain", fmt.Sprintf(`{"addr":%q}`, owner.Addr()))
	if w.Code != http.StatusOK {
		t.Fatalf("drain: status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Epoch uint64 `json:"epoch"`
		Moved int    `json:"moved"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Moved != 1 || resp.Epoch != 4 {
		t.Fatalf("drain = %+v, want 1 key moved at epoch 4", resp)
	}
	warmed := addrs[newOwners[0].Addr()].seen(&addrs[newOwners[0].Addr()].quantizes)
	if len(warmed) != 1 || warmed[0] != key+"@0" {
		t.Fatalf("new owner warms = %v, want [%s@0]", warmed, key)
	}
	if f.Members().IsMember(owner.Addr()) {
		t.Fatal("drained backend still a member")
	}
	if got := f.Metrics().Handoffs.Value(); got != 1 {
		t.Fatalf("handoff counter = %d, want 1", got)
	}

	// The key's new home serves it from now on.
	w = post(t, f.Handler(), "/v1/classify", `{"model":"Swin-T","method":"QUQ","bits":6}`)
	if got := w.Header().Get(shard.BackendHeader); got != newOwners[0].Addr() {
		t.Fatalf("post-drain read served by %s, want %s", got, newOwners[0].Addr())
	}
}

// TestAdminDrainAbortsOnFailure: an unreachable /models on the drainee
// fails the handoff; the drain aborts with the member intact and the
// epoch unmoved, and a retry after recovery succeeds.
func TestAdminDrainAbortsOnFailure(t *testing.T) {
	b0, b1 := newRepBackend(t), newRepBackend(t)
	f := newRepFront(t, 1, b0, b1)

	b0.modelsBroken.Store(true)
	w := post(t, f.Handler(), "/admin/drain", fmt.Sprintf(`{"addr":%q}`, b0.srv.URL))
	if w.Code != http.StatusBadGateway {
		t.Fatalf("failed drain: status %d, want 502", w.Code)
	}
	if !f.Members().IsMember(b0.srv.URL) {
		t.Fatal("failed drain removed the member")
	}
	if got := f.Members().Epoch(); got != 2 {
		t.Fatalf("epoch after failed drain = %d, want 2 (unchanged)", got)
	}

	b0.modelsBroken.Store(false)
	w = post(t, f.Handler(), "/admin/drain", fmt.Sprintf(`{"addr":%q}`, b0.srv.URL))
	if w.Code != http.StatusOK {
		t.Fatalf("drain retry: status %d: %s", w.Code, w.Body)
	}
	if f.Members().IsMember(b0.srv.URL) {
		t.Fatal("retried drain left the member behind")
	}
	if w := post(t, f.Handler(), "/admin/drain", fmt.Sprintf(`{"addr":%q}`, b0.srv.URL)); w.Code != http.StatusNotFound {
		t.Fatalf("drain of gone member: status %d, want 404", w.Code)
	}
}

// TestClusterViewRendersTopology: /cluster carries the epoch, the
// replication factor and the placement parameters a client ring replica
// needs, with backends sorted by address.
func TestClusterViewRendersTopology(t *testing.T) {
	backends := []*repBackend{newRepBackend(t), newRepBackend(t)}
	f := newRepFront(t, 2, backends...)

	req := httptest.NewRequest(http.MethodGet, "/cluster", nil)
	w := httptest.NewRecorder()
	f.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/cluster status %d", w.Code)
	}
	if got := w.Header().Get(shard.EpochHeader); got != "2" {
		t.Fatalf("epoch header = %q, want \"2\"", got)
	}
	var view shard.ClusterView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 2 || view.Replicas != 2 || view.VNodes != 128 || view.MaxLoadFactor != 1.25 {
		t.Fatalf("view = %+v, want epoch 2, replicas 2, vnodes 128, load factor 1.25", view)
	}
	if len(view.Backends) != 2 {
		t.Fatalf("view backends = %d, want 2", len(view.Backends))
	}
	for i := 1; i < len(view.Backends); i++ {
		if view.Backends[i-1].Addr >= view.Backends[i].Addr {
			t.Fatal("cluster view backends not sorted by address")
		}
	}
	for _, b := range view.Backends {
		if !b.Healthy || b.Draining {
			t.Fatalf("fresh member %s reported unhealthy or draining", b.Addr)
		}
	}
}
