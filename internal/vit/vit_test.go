package vit

import (
	"bytes"
	"math"
	"testing"

	"quq/internal/rng"
	"quq/internal/tensor"
)

// testImage draws a standardized random image for cfg.
func testImage(cfg Config, seed uint64) *tensor.Tensor {
	src := rng.New(seed)
	img := tensor.New(cfg.Channels, cfg.ImageSize, cfg.ImageSize)
	for i := range img.Data() {
		img.Data()[i] = src.Gauss(0, 1)
	}
	return img
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range append(append([]Config{}, ZooConfigs...), ViTNano) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := ViTSmall
	bad.PatchSize = 5 // 32 % 5 != 0
	if bad.Validate() == nil {
		t.Error("accepted indivisible patch size")
	}
	bad = ViTSmall
	bad.Heads = 5 // 96 % 5 != 0
	if bad.Validate() == nil {
		t.Error("accepted indivisible head count")
	}
	bad = SwinTiny
	bad.StageHeads = []int{2, 4} // length mismatch
	if bad.Validate() == nil {
		t.Error("accepted inconsistent Swin stages")
	}
}

func TestTokens(t *testing.T) {
	// 64 patches + class token + register token (+ distillation token).
	if ViTSmall.Tokens() != 66 {
		t.Errorf("ViT-S tokens = %d, want 66", ViTSmall.Tokens())
	}
	if DeiTSmall.Tokens() != 67 {
		t.Errorf("DeiT-S tokens = %d, want 67", DeiTSmall.Tokens())
	}
	if ViTNano.Tokens() != 17 {
		t.Errorf("ViT-Nano tokens = %d, want 17", ViTNano.Tokens())
	}
}

func TestPatchify(t *testing.T) {
	img := tensor.New(2, 4, 4)
	for i := range img.Data() {
		img.Data()[i] = float64(i)
	}
	p := Patchify(img, 2)
	if p.Dim(0) != 4 || p.Dim(1) != 8 {
		t.Fatalf("patchify shape %v", p.Shape())
	}
	// Patch (0,0): channel 0 pixels (0,0),(0,1),(1,0),(1,1) = 0,1,4,5
	// then channel 1 = 16,17,20,21.
	want := []float64{0, 1, 4, 5, 16, 17, 20, 21}
	for i, v := range p.Row(0) {
		if v != want[i] {
			t.Fatalf("patch 0 = %v, want %v", p.Row(0), want)
		}
	}
	// Patch (1,1): channel 0 pixels (2,2),(2,3),(3,2),(3,3) = 10,11,14,15.
	if p.Row(3)[0] != 10 || p.Row(3)[3] != 15 {
		t.Fatalf("patch 3 = %v", p.Row(3))
	}
}

func TestForwardShapesAndFiniteness(t *testing.T) {
	for _, cfg := range []Config{ViTSmall, DeiTSmall, SwinTiny, ViTNano} {
		m := New(cfg, 1)
		logits := m.Forward(testImage(cfg, 2), ForwardOpts{})
		if logits.Len() != cfg.Classes {
			t.Fatalf("%s: %d logits, want %d", cfg.Name, logits.Len(), cfg.Classes)
		}
		for _, v := range logits.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite logit", cfg.Name)
			}
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	m := New(ViTSmall, 3)
	img := testImage(ViTSmall, 4)
	a := m.Forward(img, ForwardOpts{})
	b := m.Forward(img, ForwardOpts{})
	if tensor.MSE(a, b) != 0 {
		t.Fatal("forward pass not deterministic")
	}
}

func TestForwardVariesAcrossInputs(t *testing.T) {
	// Synthetic-weight models must still discriminate inputs, or the
	// agreement metric would be vacuous.
	m := New(ViTSmall, 5)
	seen := map[int]bool{}
	for s := uint64(0); s < 12; s++ {
		seen[m.Forward(testImage(ViTSmall, 10+s), ForwardOpts{}).ArgMax()] = true
	}
	if len(seen) < 3 {
		t.Fatalf("argmax took only %d distinct values over 12 inputs", len(seen))
	}
}

func TestTapSitesCoverFigure1(t *testing.T) {
	m := New(ViTSmall, 6)
	sites := map[string]SiteKind{}
	m.Forward(testImage(ViTSmall, 7), ForwardOpts{
		Tap: func(s Site, x *tensor.Tensor) *tensor.Tensor {
			sites[s.Key()] = s.Kind
			return x
		},
	})
	// Every Figure 1 quantization point must be visited in each block.
	wantGreen := []string{"ln1.out", "attn.q", "attn.k", "attn.v", "attn.softmax_out", "attn.proj_in", "ln2.out", "mlp.gelu_out"}
	wantRed := []string{"attn.softmax_in", "attn.proj_out", "resid1.out", "mlp.gelu_in", "mlp.fc2_out", "resid2.out"}
	for b := 0; b < ViTSmall.Depth; b++ {
		for _, name := range wantGreen {
			key := Site{b, name, KindGEMMIn}.Key()
			if kind, ok := sites[key]; !ok || kind != KindGEMMIn {
				t.Errorf("site %s missing or wrong kind", key)
			}
		}
		for _, name := range wantRed {
			key := Site{b, name, KindActivation}.Key()
			if kind, ok := sites[key]; !ok || kind != KindActivation {
				t.Errorf("site %s missing or wrong kind", key)
			}
		}
	}
	for _, key := range []string{"b-1.patch.in", "b-1.embed.out", "b-1.head.in"} {
		if _, ok := sites[key]; !ok {
			t.Errorf("stem/head site %s missing", key)
		}
	}
}

func TestTapCanRewrite(t *testing.T) {
	// Zeroing the final head input must force logits to the head bias.
	m := New(ViTSmall, 8).(*ViT)
	img := testImage(ViTSmall, 9)
	logits := m.Forward(img, ForwardOpts{
		Tap: func(s Site, x *tensor.Tensor) *tensor.Tensor {
			if s.Name == "head.in" {
				return tensor.New(x.Shape()...)
			}
			return x
		},
	})
	for c, v := range logits.Data() {
		if math.Abs(v-m.Head.B[c]) > 1e-12 {
			t.Fatalf("rewritten head input ignored: logit[%d]=%v, bias=%v", c, v, m.Head.B[c])
		}
	}
}

func TestAttnSinkRowsAreDistributions(t *testing.T) {
	m := New(ViTSmall, 10)
	calls := 0
	m.Forward(testImage(ViTSmall, 11), ForwardOpts{
		Attn: func(blk int, attn *tensor.Tensor) {
			calls++
			if attn.Dim(1) != ViTSmall.Tokens() {
				t.Fatalf("attention width %d, want %d", attn.Dim(1), ViTSmall.Tokens())
			}
			for r := 0; r < attn.Dim(0); r++ {
				var s float64
				for _, v := range attn.Row(r) {
					if v < 0 {
						t.Fatal("negative attention probability")
					}
					s += v
				}
				if math.Abs(s-1) > 1e-9 {
					t.Fatalf("attention row sums to %v", s)
				}
			}
		},
	})
	if calls != ViTSmall.Depth {
		t.Fatalf("attention sink called %d times, want %d", calls, ViTSmall.Depth)
	}
}

func TestForEachWeightStable(t *testing.T) {
	for _, cfg := range []Config{DeiTSmall, SwinTiny} {
		m := New(cfg, 12)
		var a, b []string
		m.ForEachWeight(func(s Site, _ *Linear) { a = append(a, s.Key()) })
		m.ForEachWeight(func(s Site, _ *Linear) { b = append(b, s.Key()) })
		if len(a) == 0 {
			t.Fatalf("%s: no weights enumerated", cfg.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: weight enumeration unstable", cfg.Name)
			}
		}
		seen := map[string]bool{}
		for _, k := range a {
			if seen[k] {
				t.Fatalf("%s: duplicate weight site %s", cfg.Name, k)
			}
			seen[k] = true
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, cfg := range []Config{ViTSmall, SwinTiny} {
		m := New(cfg, 13)
		img := testImage(cfg, 14)
		before := m.Forward(img, ForwardOpts{})
		c := m.Clone()
		// Corrupt the clone's weights; the original must be unaffected.
		c.ForEachWeight(func(_ Site, l *Linear) { l.W.Fill(0) })
		after := m.Forward(img, ForwardOpts{})
		if tensor.MSE(before, after) != 0 {
			t.Fatalf("%s: clone shares storage with original", cfg.Name)
		}
		// And the clone must actually be changed.
		if tensor.MSE(c.Forward(img, ForwardOpts{}), before) == 0 {
			t.Fatalf("%s: clone corruption had no effect", cfg.Name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, cfg := range []Config{ViTNano, SwinTiny} {
		m := New(cfg, 15)
		var buf bytes.Buffer
		if err := Save(m, &buf); err != nil {
			t.Fatalf("%s: save: %v", cfg.Name, err)
		}
		m2, err := Load(cfg, &buf)
		if err != nil {
			t.Fatalf("%s: load: %v", cfg.Name, err)
		}
		img := testImage(cfg, 16)
		if tensor.MSE(m.Forward(img, ForwardOpts{}), m2.Forward(img, ForwardOpts{})) != 0 {
			t.Fatalf("%s: loaded model disagrees with original", cfg.Name)
		}
	}
}

func TestLoadRejectsWrongConfig(t *testing.T) {
	m := New(ViTNano, 17)
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(ViTSmall, &buf); err == nil {
		t.Fatal("loaded a ViT-Nano checkpoint into ViT-S")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(ViTNano, bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestWindowOrderIsPermutation(t *testing.T) {
	for _, shift := range []int{0, 2} {
		order := windowOrder(8, 4, shift)
		seen := make([]bool, 64)
		for _, o := range order {
			if o < 0 || o >= 64 || seen[o] {
				t.Fatalf("windowOrder(8,4,%d) not a permutation", shift)
			}
			seen[o] = true
		}
		inv := invertOrder(order)
		for i, o := range order {
			if inv[o] != i {
				t.Fatal("invertOrder wrong")
			}
		}
	}
}

func TestWindowOrderGroupsWindows(t *testing.T) {
	// Without shift, the first w² entries must be the top-left window.
	order := windowOrder(8, 4, 0)
	for i := 0; i < 16; i++ {
		y, x := order[i]/8, order[i]%8
		if y >= 4 || x >= 4 {
			t.Fatalf("entry %d = (%d,%d) escapes the top-left window", i, y, x)
		}
	}
}

func TestMergePatches(t *testing.T) {
	x := tensor.New(16, 2) // 4x4 grid, dim 2
	for i := 0; i < 16; i++ {
		x.Row(i)[0] = float64(i)
	}
	m := mergePatches(x, 4)
	if m.Dim(0) != 4 || m.Dim(1) != 8 {
		t.Fatalf("merge shape %v", m.Shape())
	}
	// Token 0 concatenates grid tokens 0, 1, 4, 5.
	got := []float64{m.Row(0)[0], m.Row(0)[2], m.Row(0)[4], m.Row(0)[6]}
	want := []float64{0, 1, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged token 0 gathers %v, want %v", got, want)
		}
	}
}

func TestSwinShiftChangesOutput(t *testing.T) {
	// With 2-block stages the second block shifts its windows; disabling
	// the shift (by permuting identically) must change the result —
	// i.e. the shift path is actually exercised.
	m := New(SwinTiny, 18)
	img := testImage(SwinTiny, 19)
	ref := m.Forward(img, ForwardOpts{})
	if ref.Len() != SwinTiny.Classes {
		t.Fatal("bad logit length")
	}
	// Sanity only: a second call is identical (no hidden state).
	if tensor.MSE(ref, m.Forward(img, ForwardOpts{})) != 0 {
		t.Fatal("Swin forward not deterministic")
	}
}

func TestDeiTDistTokenContributes(t *testing.T) {
	m := New(DeiTSmall, 20).(*ViT)
	img := testImage(DeiTSmall, 21)
	before := m.Forward(img, ForwardOpts{})
	for i := range m.Dist {
		m.Dist[i] += 0.5
	}
	after := m.Forward(img, ForwardOpts{})
	if tensor.MSE(before, after) == 0 {
		t.Fatal("distillation token does not influence DeiT output")
	}
}
