#include "textflag.h"

// func intGemmKernel4x4(c *[16]int64, a0, a1, a2, a3, bp *int64, k int)
//
// Four ymm accumulators, one per A row; each lane is one output column —
// the independent int64 accumulator chains. AVX2 has no packed 64×64
// multiply (VPMULLQ is AVX-512), so each k step synthesizes the low 64
// bits of the product from 32×32 unsigned partials:
//
//	lo64(a·b) = ((aH·bL + bH·aL) << 32) + aL·bL   (mod 2^64)
//
// exact for signed inputs because two's-complement multiplication agrees
// with unsigned multiplication modulo 2^64. The B panel row and its
// high-32 halves are loaded/shifted once per k step and shared across
// the four rows.
TEXT ·intGemmKernel4x4(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ bp+40(FP), SI
	MOVQ k+48(FP), CX

	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	TESTQ CX, CX
	JE    done

loop:
	VMOVDQU (SI), Y0          // B panel row: 4 int64 lanes
	VPSRLQ  $32, Y0, Y1       // bH per lane

	// row 0: Y4 += lo64(a0 * B)
	VPBROADCASTQ (R8), Y2
	VPSRLQ       $32, Y2, Y3
	VPMULUDQ     Y0, Y3, Y3   // aH*bL
	VPMULUDQ     Y1, Y2, Y8   // bH*aL
	VPADDQ       Y8, Y3, Y3
	VPSLLQ       $32, Y3, Y3
	VPMULUDQ     Y0, Y2, Y8   // aL*bL
	VPADDQ       Y8, Y3, Y3
	VPADDQ       Y3, Y4, Y4

	// row 1: Y5 += lo64(a1 * B)
	VPBROADCASTQ (R9), Y2
	VPSRLQ       $32, Y2, Y3
	VPMULUDQ     Y0, Y3, Y3
	VPMULUDQ     Y1, Y2, Y8
	VPADDQ       Y8, Y3, Y3
	VPSLLQ       $32, Y3, Y3
	VPMULUDQ     Y0, Y2, Y8
	VPADDQ       Y8, Y3, Y3
	VPADDQ       Y3, Y5, Y5

	// row 2: Y6 += lo64(a2 * B)
	VPBROADCASTQ (R10), Y2
	VPSRLQ       $32, Y2, Y3
	VPMULUDQ     Y0, Y3, Y3
	VPMULUDQ     Y1, Y2, Y8
	VPADDQ       Y8, Y3, Y3
	VPSLLQ       $32, Y3, Y3
	VPMULUDQ     Y0, Y2, Y8
	VPADDQ       Y8, Y3, Y3
	VPADDQ       Y3, Y6, Y6

	// row 3: Y7 += lo64(a3 * B)
	VPBROADCASTQ (R11), Y2
	VPSRLQ       $32, Y2, Y3
	VPMULUDQ     Y0, Y3, Y3
	VPMULUDQ     Y1, Y2, Y8
	VPADDQ       Y8, Y3, Y3
	VPSLLQ       $32, Y3, Y3
	VPMULUDQ     Y0, Y2, Y8
	VPADDQ       Y8, Y3, Y3
	VPADDQ       Y3, Y7, Y7

	ADDQ $32, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNE  loop

done:
	VMOVDQU Y4, (DI)
	VMOVDQU Y5, 32(DI)
	VMOVDQU Y6, 64(DI)
	VMOVDQU Y7, 96(DI)
	VZEROUPPER
	RET

// func intGemmKernel4x4Narrow(c *[16]int64, a0, a1, a2, a3, bp *int64, k int)
//
// Narrow-operand variant: every input value must fit in int32 (the
// dispatcher scans both operands before selecting this kernel). Each
// int64 lane's low dword then holds the exact two's-complement int32 of
// the value, so one VPMULDQ — signed 32×32→64 on the even dwords —
// yields the exact int64 product, replacing the three-multiply
// synthesis of the wide kernel. Pre-shifted QUB operands are ≤ ~2^22 in
// magnitude, so the integer datapath always takes this kernel.
TEXT ·intGemmKernel4x4Narrow(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ bp+40(FP), SI
	MOVQ k+48(FP), CX

	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	TESTQ CX, CX
	JE    ndone

nloop:
	VMOVDQU (SI), Y0          // B panel row: 4 int64 lanes, int32-valued

	VPBROADCASTQ (R8), Y2
	VPMULDQ      Y0, Y2, Y3   // exact a0*B per lane
	VPADDQ       Y3, Y4, Y4

	VPBROADCASTQ (R9), Y2
	VPMULDQ      Y0, Y2, Y3
	VPADDQ       Y3, Y5, Y5

	VPBROADCASTQ (R10), Y2
	VPMULDQ      Y0, Y2, Y3
	VPADDQ       Y3, Y6, Y6

	VPBROADCASTQ (R11), Y2
	VPMULDQ      Y0, Y2, Y3
	VPADDQ       Y3, Y7, Y7

	ADDQ $32, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNE  nloop

ndone:
	VMOVDQU Y4, (DI)
	VMOVDQU Y5, 32(DI)
	VMOVDQU Y6, 64(DI)
	VMOVDQU Y7, 96(DI)
	VZEROUPPER
	RET

// func cpuHasAVX2() bool
//
// CPUID leaf 1: ECX bit 27 (OSXSAVE) and bit 28 (AVX); XGETBV to confirm
// the OS saves xmm+ymm state (XCR0 bits 1 and 2); then CPUID leaf 7
// subleaf 0: EBX bit 5 (AVX2).
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx2
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx2
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	CMPL BX, $0x20
	JNE  noavx2
	MOVB $1, ret+0(FP)
	RET

noavx2:
	MOVB $0, ret+0(FP)
	RET
