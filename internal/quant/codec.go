package quant

import (
	"encoding/binary"
	"fmt"
	"math"
)

// paramsWireBytes is the fixed encoded size of Params: Bits u32, Mode
// u32, then four slots of {Enabled u8, Delta float64 bits, MaxMag u64}.
const paramsWireBytes = 4 + 4 + 4*(1+8+8)

// MarshalBinary encodes p in the fixed little-endian layout used by the
// snapshot store. The encoding is canonical: equal Params always
// produce identical bytes, which is what makes content-addressed
// snapshot digests comparable across replicas.
func (p *Params) MarshalBinary() ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("quant: marshal nil Params")
	}
	buf := make([]byte, 0, paramsWireBytes)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Mode))
	for _, s := range p.Slots {
		if s.Enabled {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Delta))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.MaxMag))
	}
	return buf, nil
}

// UnmarshalParams decodes the layout written by Params.MarshalBinary.
// It checks length and the Enabled byte strictly so corrupt snapshot
// payloads fail loudly instead of yielding a half-plausible quantizer.
func UnmarshalParams(data []byte) (*Params, error) {
	if len(data) != paramsWireBytes {
		return nil, fmt.Errorf("quant: params encoding is %d bytes, want %d", len(data), paramsWireBytes)
	}
	p := &Params{}
	p.Bits = int(binary.LittleEndian.Uint32(data[0:4]))
	p.Mode = Mode(binary.LittleEndian.Uint32(data[4:8]))
	off := 8
	for i := range p.Slots {
		switch data[off] {
		case 0:
			p.Slots[i].Enabled = false
		case 1:
			p.Slots[i].Enabled = true
		default:
			return nil, fmt.Errorf("quant: slot %d enabled byte is %d, want 0 or 1", i, data[off])
		}
		p.Slots[i].Delta = math.Float64frombits(binary.LittleEndian.Uint64(data[off+1 : off+9]))
		p.Slots[i].MaxMag = int64(binary.LittleEndian.Uint64(data[off+9 : off+17]))
		off += 17
	}
	return p, nil
}
