package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quq/internal/chaos"
)

// govUnderTest builds an enabled governor on a fake clock with the
// geometry the transition tests assume: window 100ms, 1..4 intra-op
// workers, MaxBatch 8, a 2-worker pool.
func govUnderTest(met *Metrics) (*Governor, *chaos.Fake) {
	clk := chaos.NewFake()
	g := NewGovernor(GovernorOptions{
		Window:     100 * time.Millisecond,
		MinIntraOp: 1,
		MaxIntraOp: 4,
		Clock:      clk,
	}, met)
	g.bind(8, 2)
	return g, clk
}

// TestGovernorTransitions drives the control law through fake-clock
// traces: every transition is a pure function of the recorded samples
// and the injected time, so each trace asserts the exact operating
// point after every observation.
func TestGovernorTransitions(t *testing.T) {
	type step struct {
		advance       time.Duration // fake-clock advance before the dispatch
		size, depth   int           // NoteBatch arguments
		wantWorkers   int
		wantImmediate bool
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"sparse traffic stays wide", []step{
			{0, 1, 0, 4, true},
			{10 * time.Millisecond, 2, 1, 4, true},
		}},
		{"full batch shrinks instantly", []step{
			{0, 1, 0, 4, true},
			{10 * time.Millisecond, 8, 0, 1, false},
		}},
		{"deep queue shrinks even at low occupancy", []step{
			{0, 1, 9, 1, false},
		}},
		{"mid occupancy holds the current point from above", []step{
			{0, 3, 0, 4, true}, // 0.375 is between the thresholds: keep wide
		}},
		{"hysteresis from below, then window-average recovery", []step{
			{0, 8, 0, 1, false},                     // full batch: shrink
			{10 * time.Millisecond, 3, 0, 1, false}, // 0.375 between: stay shrunk
			{95 * time.Millisecond, 1, 0, 4, true},  // full-batch sample aged out; avg (0.375+0.125)/2 ≤ 0.25
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			met := NewMetrics()
			g, clk := govUnderTest(met)
			for i, s := range tc.steps {
				if s.advance > 0 {
					_ = clk.Sleep(context.Background(), s.advance)
				}
				g.NoteBatch(s.size, s.depth)
				if got := g.BatchWorkers(); got != s.wantWorkers {
					t.Fatalf("step %d: BatchWorkers = %d, want %d", i, got, s.wantWorkers)
				}
				if got := g.ImmediateDispatch(); got != s.wantImmediate {
					t.Fatalf("step %d: ImmediateDispatch = %v, want %v", i, got, s.wantImmediate)
				}
				if got := met.IntraopWorkers.Value(); got != int64(s.wantWorkers) {
					t.Fatalf("step %d: intraop gauge = %d, want %d", i, got, s.wantWorkers)
				}
			}
			if got := met.Occupancy.Count(); got != uint64(len(tc.steps)) {
				t.Fatalf("occupancy observations = %d, want %d", got, len(tc.steps))
			}
		})
	}
}

// TestGovernorIdleResetsWide: once the window has fully aged out, a
// read-side decision (the next submit or dispatch) snaps back to the
// wide low-occupancy point without waiting for a batch observation.
func TestGovernorIdleResetsWide(t *testing.T) {
	g, clk := govUnderTest(nil)
	g.NoteBatch(8, 0) // full batch: shrink
	if got := g.BatchWorkers(); got != 1 {
		t.Fatalf("BatchWorkers after full batch = %d, want 1", got)
	}
	_ = clk.Sleep(context.Background(), 150*time.Millisecond) // > window
	if got := g.BatchWorkers(); got != 4 {
		t.Fatalf("BatchWorkers after idle window = %d, want 4", got)
	}
	if !g.ImmediateDispatch() {
		t.Fatal("ImmediateDispatch false after idle window, want true")
	}
}

// TestGovernorDisabledStatic: the zero options keep the pre-governor
// static split — MinIntraOp workers, linger always honoured — no matter
// what traffic it observes.
func TestGovernorDisabledStatic(t *testing.T) {
	g := NewGovernor(GovernorOptions{Clock: chaos.NewFake()}, nil)
	g.bind(8, 2)
	for _, sd := range [][2]int{{1, 0}, {8, 0}, {1, 20}} {
		g.NoteBatch(sd[0], sd[1])
		if got := g.BatchWorkers(); got != 1 {
			t.Fatalf("disabled governor BatchWorkers = %d, want 1", got)
		}
		if g.ImmediateDispatch() {
			t.Fatal("disabled governor reports immediate dispatch")
		}
	}
}

// TestGovernorEstimatedWait checks the admission-control estimate: an
// integer-exact EWMA (alpha 1/2) of per-image service time, multiplied
// by the queue depth and divided across the worker pool.
func TestGovernorEstimatedWait(t *testing.T) {
	g := NewGovernor(GovernorOptions{Clock: chaos.NewFake()}, nil)
	g.bind(8, 2)
	if got := g.EstimatedWait(10); got != 0 {
		t.Fatalf("estimate before any service = %v, want 0 (never shed blind)", got)
	}
	g.NoteService(4, 40*time.Millisecond) // 10ms/image
	if got := g.EstimatedWait(6); got != 30*time.Millisecond {
		t.Fatalf("estimate = %v, want 30ms (10ms × 6 / 2 workers)", got)
	}
	g.NoteService(2, 4*time.Millisecond) // 2ms/image → EWMA (10+2)/2 = 6ms
	if got := g.EstimatedWait(6); got != 18*time.Millisecond {
		t.Fatalf("estimate after EWMA update = %v, want 18ms", got)
	}
	if got := g.EstimatedWait(0); got != 0 {
		t.Fatalf("estimate for empty queue = %v, want 0", got)
	}
	g.NoteService(0, time.Second) // degenerate observations are ignored
	g.NoteService(3, -time.Second)
	if got := g.EstimatedWait(6); got != 18*time.Millisecond {
		t.Fatalf("estimate moved on degenerate observations: %v", got)
	}
}

// TestBatcherShedsOverBudget proves deadline-aware admission control:
// with a seeded service-time estimate and a backed-up queue, a submit
// whose budget is tighter than the estimated wait is refused with
// ErrOverBudget before taking a queue slot — the queue depth and
// backpressure counters are untouched, only the shed counter moves.
func TestBatcherShedsOverBudget(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	clk := chaos.NewFake()
	gov := NewGovernor(GovernorOptions{Clock: clk}, met)
	gate := make(chan struct{})
	var block atomic.Bool
	b := NewBatcher(BatcherOptions{
		MaxBatch: 8, Linger: time.Hour, QueueCap: 64, Workers: 1,
		LatencyBudget: 20 * time.Millisecond,
		ForwardHook: func(string) {
			if block.Load() {
				<-gate
			}
			_ = clk.Sleep(context.Background(), 10*time.Millisecond)
		},
	}, gov, met)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Seed the per-image estimate: one image at 10ms of fake service time.
	items, err := b.Submit(context.Background(), "k", qm, imgs[:1])
	if err != nil {
		t.Fatal(err)
	}
	b.flushIf("k", items[0].p)
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}

	// Jam the single worker and back up four images.
	block.Store(true)
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	stuck, err := b.Submit(context.Background(), "k", qm, imgs[:4])
	if err != nil {
		t.Fatal(err)
	}
	b.flushIf("k", stuck[0].p)

	// Estimated wait is now 10ms × 4 / 1 worker = 40ms > the 20ms budget.
	if _, err := b.Submit(context.Background(), "k", qm, imgs[4:5]); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("Submit over budget: err = %v, want ErrOverBudget", err)
	}
	if got := met.Shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := met.Rejected.Value(); got != 0 {
		t.Fatalf("rejected counter = %d, want 0 (shed is not backpressure)", got)
	}
	if got := met.QueueDepth.Value(); got != 4 {
		t.Fatalf("queue depth = %d, want 4 — a shed request must not occupy a slot", got)
	}

	// A per-request budget wider than the wait is admitted.
	admitted, err := b.SubmitBudget(context.Background(), "k2", qm, imgs[5:6], 100*time.Millisecond)
	if err != nil {
		t.Fatalf("SubmitBudget with a wide budget: %v", err)
	}

	block.Store(false)
	release()
	b.flushIf("k2", admitted[0].p)
	if err := Await(ctx, append(stuck, admitted...)); err != nil {
		t.Fatal(err)
	}
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServeLatencyBudgetHeader exercises the HTTP surface of admission
// control: a request whose X-Quq-Latency-Budget is tighter than the
// estimated queue wait gets 429 with Retry-After, a malformed header
// gets 400, and a shed request never occupies a queue slot.
func TestServeLatencyBudgetHeader(t *testing.T) {
	clk := chaos.NewFake()
	gate := make(chan struct{})
	var block atomic.Bool
	s := New(Config{
		Registry: testRegistryOptions(),
		Batcher: BatcherOptions{
			MaxBatch: 8, QueueCap: 64, Workers: 1,
			ForwardHook: func(string) {
				if block.Load() {
					<-gate
				}
				_ = clk.Sleep(context.Background(), 10*time.Millisecond)
			},
		},
		Governor:       GovernorOptions{Clock: clk},
		RequestTimeout: 60 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()

	flat, _ := flatImages(6)
	classify := func(images [][]float64, header string) (*http.Response, []byte) {
		t.Helper()
		buf, err := json.Marshal(map[string]any{"images": images})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/classify", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set(LatencyBudgetHeader, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, out.Bytes()
	}

	// Seed the service-time estimate with one unjammed request.
	if resp, body := classify(flat[:1], ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed classify: %d %s", resp.StatusCode, body)
	}

	// Jam the worker and back the queue up with four images.
	block.Store(true)
	stuckDone := make(chan struct{})
	go func() {
		defer close(stuckDone)
		classify(flat[1:5], "")
	}()
	waitFor(t, func() bool { return s.Metrics().QueueDepth.Value() == 4 })

	// Estimated wait 10ms × 4 / 1 worker = 40ms; a 20ms budget sheds.
	resp, body := classify(flat[5:6], "20ms")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget classify: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := s.Metrics().Shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := s.Metrics().QueueDepth.Value(); got != 4 {
		t.Fatalf("queue depth = %d after shed, want 4 — no slot taken", got)
	}

	// A malformed budget is the client's mistake, reported as one.
	if resp, body := classify(flat[5:6], "bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed budget: %d %s, want 400", resp.StatusCode, body)
	}

	block.Store(false)
	release()
	<-stuckDone
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
