// Command sleeplessmain is the sleepless fixture's main-package
// exemption: one-shot command wiring may wall-clock wait — the chaos
// harness never replays a main package.
package main

import "time"

func main() {
	time.Sleep(time.Millisecond) // main package: not flagged
	<-time.After(time.Millisecond)
}
