// Benchmark for the occupancy-adaptive scheduler: static split versus
// governor-steered batching/parallelism on a mixed workload. See
// EXPERIMENTS.md "Occupancy-adaptive scheduling" for the methodology.
package quq_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"quq/internal/rng"
	"quq/internal/serve"
)

// schedPercentile returns the q-quantile of the collected latencies by
// nearest-rank on a sorted copy.
func schedPercentile(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// BenchmarkSchedOccupancy drives one static and one governor-steered
// quq-serve through the same seeded arrival mix — sequential singles
// (low occupancy) alternating with concurrent multi-image bursts — and
// records per-request latency percentiles to artifacts/BENCH_sched.json.
// The paired claim under test: at low occupancy the governor's immediate
// dispatch beats the static linger wait on p50, and under bursts its
// shrink-to-MinIntraOp keeps the p99 tail from regressing (hard gate at
// 2× to stay robust to machine noise).
func BenchmarkSchedOccupancy(b *testing.B) {
	const (
		singles   = 8 // sequential single-image requests per round
		bursts    = 4 // concurrent burst requests per round
		maxBatch  = 8
		lingerDur = 2 * time.Millisecond
	)
	flat := benchFlatImages(maxBatch)
	bodies := make([][]byte, maxBatch+1)
	for n := 1; n <= maxBatch; n++ {
		bodies[n] = mustMarshalBench(b, map[string]any{
			"model": "ViT-Nano", "method": "QUQ", "bits": 6,
			"images": flat[:n],
		})
	}

	run := func(b *testing.B, adaptive bool) (p50Low, p99All time.Duration) {
		cfg := serve.Config{
			Registry: serve.RegistryOptions{Seed: 7, CalibImages: 2},
			Batcher:  serve.BatcherOptions{MaxBatch: maxBatch, Linger: lingerDur, QueueCap: 256},
		}
		if adaptive {
			cfg.Governor = serve.GovernorOptions{
				Window: 50 * time.Millisecond, MinIntraOp: 1, MaxIntraOp: 4,
			}
		}
		s := serve.New(cfg)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		timedPost := func(body []byte) time.Duration {
			start := time.Now()
			resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				return -1
			}
			if _, err := bytes.NewBuffer(nil).ReadFrom(resp.Body); err != nil {
				return -1
			}
			if err := resp.Body.Close(); err != nil || resp.StatusCode != http.StatusOK {
				return -1
			}
			return time.Since(start)
		}

		// Warm the registry so no request pays the calibration.
		if d := timedPost(bodies[1]); d < 0 {
			b.Fatal("warm classify failed")
		}

		// The arrival mix is seeded so both modes replay the identical
		// burst-size sequence.
		src := rng.New(2024)
		var low, all []time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < singles; j++ {
				d := timedPost(bodies[1])
				if d < 0 {
					b.Fatal("single classify failed")
				}
				low = append(low, d)
				all = append(all, d)
			}
			sizes := make([]int, bursts)
			for k := range sizes {
				sizes[k] = 2 + src.Intn(maxBatch-1) // 2..maxBatch images
			}
			durs := make([]time.Duration, bursts)
			var wg sync.WaitGroup
			for k, n := range sizes {
				wg.Add(1)
				go func(k int, body []byte) {
					defer wg.Done()
					durs[k] = timedPost(body)
				}(k, bodies[n])
			}
			wg.Wait()
			for _, d := range durs {
				if d < 0 {
					b.Fatal("burst classify failed")
				}
				all = append(all, d)
			}
		}
		b.StopTimer()
		p50Low = schedPercentile(low, 0.5)
		p99All = schedPercentile(all, 0.99)
		b.ReportMetric(float64(p50Low)/1e6, "p50low-ms")
		b.ReportMetric(float64(p99All)/1e6, "p99-ms")
		return p50Low, p99All
	}

	var staticP50, staticP99, adaptiveP50, adaptiveP99 time.Duration
	b.Run("static", func(b *testing.B) { staticP50, staticP99 = run(b, false) })
	b.Run("adaptive", func(b *testing.B) { adaptiveP50, adaptiveP99 = run(b, true) })

	if staticP50 == 0 || adaptiveP50 == 0 {
		return // sub-benchmark filtered out; nothing coherent to record
	}
	if adaptiveP50 >= staticP50 {
		b.Fatalf("adaptive p50 at low occupancy = %v, static = %v: immediate dispatch should beat the linger wait", adaptiveP50, staticP50)
	}
	if adaptiveP99 > 2*staticP99 {
		b.Fatalf("adaptive p99 = %v regressed past 2× static %v under bursts", adaptiveP99, staticP99)
	}
	artifact := struct {
		Singles          int     `json:"singles_per_round"`
		Bursts           int     `json:"bursts_per_round"`
		MaxBatch         int     `json:"max_batch"`
		LingerMS         float64 `json:"linger_ms"`
		StaticP50LowMS   float64 `json:"static_p50_low_ms"`
		AdaptiveP50LowMS float64 `json:"adaptive_p50_low_ms"`
		StaticP99MS      float64 `json:"static_p99_ms"`
		AdaptiveP99MS    float64 `json:"adaptive_p99_ms"`
		P50Speedup       float64 `json:"p50_low_speedup"`
	}{
		singles, bursts, maxBatch, float64(lingerDur) / 1e6,
		float64(staticP50) / 1e6, float64(adaptiveP50) / 1e6,
		float64(staticP99) / 1e6, float64(adaptiveP99) / 1e6,
		float64(staticP50) / float64(adaptiveP50),
	}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("artifacts", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("artifacts", "BENCH_sched.json"), append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
