// Command quq regenerates the QUQ paper's tables and figures on this
// repository's substrates.
//
// Usage:
//
//	quq table1|table2|table3|table4|fig2|fig3|fig7|ablation|all [flags]
//
// Flags:
//
//	-quick     shrink the workloads (fewer models, fewer images)
//	-seed N    override the experiment seed
//	-bits N    bit-width for fig2/ablation (default 6)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"quq/internal/experiments"
	"quq/internal/vit"
)

func main() {
	flag.Usage = usage
	quick := flag.Bool("quick", false, "run reduced workloads")
	seed := flag.Uint64("seed", 2024, "experiment seed")
	bits := flag.Int("bits", 6, "bit-width for fig2/ablation")
	csvDir := flag.String("csv", "", "also write machine-readable CSV files into this directory")
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	cmd := flag.Arg(0)
	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			return
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			return
		}
		fmt.Printf("(wrote %s)\n", path)
	}
	run := func(name string, fn func()) {
		start := time.Now()
		fmt.Printf("### %s\n\n", name)
		fn()
		fmt.Printf("\n(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	zooOpts := experiments.ZooOptions{Seed: *seed}
	if *quick {
		zooOpts.Configs = []vit.Config{vit.ViTSmall, vit.SwinTiny}
		zooOpts.TrainImages = 120
		zooOpts.EvalImages = 60
		zooOpts.CalibImages = 16
	}

	var zoo []*experiments.ZooModel
	loadZoo := func() []*experiments.ZooModel {
		if zoo == nil {
			fmt.Println("(preparing model zoo: synthetic backbones + fitted heads...)")
			zoo = experiments.BuildZoo(zooOpts)
			for _, zm := range zoo {
				fmt.Printf("  %-8s FP32 top-1 = %s\n", zm.Cfg.Name, experiments.Pct(zm.FP32Acc))
			}
			fmt.Println()
		}
		return zoo
	}

	table1 := func() {
		n := 1 << 18
		if *quick {
			n = 1 << 14
		}
		rows := experiments.Table1(n, *seed)
		fmt.Print(experiments.FormatTable1(rows))
		writeCSV("table1.csv", experiments.CSVTable1(rows))
	}
	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "quq: %v\n", err)
		os.Exit(1)
	}
	table2 := func() {
		z := loadZoo()
		rows, err := experiments.Table2(z)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatAccuracy(z, rows))
		writeCSV("table2.csv", experiments.CSVAccuracy(z, rows))
	}
	table3 := func() {
		z := loadZoo()
		rows, err := experiments.Table3(z)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatAccuracy(z, rows))
		writeCSV("table3.csv", experiments.CSVAccuracy(z, rows))
	}
	table4 := func() { fmt.Print(experiments.FormatTable4(experiments.Table4())) }
	fig2 := func() {
		rows := experiments.Fig2(*bits, nil)
		fmt.Print(experiments.FormatFig2(rows))
		writeCSV("fig2.csv", experiments.CSVFig2(rows))
	}
	fig3 := func() {
		n := 1 << 16
		if *quick {
			n = 1 << 13
		}
		panels := experiments.Fig3(n, 4, *seed)
		fmt.Print(experiments.FormatFig3(panels))
		for i, p := range panels {
			writeCSV(fmt.Sprintf("fig3_%d.csv", i), experiments.CSVFig3(p))
		}
	}
	fig7 := func() {
		opts := experiments.Fig7Options{Seed: *seed}
		if *quick {
			opts.Images = 3
		}
		res, err := experiments.Fig7(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatFig7(res))
		writeCSV("fig7.csv", experiments.CSVFig7(res))
	}
	ablationAcc := func() {
		z := loadZoo()
		zm := z[0]
		rows, err := experiments.AblationAccuracy(zm, *bits)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatAblationAcc(zm.Cfg.Name, *bits, rows))
	}
	ablation := func() {
		n := 1 << 16
		if *quick {
			n = 1 << 13
		}
		fmt.Print(experiments.FormatAblations(experiments.Ablations(n, *bits, *seed)))
	}

	switch cmd {
	case "table1":
		run("Table 1: quantization MSE (BaseQ vs QUQ)", table1)
	case "table2":
		run("Table 2: partially quantized top-1", table2)
	case "table3":
		run("Table 3: fully quantized top-1", table3)
	case "table4":
		run("Table 4: accelerator area and power", table4)
	case "fig2":
		run("Figure 2: peak on-chip memory (PQ vs FQ)", fig2)
	case "fig3":
		run("Figure 3: distributions and QUQ quantization points", fig3)
	case "fig7":
		run("Figure 7: attention-map retention", fig7)
	case "ablation":
		run("Ablations: PRA design choices", ablation)
	case "ablation-acc":
		run("Ablations: end accuracy under QUQ variants", ablationAcc)
	case "all":
		run("Table 1: quantization MSE (BaseQ vs QUQ)", table1)
		run("Table 2: partially quantized top-1", table2)
		run("Table 3: fully quantized top-1", table3)
		run("Table 4: accelerator area and power", table4)
		run("Figure 2: peak on-chip memory (PQ vs FQ)", fig2)
		run("Figure 3: distributions and QUQ quantization points", fig3)
		run("Figure 7: attention-map retention", fig7)
		run("Ablations: PRA design choices", ablation)
		run("Ablations: end accuracy under QUQ variants", ablationAcc)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: quq [flags] <experiment>

experiments:
  table1    quantization MSE of BaseQ vs QUQ on the four data families
  table2    partially quantized top-1 accuracy comparison (W6/A6)
  table3    fully quantized top-1 accuracy comparison (6- and 8-bit)
  table4    accelerator area/power (BaseQ vs QUQ, 16x16 and 64x64 arrays)
  fig2      peak on-chip memory of a ViT block, PQ vs FQ, batch sweep
  fig3      data distributions with 4-bit QUQ quantization points
  fig7      attention-map retention under quantization
  ablation  PRA design-choice sweeps (mode switch, grid search, lambda_A, q)
  ablation-acc  fully-quantized accuracy under QUQ design variants
  all       everything above

flags:
`)
	flag.PrintDefaults()
}
