package chaos

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFakeClockRecordsAndAdvances(t *testing.T) {
	c := NewFake()
	start := c.Now()
	if err := c.Sleep(context.Background(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Sleep(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Now().Sub(start); got != 4*time.Second {
		t.Fatalf("fake clock advanced %v, want 4s", got)
	}
	sleeps := c.Sleeps()
	if len(sleeps) != 2 || sleeps[0] != 3*time.Second || sleeps[1] != time.Second {
		t.Fatalf("recorded sleeps %v", sleeps)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); err != context.Canceled {
		t.Fatalf("cancelled fake sleep returned %v", err)
	}
}

func TestRealClockSleepHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Real.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("cancelled real sleep returned %v", err)
	}
	if err := Real.Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep returned %v", err)
	}
}

// newBackend returns a test server echoing a fixed body.
func newBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	var buf bytes.Buffer
	_, rerr := io.Copy(&buf, resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && rerr == nil {
		rerr = cerr
	}
	return resp, buf.String(), rerr
}

func TestTransportInjectsScriptedFaults(t *testing.T) {
	srv := newBackend(t, "hello from the backend")
	tr := NewTransport(nil, NewFake(), &Script{
		Name: "unit",
		Seed: 7,
		Rules: []Rule{
			{PathPrefix: "/reset", Fault: FaultReset, Max: 1},
			{PathPrefix: "/storm429", Fault: Fault429},
			{PathPrefix: "/storm500", Fault: Fault500},
			{PathPrefix: "/cut", Fault: FaultTruncate},
			{PathPrefix: "/slow", Fault: FaultLatency, Latency: 250 * time.Millisecond},
		},
	})
	client := &http.Client{Transport: tr}

	// First /reset round trip fails; Max=1 exhausts the rule, so the
	// second one reaches the backend.
	if _, _, err := get(t, client, srv.URL+"/reset"); err == nil {
		t.Fatal("first /reset round trip did not fail")
	}
	if resp, body, err := get(t, client, srv.URL+"/reset"); err != nil || resp.StatusCode != 200 || body == "" {
		t.Fatalf("second /reset round trip = %v, %q, %v; want a clean 200", resp, body, err)
	}

	resp, _, err := get(t, client, srv.URL+"/storm429")
	if err != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("storm429 = %v, %v; want 429", resp, err)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("injected 429 Retry-After = %q, want 7", ra)
	}
	if resp, _, err := get(t, client, srv.URL+"/storm500"); err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("storm500 = %v, %v; want 500", resp, err)
	}

	// Truncation: body cut in half against a full-size Content-Length.
	if _, body, err := get(t, client, srv.URL+"/cut"); err == nil || len(body) >= len("hello from the backend") {
		t.Fatalf("truncated read: body %q err %v; want a short body with an error", body, err)
	}

	// Latency goes through the injected clock, not a real sleep.
	clock := NewFake()
	tr2 := NewTransport(nil, clock, &Script{Name: "lat", Rules: []Rule{
		{PathPrefix: "/", Fault: FaultLatency, Latency: 250 * time.Millisecond},
	}})
	if _, _, err := get(t, &http.Client{Transport: tr2}, srv.URL+"/slow"); err != nil {
		t.Fatal(err)
	}
	if sleeps := clock.Sleeps(); len(sleeps) != 1 || sleeps[0] != 250*time.Millisecond {
		t.Fatalf("latency fault slept %v, want [250ms]", sleeps)
	}
}

func TestTransportBlackholeWaitsForContext(t *testing.T) {
	srv := newBackend(t, "unreachable")
	tr := NewTransport(nil, nil, &Script{Name: "bh", Rules: []Rule{
		{PathPrefix: "/", Fault: FaultBlackhole},
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&http.Client{Transport: tr}).Do(req); err == nil {
		t.Fatal("black-holed request returned without error")
	}
	if ctx.Err() == nil {
		t.Fatal("black-holed request returned before its context expired")
	}
}

func TestTransportSeededProbabilisticFaultsReplay(t *testing.T) {
	srv := newBackend(t, "ok")
	run := func() []Event {
		tr := NewTransport(nil, nil, &Script{Name: "prob", Seed: 42, Rules: []Rule{
			{PathPrefix: "/", Fault: Fault500, Prob: 0.5},
		}})
		client := &http.Client{Transport: tr}
		for i := 0; i < 32; i++ {
			resp, _, err := get(t, client, srv.URL+"/p")
			if err != nil {
				t.Fatal(err)
			}
			_ = resp
		}
		return tr.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	faulted := 0
	for i := range a {
		if a[i].Fault != b[i].Fault || a[i].Status != b[i].Status {
			t.Fatalf("event %d differs across seeded replays: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Fault == Fault500 {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(a) {
		t.Fatalf("probabilistic rule fired %d/%d times; want a proper mix", faulted, len(a))
	}
}

func TestTransportCountAndAddRule(t *testing.T) {
	srv := newBackend(t, "ok")
	tr := NewTransport(nil, nil, &Script{Name: "count"})
	client := &http.Client{Transport: tr}
	if _, _, err := get(t, client, srv.URL+"/a"); err != nil {
		t.Fatal(err)
	}
	tr.AddRule(Rule{PathPrefix: "/a", Fault: Fault429})
	if resp, _, err := get(t, client, srv.URL+"/a"); err != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-AddRule response = %v, %v; want 429", resp, err)
	}
	tr.ClearRules()
	if resp, _, err := get(t, client, srv.URL+"/a"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("post-ClearRules response = %v, %v; want 200", resp, err)
	}
	if n := tr.Count(http.MethodGet, "/a", "", Fault429, false); n != 1 {
		t.Fatalf("Count(429) = %d, want 1", n)
	}
	if n := tr.Count(http.MethodGet, "/a", "", FaultNone, true); n != 3 {
		t.Fatalf("Count(any) = %d, want 3", n)
	}
}

func TestReportDeterminismAndVerdicts(t *testing.T) {
	build := func() *Report {
		r := NewReport("unit", 9)
		r.CheckConservation(5, 5, 5, 5)
		r.CheckCalibrateOnce(map[string]int{"b": 1, "a": 2}, map[string]int{"a": 2})
		r.CheckNeverRetried(3, 3, 3, 3)
		r.CheckBoundedRemap(
			map[string]int{"k1": 0, "k2": 1},
			map[string]int{"k1": 2, "k2": 1},
			map[string]int{"k1": 0, "k2": 1},
			0,
		)
		r.CheckBoundedDrain(true, 4, 4)
		r.CheckLatencySLO(5, 5, 1, 0, []int{4, 1, 4}, true)
		return r
	}
	var a, b strings.Builder
	if err := build().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("report rendering not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if r := build(); r.Failed() {
		t.Fatalf("all-green report reports failure:\n%s", a.String())
	}

	// Each checker must catch its violation.
	r := NewReport("unit", 9)
	r.CheckConservation(5, 4, 5, 5)                   // lost reply
	r.CheckCalibrateOnce(map[string]int{"a": 2}, nil) // duplicate calibration
	r.CheckNeverRetried(3, 4, 3, 3)                   // retried 429
	r.CheckBoundedRemap(
		map[string]int{"k1": 0, "k2": 1},
		map[string]int{"k1": 0, "k2": 2}, // non-victim key moved
		map[string]int{"k1": 0, "k2": 1},
		0,
	)
	r.CheckBoundedDrain(false, 4, 4)                     // deadline blown
	r.CheckLatencySLO(5, 4, 1, 0, []int{4, 1, 4}, true)  // admitted request missed its budget
	r.CheckLatencySLO(5, 5, 0, 0, []int{4, 1, 4}, true)  // overload never shed
	r.CheckLatencySLO(5, 5, 1, 2, []int{4, 1, 4}, true)  // shed request held queue slots
	r.CheckLatencySLO(5, 5, 1, 0, []int{4, 4, 4}, true)  // governor never adapted
	r.CheckLatencySLO(5, 5, 1, 0, []int{4, 1, 4}, false) // shed counter absent from merged view
	for i, c := range r.Results {
		if c.Pass {
			t.Errorf("check %d (%s) passed on a violating history: %s", i, c.Name, c.Detail)
		}
	}
}
