package baselines

import (
	"math"

	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// FQViT implements the mechanisms of FQ-ViT (Lin et al.), the first
// fully-quantizing comparison method in Table 3:
//
//   - weights: row-wise (per output channel) symmetric uniform
//     quantization, giving each channel its own scale factor;
//   - post-Softmax activations: log2 quantization, whose exponential
//     code spacing matches the attention-probability distribution;
//   - LayerNorm inputs (the residual stream): power-of-two-factor (PTF)
//     quantization — one shared Δ with a per-channel power-of-two
//     multiplier absorbing the channel-wise magnitude spread;
//   - everything else: per-tensor uniform with clipping search.
type FQViT struct{}

// Name implements ptq.Method.
func (FQViT) Name() string { return "FQ-ViT" }

// CalibrateActivation implements ptq.Method.
func (FQViT) CalibrateActivation(stats *ptq.SiteStats, bits int) ptq.TensorQuantizer {
	switch {
	case isPostSoftmax(stats.Site):
		return log2Quantizer{bits: bits}
	case isResidualStream(stats.Site):
		return calibratePTF(stats, bits)
	default:
		return ptq.UniformQuantizer{Delta: ptq.SearchUniformDelta(stats.Samples, bits, ptq.DefaultAlphaGrid), Bits: bits}
	}
}

// QuantizeWeight implements ptq.Method: per-output-channel symmetric
// uniform quantization (FQ-ViT's row-wise scheme; W is [in, out], so an
// output channel is a column).
func (FQViT) QuantizeWeight(_ vit.Site, w *tensor.Tensor, bits int) {
	in, out := w.Dim(0), w.Dim(1)
	hi := float64(int64(1)<<(bits-1) - 1)
	lo := -hi - 1
	d := w.Data()
	for c := 0; c < out; c++ {
		absmax := 0.0
		for r := 0; r < in; r++ {
			if a := math.Abs(d[r*out+c]); a > absmax {
				absmax = a
			}
		}
		if absmax == 0 {
			continue
		}
		delta := absmax / hi
		for r := 0; r < in; r++ {
			q := math.RoundToEven(d[r*out+c] / delta)
			if q < lo {
				q = lo
			}
			if q > hi {
				q = hi
			}
			d[r*out+c] = q * delta
		}
	}
}

// log2Quantizer maps a probability x to 2^−q with q = round(−log2 x)
// clipped to [0, 2^b−1]; zero (and anything below the smallest
// representable power) maps to 0 via the largest code.
type log2Quantizer struct{ bits int }

// Apply implements ptq.TensorQuantizer.
func (l log2Quantizer) Apply(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	maxCode := float64(int64(1)<<l.bits - 1)
	for i, v := range d {
		if v <= 0 {
			d[i] = 0
			continue
		}
		q := math.RoundToEven(-math.Log2(v))
		if q < 0 {
			q = 0
		}
		if q >= maxCode {
			d[i] = 0 // underflow: the reserved all-ones code means zero
			continue
		}
		d[i] = math.Ldexp(1, -int(q))
	}
	return out
}

// ptfQuantizer applies Δ·2^shift[c] per channel c of the last axis.
type ptfQuantizer struct {
	delta  float64
	shifts []int
	bits   int
}

// Apply implements ptq.TensorQuantizer. Tensors whose channel width does
// not match the calibrated layout fall back to the base Δ.
func (p ptfQuantizer) Apply(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	cols := out.Dim(out.Rank() - 1)
	d := out.Data()
	hi := float64(int64(1)<<(p.bits-1) - 1)
	lo := -hi - 1
	for i, v := range d {
		delta := p.delta
		if cols == len(p.shifts) {
			delta = p.delta * float64(int64(1)<<p.shifts[i%cols])
		}
		q := math.RoundToEven(v / delta)
		if q < lo {
			q = lo
		}
		if q > hi {
			q = hi
		}
		d[i] = q * delta
	}
	return out
}

// calibratePTF picks the shared Δ and per-channel power-of-two shifts.
// The base Δ is anchored so the widest channel lands exactly on the
// maximum shift (giving it the same resolution per-tensor quantization
// would), but never below what the narrowest channel needs — then each
// channel takes the smallest shift that covers its own absmax. Channels
// narrower than the widest by up to 2^maxShift gain the full per-channel
// resolution advantage.
func calibratePTF(stats *ptq.SiteStats, bits int) ptq.TensorQuantizer {
	hi := float64(int64(1)<<(bits-1) - 1)
	const maxShift = 7 // FQ-ViT's 3-bit per-channel factor field
	minAbs, maxAbs := math.Inf(1), 0.0
	for _, a := range stats.ChanAbsMax {
		if a <= 0 {
			continue
		}
		if a < minAbs {
			minAbs = a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return ptq.UniformQuantizer{Delta: 1, Bits: bits}
	}
	base := maxAbs / hi / float64(int64(1)<<maxShift)
	if ideal := minAbs / hi; ideal > base {
		base = ideal
	}
	shifts := make([]int, len(stats.ChanAbsMax))
	for c, a := range stats.ChanAbsMax {
		if a <= 0 {
			continue
		}
		k := int(math.Ceil(math.Log2(a / hi / base)))
		if k < 0 {
			k = 0
		}
		if k > maxShift {
			k = maxShift
		}
		shifts[c] = k
	}
	return ptfQuantizer{delta: base, shifts: shifts, bits: bits}
}
