package ptq

import (
	"encoding/binary"
	"fmt"
	"math"

	"quq/internal/quant"
)

// Wire tags for the activation quantizers this package can serialize.
// Tags are part of the snapshot format: renaming one invalidates every
// snapshot on disk, so treat them as frozen.
const (
	TagQUQ     = "quq"
	TagUniform = "uniform"
)

// QuantizerCodec is implemented by every concrete TensorQuantizer that
// can round-trip through the snapshot store. The tag names the concrete
// type; data is a canonical little-endian encoding of its parameters,
// so byte-identical calibrations serialize to byte-identical records
// (the property content-addressed snapshot digests rely on).
type QuantizerCodec interface {
	MarshalQuantizer() (tag string, data []byte, err error)
}

// MarshalQuantizer serializes any codec-capable TensorQuantizer. A
// quantizer that does not implement QuantizerCodec is not snapshottable;
// the caller decides whether that aborts the snapshot or the whole
// encode (the registry skips persistence but keeps serving).
func MarshalQuantizer(q TensorQuantizer) (string, []byte, error) {
	c, ok := q.(QuantizerCodec)
	if !ok {
		return "", nil, fmt.Errorf("ptq: quantizer %T does not implement QuantizerCodec", q)
	}
	return c.MarshalQuantizer()
}

// MarshalQuantizer implements QuantizerCodec.
func (q QUQTensorQuantizer) MarshalQuantizer() (string, []byte, error) {
	data, err := q.Params.MarshalBinary()
	if err != nil {
		return "", nil, err
	}
	return TagQUQ, data, nil
}

// MarshalQuantizer implements QuantizerCodec.
func (u UniformQuantizer) MarshalQuantizer() (string, []byte, error) {
	buf := make([]byte, 0, 12)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.Delta))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(u.Bits))
	return TagUniform, buf, nil
}

// UnmarshalQuantizer reverses MarshalQuantizer for the tags this package
// owns. ok=false means the tag belongs to another package (the caller
// should try the baselines decoder); err!=nil means the tag matched but
// the payload is malformed.
func UnmarshalQuantizer(tag string, data []byte) (q TensorQuantizer, ok bool, err error) {
	switch tag {
	case TagQUQ:
		p, err := quant.UnmarshalParams(data)
		if err != nil {
			return nil, true, err
		}
		if err := p.Validate(); err != nil {
			return nil, true, fmt.Errorf("ptq: decoded QUQ params invalid: %w", err)
		}
		return QUQTensorQuantizer{Params: p}, true, nil
	case TagUniform:
		if len(data) != 12 {
			return nil, true, fmt.Errorf("ptq: uniform encoding is %d bytes, want 12", len(data))
		}
		u := UniformQuantizer{
			Delta: math.Float64frombits(binary.LittleEndian.Uint64(data[0:8])),
			Bits:  int(binary.LittleEndian.Uint32(data[8:12])),
		}
		if u.Bits < 1 || u.Bits > 62 || !(u.Delta > 0) || math.IsInf(u.Delta, 0) {
			return nil, true, fmt.Errorf("ptq: decoded uniform quantizer invalid (delta=%v bits=%d)", u.Delta, u.Bits)
		}
		return u, true, nil
	}
	return nil, false, nil
}
