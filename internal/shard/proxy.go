package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"quq/internal/chaos"
	"quq/internal/rng"
	"quq/internal/serve"
)

// BackendHeader names the response header the front-end stamps with the
// address of the backend that served a proxied request.
const BackendHeader = "X-Quq-Shard"

// Front is the sharding front-end: an http.Handler that routes
// inference traffic onto the ring and aggregates fleet observability.
type Front struct {
	opts    Options
	ring    *Ring
	prober  *Prober
	met     *Metrics
	client  *http.Client
	clock   chaos.Clock
	handler http.Handler

	rngMu  sync.Mutex
	jitter *rng.Source // retry-backoff jitter stream, seeded by Options.Seed
}

// New assembles a front-end over opts.Backends and starts its prober.
func New(opts Options) *Front {
	opts.defaults()
	met := NewShardMetrics()
	ring := NewRing(opts.VNodes, opts.MaxLoadFactor)
	for _, addr := range opts.Backends {
		ring.Add(normalizeAddr(addr))
	}
	met.Healthy.Set(int64(ring.HealthyCount()))
	client := &http.Client{Transport: opts.Transport}
	f := &Front{
		opts:   opts,
		ring:   ring,
		met:    met,
		client: client,
		clock:  opts.Clock,
		jitter: rng.New(opts.Seed),
		prober: NewProber(opts.BaseContext, ring, client, opts.ProbeInterval, opts.ProbeTimeout, opts.FailAfter, opts.OkAfter, met),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", f.handleProxy)
	mux.HandleFunc("POST /v1/quantize", f.handleProxy)
	mux.HandleFunc("GET /models", f.handleModels)
	mux.HandleFunc("GET /shards", f.handleShards)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	f.handler = f.middleware(mux)
	f.prober.Start()
	return f
}

// normalizeAddr turns "host:port" into a base URL.
func normalizeAddr(addr string) string {
	addr = strings.TrimSuffix(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// Handler returns the front-end's HTTP handler.
func (f *Front) Handler() http.Handler { return f.handler }

// Ring exposes the hash ring (introspection, smoke assertions).
func (f *Front) Ring() *Ring { return f.ring }

// Metrics exposes the front-end's own instrument set.
func (f *Front) Metrics() *Metrics { return f.met }

// ProbeNow forces one synchronous health-probe round; each round trip
// is bounded by ctx and the probe timeout.
func (f *Front) ProbeNow(ctx context.Context) { f.prober.ProbeNow(ctx) }

// Close stops the background prober.
func (f *Front) Close() { f.prober.Stop() }

// middleware wraps the mux with panic recovery, request accounting,
// body limiting and the per-request timeout.
func (f *Front) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		f.met.Requests.Inc()
		defer func() {
			f.met.Latency.Observe(time.Since(start).Seconds())
			if rec := recover(); rec != nil {
				f.met.Failures.Inc()
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, f.opts.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), f.opts.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// handleProxy routes one classify/quantize request: canonicalize the
// key selection (unknown enums are rejected here, before hashing — the
// same spelling rules the backend registry applies), pick the owning
// backend, and relay its response. Connection failures retry with
// backoff on the same backend, then eject it and fail over to the next
// ring successor; HTTP responses — 429 backpressure above all — are
// relayed as-is, never retried.
func (f *Front) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		f.writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var sel struct {
		Model  string `json:"model"`
		Method string `json:"method"`
		Bits   int    `json:"bits"`
		Regime string `json:"regime"`
	}
	if err := json.Unmarshal(body, &sel); err != nil {
		f.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	key, err := serve.KeyFromWire(sel.Model, sel.Method, sel.Bits, sel.Regime)
	if err != nil {
		f.writeError(w, http.StatusBadRequest, err)
		return
	}

	exclude := map[*Backend]bool{}
	for {
		b, err := f.ring.Pick(key.String(), exclude)
		if err != nil {
			f.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("%w for key %s", err, key))
			return
		}
		if len(exclude) > 0 {
			f.met.Failovers.Inc()
		}
		resp, err := f.forward(r.Context(), b, r.URL.Path, body)
		if err != nil {
			// The backend is unreachable after retries: eject it so the
			// ring stops routing there until a probe readmits it, and move
			// this request to the next successor.
			eject(b, f.met)
			f.met.Healthy.Set(int64(f.ring.HealthyCount()))
			exclude[b] = true
			if r.Context().Err() != nil {
				f.writeError(w, http.StatusGatewayTimeout, r.Context().Err())
				return
			}
			continue
		}
		f.relay(w, resp, b)
		return
	}
}

// forward posts body to one backend, retrying connection failures with
// seeded equal-jitter backoff slept through the injected clock. Any
// HTTP response, whatever its status, is final.
func (f *Front) forward(ctx context.Context, b *Backend, path string, body []byte) (*http.Response, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	// Draw the whole schedule up front under the rng mutex: the jitter
	// stream is shared across requests, and per-request draws interleaved
	// mid-flight would make the sequence depend on goroutine scheduling.
	f.rngMu.Lock()
	delays := retryDelays(f.jitter, f.opts.RetryBackoff, f.opts.Retries)
	f.rngMu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= f.opts.Retries; attempt++ {
		if attempt > 0 {
			f.met.Retries.Inc()
			if err := f.clock.Sleep(ctx, delays[attempt-1]); err != nil {
				return nil, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := f.client.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// relay copies one backend response to the client, stamping which shard
// served it.
func (f *Front) relay(w http.ResponseWriter, resp *http.Response, b *Backend) {
	defer func() {
		// A failed drain or close only matters to the connection pool;
		// the response bytes were already relayed to the client.
		//quq:errdrop-ok best-effort drain for connection reuse; bytes already relayed
		_, _ = io.Copy(io.Discard, resp.Body)
		//quq:errdrop-ok response already relayed; nothing left to report to the client
		resp.Body.Close()
	}()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(BackendHeader, b.addr)
	if resp.StatusCode == http.StatusTooManyRequests {
		f.met.Backpressure.Inc()
	}
	if resp.StatusCode >= 500 {
		f.met.Failures.Inc()
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The client hung up mid-relay; the failure counter is the only
		// remaining audience.
		f.met.Failures.Inc()
	}
}

// shardInfo is the /shards view of one backend.
type shardInfo struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Inflight int64  `json:"inflight"`
}

type shardsResponse struct {
	VNodes        int         `json:"vnodes"`
	MaxLoadFactor float64     `json:"max_load_factor"`
	Backends      []shardInfo `json:"backends"`
}

// handleShards reports ring topology and per-backend health/load.
func (f *Front) handleShards(w http.ResponseWriter, r *http.Request) {
	resp := shardsResponse{VNodes: f.opts.VNodes, MaxLoadFactor: f.opts.MaxLoadFactor}
	for _, b := range f.ring.Backends() {
		resp.Backends = append(resp.Backends, shardInfo{
			Addr:     b.Addr(),
			Healthy:  b.Healthy(),
			Inflight: b.Inflight(),
		})
	}
	f.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the front-end's own liveness view: healthy while at
// least one backend is admitted.
func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := f.ring.HealthyCount()
	f.met.Healthy.Set(int64(healthy))
	code := http.StatusOK
	status := "ok"
	if healthy == 0 {
		code = http.StatusServiceUnavailable
		status = "no healthy backends"
	}
	f.writeJSON(w, code, map[string]any{
		"status":   status,
		"healthy":  healthy,
		"backends": len(f.ring.Backends()),
	})
}

// handleModels aggregates the fleet's /models: configs and methods from
// the first reachable backend (identical across a homogeneous fleet),
// cached registry entries merged from every healthy backend and sorted
// for a deterministic cluster view.
func (f *Front) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelsPage struct {
		Models  []json.RawMessage `json:"models"`
		Methods []json.RawMessage `json:"methods"`
		Entries []serve.EntryInfo `json:"entries"`
	}
	var first *modelsPage
	var entries []serve.EntryInfo
	for _, b := range f.ring.Backends() {
		if !b.Healthy() {
			continue
		}
		var page modelsPage
		if err := f.getJSON(r.Context(), b.addr+"/models", &page); err != nil {
			f.met.ScrapeErrors.Inc()
			continue
		}
		if first == nil {
			first = &page
		}
		entries = append(entries, page.Entries...)
	}
	if first == nil {
		f.writeError(w, http.StatusServiceUnavailable, ErrNoBackends)
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	f.writeJSON(w, http.StatusOK, modelsPage{Models: first.Models, Methods: first.Methods, Entries: entries})
}

// getJSON fetches and decodes one backend JSON page.
func (f *Front) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.Unmarshal(body, out)
}

// writeJSON writes a JSON response; an encode failure means the client
// disconnected, which only the failure counter needs to know.
func (f *Front) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		f.met.Failures.Inc()
	}
}

// writeError renders an error with the front-end's status taxonomy.
func (f *Front) writeError(w http.ResponseWriter, code int, err error) {
	if errors.Is(err, serve.ErrBadRequest) {
		code = http.StatusBadRequest
	}
	if code >= 500 {
		f.met.Failures.Inc()
	}
	f.writeJSON(w, code, map[string]string{"error": err.Error()})
}
