// Attention: the paper's Figure 7 in miniature — visualize how much of a
// ViT's attention structure survives full quantization, comparing uniform
// quantization against QUQ at 8 and 6 bits.
package main

import (
	"fmt"
	"os"

	"quq/internal/experiments"
)

func main() {
	res, err := experiments.Fig7(experiments.Fig7Options{Images: 4, Seed: 11})
	if err != nil {
		fmt.Fprintf(os.Stderr, "attention: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatFig7(res))
	fmt.Println("\nReading the maps: each cell is one image patch; darker glyphs mean")
	fmt.Println("more class-token attention (rollout across all blocks). At 6 bits the")
	fmt.Println("uniform map loses the FP32 structure while QUQ's stays close — the")
	fmt.Println("retention scores above quantify it.")
}
