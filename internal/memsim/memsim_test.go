package memsim

import (
	"strings"
	"testing"
)

func shape(batch int) BlockShape {
	return BlockShape{Name: "test", Batch: batch, Tokens: 197, Dim: 384, Heads: 6, MLPRatio: 4}
}

func TestFullQuantBelowPartial(t *testing.T) {
	// The paper's core Figure 2 claim, at every batch size and width.
	for _, bits := range []int{4, 6, 8} {
		for _, b := range []int{1, 4, 16, 64} {
			pq, _ := Peak(shape(b), PartialQuant(bits))
			fq, _ := Peak(shape(b), FullQuant(bits))
			if fq >= pq {
				t.Fatalf("bits=%d batch=%d: FQ peak %d not below PQ %d", bits, b, fq, pq)
			}
		}
	}
}

func TestOverheadGrowsWithBatch(t *testing.T) {
	// "Increasing the batch size further enhances the superiority of the
	// full quantization method" — overhead must be non-decreasing.
	prev := -1.0
	for _, b := range []int{1, 2, 4, 8, 16} {
		ov := Overhead(shape(b), 6)
		if ov < prev-1e-9 {
			t.Fatalf("overhead decreased from %v to %v at batch %d", prev, ov, b)
		}
		prev = ov
	}
}

func TestOverheadLargerForSmallModels(t *testing.T) {
	// "The predominance becomes more evident in small models."
	blocks := PaperBlocks(1)
	small := Overhead(blocks[0], 6) // ViT-S
	large := Overhead(blocks[2], 6) // ViT-L
	if small <= large {
		t.Fatalf("ViT-S overhead %v not above ViT-L %v at batch 1", small, large)
	}
}

func TestOverheadInPaperBand(t *testing.T) {
	// The paper's abstract reports 22.3%–172.6% extra memory for PQ; our
	// accounting (FP32 reds) lands in an overlapping band. Guard the band
	// so accounting regressions are caught.
	for _, batch := range []int{1, 4, 16} {
		for _, blk := range PaperBlocks(batch) {
			ov := Overhead(blk, 6)
			if ov < 0.20 || ov > 3.0 {
				t.Fatalf("%s batch=%d overhead %v escapes the plausible band", blk.Name, batch, ov)
			}
		}
	}
}

func TestPeakTraceConsistency(t *testing.T) {
	peak, steps := Peak(shape(4), FullQuant(6))
	if len(steps) == 0 {
		t.Fatal("no steps traced")
	}
	maxStep := int64(0)
	for _, s := range steps {
		if s.Total() < 0 {
			t.Fatalf("negative memory at %s", s.Op)
		}
		if s.Total() > maxStep {
			maxStep = s.Total()
		}
	}
	if maxStep != peak {
		t.Fatalf("peak %d disagrees with trace max %d", peak, maxStep)
	}
	// Weight-bearing steps must be the GEMMs.
	withWeights := map[string]bool{}
	for _, s := range steps {
		if s.WeightBytes > 0 {
			withWeights[s.Op] = true
		}
	}
	for _, op := range []string{"qkv", "proj", "fc1", "fc2"} {
		if !withWeights[op] {
			t.Fatalf("GEMM %s carries no weights", op)
		}
	}
}

func TestPeakScalesWithBatch(t *testing.T) {
	p1, _ := Peak(shape(1), FullQuant(6))
	p4, _ := Peak(shape(4), FullQuant(6))
	if p4 <= p1 {
		t.Fatal("peak memory must grow with batch")
	}
	// Activations scale linearly; weights are batch-independent, so the
	// growth factor must be below 4.
	if float64(p4) >= 4*float64(p1) {
		t.Fatalf("batch-4 peak %d should be sublinear vs 4×batch-1 %d", p4, 4*p1)
	}
}

func TestBitWidthReducesMemory(t *testing.T) {
	p8, _ := Peak(shape(4), FullQuant(8))
	p6, _ := Peak(shape(4), FullQuant(6))
	p4, _ := Peak(shape(4), FullQuant(4))
	if !(p4 < p6 && p6 < p8) {
		t.Fatalf("peaks not monotone in bit-width: %d, %d, %d", p4, p6, p8)
	}
}

func TestTensorBytesRounding(t *testing.T) {
	if tensorBytes(3, 6) != 3 { // 18 bits -> 3 bytes
		t.Fatalf("tensorBytes(3,6) = %d", tensorBytes(3, 6))
	}
	if tensorBytes(4, 8) != 4 {
		t.Fatalf("tensorBytes(4,8) = %d", tensorBytes(4, 8))
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.0 KiB",
		3 << 20: "3.00 MiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestPaperBlocks(t *testing.T) {
	blocks := PaperBlocks(8)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	for _, b := range blocks {
		if b.Batch != 8 || b.Tokens != 197 {
			t.Fatalf("bad geometry: %+v", b)
		}
	}
	if !strings.HasPrefix(blocks[0].Name, "ViT") {
		t.Fatal("unexpected naming")
	}
}
