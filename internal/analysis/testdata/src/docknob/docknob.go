// Package docknob exercises the serving-tree knob rule: exported
// fields of exported Options/Config structs are operator knobs and
// must each carry a doc comment.
package docknob

// BatcherOptions mirrors a serving knob struct.
type BatcherOptions struct {
	// MaxBatch is documented and passes.
	MaxBatch int
	Linger   int // want `exported knob BatcherOptions\.Linger needs a doc comment`
	queueCap int
}

// ProxyConfig aggregates front-end knobs.
type ProxyConfig struct {
	Retries int // want `exported knob ProxyConfig\.Retries needs a doc comment`
	// Backoff is documented.
	Backoff int
}

// EmbedOptions embeds another knob struct; the embedded field is exempt
// because its docs live on the embedded type.
type EmbedOptions struct {
	BatcherOptions
	Extra int // want `exported knob EmbedOptions\.Extra needs a doc comment`
}

// result is unexported: its fields are private plumbing, not knobs.
type result struct {
	Value int
}

// Summary is exported but not an Options/Config type, so stays
// free-form.
type Summary struct {
	Count int
}

// use keeps the unexported plumbing referenced.
func use() int { return result{Value: 1}.Value + BatcherOptions{}.queueCap }
