package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// page renders a registry with one counter, one gauge and one histogram
// at the given values, returning its text exposition.
func page(t *testing.T, reqs uint64, depth int64, obs []float64) string {
	t.Helper()
	r := NewRegistry()
	c := r.NewCounter("quq_serve_requests_total", "HTTP requests accepted")
	g := r.NewGauge("quq_serve_queue_depth", "images admitted and not yet finished")
	h := r.NewHistogram("quq_serve_request_seconds", "request latency in seconds", LatencyBuckets())
	c.Add(reqs)
	g.Set(depth)
	for _, v := range obs {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestParseTextRoundTrip(t *testing.T) {
	text := page(t, 7, 3, []float64{0.01, 0.02, 1.5})
	e, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Scalar("quq_serve_requests_total"); !ok || v != 7 {
		t.Fatalf("requests scalar = %v, %v; want 7", v, ok)
	}
	if v, ok := e.Scalar("quq_serve_queue_depth"); !ok || v != 3 {
		t.Fatalf("queue depth = %v, %v; want 3", v, ok)
	}
	if n, ok := e.HistCount("quq_serve_request_seconds"); !ok || n != 3 {
		t.Fatalf("histogram count = %v, %v; want 3", n, ok)
	}

	// Re-rendering the parsed page and re-parsing it must be a fixed
	// point: parse(write(parse(x))) == parse(x), and the rendered text
	// must itself be stable.
	var buf bytes.Buffer
	if err := e.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := e2.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("render not a fixed point:\n--- first\n%s\n--- second\n%s", buf.String(), buf2.String())
	}
}

func TestMergeSumsEverything(t *testing.T) {
	a, err := ParseText(strings.NewReader(page(t, 5, 2, []float64{0.01, 0.2})))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText(strings.NewReader(page(t, 9, 1, []float64{0.05})))
	if err != nil {
		t.Fatal(err)
	}
	merged := NewExposition()
	for _, src := range []*Exposition{a, b} {
		if err := merged.Merge(src); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := merged.Scalar("quq_serve_requests_total"); v != 14 {
		t.Fatalf("merged requests = %g; want 14", v)
	}
	if v, _ := merged.Scalar("quq_serve_queue_depth"); v != 3 {
		t.Fatalf("merged queue depth = %g; want 3", v)
	}
	if n, _ := merged.HistCount("quq_serve_request_seconds"); n != 3 {
		t.Fatalf("merged histogram count = %d; want 3", n)
	}
	h := merged.hists["quq_serve_request_seconds"]
	if got, want := h.sum, 0.01+0.2+0.05; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("merged histogram sum = %g; want %g", got, want)
	}
	// The +Inf cumulative bucket must equal the merged count.
	if h.cum[len(h.cum)-1] != 3 {
		t.Fatalf("merged +Inf bucket = %d; want 3", h.cum[len(h.cum)-1])
	}
}

func TestMergeIsOrderIndependent(t *testing.T) {
	pages := []string{
		page(t, 5, 2, []float64{0.01, 0.2}),
		page(t, 9, 1, []float64{0.05}),
		page(t, 1, 0, nil),
	}
	render := func(order []int) string {
		merged := NewExposition()
		for _, i := range order {
			e, err := ParseText(strings.NewReader(pages[i]))
			if err != nil {
				t.Fatal(err)
			}
			if err := merged.Merge(e); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := merged.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render([]int{0, 1, 2}), render([]int{2, 0, 1}); a != b {
		t.Fatalf("merge order changed the rendered cluster view:\n--- 012\n%s\n--- 201\n%s", a, b)
	}
}

func TestMergeRejectsMismatchedBuckets(t *testing.T) {
	ra := NewRegistry()
	ra.NewHistogram("h", "", []float64{1, 2, 3}).Observe(1)
	rb := NewRegistry()
	rb.NewHistogram("h", "", []float64{1, 2}).Observe(1)
	parse := func(r *Registry) *Exposition {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		e, err := ParseText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	merged := NewExposition()
	if err := merged.Merge(parse(ra)); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(parse(rb)); err == nil {
		t.Fatal("merging mismatched bucket layouts must fail")
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"quq_serve_requests_total not-a-number\n",
		"quq_x_bucket{le=\"nope\"} 3\n",
		"just-a-name-no-value\n",
		"quq_x{a=\"1\",b=\"2\"} 3\n", // multi-label samples are outside the dialect
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
}

// TestMergeLabelledScalars: GaugeVec series survive the parse/merge
// round trip — same (name, label value) sums across pages, distinct
// label values stay distinct series, and the merged rendering is
// re-parseable.
func TestMergeLabelledScalars(t *testing.T) {
	pageFor := func(t *testing.T, pairs map[string]int64) string {
		t.Helper()
		r := NewRegistry()
		v := r.NewGaugeVec("quq_shard_backend_inflight", "in-flight per backend", "backend")
		for addr, n := range pairs {
			v.Set(addr, n)
		}
		var buf strings.Builder
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, err := ParseText(strings.NewReader(pageFor(t, map[string]int64{"127.0.0.1:1": 2, "127.0.0.1:2": 5})))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText(strings.NewReader(pageFor(t, map[string]int64{"127.0.0.1:2": 1, "127.0.0.1:3": 7})))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		`quq_shard_backend_inflight{backend="127.0.0.1:1"}`: 2,
		`quq_shard_backend_inflight{backend="127.0.0.1:2"}`: 6,
		`quq_shard_backend_inflight{backend="127.0.0.1:3"}`: 7,
	} {
		if got, ok := a.Scalar(name); !ok || got != want {
			t.Fatalf("%s = %v, %v; want %v", name, got, ok, want)
		}
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("merged page does not re-parse: %v", err)
	}

	// Malformed labelled lines must still be rejected, not merged as
	// zeros.
	if _, err := ParseText(strings.NewReader("x{backend=unquoted} 1\n")); err == nil {
		t.Fatal("unquoted label value parsed")
	}
	if _, err := ParseText(strings.NewReader(`x{backend="a"} notanumber` + "\n")); err == nil {
		t.Fatal("non-numeric labelled scalar parsed")
	}
}
