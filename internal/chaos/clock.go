package chaos

import (
	"context"
	"sync"
	"time"
)

// Clock is the injectable time source for library code that needs to
// pace itself (retry backoff, injected latency, poll loops). Production
// code takes a Clock and defaults it to Real; the chaos harness and
// unit tests substitute a *Fake to make every sleep observable and
// instantaneous. The quqvet sleepless analyzer flags bare
// time.Sleep/time.After in non-test library code so new pacing paths
// cannot bypass this seam.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case and nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
}

// Real is the wall-clock Clock.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Sleep blocks on a real timer, honouring ctx cancellation.
func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Fake is a recording, auto-advancing Clock: Sleep never blocks, it
// advances the fake now by d and records d. That turns timing-dependent
// code (retry backoff, injected latency) into code whose schedule can
// be asserted byte-for-byte, and makes chaos runs independent of
// machine speed. Safe for concurrent use.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFake returns a Fake clock starting at a fixed epoch.
func NewFake() *Fake {
	return &Fake{now: time.Unix(0, 0)}
}

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep records d, advances the fake time, and returns immediately
// (ctx.Err() if ctx is already done, mirroring Real's contract).
func (f *Fake) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d < 0 {
		d = 0
	}
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.sleeps = append(f.sleeps, d)
	f.mu.Unlock()
	return nil
}

// Sleeps snapshots every recorded sleep duration in call order.
func (f *Fake) Sleeps() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}
