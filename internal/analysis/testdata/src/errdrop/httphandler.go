package errdrop

import (
	"encoding/json"
	"io"
)

// HTTP-handler-shaped cases, added alongside the quq-serve subsystem.
// responseWriter stands in for http.ResponseWriter (same io.Writer
// embedding) so the fixture does not drag net/http through the source
// importer; the analyzer keys on the encoding/json call, not the
// receiver type.

type responseWriter interface {
	io.Writer
	WriteHeader(status int)
}

// The classic dropped-encode handler bug: a client disconnect or a
// marshal failure vanishes and the handler reports nothing.
func handlerDroppedEncode(w responseWriter, v any) {
	w.WriteHeader(200)
	json.NewEncoder(w).Encode(v) // want `error return of Encoder\.Encode discarded`
}

// Blank-assigning the encode error is the same bug in disguise.
func handlerBlankEncode(w responseWriter, v any) {
	_ = json.NewEncoder(w).Encode(v) // want `error return of Encoder\.Encode assigned to _`
}

// Dropping the decode error serves garbage from a malformed body.
func handlerDroppedDecode(r io.Reader, v any) {
	json.NewDecoder(r).Decode(v) // want `error return of Decoder\.Decode discarded`
}

// The quq-serve idiom: the encode error is observed (failure counter /
// log), so nothing is flagged.
func handlerHandledEncode(w responseWriter, v any, failures *int) {
	w.WriteHeader(200)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		*failures++
	}
}

// Propagating the decode error upward is handled too.
func handlerPropagatedDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// A deliberate drop on a best-effort metrics write carries the directive.
func handlerAnnotatedEncode(w responseWriter, v any) {
	//quq:errdrop-ok fixture: best-effort scrape response; the client hung up
	json.NewEncoder(w).Encode(v)
}
