package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DocMissing enforces the repo's documentation contract: every package
// opens with a godoc package comment naming its role — for library
// packages one starting "Package <name> ..." (the godoc convention, and
// what ARCHITECTURE.md's inventory is generated against), for commands
// any package doc (idiomatically "Command <name> ..."). In the serving
// tree (packages under a "serve" or "shard" path segment) it further
// requires a doc comment on every exported field of exported structs
// named *Options or *Config: those fields are operator knobs surfaced
// as CLI flags, and docs/TUNING.md is written against their godoc. The
// check has no suppression directive: a package either documents itself
// or fails vet.
var DocMissing = &Analyzer{
	Name: "docmissing",
	Doc:  "every package must carry a package doc comment (library docs start \"Package <name>\"); serving-tree Options/Config fields need doc comments",
	Run:  runDocMissing,
}

func runDocMissing(pass *Pass) {
	if len(pass.Files) == 0 {
		return
	}
	checkKnobFieldDocs(pass)
	var documented []*ast.File
	for _, f := range pass.Files {
		if f.Doc != nil {
			documented = append(documented, f)
		}
	}
	name := pass.Files[0].Name.Name

	if len(documented) == 0 {
		// Anchor the finding on the lexicographically first file so the
		// diagnostic position is stable regardless of load order.
		first := pass.Files[0]
		for _, f := range pass.Files[1:] {
			if pass.Fset.Position(f.Package).Filename < pass.Fset.Position(first.Package).Filename {
				first = f
			}
		}
		pass.Reportf(first.Package, "package %s has no package doc comment; document its paper section or serving role", name)
		return
	}
	if name == "main" {
		return
	}
	want := "Package " + name
	for _, f := range documented {
		text := strings.TrimSpace(f.Doc.Text())
		if text == want || strings.HasPrefix(text, want+" ") {
			return
		}
	}
	pass.Reportf(documented[0].Doc.Pos(), "package doc comment must start with %q (godoc convention)", want)
}

// servingTreePath reports whether the package lives in the serving tree,
// where exported knob structs feed CLI flags and the tuning guide.
func servingTreePath(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if seg == "serve" || seg == "shard" {
			return true
		}
	}
	return false
}

// checkKnobFieldDocs requires a doc comment on every exported field of
// exported Options/Config structs in serving-tree packages. Embedded
// fields are exempt (their docs live on the embedded type); unexported
// fields and structs are private plumbing and stay free-form.
func checkKnobFieldDocs(pass *Pass) {
	if !servingTreePath(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				name := ts.Name.Name
				if !strings.HasSuffix(name, "Options") && !strings.HasSuffix(name, "Config") {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					if len(field.Names) == 0 {
						continue // embedded field
					}
					if field.Doc != nil && strings.TrimSpace(field.Doc.Text()) != "" {
						continue
					}
					for _, fn := range field.Names {
						if !fn.IsExported() {
							continue
						}
						pass.Reportf(fn.Pos(), "exported knob %s.%s needs a doc comment (serving-tree Options/Config fields are operator-facing)", name, fn.Name)
					}
				}
			}
		}
	}
}
