// Package hotalloc is the fixture corpus for the hotalloc analyzer:
// functions whose doc comment carries //quq:hotpath must not allocate
// tensors or integer scratch slices — scratch comes from an Arena or a
// caller-provided destination.
package hotalloc

import (
	"quq/internal/qub"
	"quq/internal/tensor"
)

// hot is a marked steady-state kernel; every allocating tensor call in
// its body is a finding.
//
//quq:hotpath fixture: marked steady-state
func hot(dst, a, b *tensor.Tensor) *tensor.Tensor {
	t := tensor.New(2, 2)               // want `tensor allocation tensor\.New in //quq:hotpath function hot`
	u := t.Clone()                      // want `tensor allocation Tensor\.Clone in //quq:hotpath function hot`
	_ = u.Transpose()                   // want `tensor allocation Tensor\.Transpose in //quq:hotpath function hot`
	_ = a.Add(b)                        // want `tensor allocation Tensor\.Add in //quq:hotpath function hot`
	_ = tensor.MatMul(a, b)             // want `tensor allocation tensor\.MatMul in //quq:hotpath function hot`
	return tensor.MatMulInto(dst, a, b) // destination passing: not flagged
}

// hotArena uses the sanctioned scratch path; Arena methods share names
// with the package constructors but are not allocations in the steady
// state.
//
//quq:hotpath fixture: arena scratch only
func hotArena(a, b *tensor.Tensor) *tensor.Tensor {
	ar := tensor.GetArena()
	defer ar.Release()
	x := ar.NewUninit(2, 2) // arena scratch: not flagged
	y := ar.New(2, 2)       // arena scratch: not flagged
	tensor.MatMulInto(x, a, b)
	ar.Put(y)
	escapes := tensor.New(2, 2) //quq:hotalloc-ok fixture: documented deliberate allocation
	tensor.AddInto(escapes, x, x)
	return escapes
}

// hotInts allocates the integer hot path's two scratch currencies with
// make; both are findings. Arena Int64 scratch, a suppressed retained
// slice, and slices of other element types are not.
//
//quq:hotpath fixture: integer scratch slices
func hotInts(n int) int64 {
	acc := make([]int64, n)   // want `integer scratch allocation make\(\[\]int64\) in //quq:hotpath function hotInts`
	ws := make([]qub.Word, n) // want `integer scratch allocation make\(\[\]qub\.Word\) in //quq:hotpath function hotInts`
	_ = ws
	ar := tensor.GetArena()
	defer ar.Release()
	pooled := ar.Int64(n) // arena scratch: not flagged
	defer ar.PutInt64(pooled)
	resident := make([]int64, n) //quq:hotalloc-ok fixture: retained in a resident operand
	fs := make([]float64, n)     // other element types: not flagged
	_ = fs
	return acc[0] + resident[0] + pooled[0]
}

// cold has no hotpath marker and may allocate freely.
func cold(a *tensor.Tensor) *tensor.Tensor {
	_ = make([]int64, 4) // unmarked function: not flagged
	return tensor.New(3, 3).Add(a.Clone())
}

// hotLiteral checks that allocations inside a function literal declared
// in a hot function are still attributed to the hot function.
//
//quq:hotpath fixture: nested literal
func hotLiteral() {
	f := func() *tensor.Tensor {
		return tensor.Zeros(1, 1) // want `tensor allocation tensor\.Zeros in //quq:hotpath function hotLiteral`
	}
	f()
}
