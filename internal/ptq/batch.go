package ptq

import (
	"runtime"
	"sync"

	"quq/internal/tensor"
)

// ForwardBatch classifies a batch of images, fanning the per-image
// forward passes across at most workers goroutines (workers <= 0 means
// GOMAXPROCS). The result slice is index-aligned with images, and each
// output is bit-identical to the corresponding serial Forward call: the
// forward path is deterministic and shares no mutable state between
// images (see the concurrency contract on Forward), so parallel order
// cannot perturb the arithmetic.
//
// This is the batch primitive behind quq-serve's micro-batching
// scheduler; it is exported so non-HTTP callers (benchmarks, bulk
// evaluation) get the same amortization.
//
// Interaction with intra-op parallelism: the kernel layer's worker
// budget (tensor.SetIntraOpWorkers) defaults to 1, so under ForwardBatch
// every image's GEMMs run serially inside their goroutine and the two
// levels of parallelism never multiply. Raising the intra-op budget is
// safe — the budget is a process-wide token pool, so batch workers share
// (budget−1) extra kernel goroutines rather than spawning budget each —
// but for throughput-oriented batch serving the inter-image fan-out here
// is the better use of cores; keep the intra-op budget at 1 and spend
// the cores on `workers` instead. Reserve SetIntraOpWorkers(n>1) for
// latency-oriented single-image callers.
func (q *QuantizedModel) ForwardBatch(images []*tensor.Tensor, workers int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(images))
	if len(images) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(images) {
		workers = len(images)
	}
	if workers == 1 {
		for i, img := range images {
			out[i] = q.Forward(img)
		}
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = q.Forward(images[i])
			}
		}()
	}
	for i := range images {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
