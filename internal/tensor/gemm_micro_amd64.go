//go:build amd64

package tensor

// AVX path of the 4×4 micro-kernel. The assembly kernel keeps one ymm
// accumulator per A row (four float64 column lanes) and issues one
// VMULPD + one VADDPD per row per k step — per lane exactly the two
// roundings of the scalar kernel, in the same ascending-k order, and
// never an FMA — so its results are bit-identical to micro4x4Go. The
// equivalence and fuzz tests in gemm_test.go exercise whichever kernel
// init selected against the scalar reference oracles.

// gemmKernel4x4 computes c[r*4+j] = Σ_kk a_r[kk]·bp[kk*4+j] for r,j in
// 0..3. k must be ≥ 1 and the pointers must address k (rows) and 4k
// (panel) readable float64s. Implemented in gemm_micro_amd64.s.
//
//go:noescape
func gemmKernel4x4(c *[16]float64, a0, a1, a2, a3, bp *float64, k int)

// cpuHasAVX reports CPU and OS support for AVX (CPUID leaf 1 OSXSAVE +
// AVX, and XCR0 enabling xmm+ymm state). Implemented in
// gemm_micro_amd64.s.
func cpuHasAVX() bool

func micro4x4AVX(c *[16]float64, a0, a1, a2, a3, bp []float64, k int) {
	if k == 0 {
		*c = [16]float64{}
		return
	}
	gemmKernel4x4(c, &a0[0], &a1[0], &a2[0], &a3[0], &bp[0], k)
}

func init() {
	if cpuHasAVX() {
		micro4x4 = micro4x4AVX
	}
}
