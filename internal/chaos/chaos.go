// Package chaos is the deterministic fault-injection layer for the
// serve/shard stack. It plugs into the stack's existing seams — the
// outbound http.RoundTripper of the quq-shard proxy and prober
// (Transport), the registry's calibration hook and the batcher's
// forward hook (serve options; the fleet harness installs chaos
// closures there) — and drives every injected fault from a scripted
// schedule seeded through internal/rng, so a chaos run is
// byte-reproducible: the same Script against the same workload injects
// the same faults in the same places.
//
// The pieces:
//
//   - Clock (clock.go): the injectable time source library code must
//     sleep through. Real sleeps; Fake records and returns immediately,
//     which is what makes retry-backoff schedules observable and chaos
//     runs fast. The quqvet sleepless analyzer enforces that non-test
//     library code does not call time.Sleep/time.After directly.
//   - Script/Rule/Transport (transport.go): a fault schedule compiled
//     onto an http.RoundTripper. Rules match (method, path prefix,
//     host) and inject connection resets, added latency, synthesized
//     429/5xx storms, truncated bodies, or black-holed requests;
//     probabilistic rules draw from a SplitMix64 stream seeded by the
//     script, never from math/rand or the wall clock.
//   - Report and the invariant checkers (invariants.go): the vocabulary
//     the chaos harness states its guarantees in — reply conservation,
//     calibrate-exactly-once, 429-never-retried, bounded remapping on
//     eject/re-admit, bounded drain. Checkers are pure functions over
//     observed counts and ownership maps, so internal/chaos/fleet can
//     assert them against a live in-process fleet and unit tests can
//     assert them against hand-built histories.
//
// The fleet harness that boots real quq-serve workers behind a real
// front-end and replays the shipped scripts lives in
// internal/chaos/fleet; `quq-shard -chaos` is its command-line gate.
package chaos
