package nn

import (
	"fmt"
	"math"

	"quq/internal/data"
	"quq/internal/mathx"
	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// Trainer performs full backpropagation training of a plain ViT (the
// ViT-Nano configuration): cross-entropy on the class token with Adam.
// It operates directly on a vit.ViT's parameters — the same model object
// is used for training and, afterwards, for quantized inference — so
// there is no weight-conversion step.
//
// Only the VariantViT architecture without distillation or register
// tokens is supported: that is the trained-model configuration the
// experiments use; the synthetic zoo covers the rest.
type Trainer struct {
	M *vit.ViT

	// Adam state, keyed by parameter name in Params order.
	step   int
	moment map[string][]float64
	veloc  map[string][]float64
	grads  map[string][]float64

	// Hyperparameters.
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	Decay float64
}

// NewTrainer wraps a freshly initialized model for training.
func NewTrainer(m vit.Model) (*Trainer, error) {
	v, ok := m.(*vit.ViT)
	if !ok {
		return nil, fmt.Errorf("nn: trainer supports the plain ViT variant only")
	}
	cfg := v.Config()
	if cfg.Variant != vit.VariantViT || cfg.Registers != 0 {
		return nil, fmt.Errorf("nn: trainer supports plain ViT without register tokens")
	}
	t := &Trainer{
		M:      v,
		moment: map[string][]float64{},
		veloc:  map[string][]float64{},
		grads:  map[string][]float64{},
		LR:     3e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Decay: 1e-4,
	}
	v.Params(func(name string, d []float64) {
		t.moment[name] = make([]float64, len(d))
		t.veloc[name] = make([]float64, len(d))
		t.grads[name] = make([]float64, len(d))
	})
	return t, nil
}

// blockCache stores the forward intermediates one block needs for its
// backward pass.
type blockCache struct {
	x     *tensor.Tensor // block input
	ln1   *lnCache
	h1    *tensor.Tensor // LN1 output
	qkv   *tensor.Tensor
	probs *tensor.Tensor // [heads*T, T]
	ctx   *tensor.Tensor
	x1    *tensor.Tensor // after first residual
	ln2   *lnCache
	h2    *tensor.Tensor // LN2 output
	hid   *tensor.Tensor // fc1 output (GELU input)
	gelu  *tensor.Tensor
}

type lnCache struct {
	xhat *tensor.Tensor // normalized pre-affine values
	inv  []float64      // 1/σ̃ per row
}

// lnForward computes LayerNorm with cache.
func lnForward(ln *vit.LayerNorm, x *tensor.Tensor) (*tensor.Tensor, *lnCache) {
	n, d := x.Dim(0), x.Dim(1)
	out := tensor.New(n, d)
	c := &lnCache{xhat: tensor.New(n, d), inv: make([]float64, n)}
	for r := 0; r < n; r++ {
		row := x.Row(r)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		var ss float64
		for _, v := range row {
			dv := v - mean
			ss += dv * dv
		}
		inv := 1 / math.Sqrt(ss/float64(d)+ln.Eps)
		c.inv[r] = inv
		xh := c.xhat.Row(r)
		orow := out.Row(r)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			orow[j] = xh[j]*ln.Gamma[j] + ln.Beta[j]
		}
	}
	return out, c
}

// lnBackward propagates through LayerNorm, accumulating dGamma/dBeta.
func lnBackward(ln *vit.LayerNorm, c *lnCache, dy *tensor.Tensor, dGamma, dBeta []float64) *tensor.Tensor {
	n, d := dy.Dim(0), dy.Dim(1)
	dx := tensor.New(n, d)
	for r := 0; r < n; r++ {
		dyr := dy.Row(r)
		xh := c.xhat.Row(r)
		var meanDxh, meanDxhXh float64
		for j, g := range dyr {
			dGamma[j] += g * xh[j]
			dBeta[j] += g
			dxh := g * ln.Gamma[j]
			meanDxh += dxh
			meanDxhXh += dxh * xh[j]
		}
		meanDxh /= float64(d)
		meanDxhXh /= float64(d)
		dxr := dx.Row(r)
		for j, g := range dyr {
			dxh := g * ln.Gamma[j]
			dxr[j] = c.inv[r] * (dxh - meanDxh - xh[j]*meanDxhXh)
		}
	}
	return dx
}

// linForward computes y = xW + b (no cache needed beyond x itself).
func linForward(l *vit.Linear, x *tensor.Tensor) *tensor.Tensor {
	return tensor.MatMul(x, l.W).AddRowVector(l.B)
}

// linBackward accumulates dW = xᵀ·dy, dB = Σ dy, and returns dx = dy·Wᵀ.
func linBackward(l *vit.Linear, x, dy *tensor.Tensor, dW, dB []float64) *tensor.Tensor {
	n, in := x.Dim(0), x.Dim(1)
	out := l.Out()
	for r := 0; r < n; r++ {
		xr := x.Row(r)
		dyr := dy.Row(r)
		for i := 0; i < in; i++ {
			xi := xr[i]
			if xi == 0 {
				continue
			}
			row := dW[i*out : (i+1)*out]
			for j, g := range dyr {
				row[j] += xi * g
			}
		}
		for j, g := range dyr {
			dB[j] += g
		}
	}
	// dx = dy·Wᵀ: MatMulT(dy [n,out], W [in,out]) -> [n,in].
	return tensor.MatMulT(dy, l.W)
}

// forwardSample runs one image through the model with caches.
type forwardCache struct {
	patches *tensor.Tensor
	tokens  *tensor.Tensor
	blocks  []*blockCache
	lnF     *lnCache
	final   *tensor.Tensor // final LN output
	cls     *tensor.Tensor // [1, dim]
	logits  []float64
	probs   []float64
}

func (t *Trainer) forward(img *tensor.Tensor) *forwardCache {
	m := t.M
	cfg := m.Config()
	fc := &forwardCache{}
	fc.patches = vit.Patchify(img, cfg.PatchSize)
	emb := linForward(m.Patch, fc.patches)
	tokens := tensor.New(emb.Dim(0)+1, cfg.Dim)
	copy(tokens.Row(0), m.Cls)
	for r := 0; r < emb.Dim(0); r++ {
		copy(tokens.Row(r+1), emb.Row(r))
	}
	tokens.AddInPlace(m.Pos)
	fc.tokens = tokens

	x := tokens
	for _, b := range m.Blocks {
		bc := &blockCache{x: x}
		bc.h1, bc.ln1 = lnForward(b.LN1, x)
		bc.qkv = linForward(b.QKV, bc.h1)
		bc.probs, bc.ctx = attnForward(bc.qkv, b.Heads)
		o := linForward(b.Proj, bc.ctx)
		bc.x1 = x.Add(o)
		bc.h2, bc.ln2 = lnForward(b.LN2, bc.x1)
		bc.hid = linForward(b.FC1, bc.h2)
		bc.gelu = bc.hid.Map(mathx.Gelu)
		o2 := linForward(b.FC2, bc.gelu)
		x = bc.x1.Add(o2)
		fc.blocks = append(fc.blocks, bc)
	}
	fc.final, fc.lnF = lnForward(m.Final, x)
	fc.cls = tensor.New(1, cfg.Dim)
	copy(fc.cls.Row(0), fc.final.Row(0))
	logits := linForward(m.Head, fc.cls)
	fc.logits = append([]float64(nil), logits.Row(0)...)
	fc.probs = append([]float64(nil), fc.logits...)
	mathx.SoftmaxInPlace(fc.probs)
	return fc
}

// attnForward computes multi-head attention from a packed qkv tensor,
// returning the [heads*T, T] probabilities and the [T, dim] context.
func attnForward(qkv *tensor.Tensor, heads int) (*tensor.Tensor, *tensor.Tensor) {
	s := qkv.Dim(0)
	dim := qkv.Dim(1) / 3
	dh := dim / heads
	scale := 1 / math.Sqrt(float64(dh))
	probs := tensor.New(heads*s, s)
	ctx := tensor.New(s, dim)
	for hd := 0; hd < heads; hd++ {
		for i := 0; i < s; i++ {
			qrow := qkv.Row(i)[hd*dh : (hd+1)*dh]
			prow := probs.Row(hd*s + i)
			for j := 0; j < s; j++ {
				krow := qkv.Row(j)[dim+hd*dh : dim+(hd+1)*dh]
				var dot float64
				for e := range qrow {
					dot += qrow[e] * krow[e]
				}
				prow[j] = dot * scale
			}
			mathx.SoftmaxInPlace(prow)
			crow := ctx.Row(i)[hd*dh : (hd+1)*dh]
			for j := 0; j < s; j++ {
				p := prow[j]
				if p == 0 {
					continue
				}
				vrow := qkv.Row(j)[2*dim+hd*dh : 2*dim+(hd+1)*dh]
				for e := range crow {
					crow[e] += p * vrow[e]
				}
			}
		}
	}
	return probs, ctx
}

// attnBackward propagates dCtx back to dQKV given the cached qkv and
// probabilities.
func attnBackward(qkv, probs, dCtx *tensor.Tensor, heads int) *tensor.Tensor {
	s := qkv.Dim(0)
	dim := qkv.Dim(1) / 3
	dh := dim / heads
	scale := 1 / math.Sqrt(float64(dh))
	dQKV := tensor.New(s, 3*dim)
	for hd := 0; hd < heads; hd++ {
		for i := 0; i < s; i++ {
			prow := probs.Row(hd*s + i)
			dcr := dCtx.Row(i)[hd*dh : (hd+1)*dh]
			// dP_ij = dCtx_i · V_j ; dV_j += P_ij · dCtx_i
			dp := make([]float64, s)
			for j := 0; j < s; j++ {
				vrow := qkv.Row(j)[2*dim+hd*dh : 2*dim+(hd+1)*dh]
				var d float64
				for e := range dcr {
					d += dcr[e] * vrow[e]
				}
				dp[j] = d
				dvr := dQKV.Row(j)[2*dim+hd*dh : 2*dim+(hd+1)*dh]
				p := prow[j]
				for e := range dcr {
					dvr[e] += p * dcr[e]
				}
			}
			// Softmax backward: dS_j = P_j (dp_j − Σ_k P_k dp_k).
			var dot float64
			for j := 0; j < s; j++ {
				dot += prow[j] * dp[j]
			}
			for j := 0; j < s; j++ {
				ds := prow[j] * (dp[j] - dot) * scale
				if ds == 0 {
					continue
				}
				// dQ_i += ds · K_j ; dK_j += ds · Q_i
				qrow := qkv.Row(i)[hd*dh : (hd+1)*dh]
				krow := qkv.Row(j)[dim+hd*dh : dim+(hd+1)*dh]
				dqr := dQKV.Row(i)[hd*dh : (hd+1)*dh]
				dkr := dQKV.Row(j)[dim+hd*dh : dim+(hd+1)*dh]
				for e := 0; e < dh; e++ {
					dqr[e] += ds * krow[e]
					dkr[e] += ds * qrow[e]
				}
			}
		}
	}
	return dQKV
}

// backward accumulates gradients for one sample given its forward cache
// and label; returns the cross-entropy loss.
func (t *Trainer) backward(fc *forwardCache, label int) float64 {
	m := t.M
	cfg := m.Config()
	loss := -math.Log(math.Max(fc.probs[label], 1e-12))

	dLogits := tensor.New(1, cfg.Classes)
	copy(dLogits.Row(0), fc.probs)
	dLogits.Row(0)[label] -= 1

	dCls := linBackward(m.Head, fc.cls, dLogits, t.grads["head.w"], t.grads["head.b"])
	dFinal := tensor.New(fc.final.Dim(0), cfg.Dim)
	copy(dFinal.Row(0), dCls.Row(0))
	dx := lnBackward(m.Final, fc.lnF, dFinal, t.grads["final.g"], t.grads["final.b"])

	for bi := len(m.Blocks) - 1; bi >= 0; bi-- {
		b := m.Blocks[bi]
		bc := fc.blocks[bi]
		pfx := fmt.Sprintf("block%02d", bi)

		// Second residual: x2 = x1 + FC2(gelu(FC1(LN2(x1)))).
		dGelu := linBackward(b.FC2, bc.gelu, dx, t.grads[pfx+".fc2.w"], t.grads[pfx+".fc2.b"])
		dHid := dGelu.Clone()
		for i, v := range bc.hid.Data() {
			dHid.Data()[i] *= geluPrime(v)
		}
		dH2 := linBackward(b.FC1, bc.h2, dHid, t.grads[pfx+".fc1.w"], t.grads[pfx+".fc1.b"])
		dx1 := lnBackward(b.LN2, bc.ln2, dH2, t.grads[pfx+".ln2.g"], t.grads[pfx+".ln2.b"])
		dx1.AddInPlace(dx) // residual path

		// First residual: x1 = x + Proj(Attn(LN1(x))).
		dCtx := linBackward(b.Proj, bc.ctx, dx1, t.grads[pfx+".proj.w"], t.grads[pfx+".proj.b"])
		dQKV := attnBackward(bc.qkv, bc.probs, dCtx, b.Heads)
		dH1 := linBackward(b.QKV, bc.h1, dQKV, t.grads[pfx+".qkv.w"], t.grads[pfx+".qkv.b"])
		dxPrev := lnBackward(b.LN1, bc.ln1, dH1, t.grads[pfx+".ln1.g"], t.grads[pfx+".ln1.b"])
		dxPrev.AddInPlace(dx1)
		dx = dxPrev
	}

	// Token assembly: dx covers [cls; patches] + pos.
	for i, v := range dx.Data() {
		t.grads["pos"][i] += v
	}
	for j, v := range dx.Row(0) {
		t.grads["cls"][j] += v
	}
	dEmb := tensor.New(dx.Dim(0)-1, cfg.Dim)
	for r := 0; r < dEmb.Dim(0); r++ {
		copy(dEmb.Row(r), dx.Row(r+1))
	}
	linBackward(m.Patch, fc.patches, dEmb, t.grads["patch.w"], t.grads["patch.b"])
	return loss
}

func geluPrime(x float64) float64 {
	phi := 0.5 * (1 + math.Erf(x/math.Sqrt2))
	pdf := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
	return phi + x*pdf
}

// Step runs one Adam step over a mini-batch and returns the mean loss.
func (t *Trainer) Step(batch []data.Sample) float64 {
	for _, g := range t.grads {
		for i := range g {
			g[i] = 0
		}
	}
	var loss float64
	for _, s := range batch {
		fc := t.forward(s.Image)
		loss += t.backward(fc, s.Label)
	}
	n := float64(len(batch))
	loss /= n

	t.step++
	b1c := 1 - math.Pow(t.Beta1, float64(t.step))
	b2c := 1 - math.Pow(t.Beta2, float64(t.step))
	t.M.Params(func(name string, p []float64) {
		g := t.grads[name]
		mom := t.moment[name]
		vel := t.veloc[name]
		for i := range p {
			gi := g[i]/n + t.Decay*p[i]
			mom[i] = t.Beta1*mom[i] + (1-t.Beta1)*gi
			vel[i] = t.Beta2*vel[i] + (1-t.Beta2)*gi*gi
			p[i] -= t.LR * (mom[i] / b1c) / (math.Sqrt(vel[i]/b2c) + t.Eps)
		}
	})
	return loss
}

// TrainOptions configures TrainNano.
type TrainOptions struct {
	Epochs    int // default 12
	BatchSize int // default 16
	TrainN    int // default 480
	Seed      uint64
	// Progress, if non-nil, receives (epoch, loss, trainAcc) per epoch.
	Progress func(epoch int, loss, acc float64)
}

// TrainNano trains a fresh ViT-Nano on the pattern task with full
// backpropagation and returns the trained model with its final training
// accuracy. This is the repo's genuinely *trained* quantization target
// (the zoo models get fitted heads only).
func TrainNano(opts TrainOptions) (vit.Model, float64, error) {
	if opts.Epochs == 0 {
		opts.Epochs = 12
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 16
	}
	if opts.TrainN == 0 {
		opts.TrainN = 480
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	cfg := vit.ViTNano
	m := vit.New(cfg, opts.Seed)
	tr, err := NewTrainer(m)
	if err != nil {
		return nil, 0, err
	}
	train := data.PatternSamples(cfg.Channels, cfg.ImageSize, opts.TrainN, opts.Seed^0x7EA1)
	src := rng.New(opts.Seed ^ 0x57E9)

	acc := 0.0
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		perm := src.Perm(len(train))
		var loss float64
		steps := 0
		for at := 0; at+opts.BatchSize <= len(perm); at += opts.BatchSize {
			batch := make([]data.Sample, opts.BatchSize)
			for i := range batch {
				batch[i] = train[perm[at+i]]
			}
			loss += tr.Step(batch)
			steps++
		}
		hit := 0
		for _, s := range train {
			if m.Forward(s.Image, vit.ForwardOpts{}).ArgMax() == s.Label {
				hit++
			}
		}
		acc = float64(hit) / float64(len(train))
		if opts.Progress != nil {
			opts.Progress(epoch, loss/float64(steps), acc)
		}
	}
	return m, acc, nil
}
