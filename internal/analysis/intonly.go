package analysis

import (
	"go/ast"
	"go/token"
)

// intOnlyPackages are the packages whose function bodies form the QUB
// decode / integer-GEMM hot path: after decoding, QUA inference is a
// signed multiplier plus a per-element shift (paper Eq. (5)–(6)), so
// floating-point arithmetic here silently breaks the bit-exactness the
// hardware claim rests on.
var intOnlyPackages = map[string]bool{
	"quq/internal/accel": true,
	"quq/internal/qub":   true,
}

// IntOnly flags floating-point arithmetic, conversions to float types,
// and math.* calls inside the integer-datapath packages. Calibration
// and boundary code (encode from float, decode to float, rescale-factor
// derivation) is legitimate float territory and carries a
// //quq:float-ok directive with its justification.
var IntOnly = &Analyzer{
	Name:      "intonly",
	Doc:       "integer-datapath packages must not compute in floating point (Eq. (5): multiplier + shift only)",
	Directive: "float-ok",
	Run:       runIntOnly,
}

func runIntOnly(pass *Pass) {
	if !intOnlyPackages[pass.PkgPath] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if tv, ok := pass.Info.Types[n.X]; ok && isFloat(tv.Type) {
						pass.Reportf(n.OpPos, "floating-point %s in integer-datapath package %s", n.Op, pass.PkgPath)
					}
				}
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					if tv, ok := pass.Info.Types[n.Lhs[0]]; ok && isFloat(tv.Type) {
						pass.Reportf(n.TokPos, "floating-point %s in integer-datapath package %s", n.Tok, pass.PkgPath)
					}
				}
			case *ast.CallExpr:
				// Conversion to a float type.
				if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() && isFloat(tv.Type) {
					pass.Reportf(n.Pos(), "conversion to %s in integer-datapath package %s", tv.Type, pass.PkgPath)
					return true
				}
				// Any math.* call: the hot path has shift-based
				// equivalents for everything it legitimately needs.
				if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
					pass.Reportf(n.Pos(), "math.%s call in integer-datapath package %s", fn.Name(), pass.PkgPath)
				}
			}
			return true
		})
	}
}
