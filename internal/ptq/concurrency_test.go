package ptq

import (
	"sync"
	"testing"

	"quq/internal/tensor"
)

// quantizedNanoCache shares one fully-quantized QUQ model across the
// concurrency tests: calibration dominates their runtime and the tests
// only read the model, which is exactly the contract under test.
var quantizedNanoCache struct {
	once sync.Once
	qm   *QuantizedModel
	imgs []*tensor.Tensor
	err  error
}

// quantizedNano returns a small fully-quantized QUQ model plus an image
// workload for the concurrency tests.
func quantizedNano(t *testing.T, nImages int) (*QuantizedModel, []*tensor.Tensor) {
	t.Helper()
	c := &quantizedNanoCache
	c.once.Do(func() {
		m, calib, _ := nano(t)
		c.imgs = calib
		c.qm, c.err = Quantize(m, NewQUQ(), CalibOptions{Bits: 6, Regime: Full, Images: calib})
	})
	if c.err != nil {
		t.Fatal(c.err)
	}
	imgs := make([]*tensor.Tensor, nImages)
	for i := range imgs {
		imgs[i] = c.imgs[i%len(c.imgs)]
	}
	return c.qm, imgs
}

// TestQuantizedForwardConcurrent hammers one QuantizedModel from 8
// goroutines and asserts every output is bit-identical to serial
// execution — the concurrency contract quq-serve's worker pool relies
// on. Run under -race (check.sh always does), this also proves the
// forward path shares no mutable state between calls.
func TestQuantizedForwardConcurrent(t *testing.T) {
	const goroutines = 8
	const rounds = 2
	qm, imgs := quantizedNano(t, 6)

	serial := make([]*tensor.Tensor, len(imgs))
	for i, img := range imgs {
		serial[i] = qm.Forward(img)
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines*rounds*len(imgs))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the images at a different offset so
				// the same image is in flight on several goroutines at once.
				for k := range imgs {
					i := (k + g) % len(imgs)
					got := qm.Forward(imgs[i])
					want := serial[i]
					if got.Len() != want.Len() {
						errs <- "logit length mismatch"
						continue
					}
					for j, v := range got.Data() {
						if v != want.Data()[j] {
							errs <- "concurrent logits differ from serial"
							break
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestForwardBatchMatchesSerial checks the exported batch helper:
// index-aligned, bit-identical outputs at several worker counts,
// including the degenerate empty batch.
func TestForwardBatchMatchesSerial(t *testing.T) {
	qm, imgs := quantizedNano(t, 6)
	serial := make([]*tensor.Tensor, len(imgs))
	for i, img := range imgs {
		serial[i] = qm.Forward(img)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got := qm.ForwardBatch(imgs, workers)
		if len(got) != len(imgs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(imgs))
		}
		for i := range got {
			for j, v := range got[i].Data() {
				if v != serial[i].Data()[j] {
					t.Fatalf("workers=%d image %d: batch output differs from serial", workers, i)
				}
			}
		}
	}
	if out := qm.ForwardBatch(nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// TestAgreementAccuracyEmpty is the regression test for the NaN guards:
// empty (or mismatched) evaluation slices must read as 0, not 0/0.
func TestAgreementAccuracyEmpty(t *testing.T) {
	qm, imgs := quantizedNano(t, 2)
	ref := qm // any Classifier works; the guards fire before Forward
	if got := Agreement(ref, qm, nil); got != 0 {
		t.Fatalf("Agreement on empty slice = %v, want 0", got)
	}
	if got := Accuracy(qm, nil, nil); got != 0 {
		t.Fatalf("Accuracy on empty slice = %v, want 0", got)
	}
	if got := Accuracy(qm, imgs, []int{0}); got != 0 {
		t.Fatalf("Accuracy on mismatched labels = %v, want 0", got)
	}
	// Non-empty sanity: the same classifier always agrees with itself.
	if got := Agreement(qm, qm, imgs); got != 1 {
		t.Fatalf("self-agreement = %v, want 1", got)
	}
}
