package qub

import (
	"encoding/binary"
	"math"
	"testing"

	"quq/internal/quant"
)

func fuzzFloats(data []byte) []float64 {
	n := len(data) / 8
	if n > 256 {
		n = 256
	}
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		xs = append(xs, v)
	}
	return xs
}

func fuzzSeed(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// FuzzQUBRoundtrip calibrates a quantizer on the fuzzed samples (PRA +
// uniform-candidate selection, all four modes reachable) and asserts
// the §4.1 contract: for every sample, Encode→Decode reproduces the
// fake-quantization value. The one documented deviation is the merged
// negative space, which has no exact-zero word and decodes zero-
// magnitude codes as −Δ (see the package comment).
func FuzzQUBRoundtrip(f *testing.F) {
	f.Add(fuzzSeed(0.1, -0.2, 3.5, -4.25, 0.01, 12.0), uint8(6)) // two-sided, long tails
	f.Add(fuzzSeed(1, 2, 4, 8, 16, 1000), uint8(8))              // one-signed: Mode B
	f.Add(fuzzSeed(-0.5, -0.25, -1e-3, -80), uint8(5))           // merged negative space
	f.Add(fuzzSeed(0.01, 0.02, 0.03, 0.04), uint8(4))            // short-tailed: uniform candidate
	f.Add(fuzzSeed(1e-310, 2e300, -1e-310, -2e300), uint8(3))    // extreme dynamic range

	f.Fuzz(func(t *testing.T, data []byte, bitsRaw uint8) {
		bits := 3 + int(bitsRaw%6)
		xs := fuzzFloats(data)
		if len(xs) == 0 {
			t.Skip("no finite samples")
		}
		p := quant.Calibrate(xs, bits, quant.DefaultPRAOptions())
		regs, err := RegistersFor(p)
		if err != nil {
			// Subrange shift beyond the 3-bit FC field: the parameters are
			// valid QUQ but not QUB-representable; rejecting them is the
			// contract, not a failure.
			t.Skip(err)
		}

		for _, space := range []SpaceReg{regs.F, regs.C} {
			if !space.Used {
				continue
			}
			packed, err := space.Pack()
			if err != nil {
				t.Fatalf("RegistersFor accepted an unpackable space: %v", err)
			}
			if u := UnpackSpace(packed); u != space {
				t.Fatalf("register roundtrip: packed %+v, unpacked %+v", space, u)
			}
		}

		for i, x := range xs {
			if i == 64 {
				break
			}
			c := p.Quantize(x)
			want := p.Dequantize(c)
			if c.Mag == 0 {
				space := regs.C
				if c.Slot.Fine() {
					space = regs.F
				}
				if !space.Both && space.NegSide {
					// Merged-negative zero deviation: encodes as one fine LSB.
					want = p.Dequantize(quant.Code{Slot: c.Slot, Mag: 1})
				}
			}
			got := Decode(Encode(p, c), regs).Value(regs.BaseDelta)
			if want == 0 {
				if got != 0 {
					t.Fatalf("x=%v code=%+v: zero decodes to %v under %v", x, c, got, p)
				}
				continue
			}
			// The decode path reconstructs mag·Δ_slot as (mag<<shift)·Δ_base;
			// the shift is exact, the Δ ratio is power-of-two to within
			// Validate's tolerance, so the paths agree to ~1e-9 relative.
			if diff := math.Abs(got - want); diff > 1e-6*math.Abs(want) {
				t.Fatalf("x=%v code=%+v: decoded %v, fake-quantized %v (params %v)", x, c, got, want, p)
			}
		}
	})
}
