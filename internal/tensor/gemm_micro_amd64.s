#include "textflag.h"

// func gemmKernel4x4(c *[16]float64, a0, a1, a2, a3, bp *float64, k int)
//
// Four ymm accumulators, one per A row; each lane is one output column.
// Per k step: load the packed B panel row once, broadcast each row's A
// element, then VMULPD + VADDPD — the same two IEEE-754 roundings, in
// the same ascending-k order, as the scalar kernel. No FMA: fusing
// would change the rounding and break bit-identity with the reference
// loops.
TEXT ·gemmKernel4x4(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ bp+40(FP), SI
	MOVQ k+48(FP), CX

	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JE    done

loop:
	VMOVUPD      (SI), Y0
	VBROADCASTSD (R8), Y1
	VMULPD       Y0, Y1, Y1
	VADDPD       Y1, Y4, Y4
	VBROADCASTSD (R9), Y2
	VMULPD       Y0, Y2, Y2
	VADDPD       Y2, Y5, Y5
	VBROADCASTSD (R10), Y3
	VMULPD       Y0, Y3, Y3
	VADDPD       Y3, Y6, Y6
	VBROADCASTSD (R11), Y1
	VMULPD       Y0, Y1, Y1
	VADDPD       Y1, Y7, Y7
	ADDQ         $32, SI
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	ADDQ         $8, R11
	DECQ         CX
	JNE          loop

done:
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	VMOVUPD Y6, 64(DI)
	VMOVUPD Y7, 96(DI)
	VZEROUPPER
	RET

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 27 (OSXSAVE) and bit 28 (AVX); then XGETBV to
// confirm the OS saves xmm+ymm state (XCR0 bits 1 and 2).
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET
