// Package metriclabelok is the conforming corpus for the metriclabel
// analyzer: every metric name is a compile-time constant and no format
// string interpolates a label value, so the analyzer must report
// nothing here even under a "metrics" import path.
package metriclabelok

import (
	"fmt"
	"io"
)

type Gauge struct{ v float64 }

type Registry struct{ gauges map[string]*Gauge }

func (r *Registry) NewGauge(name string) *Gauge {
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

const queueDepth = "quq_queue_depth"

func register(r *Registry) *Gauge {
	return r.NewGauge(queueDepth)
}

func write(w io.Writer, g *Gauge) {
	fmt.Fprintf(w, "%s %g\n", queueDepth, g.v)
}
