// Package sleepless is the fixture corpus for the sleepless analyzer:
// wall-clock waits in library code that must flag, the timer forms that
// stay legal, and a documented //quq:sleep-ok suppression.
package sleepless

import (
	"context"
	"time"
)

func bareSleep() {
	time.Sleep(50 * time.Millisecond) // want `wall-clock time\.Sleep in library package`
}

func selectAfter(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Second): // want `wall-clock time\.After in library package`
		return nil
	}
}

func pollLoop(done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.Tick(time.Second): // want `wall-clock time\.Tick in library package`
		}
	}
}

// ownedTimer is the sanctioned form: the caller holds a handle it can
// Stop, so nothing leaks and a fake clock can replace it at the seam.
func ownedTimer(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func ownedTicker(done <-chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
	}
}

// notTheTimePackage proves matching is type-based, not name-based.
type fakeTime struct{}

func (fakeTime) Sleep(time.Duration) {}

func localShadow(d time.Duration) {
	var time fakeTime
	time.Sleep(d) // method on a local value: not flagged
}

func suppressed() {
	//quq:sleep-ok fixture exercises a documented wall-clock wait
	time.Sleep(time.Millisecond)
}
