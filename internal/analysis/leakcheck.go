package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakCheck demands a provable stop path for every goroutine a library
// package spawns. A `go` statement passes if the spawned function —
// a literal, or a same-package declaration — observably participates in
// a shutdown protocol: it receives from or ranges over a channel,
// selects, sends, closes a channel, waits on or signals a
// sync.WaitGroup, or touches a context.Context. Absent all of those the
// goroutine runs until process exit, which in a long-lived server is a
// leak per call site; the chaos harness can only catch the schedules it
// happens to run, so the proof obligation lives here.
//
// Cross-package callees we cannot see into are accepted when the call
// site hands them a context or channel (the stop path is the argument)
// and flagged otherwise. Suppress with //quq:goroutine-ok <reason> for
// genuinely run-to-completion goroutines whose lifetime is bounded by
// construction.
var LeakCheck = &Analyzer{
	Name:      "leakcheck",
	Doc:       "every go statement in library packages has a provable stop path (context, WaitGroup, or channel)",
	Directive: "goroutine-ok",
	Run:       runLeakCheck,
}

func runLeakCheck(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		// Binaries exit; their goroutines die with the process.
		return
	}
	// Index same-package function declarations by object so `go f()` can
	// be judged by f's body.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goHasStopPath(pass.Info, g, decls) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine with no provable stop path: tie it to a context, sync.WaitGroup, or channel so shutdown can reach it")
			return true
		})
	}
}

// goHasStopPath decides whether the spawned call participates in any
// shutdown protocol.
func goHasStopPath(info *types.Info, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	// A context or channel handed to the callee is a stop path in itself,
	// whoever the callee is.
	for _, arg := range g.Call.Args {
		if t := info.TypeOf(arg); t != nil && isStopCarrier(t) {
			return true
		}
	}
	var body *ast.BlockStmt
	switch fun := unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := calleeFunc(info, g.Call); fn != nil {
			if decl, ok := decls[fn]; ok {
				body = decl.Body
			}
		}
	}
	if body == nil {
		// Opaque cross-package callee with no stop-carrying argument.
		return false
	}
	return bodyHasStopSignal(info, body)
}

// isStopCarrier reports whether t can carry a shutdown signal: a
// context.Context, any channel, or a *sync.WaitGroup.
func isStopCarrier(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
		}
	}
	return false
}

// bodyHasStopSignal scans a goroutine body for participation in any
// shutdown protocol. Nested function literals count: a goroutine that
// installs a cleanup closure over a channel is still reachable.
func bodyHasStopSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil {
				if fn.Pkg().Path() == "sync" {
					switch fn.Name() {
					case "Done", "Wait", "Add":
						found = true
					}
				}
			}
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && info.Uses[id] != nil {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if t := info.TypeOf(x); t != nil && isContextType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}
