// Package hweval is the analytical area/power model behind the paper's
// Table 4: it estimates a quantization accelerator's silicon cost from
// NAND2-equivalent gate counts of its datapath components on a 28 nm
// process at 500 MHz.
//
// The paper synthesizes its designs with Synopsys Design Compiler and
// reports PrimeTime PX power; that flow is not reproducible offline, so
// this package substitutes a component-count model (DESIGN.md). The
// BaseQ datapath is built from structural estimates (multiplier ∝ b²,
// adders and registers ∝ width) with the area-per-gate and power-per-gate
// constants calibrated once against the paper's BaseQ 6-bit 16×16 anchor;
// the remaining seven Table 4 points then follow from the model.
//
// One further constant is calibrated rather than counted: the per-PE cost
// of QUQ's shifted accumulation (Eq. (5)). A naive standalone barrel
// shifter would add ~15% to each PE, but the paper's synthesized deltas
// (+3.4% total at 16×16, +1.9% at 64×64, where DU/QU periphery amortizes)
// imply the shift folds into the accumulator's input routing, leaving
// only an n_sh staging slice of ≈9 gates per PE. We adopt that synthesis
// result as FusedShiftGates and document it; the DU and QU additions are
// genuine component counts.
package hweval

import "math"

// Process constants for the 28 nm / 500 MHz operating point.
const (
	// AreaPerGate is the area of one NAND2-equivalent gate in µm²,
	// including routing (28 nm standard-cell typical density).
	AreaPerGate = 0.62
	// DynPowerPerGate is the average switching power per logic gate at
	// 500 MHz in µW (calibrated to the BaseQ anchor).
	DynPowerPerGate = 0.221
	// ClkPowerPerBit is the extra clock-tree/register power per added
	// flip-flop bit in µW — the term behind the paper's note that QUQ's
	// power overhead "mainly stems from the additional registers
	// required to pipeline n_sh, which further increases the clock
	// load".
	ClkPowerPerBit = 1.74
	// FusedShiftGates is the surviving per-PE cost of the Eq. (5)
	// shifted accumulation after synthesis folds the shift into the
	// accumulator input routing (see the package comment).
	FusedShiftGates = 9.0
)

// Gate-count estimators for datapath building blocks (NAND2 equivalents).

// MultGates estimates a signed a×b-bit multiplier.
func MultGates(a, b int) float64 { return 6.5 * float64(a) * float64(b) }

// AdderGates estimates an n-bit adder.
func AdderGates(n int) float64 { return 9 * float64(n) }

// RegGates estimates n flip-flop bits.
func RegGates(n int) float64 { return 6 * float64(n) }

// ShifterGates estimates an n-bit barrel shifter with the given number of
// mux stages.
func ShifterGates(n, stages int) float64 { return 3 * float64(n) * float64(stages) }

// LZDGates estimates an n-bit leading-zero/ones detector.
func LZDGates(n int) float64 { return 2 * float64(n) }

// MuxGates estimates an n-bit 2:1 multiplexer.
func MuxGates(n int) float64 { return 2.5 * float64(n) }

// Design identifies the datapath style.
type Design int

const (
	// BaseQDesign is the conventional uniform-quantization accelerator.
	BaseQDesign Design = iota
	// QUADesign is the quadruplet uniform accelerator of Figure 6:
	// BaseQ plus decoding units, the fused shift-accumulate, and the
	// extended quantization units.
	QUADesign
)

func (d Design) String() string {
	if d == QUADesign {
		return "QUQ"
	}
	return "BaseQ"
}

// Config describes one accelerator instance.
type Config struct {
	Design Design
	// Bits is the operand bit-width (the paper evaluates 6 and 8).
	Bits int
	// N is the PE-array side (16 or 64 in Table 4).
	N int
	// AccBits is the accumulator width (24 covers the paper's workloads).
	AccBits int
	// ClockMHz is the operating frequency (500 in Table 4).
	ClockMHz float64
}

// DefaultConfig returns the Table 4 operating point for the given design,
// bit-width and array size.
func DefaultConfig(d Design, bits, n int) Config {
	return Config{Design: d, Bits: bits, N: n, AccBits: 24, ClockMHz: 500}
}

// Report is the area/power breakdown of one accelerator instance.
type Report struct {
	Config Config
	// AreaMM2 is the total logic area in mm².
	AreaMM2 float64
	// PowerMW is the total power at the configured clock in mW.
	PowerMW float64
	// Breakdown maps component groups to gate counts.
	Breakdown map[string]float64
	// ExtraRegBits counts the QUQ-added clocked bits (n_sh pipeline and
	// FC-register staging), which carry the ClkPowerPerBit term.
	ExtraRegBits float64
}

// basePEGates is the conventional MAC processing element: signed b×b
// multiplier, accumulation adder, accumulator and operand registers,
// routing mux and local control.
func basePEGates(c Config) float64 {
	b := c.Bits
	return MultGates(b, b) +
		AdderGates(c.AccBits) +
		RegGates(c.AccBits) +
		RegGates(2*b) +
		MuxGates(b) +
		150 // local sequencing/control
}

// baseQUGates is the conventional quantization unit per output column:
// integer M-scaling multiply, 2^N shift, round and clip (Eq. (2)).
func baseQUGates(c Config) float64 {
	return MultGates(16, 8) +
		ShifterGates(c.AccBits, 5) +
		AdderGates(c.Bits) + MuxGates(c.Bits) + 100
}

// quqDUGates is one decoding unit (Eq. (6)): sign-extension steering,
// shift-field selection, and staging for the decoded operand.
func quqDUGates(c Config) (gates, regBits float64) {
	b := c.Bits
	return MuxGates(b) + MuxGates(3) + 12 + RegGates(b+3), float64(b + 3)
}

// quqQUExtraGates is the QUA quantization-unit addition: the dynamic s_y
// right shift, implemented with a leading-zero/ones detector against the
// ±2^k subrange boundaries, plus FC-register staging.
func quqQUExtraGates(c Config) (gates, regBits float64) {
	return LZDGates(c.AccBits) + ShifterGates(c.AccBits, 3) + MuxGates(8) + RegGates(8), 8
}

// Evaluate computes the area/power report for an accelerator instance.
func Evaluate(c Config) Report {
	if c.AccBits == 0 {
		c.AccBits = 24
	}
	if c.ClockMHz == 0 {
		c.ClockMHz = 500
	}
	n := float64(c.N)

	pe := basePEGates(c)
	qu := baseQUGates(c)
	periphery := 2 * n * (RegGates(2*c.Bits) + MuxGates(c.Bits) + 30)

	breakdown := map[string]float64{
		"pe-array":    n * n * pe,
		"quant-units": n * qu,
		"periphery":   periphery,
	}
	var extraRegBits float64
	if c.Design == QUADesign {
		duG, duR := quqDUGates(c)
		quG, quR := quqQUExtraGates(c)
		breakdown["fused-shift-acc"] = n * n * FusedShiftGates
		breakdown["decode-units"] = 2 * n * duG
		breakdown["qu-extensions"] = n * quG
		// n_sh pipeline: 4 staged bits per PE plus the DU/QU staging.
		extraRegBits = n*n*4 + 2*n*duR + n*quR
	}

	var gates float64
	for _, g := range breakdown {
		gates += g
	}
	area := gates * AreaPerGate / 1e6 // µm² -> mm²
	power := (gates*DynPowerPerGate + extraRegBits*ClkPowerPerBit) / 1e3 * (c.ClockMHz / 500)

	return Report{
		Config:       c,
		AreaMM2:      area,
		PowerMW:      power,
		Breakdown:    breakdown,
		ExtraRegBits: extraRegBits,
	}
}

// Table4 evaluates the eight Table 4 configurations in the paper's row
// order: bits-major (6 then 8), BaseQ before QUQ, 16×16 before 64×64.
func Table4() []Report {
	var out []Report
	for _, bits := range []int{6, 8} {
		for _, d := range []Design{BaseQDesign, QUADesign} {
			for _, n := range []int{16, 64} {
				out = append(out, Evaluate(DefaultConfig(d, bits, n)))
			}
		}
	}
	return out
}

// RelativeOverhead returns the QUQ-over-BaseQ (area%, power%) overhead at
// matched bit-width and array size.
func RelativeOverhead(bits, n int) (areaPct, powerPct float64) {
	base := Evaluate(DefaultConfig(BaseQDesign, bits, n))
	qua := Evaluate(DefaultConfig(QUADesign, bits, n))
	return 100 * (qua.AreaMM2/base.AreaMM2 - 1), 100 * (qua.PowerMW/base.PowerMW - 1)
}

// CrossBitSavings returns how much cheaper 6-bit QUQ is than 8-bit BaseQ
// (the paper's headline: higher accuracy at 12.6–16.8% less area and
// 3.7–5.6% less power).
func CrossBitSavings(n int) (areaPct, powerPct float64) {
	q6 := Evaluate(DefaultConfig(QUADesign, 6, n))
	b8 := Evaluate(DefaultConfig(BaseQDesign, 8, n))
	return 100 * (1 - q6.AreaMM2/b8.AreaMM2), 100 * (1 - q6.PowerMW/b8.PowerMW)
}

// Round2 rounds to three decimals for table printing.
func Round2(v float64) float64 { return math.Round(v*1000) / 1000 }
