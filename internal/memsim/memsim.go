// Package memsim reproduces the paper's Figure 2: the peak on-chip
// memory a ViT block needs during inference, under partial versus full
// quantization.
//
// The accounting follows §2 of the paper exactly: only the weights of the
// currently executing operation are resident (loading whole models
// on-chip is impractical at the edge), while *all* live activations stay
// on-chip to avoid off-chip round trips. The walker below executes the
// block's operation sequence symbolically, tracking the live activation
// set and the current operation's weights, and reports the peak.
//
// Under partial quantization the GEMM inputs are b-bit but the remaining
// activations (residual stream, attention logits, GELU input) stay in
// FP32; under full quantization every activation is b-bit. Weights are
// b-bit in both regimes.
package memsim

import "fmt"

// BlockShape describes one transformer block workload.
type BlockShape struct {
	Name     string
	Batch    int
	Tokens   int
	Dim      int
	Heads    int
	MLPRatio int
}

// Precision gives the bit-widths of each tensor class.
type Precision struct {
	// GEMMBits applies to GEMM input activations (green points).
	GEMMBits int
	// OtherBits applies to the remaining activations (red points):
	// equal to GEMMBits under full quantization, 32 under partial.
	OtherBits int
	// WeightBits applies to weights.
	WeightBits int
}

// PartialQuant returns the partial-quantization precision at b bits.
func PartialQuant(b int) Precision { return Precision{GEMMBits: b, OtherBits: 32, WeightBits: b} }

// FullQuant returns the full-quantization precision at b bits.
func FullQuant(b int) Precision { return Precision{GEMMBits: b, OtherBits: b, WeightBits: b} }

// Step is one operation of the block walk, with the memory resident while
// it executes.
type Step struct {
	Op              string
	WeightBytes     int64
	ActivationBytes int64
}

// Total returns the step's resident bytes.
func (s Step) Total() int64 { return s.WeightBytes + s.ActivationBytes }

// tensorBytes returns the storage for n elements at the given bit-width,
// rounded up to whole bytes per tensor.
func tensorBytes(n int64, bits int) int64 {
	return (n*int64(bits) + 7) / 8
}

// Peak walks one block and returns the peak resident bytes and the step
// trace. The operation sequence and liveness follow the Figure 1 data
// flow; comments note which tensors die at each step.
func Peak(s BlockShape, p Precision) (int64, []Step) {
	b := int64(s.Batch)
	t := int64(s.Tokens)
	d := int64(s.Dim)
	h := int64(s.Heads)
	m := int64(s.MLPRatio) * d

	green := func(n int64) int64 { return tensorBytes(n, p.GEMMBits) }
	red := func(n int64) int64 { return tensorBytes(n, p.OtherBits) }
	weight := func(n int64) int64 { return tensorBytes(n, p.WeightBits) }

	var steps []Step
	add := func(op string, w int64, acts ...int64) {
		var a int64
		for _, v := range acts {
			a += v
		}
		steps = append(steps, Step{Op: op, WeightBytes: w, ActivationBytes: a})
	}

	x := red(b * t * d)     // residual stream (red: LN/residual input)
	ln1 := green(b * t * d) // LN1 output (GEMM input)
	qkv := green(3 * b * t * d)
	logits := red(b * h * t * t)
	probs := green(b * h * t * t)
	ctx := green(b * t * d)
	projOut := red(b * t * d)
	resid1 := red(b * t * d)
	ln2 := green(b * t * d)
	hid := red(b * t * m) // GELU input
	gelu := green(b * t * m)
	fc2Out := red(b * t * d)

	// LayerNorm 1: x live (needed for the residual), producing ln1.
	add("ln1", 0, x, ln1)
	// QKV projection: weights D×3D; x stays live, ln1 consumed on the fly
	// but resident during the GEMM.
	add("qkv", weight(d*3*d), x, ln1, qkv)
	// Attention logits Q·Kᵀ: q and k feed the matmul, v stays live.
	add("attn.logits", 0, x, qkv, logits)
	// Softmax: logits in, probabilities out; q,k dead, v (1/3 of qkv) live.
	add("softmax", 0, x, green(b*t*d), logits, probs)
	// Context P·V.
	add("attn.ctx", 0, x, green(b*t*d), probs, ctx)
	// Output projection.
	add("proj", weight(d*d), x, ctx, projOut)
	// Residual add 1: x and projOut die into resid1.
	add("resid1", 0, x, projOut, resid1)
	// LayerNorm 2: resid1 stays live for the second residual.
	add("ln2", 0, resid1, ln2)
	// MLP fc1.
	add("fc1", weight(d*m), resid1, ln2, hid)
	// GELU.
	add("gelu", 0, resid1, hid, gelu)
	// MLP fc2.
	add("fc2", weight(m*d), resid1, gelu, fc2Out)
	// Residual add 2.
	add("resid2", 0, resid1, fc2Out, red(b*t*d))

	var peak int64
	for _, st := range steps {
		if st.Total() > peak {
			peak = st.Total()
		}
	}
	return peak, steps
}

// Overhead returns the relative extra peak memory of partial over full
// quantization at b bits: peak(PQ)/peak(FQ) − 1.
func Overhead(s BlockShape, bits int) float64 {
	pq, _ := Peak(s, PartialQuant(bits))
	fq, _ := Peak(s, FullQuant(bits))
	return float64(pq)/float64(fq) - 1
}

// PaperBlocks returns the real (not proxy) block geometries of the
// paper's Figure 2 sweep: ViT-S/B/L at 224×224 with 16×16 patches
// (197 tokens).
func PaperBlocks(batch int) []BlockShape {
	return []BlockShape{
		{Name: "ViT-S", Batch: batch, Tokens: 197, Dim: 384, Heads: 6, MLPRatio: 4},
		{Name: "ViT-B", Batch: batch, Tokens: 197, Dim: 768, Heads: 12, MLPRatio: 4},
		{Name: "ViT-L", Batch: batch, Tokens: 197, Dim: 1024, Heads: 16, MLPRatio: 4},
	}
}

// FormatBytes renders a byte count in KiB/MiB for the Figure 2 report.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
