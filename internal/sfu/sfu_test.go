package sfu

import (
	"math"
	"testing"

	"quq/internal/mathx"
	"quq/internal/rng"
)

func TestFixedPointRoundTrip(t *testing.T) {
	for _, x := range []float64{0, 1, -1, 0.5, -3.25, 100.125} {
		if got := FromFixed(ToFixed(x)); math.Abs(got-x) > 1.0/float64(One) {
			t.Errorf("round trip %v -> %v", x, got)
		}
	}
}

func TestExp2NegAccuracy(t *testing.T) {
	for x := 0.0; x >= -20; x -= 0.01 {
		got := FromFixed(Exp2Neg(ToFixed(x)))
		want := math.Pow(2, x)
		if math.Abs(got-want) > 0.01*want+2e-4 {
			t.Fatalf("Exp2Neg(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestExp2NegEdges(t *testing.T) {
	if Exp2Neg(0) != One {
		t.Fatalf("2^0 = %v", FromFixed(Exp2Neg(0)))
	}
	if Exp2Neg(ToFixed(5)) != One {
		t.Fatal("positive inputs must clamp to 1")
	}
	if Exp2Neg(ToFixed(-100)) != 0 {
		t.Fatal("deep underflow must return 0")
	}
}

func TestSoftmaxMatchesFloat(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		n := 2 + src.Intn(64)
		xs := make([]int64, n)
		ref := make([]float64, n)
		for i := range xs {
			v := src.Gauss(0, 4)
			ref[i] = v
			xs[i] = ToFixed(v)
		}
		mathx.SoftmaxInPlace(ref)
		out := make([]int64, n)
		Softmax(out, xs)
		var sum int64
		for i, o := range out {
			if diff := math.Abs(FromFixed(o) - ref[i]); diff > 0.01 {
				t.Fatalf("trial %d: p[%d] = %v, want %v", trial, i, FromFixed(o), ref[i])
			}
			sum += o
		}
		if math.Abs(FromFixed(sum)-1) > 0.01 {
			t.Fatalf("integer softmax sums to %v", FromFixed(sum))
		}
	}
}

func TestSoftmaxDegenerateRow(t *testing.T) {
	// All logits deeply negative relative to one spike: mass must land
	// on the maximum, without dividing by zero.
	xs := []int64{ToFixed(-10000), ToFixed(0), ToFixed(-10000)}
	out := make([]int64, 3)
	Softmax(out, xs)
	if out[1] < One*99/100 {
		t.Fatalf("spike got %v of the mass", FromFixed(out[1]))
	}
}

func TestSoftmaxMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Softmax(make([]int64, 2), make([]int64, 3))
}

func TestSigmoidAccuracy(t *testing.T) {
	for x := -8.0; x <= 8; x += 0.05 {
		got := FromFixed(Sigmoid(ToFixed(x)))
		want := 1 / (1 + math.Exp(-x))
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Sigmoid(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGELUAccuracy(t *testing.T) {
	// The sigmoid approximation of GELU is itself ≈1.5e-2 accurate; the
	// integer kernel must stay within 0.02 absolute + 2% relative of the
	// exact GELU over the activation range.
	for x := -6.0; x <= 6; x += 0.05 {
		got := FromFixed(GELU(ToFixed(x)))
		want := mathx.Gelu(x)
		if math.Abs(got-want) > 0.02+0.02*math.Abs(want) {
			t.Fatalf("GELU(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestISqrt(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 4, 15, 16, 17, 1 << 30, 1<<40 + 12345} {
		got := ISqrt(v)
		if got*got > v || (got+1)*(got+1) <= v {
			t.Fatalf("ISqrt(%d) = %d", v, got)
		}
	}
}

func TestISqrtPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ISqrt(-1)
}

func TestLayerNormMatchesFloat(t *testing.T) {
	src := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		n := 4 + src.Intn(96)
		xs := make([]int64, n)
		gamma := make([]int64, n)
		beta := make([]int64, n)
		fx := make([]float64, n)
		fg := make([]float64, n)
		fb := make([]float64, n)
		for i := range xs {
			fx[i] = src.Gauss(0, 3)
			fg[i] = 1 + src.Gauss(0, 0.2)
			fb[i] = src.Gauss(0, 0.1)
			xs[i] = ToFixed(fx[i])
			gamma[i] = ToFixed(fg[i])
			beta[i] = ToFixed(fb[i])
		}
		// Float reference.
		var mean float64
		for _, v := range fx {
			mean += v
		}
		mean /= float64(n)
		var ss float64
		for _, v := range fx {
			d := v - mean
			ss += d * d
		}
		sigma := math.Sqrt(ss / float64(n))
		out := make([]int64, n)
		LayerNorm(out, xs, gamma, beta)
		for i := range out {
			want := (fx[i]-mean)/sigma*fg[i] + fb[i]
			if math.Abs(FromFixed(out[i])-want) > 0.03+0.01*math.Abs(want) {
				t.Fatalf("trial %d: LN[%d] = %v, want %v", trial, i, FromFixed(out[i]), want)
			}
		}
	}
}

func TestLayerNormConstantRow(t *testing.T) {
	xs := []int64{ToFixed(2), ToFixed(2), ToFixed(2), ToFixed(2)}
	gamma := []int64{One, One, One, One}
	beta := []int64{0, 0, 0, 0}
	out := make([]int64, 4)
	LayerNorm(out, xs, gamma, beta) // must not divide by zero
	for _, v := range out {
		if math.Abs(FromFixed(v)) > 0.01 {
			t.Fatalf("constant row normalized to %v", FromFixed(v))
		}
	}
}

func TestLayerNormMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LayerNorm(make([]int64, 2), make([]int64, 2), make([]int64, 3), make([]int64, 2))
}
