package experiments

import (
	"fmt"
	"strings"

	"quq/internal/baselines"
	"quq/internal/ptq"
)

// AccuracyRow is one method row of Table 2 or Table 3: top-1 accuracy
// (percent, on the synthetic pattern task — see DESIGN.md for the
// ImageNet substitution) per model, in ZooConfigs order.
type AccuracyRow struct {
	Method string
	WA     string
	Acc    map[string]float64
}

// Table2 regenerates the partially quantized comparison at W6/A6:
// Original, BaseQ, PTQ4ViT, APQ-ViT, QUQ.
func Table2(zoo []*ZooModel) ([]AccuracyRow, error) {
	methods := []ptq.Method{
		baselines.BaseQ{},
		baselines.PTQ4ViT{},
		baselines.APQViT{},
		ptq.NewQUQ(),
	}
	rows := []AccuracyRow{originalRow(zoo)}
	for _, meth := range methods {
		row, err := accuracyRow(zoo, meth, 6, ptq.Partial)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3 regenerates the fully quantized comparison at W6/A6 and W8/A8:
// Original, then BaseQ, BiScaled-FxP, FQ-ViT, QUQ per bit-width.
func Table3(zoo []*ZooModel) ([]AccuracyRow, error) {
	methods := []ptq.Method{
		baselines.BaseQ{},
		baselines.BiScaled{},
		baselines.FQViT{},
		ptq.NewQUQ(),
	}
	rows := []AccuracyRow{originalRow(zoo)}
	for _, bits := range []int{6, 8} {
		for _, meth := range methods {
			row, err := accuracyRow(zoo, meth, bits, ptq.Full)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func originalRow(zoo []*ZooModel) AccuracyRow {
	row := AccuracyRow{Method: "Original", WA: "32/32", Acc: map[string]float64{}}
	for _, zm := range zoo {
		row.Acc[zm.Cfg.Name] = zm.FP32Acc
	}
	return row
}

func accuracyRow(zoo []*ZooModel, meth ptq.Method, bits int, regime ptq.Regime) (AccuracyRow, error) {
	row := AccuracyRow{
		Method: meth.Name(),
		WA:     fmt.Sprintf("%d/%d", bits, bits),
		Acc:    map[string]float64{},
	}
	for _, zm := range zoo {
		qm, err := ptq.Quantize(zm.Model, meth, ptq.CalibOptions{
			Bits:   bits,
			Regime: regime,
			Images: zm.Calib,
		})
		if err != nil {
			return AccuracyRow{}, fmt.Errorf("experiments: %s on %s: %w", meth.Name(), zm.Cfg.Name, err)
		}
		row.Acc[zm.Cfg.Name] = ptq.Accuracy(qm, zm.Images, zm.Labels)
	}
	return row, nil
}

// FormatAccuracy renders accuracy rows in the paper's table layout.
func FormatAccuracy(zoo []*ZooModel, rows []AccuracyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %-6s", "Method", "W/A")
	for _, zm := range zoo {
		fmt.Fprintf(&b, " %-8s", zm.Cfg.Name)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s %-6s", r.Method, r.WA)
		for _, zm := range zoo {
			fmt.Fprintf(&b, " %-8s", Pct(r.Acc[zm.Cfg.Name]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
