package analysis

import (
	"go/ast"
)

// Sleepless flags bare `time.Sleep`, `time.After` and `time.Tick` calls
// in non-test library packages. Wall-clock waits in library code defeat
// the chaos harness's byte-reproducible replays (internal/chaos seeds
// every delay and routes it through chaos.Clock), and `time.After` /
// `time.Tick` additionally leak their timer when the surrounding select
// takes another branch. Library code should accept a chaos.Clock (or a
// *time.Timer it owns and stops); `main` packages — one-shot command
// wiring, not replayed by the harness — are exempt, as is any call
// covered by a //quq:sleep-ok directive with a reason.
var Sleepless = &Analyzer{
	Name:      "sleepless",
	Doc:       "library code must not wall-clock wait (time.Sleep/After/Tick); inject a chaos.Clock",
	Directive: "sleep-ok",
	Run:       runSleepless,
}

// sleeplessFuncs are the time package's blocking / timer-leaking entry
// points. time.NewTimer and time.NewTicker stay legal: they hand the
// caller a handle it can Stop, and both can honor a context.
var sleeplessFuncs = []string{"Sleep", "After", "Tick"}

func runSleepless(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range sleeplessFuncs {
				if isPkgCall(pass.Info, call, "time", name) {
					pass.Reportf(call.Pos(), "wall-clock time.%s in library package %s; inject a chaos.Clock (or own a stoppable timer) so replays stay deterministic", name, pass.PkgPath)
				}
			}
			return true
		})
	}
}
