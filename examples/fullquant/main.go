// Fullquant: fully quantize a vision transformer end to end — every
// weight, GEMM input, residual, LayerNorm, Softmax and GELU activation —
// and compare QUQ against uniform quantization at 6 and 8 bits, the
// paper's Table 3 experiment in miniature.
package main

import (
	"fmt"
	"log"

	"quq/internal/baselines"
	"quq/internal/data"
	"quq/internal/nn"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

func main() {
	cfg := vit.ViTSmall
	fmt.Printf("preparing %s proxy (backbone with trained-ViT activation statistics + fitted head)...\n", cfg.Name)
	m, _ := nn.PretrainedZoo(cfg, 21, 150)

	test := data.PatternSamples(cfg.Channels, cfg.ImageSize, 100, 4242)
	images := make([]*tensor.Tensor, len(test))
	labels := make([]int, len(test))
	for i, s := range test {
		images[i] = s.Image
		labels[i] = s.Label
	}
	fp32 := ptq.Accuracy(ptq.ModelClassifier{M: m}, images, labels)
	fmt.Printf("FP32 top-1: %.2f%%\n\n", 100*fp32)

	// The paper's calibration protocol: 32 images.
	calib := data.CalibrationSet(cfg, 32, 7)

	fmt.Printf("%-8s %-5s %-8s %s\n", "Method", "W/A", "top-1", "quantized sites")
	for _, bits := range []int{6, 8} {
		for _, meth := range []ptq.Method{baselines.BaseQ{}, ptq.NewQUQ()} {
			qm, err := ptq.Quantize(m, meth, ptq.CalibOptions{
				Bits:   bits,
				Regime: ptq.Full,
				Images: calib,
			})
			if err != nil {
				log.Fatal(err)
			}
			acc := ptq.Accuracy(qm, images, labels)
			fmt.Printf("%-8s %d/%-3d %-8.2f %d\n", meth.Name(), bits, bits, 100*acc, len(qm.Acts))
		}
	}
	fmt.Println("\nFull quantization keeps every activation at the target bit-width,")
	fmt.Println("which is what shrinks on-chip memory (see `quq fig2`); QUQ is what")
	fmt.Println("keeps it accurate at 6 bits.")
}
