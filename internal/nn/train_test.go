package nn

import (
	"math"
	"testing"

	"quq/internal/data"
	"quq/internal/rng"
	"quq/internal/vit"
)

// tinyCfg is a minimal trainable ViT for gradient checking.
var tinyCfg = vit.Config{
	Name: "tiny", Variant: vit.VariantViT,
	ImageSize: 8, PatchSize: 4, Channels: 1, Classes: 5,
	Dim: 12, Depth: 2, Heads: 2, MLPRatio: 2,
}

func TestNewTrainerRejectsUnsupported(t *testing.T) {
	if _, err := NewTrainer(vit.New(vit.SwinTiny, 1)); err == nil {
		t.Fatal("accepted a Swin model")
	}
	if _, err := NewTrainer(vit.New(vit.ViTSmall, 1)); err == nil {
		t.Fatal("accepted a register-token model")
	}
	if _, err := NewTrainer(vit.New(vit.ViTNano, 1)); err != nil {
		t.Fatalf("rejected ViT-Nano: %v", err)
	}
}

// TestGradientCheck compares the analytic gradients against central
// finite differences for a sample of parameters in every parameter
// group. This validates the entire backward pass: head, final LN, both
// residual branches, attention (softmax included), GELU, patch embedding,
// tokens and position embeddings.
func TestGradientCheck(t *testing.T) {
	m := vit.New(tinyCfg, 3).(*vit.ViT)
	tr, err := NewTrainer(m)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	img := data.Image(1, 8, src)
	label := 2

	// Analytic gradients for one sample.
	for _, g := range tr.grads {
		for i := range g {
			g[i] = 0
		}
	}
	fc := tr.forward(img)
	tr.backward(fc, label)

	loss := func() float64 {
		fc := tr.forward(img)
		return -math.Log(math.Max(fc.probs[label], 1e-12))
	}

	const eps = 1e-5
	checked := 0
	m.Params(func(name string, p []float64) {
		// Probe up to 4 entries per parameter group, spread out.
		stride := len(p)/4 + 1
		for i := 0; i < len(p); i += stride {
			orig := p[i]
			p[i] = orig + eps
			lp := loss()
			p[i] = orig - eps
			lm := loss()
			p[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := tr.grads[name][i]
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if math.Abs(numeric-analytic)/scale > 1e-4 {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", name, i, analytic, numeric)
			}
			checked++
		}
	})
	if checked < 30 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestStepReducesLoss(t *testing.T) {
	m := vit.New(tinyCfg, 5)
	tr, err := NewTrainer(m)
	if err != nil {
		t.Fatal(err)
	}
	batch := data.PatternSamples(1, 8, 8, 6)
	for i := range batch {
		batch[i].Label %= tinyCfg.Classes
	}
	first := tr.Step(batch)
	var last float64
	for i := 0; i < 30; i++ {
		last = tr.Step(batch)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestTrainNanoLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	var lastLoss float64
	m, acc, err := TrainNano(TrainOptions{
		Epochs: 3, TrainN: 160, BatchSize: 16, Seed: 11,
		Progress: func(_ int, loss, _ float64) { lastLoss = loss },
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("training accuracy %v after 3 epochs, want > 0.5 (chance 0.1)", acc)
	}
	if lastLoss > 2.0 {
		t.Fatalf("loss %v still near ln(10)", lastLoss)
	}
	// The trained model must generalize above chance.
	test := data.PatternSamples(1, 16, 60, 999)
	hit := 0
	for _, s := range test {
		if m.Forward(s.Image, vit.ForwardOpts{}).ArgMax() == s.Label {
			hit++
		}
	}
	if frac := float64(hit) / float64(len(test)); frac < 0.4 {
		t.Fatalf("test accuracy %v, want > 0.4", frac)
	}
}
