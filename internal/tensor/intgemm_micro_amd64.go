//go:build amd64

package tensor

// AVX2 path of the 4×4 integer micro-kernel. The assembly kernel keeps
// one ymm accumulator per A row (four int64 column lanes — the
// independent accumulator chains) and synthesizes the low 64 bits of
// each 64×64 product from 32×32 unsigned partial products (VPMULUDQ):
//
//	lo64(a·b) = ((aH·bL + bH·aL) << 32) + aL·bL   (mod 2^64)
//
// which is exact modulo 2^64 for any signed inputs, so the vector kernel
// is bit-identical to intMicro4x4Go. The equivalence and fuzz tests in
// intgemm_test.go exercise whichever kernel init selected against the
// naive reference oracles.

// intGemmKernel4x4 computes c[r*4+j] = Σ_kk a_r[kk]·bp[kk*4+j] (mod
// 2^64) for r,j in 0..3. k must be ≥ 1 and the pointers must address k
// (rows) and 4k (panel) readable int64s. Implemented in
// intgemm_micro_amd64.s.
//
//go:noescape
func intGemmKernel4x4(c *[16]int64, a0, a1, a2, a3, bp *int64, k int)

// intGemmKernel4x4Narrow is the VPMULDQ variant for operands that fit in
// int32 (one signed 32×32→64 multiply per product instead of three
// unsigned partials). Callers must guarantee narrowness — pickIntMicro
// scans both operands before selecting it. Implemented in
// intgemm_micro_amd64.s.
//
//go:noescape
func intGemmKernel4x4Narrow(c *[16]int64, a0, a1, a2, a3, bp *int64, k int)

// cpuHasAVX2 reports CPU and OS support for AVX2 (CPUID leaf 1 OSXSAVE +
// AVX with XCR0 enabling xmm+ymm state, plus leaf 7 AVX2). Implemented
// in intgemm_micro_amd64.s.
func cpuHasAVX2() bool

func intMicro4x4AVX2(c *[16]int64, a0, a1, a2, a3, bp []int64, k int) {
	if k == 0 {
		*c = [16]int64{}
		return
	}
	intGemmKernel4x4(c, &a0[0], &a1[0], &a2[0], &a3[0], &bp[0], k)
}

func intMicro4x4NarrowAVX2(c *[16]int64, a0, a1, a2, a3, bp []int64, k int) {
	if k == 0 {
		*c = [16]int64{}
		return
	}
	intGemmKernel4x4Narrow(c, &a0[0], &a1[0], &a2[0], &a3[0], &bp[0], k)
}

func init() {
	if cpuHasAVX2() {
		intMicro4x4 = intMicro4x4AVX2
		intMicro4x4Narrow = intMicro4x4NarrowAVX2
	}
}
