#!/bin/sh
# Tier-1 verification gate. Everything here must pass before a change
# lands; CI and the ROADMAP "Tier-1 verify" line both point at this
# script. Runs offline with nothing but the Go toolchain.
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...

# quqvet: the repo's own static-analysis pass (integer-only datapath,
# exact power-of-two scales, deterministic artifacts, audited panics,
# no dropped errors on io paths). See README.md "Verification".
go run ./cmd/quq-vet ./...

go test -race ./...

# Short fuzz smoke of the two property-based targets. `go test -fuzz`
# takes exactly one package per invocation.
go test -fuzz=FuzzPRA -fuzztime=5s -run=^$ ./internal/quant/
go test -fuzz=FuzzQUBRoundtrip -fuzztime=5s -run=^$ ./internal/qub/

# quq-serve smoke: boot the inference service on an ephemeral port and
# drive one quantize + classify round trip through the real HTTP stack.
go run ./cmd/quq-serve -smoke

# Serving throughput benchmark; regenerates artifacts/BENCH_serve.json
# (batched vs unbatched img/s — batched must not be slower).
go test -run '^$' -bench BenchmarkServeThroughput -benchtime 20x .

gofmt -l . | tee /dev/stderr | wc -l | grep -qx 0
