package quant

import (
	"math"
	"quq/internal/check"
	"sort"
)

// PRAOptions are the hyperparameters of the progressive relaxation
// algorithm (the paper's Algorithm 2). DefaultPRAOptions returns the
// values used in all of the paper's experiments.
type PRAOptions struct {
	// LambdaA is the acceptable ratio λ_A of Δ_C/Δ_F below which a
	// coarse-fine partition wastes too much encoding space.
	LambdaA float64
	// QInit is the initial quantile q that bounds the fine subranges.
	QInit float64
	// QAccept is the acceptable quantile q_A at which the recursive
	// relaxation of q stops.
	QAccept float64
	// QStep is the amount q is reduced by per relaxation round; the paper
	// uses 0.01.
	QStep float64
	// DisableModeSwitch, when set, keeps the Mode A parameters even when
	// a branch of Algorithm 2 would switch to Mode B/C/D. This exists
	// only for the ablation experiments; the paper always mode-switches.
	DisableModeSwitch bool
}

// DefaultPRAOptions returns λ_A=4, q=0.99, q_A=0.95, the paper's settings.
func DefaultPRAOptions() PRAOptions {
	return PRAOptions{LambdaA: 4, QInit: 0.99, QAccept: 0.95, QStep: 0.01}
}

// Relax implements Algorithm 1: adjust one of two positive scale factors
// so their ratio becomes an exact power of two, rounding the ratio (in the
// log domain) to the nearest integer and always growing — never shrinking
// — a factor, so no additional calibration data gets clipped.
func Relax(d1, d2 float64) (float64, float64) {
	if d1 <= 0 || d2 <= 0 {
		panic(check.Invariantf("quant: Relax requires positive scale factors, got %v, %v", d1, d2))
	}
	l := math.Log2(d2 / d1)
	r := int(math.Round(l))
	if float64(r) > l {
		// Rounding up: make Δ2 larger so Δ2/Δ1 = 2^r exactly. Ldexp
		// scales by the exact power of two, which keeps the Eq. (4)
		// invariant bit-exact where math.Pow would only approximate it.
		return d1, math.Ldexp(d1, r)
	}
	// Rounding down (or exact): make Δ1 larger so Δ2/Δ1 = 2^r exactly.
	return math.Ldexp(d2, -r), d2
}

// PRA runs the progressive relaxation algorithm (Algorithm 2) on the
// calibration samples xs and returns a validated b-bit QUQ quantizer.
//
// One-signed tensors take the paper's Mode B path: the data is mirrored
// about zero, Algorithm 2 runs on the symmetric tensor, and the mirror
// side's encoding space is merged into the occupied side (doubling its
// resolution). An all-zero tensor yields a trivial uniform quantizer.
func PRA(xs []float64, bits int, opts PRAOptions) *Params {
	if bits < 3 {
		panic(check.Invariantf("quant: PRA requires at least 3 bits, got %d", bits))
	}
	neg, pos := splitMagnitudes(xs)
	var p *Params
	switch {
	case len(neg) == 0 && len(pos) == 0:
		p = ParamsForUniform(1, bits)
	case len(neg) == 0:
		p = praOneSided(pos, bits, opts, false)
	case len(pos) == 0:
		p = praOneSided(neg, bits, opts, true)
	default:
		p = praCore(neg, pos, bits, opts, opts.QInit)
	}
	if err := p.Validate(); err != nil {
		// PRA constructs parameters that satisfy Eq. (4) by design; a
		// failure here is a bug, not a data condition.
		panic(check.Invariantf("quant: PRA produced invalid parameters: %v", err))
	}
	return p
}

// praMagFloor and praMagCeil bound the calibration magnitudes PRA works
// with. Magnitudes below 2^-500 carry no usable range information and
// are treated as exact zeros; magnitudes above 2^500 are clipped. Inside
// this window every derived quantity — per-subrange scale factors, their
// cross ratios, and the Relax power-of-two adjustments — stays finite
// and positive in float64, so Algorithm 2 cannot underflow a Δ to zero
// or overflow one to +Inf on adversarial (e.g. fuzzed) input. Realistic
// calibration data sits hundreds of orders of magnitude inside the
// window and is unaffected.
var (
	praMagFloor = math.Ldexp(1, -500)
	praMagCeil  = math.Ldexp(1, 500)
)

// splitMagnitudes separates xs into the magnitudes of its negative
// elements and its positive elements (Algorithm 2 line 3), sorted
// ascending so quantiles are cheap. Magnitudes are clamped into
// [praMagFloor, praMagCeil]; see the bound comment above.
func splitMagnitudes(xs []float64) (neg, pos []float64) {
	for _, v := range xs {
		m := math.Abs(v)
		if m < praMagFloor {
			continue
		}
		if m > praMagCeil {
			m = praMagCeil
		}
		if v > 0 {
			pos = append(pos, m)
		} else {
			neg = append(neg, m)
		}
	}
	sort.Float64s(neg)
	sort.Float64s(pos)
	return neg, pos
}

// sortedQuantile is the linear-interpolation quantile of an ascending
// slice.
func sortedQuantile(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// praCore is the two-sided body of Algorithm 2. neg and pos are ascending
// magnitude slices, both non-empty.
func praCore(neg, pos []float64, bits int, opts PRAOptions, q float64) *Params {
	quarterN := float64(int64(1) << (bits - 2)) // 2^(b-2): negative-side code count
	quarterP := quarterN - 1                    // 2^(b-2)-1: positive-side max code
	maxN, maxP := neg[len(neg)-1], pos[len(pos)-1]

	// Relaxation round 1: coarse factors from the range extremes.
	dCn, dCp := Relax(maxN/quarterN, maxP/quarterP)
	// Relaxation round 2: fine factors from the q-th quantile points.
	dFn, dFp := Relax(sortedQuantile(neg, q)/quarterN, sortedQuantile(pos, q)/quarterP)
	// Record the cross-sign ratios, then relaxation round 3 aligns the
	// positive fine and coarse factors; the negative ones follow via the
	// recorded ratios so all four factors share one base Δ.
	sF, sC := dFn/dFp, dCn/dCp
	dFp, dCp = Relax(dFp, dCp)
	dFn, dCn = sF*dFp, sC*dCp

	ratioN, ratioP := dCn/dFn, dCp/dFp
	lam := opts.LambdaA

	if !opts.DisableModeSwitch {
		switch {
		case ratioN < lam && ratioP < lam && q > opts.QAccept+1e-9:
			// Both partitions waste encoding space: relax Principle ②
			// (fine coverage) by retrying with a smaller quantile.
			return praCore(neg, pos, bits, opts, q-opts.QStep)

		case ratioN < lam && dCn <= dFp:
			// Mode C, negative side tail-free: the negative part becomes
			// uniform at its initial coarse scale, and the freed coarse
			// encoding space doubles the positive coarse resolution.
			p := &Params{Bits: bits, Mode: ModeC}
			p.Slots[FNeg] = SlotParams{Enabled: true, Delta: dCn, MaxMag: int64(quarterN)}
			p.Slots[FPos] = SlotParams{Enabled: true, Delta: dFp, MaxMag: int64(quarterP)}
			p.Slots[CPos] = SlotParams{Enabled: true, Delta: dCp / 2, MaxMag: int64(1)<<(bits-1) - 1}
			return p

		case ratioP < lam && dCp <= dFn:
			// Mode C, positive side tail-free (mirror of the above).
			p := &Params{Bits: bits, Mode: ModeC}
			p.Slots[FPos] = SlotParams{Enabled: true, Delta: dCp, MaxMag: int64(quarterP)}
			p.Slots[FNeg] = SlotParams{Enabled: true, Delta: dFn, MaxMag: int64(quarterN)}
			p.Slots[CNeg] = SlotParams{Enabled: true, Delta: dCn / 2, MaxMag: int64(1) << (bits - 1)}
			return p

		case ratioN < lam || ratioP < lam:
			// Mode D fallback: merge the fine spaces onto the positive
			// side and the coarse spaces onto the negative side; each
			// side degenerates to uniform quantization at half its
			// initial coarse scale.
			p := &Params{Bits: bits, Mode: ModeD}
			p.Slots[FPos] = SlotParams{Enabled: true, Delta: dCp / 2, MaxMag: int64(1)<<(bits-1) - 1}
			p.Slots[CNeg] = SlotParams{Enabled: true, Delta: dCn / 2, MaxMag: int64(1) << (bits - 1)}
			return p
		}
	}

	p := &Params{Bits: bits, Mode: ModeA}
	p.Slots[FNeg] = SlotParams{Enabled: true, Delta: dFn, MaxMag: int64(quarterN)}
	p.Slots[FPos] = SlotParams{Enabled: true, Delta: dFp, MaxMag: int64(quarterP)}
	p.Slots[CNeg] = SlotParams{Enabled: true, Delta: dCn, MaxMag: int64(quarterN)}
	p.Slots[CPos] = SlotParams{Enabled: true, Delta: dCp, MaxMag: int64(quarterP)}
	return p
}

// praOneSided implements the Mode B construction: mirror the magnitudes
// about zero, run the core algorithm on the symmetric tensor, then merge
// the mirror side's encoding space into the occupied side by halving its
// scale factors and doubling its code counts.
//
// For a symmetric input the core algorithm returns Mode A unless the data
// has no meaningful tail; in the latter (Mode C/D) case the partition
// collapses and we fall back to uniform quantization of the occupied side
// with the merged fine+coarse space, which is the best QUB-representable
// layout for tail-free one-signed data.
func praOneSided(mags []float64, bits int, opts PRAOptions, negative bool) *Params {
	sym := praCore(mags, mags, bits, opts, opts.QInit)
	halfPos := int64(1)<<(bits-1) - 1
	halfNeg := int64(1) << (bits - 1)

	p := &Params{Bits: bits, Mode: ModeB}
	if sym.Mode == ModeA {
		fine, coarse := sym.Slots[FPos], sym.Slots[CPos]
		if negative {
			fine, coarse = sym.Slots[FNeg], sym.Slots[CNeg]
		}
		if negative {
			p.Slots[FNeg] = SlotParams{Enabled: true, Delta: fine.Delta / 2, MaxMag: halfNeg}
			p.Slots[CNeg] = SlotParams{Enabled: true, Delta: coarse.Delta / 2, MaxMag: halfNeg}
		} else {
			p.Slots[FPos] = SlotParams{Enabled: true, Delta: fine.Delta / 2, MaxMag: halfPos}
			p.Slots[CPos] = SlotParams{Enabled: true, Delta: coarse.Delta / 2, MaxMag: halfPos}
		}
		return p
	}

	// Tail-free fallback: uniform over the occupied side with 2^(b-1)
	// codes in the fine slot (coarse slot unused).
	maxM := mags[len(mags)-1]
	if negative {
		p.Slots[FNeg] = SlotParams{Enabled: true, Delta: maxM / float64(halfNeg), MaxMag: halfNeg}
	} else {
		p.Slots[FPos] = SlotParams{Enabled: true, Delta: maxM / float64(halfPos), MaxMag: halfPos}
	}
	return p
}
