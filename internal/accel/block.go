package accel

import (
	"fmt"
	"math"

	"quq/internal/quant"
	"quq/internal/qub"
	"quq/internal/sfu"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// BlockParams holds the calibrated QUQ parameter sets for every
// quantization point of one transformer block — the Figure 1 sites — plus
// the weight quantizers. CalibrateBlock builds them from sample inputs.
type BlockParams struct {
	Bits int

	In         *quant.Params // block input (residual stream)
	LN1Out     *quant.Params
	Q, K, V    *quant.Params
	SoftmaxIn  *quant.Params
	SoftmaxOut *quant.Params
	ProjIn     *quant.Params
	ProjOut    *quant.Params
	Resid1     *quant.Params
	LN2Out     *quant.Params
	GeluIn     *quant.Params
	GeluOut    *quant.Params
	FC2Out     *quant.Params
	Resid2     *quant.Params

	WQKV, WProj, WFC1, WFC2 *quant.Params
}

// CalibrateBlock runs the block in floating point over the sample inputs
// (each [T, dim]), collects every site's values, and calibrates QUQ
// parameters for all of them with the paper's defaults.
func CalibrateBlock(b *vit.Block, inputs []*tensor.Tensor, bits int) (*BlockParams, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("accel: no calibration inputs")
	}
	acc := map[string][]float64{}
	tap := func(site vit.Site, x *tensor.Tensor) *tensor.Tensor {
		acc[site.Name] = append(acc[site.Name], x.Data()...)
		return x
	}
	for _, in := range inputs {
		acc["block.in"] = append(acc["block.in"], in.Data()...)
		b.Forward(in, 1, 0, vit.ForwardOpts{Tap: tap})
	}
	cal := func(name string) (*quant.Params, error) {
		xs, ok := acc[name]
		if !ok {
			return nil, fmt.Errorf("accel: site %q not observed during calibration", name)
		}
		return quant.CalibrateRefined(xs, bits, quant.DefaultPRAOptions(), quant.DefaultRefineOptions()), nil
	}
	p := &BlockParams{Bits: bits}
	var err error
	assign := func(dst **quant.Params, site string) {
		if err != nil {
			return
		}
		*dst, err = cal(site)
	}
	assign(&p.In, "block.in")
	assign(&p.LN1Out, "ln1.out")
	assign(&p.Q, "attn.q")
	assign(&p.K, "attn.k")
	assign(&p.V, "attn.v")
	assign(&p.SoftmaxIn, "attn.softmax_in")
	assign(&p.SoftmaxOut, "attn.softmax_out")
	assign(&p.ProjIn, "attn.proj_in")
	assign(&p.ProjOut, "attn.proj_out")
	assign(&p.Resid1, "resid1.out")
	assign(&p.LN2Out, "ln2.out")
	assign(&p.GeluIn, "mlp.gelu_in")
	assign(&p.GeluOut, "mlp.gelu_out")
	assign(&p.FC2Out, "mlp.fc2_out")
	assign(&p.Resid2, "resid2.out")
	if err != nil {
		return nil, err
	}
	calW := func(w *tensor.Tensor) *quant.Params {
		return quant.CalibrateRefined(w.Data(), bits, quant.DefaultPRAOptions(), quant.DefaultRefineOptions())
	}
	p.WQKV = calW(b.QKV.W)
	p.WProj = calW(b.Proj.W)
	p.WFC1 = calW(b.FC1.W)
	p.WFC2 = calW(b.FC2.W)
	return p, nil
}

// BlockRunner executes one transformer block entirely on the QUA
// datapath: every GEMM runs as a QUB integer matrix multiply with
// integer requantization, and LayerNorm/Softmax/GELU/residual-add run on
// the integer SFUs. No floating-point value enters the data path between
// the input encoding and the output decoding.
type BlockRunner struct {
	blk *vit.Block
	p   *BlockParams
	arr ArrayConfig

	ln1, ln2   *sfu.LayerNormUnit
	softmax    *sfu.Unit
	gelu       *sfu.Unit
	add1, add2 *sfu.AddUnit

	// Resident prepared weight operands: QUB-decoded once at construction
	// into pre-shifted int64 form and reused by every Run. The QKV weight
	// is split into its three column groups so each can feed its own
	// quantization unit.
	pQ, pK, pV *PreparedOperand
	pProj      *PreparedOperand
	pFC1, pFC2 *PreparedOperand

	// Activation register files, resolved once at construction so Run
	// never has to handle a RegistersFor failure mid-execution.
	rLN1, rLN2           qub.Registers
	rQ, rK, rV           qub.Registers
	rSoftmaxOut, rProjIn qub.Registers
	rGeluOut             qub.Registers
}

// RunStats aggregates the cycle accounting of one block execution.
type RunStats struct {
	GEMMCycles int64
	MACs       int64
}

// NewBlockRunner prepares the units and pre-encodes the weights.
func NewBlockRunner(blk *vit.Block, p *BlockParams, arr ArrayConfig) (*BlockRunner, error) {
	r := &BlockRunner{blk: blk, p: p, arr: arr}
	var err error
	if r.ln1, err = sfu.NewLayerNormUnit(p.In, p.LN1Out, blk.LN1.Gamma, blk.LN1.Beta); err != nil {
		return nil, fmt.Errorf("accel: ln1 unit: %w", err)
	}
	if r.ln2, err = sfu.NewLayerNormUnit(p.Resid1, p.LN2Out, blk.LN2.Gamma, blk.LN2.Beta); err != nil {
		return nil, fmt.Errorf("accel: ln2 unit: %w", err)
	}
	if r.softmax, err = sfu.NewUnit(p.SoftmaxIn, p.SoftmaxOut); err != nil {
		return nil, fmt.Errorf("accel: softmax unit: %w", err)
	}
	if r.gelu, err = sfu.NewUnit(p.GeluIn, p.GeluOut); err != nil {
		return nil, fmt.Errorf("accel: gelu unit: %w", err)
	}
	if r.add1, err = sfu.NewAddUnit(p.In, p.ProjOut, p.Resid1); err != nil {
		return nil, fmt.Errorf("accel: residual adder 1: %w", err)
	}
	if r.add2, err = sfu.NewAddUnit(p.Resid1, p.FC2Out, p.Resid2); err != nil {
		return nil, fmt.Errorf("accel: residual adder 2: %w", err)
	}
	// Encode each weight once and decode it straight into a resident
	// prepared operand: Run never touches qub words (or floats) on the
	// weight side again.
	prep := func(p *quant.Params, w *tensor.Tensor) (*PreparedOperand, error) {
		regs, err := qub.RegistersFor(p)
		if err != nil {
			return nil, err
		}
		return PrepareWords(qub.EncodeTensor(p, w.Data()), regs, w.Dim(0), w.Dim(1))
	}
	qkv, err := prep(p.WQKV, blk.QKV.W)
	if err != nil {
		return nil, err
	}
	dim := blk.QKV.W.Dim(0)
	r.pQ = qkv.SliceCols(0, dim)
	r.pK = qkv.SliceCols(dim, 2*dim)
	r.pV = qkv.SliceCols(2*dim, 3*dim)
	if r.pProj, err = prep(p.WProj, blk.Proj.W); err != nil {
		return nil, err
	}
	if r.pFC1, err = prep(p.WFC1, blk.FC1.W); err != nil {
		return nil, err
	}
	if r.pFC2, err = prep(p.WFC2, blk.FC2.W); err != nil {
		return nil, err
	}
	for _, a := range []struct {
		dst  *qub.Registers
		p    *quant.Params
		site string
	}{
		{&r.rLN1, p.LN1Out, "ln1.out"},
		{&r.rLN2, p.LN2Out, "ln2.out"},
		{&r.rQ, p.Q, "attn.q"},
		{&r.rK, p.K, "attn.k"},
		{&r.rV, p.V, "attn.v"},
		{&r.rSoftmaxOut, p.SoftmaxOut, "attn.softmax_out"},
		{&r.rProjIn, p.ProjIn, "attn.proj_in"},
		{&r.rGeluOut, p.GeluOut, "mlp.gelu_out"},
	} {
		if *a.dst, err = qub.RegistersFor(a.p); err != nil {
			return nil, fmt.Errorf("accel: registers for %s: %w", a.site, err)
		}
	}
	return r, nil
}

// gemmQ runs x ([m,k] QUB with regs rx) against a dynamically-produced
// QUB word operand (the attention GEMMs, whose right-hand sides are
// activations), adds the layer bias in accumulator units, and
// requantizes into pout. scale is an extra factor folded into the
// accumulator unit (1 except for attention's 1/√d_h).
func (r *BlockRunner) gemmQ(x []qub.Word, rx qub.Registers, w []qub.Word, rw qub.Registers,
	m, k, n int, bias []float64, scale float64, pout *quant.Params, stats *RunStats) ([]qub.Word, error) {

	res, err := r.arr.GEMM(x, rx, w, rw, m, k, n, nil)
	if err != nil {
		return nil, err
	}
	//quq:float-ok accumulator-unit derivation is requantizer configuration (exact power-of-two products), computed once per GEMM, not per-element datapath work
	accUnit := rx.BaseDelta * rw.BaseDelta * scale
	return r.finishGEMM(res, accUnit, m, n, bias, pout, stats)
}

// gemmP runs x ([m,k] QUB with regs rx) against a resident prepared
// weight operand — decoded once at construction, reused by every Run —
// then adds the bias and requantizes like gemmQ.
func (r *BlockRunner) gemmP(x []qub.Word, rx qub.Registers, w *PreparedOperand,
	m, k int, bias []float64, pout *quant.Params, stats *RunStats) ([]qub.Word, error) {

	res, err := r.arr.GEMMPrepared(x, rx, w, m, k, nil)
	if err != nil {
		return nil, err
	}
	//quq:float-ok accumulator-unit derivation is requantizer configuration (exact power-of-two products), computed once per GEMM, not per-element datapath work
	accUnit := rx.BaseDelta * w.Delta
	return r.finishGEMM(res, accUnit, m, w.Cols, bias, pout, stats)
}

// finishGEMM is the shared epilogue of gemmQ/gemmP: cycle accounting,
// bias addition in accumulator units, and requantization into pout.
func (r *BlockRunner) finishGEMM(res *GEMMResult, accUnit float64, m, n int,
	bias []float64, pout *quant.Params, stats *RunStats) ([]qub.Word, error) {

	stats.GEMMCycles += res.Stats.Cycles
	stats.MACs += res.Stats.MACs
	qu, err := NewQuantizeUnit(pout, accUnit)
	if err != nil {
		return nil, err
	}
	// Bias in accumulator units (a constant per output column, added to
	// the accumulator before requantization — standard practice).
	var biasAcc []int64
	if bias != nil {
		biasAcc = make([]int64, n)
		for j, b := range bias {
			//quq:float-ok one-time weight-loading conversion of the float bias into integer accumulator units; hardware does this at model-load, not inference
			biasAcc[j] = int64(math.RoundToEven(b / accUnit))
		}
	}
	out := make([]qub.Word, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := res.Acc[i*n+j]
			if biasAcc != nil {
				acc += biasAcc[j]
			}
			out[i*n+j] = qub.Encode(pout, qu.Requantize(acc))
		}
	}
	return out, nil
}

// Run executes the block on input x ([T, dim], floating point at the
// boundary) and returns the decoded output together with the float
// values of every intermediate. The input is encoded with the block-input
// quantizer; everything in between stays integer.
func (r *BlockRunner) Run(x *tensor.Tensor) (*tensor.Tensor, *RunStats, error) {
	t := x.Dim(0)
	dim := x.Dim(1)
	heads := r.blk.Heads
	dh := dim / heads
	stats := &RunStats{}

	xw := qub.EncodeTensor(r.p.In, x.Data())

	// LayerNorm 1 (row-wise SFU).
	h1 := make([]qub.Word, len(xw))
	for row := 0; row < t; row++ {
		copy(h1[row*dim:(row+1)*dim], r.ln1.Row(xw[row*dim:(row+1)*dim]))
	}

	// QKV projection: q, k and v carry separate quantizers, so the GEMM
	// runs as three column groups, each fanned into its own quantization
	// unit (hardware shares the accumulators; the cycle model charges
	// each group's tile schedule).
	qWords, err := r.gemmP(h1, r.rLN1, r.pQ, t, dim, r.blk.QKV.B[:dim], r.p.Q, stats)
	if err != nil {
		return nil, nil, err
	}
	kW, err := r.gemmP(h1, r.rLN1, r.pK, t, dim, r.blk.QKV.B[dim:2*dim], r.p.K, stats)
	if err != nil {
		return nil, nil, err
	}
	vW, err := r.gemmP(h1, r.rLN1, r.pV, t, dim, r.blk.QKV.B[2*dim:], r.p.V, stats)
	if err != nil {
		return nil, nil, err
	}

	// Attention per head: scores = Q·Kᵀ/√dh -> softmax SFU -> ·V.
	ctx := make([]qub.Word, t*dim)
	//quq:float-ok 1/√d_h is a compile-time constant of the head geometry, folded into the requantizer configuration — not a runtime datapath value
	scale := 1 / math.Sqrt(float64(dh))
	for hd := 0; hd < heads; hd++ {
		qh := sliceCols(qWords, t, dim, hd*dh, (hd+1)*dh)                     // [t, dh]
		khT := transposeWords(sliceCols(kW, t, dim, hd*dh, (hd+1)*dh), t, dh) // [dh, t]
		scores, err := r.gemmQ(qh, r.rQ, khT, r.rK, t, dh, t, nil, scale, r.p.SoftmaxIn, stats)
		if err != nil {
			return nil, nil, err
		}
		probs := make([]qub.Word, t*t)
		for row := 0; row < t; row++ {
			copy(probs[row*t:(row+1)*t], r.softmax.Softmax(scores[row*t:(row+1)*t]))
		}
		vh := sliceCols(vW, t, dim, hd*dh, (hd+1)*dh) // [t, dh]
		ctxH, err := r.gemmQ(probs, r.rSoftmaxOut, vh, r.rV, t, t, dh, nil, 1, r.p.ProjIn, stats)
		if err != nil {
			return nil, nil, err
		}
		// Scatter head context into [t, dim].
		for row := 0; row < t; row++ {
			copy(ctx[row*dim+hd*dh:row*dim+(hd+1)*dh], ctxH[row*dh:(row+1)*dh])
		}
	}

	projOut, err := r.gemmP(ctx, r.rProjIn, r.pProj, t, dim, r.blk.Proj.B, r.p.ProjOut, stats)
	if err != nil {
		return nil, nil, err
	}

	// Residual 1.
	x1 := r.add1.Add(xw, projOut)

	// LayerNorm 2 + MLP.
	h2 := make([]qub.Word, len(x1))
	for row := 0; row < t; row++ {
		copy(h2[row*dim:(row+1)*dim], r.ln2.Row(x1[row*dim:(row+1)*dim]))
	}
	hidden := r.blk.FC1.Out()
	hid, err := r.gemmP(h2, r.rLN2, r.pFC1, t, dim, r.blk.FC1.B, r.p.GeluIn, stats)
	if err != nil {
		return nil, nil, err
	}
	act := r.gelu.GELU(hid)
	mlpOut, err := r.gemmP(act, r.rGeluOut, r.pFC2, t, hidden, r.blk.FC2.B, r.p.FC2Out, stats)
	if err != nil {
		return nil, nil, err
	}

	// Residual 2.
	x2 := r.add2.Add(x1, mlpOut)
	regsOut, err := r.add2.OutRegisters()
	if err != nil {
		return nil, nil, err
	}
	out := tensor.FromSlice(qub.DecodeTensor(x2, regsOut), t, dim)
	return out, stats, nil
}

// sliceCols extracts columns [lo, hi) of a row-major [rows, cols] word
// matrix into a new [rows, hi-lo] matrix.
func sliceCols(w []qub.Word, rows, cols, lo, hi int) []qub.Word {
	out := make([]qub.Word, rows*(hi-lo))
	for r := 0; r < rows; r++ {
		copy(out[r*(hi-lo):(r+1)*(hi-lo)], w[r*cols+lo:r*cols+hi])
	}
	return out
}

// transposeWords transposes a row-major [rows, cols] word matrix.
func transposeWords(w []qub.Word, rows, cols int) []qub.Word {
	out := make([]qub.Word, len(w))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out[c*rows+r] = w[r*cols+c]
		}
	}
	return out
}
