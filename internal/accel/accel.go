// Package accel implements the quadruplet uniform accelerator (QUA) of
// the paper's Figure 6 as a cycle-approximate, bit-exact simulator:
//
//   - a weight-stationary PE array that multiplies decoded QUB operands
//     (D, n_sh) and accumulates the Eq. (5) shifted products in wide
//     integer registers;
//   - decoding units (DUs) on the operand paths implementing Eq. (6);
//   - quantization units (QUs) that rescale accumulator values with an
//     integer multiply-and-shift (M/2^N) and requantize into the output
//     tensor's QUB encoding, selecting the dynamic subrange shift s_y by
//     magnitude comparison against power-of-two boundaries (a leading-
//     zero count in hardware);
//   - a cycle model for the systolic GEMM schedule.
//
// The integer datapath is cross-checked against the floating-point
// fake-quantization pipeline in the package tests: both paths implement
// the same quantizer, so they must agree to rounding of the M/2^N
// rescaling.
package accel

import (
	"fmt"
	"math"

	"quq/internal/quant"
	"quq/internal/qub"
	"quq/internal/tensor"
)

// ArrayConfig sizes the PE array.
type ArrayConfig struct {
	// N is the array side (N×N PEs).
	N int
	// Bits is the operand bit-width.
	Bits int
	// PipelineFill is the extra cycles to fill/drain the systolic
	// pipeline per tile (defaults to 2N).
	PipelineFill int
}

// DefaultArray returns the paper's 16×16 array at the given bit-width.
func DefaultArray(bits int) ArrayConfig { return ArrayConfig{N: 16, Bits: bits} }

// GEMMStats reports the cycle model's accounting for one M×K×N GEMM.
type GEMMStats struct {
	M, K, N     int
	Tiles       int
	Cycles      int64
	MACs        int64
	Utilization float64
}

// Cycles estimates the systolic schedule: each output tile of n×n
// elements streams K partial products plus pipeline fill/drain.
func (c ArrayConfig) Cycles(m, k, n int) GEMMStats {
	fill := c.PipelineFill
	if fill == 0 {
		fill = 2 * c.N
	}
	tilesM := (m + c.N - 1) / c.N
	tilesN := (n + c.N - 1) / c.N
	tiles := tilesM * tilesN
	cycles := int64(tiles) * int64(k+fill)
	macs := int64(m) * int64(k) * int64(n)
	//quq:float-ok utilization is a reporting statistic of the cycle model, not a value on the simulated datapath
	util := float64(macs) / (float64(cycles) * float64(c.N) * float64(c.N))
	return GEMMStats{M: m, K: k, N: n, Tiles: tiles, Cycles: cycles, MACs: macs, Utilization: util}
}

// Rescale is the QU's integer scaling: value ≈ acc · M / 2^N, with M and
// N chosen so that M/2^N approximates the real scale within 2^-16
// (Eq. (2)'s integer-only substitution).
type Rescale struct {
	M int64
	N uint
}

// NewRescale approximates scale ∈ (0, 2^30) as M/2^N with a 16-bit M.
//
//quq:float-ok converting the real scale into its integer M/2^N substitute is offline QU configuration; the per-element Apply path is pure integer
func NewRescale(scale float64) (Rescale, error) {
	if !(scale > 0) || math.IsInf(scale, 0) {
		return Rescale{}, fmt.Errorf("accel: invalid rescale factor %v", scale)
	}
	// Normalize scale into [2^14, 2^15) by choosing N.
	n := 0
	s := scale
	for s < 1<<14 {
		s *= 2
		n++
		if n > 62 {
			return Rescale{}, fmt.Errorf("accel: rescale factor %v too small", scale)
		}
	}
	for s >= 1<<15 {
		s /= 2
		n--
		if n < -30 {
			return Rescale{}, fmt.Errorf("accel: rescale factor %v too large", scale)
		}
	}
	if n < 0 {
		// Large scales: fold the excess back into M.
		return Rescale{M: int64(math.Round(scale)), N: 0}, nil
	}
	return Rescale{M: int64(math.Round(s)), N: uint(n)}, nil
}

// Apply computes round(acc · M / 2^N) in integer arithmetic.
func (r Rescale) Apply(acc int64) int64 {
	p := acc * r.M
	if r.N == 0 {
		return p
	}
	// Round-to-nearest on the right shift.
	half := int64(1) << (r.N - 1)
	if p >= 0 {
		return (p + half) >> r.N
	}
	return -((-p + half) >> r.N)
}

// QuantizeUnit requantizes integer accumulator values into an output
// tensor's QUQ code space. The unit works entirely on integers: the
// accumulator value is rescaled to units of the *base* output Δ, then the
// subrange is selected by magnitude comparison against the power-of-two
// subrange boundaries and the code is produced by a rounding right-shift
// of s_y bits — the leading-zero-detector datapath of §4.2.
type QuantizeUnit struct {
	Params *quant.Params
	// scale converts accumulator units into units of the output base Δ.
	scale Rescale
	// fracBits is the sub-LSB precision kept during subrange selection.
	fracBits uint
}

// NewQuantizeUnit builds a QU for an output quantized with outParams,
// where one accumulator unit is worth accUnit in real terms (for a GEMM
// of QUB operands, accUnit = Δx·Δw).
func NewQuantizeUnit(outParams *quant.Params, accUnit float64) (*QuantizeUnit, error) {
	if err := outParams.Validate(); err != nil {
		return nil, err
	}
	const fracBits = 8
	//quq:float-ok one-time QU configuration: the float ratio is immediately frozen into the integer M/2^N rescaler
	sc, err := NewRescale(accUnit / outParams.BaseDelta() * (1 << fracBits))
	if err != nil {
		return nil, err
	}
	return &QuantizeUnit{Params: outParams, scale: sc, fracBits: fracBits}, nil
}

// Requantize maps an integer accumulator value to the output QUB code.
func (q *QuantizeUnit) Requantize(acc int64) quant.Code {
	// v = value in units of the base Δ, with fracBits fractional bits.
	v := q.scale.Apply(acc)
	neg := v < 0
	if neg {
		v = -v
	}
	var fine, coarse quant.Slot
	if neg {
		fine, coarse = quant.FNeg, quant.CNeg
	} else {
		fine, coarse = quant.FPos, quant.CPos
	}
	f := q.Params.Slot(fine)
	c := q.Params.Slot(coarse)
	code := func(slot quant.Slot, sp quant.SlotParams) quant.Code {
		// mag = round(v / 2^(shift+fracBits)): a rounding right-shift by
		// s_y (+ the fractional guard bits).
		sh := uint(q.Params.Shift(slot)) + q.fracBits
		mag := (v + int64(1)<<(sh-1)) >> sh
		if mag > sp.MaxMag {
			mag = sp.MaxMag
		}
		if mag == 0 {
			return q.Params.Quantize(0)
		}
		if slot.Negative() {
			return quant.Code{Slot: slot, Mag: mag}
		}
		return quant.Code{Slot: slot, Mag: mag}
	}
	if f.Enabled {
		// Fine-representable? Compare against the fine bound — in
		// hardware a leading-zero count, since the bound is Δ_F·MaxMag
		// with MaxMag+rounding at a power-of-two position.
		sh := uint(q.Params.Shift(fine)) + q.fracBits
		mag := (v + int64(1)<<(sh-1)) >> sh
		if mag <= f.MaxMag || !c.Enabled {
			return code(fine, f)
		}
	}
	if c.Enabled {
		return code(coarse, c)
	}
	return q.Params.Quantize(0)
}

// GEMM runs a bit-exact QUB matrix multiply on the array: x is [M, K]
// and w is [K, N], both already QUB-encoded with their registers; the
// result is requantized by qu into [M, N] QUB words plus the cycle
// statistics. Accumulation is int64 (the hardware's 32-bit accumulators
// never overflow at the paper's sizes; the tests check the bound).
type GEMMResult struct {
	Out   []qub.Word
	Acc   []int64
	Stats GEMMStats
	// MaxAbsAcc is the largest |accumulator| seen (for width checks).
	MaxAbsAcc int64
}

// GEMM multiplies QUB-encoded x [m,k] by w [k,n]. Both operand streams
// are decoded once into pooled arena scratch (each DU decodes a stream),
// folding the Eq. (5) subrange shift into the decoded value: the
// original per-MAC product (D_a·D_b) << (n_a+n_b) equals
// (D_a<<n_a)·(D_b<<n_b) exactly — shifts distribute over products mod
// 2^64 — so pre-shifting is bit-exact and removes the shift from the
// inner loop, which runs on the tensor kernel layer's tiled/SIMD int64
// GEMM. For a weight operand reused across calls, prepare it once with
// PrepareWords and use GEMMPrepared instead.
//
//quq:hotpath per-inference integer GEMM; decode scratch is arena-pooled, only the escaping result is allocated
func (c ArrayConfig) GEMM(x []qub.Word, rx qub.Registers, w []qub.Word, rw qub.Registers, m, k, n int, qu *QuantizeUnit) (*GEMMResult, error) {
	if len(x) != m*k || len(w) != k*n {
		return nil, fmt.Errorf("accel: GEMM operand sizes %d,%d do not match %dx%dx%d", len(x), len(w), m, k, n)
	}
	ar := tensor.GetArena()
	defer ar.Release()
	vw := ar.Int64(len(w))
	decodeWords(vw, w, rw)
	res, err := c.gemmDecoded(ar, x, rx, vw, m, k, n, qu)
	ar.PutInt64(vw)
	return res, err
}

// GEMMPrepared multiplies QUB-encoded x [m,k] by a resident prepared
// operand w [k, w.Cols] — decoded once at prepare time and reused across
// calls, so the steady state decodes only the activation stream.
// Bit-identical to GEMM over the words w was prepared from.
//
//quq:hotpath per-inference integer GEMM; decode scratch is arena-pooled, only the escaping result is allocated
func (c ArrayConfig) GEMMPrepared(x []qub.Word, rx qub.Registers, w *PreparedOperand, m, k int, qu *QuantizeUnit) (*GEMMResult, error) {
	if len(x) != m*k || w.Rows != k || len(w.V) != w.Rows*w.Cols {
		return nil, fmt.Errorf("accel: GEMMPrepared operand sizes %d,%dx%d do not match m=%d k=%d", len(x), w.Rows, w.Cols, m, k)
	}
	ar := tensor.GetArena()
	defer ar.Release()
	return c.gemmDecoded(ar, x, rx, w.V, m, k, w.Cols, qu)
}

// gemmDecoded is the shared GEMM core: decode the activation stream into
// arena scratch, multiply on the int64 kernel layer (which honors the
// intra-op worker budget — SetIntraOpWorkers/GrantWorkers — like the
// float kernels), then scan for the accumulator-width statistic and
// requantize.
//
//quq:hotpath per-inference integer GEMM core; decode scratch is arena-pooled, only the escaping result is allocated
func (c ArrayConfig) gemmDecoded(ar *tensor.Arena, x []qub.Word, rx qub.Registers, vw []int64, m, k, n int, qu *QuantizeUnit) (*GEMMResult, error) {
	vx := ar.Int64(len(x))
	decodeWords(vx, x, rx)
	res := &GEMMResult{
		Out:   make([]qub.Word, m*n), //quq:hotalloc-ok the result escapes to the caller; per-call scratch is the arena-pooled decode buffer above
		Acc:   make([]int64, m*n),    //quq:hotalloc-ok the result escapes to the caller; per-call scratch is the arena-pooled decode buffer above
		Stats: c.Cycles(m, k, n),
	}
	tensor.IntMatMulInto(res.Acc, vx, vw, m, k, n)
	ar.PutInt64(vx)
	for i, acc := range res.Acc {
		if aa := abs64(acc); aa > res.MaxAbsAcc {
			res.MaxAbsAcc = aa
		}
		if qu != nil {
			res.Out[i] = qub.Encode(qu.Params, qu.Requantize(acc))
		}
	}
	return res, nil
}

// decodeWords decodes a QUB word stream into pre-shifted int64 values
// v = D << n_sh; see the GEMM doc for why pre-shifting is bit-exact.
func decodeWords(dst []int64, ws []qub.Word, r qub.Registers) {
	for i, w := range ws {
		d := qub.Decode(w, r)
		dst[i] = int64(d.D) << d.Nsh
	}
}

// ScalarIntGEMM computes dst = a·b ([m,k]·[k,n], row-major int64) with
// the pre-kernel-layer 4×4 register-tiled scalar loops. Unlike floats,
// int64 addition wraps mod 2^64 and is fully associative, so any
// accumulation order is bit-exact; the loop keeps ascending-k order
// anyway to mirror the float kernels' contract. It is retained as the
// baseline the integer kernel benchmarks measure and an oracle for the
// equivalence tests; production code routes through
// tensor.IntMatMulInto.
func ScalarIntGEMM(dst, a, b []int64, m, k, n int) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0, a1 := a[i*k:(i+1)*k], a[(i+1)*k:(i+2)*k]
		a2, a3 := a[(i+2)*k:(i+3)*k], a[(i+3)*k:(i+4)*k]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03 int64
			var c10, c11, c12, c13 int64
			var c20, c21, c22, c23 int64
			var c30, c31, c32, c33 int64
			for e := 0; e < k; e++ {
				bq := b[e*n+j : e*n+j+4]
				v0, v1, v2, v3 := bq[0], bq[1], bq[2], bq[3]
				u := a0[e]
				c00 += u * v0
				c01 += u * v1
				c02 += u * v2
				c03 += u * v3
				u = a1[e]
				c10 += u * v0
				c11 += u * v1
				c12 += u * v2
				c13 += u * v3
				u = a2[e]
				c20 += u * v0
				c21 += u * v1
				c22 += u * v2
				c23 += u * v3
				u = a3[e]
				c30 += u * v0
				c31 += u * v1
				c32 += u * v2
				c33 += u * v3
			}
			d0 := dst[i*n+j : i*n+j+4]
			d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
			d1 := dst[(i+1)*n+j : (i+1)*n+j+4]
			d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
			d2 := dst[(i+2)*n+j : (i+2)*n+j+4]
			d2[0], d2[1], d2[2], d2[3] = c20, c21, c22, c23
			d3 := dst[(i+3)*n+j : (i+3)*n+j+4]
			d3[0], d3[1], d3[2], d3[3] = c30, c31, c32, c33
		}
		for ; j < n; j++ {
			var c0, c1, c2, c3 int64
			for e := 0; e < k; e++ {
				v := b[e*n+j]
				c0 += a0[e] * v
				c1 += a1[e] * v
				c2 += a2[e] * v
				c3 += a3[e] * v
			}
			dst[i*n+j] = c0
			dst[(i+1)*n+j] = c1
			dst[(i+2)*n+j] = c2
			dst[(i+3)*n+j] = c3
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			var acc int64
			for e := 0; e < k; e++ {
				acc += arow[e] * b[e*n+j]
			}
			dst[i*n+j] = acc
		}
	}
}

// abs64 returns |v|, saturating at MaxInt64 for MinInt64 — whose true
// magnitude is not representable in int64, and whose two's-complement
// negation is itself (negative). Returning that negative value would
// silently corrupt the MaxAbsAcc accumulator-width statistic and every
// overflow bound computed from it.
func abs64(v int64) int64 {
	if v < 0 {
		if v == math.MinInt64 {
			return math.MaxInt64
		}
		return -v
	}
	return v
}

// QuantizedLinear bundles everything needed to run one quantized layer on
// the array: the operands' QUQ parameters and registers.
type QuantizedLinear struct {
	XParams, WParams *quant.Params
	XRegs, WRegs     qub.Registers
}

// NewQuantizedLinear calibrates QUB metadata for the operand parameter
// sets.
func NewQuantizedLinear(xp, wp *quant.Params) (*QuantizedLinear, error) {
	rx, err := qub.RegistersFor(xp)
	if err != nil {
		return nil, fmt.Errorf("accel: activation registers: %w", err)
	}
	rw, err := qub.RegistersFor(wp)
	if err != nil {
		return nil, fmt.Errorf("accel: weight registers: %w", err)
	}
	return &QuantizedLinear{XParams: xp, WParams: wp, XRegs: rx, WRegs: rw}, nil
}

// AccUnit returns the real value of one accumulator unit: Δx·Δw.
//
//quq:float-ok product of two power-of-two base deltas is exact and feeds QU configuration, not the datapath
func (l *QuantizedLinear) AccUnit() float64 {
	return l.XRegs.BaseDelta * l.WRegs.BaseDelta
}

// Run encodes the float operands, executes the integer GEMM, and returns
// the result decoded back to floats (for cross-checking) along with the
// raw result.
func (l *QuantizedLinear) Run(c ArrayConfig, x, w *tensor.Tensor, qu *QuantizeUnit) (*tensor.Tensor, *GEMMResult, error) {
	m, k := x.Dim(0), x.Dim(1)
	k2, n := w.Dim(0), w.Dim(1)
	if k != k2 {
		return nil, nil, fmt.Errorf("accel: shape mismatch %v @ %v", x.Shape(), w.Shape())
	}
	xe := qub.EncodeTensor(l.XParams, x.Data())
	we := qub.EncodeTensor(l.WParams, w.Data())
	res, err := c.GEMM(xe, l.XRegs, we, l.WRegs, m, k, n, qu)
	if err != nil {
		return nil, nil, err
	}
	out := tensor.New(m, n)
	unit := l.AccUnit()
	if qu != nil {
		r, err := qub.RegistersFor(qu.Params)
		if err != nil {
			return nil, nil, err
		}
		for i, wd := range res.Out {
			out.Data()[i] = qub.Decode(wd, r).Value(r.BaseDelta)
		}
	} else {
		for i, acc := range res.Acc {
			//quq:float-ok decode boundary: converting raw accumulators back to real values for the float cross-check, outside the integer pipeline
			out.Data()[i] = float64(acc) * unit
		}
	}
	return out, res, nil
}
