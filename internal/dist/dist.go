// Package dist generates synthetic tensors whose distributions match the
// four families the QUQ paper characterizes in Figure 3: query-projection
// weights, post-Softmax activations, pre-addition (residual input)
// activations and post-GELU activations.
//
// The generators reproduce the *mechanism* that shapes each family rather
// than fitting histograms: post-Softmax data really is the softmax of
// synthetic attention logits, post-GELU data really is GELU applied to
// Gaussian pre-activations, and so on. This is the substitution this repo
// makes for the paper's ImageNet-derived activations (see DESIGN.md): the
// traits QUQ exploits — long tails, sign asymmetry, zero-clustered mass —
// arise structurally from these operators, not from the image content.
package dist

import (
	"fmt"
	"quq/internal/check"

	"quq/internal/mathx"
	"quq/internal/rng"
)

// Family identifies one of the four Figure 3 data families.
type Family int

const (
	// QueryWeight mimics the weights of the query projection in MSA:
	// near-Gaussian, zero-mean, with a mild heavy tail from a small
	// population of large-magnitude weights.
	QueryWeight Family = iota
	// PostSoftmax mimics attention probabilities: non-negative, almost
	// all mass near zero, rare values approaching one.
	PostSoftmax
	// PreAddition mimics residual-connection inputs: symmetric about
	// zero with a very wide outlier range produced by accumulation
	// through the residual stream.
	PreAddition
	// PostGELU mimics GELU outputs: the negative side is bounded near
	// −0.17 while the positive side has a long tail — the strongly
	// asymmetric case motivating QUQ's mode merging.
	PostGELU
	numFamilies
)

// Families lists all four families in Figure 3's order.
var Families = []Family{QueryWeight, PostSoftmax, PreAddition, PostGELU}

// String returns the paper's column label for the family (Table 1).
func (f Family) String() string {
	switch f {
	case QueryWeight:
		return "Query W"
	case PostSoftmax:
		return "Post-Softmax A"
	case PreAddition:
		return "Pre-Addition A"
	case PostGELU:
		return "Post-GELU A"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// Sample draws n values from the family using src.
func Sample(f Family, n int, src *rng.Source) []float64 {
	switch f {
	case QueryWeight:
		return sampleQueryWeight(n, src)
	case PostSoftmax:
		return samplePostSoftmax(n, src)
	case PreAddition:
		return samplePreAddition(n, src)
	case PostGELU:
		return samplePostGELU(n, src)
	}
	panic(check.Invariantf("dist: unknown family %d", int(f)))
}

// sampleQueryWeight draws from a two-component Gaussian scale mixture:
// the bulk at fan-in-initialization scale plus ~1.5% of weights at 4× the
// scale, which reproduces the mild heavy tail of trained ViT query
// weights.
func sampleQueryWeight(n int, src *rng.Source) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		sd := 0.045
		if src.Float64() < 0.015 {
			sd = 0.18
		}
		xs[i] = src.Gauss(0, sd)
	}
	return xs
}

// samplePostSoftmax builds rows of attention logits (Gaussian with a
// temperature that yields a few dominant keys per row), applies a real
// softmax to each row, and concatenates the rows. The result is
// non-negative with most mass far below 1/rowLen and occasional values
// close to one — the Figure 3(b) shape.
func samplePostSoftmax(n int, src *rng.Source) []float64 {
	const rowLen = 64
	xs := make([]float64, 0, n+rowLen)
	row := make([]float64, rowLen)
	for len(xs) < n {
		// Per-row sharpness varies: some heads attend broadly, some
		// collapse onto one token.
		temp := 1.0 + 3.0*src.Float64()
		for i := range row {
			row[i] = src.Gauss(0, temp)
		}
		mathx.SoftmaxInPlace(row)
		xs = append(xs, row...)
	}
	return xs[:n]
}

// samplePreAddition draws from a Laplace bulk plus sparse large outliers,
// modelling the residual stream where a handful of channels accumulate
// magnitudes tens of standard deviations above the bulk (the well-known
// ViT outlier-channel effect the paper's Figure 3(c) shows).
func samplePreAddition(n int, src *rng.Source) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch {
		case src.Float64() < 0.003:
			// Outlier channel: wide, both signs.
			xs[i] = src.Gauss(0, 9)
		default:
			xs[i] = src.Laplace(0.55)
		}
	}
	return xs
}

// samplePostGELU applies the exact GELU to Gaussian pre-activations with
// a mild outlier mixture. Negative outputs are structurally bounded in
// (−0.17, 0] while positive outputs inherit the pre-activation tail.
func samplePostGELU(n int, src *rng.Source) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		sd := 0.9
		if src.Float64() < 0.01 {
			sd = 4.0
		}
		xs[i] = mathx.Gelu(src.Gauss(0, sd))
	}
	return xs
}

// Histogram bins xs into nbins equal-width buckets over [min, max] and
// returns the bin edges (nbins+1 values) and counts. It is used by the
// Figure 3 regeneration to emit plottable CSV.
func Histogram(xs []float64, nbins int) (edges []float64, counts []int) {
	if len(xs) == 0 || nbins <= 0 {
		return nil, nil
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, nbins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(nbins)
	}
	counts = make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, v := range xs {
		b := int((v - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
