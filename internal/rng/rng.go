// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the repository.
//
// Every experiment in this repo must be reproducible bit-for-bit, so all
// stochastic code paths draw from an explicitly seeded *rng.Source rather
// than from math/rand's global state. The generator is SplitMix64, which
// has a 64-bit state, passes BigCrush for the purposes we need (synthetic
// data generation), and — unlike math/rand — has a trivially portable
// specification, so regenerated tables do not depend on the Go release.
package rng

import (
	"math"

	"quq/internal/check"
)

// Source is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; use New to seed it
// explicitly. Source is not safe for concurrent use; derive independent
// streams with Split instead of sharing one Source across goroutines.
type Source struct {
	state uint64
	// cached spare Gaussian sample from the Box-Muller transform
	spare    float64
	hasSpare bool
}

// New returns a Source seeded with the given seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream from s. The child's sequence
// does not overlap s's sequence in practice (distinct SplitMix64 seeds),
// which makes it safe to hand children to concurrent workers.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Uint64 returns the next value in the SplitMix64 sequence.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic(check.Invariant("rng: Intn called with non-positive n"))
	}
	// Lemire's multiply-shift rejection method would be overkill here;
	// the modulo bias for n << 2^64 is far below experimental noise.
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform sample in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard Gaussian sample via the Box-Muller transform.
func (s *Source) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return u * f
}

// Gauss returns a Gaussian sample with the given mean and standard
// deviation.
func (s *Source) Gauss(mean, sd float64) float64 {
	return mean + sd*s.Norm()
}

// Laplace returns a Laplace(0, b) sample: a symmetric long-tailed
// distribution that matches the "most elements cluster around zero,
// outliers exhibit a wide range" trait the QUQ paper observes in ViT data.
func (s *Source) Laplace(b float64) float64 {
	u := s.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// Exp returns an exponential sample with rate 1/scale (mean = scale).
func (s *Source) Exp(scale float64) float64 {
	return -scale * math.Log(1-s.Float64())
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
