// Package leakcheck is the fixture corpus for the leakcheck analyzer:
// goroutines spawned with no provable stop path, the conforming
// context/WaitGroup/channel-tied forms, and a documented
// //quq:goroutine-ok suppression.
package leakcheck

import (
	"context"
	"fmt"
	"sync"
)

// spinForever has no stop signal of any kind in its body.
func spinForever(n *int) {
	go func() { // want `goroutine with no provable stop path`
		for {
			*n++
		}
	}()
}

func noStop() {
	for i := 0; ; i++ {
		_ = i
	}
}

// declaredLeak spawns a same-package function whose body provably never
// listens for shutdown.
func declaredLeak() {
	go noStop() // want `goroutine with no provable stop path`
}

// tiedToContext is the conforming form: the context argument is the
// stop carrier.
func tiedToContext(ctx context.Context, n *int) {
	go func(ctx context.Context) {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				*n++
			}
		}
	}(ctx)
}

// joinedByWaitGroup passes the WaitGroup in, so the spawner can wait.
func joinedByWaitGroup(wg *sync.WaitGroup, n *int) {
	wg.Add(1)
	go func(wg *sync.WaitGroup) {
		defer wg.Done()
		*n++
	}(wg)
}

// drainsChannel ranges over a channel: closing it stops the goroutine.
func drainsChannel(in chan int, n *int) {
	go func() {
		for v := range in {
			*n += v
		}
	}()
}

// signalsDone closes a done channel the spawner can select on.
func signalsDone(n *int) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		*n++
	}()
	return done
}

// fireAndForget is the sanctioned escape hatch for provably-terminating
// one-shot work, documented in place.
func fireAndForget(msg string) {
	//quq:goroutine-ok one-shot print terminates on its own; nothing to stop
	go fmt.Println(msg)
}
