package qub

import (
	"math"
	"testing"
	"testing/quick"

	"quq/internal/dist"
	"quq/internal/quant"
	"quq/internal/rng"
)

func calibrated(fam dist.Family, bits int, seed uint64) (*quant.Params, []float64) {
	xs := dist.Sample(fam, 1<<13, rng.New(seed))
	return quant.PRA(xs, bits, quant.DefaultPRAOptions()), xs
}

func TestSpaceRegPackRoundTrip(t *testing.T) {
	cases := []SpaceReg{
		{Used: true, Both: true, ShNeg: 0, ShPos: 0},
		{Used: true, Both: true, ShNeg: 7, ShPos: 3},
		{Used: true, NegSide: true, ShNeg: 5},
		{Used: true, ShPos: 2},
	}
	for _, c := range cases {
		b, err := c.Pack()
		if err != nil {
			t.Fatalf("Pack(%+v): %v", c, err)
		}
		got := UnpackSpace(b)
		if got != c {
			t.Errorf("round trip: %+v -> %08b -> %+v", c, b, got)
		}
	}
}

func TestSpaceRegPackRejectsWideShift(t *testing.T) {
	if _, err := (SpaceReg{Used: true, ShPos: 8}).Pack(); err == nil {
		t.Fatal("Pack accepted a 4-bit shift")
	}
}

func TestPackLayoutMatchesPaper(t *testing.T) {
	// c7 = both-signs flag, c6 = merged-side-negative, c5-3 = log2 s_neg,
	// c2-0 = log2 s_pos.
	b, err := (SpaceReg{Used: true, Both: true, ShNeg: 3, ShPos: 5}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if b != 0b1_0_011_101 {
		t.Fatalf("packed = %08b, want 10011101", b)
	}
}

func TestRegistersForAllFamilies(t *testing.T) {
	for _, fam := range dist.Families {
		for _, bits := range []int{4, 6, 8} {
			p, _ := calibrated(fam, bits, 42)
			r, err := RegistersFor(p)
			if err != nil {
				t.Fatalf("%v b=%d: %v", fam, bits, err)
			}
			if r.Bits != bits || r.BaseDelta != p.BaseDelta() {
				t.Fatalf("%v b=%d: registers carry wrong metadata", fam, bits)
			}
		}
	}
}

func TestRegistersForModeShapes(t *testing.T) {
	// Mode A (pre-addition): both spaces serve both signs.
	p, _ := calibrated(dist.PreAddition, 6, 42)
	if p.Mode != quant.ModeA {
		t.Skipf("expected Mode A, got %v", p.Mode)
	}
	r, err := RegistersFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.F.Both || !r.C.Both {
		t.Fatalf("Mode A registers: F=%+v C=%+v", r.F, r.C)
	}

	// Mode B (post-softmax): both spaces merged positive.
	p, _ = calibrated(dist.PostSoftmax, 6, 42)
	if p.Mode != quant.ModeB {
		t.Skipf("expected Mode B, got %v", p.Mode)
	}
	r, err = RegistersFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.F.Both || r.F.NegSide || r.C.Both || r.C.NegSide {
		t.Fatalf("Mode B registers: F=%+v C=%+v", r.F, r.C)
	}

	// Mode C (post-GELU): fine both, coarse merged positive.
	p, _ = calibrated(dist.PostGELU, 6, 42)
	if p.Mode != quant.ModeC {
		t.Skipf("expected Mode C, got %v", p.Mode)
	}
	r, err = RegistersFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.F.Both || r.C.Both || r.C.NegSide {
		t.Fatalf("Mode C registers: F=%+v C=%+v", r.F, r.C)
	}
}

func TestRegistersForRejectsWideShift(t *testing.T) {
	p := &quant.Params{Bits: 8, Mode: quant.ModeA}
	p.Slots[quant.FNeg] = quant.SlotParams{Enabled: true, Delta: 1, MaxMag: 64}
	p.Slots[quant.FPos] = quant.SlotParams{Enabled: true, Delta: 1, MaxMag: 63}
	p.Slots[quant.CNeg] = quant.SlotParams{Enabled: true, Delta: 256, MaxMag: 64} // shift 8
	p.Slots[quant.CPos] = quant.SlotParams{Enabled: true, Delta: 256, MaxMag: 63}
	if _, err := RegistersFor(p); err == nil {
		t.Fatal("RegistersFor accepted shift 8")
	}
}

func TestRegistersForRejectsOversizedMag(t *testing.T) {
	p := &quant.Params{Bits: 8, Mode: quant.ModeA}
	p.Slots[quant.FNeg] = quant.SlotParams{Enabled: true, Delta: 1, MaxMag: 65} // > 2^(b-2)
	p.Slots[quant.FPos] = quant.SlotParams{Enabled: true, Delta: 1, MaxMag: 63}
	if _, err := RegistersFor(p); err == nil {
		t.Fatal("RegistersFor accepted MaxMag beyond the signed layout")
	}
}

// TestEncodeDecodeRoundTrip is the central codec property: for every
// family, bit-width and sample, decoding the encoded word reproduces the
// fake-quantized value exactly (the scale factors are exact power-of-two
// multiples of the base, so no floating-point slack is needed).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, fam := range dist.Families {
		for _, bits := range []int{4, 6, 8} {
			p, xs := calibrated(fam, bits, 42)
			r, err := RegistersFor(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs[:4000] {
				want := p.Value(x)
				got := Decode(EncodeValue(p, x), r).Value(r.BaseDelta)
				if got != want {
					t.Fatalf("%v b=%d x=%v: decoded %v, fake-quant %v", fam, bits, x, got, want)
				}
			}
		}
	}
}

func TestDecodedFitsBitWidth(t *testing.T) {
	// Eq. (7): after decoding, D must fit in a signed b-bit integer so a
	// plain b-bit signed multiplier can process any mode.
	src := rng.New(5)
	for _, fam := range dist.Families {
		for _, bits := range []int{4, 6, 8} {
			p, xs := calibrated(fam, bits, 42)
			r, err := RegistersFor(p)
			if err != nil {
				t.Fatal(err)
			}
			lo := -(int32(1) << (bits - 1))
			hi := int32(1)<<(bits-1) - 1
			for i := 0; i < 2000; i++ {
				x := xs[src.Intn(len(xs))] * src.Uniform(0, 2)
				d := Decode(EncodeValue(p, x), r)
				if d.D < lo || d.D > hi {
					t.Fatalf("%v b=%d: D=%d outside signed %d-bit range", fam, bits, d.D, bits)
				}
				if int(d.Nsh) > MaxShift {
					t.Fatalf("%v b=%d: nsh=%d beyond register range", fam, bits, d.Nsh)
				}
			}
		}
	}
}

func TestMergedNegativeZeroDeviation(t *testing.T) {
	// Documented deviation: a non-positive tensor's exact zero encodes
	// as −Δ in the merged negative space.
	src := rng.New(6)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = -src.Exp(1)
	}
	p := quant.PRA(xs, 6, quant.DefaultPRAOptions())
	r, err := RegistersFor(p)
	if err != nil {
		t.Fatal(err)
	}
	got := Decode(EncodeValue(p, 0), r).Value(r.BaseDelta)
	fineDelta := p.Slot(quant.FNeg).Delta
	if got != -fineDelta {
		t.Fatalf("zero decoded to %v, want -Δ_F = %v", got, -fineDelta)
	}
}

func TestUniformSpecialCaseRoundTrip(t *testing.T) {
	// ParamsForUniform (Mode D with Δ_C− = Δ_F+) must be fully QUB-
	// representable and reproduce the uniform quantizer bit for bit.
	src := rng.New(7)
	for _, bits := range []int{4, 6, 8} {
		p := quant.ParamsForUniform(0.37, bits)
		r, err := RegistersFor(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			x := src.Gauss(0, 5)
			want := quant.Uniform(x, 0.37, bits)
			got := Decode(EncodeValue(p, x), r).Value(r.BaseDelta)
			if got != want {
				t.Fatalf("b=%d x=%v: %v != uniform %v", bits, x, got, want)
			}
		}
	}
}

func TestDotMatchesFloatDot(t *testing.T) {
	// Eq. (5): the integer accumulation times Δx·Δw equals the dot
	// product of the fake-quantized vectors.
	src := rng.New(8)
	wdata := dist.Sample(dist.QueryWeight, 256, src.Split())
	xdata := dist.Sample(dist.PostGELU, 256, src.Split())
	pw := quant.PRA(wdata, 6, quant.DefaultPRAOptions())
	px := quant.PRA(xdata, 6, quant.DefaultPRAOptions())
	rw, err := RegistersFor(pw)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := RegistersFor(px)
	if err != nil {
		t.Fatal(err)
	}
	ws := EncodeTensor(pw, wdata)
	xs := EncodeTensor(px, xdata)

	intAcc := Dot(xs, ws, rx, rw)
	got := float64(intAcc) * rx.BaseDelta * rw.BaseDelta

	var want float64
	for i := range wdata {
		want += px.Value(xdata[i]) * pw.Value(wdata[i])
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("integer dot %v != float dot %v", got, want)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot(make([]Word, 2), make([]Word, 3), Registers{Bits: 8}, Registers{Bits: 8})
}

func TestEncodeDecodePropertyRandomQuantizers(t *testing.T) {
	// Property: for random calibrated quantizers and random inputs, the
	// codec round-trips the fake-quantized value whenever the registers
	// are representable.
	seedSrc := rng.New(99)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 256 + src.Intn(1024)
		xs := make([]float64, n)
		scale := math.Exp(src.Uniform(-4, 4))
		for i := range xs {
			v := src.Laplace(scale)
			if src.Float64() < 0.02 {
				v *= 12
			}
			xs[i] = v
		}
		bits := []int{4, 6, 8}[src.Intn(3)]
		p := quant.PRA(xs, bits, quant.DefaultPRAOptions())
		r, err := RegistersFor(p)
		if err != nil {
			return true // unrepresentable shift: legitimately rejected
		}
		for i := 0; i < 200; i++ {
			x := src.Gauss(0, 3*scale)
			if x == 0 {
				continue
			}
			if Decode(EncodeValue(p, x), r).Value(r.BaseDelta) != p.Value(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f(seedSrc.Uint64()) }, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackExhaustive(t *testing.T) {
	// Every representable register configuration must round-trip.
	for _, both := range []bool{false, true} {
		for _, neg := range []bool{false, true} {
			for shNeg := uint8(0); shNeg <= MaxShift; shNeg++ {
				for shPos := uint8(0); shPos <= MaxShift; shPos++ {
					r := SpaceReg{Used: true, Both: both, NegSide: neg, ShNeg: shNeg, ShPos: shPos}
					b, err := r.Pack()
					if err != nil {
						t.Fatal(err)
					}
					if got := UnpackSpace(b); got != r {
						t.Fatalf("round trip %+v -> %+v", r, got)
					}
				}
			}
		}
	}
}

func TestDotPropertyAcrossFamilyPairs(t *testing.T) {
	// The Eq. (5) integer dot product must match the float dot product of
	// the fake-quantized vectors for every pairing of data families and
	// every bit-width (hence every mode combination).
	for _, famX := range dist.Families {
		for _, famW := range dist.Families {
			for _, bits := range []int{4, 6, 8} {
				xs := dist.Sample(famX, 192, rng.New(uint64(famX)*7+uint64(bits)))
				ws := dist.Sample(famW, 192, rng.New(uint64(famW)*13+uint64(bits)))
				px := quant.PRA(xs, bits, quant.DefaultPRAOptions())
				pw := quant.PRA(ws, bits, quant.DefaultPRAOptions())
				rx, err := RegistersFor(px)
				if err != nil {
					t.Fatalf("%v b=%d: %v", famX, bits, err)
				}
				rw, err := RegistersFor(pw)
				if err != nil {
					t.Fatalf("%v b=%d: %v", famW, bits, err)
				}
				got := float64(Dot(EncodeTensor(px, xs), EncodeTensor(pw, ws), rx, rw)) * rx.BaseDelta * rw.BaseDelta
				var want float64
				for i := range xs {
					want += px.Value(xs[i]) * pw.Value(ws[i])
				}
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%v×%v b=%d: integer %v != float %v", famX, famW, bits, got, want)
				}
			}
		}
	}
}

func TestDecodeTensorMatchesScalarDecode(t *testing.T) {
	p, xs := calibrated(dist.PreAddition, 8, 11)
	r, err := RegistersFor(p)
	if err != nil {
		t.Fatal(err)
	}
	ws := EncodeTensor(p, xs[:512])
	vals := DecodeTensor(ws, r)
	for i, w := range ws {
		if vals[i] != Decode(w, r).Value(r.BaseDelta) {
			t.Fatalf("DecodeTensor[%d] mismatch", i)
		}
	}
}
