package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// harness wires a Membership to a recorded fake routing index.
type harness struct {
	m      *Membership
	joins  []string
	leaves []string
}

func newHarness(replicas int, handoff func(ctx context.Context, addr string) (int, error)) *harness {
	h := &harness{}
	h.m = New(Config{
		Replicas: replicas,
		OnJoin:   func(addr string) { h.joins = append(h.joins, addr) },
		OnLeave:  func(addr string) { h.leaves = append(h.leaves, addr) },
		Handoff:  handoff,
	})
	return h
}

// TestJoinLeaveEpoch: every effective mutation bumps the epoch exactly
// once; ineffective ones (re-join, unknown leave) leave it alone.
func TestJoinLeaveEpoch(t *testing.T) {
	h := newHarness(2, nil)
	if e := h.m.Epoch(); e != 0 {
		t.Fatalf("fresh epoch = %d, want 0", e)
	}
	e1, added := h.m.Join("a")
	if !added || e1 != 1 {
		t.Fatalf("Join(a) = %d, %v; want 1, true", e1, added)
	}
	if e, added := h.m.Join("a"); added || e != 1 {
		t.Fatalf("re-Join(a) = %d, %v; want 1, false", e, added)
	}
	if _, added := h.m.Join("b"); !added {
		t.Fatal("Join(b) not added")
	}
	if e, err := h.m.Leave("a"); err != nil || e != 3 {
		t.Fatalf("Leave(a) = %d, %v; want 3, nil", e, err)
	}
	if _, err := h.m.Leave("a"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("double Leave error = %v, want ErrNotMember", err)
	}
	if e := h.m.Epoch(); e != 3 {
		t.Fatalf("epoch after failed leave = %d, want 3", e)
	}
	if got, want := fmt.Sprint(h.joins), "[a b]"; got != want {
		t.Fatalf("joins = %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(h.leaves), "[a]"; got != want {
		t.Fatalf("leaves = %s, want %s", got, want)
	}
	if h.m.IsMember("a") || !h.m.IsMember("b") {
		t.Fatal("roster disagrees with the mutation history")
	}
}

// TestDrainHandoffThenLeave: drain runs the handoff before the member
// leaves the roster, and reports the moved-key count.
func TestDrainHandoffThenLeave(t *testing.T) {
	var handedOff string
	h := newHarness(2, nil)
	h.m.cfg.Handoff = func(ctx context.Context, addr string) (int, error) {
		handedOff = addr
		if h.m.IsMember(addr) == false {
			t.Error("handoff ran after the member left")
		}
		return 5, nil
	}
	h.m.Join("a")
	h.m.Join("b")
	moved, epoch, err := h.m.Drain(context.Background(), "a")
	if err != nil || moved != 5 || epoch != 3 {
		t.Fatalf("Drain = %d, %d, %v; want 5, 3, nil", moved, epoch, err)
	}
	if handedOff != "a" {
		t.Fatalf("handoff saw %q, want \"a\"", handedOff)
	}
	if h.m.IsMember("a") {
		t.Fatal("drained member still on the roster")
	}
	if got, want := fmt.Sprint(h.leaves), "[a]"; got != want {
		t.Fatalf("leaves = %s, want %s", got, want)
	}
}

// TestDrainFailureKeepsMember: a failed handoff aborts the drain; the
// member stays, un-draining, and a retry can succeed.
func TestDrainFailureKeepsMember(t *testing.T) {
	fail := true
	h := newHarness(1, nil)
	h.m.cfg.Handoff = func(ctx context.Context, addr string) (int, error) {
		if fail {
			return 2, errors.New("backend unreachable")
		}
		return 3, nil
	}
	h.m.Join("a")
	moved, epoch, err := h.m.Drain(context.Background(), "a")
	if err == nil {
		t.Fatal("failed handoff reported drain success")
	}
	if moved != 2 || epoch != 1 {
		t.Fatalf("failed Drain = %d, %d; want moved 2, epoch 1 (unchanged)", moved, epoch)
	}
	if !h.m.IsMember("a") {
		t.Fatal("failed drain removed the member")
	}
	fail = false
	if moved, _, err := h.m.Drain(context.Background(), "a"); err != nil || moved != 3 {
		t.Fatalf("drain retry = %d, %v; want 3, nil", moved, err)
	}
	if h.m.IsMember("a") {
		t.Fatal("retried drain left the member behind")
	}
}

// TestDrainConflicts: a drain already in progress rejects a second
// drain of the same address; unknown addresses are ErrNotMember.
func TestDrainConflicts(t *testing.T) {
	inHandoff := make(chan struct{})
	release := make(chan struct{})
	h := newHarness(1, nil)
	h.m.cfg.Handoff = func(ctx context.Context, addr string) (int, error) {
		close(inHandoff)
		<-release
		return 0, nil
	}
	h.m.Join("a")
	done := make(chan error, 1)
	go func() {
		_, _, err := h.m.Drain(context.Background(), "a")
		done <- err
	}()
	<-inHandoff
	if _, _, err := h.m.Drain(context.Background(), "a"); !errors.Is(err, ErrDraining) {
		t.Fatalf("concurrent drain error = %v, want ErrDraining", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first drain failed: %v", err)
	}
	if _, _, err := h.m.Drain(context.Background(), "nope"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("unknown drain error = %v, want ErrNotMember", err)
	}
}

// TestViewDeterministic: the view is sorted by address and carries the
// replication factor and draining flags.
func TestViewDeterministic(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	h := newHarness(3, nil)
	h.m.cfg.Handoff = func(ctx context.Context, addr string) (int, error) {
		close(started)
		<-block
		return 0, nil
	}
	for _, a := range []string{"c", "a", "b"} {
		h.m.Join(a)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		//quq:errdrop-ok the drain outcome is irrelevant here; the test inspects the mid-drain view
		_, _, _ = h.m.Drain(context.Background(), "b")
	}()
	<-started
	v := h.m.View()
	if v.Epoch != 3 || v.Replicas != 3 || len(v.Members) != 3 {
		t.Fatalf("view = %+v, want epoch 3, replicas 3, 3 members", v)
	}
	for i, want := range []string{"a", "b", "c"} {
		if v.Members[i].Addr != want {
			t.Fatalf("member %d = %s, want %s", i, v.Members[i].Addr, want)
		}
		if drainWant := want == "b"; v.Members[i].Draining != drainWant {
			t.Fatalf("member %s draining = %v, want %v", want, v.Members[i].Draining, drainWant)
		}
	}
	close(block)
	<-done
	if h.m.IsMember("b") {
		t.Fatal("drained member still present after release")
	}
}

// TestReplicasFloor: a replication factor below 1 clamps to 1.
func TestReplicasFloor(t *testing.T) {
	if r := New(Config{}).Replicas(); r != 1 {
		t.Fatalf("default replicas = %d, want 1", r)
	}
	if r := New(Config{Replicas: -3}).Replicas(); r != 1 {
		t.Fatalf("clamped replicas = %d, want 1", r)
	}
	if r := New(Config{Replicas: 2}).Replicas(); r != 2 {
		t.Fatalf("replicas = %d, want 2", r)
	}
}
