package quant

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzFloats decodes the fuzz payload into a bounded slice of finite
// float64 samples (NaN/Inf chunks are dropped; PRA documents finite
// input).
func fuzzFloats(data []byte) []float64 {
	n := len(data) / 8
	if n > 256 {
		n = 256
	}
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		xs = append(xs, v)
	}
	return xs
}

func fuzzSeed(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// FuzzPRA asserts the Algorithm 2 contract on arbitrary finite
// calibration slices: PRA never panics and always returns a parameter
// set satisfying the Eq. (4) power-of-two invariant (Validate == nil),
// whose fake-quantized values are finite.
func FuzzPRA(f *testing.F) {
	f.Add(fuzzSeed(0.1, -0.2, 3.5, -4.25, 0.01, 12.0), uint8(6))
	f.Add(fuzzSeed(1, 2, 4, 8, 1024), uint8(8))
	f.Add(fuzzSeed(-0.5, -0.25, -1e-3), uint8(5))             // one-signed: Mode B
	f.Add(fuzzSeed(1e-310, 2e300, -1e-310, -2e300), uint8(3)) // denormal + near-overflow
	f.Add(fuzzSeed(0, 0, 0), uint8(4))                        // all-zero tensor
	f.Add(fuzzSeed(0.001, 0.002, 100000), uint8(6))           // extreme tail

	f.Fuzz(func(t *testing.T, data []byte, bitsRaw uint8) {
		bits := 3 + int(bitsRaw%6) // 3..8, the useful PTQ range
		xs := fuzzFloats(data)
		p := PRA(xs, bits, DefaultPRAOptions())
		if err := p.Validate(); err != nil {
			t.Fatalf("PRA returned invalid params for %d samples at %d bits: %v\n%v", len(xs), bits, err, p)
		}
		for i, x := range xs {
			if i == 64 {
				break
			}
			if v := p.Value(x); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("fake-quantizing finite %v produced %v under %v", x, v, p)
			}
		}
	})
}
