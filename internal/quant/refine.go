package quant

import "math"

// Calibrate produces a quantizer for xs by running PRA and then comparing
// it, on the calibration data itself, against the symmetric-uniform
// special case of QUQ. The better (lower-MSE) of the two is returned.
//
// This realizes the paper's compatibility claim — "with appropriate
// quantization settings, the performance of QUQ for any type of data will
// not be inferior to that of symmetric uniform quantization" — as an
// explicit calibration-time selection: the relaxation rounds of Algorithm
// 1 only ever grow scale factors, so on short-tailed data the Mode D
// fallback can be slightly coarser than plain uniform quantization, and
// the uniform special case wins.
func Calibrate(xs []float64, bits int, opts PRAOptions) *Params {
	p := PRA(xs, bits, opts)
	absmax := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	u := ParamsForUniform(UniformDelta(absmax, bits), bits)
	if u.MSE(xs) < p.MSE(xs) {
		return u
	}
	return p
}

// RefineOptions controls the grid search of Refine.
type RefineOptions struct {
	// ScaleGrid is the set of multipliers applied jointly to every
	// enabled scale factor (smaller values trade outlier clipping for
	// bulk resolution). The identity 1.0 is always considered.
	ScaleGrid []float64
	// FineShifts is the set of extra power-of-two exponents tried on the
	// fine subranges only (e.g. −1 halves the fine Δ). 0 is always
	// considered. Only shifts that keep Δ_F ≤ Δ_C survive.
	FineShifts []int
	// MaxSamples caps the number of calibration samples scored per
	// candidate; larger tensors are strided down to this size.
	MaxSamples int
}

// DefaultRefineOptions mirrors the granularity of the PTQ4ViT-style grid
// search the paper applies after PRA.
func DefaultRefineOptions() RefineOptions {
	return RefineOptions{
		ScaleGrid:  []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00},
		FineShifts: []int{-1, 0, 1},
		MaxSamples: 1 << 14,
	}
}

// Refine performs the paper's post-PRA grid search at the tensor level:
// it scores joint scale multipliers and fine-subrange power-of-two shifts
// by quantization MSE on (a subsample of) xs, returning the best
// candidate. Every candidate preserves the Eq. (4) power-of-two invariant
// by construction. The input params are not modified.
func Refine(xs []float64, p *Params, opts RefineOptions) *Params {
	sample := xs
	if opts.MaxSamples > 0 && len(xs) > opts.MaxSamples {
		stride := (len(xs) + opts.MaxSamples - 1) / opts.MaxSamples
		sample = make([]float64, 0, opts.MaxSamples)
		for i := 0; i < len(xs); i += stride {
			sample = append(sample, xs[i])
		}
	}
	return RefineScored(p, opts, func(c *Params) float64 { return c.MSE(sample) })
}

// RefineScored is the generalized grid search: candidates are generated
// exactly as in Refine but ranked by an arbitrary score (lower is
// better). The accuracy pipeline uses it with a diagonal-Hessian-weighted
// error for weight tensors (the paper's layer-wise Hessian-guided
// optimization).
func RefineScored(p *Params, opts RefineOptions, score func(*Params) float64) *Params {
	if len(opts.ScaleGrid) == 0 {
		opts.ScaleGrid = []float64{1.0}
	}
	if len(opts.FineShifts) == 0 {
		opts.FineShifts = []int{0}
	}

	best := p
	bestMSE := score(p)
	consider := func(c *Params) {
		if c.Validate() != nil {
			return
		}
		if m := score(c); m < bestMSE {
			best, bestMSE = c, m
		}
	}

	for _, alpha := range opts.ScaleGrid {
		if alpha <= 0 {
			continue
		}
		for _, shift := range opts.FineShifts {
			c := *p
			mul := math.Ldexp(1, shift)
			ok := true
			for i := range c.Slots {
				if !c.Slots[i].Enabled {
					continue
				}
				c.Slots[i].Delta *= alpha
				if Slot(i).Fine() {
					c.Slots[i].Delta *= mul
				}
			}
			// A fine subrange must stay no coarser than its coarse twin,
			// or the fine-first quantization rule loses its meaning.
			for _, pair := range [2][2]Slot{{FNeg, CNeg}, {FPos, CPos}} {
				f, co := c.Slots[pair[0]], c.Slots[pair[1]]
				if f.Enabled && co.Enabled && f.Delta > co.Delta*(1+1e-12) {
					ok = false
				}
			}
			if ok {
				consider(&c)
			}
		}
	}
	return best
}

// CalibrateRefined is the full tensor-level calibration pipeline used by
// the PTQ experiments: PRA, uniform-candidate selection, then grid-search
// refinement.
func CalibrateRefined(xs []float64, bits int, praOpts PRAOptions, refOpts RefineOptions) *Params {
	return Refine(xs, Calibrate(xs, bits, praOpts), refOpts)
}
