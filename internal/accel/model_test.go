package accel_test

import (
	"testing"

	"quq/internal/accel"
	"quq/internal/data"
	"quq/internal/nn"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// TestModelRunnerClassifiesLikeQuantizedModel is the whole-system
// integration check: a trained-head ViT-Nano executed entirely on the
// integer QUA datapath must reach nearly the same top-1 accuracy as the
// floating-point fake-quantization executor at the same bit-width, and
// stay close to FP32 at 8 bits.
func TestModelRunnerClassifiesLikeQuantizedModel(t *testing.T) {
	cfg := vit.ViTNano
	m, _ := nn.PretrainedZoo(cfg, 31, 80)
	calib := data.CalibrationSet(cfg, 8, 5)
	test := data.PatternSamples(cfg.Channels, cfg.ImageSize, 60, 606)
	images := make([]*tensor.Tensor, len(test))
	labels := make([]int, len(test))
	for i, s := range test {
		images[i] = s.Image
		labels[i] = s.Label
	}
	fp32 := ptq.Accuracy(ptq.ModelClassifier{M: m}, images, labels)
	if fp32 < 0.7 {
		t.Skipf("reference model too weak (%v) for an accuracy comparison", fp32)
	}

	runner, err := accel.NewModelRunner(m, calib, 8, accel.DefaultArray(8))
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	var totalMACs int64
	for i, img := range images {
		logits, stats, err := runner.Run(img)
		if err != nil {
			t.Fatal(err)
		}
		if logits.Len() != cfg.Classes {
			t.Fatalf("got %d logits", logits.Len())
		}
		if logits.ArgMax() == labels[i] {
			hit++
		}
		totalMACs = stats.MACs
	}
	acc := float64(hit) / float64(len(images))
	if acc < fp32-0.10 {
		t.Fatalf("integer datapath top-1 %v too far below FP32 %v", acc, fp32)
	}
	if totalMACs <= 0 {
		t.Fatal("no MACs accounted")
	}
}

func TestModelRunnerRejectsUnsupported(t *testing.T) {
	calib := data.CalibrationSet(vit.SwinTiny, 2, 1)
	if _, err := accel.NewModelRunner(vit.New(vit.SwinTiny, 1), calib, 8, accel.DefaultArray(8)); err == nil {
		t.Fatal("accepted a Swin model")
	}
	m := vit.New(vit.ViTNano, 1)
	if _, err := accel.NewModelRunner(m, nil, 8, accel.DefaultArray(8)); err == nil {
		t.Fatal("accepted empty calibration")
	}
}

func TestModelRunnerCycleAccountingScales(t *testing.T) {
	cfg := vit.ViTNano
	m := vit.New(cfg, 33)
	calib := data.CalibrationSet(cfg, 4, 7)
	img := data.Images(cfg, 1, 8)[0]

	big, err := accel.NewModelRunner(m, calib, 6, accel.ArrayConfig{N: 16, Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	small, err := accel.NewModelRunner(m, calib, 6, accel.ArrayConfig{N: 4, Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, sBig, err := big.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	_, sSmall, err := small.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	if sBig.MACs != sSmall.MACs {
		t.Fatalf("MACs depend on array size: %d vs %d", sBig.MACs, sSmall.MACs)
	}
	if sSmall.GEMMCycles <= sBig.GEMMCycles {
		t.Fatalf("4x4 array not slower than 16x16: %d vs %d", sSmall.GEMMCycles, sBig.GEMMCycles)
	}
}
