package baselines

import (
	"math"
	"sort"

	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// BiScaled implements BiScaled-FxP (Jain et al., DAC 2019): every tensor
// is quantized with two scale factors sharing one bit-width — a fine
// scale for the bulk and a coarse scale (a power-of-two multiple of the
// fine one) for the outliers — with an index table recording which
// positions are outliers.
//
// Crucially, BiScaled-DNN builds its index table *statically* from the
// calibration data (it was designed for long-tailed data structures such
// as weights): here the table flags outlier channels of the tensor's
// last axis. Values that land outside the fine range in an unflagged
// channel at inference time are clipped — the failure mode the QUQ paper
// observes on ViT activations, whose outliers move with the input. The
// threshold search below is the MSE-based optimization the paper grants
// the method ("the optimization techniques used in QUQ are also applied
// to BiScaled-FxP").
type BiScaled struct{}

// Name implements ptq.Method.
func (BiScaled) Name() string { return "BiScaled-FxP" }

// biScaledQuantizer holds the static channel index table. An element in
// an outlier channel uses fineDelta·2^ratioLog; everything else uses
// fineDelta and clips at the fine range.
type biScaledQuantizer struct {
	fineDelta   float64
	ratioLog    int
	bits        int
	outlierChan []bool
}

func (b biScaledQuantizer) deltaFor(ch int) float64 {
	if ch >= 0 && ch < len(b.outlierChan) && b.outlierChan[ch] {
		return b.fineDelta * float64(int64(1)<<b.ratioLog)
	}
	return b.fineDelta
}

func (b biScaledQuantizer) value(x float64, ch int) float64 {
	hi := float64(int64(1)<<(b.bits-1) - 1)
	lo := -hi - 1
	d := b.deltaFor(ch)
	q := math.RoundToEven(x / d)
	if q < lo {
		q = lo
	}
	if q > hi {
		q = hi
	}
	return q * d
}

// Apply implements ptq.TensorQuantizer. Tensors whose channel width does
// not match the calibrated table are treated as all-bulk.
func (b biScaledQuantizer) Apply(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	cols := out.Dim(out.Rank() - 1)
	match := cols == len(b.outlierChan)
	d := out.Data()
	for i, v := range d {
		ch := -1
		if match {
			ch = i % cols
		}
		d[i] = b.value(v, ch)
	}
	return out
}

// calibrateBiScaled searches the outlier-channel count k: the top-k
// channels by calibration absmax are flagged, the fine scale covers the
// largest unflagged channel, and the power-of-two ratio extends the
// coarse range to the global absmax. Candidates are scored by MSE on the
// channel-tagged reservoir.
func calibrateBiScaled(samples []float64, chans []int32, chanAbsMax []float64, bits int) biScaledQuantizer {
	hi := float64(int64(1)<<(bits-1) - 1)
	absmax := 0.0
	for _, v := range samples {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	if absmax == 0 || len(chanAbsMax) == 0 {
		return biScaledQuantizer{fineDelta: 1, bits: bits}
	}
	// Channels sorted by descending absmax.
	idx := make([]int, len(chanAbsMax))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return chanAbsMax[idx[a]] > chanAbsMax[idx[b]] })

	cols := len(chanAbsMax)
	candidates := []int{0, 1, 2, 4, 8, 16, cols / 8, cols / 4}
	best := biScaledQuantizer{fineDelta: absmax / hi, bits: bits, outlierChan: make([]bool, cols)}
	bestMSE := math.Inf(1)
	tried := map[int]bool{}
	for _, k := range candidates {
		if k < 0 || k >= cols || tried[k] {
			continue
		}
		tried[k] = true
		flags := make([]bool, cols)
		for _, c := range idx[:k] {
			flags[c] = true
		}
		// Fine scale covers the widest unflagged channel.
		fineMax := 0.0
		for c, a := range chanAbsMax {
			if !flags[c] && a > fineMax {
				fineMax = a
			}
		}
		if fineMax == 0 {
			continue
		}
		fine := fineMax / hi
		ratio := 0
		for fine*float64(int64(1)<<ratio)*hi < absmax && ratio < 12 {
			ratio++
		}
		cand := biScaledQuantizer{fineDelta: fine, ratioLog: ratio, bits: bits, outlierChan: flags}
		var mse float64
		for i, v := range samples {
			ch := -1
			if i < len(chans) {
				ch = int(chans[i])
			}
			e := v - cand.value(v, ch)
			mse += e * e
		}
		if mse < bestMSE {
			best, bestMSE = cand, mse
		}
	}
	return best
}

// CalibrateActivation implements ptq.Method.
func (BiScaled) CalibrateActivation(stats *ptq.SiteStats, bits int) ptq.TensorQuantizer {
	return calibrateBiScaled(stats.Samples, stats.SampleChans, stats.ChanAbsMax, bits)
}

// QuantizeWeight implements ptq.Method: weights are a static data
// structure, so the index table is exact — BiScaled's home turf.
func (BiScaled) QuantizeWeight(_ vit.Site, w *tensor.Tensor, bits int) {
	in, out := w.Dim(0), w.Dim(1)
	chanAbsMax := make([]float64, out)
	d := w.Data()
	for i, v := range d {
		c := i % out
		if a := math.Abs(v); a > chanAbsMax[c] {
			chanAbsMax[c] = a
		}
	}
	chans := make([]int32, len(d))
	for i := range chans {
		chans[i] = int32(i % out)
	}
	q := calibrateBiScaled(d, chans, chanAbsMax, bits)
	copy(d, q.Apply(w).Data())
	_ = in
}
