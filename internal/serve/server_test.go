package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quq/internal/data"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/testutil"
	"quq/internal/vit"
)

// testServer builds a server over a cheap ViT-Nano registry.
func testServer(t *testing.T, bopts BatcherOptions) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Registry:       testRegistryOptions(),
		Batcher:        bopts,
		RequestTimeout: 60 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// flatImages renders n deterministic ViT-Nano images as flat slices.
func flatImages(n int) ([][]float64, []*tensor.Tensor) {
	imgs := data.Images(vit.ViTNano, n, 1234)
	flat := make([][]float64, n)
	for i, img := range imgs {
		flat[i] = append([]float64(nil), img.Data()...)
	}
	return flat, imgs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestServeEndToEndConcurrent is the acceptance test: 16 concurrent
// clients (under -race via check.sh) must receive responses bit-identical
// to direct QuantizedModel.Forward calls, while the registry calibrates
// the shared key exactly once.
func TestServeEndToEndConcurrent(t *testing.T) {
	s, ts := testServer(t, BatcherOptions{MaxBatch: 4, Linger: time.Millisecond, QueueCap: 256})
	const clients = 16
	flat, imgs := flatImages(clients)

	// Reference outputs from a twin registry with identical options: the
	// server must reproduce them bit-for-bit over HTTP.
	ref := NewRegistry(testRegistryOptions(), nil)
	key := nanoKey("QUQ", ptq.Full)
	qref, _, err := ref.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	want := qref.ForwardBatch(imgs, 0)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/classify", classifyRequest{
				modelRequest: modelRequest{Model: "ViT-Nano", Method: "QUQ", Bits: 6, Regime: "full"},
				Images:       [][]float64{flat[c]},
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
				return
			}
			var cr classifyResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			if len(cr.Results) != 1 {
				t.Errorf("client %d: %d results", c, len(cr.Results))
				return
			}
			got := cr.Results[0]
			if got.ArgMax != want[c].ArgMax() {
				t.Errorf("client %d: argmax %d, want %d", c, got.ArgMax, want[c].ArgMax())
			}
			for j, v := range got.Logits {
				if v != want[c].Data()[j] {
					t.Errorf("client %d: logit %d = %v, want %v (not bit-identical)", c, j, v, want[c].Data()[j])
					return
				}
			}
		}(c)
	}
	wg.Wait()

	if misses := s.Metrics().CacheMisses.Value(); misses != 1 {
		t.Fatalf("cache misses = %d: the registry must calibrate the key exactly once", misses)
	}
	if imgsServed := s.Metrics().Images.Value(); imgsServed != clients {
		t.Fatalf("images served = %d, want %d", imgsServed, clients)
	}
}

// TestServeMultiImageRequest exercises the batched request shape.
func TestServeMultiImageRequest(t *testing.T) {
	_, ts := testServer(t, BatcherOptions{MaxBatch: 8, Linger: time.Millisecond, QueueCap: 64})
	flat, _ := flatImages(3)
	resp, body := postJSON(t, ts.URL+"/v1/classify", classifyRequest{
		modelRequest: modelRequest{Model: "ViT-Nano", Method: "BaseQ", Bits: 6},
		Images:       flat,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr classifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Results) != 3 {
		t.Fatalf("%d results, want 3", len(cr.Results))
	}
	if cr.Key != "ViT-Nano/BaseQ/w6a6/partial" {
		t.Fatalf("key = %q", cr.Key)
	}
}

// TestServeQuantizeWarmsCache: /v1/quantize then /v1/classify must not
// re-calibrate.
func TestServeQuantizeWarmsCache(t *testing.T) {
	s, ts := testServer(t, BatcherOptions{MaxBatch: 4, Linger: 0, QueueCap: 64})
	warm := modelRequest{Model: "ViT-Nano", Method: "BaseQ", Bits: 6}
	resp, body := postJSON(t, ts.URL+"/v1/quantize", warm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantize status %d: %s", resp.StatusCode, body)
	}
	var qr quantizeResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Cached {
		t.Fatal("first quantize reported cached")
	}
	resp, body = postJSON(t, ts.URL+"/v1/quantize", warm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second quantize status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Cached {
		t.Fatal("second quantize not cached")
	}
	if s.Metrics().CacheMisses.Value() != 1 {
		t.Fatalf("misses = %d, want 1", s.Metrics().CacheMisses.Value())
	}
}

// TestServeBadRequests walks the 4xx taxonomy.
func TestServeBadRequests(t *testing.T) {
	_, ts := testServer(t, BatcherOptions{})
	flat, _ := flatImages(1)

	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown model", classifyRequest{modelRequest: modelRequest{Model: "GPT-7"}, Images: flat}, 400},
		{"unknown method", classifyRequest{modelRequest: modelRequest{Method: "nope"}, Images: flat}, 400},
		{"bad bits", classifyRequest{modelRequest: modelRequest{Bits: 2}, Images: flat}, 400},
		{"bad regime", classifyRequest{modelRequest: modelRequest{Regime: "half"}, Images: flat}, 400},
		{"no images", classifyRequest{}, 400},
		{"short image", classifyRequest{Images: [][]float64{{1, 2, 3}}}, 400},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/classify", tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Wrong HTTP method.
	getResp, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/classify: status %d, want 405", getResp.StatusCode)
	}
}

// TestServeBodyLimit: oversized bodies must be refused, not buffered.
func TestServeBodyLimit(t *testing.T) {
	s := New(Config{
		Registry:     testRegistryOptions(),
		MaxBodyBytes: 1024,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	big := strings.NewReader(`{"images":[[` + strings.Repeat("1,", 4096) + `1]]}`)
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 400/413", resp.StatusCode)
	}
}

// TestServeBackpressure: with a full queue the server must answer 429
// with a Retry-After hint.
func TestServeBackpressure(t *testing.T) {
	s, ts := testServer(t, BatcherOptions{MaxBatch: 64, Linger: time.Hour, QueueCap: 2})
	flat, _ := flatImages(3)
	warmKey := modelRequest{Model: "ViT-Nano", Method: "BaseQ", Bits: 6}
	if resp, body := postJSON(t, ts.URL+"/v1/quantize", warmKey); resp.StatusCode != 200 {
		t.Fatalf("warm: %d %s", resp.StatusCode, body)
	}

	// Two images sit pending behind the hour-long linger...
	stuck := make(chan struct{})
	go func() {
		defer close(stuck)
		postJSON(t, ts.URL+"/v1/classify", classifyRequest{modelRequest: warmKey, Images: flat[:2]})
	}()
	waitFor(t, func() bool { return s.Metrics().QueueDepth.Value() == 2 })

	// ...so a third image must bounce with 429.
	resp, body := postJSON(t, ts.URL+"/v1/classify", classifyRequest{modelRequest: warmKey, Images: flat[2:3]})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Drain flushes the stuck batch; the pending client completes.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	<-stuck
}

// TestServeIntrospection covers /models, /healthz and /metrics.
func TestServeIntrospection(t *testing.T) {
	_, ts := testServer(t, BatcherOptions{})
	warm := modelRequest{Model: "ViT-Nano", Method: "BaseQ", Bits: 6}
	if resp, body := postJSON(t, ts.URL+"/v1/quantize", warm); resp.StatusCode != 200 {
		t.Fatalf("warm: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var mr modelsResponse
	err = json.NewDecoder(resp.Body).Decode(&mr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) != len(vit.ZooConfigs)+1 {
		t.Fatalf("%d models, want %d", len(mr.Models), len(vit.ZooConfigs)+1)
	}
	if len(mr.Methods) == 0 || mr.Methods[0] != "QUQ" {
		t.Fatalf("methods = %v", mr.Methods)
	}
	if len(mr.Entries) != 1 || !mr.Entries[0].Ready {
		t.Fatalf("entries = %+v", mr.Entries)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(buf.String(), "quq_serve_model_cache_misses_total 1") {
			t.Fatalf("/metrics missing expected series:\n%s", buf.String())
		}
	}
}

// TestRecoveryMiddleware: a panicking handler must become a 500 and a
// panic-counter increment, not a dead server.
func TestRecoveryMiddleware(t *testing.T) {
	s := New(Config{Registry: testRegistryOptions()})
	boom := s.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(fmt.Errorf("boom"))
	}))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if s.Metrics().Panics.Value() != 1 {
		t.Fatalf("panics = %d, want 1", s.Metrics().Panics.Value())
	}
}

// waitFor polls cond for up to 30s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestServerLifecycleLeaksNothing is the goroutine-accounting gate for
// the serving layer: after serving real traffic (including a detached
// registry build and batched classifies), Drain plus closing the HTTP
// server must reclaim every goroutine the stack started.
func TestServerLifecycleLeaksNothing(t *testing.T) {
	// Registered first so it runs after every other cleanup (LIFO): the
	// goroutine census happens once the test server is fully closed.
	t.Cleanup(testutil.VerifyNoLeaks(t))

	s := New(Config{
		Registry:       testRegistryOptions(),
		Batcher:        BatcherOptions{MaxBatch: 4, Linger: time.Millisecond, QueueCap: 64},
		RequestTimeout: 60 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/quantize", modelRequest{Model: "ViT-Nano", Method: "QUQ", Bits: 6, Regime: "full"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantize: status %d: %s", resp.StatusCode, body)
	}
	flat, _ := flatImages(2)
	resp, body = postJSON(t, ts.URL+"/v1/classify", classifyRequest{
		modelRequest: modelRequest{Model: "ViT-Nano", Method: "QUQ", Bits: 6, Regime: "full"},
		Images:       flat,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: status %d: %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
