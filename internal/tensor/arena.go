package tensor

import (
	"sync"

	"quq/internal/check"
)

// Arena is a scratch allocator for per-forward intermediates. A forward
// pass grabs one with GetArena, carves tensors out of it with New /
// NewUninit, optionally hands buffers back mid-pass with Put, and returns
// the whole arena to the process-wide pool with Release. Buffers are
// recycled by exact element count, so the steady state of a fixed-shape
// workload (the same model forward over and over) allocates nothing.
//
// An Arena is single-goroutine scratch: it must not be shared across
// goroutines without external synchronization. Escape safety is by
// construction — a tensor that is never Put back is simply garbage
// collected like any other allocation — but a tensor that *is* Put (or
// whose arena buffer is recycled after Release by a later GetArena
// caller) must not be used again. Tensors that outlive the pass (model
// outputs, tap captures) should come from tensor.New, not the arena.
type Arena struct {
	free   map[int][]*Tensor
	free64 map[int][][]int64
}

var arenaPool = sync.Pool{
	New: func() any {
		return &Arena{
			free:   make(map[int][]*Tensor),
			free64: make(map[int][][]int64),
		}
	},
}

// GetArena returns a scratch arena from the process-wide pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// Release returns the arena — and every tensor that was Put back into it
// — to the process-wide pool for reuse by later GetArena callers.
func (a *Arena) Release() { arenaPool.Put(a) }

// NewUninit returns a tensor of the given shape whose contents are
// unspecified (a recycled tensor keeps its stale values). Use it for
// destinations that are fully overwritten — MatMulInto and friends store
// every element — where zero-filling would be wasted work. Recycling is
// by exact element count: the tensor object and its storage are reused
// whole, so a steady-state hit performs no allocation at all.
func (a *Arena) NewUninit(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(check.Invariantf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	ts := a.free[n]
	if len(ts) == 0 {
		return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
	}
	t := ts[len(ts)-1]
	a.free[n] = ts[:len(ts)-1]
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = append([]int(nil), shape...)
	}
	return t
}

// New returns a zero-filled tensor of the given shape, recycling a
// pooled tensor when one of the exact size is available.
func (a *Arena) New(shape ...int) *Tensor {
	t := a.NewUninit(shape...)
	for i := range t.data {
		t.data[i] = 0
	}
	return t
}

// Put recycles t — object and storage — for a later NewUninit/New of the
// same element count. The caller must not use t (or any view sharing its
// storage, e.g. from FromSlice or Reshape) afterwards.
func (a *Arena) Put(t *Tensor) {
	n := len(t.data)
	a.free[n] = append(a.free[n], t)
}

// Int64 returns an n-element int64 scratch slice whose contents are
// unspecified (a recycled slice keeps its stale values). It is the
// integer datapath's counterpart of NewUninit: destinations and decode
// buffers for the int64 GEMM kernels, recycled by exact length so the
// steady state of a fixed-shape workload allocates nothing.
func (a *Arena) Int64(n int) []int64 {
	if n < 0 {
		panic(check.Invariantf("tensor: negative int64 scratch length %d", n))
	}
	ss := a.free64[n]
	if len(ss) == 0 {
		return make([]int64, n)
	}
	s := ss[len(ss)-1]
	a.free64[n] = ss[:len(ss)-1]
	return s
}

// PutInt64 recycles s for a later Int64 of the same length. The caller
// must not use s (or any slice sharing its storage) afterwards.
func (a *Arena) PutInt64(s []int64) {
	n := len(s)
	a.free64[n] = append(a.free64[n], s)
}
