package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	g := r.NewGauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []float64{1, 2, 4, 8})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// 100 observations uniform in (0, 4]: median should land near 2.
	for i := 1; i <= 100; i++ {
		h.Observe(4 * float64(i) / 100)
	}
	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	med := h.Quantile(0.5)
	if med < 1 || med > 3 {
		t.Fatalf("median = %v, want ≈2", med)
	}
	if q := h.Quantile(1); q > 8 {
		t.Fatalf("q1 = %v beyond last bound", q)
	}
	// Overflow observations clamp to the last bound.
	h.Observe(1e9)
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("overflow quantile = %v, want 8", q)
	}
	if math.IsNaN(h.Sum()) {
		t.Fatal("sum is NaN")
	}
}

func TestWriteTextDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	// Registered out of order; exposition must sort by name.
	r.NewCounter("zzz_total", "last")
	r.NewGauge("aaa", "first")
	r.NewHistogram("mmm", "middle", []float64{1, 2})

	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes of an idle registry differ")
	}
	out := a.String()
	ia := strings.Index(out, "aaa")
	im := strings.Index(out, "mmm")
	iz := strings.Index(out, "zzz_total")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("metrics not in sorted order:\n%s", out)
	}
	if !strings.Contains(out, `mmm_bucket{le="+Inf"}`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("x", "")
	r.NewCounter("x", "")
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	h := r.NewHistogram("h", "", LatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// TestGaugeVec: series mint on Set, render sorted by label value, and
// retire on Delete.
func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("backend_inflight", "per-backend in-flight requests", "backend")
	v.Set("http://b:2", 3)
	v.Set("http://a:1", 1)
	v.Set("http://c:3", 0)
	if n, ok := v.Value("http://b:2"); !ok || n != 3 {
		t.Fatalf("Value = %d, %v; want 3, true", n, ok)
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# HELP backend_inflight per-backend in-flight requests\n" +
		"backend_inflight{backend=\"http://a:1\"} 1\n" +
		"backend_inflight{backend=\"http://b:2\"} 3\n" +
		"backend_inflight{backend=\"http://c:3\"} 0\n"
	if buf.String() != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", buf.String(), want)
	}

	v.Delete("http://b:2")
	if _, ok := v.Value("http://b:2"); ok {
		t.Fatal("deleted series still present")
	}
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "http://b:2") {
		t.Fatalf("deleted series still rendered:\n%s", buf.String())
	}
}
