// Package detiter is the fixture corpus for the detiter analyzer's
// package-scope rule: the tests load it under the import path
// quq/internal/experiments, so every file is in scope.
package detiter

import "sort"

func emit(rows map[string]int) []string {
	var out []string
	for k := range rows { // want `range over map\[string\]int iterates in randomized order`
		out = append(out, k)
	}
	return out
}

type rowSet map[int]bool

func emitNamed(rows rowSet) int {
	n := 0
	for k := range rows { // want `range over .*rowSet iterates in randomized order`
		n += k
	}
	return n
}

func emitSorted(rows map[string]int) []string {
	keys := make([]string, 0, len(rows))
	//quq:maporder-ok fixture: keys are sorted below before anything observes the order
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func overSlice(xs []int) int {
	s := 0
	for _, v := range xs { // slice iteration is deterministic: not flagged
		s += v
	}
	return s
}
