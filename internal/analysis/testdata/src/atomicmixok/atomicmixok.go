// Package atomicmixok is the conforming corpus for the atomicmix
// analyzer: each field is either always atomic or always plain, so the
// analyzer must report nothing here.
package atomicmixok

import "sync/atomic"

type stats struct {
	calls int64 // always atomic
	limit int64 // always plain, set once before start
}

func newStats(limit int64) *stats {
	return &stats{limit: limit}
}

func (s *stats) record() bool {
	return atomic.AddInt64(&s.calls, 1) <= s.limit
}

func (s *stats) count() int64 {
	return atomic.LoadInt64(&s.calls)
}
