package panicaudit

import "quq/internal/check"

// HTTP-handler-shaped cases, added alongside the quq-serve subsystem.
// A handler living in a library package must not use bare panic for
// control flow — recovery middleware turns it into a 500, but the audit
// still wants a typed invariant or a sanctioned helper.

type request struct{ path string }

func handlerBarePanic(r *request) {
	if r.path == "" {
		panic("empty path") // want `unaudited panic in library package`
	}
}

func handlerInvariant(r *request) {
	if r.path == "" {
		panic(check.Invariant("router matched an empty path")) // typed invariant: not flagged
	}
}

// mustRoute is a sanctioned must* helper; its panic is the documented
// contract, mirroring registry construction panics in quq-serve.
func mustRoute(pattern string) string {
	if pattern == "" {
		panic("empty route pattern") // not flagged
	}
	return pattern
}
