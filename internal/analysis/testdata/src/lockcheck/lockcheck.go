// Package lockcheck is the fixture corpus for the lockcheck analyzer:
// blocking operations under a held sync.Mutex that must flag, return
// paths that leak a lock, the conforming unlock-then-block forms, and a
// documented //quq:lock-ok suppression (the condition-variable idiom).
package lockcheck

import (
	"errors"
	"net/http"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func sendWhileLocked(g *guarded) {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

func recvWhileLocked(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while holding g\.mu`
}

func sleepWhileLocked(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding g\.mu`
	g.mu.Unlock()
}

func roundTripWhileLocked(g *guarded, c *http.Client, req *http.Request) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	resp, err := c.Do(req) // want `http Client\.Do while holding g\.mu`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func waitWhileLocked(g *guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want `call to Wait while holding g\.mu`
	g.mu.Unlock()
}

func selectWhileLocked(g *guarded, done chan struct{}) {
	g.mu.Lock()
	select { // want `select while holding g\.mu`
	case <-done:
	case g.ch <- 1:
	}
	g.mu.Unlock()
}

func missingUnlock(g *guarded, fail bool) error {
	g.mu.Lock()
	if fail {
		return errors.New("left locked") // want `return while g\.mu is locked`
	}
	g.mu.Unlock()
	return nil
}

// unlockFirst is the conforming form: the critical section ends before
// anything can block.
func unlockFirst(g *guarded) {
	g.mu.Lock()
	v := g.n
	g.mu.Unlock()
	g.ch <- v
}

// deferredPure holds the lock for pure computation only.
func deferredPure(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n * 2
}

// selectDefault never parks: a default arm makes select non-blocking.
func selectDefault(g *guarded) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.ch <- g.n:
		return true
	default:
		return false
	}
}

// spawned goroutines are separate critical-section scopes: the literal
// body runs on its own schedule, after the spawner's unlock.
func spawnUnderLock(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		g.ch <- 1
	}()
}

type condQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	work []int
}

// pop is the sanctioned blocking-under-lock idiom: Cond.Wait releases
// the mutex while parked, which the analyzer cannot see — the directive
// documents it.
func (q *condQueue) pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.work) == 0 {
		//quq:lock-ok Cond.Wait atomically releases q.mu while parked and reacquires before returning
		q.cond.Wait()
	}
	v := q.work[0]
	q.work = q.work[1:]
	return v
}
