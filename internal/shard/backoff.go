package shard

import (
	"time"

	"quq/internal/rng"
)

// retryDelays precomputes the retry schedule for one proxied request:
// equal jitter over a doubling base, attempt i sleeping a uniform draw
// from [base*2^i / 2, base*2^i). The fixed half keeps a floor under the
// delay (retrying a refused connection immediately is wasted work); the
// random half desynchronizes front-ends so a fleet of proxies hammered
// by the same outage does not retry in lockstep against the recovering
// backend.
//
// The draw comes from an explicitly seeded rng.Source — never math/rand,
// never the wall clock — so a front-end given the same seed and request
// sequence reproduces its schedule exactly (see Options.Seed).
func retryDelays(src *rng.Source, base time.Duration, retries int) []time.Duration {
	if retries <= 0 || base <= 0 {
		return nil
	}
	delays := make([]time.Duration, retries)
	step := base
	for i := range delays {
		half := step / 2
		delays[i] = half + time.Duration(src.Float64()*float64(step-half))
		step *= 2
	}
	return delays
}
