// This package comment exists but ignores the godoc convention. // want `package doc comment must start with "Package docmissingbad"`
// More prose that still never names the package.
package docmissingbad

func Bad() int { return 3 }
