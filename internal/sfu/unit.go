package sfu

import (
	"fmt"

	"quq/internal/quant"
	"quq/internal/qub"
)

// Unit is a QUB-fronted special function unit: it decodes incoming QUB
// words to integers (the "QUB decoder and shifter in the data loading
// path" of §4.2), converts them to the kernel's fixed-point format using
// the tensor's base Δ, applies an integer kernel, and requantizes the
// result into the output tensor's QUQ code space.
//
// The Δ-to-fixed-point conversion uses one integer multiply-and-shift per
// element (the same M/2^N scaling the quantization units use); no
// floating point touches the data path.
type Unit struct {
	in  qub.Registers
	out *quant.Params
	// inScale converts decoded integers (units of Δ_in) to fixed point.
	inM int64
	inN uint
	// outScale converts fixed point to units of the output base Δ.
	outM int64
	outN uint
}

// NewUnit builds an SFU for inputs encoded with inParams and outputs
// quantized with outParams.
func NewUnit(inParams, outParams *quant.Params) (*Unit, error) {
	regs, err := qub.RegistersFor(inParams)
	if err != nil {
		return nil, fmt.Errorf("sfu: input registers: %w", err)
	}
	if err := outParams.Validate(); err != nil {
		return nil, fmt.Errorf("sfu: output params: %w", err)
	}
	u := &Unit{in: regs, out: outParams}
	if u.inM, u.inN, err = dyadic(regs.BaseDelta * float64(One)); err != nil {
		return nil, err
	}
	if u.outM, u.outN, err = dyadic(1 / (outParams.BaseDelta() * float64(One))); err != nil {
		return nil, err
	}
	return u, nil
}

// dyadic approximates scale as M/2^N with M normalized to 15 bits.
func dyadic(scale float64) (int64, uint, error) {
	if !(scale > 0) {
		return 0, 0, fmt.Errorf("sfu: invalid scale %v", scale)
	}
	n := uint(0)
	for scale < 1<<14 && n < 40 {
		scale *= 2
		n++
	}
	for scale >= 1<<15 {
		scale /= 2
		if n == 0 {
			return int64(scale), 0, nil
		}
		n--
	}
	return int64(scale + 0.5), n, nil
}

// decodeFixed turns one QUB word into the kernel fixed-point format.
func (u *Unit) decodeFixed(w qub.Word) int64 {
	d := qub.Decode(w, u.in)
	v := int64(d.D) << d.Nsh
	return (v * u.inM) >> u.inN
}

// requantize maps a fixed-point kernel output to an output QUB word.
func (u *Unit) requantize(v int64) qub.Word {
	// Units of the output base Δ, with F fraction bits folded away by
	// the out-scale's construction.
	scaled := (v * u.outM) >> u.outN
	units := float64(scaled)
	// Subrange selection reuses the quantizer's integer-compatible
	// logic: Quantize operates on value = units·Δ_base.
	return qub.Encode(u.out, u.out.Quantize(units*u.out.BaseDelta()))
}

// Softmax processes one row of attention logits: QUB in, QUB out.
func (u *Unit) Softmax(row []qub.Word) []qub.Word {
	fixed := make([]int64, len(row))
	for i, w := range row {
		fixed[i] = u.decodeFixed(w)
	}
	Softmax(fixed, fixed)
	out := make([]qub.Word, len(row))
	for i, v := range fixed {
		out[i] = u.requantize(v)
	}
	return out
}

// GELU processes a slice of pre-activations: QUB in, QUB out.
func (u *Unit) GELU(xs []qub.Word) []qub.Word {
	out := make([]qub.Word, len(xs))
	for i, w := range xs {
		out[i] = u.requantize(GELU(u.decodeFixed(w)))
	}
	return out
}

// OutRegisters returns the registers needed to decode the unit's output.
func (u *Unit) OutRegisters() (qub.Registers, error) {
	return qub.RegistersFor(u.out)
}
