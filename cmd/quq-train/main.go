// Command quq-train trains the ViT-Nano model on the synthetic pattern
// task with full backpropagation and saves the checkpoint, then runs the
// quantization comparison on the genuinely trained model — the closest
// this offline reproduction gets to the paper's "pretrained checkpoint +
// PTQ" protocol.
//
// Usage:
//
//	quq-train [-epochs N] [-out path] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"quq/internal/baselines"
	"quq/internal/data"
	"quq/internal/nn"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

func main() {
	epochs := flag.Int("epochs", 12, "training epochs")
	out := flag.String("out", "vit-nano.ckpt", "checkpoint output path")
	seed := flag.Uint64("seed", 7, "training seed")
	flag.Parse()

	log.SetFlags(0)
	m, trainAcc, err := nn.TrainNano(nn.TrainOptions{
		Epochs: *epochs,
		Seed:   *seed,
		Progress: func(epoch int, loss, acc float64) {
			log.Printf("epoch %2d  loss %.4f  train top-1 %.2f%%", epoch+1, loss, 100*acc)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("final train top-1: %.2f%%", 100*trainAcc)

	if err := vit.SaveFile(m, *out); err != nil {
		log.Fatalf("saving checkpoint: %v", err)
	}
	log.Printf("checkpoint written to %s", *out)

	// Quantization comparison on the trained model.
	cfg := vit.ViTNano
	test := data.PatternSamples(cfg.Channels, cfg.ImageSize, 200, *seed^0xE7A1)
	images := make([]*tensor.Tensor, len(test))
	labels := make([]int, len(test))
	for i, s := range test {
		images[i] = s.Image
		labels[i] = s.Label
	}
	testAcc := ptq.Accuracy(ptq.ModelClassifier{M: m}, images, labels)
	fmt.Printf("\n%-13s %-6s %s\n", "Method", "W/A", "ViT-Nano (trained)")
	fmt.Printf("%-13s %-6s %.2f\n", "Original", "32/32", 100*testAcc)

	calib := data.CalibrationSet(cfg, 32, *seed)
	for _, bits := range []int{6, 8} {
		for _, meth := range []ptq.Method{baselines.BaseQ{}, baselines.BiScaled{}, baselines.FQViT{}, ptq.NewQUQ()} {
			qm, err := ptq.Quantize(m, meth, ptq.CalibOptions{Bits: bits, Regime: ptq.Full, Images: calib})
			if err != nil {
				log.Fatal(err)
			}
			acc := ptq.Accuracy(qm, images, labels)
			fmt.Printf("%-13s %d/%-4d %.2f\n", meth.Name(), bits, bits, 100*acc)
		}
	}
	os.Exit(0)
}
