package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p := New(7)
	p.Uint64() // consume the value that seeded the child
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream mirrors parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(2024)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestGaussMoments(t *testing.T) {
	s := New(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gauss(3, 0.5)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.02 {
		t.Errorf("Gauss(3,0.5) mean = %v, want ~3", mean)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(31)
	const n = 200000
	const b = 0.7
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := s.Laplace(b)
		sum += v
		sumAbs += math.Abs(v)
	}
	if mean := sum / n; math.Abs(mean) > 0.02 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = b for Laplace(0, b).
	if meanAbs := sumAbs / n; math.Abs(meanAbs-b) > 0.02 {
		t.Errorf("Laplace E|X| = %v, want ~%v", meanAbs, b)
	}
}

func TestExpMoments(t *testing.T) {
	s := New(41)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp produced negative sample %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exp(2.5) mean = %v, want ~2.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestPermShuffles(t *testing.T) {
	s := New(8)
	identity := 0
	for trial := 0; trial < 20; trial++ {
		p := s.Perm(20)
		fixed := 0
		for i, v := range p {
			if i == v {
				fixed++
			}
		}
		if fixed == 20 {
			identity++
		}
	}
	if identity > 1 {
		t.Fatalf("Perm returned the identity permutation %d/20 times", identity)
	}
}
