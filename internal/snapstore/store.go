package snapstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	// snapExt is the extension of a committed snapshot file.
	snapExt = ".qsnap"
	// tmpExt marks an in-progress write; anything carrying it at store
	// open time is a crash leftover and is swept.
	tmpExt = ".tmp"
	// quarantineExt marks a snapshot whose digest or payload failed
	// verification. Quarantined files are kept for post-mortem but never
	// loaded again.
	quarantineExt = ".quarantined"
)

// Store is a directory of snapshot files, one per registry key, named by
// the key's content address so any key maps to exactly one path.
type Store struct {
	dir string
}

// Open prepares dir (creating it if needed) and sweeps temp files left
// behind by crashed writes, so repeated crash loops cannot fill the
// disk. It returns the number of temp files removed.
func Open(dir string) (*Store, int, error) {
	if dir == "" {
		return nil, 0, fmt.Errorf("snapstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("snapstore: creating %s: %w", dir, err)
	}
	names, err := listDir(dir)
	if err != nil {
		return nil, 0, err
	}
	swept := 0
	for _, name := range names {
		if !strings.HasSuffix(name, tmpExt) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return nil, swept, fmt.Errorf("snapstore: sweeping %s: %w", name, err)
		}
		swept++
	}
	return &Store{dir: dir}, swept, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// PathFor returns the committed snapshot path a key maps to under dir.
// Exported as a function (not just a method) so the chaos harness can
// target a specific key's file for corruption without opening the store.
func PathFor(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:8])+snapExt)
}

// WriteBlob atomically commits an encoded snapshot for key: write to a
// temp file, fsync, close, then rename over the final path. A crash at
// any point leaves either the old committed file or a swept-at-open temp
// file — never a torn snapshot.
func (s *Store) WriteBlob(key string, blob []byte) error {
	final := PathFor(s.dir, key)
	tmp := final + tmpExt
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("snapstore: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(blob); err != nil {
		//quq:errdrop-ok already on the write error path; the write error is the one worth reporting
		f.Close()
		//quq:errdrop-ok best-effort cleanup of a failed temp; Open's sweep is the backstop
		os.Remove(tmp)
		return fmt.Errorf("snapstore: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		//quq:errdrop-ok already on the sync error path
		f.Close()
		//quq:errdrop-ok best-effort cleanup of a failed temp; Open's sweep is the backstop
		os.Remove(tmp)
		return fmt.Errorf("snapstore: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		//quq:errdrop-ok best-effort cleanup of a failed temp; Open's sweep is the backstop
		os.Remove(tmp)
		return fmt.Errorf("snapstore: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		//quq:errdrop-ok best-effort cleanup of a failed temp; Open's sweep is the backstop
		os.Remove(tmp)
		return fmt.Errorf("snapstore: committing %s: %w", final, err)
	}
	return nil
}

// Loaded is one successfully verified and decoded snapshot.
type Loaded struct {
	Path  string
	Entry *Entry
}

// Load reads every committed snapshot in the store in sorted filename
// order. Files that fail verification or decoding are quarantined in
// place (renamed, kept for post-mortem) and counted — a corrupt snapshot
// costs a recalibration, never a crash.
func (s *Store) Load() (loaded []Loaded, quarantined int, err error) {
	names, err := listDir(s.dir)
	if err != nil {
		return nil, 0, err
	}
	for _, name := range names {
		if !strings.HasSuffix(name, snapExt) {
			continue
		}
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return loaded, quarantined, fmt.Errorf("snapstore: reading %s: %w", name, err)
		}
		e, err := Decode(data)
		if err != nil {
			if qerr := s.Quarantine(path); qerr != nil {
				return loaded, quarantined, qerr
			}
			quarantined++
			continue
		}
		loaded = append(loaded, Loaded{Path: path, Entry: e})
	}
	return loaded, quarantined, nil
}

// Quarantine renames a failed snapshot aside so it is never loaded
// again but stays on disk for inspection.
func (s *Store) Quarantine(path string) error {
	//quq:fsync-ok quarantine moves an already-committed (or already-corrupt) file aside; the rename carries no new data to sync
	if err := os.Rename(path, path+quarantineExt); err != nil {
		return fmt.Errorf("snapstore: quarantining %s: %w", filepath.Base(path), err)
	}
	return nil
}

// listDir returns dir's entry names sorted, so every pass over the
// store is deterministic.
func listDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapstore: reading %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}
