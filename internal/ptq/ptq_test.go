package ptq

import (
	"math"
	"testing"

	"quq/internal/data"
	"quq/internal/quant"
	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// nano builds a small, fast model plus workloads for pipeline tests.
func nano(t *testing.T) (vit.Model, []*tensor.Tensor, []*tensor.Tensor) {
	t.Helper()
	cfg := vit.ViTNano
	m := vit.New(cfg, 99)
	calib := data.CalibrationSet(cfg, 6, 1)
	eval := data.Images(cfg, 10, 2)
	return m, calib, eval
}

func TestRegimeCovers(t *testing.T) {
	if !Partial.covers(vit.KindGEMMIn) || !Partial.covers(vit.KindWeight) {
		t.Fatal("partial must cover GEMM inputs and weights")
	}
	if Partial.covers(vit.KindActivation) {
		t.Fatal("partial must not cover red activations")
	}
	if !Full.covers(vit.KindActivation) {
		t.Fatal("full must cover red activations")
	}
}

func TestCollectGathersAllSites(t *testing.T) {
	m, calib, _ := nano(t)
	stats := Collect(m, calib, 1024)
	if len(stats) == 0 {
		t.Fatal("no stats collected")
	}
	// Expect the per-block sites for every block plus stem/head.
	blocks := m.NumBlocks()
	wantPerBlock := []string{"ln1.out", "attn.q", "attn.softmax_in", "attn.softmax_out", "resid2.out", "mlp.gelu_out"}
	for b := 0; b < blocks; b++ {
		for _, name := range wantPerBlock {
			found := false
			for _, st := range stats {
				if st.Site.Block == b && st.Site.Name == name {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("missing stats for block %d site %s", b, name)
			}
		}
	}
	for _, st := range stats {
		if st.Seen() == 0 {
			t.Errorf("site %v saw no data", st.Site)
		}
		if len(st.Samples) != len(st.SampleChans) {
			t.Errorf("site %v: samples/chans length mismatch", st.Site)
		}
		if st.Min > st.Max {
			t.Errorf("site %v: min %v > max %v", st.Site, st.Min, st.Max)
		}
	}
}

func TestCollectReservoirCap(t *testing.T) {
	m, calib, _ := nano(t)
	stats := Collect(m, calib, 128)
	for _, st := range stats {
		// Cap plus the two appended extremes.
		if len(st.Samples) > 130 {
			t.Fatalf("site %v reservoir has %d samples, cap 128", st.Site, len(st.Samples))
		}
	}
}

func TestCollectKeepsExactExtremes(t *testing.T) {
	m, calib, _ := nano(t)
	stats := Collect(m, calib, 64)
	for _, st := range stats {
		foundMin, foundMax := false, false
		for _, v := range st.Samples {
			if v == st.Min {
				foundMin = true
			}
			if v == st.Max {
				foundMax = true
			}
		}
		if !foundMin || !foundMax {
			t.Fatalf("site %v: extremes not present in reservoir", st.Site)
		}
	}
}

func TestQuantizeValidation(t *testing.T) {
	m, calib, _ := nano(t)
	if _, err := Quantize(m, NewQUQ(), CalibOptions{Bits: 2, Regime: Full, Images: calib}); err == nil {
		t.Fatal("accepted 2-bit quantization")
	}
	if _, err := Quantize(m, NewQUQ(), CalibOptions{Bits: 8, Regime: Full}); err == nil {
		t.Fatal("accepted empty calibration set")
	}
}

func TestQuantizeDoesNotModifyOriginal(t *testing.T) {
	m, calib, eval := nano(t)
	before := m.Forward(eval[0], vit.ForwardOpts{}).Clone()
	if _, err := Quantize(m, NewQUQ(), CalibOptions{Bits: 6, Regime: Full, Images: calib}); err != nil {
		t.Fatal(err)
	}
	after := m.Forward(eval[0], vit.ForwardOpts{})
	if tensor.MSE(before, after) != 0 {
		t.Fatal("Quantize modified the original model")
	}
}

func TestQuantizedModelCoversExpectedSites(t *testing.T) {
	m, calib, _ := nano(t)
	partial, err := Quantize(m, NewQUQ(), CalibOptions{Bits: 6, Regime: Partial, Images: calib})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Quantize(m, NewQUQ(), CalibOptions{Bits: 6, Regime: Full, Images: calib})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Acts) <= len(partial.Acts) {
		t.Fatalf("full (%d sites) should cover more than partial (%d)", len(full.Acts), len(partial.Acts))
	}
	for key, tq := range partial.Acts {
		if tq == nil {
			t.Fatalf("nil quantizer at %s", key)
		}
	}
}

func TestQuantizedForwardDiffersButCorrelates(t *testing.T) {
	m, calib, eval := nano(t)
	qm, err := Quantize(m, NewQUQ(), CalibOptions{Bits: 8, Regime: Full, Images: calib})
	if err != nil {
		t.Fatal(err)
	}
	identical := 0
	for _, img := range eval {
		ref := m.Forward(img, vit.ForwardOpts{})
		got := qm.Forward(img)
		if tensor.MSE(ref, got) == 0 {
			identical++
		}
		if cos := tensor.CosineSimilarity(ref, got); cos < 0.95 {
			t.Fatalf("8-bit QUQ logits diverged: cosine %v", cos)
		}
	}
	if identical == len(eval) {
		t.Fatal("quantized forward is bit-identical to FP32 — quantizers not applied?")
	}
}

func TestAgreementBounds(t *testing.T) {
	m, _, eval := nano(t)
	ref := ModelClassifier{M: m}
	if got := Agreement(ref, ref, eval); got != 1 {
		t.Fatalf("self agreement = %v", got)
	}
	if got := Agreement(ref, ref, nil); got != 0 {
		t.Fatalf("empty agreement = %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	m, _, eval := nano(t)
	ref := ModelClassifier{M: m}
	labels := make([]int, len(eval))
	for i, img := range eval {
		labels[i] = ref.Forward(img).ArgMax()
	}
	if got := Accuracy(ref, eval, labels); got != 1 {
		t.Fatalf("accuracy vs own labels = %v", got)
	}
	labels[0] = (labels[0] + 1) % vit.ViTNano.Classes
	want := float64(len(eval)-1) / float64(len(eval))
	if got := Accuracy(ref, eval, labels); math.Abs(got-want) > 1e-12 {
		t.Fatalf("accuracy = %v, want %v", got, want)
	}
	if Accuracy(ref, eval, labels[:3]) != 0 {
		t.Fatal("mismatched labels should yield 0")
	}
}

func TestUniformQuantizerApply(t *testing.T) {
	u := UniformQuantizer{Delta: 0.5, Bits: 4}
	x := tensor.FromSlice([]float64{0.3, -0.3, 100, -100, 0}, 5)
	got := u.Apply(x)
	want := []float64{0.5, -0.5, 3.5, -4, 0}
	for i, v := range got.Data() {
		if v != want[i] {
			t.Fatalf("Apply = %v, want %v", got.Data(), want)
		}
	}
	if x.Data()[0] != 0.3 {
		t.Fatal("Apply mutated its input")
	}
}

func TestSearchUniformDelta(t *testing.T) {
	// Data with one extreme outlier: the searched delta must clip it
	// (delta below the absmax-fit).
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i%100) / 100
	}
	xs[0] = 50
	d := SearchUniformDelta(xs, 6, DefaultAlphaGrid)
	naive := 50.0 / 31
	if d >= naive {
		t.Fatalf("search kept the naive delta %v (got %v)", naive, d)
	}
	if got := SearchUniformDelta(make([]float64, 10), 6, DefaultAlphaGrid); got != 1 {
		t.Fatalf("zero tensor delta = %v", got)
	}
}

func TestQUQTensorQuantizerExposesParams(t *testing.T) {
	m, calib, _ := nano(t)
	qm, err := Quantize(m, NewQUQ(), CalibOptions{Bits: 6, Regime: Full, Images: calib})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, tq := range qm.Acts {
		q, ok := tq.(QUQTensorQuantizer)
		if !ok {
			t.Fatal("QUQ method produced a non-QUQ quantizer")
		}
		if err := q.Params.Validate(); err != nil {
			t.Fatal(err)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no quantizers installed")
	}
	_ = quant.ModeA
}

func TestWeightInputSiteMapping(t *testing.T) {
	cases := map[string]string{
		"attn.qkv.w":  "ln1.out",
		"attn.proj.w": "attn.proj_in",
		"mlp.fc1.w":   "ln2.out",
		"mlp.fc2.w":   "mlp.gelu_out",
		"patch.w":     "patch.in",
		"head.w":      "head.in",
		"merge.w":     "merge.in",
	}
	for wname, want := range cases {
		in, ok := weightInputSite(vit.Site{Block: 3, Name: wname, Kind: vit.KindWeight})
		if !ok || in.Name != want {
			t.Errorf("weightInputSite(%s) = %v/%v, want %s", wname, in.Name, ok, want)
		}
	}
	if _, ok := weightInputSite(vit.Site{Name: "nonsense.w"}); ok {
		t.Error("unknown weight site mapped")
	}
}

func TestChanMeanSq(t *testing.T) {
	m, calib, _ := nano(t)
	stats := Collect(m, calib, 1024)
	for _, st := range stats {
		sq := st.ChanMeanSq()
		if sq == nil {
			t.Fatalf("site %v has no channel moments", st.Site)
		}
		for c, v := range sq {
			if v < 0 {
				t.Fatalf("site %v channel %d: negative E[x²]", st.Site, c)
			}
		}
	}
}

func TestQuantizeWeightAwareReducesWeightedError(t *testing.T) {
	// Construct a weight matrix whose rows matter very unequally: the
	// aware search must produce a weighted output error no worse than
	// the plain (unweighted) calibration.
	src := rng.New(55)
	const in, out = 64, 32
	w := tensor.New(in, out)
	for i := range w.Data() {
		v := src.Laplace(0.05)
		if src.Float64() < 0.01 {
			v *= 12
		}
		w.Data()[i] = v
	}
	inputSq := make([]float64, in)
	for d := range inputSq {
		if d < 4 {
			inputSq[d] = 100 // hot input channels
		} else {
			inputSq[d] = 0.01
		}
	}
	weighted := func(q *tensor.Tensor) float64 {
		var s float64
		for r := 0; r < in; r++ {
			for c := 0; c < out; c++ {
				e := q.At(r, c) - w.At(r, c)
				s += inputSq[r] * e * e
			}
		}
		return s
	}
	meth := NewQUQ()
	plain := w.Clone()
	meth.QuantizeWeight(vit.Site{Name: "w"}, plain, 4)
	aware := w.Clone()
	meth.QuantizeWeightAware(vit.Site{Name: "w"}, aware, 4, inputSq)
	if weighted(aware) > weighted(plain)+1e-15 {
		t.Fatalf("aware search weighted error %v above plain %v", weighted(aware), weighted(plain))
	}
}

func TestQuantizeWeightAwareFallsBack(t *testing.T) {
	src := rng.New(56)
	w := tensor.New(8, 8)
	for i := range w.Data() {
		w.Data()[i] = src.Gauss(0, 0.1)
	}
	orig := w.Clone()
	NewQUQ().QuantizeWeightAware(vit.Site{Name: "w"}, w, 6, []float64{1, 2}) // wrong length
	if tensor.MSE(w, orig) == 0 {
		t.Fatal("fallback path did not quantize")
	}
}
