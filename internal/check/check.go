// Package check centralizes invariant failures for the library packages.
//
// QUQ's library code panics only on programmer errors — violated
// preconditions and "cannot happen" internal states — never on data
// conditions, which travel as ordinary errors. To keep that line
// machine-enforceable, every such panic carries an InvariantError built
// by this package: the quqvet `panicaudit` analyzer flags any bare
// `panic(...)` in a library package whose argument is not a
// check.Invariant/check.Invariantf call (and is not inside a must*
// helper), so new panic sites are audited by construction.
//
// The idiom preserves lazy message construction, so hot-path
// precondition checks cost nothing until they fire:
//
//	if len(out) != len(xs) {
//		panic(check.Invariant("quant: QuantizeSlice length mismatch"))
//	}
//
// Callers that need to distinguish an invariant violation from an
// arbitrary panic can test the recovered value with errors.As against
// *InvariantError.
package check

import "fmt"

// InvariantError is the panic payload of a violated internal invariant.
// It implements error so recovered values compose with the errors
// package.
type InvariantError struct {
	Msg string
}

// Error returns the invariant's message.
func (e *InvariantError) Error() string { return e.Msg }

// Invariant wraps a message as an invariant-violation panic value.
func Invariant(msg string) *InvariantError {
	return &InvariantError{Msg: msg}
}

// Invariantf is Invariant with fmt.Sprintf formatting.
func Invariantf(format string, args ...any) *InvariantError {
	return &InvariantError{Msg: fmt.Sprintf(format, args...)}
}
