package shard

// The membership admin surface: /cluster exposes the roster + ring
// parameters (the page a shard-aware client builds its local ring
// from), and the POST /admin endpoints mutate membership without a
// front-end restart. Join admits a backend and claims its arcs; leave
// drops it abruptly (replication is what covers the keys it held);
// drain re-homes its calibrated keys onto the post-departure owners
// first and only then removes it, so a planned departure loses nothing
// even at R = 1.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"quq/internal/cluster"
	"quq/internal/serve"
)

// Members exposes the membership (introspection, smoke assertions).
func (f *Front) Members() *cluster.Membership { return f.members }

// ClusterBackend is the /cluster view of one member.
type ClusterBackend struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Inflight int64  `json:"inflight"`
}

// ClusterView is the /cluster page: everything a client needs to build
// a byte-identical local replica of the front-end's ring — the vnode
// count and load factor (placement parameters), the member list (ring
// contents), and the epoch that versions them.
type ClusterView struct {
	Epoch         uint64           `json:"epoch"`
	Replicas      int              `json:"replicas"`
	VNodes        int              `json:"vnodes"`
	MaxLoadFactor float64          `json:"max_load_factor"`
	Backends      []ClusterBackend `json:"backends"`
}

// handleCluster renders the membership view, epoch-stamped.
func (f *Front) handleCluster(w http.ResponseWriter, r *http.Request) {
	view := f.members.View()
	draining := make(map[string]bool, len(view.Members))
	for _, m := range view.Members {
		draining[m.Addr] = m.Draining
	}
	cv := ClusterView{
		Epoch:         view.Epoch,
		Replicas:      view.Replicas,
		VNodes:        f.opts.VNodes,
		MaxLoadFactor: f.opts.MaxLoadFactor,
	}
	for _, b := range f.ring.Backends() {
		cv.Backends = append(cv.Backends, ClusterBackend{
			Addr:     b.Addr(),
			Healthy:  b.Healthy(),
			Draining: draining[b.Addr()],
			Inflight: b.Inflight(),
		})
	}
	w.Header().Set(EpochHeader, strconv.FormatUint(view.Epoch, 10))
	f.writeJSON(w, http.StatusOK, cv)
}

// adminRequest is the body of every membership mutation.
type adminRequest struct {
	Addr string `json:"addr"`
}

// adminResponse reports a membership mutation's outcome. Added and
// Moved render unconditionally: an idempotent re-join's added=false is
// the interesting part of its answer.
type adminResponse struct {
	Addr  string `json:"addr"`
	Epoch uint64 `json:"epoch"`
	Added bool   `json:"added"`
	Moved int    `json:"moved"`
}

// decodeAdmin reads and normalizes an admin body; empty addresses are
// rejected here so the membership never sees one.
func (f *Front) decodeAdmin(w http.ResponseWriter, r *http.Request) (string, bool) {
	var req adminRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		f.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return "", false
	}
	if req.Addr == "" {
		f.writeError(w, http.StatusBadRequest, errors.New("shard: admin request needs an addr"))
		return "", false
	}
	return normalizeAddr(req.Addr), true
}

// handleAdminJoin admits a backend to the ring. Idempotent: re-joining
// a member reports added=false and leaves the epoch alone. The new
// member starts healthy and earns its keep with the prober — a join of
// a dead address is ejected within FailAfter probe rounds.
func (f *Front) handleAdminJoin(w http.ResponseWriter, r *http.Request) {
	addr, ok := f.decodeAdmin(w, r)
	if !ok {
		return
	}
	epoch, added := f.members.Join(addr)
	f.met.RingEpoch.Set(int64(epoch))
	f.writeJSON(w, http.StatusOK, adminResponse{Addr: addr, Epoch: epoch, Added: added})
}

// handleAdminLeave removes a backend abruptly, no handoff.
func (f *Front) handleAdminLeave(w http.ResponseWriter, r *http.Request) {
	addr, ok := f.decodeAdmin(w, r)
	if !ok {
		return
	}
	epoch, err := f.members.Leave(addr)
	if err != nil {
		f.writeError(w, http.StatusNotFound, err)
		return
	}
	f.met.RingEpoch.Set(int64(epoch))
	f.writeJSON(w, http.StatusOK, adminResponse{Addr: addr, Epoch: epoch})
}

// handleAdminDrain gracefully removes a backend: its calibrated keys
// are re-warmed on the post-departure owners (bounded by
// HandoffMaxKeys and the request context) before it leaves. A failed
// handoff aborts the drain with the member intact — the caller can
// retry, or fall back to /admin/leave and eat the recalibrations.
func (f *Front) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	addr, ok := f.decodeAdmin(w, r)
	if !ok {
		return
	}
	moved, epoch, err := f.members.Drain(r.Context(), addr)
	switch {
	case errors.Is(err, cluster.ErrNotMember):
		f.writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, cluster.ErrDraining):
		f.writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		f.writeError(w, http.StatusBadGateway, err)
		return
	}
	f.met.RingEpoch.Set(int64(epoch))
	f.writeJSON(w, http.StatusOK, adminResponse{Addr: addr, Epoch: epoch, Moved: moved})
}

// handoffKeys is the drain's work: list the leaving backend's registry
// entries, and warm every ready key on each owner it will have after
// the departure. Warms go through the same forward path as proxied
// quantizes (same retry policy, same replica stamping); the first
// failed warm aborts the whole drain so a "successful" drain can never
// silently shed calibrations. The key count is bounded by
// HandoffMaxKeys — keys past the cap fall back on replication or
// on-demand recalibration, as Options documents.
func (f *Front) handoffKeys(ctx context.Context, addr string) (int, error) {
	var page struct {
		Entries []serve.EntryInfo `json:"entries"`
	}
	if err := f.getJSON(ctx, addr+"/models", &page); err != nil {
		return 0, fmt.Errorf("listing entries on %s: %w", addr, err)
	}
	moved := 0
	for _, e := range page.Entries {
		if !e.Ready || moved >= f.opts.HandoffMaxKeys {
			continue
		}
		key, err := serve.ParseKey(e.Key)
		if err != nil {
			return moved, fmt.Errorf("entry key %q on %s: %w", e.Key, addr, err)
		}
		warmed := 0
		for slot, owner := range f.ring.OwnerNSkip(key.String(), f.opts.Replicas, addr) {
			if !owner.Healthy() {
				// An ejected owner keeps its slot but cannot be warmed now;
				// it recalibrates on demand once readmitted.
				continue
			}
			if err := f.warm(ctx, owner, key, slot); err != nil {
				return moved, fmt.Errorf("re-homing %s onto %s: %w", e.Key, owner.Addr(), err)
			}
			warmed++
		}
		if warmed == 0 {
			return moved, fmt.Errorf("re-homing %s: no healthy post-departure owner", e.Key)
		}
		moved++
		f.met.Handoffs.Inc()
	}
	return moved, nil
}

// warm issues one /v1/quantize against a specific backend, stamping the
// replica slot it will occupy for the key. Warming an already-cached
// key is a cheap no-op on the backend (registry cache hit).
func (f *Front) warm(ctx context.Context, b *Backend, key serve.Key, slot int) error {
	body, err := json.Marshal(map[string]any{
		"model":  key.Config,
		"method": key.Method,
		"bits":   key.Bits,
		"regime": key.Regime.String(),
	})
	if err != nil {
		return err
	}
	resp, err := f.forward(ctx, b, "/v1/quantize", body, slot, f.drawDelays())
	if err != nil {
		return err
	}
	discard(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("quantize on %s: status %d", b.Addr(), resp.StatusCode)
	}
	return nil
}
