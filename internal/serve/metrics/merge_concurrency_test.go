package metrics

import (
	"bytes"
	"sync"
	"testing"
)

// TestMergeUnderConcurrentScrapes hammers the full scrape pipeline the
// shard aggregator runs in production — live instruments mutated while
// WriteText renders them, pages parsed by concurrent workers, partial
// expositions folded together — and asserts the cluster view is
// schedule-independent: exact totals, and byte-identical WriteText
// output no matter how the merges were ordered or parallelized.
//
// Observations are small integers so every float64 partial sum is exact
// and order-independent; any schedule-dependent divergence is therefore
// a real synchronization bug, not float noise.
func TestMergeUnderConcurrentScrapes(t *testing.T) {
	const (
		backends         = 8
		writersPerPage   = 4
		incsPerWriter    = 500
		totalPerBackend  = writersPerPage * incsPerWriter
		totalClusterWide = backends * totalPerBackend
	)

	// Phase 1: each "backend" hammers its own live registry from several
	// goroutines while scrapers concurrently render and parse it. The
	// mid-flight pages exercise WriteText-vs-Observe synchronization
	// under -race; only the final quiesced page feeds the merge phase.
	pages := make([][]byte, backends)
	var fleet sync.WaitGroup
	for b := 0; b < backends; b++ {
		fleet.Add(1)
		go func(b int) {
			defer fleet.Done()
			reg := NewRegistry()
			c := reg.NewCounter("quq_requests_total", "total requests")
			h := reg.NewHistogram("quq_batch_size", "batch sizes", SizeBuckets())

			stop := make(chan struct{})
			var scrapers sync.WaitGroup
			for s := 0; s < 2; s++ {
				scrapers.Add(1)
				go func() {
					defer scrapers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						var buf bytes.Buffer
						if err := reg.WriteText(&buf); err != nil {
							t.Errorf("backend %d: mid-flight WriteText: %v", b, err)
							return
						}
						if _, err := ParseText(&buf); err != nil {
							t.Errorf("backend %d: mid-flight page unparseable: %v", b, err)
							return
						}
					}
				}()
			}

			var writers sync.WaitGroup
			for w := 0; w < writersPerPage; w++ {
				writers.Add(1)
				go func(w int) {
					defer writers.Done()
					for i := 0; i < incsPerWriter; i++ {
						c.Inc()
						// Integer-valued observations spread across every
						// bucket including overflow; exact under any
						// summation order.
						h.Observe(float64((w*incsPerWriter + i) % 200))
					}
				}(w)
			}
			writers.Wait()
			close(stop)
			scrapers.Wait()

			var buf bytes.Buffer
			if err := reg.WriteText(&buf); err != nil {
				t.Errorf("backend %d: final WriteText: %v", b, err)
				return
			}
			pages[b] = buf.Bytes()
		}(b)
	}
	fleet.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// mergeOrder folds the pages in the given order into one exposition.
	mergeOrder := func(order []int) *Exposition {
		t.Helper()
		acc := NewExposition()
		for _, idx := range order {
			e, err := ParseText(bytes.NewReader(pages[idx]))
			if err != nil {
				t.Fatalf("page %d: %v", idx, err)
			}
			if err := acc.Merge(e); err != nil {
				t.Fatalf("merging page %d: %v", idx, err)
			}
		}
		return acc
	}
	render := func(e *Exposition) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := e.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Phase 2: serial merges in opposite orders must agree byte-for-byte
	// — quantiles included, since they are recomputed from the merged
	// buckets rather than averaged.
	forward := make([]int, backends)
	reverse := make([]int, backends)
	for i := range forward {
		forward[i] = i
		reverse[i] = backends - 1 - i
	}
	fwdView := render(mergeOrder(forward))
	revView := render(mergeOrder(reverse))
	if !bytes.Equal(fwdView, revView) {
		t.Fatalf("merge order changed the cluster view:\nforward:\n%s\nreverse:\n%s", fwdView, revView)
	}

	// Phase 3: parallel partial merges (each worker parses and folds a
	// disjoint page subset concurrently) followed by a serial fold of the
	// partials must match the serial view exactly.
	const shards = 4
	partials := make([]*Exposition, shards)
	var workers sync.WaitGroup
	for s := 0; s < shards; s++ {
		workers.Add(1)
		go func(s int) {
			defer workers.Done()
			acc := NewExposition()
			for idx := s; idx < backends; idx += shards {
				e, err := ParseText(bytes.NewReader(pages[idx]))
				if err != nil {
					t.Errorf("worker %d: page %d: %v", s, idx, err)
					return
				}
				if err := acc.Merge(e); err != nil {
					t.Errorf("worker %d: merging page %d: %v", s, idx, err)
					return
				}
			}
			partials[s] = acc
		}(s)
	}
	workers.Wait()
	if t.Failed() {
		t.FailNow()
	}
	cluster := NewExposition()
	for s, p := range partials {
		if err := cluster.Merge(p); err != nil {
			t.Fatalf("folding partial %d: %v", s, err)
		}
	}
	parView := render(cluster)
	if !bytes.Equal(parView, fwdView) {
		t.Fatalf("parallel partial merge diverged from the serial view:\nparallel:\n%s\nserial:\n%s", parView, fwdView)
	}

	// Exact totals: every increment and observation is accounted for.
	if got, ok := cluster.Scalar("quq_requests_total"); !ok || got != totalClusterWide {
		t.Fatalf("merged quq_requests_total = %v (present=%v), want %d", got, ok, totalClusterWide)
	}
	if got, ok := cluster.HistCount("quq_batch_size"); !ok || got != totalClusterWide {
		t.Fatalf("merged quq_batch_size count = %v (present=%v), want %d", got, ok, totalClusterWide)
	}
}
