// Package pow2 is the fixture corpus for the pow2 analyzer (repo-wide
// scope; the import path does not matter).
package pow2

import "math"

func scale(k int) float64 {
	return math.Pow(2, float64(k)) // want `math\.Pow\(2, k\) computes a power-of-two scale ratio approximately`
}

func exp2(x float64) float64 {
	return math.Exp2(x) // want `math\.Exp2 computes a power of two in floating point`
}

func parenthesized(k int) float64 {
	return (math.Pow)(2, float64(k)) // want `math\.Pow\(2, k\)`
}

func cube(x float64) float64 {
	return math.Pow(x, 3) // base is not the constant 2: not flagged
}

func powTen(k int) float64 {
	return math.Pow(10, float64(k)) // not a power-of-two ratio: not flagged
}

func exact(k int) float64 {
	return math.Ldexp(1, k) // the sanctioned exact form: not flagged
}

func gaussianTail(x float64) float64 {
	//quq:float-ok fixture: genuine float-domain exponentiation, base happens to be 2
	return math.Pow(2, -x*x)
}
