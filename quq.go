// Package quq is the top-level entry surface of this repository: a
// from-scratch Go implementation of "QUQ: Quadruplet Uniform Quantization
// for Efficient Vision Transformer Inference" (DAC 2024) — the quantizer
// and its progressive relaxation calibration, the QUB hardware encoding,
// a QUA accelerator simulator and area/power model, the vision-
// transformer inference and training stack it is evaluated on, four
// reimplemented comparison methods, and the harnesses that regenerate
// every table and figure of the paper's evaluation.
//
// The heavy lifting lives in the internal packages; this package
// re-exports the pieces a typical user composes:
//
//	xs := ...                             // calibration samples
//	p := quq.Calibrate(xs, 6)             // PRA + refinement (Algorithm 2)
//	y := p.Value(x)                       // fake-quantize one value
//	regs, _ := quq.RegistersFor(p)        // QUB metadata (FC registers)
//	w := quq.EncodeValue(p, x)            // hardware code word
//	d := quq.Decode(w, regs)              // (D, n_sh) for a signed multiplier
//
// For whole-model post-training quantization, see internal/ptq (pipeline),
// internal/baselines (comparison methods) and internal/experiments (the
// paper's tables and figures); cmd/quq drives them from the command line.
package quq

import (
	"quq/internal/quant"
	"quq/internal/qub"
)

// Params is a calibrated quadruplet uniform quantizer.
type Params = quant.Params

// Mode is the QUQ operating mode (A–D) of the paper's Figure 4.
type Mode = quant.Mode

// Slot identifies one of the four subranges (F−, F+, C−, C+).
type Slot = quant.Slot

// PRAOptions are the hyperparameters of the progressive relaxation
// algorithm.
type PRAOptions = quant.PRAOptions

// Word is a QUB-encoded value.
type Word = qub.Word

// Registers is the per-tensor QUB metadata (the FC registers plus the
// base scale factor).
type Registers = qub.Registers

// Decoded is a decoding-unit output: a signed integer D and a shift
// count n_sh such that the value is (D << n_sh)·Δ.
type Decoded = qub.Decoded

// DefaultPRAOptions returns the paper's hyperparameters
// (λ_A = 4, q = 0.99, q_A = 0.95).
func DefaultPRAOptions() PRAOptions { return quant.DefaultPRAOptions() }

// PRA runs the progressive relaxation algorithm (the paper's Algorithm 2)
// on calibration samples and returns a validated b-bit quantizer.
func PRA(xs []float64, bits int, opts PRAOptions) *Params {
	return quant.PRA(xs, bits, opts)
}

// Calibrate is the full tensor-level calibration pipeline the accuracy
// experiments use: PRA, the uniform-special-case comparison, and the
// grid-search refinement, all with the paper's default settings.
func Calibrate(xs []float64, bits int) *Params {
	return quant.CalibrateRefined(xs, bits, quant.DefaultPRAOptions(), quant.DefaultRefineOptions())
}

// Uniform applies the symmetric uniform quantizer U_b of Eq. (1) —
// the BaseQ baseline and QUQ's degenerate case.
func Uniform(x, delta float64, bits int) float64 {
	return quant.Uniform(x, delta, bits)
}

// RegistersFor derives the QUB registers from a calibrated quantizer.
func RegistersFor(p *Params) (Registers, error) { return qub.RegistersFor(p) }

// EncodeValue quantizes x and returns its QUB code word.
func EncodeValue(p *Params, x float64) Word { return qub.EncodeValue(p, x) }

// Decode implements the paper's Eq. (6): split a code word into a signed
// b-bit integer and its subrange shift.
func Decode(w Word, r Registers) Decoded { return qub.Decode(w, r) }
