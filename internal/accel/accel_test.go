package accel

import (
	"math"
	"testing"

	"quq/internal/dist"
	"quq/internal/quant"
	"quq/internal/qub"
	"quq/internal/rng"
	"quq/internal/tensor"
)

func TestCyclesBasic(t *testing.T) {
	c := ArrayConfig{N: 16, Bits: 8}
	s := c.Cycles(16, 100, 16)
	// One tile, K=100 plus 2N fill.
	if s.Tiles != 1 || s.Cycles != 132 {
		t.Fatalf("tiles=%d cycles=%d", s.Tiles, s.Cycles)
	}
	if s.MACs != 16*100*16 {
		t.Fatalf("MACs=%d", s.MACs)
	}
}

func TestCyclesTiling(t *testing.T) {
	c := ArrayConfig{N: 16, Bits: 8}
	s := c.Cycles(33, 64, 17) // 3 x 2 tiles
	if s.Tiles != 6 {
		t.Fatalf("tiles=%d, want 6", s.Tiles)
	}
	if s.Cycles != 6*(64+32) {
		t.Fatalf("cycles=%d", s.Cycles)
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Fatalf("utilization=%v", s.Utilization)
	}
}

func TestCyclesUtilizationImprovesWithAlignment(t *testing.T) {
	c := ArrayConfig{N: 16, Bits: 8}
	aligned := c.Cycles(64, 256, 64)
	ragged := c.Cycles(65, 256, 65)
	if aligned.Utilization <= ragged.Utilization {
		t.Fatalf("aligned %v should beat ragged %v", aligned.Utilization, ragged.Utilization)
	}
}

func TestRescaleAccuracy(t *testing.T) {
	src := rng.New(1)
	for i := 0; i < 2000; i++ {
		scale := math.Exp(src.Uniform(-12, 6))
		r, err := NewRescale(scale)
		if err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
		acc := int64(src.Intn(1<<20)) - 1<<19
		got := float64(r.Apply(acc))
		want := float64(acc) * scale
		// M is 15-bit normalized: relative error below 2^-14 plus the
		// final rounding.
		if math.Abs(got-want) > math.Abs(want)/8192+0.75 {
			t.Fatalf("scale=%v acc=%d: got %v want %v", scale, acc, got, want)
		}
	}
}

func TestRescaleRejectsInvalid(t *testing.T) {
	for _, s := range []float64{0, -1, math.Inf(1)} {
		if _, err := NewRescale(s); err == nil {
			t.Fatalf("NewRescale(%v) accepted", s)
		}
	}
}

func calibrate(t *testing.T, fam dist.Family, bits int, seed uint64) (*quant.Params, []float64) {
	t.Helper()
	xs := dist.Sample(fam, 4096, rng.New(seed))
	return quant.PRA(xs, bits, quant.DefaultPRAOptions()), xs
}

// TestGEMMMatchesFloatReference is the central integration check: the
// integer QUB datapath (decode, shifted multiply-accumulate) must equal
// the fake-quantization reference exactly up to float rounding of the
// final scale.
func TestGEMMMatchesFloatReference(t *testing.T) {
	for _, bits := range []int{4, 6, 8} {
		px, xs := calibrate(t, dist.PostGELU, bits, 11)
		pw, ws := calibrate(t, dist.QueryWeight, bits, 12)
		m, k, n := 7, 64, 9

		x := tensor.FromSlice(append([]float64(nil), xs[:m*k]...), m, k)
		w := tensor.FromSlice(append([]float64(nil), ws[:k*n]...), k, n)

		ql, err := NewQuantizedLinear(px, pw)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DefaultArray(bits).GEMM(
			qub.EncodeTensor(px, x.Data()), ql.XRegs,
			qub.EncodeTensor(pw, w.Data()), ql.WRegs,
			m, k, n, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Float reference: fake-quantize operands, exact dot product.
		xq := x.Clone()
		px.QuantizeSlice(xq.Data(), xq.Data())
		wq := w.Clone()
		pw.QuantizeSlice(wq.Data(), wq.Data())
		want := tensor.MatMul(xq, wq)

		unit := ql.AccUnit()
		for i, acc := range out.Acc {
			got := float64(acc) * unit
			if math.Abs(got-want.Data()[i]) > 1e-9*(1+math.Abs(want.Data()[i])) {
				t.Fatalf("bits=%d elem %d: integer %v != reference %v", bits, i, got, want.Data()[i])
			}
		}
		if out.Stats.MACs != int64(m*k*n) {
			t.Fatal("stats wrong")
		}
	}
}

func TestGEMMAccumulatorWidth(t *testing.T) {
	// The paper's QUA uses bounded-width accumulators; verify the worst
	// case for our sizes stays within 32 bits (b-bit operands shifted by
	// up to 14, K up to 1024).
	px, xs := calibrate(t, dist.PreAddition, 8, 21)
	pw, ws := calibrate(t, dist.QueryWeight, 8, 22)
	k := 512
	x := tensor.FromSlice(append([]float64(nil), xs[:2*k]...), 2, k)
	w := tensor.FromSlice(append([]float64(nil), ws[:k*2]...), k, 2)
	ql, err := NewQuantizedLinear(px, pw)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := ql.Run(DefaultArray(8), x, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbsAcc >= 1<<31 {
		t.Fatalf("accumulator overflowed 32 bits: %d", res.MaxAbsAcc)
	}
}

func TestGEMMSizeMismatch(t *testing.T) {
	c := DefaultArray(8)
	if _, err := c.GEMM(make([]qub.Word, 3), qub.Registers{Bits: 8}, make([]qub.Word, 4), qub.Registers{Bits: 8}, 2, 2, 2, nil); err == nil {
		t.Fatal("accepted mismatched operands")
	}
}

// TestQuantizeUnitMatchesFakeQuant: the QU's integer requantization must
// agree with the float fake-quantizer on the same accumulator values,
// within one output LSB (the M/2^N rescale carries 2^-14 relative error).
func TestQuantizeUnitMatchesFakeQuant(t *testing.T) {
	src := rng.New(31)
	ys := make([]float64, 4096)
	for i := range ys {
		ys[i] = src.Laplace(2)
		if src.Float64() < 0.01 {
			ys[i] *= 15
		}
	}
	pout := quant.PRA(ys, 6, quant.DefaultPRAOptions())
	const accUnit = 1e-3
	qu, err := NewQuantizeUnit(pout, accUnit)
	if err != nil {
		t.Fatal(err)
	}
	baseDelta := pout.BaseDelta()
	for i := 0; i < 5000; i++ {
		v := src.Laplace(2)
		acc := int64(math.Round(v / accUnit))
		got := pout.Dequantize(qu.Requantize(acc))
		want := pout.Value(float64(acc) * accUnit)
		if math.Abs(got-want) > baseDelta+1e-12 {
			t.Fatalf("acc=%d: integer requant %v, fake-quant %v (Δ=%v)", acc, got, want, baseDelta)
		}
	}
}

func TestQuantizeUnitClipsAtBounds(t *testing.T) {
	pout := quant.ParamsForUniform(0.5, 6)
	qu, err := NewQuantizeUnit(pout, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Hugely positive accumulator must clip to the max code.
	c := qu.Requantize(1 << 30)
	if got, want := pout.Dequantize(c), 0.5*31; got != want {
		t.Fatalf("positive clip = %v, want %v", got, want)
	}
	c = qu.Requantize(-(1 << 30))
	if got, want := pout.Dequantize(c), -0.5*32; got != want {
		t.Fatalf("negative clip = %v, want %v", got, want)
	}
}

// TestEndToEndLinearLayer runs a full quantized linear layer through the
// array with requantized output and checks the decoded output against
// the float pipeline within one output LSB per element.
func TestEndToEndLinearLayer(t *testing.T) {
	px, xs := calibrate(t, dist.PreAddition, 6, 41)
	pw, ws := calibrate(t, dist.QueryWeight, 6, 42)
	m, k, n := 8, 96, 12
	x := tensor.FromSlice(append([]float64(nil), xs[:m*k]...), m, k)
	w := tensor.FromSlice(append([]float64(nil), ws[:k*n]...), k, n)

	// Output quantizer calibrated on the float product.
	xq := x.Clone()
	px.QuantizeSlice(xq.Data(), xq.Data())
	wq := w.Clone()
	pw.QuantizeSlice(wq.Data(), wq.Data())
	ref := tensor.MatMul(xq, wq)
	pout := quant.PRA(ref.Data(), 6, quant.DefaultPRAOptions())

	ql, err := NewQuantizedLinear(px, pw)
	if err != nil {
		t.Fatal(err)
	}
	qu, err := NewQuantizeUnit(pout, ql.AccUnit())
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := ql.Run(DefaultArray(6), x, w, qu)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles <= 0 {
		t.Fatal("no cycles accounted")
	}
	tol := pout.BaseDelta() * math.Pow(2, 7) // one LSB of the coarsest subrange
	for i := range out.Data() {
		want := pout.Value(ref.Data()[i])
		if math.Abs(out.Data()[i]-want) > tol {
			t.Fatalf("elem %d: accel %v, reference %v", i, out.Data()[i], want)
		}
	}
}
