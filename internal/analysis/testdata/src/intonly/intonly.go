// Package intonly is the fixture corpus for the intonly analyzer. It is
// loaded by the tests under the import path quq/internal/accel so the
// package-scope filter sees it as an integer-datapath package.
package intonly

import "math"

func mulFloat(a, b float64) float64 {
	return a * b // want `floating-point \* in integer-datapath package`
}

func subFloat(a, b float64) float64 {
	return a - b // want `floating-point - in integer-datapath package`
}

func convFloat(n int64) float64 {
	return float64(n) // want `conversion to float64 in integer-datapath package`
}

func mathCall(x float64) float64 {
	return math.Sqrt(x) // want `math\.Sqrt call in integer-datapath package`
}

func opAssign(a float64) float64 {
	a /= 3 // want `floating-point /= in integer-datapath package`
	return a
}

// eq5 is the sanctioned hot-path shape: signed multiply plus shift.
func eq5(a, b int64, sh uint) int64 {
	return (a * b) << sh
}

func intCompare(a, b float64) bool {
	return a < b // comparisons are not arithmetic: not flagged
}

//quq:float-ok fixture: decode-boundary conversion, sanctioned by the doc-comment directive
func decodeBoundary(d int64, delta float64) float64 {
	return float64(d) * delta
}

func lineDirective(a, b float64) float64 {
	//quq:float-ok fixture: directive on the preceding line covers this site
	return a * b
}
