package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context plumbing through the library layers. Three
// rules:
//
//  1. context.Background() and context.TODO() are banned outside main
//     packages and tests — a library that mints its own root context
//     detaches the work from the caller's deadline and cancellation, so
//     shutdown can never reach it.
//  2. A library function whose body directly performs blocking I/O or
//     sleeps (http round trips, net dials, time.Sleep, clock Sleep) must
//     accept a context.Context (or an *http.Request, which carries one)
//     so that the deadline has a way in.
//  3. http.NewRequest in library code should be NewRequestWithContext —
//     the context-free form silently builds an uncancellable request.
//
// Suppress with //quq:ctx-ok <reason> at the few roots where a fresh
// context is genuinely the semantic (e.g. a default applied only when
// the caller passed nil).
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "library I/O threads a context.Context; no context.Background/TODO outside main and tests",
	Directive: "ctx-ok",
	Run:       runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		// Binaries are the root of the context tree: Background there is
		// not an escape hatch, it is the one legitimate mint.
		return
	}
	for _, f := range pass.Files {
		// Rule 1: no fresh root contexts in library code.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range [...]string{"Background", "TODO"} {
				if isPkgCall(pass.Info, call, "context", name) {
					pass.Reportf(call.Pos(), "context.%s in library code detaches work from the caller's deadline; accept and thread a context.Context instead", name)
				}
			}
			return true
		})
		// Rules 2 and 3 are per declared function.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hasCtx := funcCarriesContext(pass.Info, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					// Closures inherit the enclosing function's context
					// variables lexically; judging them by their own
					// signature would be all false positives.
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgCall(pass.Info, call, "net/http", "NewRequest") {
					pass.Reportf(call.Pos(), "http.NewRequest builds an uncancellable request; use http.NewRequestWithContext")
					return true
				}
				if hasCtx {
					return true
				}
				if what, blocking := contextFreeBlockingCall(pass.Info, call); blocking {
					pass.Reportf(call.Pos(), "%s in %s, which takes no context.Context: the caller's deadline cannot reach this I/O", what, fn.Name.Name)
				}
				return true
			})
		}
	}
}

// funcCarriesContext reports whether fn's parameters give it access to a
// caller-supplied context: a context.Context parameter, an
// *http.Request (whose Context() carries one), or a receiver/parameter
// struct is NOT counted — the context must be explicit in the signature.
func funcCarriesContext(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// contextFreeBlockingCall classifies direct calls that block on the
// outside world without taking a context themselves — exactly the calls
// whose enclosing function therefore must provide one.
func contextFreeBlockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	case pkg == "net" && (fn.Name() == "Dial" || fn.Name() == "DialTimeout"):
		return "net." + fn.Name(), true
	case pkg == "net/http":
		if what, ok := httpRoundTripCall(fn); ok {
			return what, true
		}
	case strings.HasSuffix(pkg, "internal/chaos") && fn.Name() == "Sleep":
		// The chaos Clock seam takes its context explicitly, so a call
		// site always has one in hand — but the enclosing function still
		// needs a way to have gotten it.
		return "clock Sleep", true
	}
	return "", false
}

// httpRoundTripCall recognizes the net/http calls that block for a full
// network round trip: the package-level convenience functions and the
// Client/Transport methods. Methods like Header.Get share names with
// the convenience functions, so the receiver is checked explicitly.
func httpRoundTripCall(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		switch fn.Name() {
		case "Get", "Post", "PostForm", "Head":
			return "http." + fn.Name(), true
		}
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	switch named.Obj().Name() {
	case "Client":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "http Client." + fn.Name(), true
		}
	case "Transport":
		if fn.Name() == "RoundTrip" {
			return "http Transport.RoundTrip", true
		}
	}
	return "", false
}
