package dist

import (
	"math"
	"testing"

	"quq/internal/rng"
)

func sample(f Family, n int) []float64 {
	return Sample(f, n, rng.New(7))
}

func TestSampleLengths(t *testing.T) {
	for _, f := range Families {
		for _, n := range []int{1, 63, 64, 1000} {
			if got := len(Sample(f, n, rng.New(1))); got != n {
				t.Errorf("%v: len = %d, want %d", f, got, n)
			}
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	for _, f := range Families {
		a := Sample(f, 500, rng.New(3))
		b := Sample(f, 500, rng.New(3))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: sample not deterministic at %d", f, i)
			}
		}
	}
}

func TestQueryWeightShape(t *testing.T) {
	xs := sample(QueryWeight, 1<<16)
	var sum, absmax float64
	for _, v := range xs {
		sum += v
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	if mean := sum / float64(len(xs)); math.Abs(mean) > 0.005 {
		t.Errorf("query weight mean = %v, want ~0", mean)
	}
	// Heavy tail: the max must far exceed the bulk scale.
	if absmax < 0.3 {
		t.Errorf("query weight absmax = %v, expected heavy tail > 0.3", absmax)
	}
}

func TestPostSoftmaxShape(t *testing.T) {
	xs := sample(PostSoftmax, 1<<16)
	var maxV float64
	small := 0
	for _, v := range xs {
		if v < 0 || v > 1 {
			t.Fatalf("post-softmax value %v outside [0,1]", v)
		}
		if v > maxV {
			maxV = v
		}
		if v < 1.0/64 {
			small++
		}
	}
	if maxV < 0.5 {
		t.Errorf("post-softmax max = %v, expected near-one peaks", maxV)
	}
	if frac := float64(small) / float64(len(xs)); frac < 0.6 {
		t.Errorf("only %.2f of post-softmax mass below uniform level, want most", frac)
	}
	// Rows sum to one: check the first row.
	row := xs[:64]
	var s float64
	for _, v := range row {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("first softmax row sums to %v", s)
	}
}

func TestPreAdditionShape(t *testing.T) {
	xs := sample(PreAddition, 1<<16)
	var absmax, sumAbs float64
	neg, pos := 0, 0
	for _, v := range xs {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
		sumAbs += math.Abs(v)
		if v < 0 {
			neg++
		} else if v > 0 {
			pos++
		}
	}
	meanAbs := sumAbs / float64(len(xs))
	if ratio := absmax / meanAbs; ratio < 10 {
		t.Errorf("pre-addition max/mean|x| = %v, expected a wide outlier range", ratio)
	}
	balance := float64(neg) / float64(neg+pos)
	if balance < 0.45 || balance > 0.55 {
		t.Errorf("pre-addition sign balance = %v, expected symmetric", balance)
	}
}

func TestPostGELUShape(t *testing.T) {
	xs := sample(PostGELU, 1<<16)
	var minV, maxV float64
	for _, v := range xs {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	// GELU's negative side is structurally bounded at ≈ −0.17.
	if minV < -0.18 {
		t.Errorf("post-GELU min = %v, below the GELU lower bound", minV)
	}
	if maxV < 1 {
		t.Errorf("post-GELU max = %v, expected a long positive tail", maxV)
	}
	if maxV/(-minV) < 5 {
		t.Errorf("post-GELU asymmetry %v too small", maxV/(-minV))
	}
}

func TestFamilyStrings(t *testing.T) {
	want := []string{"Query W", "Post-Softmax A", "Pre-Addition A", "Post-GELU A"}
	for i, f := range Families {
		if f.String() != want[i] {
			t.Errorf("family %d string = %q, want %q", i, f.String(), want[i])
		}
	}
	if Family(99).String() == "" {
		t.Error("unknown family should still render")
	}
}

func TestSampleUnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sample(Family(99), 10, rng.New(1))
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.9, 1.0}
	edges, counts := Histogram(xs, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("histogram geometry: %d edges, %d counts", len(edges), len(counts))
	}
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram loses mass: %d != %d", total, len(xs))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if e, c := Histogram(nil, 4); e != nil || c != nil {
		t.Fatal("empty histogram should be nil")
	}
	// Constant data must not divide by zero.
	edges, counts := Histogram([]float64{2, 2, 2}, 3)
	if len(edges) != 4 || counts[0] != 3 {
		t.Fatalf("constant-data histogram: edges=%v counts=%v", edges, counts)
	}
}
