package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"quq/internal/chaos"
	"quq/internal/cluster"
	"quq/internal/rng"
	"quq/internal/serve"
)

// BackendHeader names the response header the front-end stamps with the
// address of the backend that served a proxied request.
const BackendHeader = "X-Quq-Shard"

// EpochHeader names the response header carrying the membership epoch.
// Every proxied response and every /cluster page is stamped with it, so
// a shard-aware client routing directly to workers can detect — from
// any response it happens to see — that its cached ring view is stale
// and refresh before the next request.
const EpochHeader = "X-Quq-Epoch"

// Front is the sharding front-end: an http.Handler that routes
// inference traffic onto the ring and aggregates fleet observability.
type Front struct {
	opts    Options
	ring    *Ring
	members *cluster.Membership
	prober  *Prober
	met     *Metrics
	client  *http.Client
	clock   chaos.Clock
	handler http.Handler

	rngMu  sync.Mutex
	jitter *rng.Source // retry-backoff jitter stream, seeded by Options.Seed

	// aeStop/aeDone bound the anti-entropy loop (antientropy.go): Close
	// closes aeStop and waits on aeDone, mirroring the prober's
	// stop/done protocol.
	aeStop chan struct{}
	aeDone chan struct{}
}

// New assembles a front-end over opts.Backends and starts its prober.
func New(opts Options) *Front {
	opts.defaults()
	met := NewShardMetrics()
	ring := NewRing(opts.VNodes, opts.MaxLoadFactor)
	client := &http.Client{Transport: opts.Transport}
	f := &Front{
		opts:   opts,
		ring:   ring,
		met:    met,
		client: client,
		clock:  opts.Clock,
		jitter: rng.New(opts.Seed),
		prober: NewProber(opts.BaseContext, ring, client, opts.ProbeInterval, opts.ProbeTimeout, opts.FailAfter, opts.OkAfter, met),
	}
	// The membership owns the roster and epoch; the ring is its routing
	// index, mutated only through these callbacks so the two can never
	// disagree about who is a member.
	f.members = cluster.New(cluster.Config{
		Replicas: opts.Replicas,
		OnJoin:   f.onJoin,
		OnLeave:  f.onLeave,
		Handoff:  f.handoffKeys,
	})
	for _, addr := range opts.Backends {
		f.members.Join(normalizeAddr(addr))
	}
	f.met.RingEpoch.Set(int64(f.members.Epoch()))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", f.handleProxy)
	mux.HandleFunc("POST /v1/quantize", f.handleProxy)
	mux.HandleFunc("GET /models", f.handleModels)
	mux.HandleFunc("GET /shards", f.handleShards)
	mux.HandleFunc("GET /cluster", f.handleCluster)
	mux.HandleFunc("POST /admin/join", f.handleAdminJoin)
	mux.HandleFunc("POST /admin/drain", f.handleAdminDrain)
	mux.HandleFunc("POST /admin/leave", f.handleAdminLeave)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	f.handler = f.middleware(mux)
	f.prober.Start()
	f.aeStop = make(chan struct{})
	f.aeDone = make(chan struct{})
	if opts.AntiEntropyInterval > 0 {
		go f.antiEntropyLoop()
	} else {
		close(f.aeDone)
	}
	return f
}

// onJoin and onLeave keep the ring and the topology gauges in lockstep
// with the roster. Both run under the membership lock and do nothing
// that blocks (ring and gauge mutations are short critical sections).
func (f *Front) onJoin(addr string) {
	f.ring.Add(addr)
	f.met.Joins.Inc()
	f.met.Inflight.Set(addr, 0)
	f.met.RingBackends.Set(int64(len(f.ring.Backends())))
	f.met.Healthy.Set(int64(f.ring.HealthyCount()))
}

func (f *Front) onLeave(addr string) {
	f.ring.Remove(addr)
	f.met.Leaves.Inc()
	f.met.Inflight.Delete(addr)
	f.met.RingBackends.Set(int64(len(f.ring.Backends())))
	f.met.Healthy.Set(int64(f.ring.HealthyCount()))
}

// normalizeAddr turns "host:port" into a base URL.
func normalizeAddr(addr string) string {
	addr = strings.TrimSuffix(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// Handler returns the front-end's HTTP handler.
func (f *Front) Handler() http.Handler { return f.handler }

// Ring exposes the hash ring (introspection, smoke assertions).
func (f *Front) Ring() *Ring { return f.ring }

// Metrics exposes the front-end's own instrument set.
func (f *Front) Metrics() *Metrics { return f.met }

// ProbeNow forces one synchronous health-probe round; each round trip
// is bounded by ctx and the probe timeout.
func (f *Front) ProbeNow(ctx context.Context) { f.prober.ProbeNow(ctx) }

// Close stops the background prober and the anti-entropy loop.
func (f *Front) Close() {
	f.prober.Stop()
	select {
	case <-f.aeStop:
	default:
		close(f.aeStop)
	}
	<-f.aeDone
}

// middleware wraps the mux with panic recovery, request accounting,
// body limiting and the per-request timeout.
func (f *Front) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		f.met.Requests.Inc()
		defer func() {
			f.met.Latency.Observe(time.Since(start).Seconds())
			if rec := recover(); rec != nil {
				f.met.Failures.Inc()
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, f.opts.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), f.opts.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// handleProxy routes one classify/quantize request: canonicalize the
// key selection (unknown enums are rejected here, before hashing — the
// same spelling rules the backend registry applies), pick the owning
// backend, and relay its response. Connection failures retry with
// backoff on the same backend, then eject it and fail over to the next
// ring successor; HTTP responses — 429 backpressure above all — are
// relayed as-is, never retried.
func (f *Front) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		f.writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var sel struct {
		Model  string `json:"model"`
		Method string `json:"method"`
		Bits   int    `json:"bits"`
		Regime string `json:"regime"`
	}
	if err := json.Unmarshal(body, &sel); err != nil {
		f.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	key, err := serve.KeyFromWire(sel.Model, sel.Method, sel.Bits, sel.Regime)
	if err != nil {
		f.writeError(w, http.StatusBadRequest, err)
		return
	}

	// Calibration-bearing requests replicate: a quantize warms all R
	// owners so a key's artifact survives any R-1 departures. Reads (and
	// everything at R = 1) take the single-backend path below.
	if f.opts.Replicas > 1 && r.URL.Path == "/v1/quantize" {
		f.proxyReplicated(w, r, key.String(), body)
		return
	}

	exclude := map[*Backend]bool{}
	for {
		b, replica, err := f.pickReplica(key.String(), exclude)
		if err != nil {
			f.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("%w for key %s", err, key))
			return
		}
		if len(exclude) > 0 {
			f.met.Failovers.Inc()
		}
		resp, err := f.forward(r.Context(), b, r.URL.Path, body, replica, f.drawDelays())
		if err != nil {
			// The backend is unreachable after retries: eject it so the
			// ring stops routing there until a probe readmits it, and move
			// this request to the next successor.
			eject(b, f.met)
			f.met.Healthy.Set(int64(f.ring.HealthyCount()))
			exclude[b] = true
			if r.Context().Err() != nil {
				f.writeError(w, http.StatusGatewayTimeout, r.Context().Err())
				return
			}
			continue
		}
		f.relay(w, resp, b)
		return
	}
}

// pickReplica chooses the backend for a read. With replication on, the
// key's replica set is tried in slot order first — those are the
// backends holding (or entitled to hold) the calibration, and a slot's
// identity survives its siblings' health flaps — and only when every
// replica is excluded or unhealthy does the walk continue past the set
// via Pick, which preserves the R = 1 failover semantics: a read never
// fails while any healthy backend remains, it just pays a fresh
// calibration beyond the replica set. The int is the replica slot the
// choice occupies, -1 when the backend is outside the set.
func (f *Front) pickReplica(key string, exclude map[*Backend]bool) (*Backend, int, error) {
	if f.opts.Replicas > 1 {
		for slot, b := range f.ring.OwnerN(key, f.opts.Replicas) {
			if !exclude[b] && b.healthy.Load() {
				return b, slot, nil
			}
		}
	}
	b, err := f.ring.Pick(key, exclude)
	return b, -1, err
}

// proxyReplicated fans one quantize out to every healthy replica owner
// of the key, concurrently, and relays the lowest-slot success. The
// replica set itself is placement-pure: an ejected owner is skipped
// (it re-warms on demand once readmitted), never substituted — writes
// past the set would smear calibrations onto non-owners and break the
// at-most-R-builds invariant. Owners that fail mid-request are ejected
// like any other connection failure; the request fails only when every
// replica is unreachable.
func (f *Front) proxyReplicated(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	slots := []int{}
	owners := []*Backend{}
	for slot, b := range f.ring.OwnerN(key, f.opts.Replicas) {
		if b.healthy.Load() {
			slots = append(slots, slot)
			owners = append(owners, b)
		}
	}
	if len(owners) == 0 {
		f.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("%w for key %s", ErrNoBackends, key))
		return
	}
	// Draw every owner's retry schedule in slot order before any
	// goroutine starts: the jitter stream is shared, and drawing inside
	// the goroutines would order the draws by scheduler whim — breaking
	// the byte-identical replays the chaos harness holds over this path.
	schedules := make([][]time.Duration, len(owners))
	for i := range owners {
		schedules[i] = f.drawDelays()
	}
	resps := make([]*http.Response, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, b := range owners {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			resps[i], errs[i] = f.forward(r.Context(), b, r.URL.Path, body, slots[i], schedules[i])
		}(i, b)
	}
	wg.Wait()
	relay := -1
	for i := range owners {
		switch {
		case errs[i] != nil:
			eject(owners[i], f.met)
		case relay < 0:
			relay = i
		default:
			discard(resps[i])
		}
	}
	f.met.Healthy.Set(int64(f.ring.HealthyCount()))
	if relay < 0 {
		f.writeError(w, http.StatusBadGateway,
			fmt.Errorf("shard: all %d replicas unreachable for key %s: %w", len(owners), key, errs[0]))
		return
	}
	f.relay(w, resps[relay], owners[relay])
}

// drawDelays draws one forward's full retry schedule under the rng
// mutex. Schedules are drawn whole, in request (and replica-slot)
// order, so the shared jitter stream's consumption sequence is a pure
// function of the request sequence — never of goroutine interleaving.
func (f *Front) drawDelays() []time.Duration {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return retryDelays(f.jitter, f.opts.RetryBackoff, f.opts.Retries)
}

// discard drains and closes a response that will not be relayed (the
// non-primary replicas of a fan-out).
func discard(resp *http.Response) {
	//quq:errdrop-ok best-effort drain for connection reuse; the response is deliberately unrelayed
	_, _ = io.Copy(io.Discard, resp.Body)
	//quq:errdrop-ok closing an unrelayed response has no remaining audience
	_ = resp.Body.Close()
}

// forward posts body to one backend, retrying connection failures with
// seeded equal-jitter backoff (the schedule is pre-drawn by drawDelays)
// slept through the injected clock. replica >= 0 stamps the request
// with the replica slot the backend occupies for this key. Any HTTP
// response, whatever its status, is final.
func (f *Front) forward(ctx context.Context, b *Backend, path string, body []byte, replica int, delays []time.Duration) (*http.Response, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	var lastErr error
	for attempt := 0; attempt <= f.opts.Retries; attempt++ {
		if attempt > 0 {
			f.met.Retries.Inc()
			if err := f.clock.Sleep(ctx, delays[attempt-1]); err != nil {
				return nil, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if replica >= 0 {
			req.Header.Set(serve.ReplicaHeader, strconv.Itoa(replica))
		}
		resp, err := f.client.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// relay copies one backend response to the client, stamping which shard
// served it.
func (f *Front) relay(w http.ResponseWriter, resp *http.Response, b *Backend) {
	defer func() {
		// A failed drain or close only matters to the connection pool;
		// the response bytes were already relayed to the client.
		//quq:errdrop-ok best-effort drain for connection reuse; bytes already relayed
		_, _ = io.Copy(io.Discard, resp.Body)
		//quq:errdrop-ok response already relayed; nothing left to report to the client
		resp.Body.Close()
	}()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(BackendHeader, b.addr)
	w.Header().Set(EpochHeader, strconv.FormatUint(f.members.Epoch(), 10))
	if resp.StatusCode == http.StatusTooManyRequests {
		f.met.Backpressure.Inc()
	}
	if resp.StatusCode >= 500 {
		f.met.Failures.Inc()
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The client hung up mid-relay; the failure counter is the only
		// remaining audience.
		f.met.Failures.Inc()
	}
}

// shardInfo is the /shards view of one backend.
type shardInfo struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Inflight int64  `json:"inflight"`
}

type shardsResponse struct {
	VNodes        int         `json:"vnodes"`
	MaxLoadFactor float64     `json:"max_load_factor"`
	Backends      []shardInfo `json:"backends"`
}

// handleShards reports ring topology and per-backend health/load.
func (f *Front) handleShards(w http.ResponseWriter, r *http.Request) {
	resp := shardsResponse{VNodes: f.opts.VNodes, MaxLoadFactor: f.opts.MaxLoadFactor}
	for _, b := range f.ring.Backends() {
		resp.Backends = append(resp.Backends, shardInfo{
			Addr:     b.Addr(),
			Healthy:  b.Healthy(),
			Inflight: b.Inflight(),
		})
	}
	f.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the front-end's own liveness view: healthy while at
// least one backend is admitted.
func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := f.ring.HealthyCount()
	f.met.Healthy.Set(int64(healthy))
	code := http.StatusOK
	status := "ok"
	if healthy == 0 {
		code = http.StatusServiceUnavailable
		status = "no healthy backends"
	}
	f.writeJSON(w, code, map[string]any{
		"status":   status,
		"healthy":  healthy,
		"backends": len(f.ring.Backends()),
	})
}

// handleModels aggregates the fleet's /models: configs and methods from
// the first reachable backend (identical across a homogeneous fleet),
// cached registry entries merged from every healthy backend and sorted
// for a deterministic cluster view.
func (f *Front) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelsPage struct {
		Models  []json.RawMessage `json:"models"`
		Methods []json.RawMessage `json:"methods"`
		Entries []serve.EntryInfo `json:"entries"`
	}
	var first *modelsPage
	var entries []serve.EntryInfo
	for _, b := range f.ring.Backends() {
		if !b.Healthy() {
			continue
		}
		var page modelsPage
		if err := f.getJSON(r.Context(), b.addr+"/models", &page); err != nil {
			f.met.ScrapeErrors.Inc()
			continue
		}
		if first == nil {
			first = &page
		}
		entries = append(entries, page.Entries...)
	}
	if first == nil {
		f.writeError(w, http.StatusServiceUnavailable, ErrNoBackends)
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	f.writeJSON(w, http.StatusOK, modelsPage{Models: first.Models, Methods: first.Methods, Entries: entries})
}

// getJSON fetches and decodes one backend JSON page.
func (f *Front) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.Unmarshal(body, out)
}

// writeJSON writes a JSON response; an encode failure means the client
// disconnected, which only the failure counter needs to know.
func (f *Front) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		f.met.Failures.Inc()
	}
}

// writeError renders an error with the front-end's status taxonomy.
func (f *Front) writeError(w http.ResponseWriter, code int, err error) {
	if errors.Is(err, serve.ErrBadRequest) {
		code = http.StatusBadRequest
	}
	if code >= 500 {
		f.met.Failures.Inc()
	}
	f.writeJSON(w, code, map[string]string{"error": err.Error()})
}
