package serve

import (
	"errors"
	"fmt"

	"quq/internal/snapstore"
)

// ErrSnapshotUnavailable is returned by Registry.Snapshot when the key
// has no ready, snapshottable entry; the HTTP layer maps it to 404.
var ErrSnapshotUnavailable = errors.New("serve: no snapshot for key")

// warmRestart loads every verified snapshot from the store and installs
// it as a ready entry, then opens the registry for traffic by closing
// warm. It runs on its own goroutine, joined by Drain through the builds
// WaitGroup like any calibration build.
func (r *Registry) warmRestart() {
	defer r.builds.Done()
	defer close(r.warm)
	loaded, quarantined, err := r.store.Load()
	if r.met != nil {
		r.met.SnapshotQuarantined.Add(uint64(quarantined))
		if err != nil {
			r.met.SnapshotErrors.Inc()
		}
	}
	if r.opts.SnapshotLoadHook != nil {
		r.opts.SnapshotLoadHook(len(loaded))
	}
	for _, l := range loaded {
		if !r.installLoaded(l) {
			// The payload verified but does not belong here (foreign key,
			// mismatched metadata): quarantine it like a digest failure.
			if qerr := r.store.Quarantine(l.Path); qerr == nil && r.met != nil {
				r.met.SnapshotQuarantined.Inc()
			}
		}
	}
}

// installLoaded validates one decoded snapshot against the registry's
// key space and installs it as a ready entry. It reports false when the
// snapshot is internally consistent but unusable for this registry.
func (r *Registry) installLoaded(l snapstore.Loaded) bool {
	key, err := r.entryKeyFor(l.Entry)
	if err != nil {
		return false
	}
	r.armIntPath(l.Entry)
	e := &entry{key: key, ready: make(chan struct{}), qm: l.Entry.Model, digest: l.Entry.Digest}
	e.replica.Store(-1)
	close(e.ready)
	r.mu.Lock()
	if _, exists := r.entries[key]; exists {
		r.mu.Unlock()
		return true // already resident (another snapshot won the slot)
	}
	r.entries[key] = e
	r.mu.Unlock()
	if r.met != nil {
		r.met.SnapshotLoads.Inc()
	}
	return true
}

// entryKeyFor canonicalizes and cross-checks a decoded snapshot's key
// against the payload's own metadata, so a verified-but-mislabeled file
// can never serve under the wrong selection.
func (r *Registry) entryKeyFor(e *snapstore.Entry) (Key, error) {
	key, err := ParseKey(e.Key)
	if err != nil {
		return Key{}, err
	}
	if err := r.validate(key); err != nil {
		return Key{}, err
	}
	qm := e.Model
	if key.Config != e.Config || key.Bits != qm.Bits || key.Method != qm.Method || key.Regime != qm.Regime {
		return Key{}, fmt.Errorf("%w: snapshot metadata does not match key %s", ErrBadRequest, e.Key)
	}
	if key.Config != qm.Model.Config().Name {
		return Key{}, fmt.Errorf("%w: snapshot weights belong to %s, key says %s", ErrBadRequest, qm.Model.Config().Name, key.Config)
	}
	return key, nil
}

// armIntPath re-arms the integer weight path on a restored model when
// the registry is configured for it. Failure keeps the float path — the
// model still serves, and the serving grid makes the two byte-identical.
func (r *Registry) armIntPath(e *snapstore.Entry) {
	if !r.intPath.Load() || e.Model.WeightParams == nil {
		return
	}
	if err := e.Model.SetIntPath(true); err != nil && r.met != nil {
		r.met.SnapshotErrors.Inc()
	}
}

// persist commits a freshly-built entry to the snapshot store and stamps
// its content digest. Persistence failures are counted, never fatal: the
// build keeps serving from memory.
func (r *Registry) persist(e *entry) {
	if r.store == nil {
		return
	}
	blob, digest, err := snapstore.Encode(e.key.String(), e.qm)
	if err != nil {
		if r.met != nil {
			r.met.SnapshotErrors.Inc()
		}
		return
	}
	e.digest = digest
	if err := r.store.WriteBlob(e.key.String(), blob); err != nil {
		if r.met != nil {
			r.met.SnapshotErrors.Inc()
		}
		return
	}
	if r.met != nil {
		r.met.SnapshotWrites.Inc()
	}
}

// Digest returns the content address of a key's ready entry ("" if the
// key is absent, still building, or not snapshottable).
func (r *Registry) Digest(key Key) string {
	key, err := CanonicalKey(key)
	if err != nil {
		return ""
	}
	r.mu.Lock()
	e := r.entries[key]
	r.mu.Unlock()
	if e == nil {
		return ""
	}
	select {
	case <-e.ready:
		return e.digest
	default:
		return ""
	}
}

// Snapshot serializes a key's ready entry into a transferable snapshot
// file image — the payload GET /v1/snapshot serves and anti-entropy
// repair re-pushes to a divergent replica.
func (r *Registry) Snapshot(key Key) (blob []byte, digestHex string, err error) {
	key, err = CanonicalKey(key)
	if err != nil {
		return nil, "", err
	}
	r.mu.Lock()
	e := r.entries[key]
	r.mu.Unlock()
	if e == nil {
		return nil, "", ErrSnapshotUnavailable
	}
	select {
	case <-e.ready:
	default:
		return nil, "", ErrSnapshotUnavailable
	}
	if e.err != nil || e.qm == nil {
		return nil, "", ErrSnapshotUnavailable
	}
	return snapstore.Encode(key.String(), e.qm)
}

// InstallSnapshot verifies a snapshot file image and installs it as the
// key's ready entry, replacing whatever held the slot — the repair path
// anti-entropy uses to overwrite a divergent replica with the healthy
// majority's build. The snapshot is also committed to the local store so
// the repair survives the next restart. Installing a snapshot whose
// digest already matches the resident ready entry is a no-op.
func (r *Registry) InstallSnapshot(data []byte) (keyStr, digestHex string, err error) {
	se, err := snapstore.Decode(data)
	if err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	key, err := r.entryKeyFor(se)
	if err != nil {
		return "", "", err
	}
	if cur := r.Digest(key); cur == se.Digest {
		return key.String(), se.Digest, nil
	}
	r.armIntPath(se)
	e := &entry{key: key, ready: make(chan struct{}), qm: se.Model, digest: se.Digest}
	e.replica.Store(-1)
	close(e.ready)
	r.mu.Lock()
	r.entries[key] = e
	r.mu.Unlock()
	if r.store != nil {
		if werr := r.store.WriteBlob(key.String(), data); werr != nil && r.met != nil {
			r.met.SnapshotErrors.Inc()
		}
	}
	if r.met != nil {
		r.met.SnapshotInstalls.Inc()
	}
	return key.String(), se.Digest, nil
}
