package docmissing // want `package docmissing has no package doc comment`

func A() int { return 1 }
