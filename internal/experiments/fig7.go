package experiments

import (
	"fmt"
	"strings"

	"quq/internal/baselines"
	"quq/internal/data"
	"quq/internal/nn"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// Fig7Row reports, for one quantization setting, how much of the FP32
// attention structure survives: the mean cosine similarity between the
// quantized and FP32 attention-rollout maps over the evaluation images.
// This quantifies what the paper's Figure 7 shows visually — at 6 bits
// uniform quantization's attention "is no longer activated" while QUQ
// "still effectively maintains attention in crucial regions".
type Fig7Row struct {
	Method    string
	WA        string
	Retention float64
}

// Fig7Result bundles the retention scores with a rendered example map
// per setting.
type Fig7Result struct {
	Rows []Fig7Row
	// Maps holds one ASCII heatmap per row (same order), of the first
	// evaluation image, plus the FP32 reference in Reference.
	Reference string
	Maps      []string
}

// Fig7Options scales the experiment.
type Fig7Options struct {
	Config vit.Config // default ViT-S
	Images int        // default 8
	Seed   uint64
}

// Fig7 regenerates the attention-map experiment: FP32 versus BaseQ and
// QUQ under full quantization at 8 and 6 bits.
func Fig7(opts Fig7Options) (Fig7Result, error) {
	if opts.Config.Name == "" {
		opts.Config = vit.ViTSmall
	}
	if opts.Images == 0 {
		opts.Images = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 2024
	}
	cfg := opts.Config
	m, _ := nn.PretrainedZoo(cfg, opts.Seed, 120)
	calib := data.CalibrationSet(cfg, 16, opts.Seed)
	images := data.Images(cfg, opts.Images, opts.Seed^0xF16)

	refMaps := make([]*tensor.Tensor, len(images))
	for i, img := range images {
		refMaps[i] = rolloutMap(cfg, img, func(img *tensor.Tensor, o vit.ForwardOpts) {
			m.Forward(img, o)
		})
	}

	res := Fig7Result{Reference: renderMap(refMaps[0])}
	for _, bits := range []int{8, 6} {
		for _, meth := range []ptq.Method{baselines.BaseQ{}, ptq.NewQUQ()} {
			qm, err := ptq.Quantize(m, meth, ptq.CalibOptions{Bits: bits, Regime: ptq.Full, Images: calib})
			if err != nil {
				return Fig7Result{}, fmt.Errorf("experiments: fig7 quantize (%s %d-bit): %w", meth.Name(), bits, err)
			}
			var sum float64
			var first *tensor.Tensor
			for i, img := range images {
				qmap := rolloutMap(cfg, img, func(img *tensor.Tensor, o vit.ForwardOpts) {
					qm.ForwardOpts(img, o)
				})
				if i == 0 {
					first = qmap
				}
				sum += tensor.CosineSimilarity(refMaps[i], qmap)
			}
			res.Rows = append(res.Rows, Fig7Row{
				Method:    meth.Name(),
				WA:        fmt.Sprintf("%d/%d", bits, bits),
				Retention: sum / float64(len(images)),
			})
			res.Maps = append(res.Maps, renderMap(first))
		}
	}
	return res, nil
}

// rolloutMap computes the attention-rollout saliency of the class token
// over the patch grid: per block, average the heads, mix with identity
// (Ā = (A+I)/2, row-normalized), multiply through the blocks, and read
// the class-token row restricted to patch tokens.
func rolloutMap(cfg vit.Config, img *tensor.Tensor, forward func(*tensor.Tensor, vit.ForwardOpts)) *tensor.Tensor {
	t := cfg.Tokens()
	rollout := identity(t)
	forward(img, vit.ForwardOpts{
		Attn: func(_ int, attn *tensor.Tensor) {
			heads := attn.Dim(0) / t
			avg := tensor.New(t, t)
			for h := 0; h < heads; h++ {
				for i := 0; i < t; i++ {
					row := attn.Row(h*t + i)
					arow := avg.Row(i)
					for j := 0; j < t; j++ {
						arow[j] += row[j] / float64(heads)
					}
				}
			}
			// Ā = (A + I)/2, rows renormalized.
			for i := 0; i < t; i++ {
				row := avg.Row(i)
				row[i] += 1
				var s float64
				for _, v := range row {
					s += v
				}
				for j := range row {
					row[j] /= s
				}
			}
			rollout = tensor.MatMul(avg, rollout)
		},
	})
	// Class-token attention over patch tokens (skip cls/dist/register).
	skip := t - cfg.ImageSize/cfg.PatchSize*cfg.ImageSize/cfg.PatchSize
	g := cfg.ImageSize / cfg.PatchSize
	out := tensor.New(g, g)
	clsRow := rollout.Row(0)
	for i := 0; i < g*g; i++ {
		out.Data()[i] = clsRow[skip+i]
	}
	// Normalize to unit sum so maps are comparable.
	if s := out.Sum(); s > 0 {
		out.Scale(1 / s)
	}
	return out
}

func identity(n int) *tensor.Tensor {
	t := tensor.New(n, n)
	for i := 0; i < n; i++ {
		t.Set(1, i, i)
	}
	return t
}

// renderMap draws an ASCII heatmap of a [g,g] saliency map.
func renderMap(m *tensor.Tensor) string {
	shades := []byte(" .:-=+*#%@")
	maxV := m.Max()
	if maxV <= 0 {
		maxV = 1
	}
	var b strings.Builder
	g := m.Dim(0)
	for y := 0; y < g; y++ {
		for x := 0; x < g; x++ {
			level := int(m.At(y, x) / maxV * float64(len(shades)-1))
			if level < 0 {
				level = 0
			}
			if level >= len(shades) {
				level = len(shades) - 1
			}
			b.WriteByte(shades[level])
			b.WriteByte(shades[level]) // double width for aspect ratio
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFig7 renders the retention table and the example maps.
func FormatFig7(r Fig7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-5s %s\n", "Method", "W/A", "Attention retention (cosine vs FP32)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-5s %.4f\n", row.Method, row.WA, row.Retention)
	}
	b.WriteString("\nFP32 attention rollout (example):\n")
	b.WriteString(r.Reference)
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "\n%s %s:\n%s", row.Method, row.WA, r.Maps[i])
	}
	return b.String()
}
