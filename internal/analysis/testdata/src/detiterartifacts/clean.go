package detiterartifacts

// collect ranges over a map in a file that writes no artifacts: the
// detiter file-scope rule must leave it alone.
func collect(rows map[string]int) int {
	n := 0
	for _, v := range rows {
		n += v
	}
	return n
}
