// Package fleet is the chaos invariant harness: it boots an in-process
// quq-shard fleet (three quq-serve backends plus the sharding
// front-end), splices a chaos.Transport between the proxy and the
// network, replays seeded fault scripts, and checks the failure-domain
// invariants the serve/shard stack promises:
//
//   - reply conservation: no request lost, none double-answered, even
//     while connections reset and the ring fails over;
//   - calibrate-exactly-once: a key's PRA calibration runs once
//     fleet-wide, surviving a first client that disconnects mid-build
//     and a transient failure that must evict-and-retry, never
//     double-build;
//   - 429-never-retried: backend backpressure reaches the client
//     verbatim (status and Retry-After) with exactly one backend
//     attempt — retrying a 429 amplifies the very overload it signals;
//   - bounded-remap: ejecting and readmitting a shard moves only the
//     arcs that shard owns, in both directions;
//   - bounded-drain: drain answers every admitted item — including
//     abandoned and panicked ones — inside its deadline;
//   - calibrate-at-most-R / replicas-identical: with replication on, a
//     key's calibration runs on at most its R placement owners and the
//     replicas answer byte-identically, so a failover never changes an
//     answer — including with one replica flipped to the integer weight
//     path (-int-path), where the replicas must stay interchangeable
//     for requantized outputs (identical argmax, logits byte-identical
//     on the 2^-16 grid);
//   - zero-lost-keys: killing one replica owner loses no calibrated
//     key — the surviving replica serves warm, no rebuilds;
//   - elastic-membership: admin join/drain/leave advance the epoch
//     monotonically and a drain re-homes the leaver's keys before
//     removal;
//   - latency-slo: under deliberate overload the occupancy-adaptive
//     governor shrinks then restores the per-batch worker budget,
//     admission control sheds impatient requests up front (429, no
//     queue slot) while every admitted request meets its budget, and
//     the shed counter surfaces in the merged /metrics view;
//   - warm-restart-zero-recalibration: a backend killed and restarted
//     against its snapshot directory serves every previously-calibrated
//     key warm — zero new calibration builds, identical digests, and a
//     retryable 503 (never a wrong answer) while the warm load is still
//     in flight;
//   - corruption-quarantined / antientropy-converges: a snapshot whose
//     bytes were flipped on disk is quarantined at restart (the backend
//     stays healthy, never serves the corrupt payload), and one
//     anti-entropy sweep re-pushes the surviving replica's snapshot so
//     the fleet converges back to R identical copies without a single
//     recalibration.
//
// Everything stochastic draws from the script seed via internal/rng and
// every sleep goes through chaos.Clock, so a run's invariant report is
// byte-identical across replays; `quq-shard -chaos` runs each script
// twice and fails on any byte difference.
package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"quq/internal/chaos"
	"quq/internal/serve"
	"quq/internal/shard"
)

// Options tunes a replay.
type Options struct {
	// WrapTransport, when set, wraps the front-end's outbound transport
	// above the chaos fault layer (front -> wrapper -> faults -> net).
	// The harness's own tests use it to reintroduce known bugs — a
	// transparently-429-retrying transport, say — and prove the
	// invariant checks catch them.
	WrapTransport func(http.RoundTripper) http.RoundTripper
}

// Run replays the full fault schedule for one seed and returns the
// invariant report. ctx bounds the whole replay — every request,
// health probe and drain inside the scenarios descends from it, so
// cancelling it aborts the run. A non-nil error means the harness
// itself could not run (ports, marshalling, ctx expiry); invariant
// violations are reported in the Report, not as errors.
func Run(ctx context.Context, seed uint64, opts Options) (*chaos.Report, error) {
	rep := chaos.NewReport("serve-shard-faults", seed)
	for _, sc := range []struct {
		name string
		run  func(context.Context, uint64, Options, *chaos.Report) error
	}{
		{"reset-failover", scenarioResetFailover},
		{"calibrate-once", scenarioCalibrateOnce},
		{"backpressure-storm", scenarioBackpressure},
		{"eject-readmit", scenarioBoundedRemap},
		{"drain", scenarioBoundedDrain},
		{"replica-divergence", scenarioReplicaDivergence},
		{"replica-failover", scenarioReplicaFailover},
		{"membership-elastic", scenarioMembershipElastic},
		{"overload-shed", scenarioOverloadShed},
		{"warm-restart", scenarioWarmRestart},
		{"corruption-repair", scenarioCorruptionRepair},
	} {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("chaos scenario %s: %w", sc.name, err)
		}
		if err := sc.run(ctx, seed, opts, rep); err != nil {
			return nil, fmt.Errorf("chaos scenario %s: %w", sc.name, err)
		}
	}
	return rep, nil
}

// testFleet is one booted in-process fleet: three quq-serve backends on
// ephemeral loopback ports behind a front-end whose outbound traffic
// passes through the fault transport and whose backoff sleeps go to a
// fake clock.
type testFleet struct {
	backends []*backendShard
	front    *shard.Front
	frontSrv *http.Server
	base     string // front-end base URL
	faults   *chaos.Transport
	clock    *chaos.Fake
	serving  sync.WaitGroup // joins every http.Server.Serve goroutine at close
}

type backendShard struct {
	srv     *serve.Server
	httpSrv *http.Server
	host    string       // "127.0.0.1:port" — the form chaos rules match on
	cfg     serve.Config // the exact config the backend booted with, kept for crash-restart
}

// boot starts nShards backends and the front-end. ctx roots the
// front-end's background work (the prober). replicas is the fleet's
// replication factor R (1 for the single-owner scenarios). script seeds
// the fault transport (rules may be empty; scenarios add host-targeted
// rules after boot, once ephemeral addresses exist).
func boot(ctx context.Context, nShards, replicas int, cfg serve.Config, script *chaos.Script, opts Options) (*testFleet, error) {
	f := &testFleet{clock: chaos.NewFake()}
	sopts := shard.Options{
		BaseContext:   ctx,
		Replicas:      replicas,
		ProbeInterval: -1, // probe rounds are explicit via ProbeNow
		Seed:          script.Seed,
		Clock:         f.clock,
	}
	for i := 0; i < nShards; i++ {
		bcfg := cfg
		if root := cfg.Registry.SnapshotDir; root != "" {
			// The scenario hands boot one SnapshotDir as a fleet-wide
			// root; each backend persists into its own subdirectory, the
			// way real shards own disjoint disks.
			bcfg.Registry.SnapshotDir = filepath.Join(root, fmt.Sprintf("shard-%d", i))
		}
		b, err := f.startBackend(bcfg)
		if err != nil {
			f.close()
			return nil, fmt.Errorf("starting backend %d: %w", i, err)
		}
		f.backends = append(f.backends, b)
		sopts.Backends = append(sopts.Backends, b.host)
	}
	f.faults = chaos.NewTransport(nil, f.clock, script)
	var rt http.RoundTripper = f.faults
	if opts.WrapTransport != nil {
		rt = opts.WrapTransport(rt)
	}
	sopts.Transport = rt
	f.front = shard.New(sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.close()
		return nil, err
	}
	f.frontSrv = &http.Server{Handler: f.front.Handler()}
	f.serving.Add(1)
	go func() {
		// Serve exits with ErrServerClosed on Close, which close() waits
		// for; verdicts come from the round trips, not this goroutine.
		defer f.serving.Done()
		_ = f.frontSrv.Serve(ln)
	}()
	f.base = "http://" + ln.Addr().String()
	return f, nil
}

func (f *testFleet) startBackend(cfg serve.Config) (*backendShard, error) {
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	f.serving.Add(1)
	go func() {
		defer f.serving.Done()
		_ = httpSrv.Serve(ln)
	}()
	return &backendShard{srv: s, httpSrv: httpSrv, host: ln.Addr().String(), cfg: cfg}, nil
}

// crashBackend kills backend b abruptly: the listener closes and every
// in-flight connection drops, with no drain — the process-kill fault.
// The registry's state survives only through whatever it persisted to
// its snapshot directory.
func (f *testFleet) crashBackend(b *backendShard) {
	_ = b.httpSrv.Close()
}

// restartBackend brings a crashed backend back on the SAME address with
// a fresh serve.Server built from the config it originally booted with
// — same snapshot directory, so the new registry warm-restarts from
// disk. Rebinding an ephemeral port that just closed can transiently
// fail, so the listen is retried through the fake clock.
func (f *testFleet) restartBackend(ctx context.Context, b *backendShard) error {
	s := serve.New(b.cfg)
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", b.host)
		if err == nil {
			break
		}
		if serr := f.clock.Sleep(ctx, 10*time.Millisecond); serr != nil {
			return serr
		}
	}
	if err != nil {
		return fmt.Errorf("rebinding %s: %w", b.host, err)
	}
	b.srv = s
	b.httpSrv = &http.Server{Handler: s.Handler()}
	f.serving.Add(1)
	go func() {
		defer f.serving.Done()
		_ = b.httpSrv.Serve(ln)
	}()
	return nil
}

// close tears the fleet down and joins every Serve goroutine, so a
// scenario returns with zero fleet goroutines left behind.
func (f *testFleet) close() {
	if f.frontSrv != nil {
		_ = f.frontSrv.Close()
	}
	if f.front != nil {
		f.front.Close()
	}
	for _, b := range f.backends {
		_ = b.httpSrv.Close()
	}
	f.serving.Wait()
}

// baseConfig is the cheap backend configuration every scenario starts
// from: ViT-Nano with a 2-image calibration set, so a "calibration" is
// real work (PRA reservoirs, grid refinement) but takes milliseconds.
func baseConfig(seed uint64) serve.Config {
	return serve.Config{
		Registry: serve.RegistryOptions{Seed: seed, CalibImages: 2},
	}
}

// hostOf strips the scheme from a backend URL, yielding the host form
// chaos rules and fleet bookkeeping use.
func hostOf(addr string) string {
	return strings.TrimPrefix(strings.TrimPrefix(addr, "http://"), "https://")
}

// completions counts fault-transport events on path that carried the
// given status — the backend-side completion ledger conservation checks
// compare against the client-side one.
func completions(tr *chaos.Transport, path string, status int) int {
	n := 0
	for _, e := range tr.Events() {
		if strings.HasPrefix(e.Path, path) && e.Status == status {
			n++
		}
	}
	return n
}
