package accel

import (
	"math"
	"testing"

	"quq/internal/dist"
	"quq/internal/quant"
	"quq/internal/qub"
)

// TestAbs64MinInt64 is the regression test for the MaxAbsAcc edge case:
// -math.MinInt64 is math.MinInt64 again (negative), which used to flow
// straight into the accumulator-width statistic.
func TestAbs64MinInt64(t *testing.T) {
	if got := abs64(math.MinInt64); got != math.MaxInt64 {
		t.Fatalf("abs64(MinInt64) = %d, want MaxInt64", got)
	}
	for _, c := range []struct{ in, want int64 }{
		{0, 0}, {5, 5}, {-5, 5},
		{math.MaxInt64, math.MaxInt64},
		{math.MinInt64 + 1, math.MaxInt64},
	} {
		if got := abs64(c.in); got != c.want {
			t.Fatalf("abs64(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestMaxAbsAccSaturates feeds the MaxAbsAcc scan an accumulator sitting
// exactly on math.MinInt64 (reachable through wrapping arithmetic) and
// checks the width statistic saturates positive instead of going
// negative.
func TestMaxAbsAccSaturates(t *testing.T) {
	var maxAbs int64
	for _, acc := range []int64{3, math.MinInt64, -7} {
		if aa := abs64(acc); aa > maxAbs {
			maxAbs = aa
		}
	}
	if maxAbs != math.MaxInt64 {
		t.Fatalf("MaxAbsAcc scan = %d, want saturated MaxInt64", maxAbs)
	}
}

// preparedFixture calibrates activation and weight quantizers and encodes
// a [m,k]·[k,n] operand pair for the prepared-GEMM tests.
type preparedFixtureData struct {
	px, pw *quant.Params
	rx, rw qub.Registers
	x, w   []qub.Word
	wData  []float64
}

func preparedFixture(t *testing.T, bits, m, k, n int) preparedFixtureData {
	t.Helper()
	px, xs := calibrate(t, dist.PostGELU, bits, 31)
	pw, ws := calibrate(t, dist.QueryWeight, bits, 32)
	rx, err := qub.RegistersFor(px)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := qub.RegistersFor(pw)
	if err != nil {
		t.Fatal(err)
	}
	return preparedFixtureData{
		px: px, pw: pw, rx: rx, rw: rw,
		x:     qub.EncodeTensor(px, xs[:m*k]),
		w:     qub.EncodeTensor(pw, ws[:k*n]),
		wData: ws[:k*n],
	}
}

// TestGEMMPreparedMatchesGEMM checks the resident-operand path is
// bit-identical to the word-stream path: same Acc, same requantized Out
// words, same MaxAbsAcc.
func TestGEMMPreparedMatchesGEMM(t *testing.T) {
	const bits, m, k, n = 6, 17, 48, 33
	fx := preparedFixture(t, bits, m, k, n)
	qu, err := NewQuantizeUnit(fx.pw, fx.rx.BaseDelta*fx.rw.BaseDelta)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultArray(bits)
	want, err := c.GEMM(fx.x, fx.rx, fx.w, fx.rw, m, k, n, qu)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := PrepareWords(fx.w, fx.rw, k, n)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Delta != fx.rw.BaseDelta {
		t.Fatalf("prepared Delta %v, want %v", prep.Delta, fx.rw.BaseDelta)
	}
	got, err := c.GEMMPrepared(fx.x, fx.rx, prep, m, k, qu)
	if err != nil {
		t.Fatal(err)
	}
	assertGEMMEqual(t, "GEMMPrepared", got, want)
}

// TestGEMMMatchesScalarBaseline checks the kernel-layer GEMM against the
// retained scalar loops: decode by hand, run ScalarIntGEMM, requantize
// with the same unit — Acc and Out must match bit for bit.
func TestGEMMMatchesScalarBaseline(t *testing.T) {
	const bits, m, k, n = 6, 17, 48, 33
	fx := preparedFixture(t, bits, m, k, n)
	qu, err := NewQuantizeUnit(fx.pw, fx.rx.BaseDelta*fx.rw.BaseDelta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DefaultArray(bits).GEMM(fx.x, fx.rx, fx.w, fx.rw, m, k, n, qu)
	if err != nil {
		t.Fatal(err)
	}
	vx := make([]int64, len(fx.x))
	decodeWords(vx, fx.x, fx.rx)
	vw := make([]int64, len(fx.w))
	decodeWords(vw, fx.w, fx.rw)
	acc := make([]int64, m*n)
	ScalarIntGEMM(acc, vx, vw, m, k, n)
	for i, a := range acc {
		if got.Acc[i] != a {
			t.Fatalf("Acc[%d] = %d, scalar baseline %d", i, got.Acc[i], a)
		}
		if want := qub.Encode(qu.Params, qu.Requantize(a)); got.Out[i] != want {
			t.Fatalf("Out[%d] = %#x, scalar baseline %#x", i, got.Out[i], want)
		}
	}
}

// TestPrepareQuantizedMatchesWords checks the float-recovery preparation
// route: fake-quantize weight data with the calibrated params, recover
// the integer grid, and confirm every recovered integer reproduces the
// fake-quantized float exactly and agrees with decoding the QUB words of
// the same values.
func TestPrepareQuantizedMatchesWords(t *testing.T) {
	const bits, k, n = 6, 48, 33
	fx := preparedFixture(t, bits, 1, k, n)
	fq := make([]float64, len(fx.wData))
	fx.pw.QuantizeSlice(fq, fx.wData)
	prep, err := PrepareQuantized(fx.pw, fq, k, n)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Delta != fx.pw.BaseDelta() {
		t.Fatalf("Delta %v, want base delta %v", prep.Delta, fx.pw.BaseDelta())
	}
	for i, m := range prep.V {
		if float64(m)*prep.Delta != fq[i] {
			t.Fatalf("element %d: recovered %d·Δ = %v, want %v", i, m, float64(m)*prep.Delta, fq[i])
		}
	}
	vw := make([]int64, len(fq))
	decodeWords(vw, qub.EncodeTensor(fx.pw, fq), fx.rw)
	for i := range vw {
		if vw[i] != prep.V[i] {
			t.Fatalf("element %d: words decode to %d, recovery gives %d (value %v)", i, vw[i], prep.V[i], fq[i])
		}
	}
}

// TestPrepareQuantizedRejectsOffGrid checks the per-element verification:
// data not fake-quantized with the params must be rejected, as must a
// size mismatch.
func TestPrepareQuantizedRejectsOffGrid(t *testing.T) {
	px, xs := calibrate(t, dist.PostGELU, 6, 33)
	fq := make([]float64, 8)
	px.QuantizeSlice(fq, xs[:8])
	fq[3] += px.BaseDelta() * 0.3
	if _, err := PrepareQuantized(px, fq, 2, 4); err == nil {
		t.Fatal("off-grid data accepted")
	}
	if _, err := PrepareQuantized(px, fq[:6], 2, 4); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// TestPrepareWordsRejectsSizeMismatch covers the word-count check.
func TestPrepareWordsRejectsSizeMismatch(t *testing.T) {
	if _, err := PrepareWords(make([]qub.Word, 7), qub.Registers{Bits: 8}, 2, 4); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// TestSliceColsPrepared checks column slicing of a prepared operand
// against preparing the sliced words directly.
func TestSliceColsPrepared(t *testing.T) {
	const bits, k, n = 6, 16, 24
	fx := preparedFixture(t, bits, 1, k, n)
	whole, err := PrepareWords(fx.w, fx.rw, k, n)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 8, 16
	slice := whole.SliceCols(lo, hi)
	direct, err := PrepareWords(sliceCols(fx.w, k, n, lo, hi), fx.rw, k, hi-lo)
	if err != nil {
		t.Fatal(err)
	}
	if slice.Rows != direct.Rows || slice.Cols != direct.Cols || slice.MaxAbs != direct.MaxAbs || slice.Delta != direct.Delta {
		t.Fatalf("slice header rows=%d cols=%d maxAbs=%d Δ=%v, want rows=%d cols=%d maxAbs=%d Δ=%v",
			slice.Rows, slice.Cols, slice.MaxAbs, slice.Delta,
			direct.Rows, direct.Cols, direct.MaxAbs, direct.Delta)
	}
	for i := range slice.V {
		if slice.V[i] != direct.V[i] {
			t.Fatalf("slice V[%d] = %d, want %d", i, slice.V[i], direct.V[i])
		}
	}
}

// TestGEMMPreparedSizeMismatch covers the prepared-path operand checks.
func TestGEMMPreparedSizeMismatch(t *testing.T) {
	c := DefaultArray(8)
	prep := &PreparedOperand{Rows: 3, Cols: 2, V: make([]int64, 6), Delta: 1}
	if _, err := c.GEMMPrepared(make([]qub.Word, 5), qub.Registers{Bits: 8}, prep, 2, 2, nil); err == nil {
		t.Fatal("accepted x size mismatch")
	}
	if _, err := c.GEMMPrepared(make([]qub.Word, 4), qub.Registers{Bits: 8}, prep, 2, 2, nil); err == nil {
		t.Fatal("accepted operand row mismatch")
	}
}

func assertGEMMEqual(t *testing.T, name string, got, want *GEMMResult) {
	t.Helper()
	if got.MaxAbsAcc != want.MaxAbsAcc {
		t.Fatalf("%s: MaxAbsAcc %d, want %d", name, got.MaxAbsAcc, want.MaxAbsAcc)
	}
	for i := range want.Acc {
		if got.Acc[i] != want.Acc[i] {
			t.Fatalf("%s: Acc[%d] = %d, want %d", name, i, got.Acc[i], want.Acc[i])
		}
		if got.Out[i] != want.Out[i] {
			t.Fatalf("%s: Out[%d] = %#x, want %#x", name, i, got.Out[i], want.Out[i])
		}
	}
}
