// Package metriclabel is the fixture corpus for the metriclabel
// analyzer: runtime-built metric names, runtime-interpolated label
// values in exposition format strings, the conforming constant forms,
// and a documented //quq:label-ok suppression. The fixture test loads
// it under an import path containing "metrics" so the exposition rule
// is armed.
package metriclabel

import (
	"fmt"
	"io"
)

type Counter struct{ n int64 }

type Registry struct{ counters map[string]*Counter }

func (r *Registry) NewCounter(name string) *Counter {
	c := &Counter{}
	r.counters[name] = c
	return c
}

const requestsTotal = "quq_requests_total"

// constantName is the conforming form: the series set is fixed at
// compile time.
func constantName(r *Registry) *Counter {
	return r.NewCounter(requestsTotal)
}

// runtimeName mints one series per distinct shard string.
func runtimeName(r *Registry, shard string) *Counter {
	return r.NewCounter("quq_" + shard + "_total") // want `metric name passed to NewCounter is not a compile-time constant`
}

// runtimeLabel interpolates an unbounded label value into the
// exposition text.
func runtimeLabel(w io.Writer, shard string, v int64) {
	fmt.Fprintf(w, "quq_shard_total{shard=%q} %d\n", shard, v) // want `format string interpolates a label value at runtime`
}

// constantText writes fully constant exposition lines: no label
// interpolation, nothing to flag.
func constantText(w io.Writer, v int64) {
	fmt.Fprintf(w, "quq_requests_total %d\n", v)
}

// boundedLabel is the sanctioned shape: the interpolated value comes
// from a fixed three-element list, documented in place.
func boundedLabel(w io.Writer, v int64) {
	for _, q := range [...]float64{0.5, 0.9, 0.99} {
		//quq:label-ok quantile comes from the fixed three-element list above; domain is bounded
		fmt.Fprintf(w, "quq_latency{quantile=%g} %d\n", q, v)
	}
}
