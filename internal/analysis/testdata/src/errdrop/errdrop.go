// Package errdrop is the fixture corpus for the errdrop analyzer. Its
// import path is inside the module, so its own functions count as
// module-internal callees.
package errdrop

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func bareCall(path string, data []byte) {
	os.WriteFile(path, data, 0o644) // want `error return of os\.WriteFile discarded`
}

func blankAssign(path string) {
	_ = os.Remove(path) // want `error return of os\.Remove assigned to _`
}

func blankInMulti(path string) *os.File {
	f, _ := os.Open(path) // want `error return of os\.Open assigned to _`
	return f
}

func deferredClose(f *os.File) {
	defer f.Close() // want `error return of File\.Close discarded`
}

func handled(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // propagated: not flagged
}

func checked(path string) {
	if err := os.Remove(path); err != nil { // handled: not flagged
		panic(err)
	}
}

func builders(parts []string) string {
	var sb strings.Builder
	var bb bytes.Buffer
	for _, p := range parts {
		sb.WriteString(p) // strings.Builder errors are always nil: not flagged
		bb.WriteString(p) // bytes.Buffer likewise: not flagged
	}
	return sb.String() + bb.String()
}

func untracked() {
	fmt.Println("fmt is outside the io-bearing set") // not flagged
}

func decode(data []byte) (int, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("empty")
	}
	return int(data[0]), nil
}

func useDecode(data []byte) {
	decode(data) // want `error return of errdrop\.decode discarded`
}

func annotated(f *os.File) {
	//quq:errdrop-ok fixture: already on an error path; the close error is dominated
	f.Close()
}
