package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck polices critical sections. While a sync.Mutex or RWMutex is
// held, the goroutine must not block on anything scheduled by other
// goroutines — channel sends and receives, select without default,
// network or HTTP round trips, time.Sleep/clock sleeps, or calls named
// Submit or Wait — because every one of those turns the lock's O(ns)
// critical section into an unbounded convoy (and, for locks the blocked
// peer also needs, a deadlock). It also demands that every Lock acquired
// in a function is released on every return path, either by a matching
// Unlock before the return or by a defer.
//
// The analysis is intra-procedural and block-structured: held locks are
// tracked per lexical branch keyed by the receiver expression's source
// text, so `m.mu.Lock()` and `m.mu.Unlock()` pair up while two distinct
// mutexes stay independent. Function literals are separate scopes (they
// run on their own goroutine's schedule, not inline). Suppress with
// //quq:lock-ok <reason> where blocking under a lock is intended, e.g. a
// condition-variable wait.
var LockCheck = &Analyzer{
	Name:      "lockcheck",
	Doc:       "no blocking operations while a sync mutex is held; every Lock has an Unlock on all return paths",
	Directive: "lock-ok",
	Run:       runLockCheck,
}

// lockState tracks the mutexes held at a program point. Keys are the
// printed receiver expressions (e.g. "r.mu"); the value records whether
// the release is deferred (deferred releases keep the lock held for
// blocking purposes but satisfy the all-paths-unlock obligation).
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func runLockCheck(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		// Smoke mains hold no long-lived locks worth policing; the
		// library layers are the enforcement surface.
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lc := &lockChecker{pass: pass, fn: fn.Name.Name}
			lc.block(fn.Body, lockState{})
			// Function literals are independent critical-section scopes:
			// walk each one found anywhere in the body with a fresh state.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lc.block(lit.Body, lockState{})
				}
				return true
			})
		}
	}
}

type lockChecker struct {
	pass *Pass
	fn   string
}

// mutexMethod resolves a call to sync.Mutex/RWMutex Lock/Unlock (and the
// R-variants), returning the method name and the receiver expression's
// source text. ok is false for anything else.
func (lc *lockChecker) mutexMethod(call *ast.CallExpr) (method, recv string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := calleeFunc(lc.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return fn.Name(), types.ExprString(sel.X), true
	}
	return "", "", false
}

// block walks one statement list with the given held-lock state and
// returns the state at fallthrough (the end of the list without an early
// return). Early returns are checked for leaked locks at the return site.
func (lc *lockChecker) block(b *ast.BlockStmt, held lockState) lockState {
	if b == nil {
		return held
	}
	return lc.stmts(b.List, held)
}

func (lc *lockChecker) stmts(list []ast.Stmt, held lockState) lockState {
	for _, st := range list {
		held = lc.stmt(st, held)
	}
	return held
}

func (lc *lockChecker) stmt(st ast.Stmt, held lockState) lockState {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if m, recv, isMu := lc.mutexMethod(call); isMu {
				switch m {
				case "Lock", "RLock", "TryLock", "TryRLock":
					held = held.clone()
					held[recv] = false
				case "Unlock", "RUnlock":
					held = held.clone()
					delete(held, recv)
				}
				return held
			}
		}
		lc.checkBlocking(s.X, held)
	case *ast.DeferStmt:
		if m, recv, isMu := lc.mutexMethod(s.Call); isMu && (m == "Unlock" || m == "RUnlock") {
			if _, ok := held[recv]; ok {
				held = held.clone()
				held[recv] = true // released on return, still held for blocking purposes
			}
			return held
		}
		// Other deferred calls run at return time, outside the critical
		// section ordering we can reason about; skip them.
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lc.checkBlocking(e, held)
		}
		for recv, deferred := range held {
			if !deferred {
				lc.pass.Reportf(s.Pos(), "return while %s is locked in %s: missing %s.Unlock on this path", recv, lc.fn, recv)
			}
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			lc.reportBlocked(s.Pos(), "channel send", held)
		}
		lc.checkBlocking(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lc.checkBlocking(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = lc.stmt(s.Init, held)
		}
		lc.checkBlocking(s.Cond, held)
		lc.block(s.Body, held.clone())
		if s.Else != nil {
			lc.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = lc.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lc.checkBlocking(s.Cond, held)
		}
		lc.block(s.Body, held.clone())
	case *ast.RangeStmt:
		lc.checkBlocking(s.X, held)
		lc.block(s.Body, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = lc.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lc.stmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lc.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			lc.reportBlocked(s.Pos(), "select", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lc.stmts(cc.Body, held.clone())
			}
		}
	case *ast.BlockStmt:
		held = lc.block(s, held)
	case *ast.GoStmt:
		// The spawned goroutine runs under its own schedule; its body is
		// re-walked as a fresh scope by runLockCheck. Argument evaluation
		// happens here though.
		for _, a := range s.Call.Args {
			lc.checkBlocking(a, held)
		}
	case *ast.LabeledStmt:
		held = lc.stmt(s.Stmt, held)
	}
	return held
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// checkBlocking flags blocking expressions evaluated while locks are
// held: channel receives and calls into the blocking-call denylist.
func (lc *lockChecker) checkBlocking(e ast.Expr, held lockState) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, separate schedule
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				lc.reportBlocked(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if kind, ok := lc.blockingCall(x); ok {
				lc.reportBlocked(x.Pos(), kind, held)
			}
		}
		return true
	})
}

// blockingCall classifies a call that can block on other goroutines'
// progress: network dials and HTTP round trips, sleeps (including the
// chaos Clock seam), and any method named Submit or Wait (the batcher's
// enqueue and the standard rendezvous verbs).
func (lc *lockChecker) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(lc.pass.Info, call)
	if fn == nil {
		// Interface methods named Sleep/Wait/Submit still block; resolve
		// by selector name when the type checker gives us no concrete
		// *types.Func (indirect calls).
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Wait", "Submit", "Sleep":
				return "call to " + sel.Sel.Name, true
			}
		}
		return "", false
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	case pkg == "net" && (fn.Name() == "Dial" || fn.Name() == "DialTimeout" || fn.Name() == "Listen"):
		return "net." + fn.Name(), true
	case pkg == "net/http":
		if what, ok := httpRoundTripCall(fn); ok {
			return what, true
		}
	case fn.Name() == "Wait" || fn.Name() == "Submit" || fn.Name() == "Sleep":
		// sync.WaitGroup.Wait, sync.Cond.Wait, batcher Submit, clock
		// seams — all rendezvous points.
		return "call to " + fn.Name(), true
	}
	return "", false
}

// reportBlocked emits one diagnostic naming the held locks.
func (lc *lockChecker) reportBlocked(pos token.Pos, what string, held lockState) {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	// Deterministic order for multi-lock messages.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	lc.pass.Reportf(pos, "%s while holding %s in %s: blocking under a mutex convoys every other critical section", what, joinAnd(names), lc.fn)
}

func joinAnd(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	}
	out := names[0]
	for _, n := range names[1:] {
		out += " and " + n
	}
	return out
}
