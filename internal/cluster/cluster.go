// Package cluster is the membership subsystem for the quq-shard fleet:
// the source of truth for which workers are members, which are
// draining, and how many replicas each registry key keeps. Every
// topology mutation — join, leave, drain — bumps a monotonic epoch, so
// any party holding a copy of the ring (the shard-aware client library
// above all) can tell a stale view from a fresh one with a single
// integer compare instead of diffing member lists.
//
// The package deliberately owns no routing state and no I/O: the
// consistent-hash ring stays in internal/shard, and the Membership
// mutates it through the OnJoin/OnLeave callbacks while HTTP-level key
// handoff is injected via Handoff. That keeps the dependency arrow
// pointing one way (shard imports cluster, never the reverse) and makes
// the membership state machine testable with plain function values.
//
// Drain is the graceful departure: the member keeps serving while
// Handoff warms its keys' calibrations onto the post-departure owners
// (bounded by the caller's context and the handoff cap), and only then
// does the member leave the ring. An abrupt Leave skips the handoff —
// replication (Replicas > 1) is what keeps keys alive through that.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Membership errors.
var (
	// ErrNotMember is returned when leaving or draining an address that
	// is not on the roster.
	ErrNotMember = errors.New("cluster: not a member")
	// ErrDraining is returned when draining a member whose drain is
	// already in progress.
	ErrDraining = errors.New("cluster: drain already in progress")
)

// Config assembles a Membership.
type Config struct {
	// Replicas is the replication factor R: how many ring successors
	// hold each registry key's calibration (default 1, no replication).
	Replicas int
	// OnJoin mutates the routing index when an address becomes a member
	// (e.g. shard.Ring.Add). Called with the membership lock held; it
	// must not block.
	OnJoin func(addr string)
	// OnLeave is OnJoin's inverse (e.g. shard.Ring.Remove). Same
	// contract.
	OnLeave func(addr string)
	// Handoff re-homes the draining member's keys onto their
	// post-departure owners before the member leaves. It runs outside
	// the membership lock (it does HTTP round trips) and is bounded by
	// ctx; returning an error aborts the drain with the member intact.
	// May be nil: drain then degenerates to leave.
	Handoff func(ctx context.Context, addr string) (moved int, err error)
}

// memberState is the per-member roster entry.
type memberState struct {
	draining bool
}

// Membership tracks the fleet roster behind one mutex. All methods are
// safe for concurrent use.
type Membership struct {
	cfg Config

	mu      sync.Mutex
	epoch   uint64
	members map[string]*memberState
}

// New builds an empty membership. Replicas below 1 is treated as 1.
func New(cfg Config) *Membership {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	return &Membership{cfg: cfg, members: make(map[string]*memberState)}
}

// Replicas returns the replication factor R.
func (m *Membership) Replicas() int { return m.cfg.Replicas }

// Epoch returns the current membership epoch. The epoch starts at zero
// and increments on every effective topology change, so two views with
// equal epochs describe identical rosters.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Join adds an address to the roster, returning the resulting epoch and
// whether the roster changed. Joining an existing member is an
// idempotent no-op: the epoch does not move, so clients holding the
// current view are not forced through a spurious refresh.
func (m *Membership) Join(addr string) (epoch uint64, added bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[addr]; ok {
		return m.epoch, false
	}
	m.members[addr] = &memberState{}
	if m.cfg.OnJoin != nil {
		m.cfg.OnJoin(addr)
	}
	m.epoch++
	return m.epoch, true
}

// Leave removes an address abruptly — no handoff; surviving replicas
// (and, for unreplicated keys, recalibration on the successor) cover
// the departure. Returns ErrNotMember for an unknown address.
func (m *Membership) Leave(addr string) (epoch uint64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leaveLocked(addr)
}

func (m *Membership) leaveLocked(addr string) (uint64, error) {
	if _, ok := m.members[addr]; !ok {
		return m.epoch, fmt.Errorf("%w: %s", ErrNotMember, addr)
	}
	delete(m.members, addr)
	if m.cfg.OnLeave != nil {
		m.cfg.OnLeave(addr)
	}
	m.epoch++
	return m.epoch, nil
}

// Drain gracefully removes a member: mark it draining (it keeps
// serving), run the bounded key handoff, then leave. A failed handoff
// aborts the drain and the member stays, un-draining, on the roster —
// the caller can retry or fall back to an abrupt Leave. Concurrent
// drains of one address conflict (ErrDraining); drains of distinct
// addresses proceed independently.
func (m *Membership) Drain(ctx context.Context, addr string) (moved int, epoch uint64, err error) {
	m.mu.Lock()
	st, ok := m.members[addr]
	if !ok {
		epoch = m.epoch
		m.mu.Unlock()
		return 0, epoch, fmt.Errorf("%w: %s", ErrNotMember, addr)
	}
	if st.draining {
		epoch = m.epoch
		m.mu.Unlock()
		return 0, epoch, fmt.Errorf("%w: %s", ErrDraining, addr)
	}
	st.draining = true
	handoff := m.cfg.Handoff
	m.mu.Unlock()

	if handoff != nil {
		moved, err = handoff(ctx, addr)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		// The member survived the failed handoff; clear the flag so a
		// retry can run. It may have left concurrently, in which case
		// there is nothing to clear.
		if st, ok := m.members[addr]; ok {
			st.draining = false
		}
		return moved, m.epoch, fmt.Errorf("cluster: drain handoff for %s: %w", addr, err)
	}
	epoch, err = m.leaveLocked(addr)
	return moved, epoch, err
}

// Member describes one roster entry in a View.
type Member struct {
	Addr     string `json:"addr"`
	Draining bool   `json:"draining"`
}

// View is a consistent snapshot of the roster: the epoch and the
// members it numbers, sorted by address for deterministic rendering.
type View struct {
	Epoch    uint64   `json:"epoch"`
	Replicas int      `json:"replicas"`
	Members  []Member `json:"members"`
}

// View snapshots the roster.
func (m *Membership) View() View {
	m.mu.Lock()
	v := View{Epoch: m.epoch, Replicas: m.cfg.Replicas, Members: make([]Member, 0, len(m.members))}
	// Map order is irrelevant here: the snapshot is sorted below.
	for addr, st := range m.members {
		v.Members = append(v.Members, Member{Addr: addr, Draining: st.draining})
	}
	m.mu.Unlock()
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].Addr < v.Members[j].Addr })
	return v
}

// IsMember reports whether an address is on the roster.
func (m *Membership) IsMember(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.members[addr]
	return ok
}
