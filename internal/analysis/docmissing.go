package analysis

import (
	"go/ast"
	"strings"
)

// DocMissing enforces the repo's documentation contract: every package
// opens with a godoc package comment naming its role — for library
// packages one starting "Package <name> ..." (the godoc convention, and
// what ARCHITECTURE.md's inventory is generated against), for commands
// any package doc (idiomatically "Command <name> ..."). The check has no
// suppression directive: a package either documents itself or fails vet.
var DocMissing = &Analyzer{
	Name: "docmissing",
	Doc:  "every package must carry a package doc comment (library docs start \"Package <name>\")",
	Run:  runDocMissing,
}

func runDocMissing(pass *Pass) {
	if len(pass.Files) == 0 {
		return
	}
	var documented []*ast.File
	for _, f := range pass.Files {
		if f.Doc != nil {
			documented = append(documented, f)
		}
	}
	name := pass.Files[0].Name.Name

	if len(documented) == 0 {
		// Anchor the finding on the lexicographically first file so the
		// diagnostic position is stable regardless of load order.
		first := pass.Files[0]
		for _, f := range pass.Files[1:] {
			if pass.Fset.Position(f.Package).Filename < pass.Fset.Position(first.Package).Filename {
				first = f
			}
		}
		pass.Reportf(first.Package, "package %s has no package doc comment; document its paper section or serving role", name)
		return
	}
	if name == "main" {
		return
	}
	want := "Package " + name
	for _, f := range documented {
		text := strings.TrimSpace(f.Doc.Text())
		if text == want || strings.HasPrefix(text, want+" ") {
			return
		}
	}
	pass.Reportf(documented[0].Doc.Pos(), "package doc comment must start with %q (godoc convention)", want)
}
