package shard

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"

	"quq/internal/serve/metrics"
)

// handleMetrics renders the cluster view: the front-end's own
// instruments merged with every healthy backend's /metrics exposition.
// Scrapes fan out concurrently; merging is commutative sums and the
// final rendering is sorted by name, so the page is byte-deterministic
// for a given fleet state regardless of scrape arrival order.
func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	merged, err := f.aggregate(r.Context())
	if err != nil {
		f.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := merged.WriteText(w); err != nil {
		// The client hung up mid-scrape; nothing useful left to do.
		f.met.Failures.Inc()
	}
}

// aggregate scrapes and merges the fleet. A backend that fails to
// scrape is skipped (and counted): a flapping backend must not take the
// whole cluster view down with it. The quq_shard_stale_shards gauge in
// the merged page says how many admitted backends the view is missing,
// so a degraded aggregation is visibly degraded rather than silently
// undercounting the fleet.
func (f *Front) aggregate(ctx context.Context) (*metrics.Exposition, error) {
	f.met.Healthy.Set(int64(f.ring.HealthyCount()))

	backends := f.ring.Backends() // sorted by address
	// Refresh the per-backend inflight gauge so the merged page carries
	// this scrape round's load picture. Members that left were already
	// retired from the vec by onLeave.
	for _, b := range backends {
		f.met.Inflight.Set(b.Addr(), b.Inflight())
	}
	pages := make([]*metrics.Exposition, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			page, err := f.scrape(ctx, b)
			if err != nil {
				f.met.ScrapeErrors.Inc()
				return
			}
			pages[i] = page
		}(i, b)
	}
	wg.Wait()

	// Stamp the staleness gauge before rendering our own page so the
	// merged view carries this scrape round's value.
	var stale int64
	for i, b := range backends {
		if b.Healthy() && pages[i] == nil {
			stale++
		}
	}
	f.met.Stale.Set(stale)

	// Merge after the fan-in, in backend-address order. Merge is
	// commutative, so the order only matters for error attribution.
	merged := metrics.NewExposition()
	var own bytes.Buffer
	if err := f.met.Registry.WriteText(&own); err != nil {
		return nil, err
	}
	ownPage, err := metrics.ParseText(&own)
	if err != nil {
		return nil, err
	}
	if err := merged.Merge(ownPage); err != nil {
		return nil, err
	}
	for i, page := range pages {
		if page == nil {
			continue
		}
		if err := merged.Merge(page); err != nil {
			return nil, fmt.Errorf("merging %s: %w", backends[i].Addr(), err)
		}
	}
	return merged, nil
}

// scrape fetches and parses one backend's exposition.
func (f *Front) scrape(ctx context.Context, b *Backend) (*metrics.Exposition, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	page, err := metrics.ParseText(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/metrics: status %d", b.addr, resp.StatusCode)
	}
	return page, nil
}
