// Package quant implements the paper's primary contribution: quadruplet
// uniform quantization (QUQ), together with the symmetric uniform
// quantizer it generalizes.
//
// QUQ divides a tensor's value range into at most four subranges — fine
// negative (F−), fine positive (F+), coarse negative (C−) and coarse
// positive (C+) — each uniformly quantized with its own scale factor. All
// scale factors are constrained to power-of-two ratios of a shared base Δ
// (Eq. (4) in the paper), so an integer dot product only needs a shift per
// element (Eq. (5)). The partition and scale factors are chosen from
// calibration data by the progressive relaxation algorithm (PRA,
// Algorithms 1–2), implemented in pra.go.
//
// Terminology note: one "magnitude code" is the unsigned integer m such
// that the dequantized value is ±m·Δ_slot. A b-bit QUQ quantizer spends
// 2^(b−2) codes per subrange in Mode A, and 2^(b−1) codes on a subrange
// whose encoding space was merged with its twin (Modes B–D).
package quant

import (
	"fmt"
	"math"
	"quq/internal/check"
)

// Uniform applies the symmetric uniform quantizer U_b of Eq. (1):
// round to the nearest multiple of delta, clip to a signed b-bit integer,
// and return the dequantized value.
func Uniform(x, delta float64, bits int) float64 {
	return float64(UniformCode(x, delta, bits)) * delta
}

// UniformCode returns the signed integer code produced by U_b.
func UniformCode(x, delta float64, bits int) int64 {
	if delta <= 0 {
		panic(check.Invariant("quant: Uniform requires delta > 0"))
	}
	lo := -(int64(1) << (bits - 1))
	hi := (int64(1) << (bits - 1)) - 1
	q := saturatingRound(x / delta)
	if q < lo {
		q = lo
	}
	if q > hi {
		q = hi
	}
	return q
}

// saturatingRound rounds v to the nearest int64, saturating at the
// integer range instead of hitting Go's implementation-specific
// out-of-range float-to-int conversion (a tiny Δ against a huge value
// can push the quotient past 2^63, or to +Inf).
func saturatingRound(v float64) int64 {
	r := math.RoundToEven(v)
	if r >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	if r <= float64(math.MinInt64) {
		return math.MinInt64
	}
	return int64(r)
}

// UniformDelta returns the symmetric-uniform scale factor that covers
// [-absmax, absmax] with b bits: Δ = absmax / (2^(b−1) − 1). This is the
// BaseQ calibration rule used throughout the paper's comparisons.
func UniformDelta(absmax float64, bits int) float64 {
	if absmax < praMagFloor {
		// Degenerate tensor: magnitudes below the PRA floor carry no
		// usable range information and are treated as exact zeros
		// (see splitMagnitudes). Any positive delta quantizes them
		// exactly; 1 keeps downstream arithmetic well-behaved. The floor
		// also keeps the division below from underflowing the delta to
		// zero when absmax is subnormal.
		return 1
	}
	return absmax / float64((int64(1)<<(bits-1))-1)
}

// Slot identifies one of the four QUQ subranges.
type Slot int

// The four subrange slots, in the paper's F−/F+/C−/C+ order.
const (
	FNeg Slot = iota
	FPos
	CNeg
	CPos
	numSlots
)

// String returns the paper's name for the slot.
func (s Slot) String() string {
	switch s {
	case FNeg:
		return "F-"
	case FPos:
		return "F+"
	case CNeg:
		return "C-"
	case CPos:
		return "C+"
	}
	return fmt.Sprintf("Slot(%d)", int(s))
}

// Negative reports whether the slot quantizes negative values.
func (s Slot) Negative() bool { return s == FNeg || s == CNeg }

// Fine reports whether the slot is a fine subrange.
func (s Slot) Fine() bool { return s == FNeg || s == FPos }

// Mode is the QUQ operating mode of Figure 4.
type Mode int

const (
	// ModeA is the general form: four active subranges, one quarter of
	// the encoding space each.
	ModeA Mode = iota
	// ModeB serves one-signed tensors: both subranges on the empty side
	// are merged into the occupied side, doubling its resolution.
	ModeB
	// ModeC merges the two coarse subranges when one side of zero has no
	// significant tail; the tail-free side becomes uniform at its coarse
	// scale and the other side's coarse subrange doubles its resolution.
	ModeC
	// ModeD is the fallback: fine and coarse encoding spaces are merged
	// separately and assigned to the positive and negative sides, so each
	// side degenerates to uniform quantization.
	ModeD
)

func (m Mode) String() string {
	switch m {
	case ModeA:
		return "A"
	case ModeB:
		return "B"
	case ModeC:
		return "C"
	case ModeD:
		return "D"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// SlotParams describes one subrange of a QUQ quantizer.
type SlotParams struct {
	// Enabled reports whether the subrange participates; a disabled slot
	// corresponds to the paper's ∅ scale factor.
	Enabled bool
	// Delta is the subrange's scale factor.
	Delta float64
	// MaxMag is the largest magnitude code the subrange can store, so the
	// representable values are {0, ±Δ, …, ±MaxMag·Δ} on the slot's side
	// of zero. Per the paper's U_{b−1} convention, a negative subrange
	// with 2^(b−2) codes reaches magnitude 2^(b−2) while its positive
	// twin reaches 2^(b−2)−1 (two's complement asymmetry).
	MaxMag int64
}

// Params is a fully-specified b-bit QUQ quantizer: the four subranges plus
// the mode that determined them. Construct Params with PRA (the paper's
// calibration algorithm) or ParamsForUniform; hand-built values should be
// checked with Validate.
type Params struct {
	Bits  int
	Mode  Mode
	Slots [4]SlotParams
}

// Slot returns the parameters for s.
func (p *Params) Slot(s Slot) SlotParams { return p.Slots[s] }

// BaseDelta returns the shared base scale factor Δ of Eq. (4): the
// smallest enabled subrange scale factor.
func (p *Params) BaseDelta() float64 {
	base := math.Inf(1)
	for _, s := range p.Slots {
		if s.Enabled && s.Delta < base {
			base = s.Delta
		}
	}
	if math.IsInf(base, 1) {
		return 1
	}
	return base
}

// Shift returns log2(Δ_slot / Δ_base) for an enabled slot: the number of
// bits an element of that subrange is shifted left in the Eq. (5) dot
// product. The result is a small non-negative integer when Validate
// passes.
func (p *Params) Shift(s Slot) int {
	sl := p.Slots[s]
	if !sl.Enabled {
		return 0
	}
	return int(math.Round(math.Log2(sl.Delta / p.BaseDelta())))
}

// MaxCodeMag returns the largest pre-shifted integer magnitude any code
// of this quantizer can decode to: max over enabled slots of
// MaxMag << Shift(slot). Every fake-quantized value is m·BaseDelta() with
// |m| ≤ MaxCodeMag, which bounds integer-GEMM accumulators: a depth-k dot
// product of operands quantized with px and pw accumulates at most
// k·px.MaxCodeMag()·pw.MaxCodeMag() in absolute value.
func (p *Params) MaxCodeMag() int64 {
	var max int64
	for i, sl := range p.Slots {
		if !sl.Enabled {
			continue
		}
		if m := sl.MaxMag << uint(p.Shift(Slot(i))); m > max {
			max = m
		}
	}
	return max
}

// Validate checks the Eq. (4) invariant — every enabled scale factor is a
// non-negative power-of-two multiple of the base Δ — plus basic sanity of
// the slot layout. It returns nil for a usable quantizer.
func (p *Params) Validate() error {
	if p.Bits < 3 || p.Bits > 16 {
		return fmt.Errorf("quant: unsupported bit-width %d (want 3..16)", p.Bits)
	}
	anyEnabled := false
	base := p.BaseDelta()
	for i, sl := range p.Slots {
		if !sl.Enabled {
			continue
		}
		anyEnabled = true
		if sl.Delta <= 0 || math.IsNaN(sl.Delta) || math.IsInf(sl.Delta, 0) {
			return fmt.Errorf("quant: slot %v has invalid delta %v", Slot(i), sl.Delta)
		}
		if sl.MaxMag <= 0 {
			return fmt.Errorf("quant: slot %v has invalid MaxMag %d", Slot(i), sl.MaxMag)
		}
		ratio := sl.Delta / base
		k := math.Log2(ratio)
		if k < -1e-9 || math.Abs(k-math.Round(k)) > 1e-9 {
			return fmt.Errorf("quant: slot %v delta %v is not a power-of-two multiple of base %v (Eq. 4)", Slot(i), sl.Delta, base)
		}
	}
	if !anyEnabled {
		return fmt.Errorf("quant: no enabled subranges")
	}
	return nil
}

// Code is the quantization result for one element: the subrange it fell
// into and its magnitude code. The dequantized value is Dequantize().
type Code struct {
	Slot Slot
	Mag  int64
}

// Quantize maps x to its QUQ code per Eq. (3): fine subrange if the
// rounded magnitude is representable there, otherwise the coarse subrange
// on the same side of zero (clipping at its bound). Values on a side with
// no enabled subranges clip to zero.
func (p *Params) Quantize(x float64) Code {
	if x == 0 {
		return Code{Slot: p.zeroSlot(), Mag: 0}
	}
	var fine, coarse Slot
	if x > 0 {
		fine, coarse = FPos, CPos
	} else {
		fine, coarse = FNeg, CNeg
		x = -x
	}
	f, c := p.Slots[fine], p.Slots[coarse]
	if f.Enabled {
		mag := roundMag(x / f.Delta)
		if mag <= f.MaxMag || !c.Enabled {
			if mag > f.MaxMag {
				mag = f.MaxMag
			}
			return p.normalizeZero(Code{Slot: fine, Mag: mag})
		}
	}
	if c.Enabled {
		mag := roundMag(x / c.Delta)
		if mag > c.MaxMag {
			mag = c.MaxMag
		}
		return p.normalizeZero(Code{Slot: coarse, Mag: mag})
	}
	// No subrange on this side (Mode B tensor seeing a wrong-signed
	// value at inference time): clip to zero.
	return Code{Slot: p.zeroSlot(), Mag: 0}
}

// normalizeZero rewrites a zero-magnitude code onto the canonical zero
// slot, so that every representation of zero is the same code word. This
// matters for the QUB encoding: a merged negative space has no exact-zero
// word, while the canonical slot (a positive or both-signs slot whenever
// one is enabled) always does.
func (p *Params) normalizeZero(c Code) Code {
	if c.Mag != 0 {
		return c
	}
	return Code{Slot: p.zeroSlot(), Mag: 0}
}

// zeroSlot picks a slot to carry magnitude-0 codes: the first enabled
// fine slot, falling back to any enabled slot.
func (p *Params) zeroSlot() Slot {
	for _, s := range []Slot{FPos, FNeg, CPos, CNeg} {
		if p.Slots[s].Enabled {
			return s
		}
	}
	return FPos
}

func roundMag(v float64) int64 {
	return saturatingRound(v)
}

// two52 = 2^52, the magic constant of the add-subtract rounding trick.
const two52 = float64(1 << 52)

// roundMagFast rounds a non-negative, non-NaN quotient to the nearest
// integer, ties to even. For y < 2^52 the add-subtract sequence is exact
// round-to-nearest-even (the FP add rounds the real sum onto the ulp-1
// grid of [2^52, 2^53)), so it matches roundMag bit for bit. For y ≥ 2^52
// (including +Inf) it returns MaxInt64 where roundMag would return the
// exact integer; both exceed every representable MaxMag (≤ 2^15), so the
// downstream slot-selection and clipping comparisons are unaffected.
// Callers must route NaN through roundMag instead: int64(NaN) is
// implementation-defined and the slow path's quirk must be preserved.
func roundMagFast(y float64) int64 {
	if y < two52 {
		return int64((y + two52) - two52)
	}
	return math.MaxInt64
}

// Dequantize converts a code back to its real value.
func (p *Params) Dequantize(c Code) float64 {
	v := float64(c.Mag) * p.Slots[c.Slot].Delta
	if c.Slot.Negative() {
		return -v
	}
	return v
}

// Value quantizes x and immediately dequantizes it ("fake quantization"),
// which is how the accuracy experiments simulate QUQ inference.
func (p *Params) Value(x float64) float64 {
	return p.Dequantize(p.Quantize(x))
}

// QuantizeSlice fake-quantizes every element of xs into out (which may
// alias xs). It panics if the lengths differ.
//
// This is the per-forward hot loop (every activation site runs it), so it
// specializes Value: the slot parameters are hoisted out of the loop and
// the per-element branches operate on locals. The arithmetic — which Δ
// divides x, how the quotient rounds and clips, what multiplies back —
// is step-for-step the same as Quantize+Dequantize, so the results are
// bit-identical to Value; quant_test.go asserts this element-wise.
func (p *Params) QuantizeSlice(out, xs []float64) {
	if len(out) != len(xs) {
		panic(check.Invariant("quant: QuantizeSlice length mismatch"))
	}
	// Slot parameters hoisted into scalars so the per-element branches
	// never copy a SlotParams struct.
	fpE, fpD, fpM := p.Slots[FPos].Enabled, p.Slots[FPos].Delta, p.Slots[FPos].MaxMag
	cpE, cpD, cpM := p.Slots[CPos].Enabled, p.Slots[CPos].Delta, p.Slots[CPos].MaxMag
	fnE, fnD, fnM := p.Slots[FNeg].Enabled, p.Slots[FNeg].Delta, p.Slots[FNeg].MaxMag
	cnE, cnD, cnM := p.Slots[CNeg].Enabled, p.Slots[CNeg].Delta, p.Slots[CNeg].MaxMag
	// All zero-magnitude codes normalize onto the canonical zero slot,
	// whose dequantized value is −0.0 when that slot is negative.
	zeroVal := p.Dequantize(Code{Slot: p.zeroSlot(), Mag: 0})
	for i, x := range xs {
		if x > 0 {
			var mag int64
			var delta float64
			if fpE {
				mag = roundMagFast(x / fpD)
				if mag <= fpM || !cpE {
					if mag > fpM {
						mag = fpM
					}
					delta = fpD
					goto emitPos
				}
			}
			if !cpE {
				// No subrange on this side: clip to zero.
				out[i] = zeroVal
				continue
			}
			mag = roundMagFast(x / cpD)
			if mag > cpM {
				mag = cpM
			}
			delta = cpD
		emitPos:
			if mag == 0 {
				out[i] = zeroVal
				continue
			}
			out[i] = float64(mag) * delta
		} else if x < 0 {
			x = -x
			var mag int64
			var delta float64
			if fnE {
				mag = roundMagFast(x / fnD)
				if mag <= fnM || !cnE {
					if mag > fnM {
						mag = fnM
					}
					delta = fnD
					goto emitNeg
				}
			}
			if !cnE {
				out[i] = zeroVal
				continue
			}
			mag = roundMagFast(x / cnD)
			if mag > cnM {
				mag = cnM
			}
			delta = cnD
		emitNeg:
			if mag == 0 {
				out[i] = zeroVal
				continue
			}
			out[i] = -(float64(mag) * delta)
		} else if x == 0 {
			out[i] = zeroVal
		} else {
			// NaN: Quantize's `x > 0` is false, so NaN routes through
			// the negative slots (negated NaN stays NaN); replicate.
			var mag int64
			var delta float64
			if fnE {
				mag = roundMag(x / fnD)
				if mag <= fnM || !cnE {
					if mag > fnM {
						mag = fnM
					}
					delta = fnD
					goto emitNaNNeg
				}
			}
			if !cnE {
				out[i] = zeroVal
				continue
			}
			mag = roundMag(x / cnD)
			if mag > cnM {
				mag = cnM
			}
			delta = cnD
		emitNaNNeg:
			if mag == 0 {
				out[i] = zeroVal
				continue
			}
			out[i] = -(float64(mag) * delta)
		}
	}
}

// MSE returns the mean squared quantization error of p over xs, the metric
// of the paper's Table 1.
func (p *Params) MSE(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := x - p.Value(x)
		s += d * d
	}
	return s / float64(len(xs))
}

// UniformMSE returns the mean squared error of symmetric uniform b-bit
// quantization with the given delta over xs (the BaseQ row of Table 1).
func UniformMSE(xs []float64, delta float64, bits int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := x - Uniform(x, delta, bits)
		s += d * d
	}
	return s / float64(len(xs))
}

// ParamsForUniform builds the QUQ parameter set that reproduces symmetric
// uniform quantization exactly (the paper's observation that uniform
// quantization is the Δ_C− = Δ_F+ special case of Mode D). The returned
// quantizer has the same representable points as Uniform(·, delta, bits).
func ParamsForUniform(delta float64, bits int) *Params {
	if delta <= 0 {
		panic(check.Invariant("quant: ParamsForUniform requires delta > 0"))
	}
	half := int64(1) << (bits - 1)
	p := &Params{Bits: bits, Mode: ModeD}
	p.Slots[FPos] = SlotParams{Enabled: true, Delta: delta, MaxMag: half - 1}
	p.Slots[CNeg] = SlotParams{Enabled: true, Delta: delta, MaxMag: half}
	return p
}

// String summarizes the quantizer.
func (p *Params) String() string {
	s := fmt.Sprintf("QUQ{b=%d mode=%v", p.Bits, p.Mode)
	for i, sl := range p.Slots {
		if sl.Enabled {
			s += fmt.Sprintf(" %v:Δ=%.4g×%d", Slot(i), sl.Delta, sl.MaxMag)
		}
	}
	return s + "}"
}
