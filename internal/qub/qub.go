// Package qub implements the paper's quadruplet uniform byte (QUB)
// encoding: the hardware-facing representation of QUQ codes (§4.1).
//
// A b-bit QUB word stores, in its top bit, whether the value fell in a
// fine or coarse subrange; the remaining b−1 bits hold either a signed
// two's-complement code (when the space serves both signs) or an unsigned
// code (when the two subranges of a space were merged to one side of
// zero). Two per-tensor FC registers record, for the fine and the coarse
// space respectively, the merge status and the log2 ratios s of each
// subrange's scale factor to the shared base Δ.
//
// Decoding (Eq. (6)) turns a word into a signed integer D that fits in b
// bits plus a shift count n_sh, so that the represented value is
// (D << n_sh)·Δ — which is why a plain signed b-bit multiplier plus a
// small shifter suffices for any QUQ mode (Eq. (5)).
//
// One deliberate deviation from pure QUQ semantics: a merged *negative*
// space encodes magnitudes 1..2^(b−1) via the paper's sign-extension rule
// ({1, E_{b−2..0}} is a negative two's-complement number), so an exact
// zero in a non-positive tensor is not representable there and encodes as
// −Δ (one fine LSB). The fake-quantization path keeps exact zeros; the
// bit-exact path matches the hardware.
package qub

import (
	"fmt"
	"quq/internal/check"

	"quq/internal/quant"
)

// MaxShift is the largest subrange shift the FC register format can
// express: the paper allocates 3 bits per shift field.
const MaxShift = 7

// Word is an encoded QUB. Bit-widths up to 16 are supported; the paper
// evaluates 4, 6 and 8.
type Word uint16

// SpaceReg describes one encoding space (fine or coarse) of a tensor: the
// unpacked form of one FC register.
type SpaceReg struct {
	// Used reports whether any code words reference this space. An
	// unused space decodes nothing (e.g. the coarse space of a tensor
	// whose Mode B fallback needed only the fine space).
	Used bool
	// Both reports whether the space serves both signs (bit 7 of the
	// paper's register): its codes are then signed two's complement.
	Both bool
	// NegSide, meaningful when !Both, reports that the single occupied
	// side is negative (bit 6).
	NegSide bool
	// ShNeg and ShPos are log2 of the negative/positive subrange's scale
	// ratio to the base Δ (bits 5–3 and 2–0).
	ShNeg, ShPos uint8
}

// Pack serializes the register into the paper's 8-bit layout. It fails if
// a shift exceeds the 3-bit field.
func (s SpaceReg) Pack() (uint8, error) {
	if s.ShNeg > MaxShift || s.ShPos > MaxShift {
		return 0, fmt.Errorf("qub: shift (%d,%d) exceeds the 3-bit register field", s.ShNeg, s.ShPos)
	}
	var b uint8
	if s.Both {
		b |= 1 << 7
	}
	if s.NegSide {
		b |= 1 << 6
	}
	b |= (s.ShNeg & 7) << 3
	b |= s.ShPos & 7
	return b, nil
}

// UnpackSpace parses an 8-bit FC register. The Used flag is set: a packed
// register always describes a live space.
func UnpackSpace(b uint8) SpaceReg {
	return SpaceReg{
		Used:    true,
		Both:    b&(1<<7) != 0,
		NegSide: b&(1<<6) != 0,
		ShNeg:   (b >> 3) & 7,
		ShPos:   b & 7,
	}
}

// Registers is the per-tensor QUB metadata: the two FC registers plus the
// shared base scale factor and the bit-width.
type Registers struct {
	Bits      int
	BaseDelta float64
	F, C      SpaceReg
}

// RegistersFor derives the QUB registers from a calibrated QUQ parameter
// set. It fails if the parameters cannot be represented — a subrange
// shift beyond MaxShift, or slot code counts inconsistent with the word
// layout.
func RegistersFor(p *quant.Params) (Registers, error) {
	if err := p.Validate(); err != nil {
		return Registers{}, err
	}
	r := Registers{Bits: p.Bits, BaseDelta: p.BaseDelta()}
	var err error
	if r.F, err = spaceFor(p, quant.FNeg, quant.FPos); err != nil {
		return Registers{}, err
	}
	if r.C, err = spaceFor(p, quant.CNeg, quant.CPos); err != nil {
		return Registers{}, err
	}
	if !r.F.Used && !r.C.Used {
		return Registers{}, fmt.Errorf("qub: no enabled subranges")
	}
	return r, nil
}

func spaceFor(p *quant.Params, neg, pos quant.Slot) (SpaceReg, error) {
	sn, sp := p.Slot(neg), p.Slot(pos)
	var r SpaceReg
	switch {
	case !sn.Enabled && !sp.Enabled:
		return SpaceReg{}, nil
	case sn.Enabled && sp.Enabled:
		r = SpaceReg{Used: true, Both: true}
	case sn.Enabled:
		r = SpaceReg{Used: true, NegSide: true}
	default:
		r = SpaceReg{Used: true}
	}
	quarterNeg := int64(1) << (p.Bits - 2)
	halfNeg := int64(1) << (p.Bits - 1)
	if sn.Enabled {
		sh := p.Shift(neg)
		if sh > MaxShift {
			return SpaceReg{}, fmt.Errorf("qub: %v shift %d exceeds register range", neg, sh)
		}
		r.ShNeg = uint8(sh)
		limit := halfNeg
		if r.Both {
			limit = quarterNeg
		}
		if sn.MaxMag > limit {
			return SpaceReg{}, fmt.Errorf("qub: %v MaxMag %d exceeds layout limit %d", neg, sn.MaxMag, limit)
		}
	}
	if sp.Enabled {
		sh := p.Shift(pos)
		if sh > MaxShift {
			return SpaceReg{}, fmt.Errorf("qub: %v shift %d exceeds register range", pos, sh)
		}
		r.ShPos = uint8(sh)
		limit := halfNeg - 1
		if r.Both {
			limit = quarterNeg - 1
		}
		if sp.MaxMag > limit {
			return SpaceReg{}, fmt.Errorf("qub: %v MaxMag %d exceeds layout limit %d", pos, sp.MaxMag, limit)
		}
	}
	return r, nil
}

// Encode converts a quantization code into a QUB word under the given
// parameter set. The code must come from the same parameters.
func Encode(p *quant.Params, c quant.Code) Word {
	bits := p.Bits
	fineBit := Word(1) << (bits - 1)
	restMask := Word(1)<<(bits-1) - 1
	half := int64(1) << (bits - 1)

	var w Word
	if c.Slot.Fine() {
		w = fineBit
	}
	var both bool
	if c.Slot.Fine() {
		both = p.Slot(quant.FNeg).Enabled && p.Slot(quant.FPos).Enabled
	} else {
		both = p.Slot(quant.CNeg).Enabled && p.Slot(quant.CPos).Enabled
	}
	mag := c.Mag
	switch {
	case both && c.Slot.Negative():
		// Signed two's complement in b−1 bits: −mag.
		w |= Word(-mag) & restMask
	case both:
		w |= Word(mag) & restMask
	case c.Slot.Negative():
		// Merged negative space: {1, rest} is a (b)-bit negative
		// two's-complement value, so rest = 2^(b−1) − mag. An exact zero
		// is unrepresentable here and becomes −Δ (see package comment).
		if mag == 0 {
			mag = 1
		}
		w |= Word(half-mag) & restMask
	default:
		// Merged positive space: plain unsigned magnitude.
		w |= Word(mag) & restMask
	}
	return w
}

// Decoded is the output of the decoding unit: a signed integer that fits
// in the quantizer's bit-width and the number of bits to shift it left.
// The represented real value is float64(D<<Nsh)·Δ_base.
type Decoded struct {
	D   int32
	Nsh uint8
}

// Value returns the real value the decoded pair represents under base
// scale delta.
//
//quq:float-ok decode boundary: multiplying the integer (D, n_sh) pair by the base Δ is where values exit the integer pipeline
func (d Decoded) Value(delta float64) float64 {
	return float64(int64(d.D)<<d.Nsh) * delta
}

// Decode implements Eq. (6): split the word on its fine/coarse bit,
// interpret the remaining b−1 bits as signed or unsigned according to the
// space's register, and select the shift count by the subrange's sign.
func Decode(w Word, r Registers) Decoded {
	bits := r.Bits
	top := (w >> (bits - 1)) & 1
	rest := int64(w) & (int64(1)<<(bits-1) - 1)

	reg := r.C
	if top == 1 {
		reg = r.F
	}
	if reg.Both {
		// Sign-extend the (b−1)-bit two's-complement code.
		signBit := int64(1) << (bits - 2)
		v := rest
		if v&signBit != 0 {
			v -= int64(1) << (bits - 1)
		}
		nsh := reg.ShPos
		if v < 0 {
			nsh = reg.ShNeg
		}
		return Decoded{D: int32(v), Nsh: nsh}
	}
	if reg.NegSide {
		// {1, rest} as a b-bit two's-complement value: rest − 2^(b−1).
		return Decoded{D: int32(rest - int64(1)<<(bits-1)), Nsh: reg.ShNeg}
	}
	return Decoded{D: int32(rest), Nsh: reg.ShPos}
}

// EncodeValue quantizes x with p and returns its QUB word.
func EncodeValue(p *quant.Params, x float64) Word {
	return Encode(p, p.Quantize(x))
}

// EncodeTensor encodes every element of xs.
func EncodeTensor(p *quant.Params, xs []float64) []Word {
	out := make([]Word, len(xs))
	for i, x := range xs {
		out[i] = EncodeValue(p, x)
	}
	return out
}

// DecodeTensor decodes ws into real values under the registers.
func DecodeTensor(ws []Word, r Registers) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = Decode(w, r).Value(r.BaseDelta)
	}
	return out
}

// Dot computes the Eq. (5) integer dot product of two encoded vectors:
// Σ (Dx·Dw) << (nsh_x + nsh_w), exactly as the PE array accumulates it.
// The real dot product is the returned integer times Δx·Δw. It panics if
// the vectors' lengths differ.
func Dot(xs, ws []Word, rx, rw Registers) int64 {
	if len(xs) != len(ws) {
		panic(check.Invariant("qub: Dot length mismatch"))
	}
	var acc int64
	for i := range xs {
		dx := Decode(xs[i], rx)
		dw := Decode(ws[i], rw)
		acc += (int64(dx.D) * int64(dw.D)) << (dx.Nsh + dw.Nsh)
	}
	return acc
}
