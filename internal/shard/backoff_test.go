package shard

import (
	"testing"
	"time"

	"quq/internal/rng"
)

// TestRetryDelaysDeterministic pins the backoff schedule's contract:
// seed-determined, equal-jittered over a doubling base, and empty when
// retries are disabled.
func TestRetryDelaysDeterministic(t *testing.T) {
	base := 50 * time.Millisecond
	a := retryDelays(rng.New(7), base, 4)
	b := retryDelays(rng.New(7), base, 4)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("schedule lengths = %d, %d; want 4", len(a), len(b))
	}
	step := base
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < step/2 || a[i] >= step {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, a[i], step/2, step)
		}
		step *= 2
	}

	c := retryDelays(rng.New(8), base, 4)
	differs := false
	for i := range a {
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced the identical schedule")
	}

	if got := retryDelays(rng.New(7), base, 0); got != nil {
		t.Fatalf("retries=0 schedule = %v, want nil", got)
	}
	if got := retryDelays(rng.New(7), 0, 3); got != nil {
		t.Fatalf("base=0 schedule = %v, want nil", got)
	}
}
