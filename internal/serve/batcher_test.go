package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"quq/internal/data"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// batchModel builds one cheap quantized model for batcher tests.
func batchModel(t *testing.T) (*ptq.QuantizedModel, []*tensor.Tensor) {
	t.Helper()
	r := NewRegistry(testRegistryOptions(), nil)
	qm, _, err := r.Get(context.Background(), nanoKey("BaseQ", ptq.Partial))
	if err != nil {
		t.Fatal(err)
	}
	return qm, data.Images(vit.ViTNano, 8, 99)
}

// TestBatcherCoalesces submits items one by one under a generous linger
// and checks they dispatch as one batch, bit-identical to direct
// forwards.
func TestBatcherCoalesces(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	b := NewBatcher(BatcherOptions{MaxBatch: 8, Linger: 20 * time.Millisecond, QueueCap: 64}, nil, met)

	var items []*Item
	for _, img := range imgs[:4] {
		got, err := b.Submit(context.Background(), "k", qm, []*tensor.Tensor{img})
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, got...)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
		want := qm.Forward(imgs[i])
		for j, v := range it.Out.Data() {
			if v != want.Data()[j] {
				t.Fatalf("item %d differs from direct forward", i)
			}
		}
	}
	// All four items fit one linger window: a single dispatched batch.
	if n := met.BatchSize.Count(); n != 1 {
		t.Fatalf("dispatched %d batches, want 1", n)
	}
	if met.Images.Value() != 4 {
		t.Fatalf("images = %d, want 4", met.Images.Value())
	}
	if d := met.QueueDepth.Value(); d != 0 {
		t.Fatalf("queue depth after completion = %d, want 0", d)
	}
}

// TestBatcherMaxBatchFlush checks the size trigger: MaxBatch items
// dispatch immediately without waiting out the linger.
func TestBatcherMaxBatchFlush(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	// Hour-long linger: only the size trigger can flush.
	b := NewBatcher(BatcherOptions{MaxBatch: 2, Linger: time.Hour, QueueCap: 64}, nil, met)
	items, err := b.Submit(context.Background(), "k", qm, imgs[:4])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}
	if n := met.BatchSize.Count(); n != 2 {
		t.Fatalf("dispatched %d batches, want 2 (size-triggered)", n)
	}
}

// TestBatcherBackpressureAndDrain fills the queue under an hour-long
// linger, checks ErrQueueFull, then drains and checks the stuck items
// complete and late submits are refused.
func TestBatcherBackpressureAndDrain(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	b := NewBatcher(BatcherOptions{MaxBatch: 64, Linger: time.Hour, QueueCap: 3}, nil, met)

	items, err := b.Submit(context.Background(), "k", qm, imgs[:3])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(context.Background(), "k", qm, imgs[3:4]); err != ErrQueueFull {
		t.Fatalf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
	if met.Rejected.Value() != 1 {
		t.Fatalf("rejected = %d, want 1", met.Rejected.Value())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Err != nil || it.Out == nil {
			t.Fatalf("drained item incomplete: out=%v err=%v", it.Out, it.Err)
		}
	}
	if _, err := b.Submit(context.Background(), "k", qm, imgs[:1]); err != ErrDraining {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
}

// TestAwaitTimeout: Await must respect an expired context while workers
// finish in the background.
func TestAwaitTimeout(t *testing.T) {
	qm, imgs := batchModel(t)
	b := NewBatcher(BatcherOptions{MaxBatch: 64, Linger: time.Hour, QueueCap: 8}, nil, nil)
	items, err := b.Submit(context.Background(), "k", qm, imgs[:1])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Await(ctx, items); err != context.Canceled {
		t.Fatalf("Await on cancelled ctx = %v, want context.Canceled", err)
	}
	// Drain still completes the work.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := b.Drain(dctx); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherCancelledSubmitterFreesSlot is the abandoned-client
// regression: a submitter whose context expires while its items are
// still queued must release its QueueCap slots immediately, not hold
// them until dispatch.
func TestBatcherCancelledSubmitterFreesSlot(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	// Hour-long linger and a roomy MaxBatch: nothing dispatches on its
	// own, so the only way the slots come back is the abandonment path.
	b := NewBatcher(BatcherOptions{MaxBatch: 64, Linger: time.Hour, QueueCap: 2}, nil, met)

	ctx, cancel := context.WithCancel(context.Background())
	items, err := b.Submit(ctx, "k", qm, imgs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(context.Background(), "k", qm, imgs[2:3]); err != ErrQueueFull {
		t.Fatalf("queue not full before cancellation: err = %v", err)
	}
	cancel()
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := Await(wctx, items); err != nil {
		t.Fatalf("abandoned items never finished: %v", err)
	}
	for _, it := range items {
		if it.Err != context.Canceled || it.Out != nil {
			t.Fatalf("abandoned item: out=%v err=%v, want ctx error and no output", it.Out, it.Err)
		}
	}
	if got := met.Abandoned.Value(); got != 2 {
		t.Fatalf("abandoned = %d, want 2", got)
	}
	if d := met.QueueDepth.Value(); d != 0 {
		t.Fatalf("queue depth after abandonment = %d, want 0", d)
	}

	// The freed slots are usable again, and the batcher still works.
	items, err = b.Submit(context.Background(), "k", qm, imgs[3:5])
	if err != nil {
		t.Fatalf("submit after abandonment: %v", err)
	}
	if err := b.Drain(wctx); err != nil {
		t.Fatal(err)
	}
	if err := Await(wctx, items); err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Err != nil || it.Out == nil {
			t.Fatalf("post-abandonment item: out=%v err=%v", it.Out, it.Err)
		}
	}
}

// TestBatcherCancelledBeforeDispatchSkipsForward covers the second half
// of the cancellation seam: items already flushed to a worker when the
// context expires are finished with the context error before paying for
// the forward pass.
func TestBatcherCancelledBeforeDispatchSkipsForward(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	forwards := 0
	gate := make(chan struct{})
	b := NewBatcher(BatcherOptions{
		MaxBatch: 64, Linger: time.Hour, QueueCap: 8, Workers: 1,
		ForwardHook: func(string) { <-gate; forwards++ },
	}, nil, met)

	// The single worker slot serializes the batch: at most the first
	// item can enter the hook before cancellation; the ones behind it
	// re-check the (by then expired) context after getting their token.
	items, err := b.Submit(ctx, "k", qm, imgs[:3])
	if err != nil {
		t.Fatal(err)
	}
	b.flushIf("k", items[0].p)
	cancel()
	close(gate)
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := Await(wctx, items); err != nil {
		t.Fatal(err)
	}
	if err := b.Drain(wctx); err != nil {
		t.Fatal(err)
	}
	if forwards > 1 {
		t.Fatalf("%d forwards ran despite cancellation, want at most 1", forwards)
	}
	for _, it := range items[1:] {
		if it.Err != context.Canceled || it.Out != nil {
			t.Fatalf("cancelled dispatched item: out=%v err=%v", it.Out, it.Err)
		}
	}
}

// TestBatcherForwardHookPanicConverted: a panicking worker (the chaos
// layer's stand-in for a crashing forward pass) surfaces as a per-item
// error and leaves the batcher serviceable.
func TestBatcherForwardHookPanicConverted(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	first := true
	b := NewBatcher(BatcherOptions{
		MaxBatch: 1, Linger: time.Hour, QueueCap: 8,
		ForwardHook: func(key string) {
			if first {
				first = false
				panic("chaos: injected worker crash")
			}
		},
	}, nil, met)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	items, err := b.Submit(context.Background(), "k", qm, imgs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}
	if items[0].Err == nil || !strings.Contains(items[0].Err.Error(), "panicked") {
		t.Fatalf("panicking forward: err = %v, want a converted panic error", items[0].Err)
	}
	if met.Panics.Value() != 1 {
		t.Fatalf("panics = %d, want 1", met.Panics.Value())
	}

	// The pool token was released: the next item must still run.
	items, err = b.Submit(context.Background(), "k", qm, imgs[1:2])
	if err != nil {
		t.Fatal(err)
	}
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil || items[0].Out == nil {
		t.Fatalf("post-panic item: out=%v err=%v", items[0].Out, items[0].Err)
	}
}
