// Package vit implements the vision-transformer inference stack the QUQ
// paper evaluates on: ViT (Dosovitskiy et al.), DeiT (ViT plus a
// distillation token) and Swin (windowed attention with shifted windows
// and patch merging), together with the activation-tap machinery the PTQ
// pipeline uses to observe and rewrite every quantization point of the
// paper's Figure 1 data flow.
//
// The models here are *proxy-scale*: same architectures, reduced widths
// and depths (see DESIGN.md). Weights are either synthetic — Gaussian
// fan-in initialization plus the outlier-channel injection that gives
// trained ViTs their characteristic long-tailed activations — or loaded
// from a checkpoint trained by the nn package.
package vit

import "fmt"

// Variant selects the architecture family.
type Variant int

const (
	// VariantViT is the plain vision transformer with a class token.
	VariantViT Variant = iota
	// VariantDeiT adds DeiT's distillation token; at inference the class
	// and distillation head outputs are averaged.
	VariantDeiT
	// VariantSwin uses windowed attention with shifted windows and
	// patch-merging stages; classification uses global average pooling.
	VariantSwin
)

func (v Variant) String() string {
	switch v {
	case VariantViT:
		return "ViT"
	case VariantDeiT:
		return "DeiT"
	case VariantSwin:
		return "Swin"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Config describes a model. For ViT/DeiT variants the single-stage fields
// (Dim, Depth, Heads) apply; Swin uses the Stage* slices with Dim taken
// from StageDims[0].
type Config struct {
	Name      string
	Variant   Variant
	ImageSize int // square input, pixels per side
	PatchSize int // square patch side
	Channels  int // input channels
	Classes   int

	// ViT/DeiT geometry.
	Dim   int
	Depth int
	Heads int

	// MLPRatio is the hidden/dim ratio of the MLP blocks (4 in all the
	// paper's models).
	MLPRatio int

	// Registers is the number of high-norm register tokens (ViT/DeiT
	// variants only). Trained ViTs develop such attention-sink tokens
	// with large, input-independent activations concentrated in a subset
	// of channels; they set the outlier range of every residual-stream
	// tensor while carrying no classification content. RegisterScale is
	// their magnitude relative to the patch-embedding scale. Swin, which
	// has no global tokens, uses zero — matching its milder full-
	// quantization degradation in the paper's Table 3.
	Registers     int
	RegisterScale float64

	// Swin geometry: per-stage depths, dims and head counts, plus the
	// window side in tokens. Stages are separated by 2×2 patch merging.
	StageDepths []int
	StageDims   []int
	StageHeads  []int
	Window      int
}

// Tokens returns the sequence length seen by the transformer blocks
// (ViT/DeiT variants only; Swin's token count changes per stage).
func (c Config) Tokens() int {
	n := c.gridSide() * c.gridSide()
	switch c.Variant {
	case VariantViT:
		return n + 1 + c.Registers
	case VariantDeiT:
		return n + 2 + c.Registers
	}
	return n
}

func (c Config) gridSide() int { return c.ImageSize / c.PatchSize }

// PatchDim returns the flattened patch vector length.
func (c Config) PatchDim() int { return c.Channels * c.PatchSize * c.PatchSize }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ImageSize <= 0 || c.PatchSize <= 0 || c.ImageSize%c.PatchSize != 0 {
		return fmt.Errorf("vit: image %d not divisible into %d-pixel patches", c.ImageSize, c.PatchSize)
	}
	if c.Channels <= 0 || c.Classes <= 0 {
		return fmt.Errorf("vit: channels/classes must be positive")
	}
	if c.MLPRatio <= 0 {
		return fmt.Errorf("vit: MLPRatio must be positive")
	}
	switch c.Variant {
	case VariantViT, VariantDeiT:
		if c.Dim <= 0 || c.Depth <= 0 || c.Heads <= 0 || c.Dim%c.Heads != 0 {
			return fmt.Errorf("vit: bad geometry dim=%d depth=%d heads=%d", c.Dim, c.Depth, c.Heads)
		}
	case VariantSwin:
		if len(c.StageDepths) == 0 || len(c.StageDepths) != len(c.StageDims) || len(c.StageDims) != len(c.StageHeads) {
			return fmt.Errorf("vit: inconsistent Swin stage config")
		}
		side := c.gridSide()
		for i := range c.StageDepths {
			if c.StageDims[i]%c.StageHeads[i] != 0 {
				return fmt.Errorf("vit: stage %d dim %d not divisible by %d heads", i, c.StageDims[i], c.StageHeads[i])
			}
			if c.Window <= 0 || side%c.Window != 0 {
				return fmt.Errorf("vit: stage %d grid %d not divisible into %d-token windows", i, side, c.Window)
			}
			side /= 2
		}
	default:
		return fmt.Errorf("vit: unknown variant %v", c.Variant)
	}
	return nil
}

// The proxy model zoo: the six configurations of the paper's Tables 2–3
// scaled to single-machine size (DESIGN.md documents the scaling), plus
// the trainable ViT-Nano.
var (
	ViTSmall = Config{
		Name: "ViT-S", Variant: VariantViT,
		ImageSize: 32, PatchSize: 4, Channels: 3, Classes: 100,
		Dim: 96, Depth: 6, Heads: 3, MLPRatio: 4,
		Registers: 1, RegisterScale: 60,
	}
	ViTLarge = Config{
		Name: "ViT-L", Variant: VariantViT,
		ImageSize: 32, PatchSize: 4, Channels: 3, Classes: 100,
		Dim: 192, Depth: 12, Heads: 6, MLPRatio: 4,
		Registers: 1, RegisterScale: 60,
	}
	DeiTSmall = Config{
		Name: "DeiT-S", Variant: VariantDeiT,
		ImageSize: 32, PatchSize: 4, Channels: 3, Classes: 100,
		Dim: 96, Depth: 6, Heads: 3, MLPRatio: 4,
		Registers: 1, RegisterScale: 25,
	}
	DeiTBase = Config{
		Name: "DeiT-B", Variant: VariantDeiT,
		ImageSize: 32, PatchSize: 4, Channels: 3, Classes: 100,
		Dim: 144, Depth: 9, Heads: 6, MLPRatio: 4,
		Registers: 1, RegisterScale: 25,
	}
	SwinTiny = Config{
		Name: "Swin-T", Variant: VariantSwin,
		ImageSize: 32, PatchSize: 2, Channels: 3, Classes: 100,
		MLPRatio: 4, Window: 4,
		StageDepths: []int{2, 2, 2},
		StageDims:   []int{48, 96, 192},
		StageHeads:  []int{2, 4, 8},
	}
	SwinSmall = Config{
		Name: "Swin-S", Variant: VariantSwin,
		ImageSize: 32, PatchSize: 2, Channels: 3, Classes: 100,
		MLPRatio: 4, Window: 4,
		StageDepths: []int{2, 4, 2},
		StageDims:   []int{48, 96, 192},
		StageHeads:  []int{2, 4, 8},
	}
	ViTNano = Config{
		Name: "ViT-Nano", Variant: VariantViT,
		ImageSize: 16, PatchSize: 4, Channels: 1, Classes: 10,
		Dim: 48, Depth: 4, Heads: 3, MLPRatio: 4,
	}
)

// ZooConfigs lists the six paper-table configurations in table order.
var ZooConfigs = []Config{ViTSmall, ViTLarge, DeiTSmall, DeiTBase, SwinTiny, SwinSmall}
