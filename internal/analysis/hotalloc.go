package analysis

import (
	"go/ast"
	"go/types"
)

// tensorPkg is the kernel-layer package whose allocating constructors
// and methods hotalloc polices.
const tensorPkg = "quq/internal/tensor"

// qubPkg is the packed-word package whose slice type hotalloc polices
// in make calls: qub.Word scratch, like int64 scratch, must come from
// the arena or a caller-provided buffer in steady-state code.
const qubPkg = "quq/internal/qub"

// tensorAllocFuncs are package-level tensor constructors that allocate a
// fresh backing array on every call.
var tensorAllocFuncs = map[string]bool{
	"New":       true,
	"Zeros":     true,
	"FromSlice": true,
	"MatMul":    true,
	"MatMulT":   true,
}

// tensorAllocMethods are Tensor methods that allocate their result.
var tensorAllocMethods = map[string]bool{
	"Clone":     true,
	"Transpose": true,
	"Add":       true,
}

// hotpathToken marks a function as steady-state per-forward code. It is
// a declaration, not a suppression: the hotalloc analyzer enforces the
// claim it makes.
const hotpathToken = "hotpath"

// HotAlloc flags fresh tensor allocations — and make([]int64, ...) /
// make([]qub.Word, ...) scratch slices — inside functions whose doc
// comment carries a //quq:hotpath directive. Hot functions run once per
// forward pass (or per GEMM); their scratch must come from an Arena or a
// caller-provided destination so the steady state allocates nothing —
// that is the claim the //quq:hotpath marker makes, and this check keeps
// the marker honest. Arena.New/NewUninit/Int64 are the sanctioned
// scratch paths and are not flagged. A deliberate allocation (e.g. a
// tensor that escapes to a tap, or a slice retained in a resident
// operand) carries //quq:hotalloc-ok with its justification.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "functions marked //quq:hotpath must not allocate tensors or integer scratch slices (arena scratch or destination passing only)",
	Directive: "hotalloc-ok",
	Run:       runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, hotpathToken) {
				continue
			}
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
						if elem := hotMakeElem(pass.Info.TypeOf(call)); elem != "" {
							pass.Reportf(call.Pos(), "integer scratch allocation make(%s) in //quq:hotpath function %s (use arena Int64 scratch or a caller-provided buffer)", elem, name)
						}
						return true
					}
				}
				callee := calleeFunc(pass.Info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != tensorPkg {
					return true
				}
				sig, ok := callee.Type().(*types.Signature)
				if !ok {
					return true
				}
				if sig.Recv() == nil {
					if tensorAllocFuncs[callee.Name()] {
						pass.Reportf(call.Pos(), "tensor allocation tensor.%s in //quq:hotpath function %s (use arena scratch or a destination-passing kernel)", callee.Name(), name)
					}
				} else if recvNamed(sig.Recv().Type()) == "Tensor" && tensorAllocMethods[callee.Name()] {
					pass.Reportf(call.Pos(), "tensor allocation Tensor.%s in //quq:hotpath function %s (use arena scratch or a destination-passing kernel)", callee.Name(), name)
				}
				return true
			})
		}
	}
}

// hasDirective reports whether the comment group contains a
// //quq:<token> directive.
func hasDirective(doc *ast.CommentGroup, token string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c.Text); ok && d.token == token {
			return true
		}
	}
	return false
}

// hotMakeElem classifies the result type of a make call hotalloc
// polices: slices of int64 (GEMM accumulators) and of qub.Word (packed
// quadruplet codes) are the integer hot path's two scratch currencies,
// and both have pooled or caller-provided equivalents. Any other make
// is outside this analyzer's remit.
func hotMakeElem(t types.Type) string {
	s, ok := t.(*types.Slice)
	if !ok {
		return ""
	}
	switch e := s.Elem().(type) {
	case *types.Basic:
		if e.Kind() == types.Int64 {
			return "[]int64"
		}
	case *types.Named:
		if e.Obj().Name() == "Word" && e.Obj().Pkg() != nil && e.Obj().Pkg().Path() == qubPkg {
			return "[]qub.Word"
		}
	}
	return ""
}

// recvNamed returns the name of a method receiver's named type,
// dereferencing one pointer level.
func recvNamed(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return n.Obj().Name()
}
