package docmissingok

// Extra lives in a docless file; doc.go documents the package.
func Extra() int { return 5 }
