// Kernel-layer benchmarks: GEMM throughput of the tiled kernels against
// the scalar reference across proxy-scale shapes, plus the end-to-end
// quantized forward before and after the kernel layer. Results land in
// artifacts/BENCH_kernels.json.
//
// The "before" side is measured in the same run as the "after" side: a
// line-for-line replica of the pre-kernel-layer forward (scalar
// zero-skip GEMMs, strided per-head attention loops, an allocation per
// intermediate, Clone + per-element Value at every quantizer site) lives
// below in test code. Measuring both sides back to back makes the
// speedup ratio immune to machine-load drift between sessions, which on
// this single-core reproduction is far larger than the benchmark
// variance.
package quq_test

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"quq/internal/data"
	"quq/internal/mathx"
	"quq/internal/ptq"
	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// kernelShapes are the GEMM shapes of one ViT-Nano block (QKV,
// per-head attention, MLP) plus a larger proxy for the tile interior.
var kernelShapes = []struct {
	Name    string
	M, K, N int
}{
	{"qkv", 17, 48, 144},
	{"attn_scores", 17, 16, 17},
	{"attn_ctx", 17, 17, 16},
	{"mlp_fc1", 17, 48, 192},
	{"mlp_fc2", 17, 192, 48},
	{"proxy", 96, 384, 96},
}

// benchQuantizedModel builds the ViT-Nano quantized model used by the
// forward benchmarks and the alloc-budget test.
func benchQuantizedModel(tb testing.TB) (*ptq.QuantizedModel, *tensor.Tensor) {
	tb.Helper()
	m := vit.New(vit.ViTNano, 1)
	calib := data.CalibrationSet(vit.ViTNano, 4, 3)
	qm, err := ptq.Quantize(m, ptq.NewQUQ(), ptq.CalibOptions{Bits: 6, Regime: ptq.Full, Images: calib})
	if err != nil {
		tb.Fatal(err)
	}
	return qm, data.Images(vit.ViTNano, 1, 2)[0]
}

// --- pre-PR forward replica ---
//
// The functions below are a line-for-line copy of the forward path as it
// existed before the kernel layer: Linear.Apply was an allocating scalar
// i-k-j GEMM with a zero-skip plus a separate AddRowVector pass,
// attention ran strided per-head dot-product loops, and the activation
// quantizer cloned each tensor and called Params.Value per element. They
// are the timing baseline and the bit-identity oracle for the end-to-end
// benchmark.

// refTap replays Tap.apply's nil/replace semantics.
func refTap(tap vit.Tap, site vit.Site, x *tensor.Tensor) *tensor.Tensor {
	if tap == nil {
		return x
	}
	if y := tap(site, x); y != nil {
		return y
	}
	return x
}

// refLinearApply is the pre-kernel-layer Linear.Apply.
func refLinearApply(l *vit.Linear, in *tensor.Tensor) *tensor.Tensor {
	m, k := in.Dim(0), in.Dim(1)
	out := tensor.New(m, l.Out())
	for i := 0; i < m; i++ {
		arow := in.Row(i)
		orow := out.Row(i)
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := l.W.Row(kk)
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out.AddRowVector(l.B)
}

// refBlockForward is the pre-kernel-layer Block.Forward, taps included.
func refBlockForward(b *vit.Block, x *tensor.Tensor, nSeq, blk int, tap vit.Tap) *tensor.Tensor {
	dim := x.Dim(1)
	s := x.Dim(0)
	t := s / nSeq
	heads := b.Heads
	dh := dim / heads
	scale := 1 / math.Sqrt(float64(dh))

	h := b.LN1.Apply(x)
	h = refTap(tap, vit.Site{Block: blk, Name: "ln1.out", Kind: vit.KindGEMMIn}, h)
	qkvOut := refLinearApply(b.QKV, h)

	q, k, v := tensor.New(s, dim), tensor.New(s, dim), tensor.New(s, dim)
	for r := 0; r < s; r++ {
		row := qkvOut.Row(r)
		copy(q.Row(r), row[:dim])
		copy(k.Row(r), row[dim:2*dim])
		copy(v.Row(r), row[2*dim:])
	}
	q = refTap(tap, vit.Site{Block: blk, Name: "attn.q", Kind: vit.KindGEMMIn}, q)
	k = refTap(tap, vit.Site{Block: blk, Name: "attn.k", Kind: vit.KindGEMMIn}, k)
	v = refTap(tap, vit.Site{Block: blk, Name: "attn.v", Kind: vit.KindGEMMIn}, v)

	scores := tensor.New(nSeq*heads*t, t)
	for sq := 0; sq < nSeq; sq++ {
		for hd := 0; hd < heads; hd++ {
			for i := 0; i < t; i++ {
				qrow := q.Row(sq*t + i)[hd*dh : (hd+1)*dh]
				srow := scores.Row((sq*heads+hd)*t + i)
				for j := 0; j < t; j++ {
					krow := k.Row(sq*t + j)[hd*dh : (hd+1)*dh]
					var dot float64
					for e := range qrow {
						dot += qrow[e] * krow[e]
					}
					srow[j] = dot * scale
				}
			}
		}
	}
	scores = refTap(tap, vit.Site{Block: blk, Name: "attn.softmax_in", Kind: vit.KindActivation}, scores)
	for r := 0; r < scores.Dim(0); r++ {
		mathx.SoftmaxInPlace(scores.Row(r))
	}
	scores = refTap(tap, vit.Site{Block: blk, Name: "attn.softmax_out", Kind: vit.KindGEMMIn}, scores)

	ctx := tensor.New(s, dim)
	for sq := 0; sq < nSeq; sq++ {
		for hd := 0; hd < heads; hd++ {
			for i := 0; i < t; i++ {
				prow := scores.Row((sq*heads+hd)*t + i)
				crow := ctx.Row(sq*t + i)[hd*dh : (hd+1)*dh]
				for j := 0; j < t; j++ {
					p := prow[j]
					if p == 0 {
						continue
					}
					vrow := v.Row(sq*t + j)[hd*dh : (hd+1)*dh]
					for e := range crow {
						crow[e] += p * vrow[e]
					}
				}
			}
		}
	}
	ctx = refTap(tap, vit.Site{Block: blk, Name: "attn.proj_in", Kind: vit.KindGEMMIn}, ctx)
	o := refLinearApply(b.Proj, ctx)
	o = refTap(tap, vit.Site{Block: blk, Name: "attn.proj_out", Kind: vit.KindActivation}, o)

	x = x.Add(o)
	x = refTap(tap, vit.Site{Block: blk, Name: "resid1.out", Kind: vit.KindActivation}, x)

	h = b.LN2.Apply(x)
	h = refTap(tap, vit.Site{Block: blk, Name: "ln2.out", Kind: vit.KindGEMMIn}, h)
	h = refLinearApply(b.FC1, h)
	h = refTap(tap, vit.Site{Block: blk, Name: "mlp.gelu_in", Kind: vit.KindActivation}, h)
	h.Apply(mathx.Gelu)
	h = refTap(tap, vit.Site{Block: blk, Name: "mlp.gelu_out", Kind: vit.KindGEMMIn}, h)
	h = refLinearApply(b.FC2, h)
	h = refTap(tap, vit.Site{Block: blk, Name: "mlp.fc2_out", Kind: vit.KindActivation}, h)

	x = x.Add(h)
	x = refTap(tap, vit.Site{Block: blk, Name: "resid2.out", Kind: vit.KindActivation}, x)
	return x
}

// refModelForward is the pre-kernel-layer ViT.Forward (ViT/DeiT variant
// without distillation or register tokens — the ViT-Nano shape the
// benchmark runs).
func refModelForward(tb testing.TB, m *vit.ViT, img *tensor.Tensor, tap vit.Tap) *tensor.Tensor {
	tb.Helper()
	if m.Dist != nil || m.Reg != nil {
		tb.Fatal("pre-PR replica covers the plain ViT token layout only")
	}
	cfg := m.Config()
	patches := vit.Patchify(img, cfg.PatchSize)
	patches = refTap(tap, vit.Site{Block: -1, Name: "patch.in", Kind: vit.KindGEMMIn}, patches)
	emb := refLinearApply(m.Patch, patches)

	tokens := tensor.New(emb.Dim(0)+1, cfg.Dim)
	copy(tokens.Row(0), m.Cls)
	for r := 0; r < emb.Dim(0); r++ {
		copy(tokens.Row(r+1), emb.Row(r))
	}
	tokens.AddInPlace(m.Pos)
	x := refTap(tap, vit.Site{Block: -1, Name: "embed.out", Kind: vit.KindActivation}, tokens)

	for i, b := range m.Blocks {
		x = refBlockForward(b, x, 1, i, tap)
	}
	x = m.Final.Apply(x)
	x = refTap(tap, vit.Site{Block: -1, Name: "head.in", Kind: vit.KindGEMMIn}, x)

	cls := tensor.New(1, cfg.Dim)
	copy(cls.Row(0), x.Row(0))
	return refLinearApply(m.Head, cls).Reshape(cfg.Classes)
}

// preprForward replays the full pre-kernel-layer quantized forward bit
// for bit: the replica model forward above, with the old
// activation-quantizer shape (Clone, then a per-element Params.Value
// loop) at every calibrated site.
func preprForward(tb testing.TB, qm *ptq.QuantizedModel, img *tensor.Tensor) *tensor.Tensor {
	tb.Helper()
	m, ok := qm.Model.(*vit.ViT)
	if !ok {
		tb.Fatalf("pre-PR replica needs *vit.ViT, got %T", qm.Model)
	}
	tap := func(site vit.Site, x *tensor.Tensor) *tensor.Tensor {
		tq, ok := qm.Acts[site.Key()]
		if !ok {
			return x
		}
		p := tq.(ptq.QUQTensorQuantizer).Params
		out := x.Clone()
		d := out.Data()
		for i, v := range d {
			d[i] = p.Value(v)
		}
		return out
	}
	return refModelForward(tb, m, img, tap)
}

// measureForwardPaired times the pre-PR replica and the optimized
// forward interleaved: each round runs a burst of both, and the order
// within the round alternates, so slow machine-load drift contributes
// equally to both sums and cancels out of the ratio. On this shared
// single-core box the drift between two sequentially-run benchmarks is
// far larger than the difference being measured, which makes the usual
// run-A-then-run-B structure meaningless.
func measureForwardPaired(tb testing.TB, qm *ptq.QuantizedModel, img *tensor.Tensor, rounds, opsPerRound int) (preprNs, optNs float64) {
	tb.Helper()
	// Warm both paths (arena, pack pools, branch predictors).
	preprForward(tb, qm, img)
	qm.Forward(img)
	var tPre, tOpt time.Duration
	for r := 0; r < rounds; r++ {
		runPre := func() {
			t0 := time.Now()
			for i := 0; i < opsPerRound; i++ {
				preprForward(tb, qm, img)
			}
			tPre += time.Since(t0)
		}
		runOpt := func() {
			t0 := time.Now()
			for i := 0; i < opsPerRound; i++ {
				qm.Forward(img)
			}
			tOpt += time.Since(t0)
		}
		if r%2 == 0 {
			runPre()
			runOpt()
		} else {
			runOpt()
			runPre()
		}
	}
	n := float64(rounds * opsPerRound)
	return float64(tPre.Nanoseconds()) / n, float64(tOpt.Nanoseconds()) / n
}

// BenchmarkKernels measures the tiled kernels against the scalar
// reference — per-shape GEMM throughput and the end-to-end quantized
// forward — and records the speedups in artifacts/BENCH_kernels.json.
func BenchmarkKernels(b *testing.B) {
	type shapeResult struct {
		Shape      string  `json:"shape"`
		M          int     `json:"m"`
		K          int     `json:"k"`
		N          int     `json:"n"`
		NaiveNs    float64 `json:"naive_ns_per_op"`
		TiledNs    float64 `json:"tiled_ns_per_op"`
		TiledGFLOP float64 `json:"tiled_gflop_per_sec"`
		Speedup    float64 `json:"speedup"`
	}
	results := make([]shapeResult, len(kernelShapes))
	src := rng.New(2024)
	for si, s := range kernelShapes {
		x := tensor.New(s.M, s.K)
		w := tensor.New(s.K, s.N)
		for i := range x.Data() {
			x.Data()[i] = src.Norm()
		}
		for i := range w.Data() {
			w.Data()[i] = src.Norm()
		}
		dst := tensor.New(s.M, s.N)
		res := &results[si]
		*res = shapeResult{Shape: s.Name, M: s.M, K: s.K, N: s.N}
		b.Run("gemm/"+s.Name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulRef(x, w)
			}
			res.NaiveNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		b.Run("gemm/"+s.Name+"/tiled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(dst, x, w)
			}
			res.TiledNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		if res.TiledNs > 0 {
			res.TiledGFLOP = float64(2*s.M*s.K*s.N) / res.TiledNs
		}
		if res.NaiveNs > 0 && res.TiledNs > 0 {
			res.Speedup = res.NaiveNs / res.TiledNs
		}
	}

	qm, img := benchQuantizedModel(b)
	// The optimized path must reproduce the pre-kernel-layer logits bit
	// for bit before any timing is worth recording.
	want := preprForward(b, qm, img)
	got := qm.Forward(img)
	identical := true
	for i, w := range want.Data() {
		if math.Float64bits(got.Data()[i]) != math.Float64bits(w) {
			identical = false
			b.Errorf("logit %d: optimized %v, pre-PR reference %v", i, got.Data()[i], w)
		}
	}

	preprNs, optNs := measureForwardPaired(b, qm, img, 12, 3)
	b.Run("forward/paired", func(b *testing.B) {
		// The interleaved measurement already ran; surface its numbers in
		// the standard benchmark output. The b.N loop only keeps the
		// framework's timing sane for the reported row.
		for i := 0; i < b.N; i++ {
			qm.Forward(img)
		}
		b.ReportMetric(preprNs, "prepr-ns/fwd")
		b.ReportMetric(optNs, "optimized-ns/fwd")
		b.ReportMetric(preprNs/optNs, "speedup")
	})
	allocs := testing.AllocsPerRun(5, func() { qm.Forward(img) })

	artifact := struct {
		Note               string        `json:"note"`
		Workers            int           `json:"intra_op_workers"`
		GEMM               []shapeResult `json:"gemm"`
		ForwardPrePRNs     float64       `json:"forward_prepr_ns_per_op"`
		ForwardOptimizedNs float64       `json:"forward_optimized_ns_per_op"`
		ForwardSpeedup     float64       `json:"forward_speedup"`
		ForwardAllocsPerOp float64       `json:"forward_allocs_per_op"`
		LogitsBitIdentical bool          `json:"logits_bit_identical"`
	}{
		Note: "pre-PR side replayed in the same run by a line-for-line replica of the " +
			"pre-kernel-layer forward, so the speedup ratio is immune to machine-load drift",
		Workers:            tensor.IntraOpWorkers(),
		GEMM:               results,
		ForwardPrePRNs:     preprNs,
		ForwardOptimizedNs: optNs,
		ForwardSpeedup:     preprNs / optNs,
		ForwardAllocsPerOp: allocs,
		LogitsBitIdentical: identical,
	}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("artifacts", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("artifacts", "BENCH_kernels.json"), append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("forward: pre-PR %.0f ns, optimized %.0f ns (%.2fx), %.0f allocs/op, bit-identical=%v",
		preprNs, optNs, preprNs/optNs, allocs, identical)
}

// TestForwardLogitsMatchPrePR asserts — independently of the benchmark —
// that the kernel-layer forward reproduces the pre-kernel-layer logits
// bit for bit, serial and with the intra-op budget raised.
func TestForwardLogitsMatchPrePR(t *testing.T) {
	qm, img := benchQuantizedModel(t)
	want := preprForward(t, qm, img)
	check := func(label string) {
		t.Helper()
		got := qm.Forward(img)
		for i, w := range want.Data() {
			if math.Float64bits(got.Data()[i]) != math.Float64bits(w) {
				t.Fatalf("%s: logit %d = %v, pre-PR reference %v", label, i, got.Data()[i], w)
			}
		}
	}
	check("serial")
	tensor.SetIntraOpWorkers(4)
	t.Cleanup(func() { tensor.SetIntraOpWorkers(1) })
	check("parallel")
}

// forwardAllocBudget is the steady-state allocation ceiling for one
// quantized ViT-Nano forward. Measured: 797 allocs/op with the kernel
// layer (783 before it — the arena and destination-passing kernels pay
// for the pooling headers they add). The ceiling leaves headroom for
// compiler-version jitter while still catching a lost arena (which
// costs hundreds of allocations per forward).
const forwardAllocBudget = 860

// TestForwardAllocBudget fails if the steady-state quantized forward
// starts allocating above the recorded budget — the cheap canary for
// "someone dropped tensor reuse on the hot path".
func TestForwardAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool reuse; allocs/op is not meaningful")
	}
	qm, img := benchQuantizedModel(t)
	qm.Forward(img) // warm the arena and pack pools
	allocs := testing.AllocsPerRun(5, func() { qm.Forward(img) })
	if allocs > forwardAllocBudget {
		t.Fatalf("steady-state forward allocates %.0f/op, budget %d", allocs, forwardAllocBudget)
	}
}
