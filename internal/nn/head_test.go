package nn

import (
	"testing"

	"quq/internal/data"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

func TestFitHeadLearnsPatternTask(t *testing.T) {
	cfg := vit.ViTNano
	m := vit.New(cfg, 5)
	train := data.PatternSamples(cfg.Channels, cfg.ImageSize, 120, 6)
	acc := FitHead(m, train, HeadFitOptions{Seed: 5})
	if acc < 0.9 {
		t.Fatalf("training accuracy %v, want >= 0.9 (features should be separable)", acc)
	}

	// Generalization: the fitted head must beat chance by a wide margin
	// on held-out samples.
	test := data.PatternSamples(cfg.Channels, cfg.ImageSize, 100, 777)
	images := make([]*tensor.Tensor, len(test))
	labels := make([]int, len(test))
	for i, s := range test {
		images[i] = s.Image
		labels[i] = s.Label
	}
	testAcc := ptq.Accuracy(ptq.ModelClassifier{M: m}, images, labels)
	if testAcc < 0.6 {
		t.Fatalf("test accuracy %v, want >= 0.6 (chance is 0.1)", testAcc)
	}
}

func TestFitHeadOnlyTouchesHead(t *testing.T) {
	cfg := vit.ViTNano
	m := vit.New(cfg, 7)
	var before [][]float64
	m.Params(func(name string, d []float64) {
		if name != "head.w" && name != "head.b" {
			before = append(before, append([]float64(nil), d...))
		}
	})
	FitHead(m, data.PatternSamples(cfg.Channels, cfg.ImageSize, 40, 8), HeadFitOptions{Epochs: 5})
	i := 0
	m.Params(func(name string, d []float64) {
		if name == "head.w" || name == "head.b" {
			return
		}
		for j, v := range d {
			if v != before[i][j] {
				t.Fatalf("FitHead modified backbone parameter %s", name)
			}
		}
		i++
	})
}

func TestFitHeadDeterministic(t *testing.T) {
	cfg := vit.ViTNano
	train := data.PatternSamples(cfg.Channels, cfg.ImageSize, 40, 9)
	a := vit.New(cfg, 10)
	b := vit.New(cfg, 10)
	accA := FitHead(a, train, HeadFitOptions{Epochs: 20, Seed: 1})
	accB := FitHead(b, train, HeadFitOptions{Epochs: 20, Seed: 1})
	if accA != accB {
		t.Fatalf("FitHead not deterministic: %v vs %v", accA, accB)
	}
	img := train[0].Image
	la := a.Forward(img, vit.ForwardOpts{})
	lb := b.Forward(img, vit.ForwardOpts{})
	if tensor.MSE(la, lb) != 0 {
		t.Fatal("fitted models disagree")
	}
}

func TestPretrainedZooSwin(t *testing.T) {
	// Swin exercises the pooled-feature path of vit.Features.
	cfg := vit.SwinTiny
	m, acc := PretrainedZoo(cfg, 3, 60)
	if acc < 0.8 {
		t.Fatalf("Swin head fit accuracy %v too low", acc)
	}
	if m.Config().Name != "Swin-T" {
		t.Fatal("wrong config")
	}
}
