package tensor

import (
	"sync"
	"sync/atomic"

	"quq/internal/check"
)

// This file is the kernel layer: cache-blocked, register-tiled GEMM with
// destination-passing variants and optional row-partitioned intra-op
// parallelism. Every kernel obeys one determinism contract:
//
//	each output element is the serial reduction
//	    out[i][j] = fl(... fl(fl(a[i][0]·b[0][j]) + a[i][1]·b[1][j]) ...)
//	with the inner index ascending,
//
// which is exactly what the original scalar loops computed. Register
// tiling reuses operand loads across a 4×4 tile of outputs but keeps one
// accumulator per element, cache blocking only reorders *which* elements
// are in flight, and parallelism partitions output rows across workers —
// none of the three changes any element's reduction order, so blocked,
// tiled and parallel results are bit-identical to the reference kernels
// for finite inputs. (The reference MatMul skips a[i][kk]==0 terms; a
// skipped term contributes ±0 to a running sum that is never −0, which
// cannot change the accumulator's bit pattern. Only non-finite operands,
// where 0·±Inf is NaN, can tell the kernels apart; no model tensor
// contains them.) The equivalence and fuzz tests in gemm_test.go assert
// bit-identity against the Ref oracles over randomized shapes.

const (
	// mrTile×nrTile is the register micro-tile: 16 accumulators live in
	// registers while each inner-loop iteration issues 8 loads and 16
	// multiply-adds, versus 2 loads per multiply-add in the scalar loops.
	mrTile = 4
	nrTile = 4
	// parallelMinMACs is the size cutover for intra-op parallelism:
	// below this many multiply-accumulates the fork/join overhead
	// outweighs the work and the kernel stays on the cheap serial path.
	// Proxy-scale forward shapes (ViT-Nano attention is 17×16×17) never
	// cross it; calibration sweeps and large batched GEMMs do.
	parallelMinMACs = 1 << 18
	// minRowsPerWorker bounds the split granularity so a worker always
	// has enough rows to amortize its goroutine.
	minRowsPerWorker = 16
)

// intraOpExtra is the process-wide pool of *extra* GEMM workers: a kernel
// always runs on its calling goroutine and may additionally borrow up to
// budget−1 helpers from this pool. Because the pool is global, batch-level
// fan-out (ptq.ForwardBatch, the quq-serve batcher) and intra-op fan-out
// draw from one budget and can never multiply into oversubscription.
var intraOpExtra atomic.Int32

// intraOpN is the configured budget, reported by IntraOpWorkers.
var intraOpN atomic.Int32

// SetIntraOpWorkers sets the process-wide intra-op worker budget: the
// maximum number of goroutines (including the caller) a single GEMM may
// use. The default budget is 1 — every kernel is serial unless a binary
// opts in — which is also the required setting under per-image fan-out
// (quq-serve workers, ptq.ForwardBatch with workers>1), where parallelism
// across images already saturates the cores. Intended to be called once
// at startup, before kernels run; worker counts never affect results
// (outputs are bit-identical at any budget), only timing.
func SetIntraOpWorkers(n int) {
	if n < 1 {
		n = 1
	}
	intraOpN.Store(int32(n))
	intraOpExtra.Store(int32(n - 1))
}

// IntraOpWorkers returns the configured intra-op worker budget.
func IntraOpWorkers() int {
	if n := intraOpN.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// WorkerGrant is a per-call contribution of extra intra-op workers: the
// tokens it adds live in the shared pool for the grant's lifetime, so a
// caller that knows it is the only hot batch (the occupancy-adaptive
// scheduler at low load) can let its GEMMs borrow helpers without
// touching the process-global SetIntraOpWorkers budget. Release is
// idempotent and must be called when the batch completes; outstanding
// borrows are accounted for (the pool balance may swing negative until
// borrowed workers return, which only pauses new borrows).
type WorkerGrant struct {
	n        int32
	released atomic.Bool
}

// GrantWorkers adds n extra workers to the intra-op pool for the
// lifetime of the returned grant. n <= 0 returns an empty grant.
// Bit-identity is unaffected: worker counts never change results, only
// timing (see SetIntraOpWorkers).
func GrantWorkers(n int) *WorkerGrant {
	g := &WorkerGrant{}
	if n > 0 {
		g.n = int32(n)
		intraOpExtra.Add(g.n)
	}
	return g
}

// Release returns the grant's workers to nowhere — it withdraws the
// extra capacity. Safe to call more than once; only the first call
// takes effect.
func (g *WorkerGrant) Release() {
	if g == nil || g.n == 0 {
		return
	}
	if !g.released.CompareAndSwap(false, true) {
		return
	}
	intraOpExtra.Add(-g.n)
}

// acquireExtra takes up to max extra workers from the pool.
func acquireExtra(max int) int {
	for {
		cur := intraOpExtra.Load()
		if cur <= 0 || max <= 0 {
			return 0
		}
		take := int32(max)
		if take > cur {
			take = cur
		}
		if intraOpExtra.CompareAndSwap(cur, cur-take) {
			return int(take)
		}
	}
}

func releaseExtra(n int) {
	if n > 0 {
		intraOpExtra.Add(int32(n))
	}
}

// refKernels routes the destination-passing entry points through the
// reference scalar loops instead of the tiled kernels. It exists for the
// kernel benchmarks (naive-vs-blocked on identical surrounding code) and
// for equivalence tests; results are bit-identical either way, so the
// switch can only change timing.
var refKernels atomic.Bool

// SetReferenceKernels selects (true) the pre-kernel-layer scalar loops or
// (false, the default) the blocked/tiled kernels for MatMulInto,
// MatMulTInto and MatMulBiasInto. Benchmark and test seam only.
func SetReferenceKernels(on bool) { refKernels.Store(on) }

// matMulDims validates a (m×k) @ b (k×n) and returns the dimensions.
func matMulDims(a, b *Tensor, op string) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(check.Invariantf("tensor: %s requires rank-2 tensors", op))
	}
	m, k = a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(check.Invariantf("tensor: %s inner dimension mismatch %v @ %v", op, a.shape, b.shape))
	}
	return m, k, n
}

// matMulTDims validates a (m×k) @ bᵀ (n×k) and returns the dimensions.
func matMulTDims(a, b *Tensor, op string) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(check.Invariantf("tensor: %s requires rank-2 tensors", op))
	}
	m, k = a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(check.Invariantf("tensor: %s inner dimension mismatch %v @ %vᵀ", op, a.shape, b.shape))
	}
	return m, k, n
}

// checkDst validates the destination: rank-2, m×n, and storage disjoint
// from both operands (the kernels stream operands while writing dst).
func checkDst(dst, a, b *Tensor, m, n int, op string) {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(check.Invariantf("tensor: %s destination shape %v, want [%d %d]", op, dst.shape, m, n))
	}
	if len(dst.data) == 0 {
		return
	}
	if (len(a.data) > 0 && &dst.data[0] == &a.data[0]) || (len(b.data) > 0 && &dst.data[0] == &b.data[0]) {
		panic(check.Invariantf("tensor: %s destination aliases an operand", op))
	}
}

// MatMulInto computes dst = a @ b for rank-2 tensors (m×k) @ (k×n) ->
// (m×n), writing into caller-provided storage (dst need not be zeroed;
// every element is stored). dst must not share storage with a or b.
// Bit-identical to MatMulRef for finite inputs; see the determinism
// contract above.
//
//quq:hotpath steady-state GEMM kernel; destinations come from the caller (arena or reused buffer), never fresh allocations
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b, "MatMulInto")
	checkDst(dst, a, b, m, n, "MatMulInto")
	if refKernels.Load() {
		matMulRefRange(dst, a, b, nil, 0, m)
		return dst
	}
	if extra := planExtra(m, k, n); extra > 0 {
		runRows(extra, m, func(i0, i1 int) { matMulRange(dst, a, b, nil, i0, i1) })
	} else {
		matMulRange(dst, a, b, nil, 0, m)
	}
	return dst
}

// MatMulBiasInto computes dst = a @ b + bias, the bias-fused linear-layer
// epilogue: bias (length n) is added row-wise after each element's
// reduction completes, which is exactly MatMul followed by AddRowVector —
// same operations, same order, one less pass over dst.
//
//quq:hotpath steady-state GEMM kernel; destinations come from the caller (arena or reused buffer), never fresh allocations
func MatMulBiasInto(dst, a, b *Tensor, bias []float64) *Tensor {
	m, k, n := matMulDims(a, b, "MatMulBiasInto")
	checkDst(dst, a, b, m, n, "MatMulBiasInto")
	if len(bias) != n {
		panic(check.Invariantf("tensor: MatMulBiasInto bias length %d, want %d", len(bias), n))
	}
	if refKernels.Load() {
		matMulRefRange(dst, a, b, bias, 0, m)
		return dst
	}
	if extra := planExtra(m, k, n); extra > 0 {
		runRows(extra, m, func(i0, i1 int) { matMulRange(dst, a, b, bias, i0, i1) })
	} else {
		matMulRange(dst, a, b, bias, 0, m)
	}
	return dst
}

// MatMulTInto computes dst = a @ bᵀ for rank-2 tensors (m×k) @ (n×k)ᵀ ->
// (m×n) into caller-provided storage. Attention scores (Q @ Kᵀ) use this
// form: both operands stream row-major and no transpose is ever
// materialized. dst must not share storage with a or b.
//
//quq:hotpath steady-state GEMM kernel; destinations come from the caller (arena or reused buffer), never fresh allocations
func MatMulTInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulTDims(a, b, "MatMulTInto")
	checkDst(dst, a, b, m, n, "MatMulTInto")
	if refKernels.Load() {
		matMulTRefRange(dst, a, b, 0, m)
		return dst
	}
	if extra := planExtra(m, k, n); extra > 0 {
		runRows(extra, m, func(i0, i1 int) { matMulTRange(dst, a, b, i0, i1) })
	} else {
		matMulTRange(dst, a, b, 0, m)
	}
	return dst
}

// AddInto computes dst = a + b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Tensor) *Tensor {
	a.assertSameShape(b, "AddInto")
	dst.assertSameShape(a, "AddInto")
	dd, ad, bd := dst.data, a.data, b.data
	for i, av := range ad {
		dd[i] = av + bd[i]
	}
	return dst
}

// planExtra decides how many extra workers a m×k×n GEMM should use and
// acquires them from the intra-op pool (the caller must releaseExtra the
// same count). It returns 0 — keep the cheap serial path — below the
// size cutover, when the split would leave workers underfed, or when the
// pool is drained. Callers keep the serial kernel call out of the
// parallel closure so the serial path allocates nothing.
func planExtra(m, k, n int) int {
	if m*k*n < parallelMinMACs || m < 2*minRowsPerWorker {
		return 0
	}
	want := m / minRowsPerWorker
	if want < 2 {
		return 0
	}
	return acquireExtra(want - 1)
}

// runRows splits rows [0, m) into extra+1 contiguous chunks: the extra
// workers take the tail chunks while the caller computes the first, then
// releases the workers. Row partitioning cannot perturb results: each
// output element is produced by one worker running the identical serial
// reduction, so parallel output is bit-identical to serial output.
func runRows(extra, m int, run func(i0, i1 int)) {
	w := extra + 1
	chunk := (m + w - 1) / w
	var wg sync.WaitGroup
	for t := 1; t < w; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	run(0, chunk) // the caller is worker 0
	wg.Wait()
	releaseExtra(extra)
}

// packPool recycles the per-call B-panel pack buffers so steady-state
// kernels allocate nothing; each concurrent kernel invocation (including
// each intra-op worker) takes its own buffer.
var packPool = sync.Pool{New: func() any { return new([]float64) }}

func getPack(n int) (*[]float64, []float64) {
	p := packPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return p, (*p)[:n]
}

// getPackAndAcc returns a pooled n-element pack panel plus a 16-element
// accumulator block for the micro-kernel, carved from one pooled buffer
// so the steady state allocates nothing. The accumulator must live in
// pooled memory (not the caller's frame): micro4x4 is called through a
// function variable, so a stack-declared block would be marked escaping
// and heap-allocated on every kernel invocation.
func getPackAndAcc(n int) (*[]float64, []float64, *[16]float64) {
	p, buf := getPack(n + 16)
	return p, buf[:n:n], (*[16]float64)(buf[n : n+16])
}

// matMulRange is the blocked, register-tiled a @ b kernel over dst rows
// [i0, i1). For each group of nrTile columns, the group is packed into a
// contiguous k×4 panel (a pure copy — values are unchanged) so the inner
// loop's b loads are sequential rather than strided by the row width;
// the panel is then paired with mrTile rows of a in a 4×4 micro-kernel
// whose 16 accumulators each see their terms in ascending-k order. bias
// (optional, length n) is added after each element's reduction
// completes.
func matMulRange(dst, a, b *Tensor, bias []float64, i0, i1 int) {
	k := a.shape[1]
	n := b.shape[1]
	if n == 0 {
		return
	}
	ad, bd, dd := a.data, b.data, dst.data
	pp, packed, acc := getPackAndAcc(nrTile * k)
	j := 0
	for ; j+nrTile <= n; j += nrTile {
		boff := j
		for kk := 0; kk < k; kk++ {
			brow := bd[boff : boff+nrTile]
			prow := packed[kk*nrTile : kk*nrTile+nrTile]
			prow[0], prow[1], prow[2], prow[3] = brow[0], brow[1], brow[2], brow[3]
			boff += n
		}
		i := i0
		for ; i+mrTile <= i1; i += mrTile {
			a0 := ad[(i+0)*k : (i+0)*k+k]
			a1 := ad[(i+1)*k : (i+1)*k+k]
			a2 := ad[(i+2)*k : (i+2)*k+k]
			a3 := ad[(i+3)*k : (i+3)*k+k]
			micro4x4(acc, a0, a1, a2, a3, packed, k)
			if bias != nil {
				b0, b1, b2, b3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
				acc[0] += b0
				acc[1] += b1
				acc[2] += b2
				acc[3] += b3
				acc[4] += b0
				acc[5] += b1
				acc[6] += b2
				acc[7] += b3
				acc[8] += b0
				acc[9] += b1
				acc[10] += b2
				acc[11] += b3
				acc[12] += b0
				acc[13] += b1
				acc[14] += b2
				acc[15] += b3
			}
			d0 := dd[(i+0)*n+j : (i+0)*n+j+nrTile]
			d1 := dd[(i+1)*n+j : (i+1)*n+j+nrTile]
			d2 := dd[(i+2)*n+j : (i+2)*n+j+nrTile]
			d3 := dd[(i+3)*n+j : (i+3)*n+j+nrTile]
			d0[0], d0[1], d0[2], d0[3] = acc[0], acc[1], acc[2], acc[3]
			d1[0], d1[1], d1[2], d1[3] = acc[4], acc[5], acc[6], acc[7]
			d2[0], d2[1], d2[2], d2[3] = acc[8], acc[9], acc[10], acc[11]
			d3[0], d3[1], d3[2], d3[3] = acc[12], acc[13], acc[14], acc[15]
		}
		for ; i < i1; i++ {
			arow := ad[i*k : i*k+k]
			var c0, c1, c2, c3 float64
			for kk := 0; kk < k; kk++ {
				bq := packed[kk*nrTile : kk*nrTile+nrTile]
				av := arow[kk]
				c0 += av * bq[0]
				c1 += av * bq[1]
				c2 += av * bq[2]
				c3 += av * bq[3]
			}
			if bias != nil {
				c0 += bias[j]
				c1 += bias[j+1]
				c2 += bias[j+2]
				c3 += bias[j+3]
			}
			drow := dd[i*n+j : i*n+j+nrTile]
			drow[0], drow[1], drow[2], drow[3] = c0, c1, c2, c3
		}
	}
	for ; j < n; j++ {
		for i := i0; i < i1; i++ {
			arow := ad[i*k : i*k+k]
			var s float64
			boff := j
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * bd[boff]
				boff += n
			}
			if bias != nil {
				s += bias[j]
			}
			dd[i*n+j] = s
		}
	}
	packPool.Put(pp)
}

// matMulTRange is the register-tiled a @ bᵀ kernel over dst rows
// [i0, i1): each group of nrTile b rows is packed transposed into the
// same contiguous k×4 panel layout matMulRange uses (a pure copy —
// values unchanged), then swept with the shared 4×4 micro-kernel, 16
// in-register dot products advancing together in ascending-k order.
func matMulTRange(dst, a, b *Tensor, i0, i1 int) {
	k := a.shape[1]
	n := b.shape[0]
	if n == 0 {
		return
	}
	ad, bd, dd := a.data, b.data, dst.data
	pp, packed, acc := getPackAndAcc(nrTile * k)
	j := 0
	for ; j+nrTile <= n; j += nrTile {
		b0 := bd[(j+0)*k : (j+0)*k+k]
		b1 := bd[(j+1)*k : (j+1)*k+k]
		b2 := bd[(j+2)*k : (j+2)*k+k]
		b3 := bd[(j+3)*k : (j+3)*k+k]
		for kk := 0; kk < k; kk++ {
			prow := packed[kk*nrTile : kk*nrTile+nrTile]
			prow[0], prow[1], prow[2], prow[3] = b0[kk], b1[kk], b2[kk], b3[kk]
		}
		i := i0
		for ; i+mrTile <= i1; i += mrTile {
			a0 := ad[(i+0)*k : (i+0)*k+k]
			a1 := ad[(i+1)*k : (i+1)*k+k]
			a2 := ad[(i+2)*k : (i+2)*k+k]
			a3 := ad[(i+3)*k : (i+3)*k+k]
			micro4x4(acc, a0, a1, a2, a3, packed, k)
			d0 := dd[(i+0)*n+j : (i+0)*n+j+nrTile]
			d1 := dd[(i+1)*n+j : (i+1)*n+j+nrTile]
			d2 := dd[(i+2)*n+j : (i+2)*n+j+nrTile]
			d3 := dd[(i+3)*n+j : (i+3)*n+j+nrTile]
			d0[0], d0[1], d0[2], d0[3] = acc[0], acc[1], acc[2], acc[3]
			d1[0], d1[1], d1[2], d1[3] = acc[4], acc[5], acc[6], acc[7]
			d2[0], d2[1], d2[2], d2[3] = acc[8], acc[9], acc[10], acc[11]
			d3[0], d3[1], d3[2], d3[3] = acc[12], acc[13], acc[14], acc[15]
		}
		for ; i < i1; i++ {
			arow := ad[i*k : i*k+k]
			var c0, c1, c2, c3 float64
			for kk := 0; kk < k; kk++ {
				bq := packed[kk*nrTile : kk*nrTile+nrTile]
				av := arow[kk]
				c0 += av * bq[0]
				c1 += av * bq[1]
				c2 += av * bq[2]
				c3 += av * bq[3]
			}
			drow := dd[i*n+j : i*n+j+nrTile]
			drow[0], drow[1], drow[2], drow[3] = c0, c1, c2, c3
		}
	}
	for ; j < n; j++ {
		brow := bd[j*k : j*k+k]
		for i := i0; i < i1; i++ {
			arow := ad[i*k : i*k+k]
			var s float64
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * brow[kk]
			}
			dd[i*n+j] = s
		}
	}
	packPool.Put(pp)
}

// matMulRefRange is the pre-kernel-layer scalar a @ b loop (i-k-j order
// with the zero-skip), writing rows [i0, i1) of dst. It is retained as
// the bit-exact reference oracle for the equivalence tests and the
// naive-vs-blocked benchmarks.
func matMulRefRange(dst, a, b *Tensor, bias []float64, i0, i1 int) {
	k := a.shape[1]
	n := b.shape[1]
	for i := i0; i < i1; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := dst.data[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
		if bias != nil {
			for j := range orow {
				orow[j] += bias[j]
			}
		}
	}
}

// matMulTRefRange is the pre-kernel-layer scalar a @ bᵀ loop (one
// register dot product per element), writing rows [i0, i1) of dst.
func matMulTRefRange(dst, a, b *Tensor, i0, i1 int) {
	k := a.shape[1]
	n := b.shape[0]
	for i := i0; i < i1; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float64
			for kk := range arow {
				s += arow[kk] * brow[kk]
			}
			orow[j] = s
		}
	}
}

// MatMulRef returns a @ b computed by the reference scalar kernel. It is
// the oracle the blocked kernels are tested against and the baseline the
// kernel benchmarks measure; production code uses MatMul/MatMulInto.
func MatMulRef(a, b *Tensor) *Tensor {
	m, _, n := matMulDims(a, b, "MatMulRef")
	out := New(m, n)
	matMulRefRange(out, a, b, nil, 0, m)
	return out
}

// MatMulTRef returns a @ bᵀ computed by the reference scalar kernel; see
// MatMulRef.
func MatMulTRef(a, b *Tensor) *Tensor {
	m, _, n := matMulTDims(a, b, "MatMulTRef")
	out := New(m, n)
	matMulTRefRange(out, a, b, 0, m)
	return out
}
