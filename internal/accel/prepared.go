package accel

import (
	"fmt"
	"math"

	"quq/internal/quant"
	"quq/internal/qub"
)

// PreparedOperand is a QUB operand decoded once into resident,
// pre-shifted int64 form: V[i] = D_i << n_sh,i (Eq. (6) with the Eq. (5)
// subrange shift folded in). Weight matrices are prepared at load time
// and reused across every GEMM, so the serve path's steady state never
// re-decodes — and never rehydrates to float64 — on the weight side.
// Pre-shifting is bit-exact: (D_a·D_b) << (n_a+n_b) equals
// (D_a<<n_a)·(D_b<<n_b) exactly, because shifts distribute over products
// mod 2^64.
type PreparedOperand struct {
	// Rows, Cols are the operand's row-major dimensions.
	Rows, Cols int
	// V holds the pre-shifted integer values, row-major.
	V []int64
	// Delta is the real value of one integer unit (the operand's base Δ).
	Delta float64
	// MaxAbs is the largest |V[i]|, for accumulator-width bounds: a GEMM
	// of depth k against activations of magnitude ≤ xMax accumulates at
	// most k·xMax·MaxAbs in absolute value.
	MaxAbs int64
}

// PrepareWords decodes a QUB word stream into a resident prepared
// operand.
func PrepareWords(ws []qub.Word, r qub.Registers, rows, cols int) (*PreparedOperand, error) {
	if len(ws) != rows*cols {
		return nil, fmt.Errorf("accel: prepared operand has %d words, want %dx%d", len(ws), rows, cols)
	}
	p := &PreparedOperand{Rows: rows, Cols: cols, V: make([]int64, len(ws)), Delta: r.BaseDelta}
	for i, w := range ws {
		d := qub.Decode(w, r)
		v := int64(d.D) << d.Nsh
		p.V[i] = v
		if a := abs64(v); a > p.MaxAbs {
			p.MaxAbs = a
		}
	}
	return p, nil
}

// SliceCols extracts columns [lo, hi) into a new prepared operand with
// the same Delta (MaxAbs is recomputed over the slice). Used to split a
// fused weight matrix — e.g. QKV — into per-output-group operands at
// prepare time.
func (p *PreparedOperand) SliceCols(lo, hi int) *PreparedOperand {
	out := &PreparedOperand{Rows: p.Rows, Cols: hi - lo, V: make([]int64, p.Rows*(hi-lo)), Delta: p.Delta}
	for r := 0; r < p.Rows; r++ {
		row := p.V[r*p.Cols+lo : r*p.Cols+hi]
		copy(out.V[r*out.Cols:(r+1)*out.Cols], row)
		for _, v := range row {
			if a := abs64(v); a > out.MaxAbs {
				out.MaxAbs = a
			}
		}
	}
	return out
}

// PrepareQuantized recovers the pre-shifted integers of an already
// fake-quantized float tensor: every element of data must be a
// representable point m·Δ of params' code space (which is exactly what
// quant.Params.QuantizeSlice leaves behind), and the recovered integer is
// m. This is the serve path's weight-preparation route — the quantized
// model's weight tensors are already fake-quantized in place, so
// preparing from them (rather than re-encoding through qub) reproduces
// the float pipeline's values exactly, including signed zeros.
//
// Every element is verified to round-trip (float64(m)·Δ == x); an
// element that does not — data that was never quantized with params, or
// a quantizer whose slot deltas are not exact power-of-two multiples of
// the base — returns an error rather than a silently wrong operand.
//
//quq:float-ok one-time weight preparation at model load: recovering the integer grid from fake-quantized floats is the decode boundary, not per-inference datapath work
func PrepareQuantized(params *quant.Params, data []float64, rows, cols int) (*PreparedOperand, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("accel: prepared operand has %d elements, want %dx%d", len(data), rows, cols)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	delta := params.BaseDelta()
	inv := 1 / delta
	p := &PreparedOperand{Rows: rows, Cols: cols, V: make([]int64, len(data)), Delta: delta}
	for i, x := range data {
		m := int64(math.RoundToEven(x * inv))
		if float64(m)*delta != x {
			return nil, fmt.Errorf("accel: element %d (%v) is not on the Δ=%v integer grid; operand is not fake-quantized with these params", i, x, delta)
		}
		p.V[i] = m
		if a := abs64(m); a > p.MaxAbs {
			p.MaxAbs = a
		}
	}
	return p, nil
}
