// Command quq-vet runs the repository's domain-specific static-analysis
// pass (internal/analysis) over the given packages.
//
// Usage:
//
//	quq-vet [-list] [-json] [packages]
//
// Packages default to ./... — every package under the current module,
// skipping testdata, hidden and artifact directories. Diagnostics print
// as file:line:col: check: message; the exit status is 0 when the tree
// is clean, 1 when any check fired, and 2 when loading or type-checking
// failed.
//
// With -json the report is a single deterministic JSON object on
// stdout: module path, package count, findings (module-relative
// slash-separated file, line, col, analyzer, message, sorted by file
// then position), and per-analyzer counts of findings a //quq:<token>
// directive suppressed. Two runs over an unchanged tree produce
// byte-identical output, so the report can be diffed in CI.
//
// quq-vet enforces the invariants the QUQ reproduction's hardware
// claims rest on; see the Verification section of README.md for the
// check catalogue and the //quq:<token> suppression directives.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"quq/internal/analysis"
)

func main() {
	os.Exit(run())
}

// jsonFinding is one diagnostic in the machine-readable report. File is
// module-relative with forward slashes so the report is stable across
// checkouts and platforms.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json output. Suppressed counts, per analyzer, how
// many distinct findings a //quq:<token> directive silenced — the
// opt-out surface CI can watch for creep.
type jsonReport struct {
	Module     string         `json:"module"`
	Packages   int            `json:"packages"`
	Findings   []jsonFinding  `json:"findings"`
	Suppressed map[string]int `json:"suppressed"`
	Total      int            `json:"total"`
}

func run() int {
	list := flag.Bool("list", false, "list registered checks and exit")
	jsonOut := flag.Bool("json", false, "emit a deterministic JSON report instead of plain diagnostics")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: quq-vet [-list] [-json] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			suffix := ""
			if a.Directive != "" {
				suffix = fmt.Sprintf(" (suppress: //quq:%s <reason>)", a.Directive)
			}
			fmt.Printf("%-12s %s%s\n", a.Name, a.Doc, suffix)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "quq-vet:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quq-vet:", err)
		return 2
	}

	report := jsonReport{
		Module:     loader.ModulePath,
		Packages:   len(dirs),
		Findings:   []jsonFinding{},
		Suppressed: map[string]int{},
	}
	for _, dir := range dirs {
		importPath, err := loader.DirImportPath(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quq-vet:", err)
			return 2
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quq-vet:", err)
			return 2
		}
		diags, suppressed := analysis.RunWithStats(pkg, analysis.Analyzers())
		for _, d := range diags {
			if *jsonOut {
				report.Findings = append(report.Findings, jsonFinding{
					File:     relFile(loader.ModuleDir, d.Pos.Filename),
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Check,
					Message:  d.Message,
				})
			} else {
				fmt.Println(d)
			}
		}
		for name, n := range suppressed {
			report.Suppressed[name] += n
		}
		report.Total += len(diags)
	}

	if *jsonOut {
		// ExpandPatterns returns dirs in sorted order and RunWithStats sorts
		// within a package, but sort globally anyway so the byte-identical
		// guarantee never rests on loader traversal order.
		sort.Slice(report.Findings, func(i, j int) bool {
			a, b := report.Findings[i], report.Findings[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			if a.Col != b.Col {
				return a.Col < b.Col
			}
			return a.Analyzer < b.Analyzer
		})
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "quq-vet:", err)
			return 2
		}
		fmt.Println(string(out))
	} else if report.Total > 0 {
		fmt.Fprintf(os.Stderr, "quq-vet: %d finding(s)\n", report.Total)
	}
	if report.Total > 0 {
		return 1
	}
	return 0
}

// relFile rewrites an absolute diagnostic path module-relative with
// forward slashes; paths outside the module (never expected) pass
// through unchanged.
func relFile(moduleDir, file string) string {
	rel, err := filepath.Rel(moduleDir, file)
	if err != nil || rel == "" || rel[0] == '.' {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
