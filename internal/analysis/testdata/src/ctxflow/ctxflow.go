// Package ctxflow is the fixture corpus for the ctxflow analyzer: root
// contexts minted in library code, blocking I/O in context-free
// functions, the uncancellable http.NewRequest form, the conforming
// threaded variants, and a documented //quq:ctx-ok suppression.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

func mintsRoot() context.Context {
	return context.Background() // want `context\.Background in library code`
}

func mintsTODO() context.Context {
	return context.TODO() // want `context\.TODO in library code`
}

func sleepsWithoutCtx(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep in sleepsWithoutCtx, which takes no context\.Context`
}

func fetch(url string) error {
	resp, err := http.Get(url) // want `http\.Get in fetch, which takes no context\.Context`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

type poster struct {
	c   *http.Client
	req *http.Request
}

// do holds its request in a field, so no parameter carries a context.
func (p *poster) do() error {
	resp, err := p.c.Do(p.req) // want `http Client\.Do in do, which takes no context\.Context`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func uncancellable(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want `http\.NewRequest builds an uncancellable request`
}

// threaded is the conforming form: the context arrives as a parameter
// and rides the request.
func threaded(ctx context.Context, c *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// handler carries its context inside *http.Request, which counts.
func handler(c *http.Client, r *http.Request) error {
	resp, err := c.Do(r)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// optOutDefault is the sanctioned shape: a root minted only as an
// explicit opt-out default, documented in place.
func optOutDefault(ctx context.Context) context.Context {
	if ctx == nil {
		//quq:ctx-ok documented opt-out default for embedders that decline to supply a context
		ctx = context.Background()
	}
	return ctx
}
