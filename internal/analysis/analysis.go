// Package analysis implements quqvet, the repository's domain-specific
// static-analysis pass. It enforces, at the source level, the invariants
// the QUQ paper's hardware claims rest on — an integer-only decode/GEMM
// datapath, exact power-of-two scale arithmetic, deterministic artifact
// emission, audited panics and no silently dropped errors on io paths —
// using only the standard library's go/ast, go/parser and go/types
// (the build is offline; no external analysis frameworks).
//
// Each check is one Analyzer in the registry, with its own suppression
// directive of the form
//
//	//quq:<token> <reason>
//
// A directive on a line (or the line above it, or in the doc comment of
// the enclosing function) suppresses that check there; the reason is
// mandatory and its absence is itself a diagnostic, so every exemption
// in the tree documents why it is sound.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the check in diagnostics.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Directive is the suppression token (e.g. "float-ok" suppresses as
	// //quq:float-ok <reason>). Empty means the check cannot be
	// suppressed.
	Directive string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Analyzers returns the quqvet registry in stable order. The first
// block is the reproducibility suite (PR 1–5); the second is the
// concurrency-and-determinism suite policing the serving stack.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		IntOnly, Pow2, DetIter, ErrDrop, PanicAudit, HotAlloc, Sleepless, DocMissing,
		LockCheck, CtxFlow, LeakCheck, AtomicMix, MetricLabel, FsyncCheck,
		Directives,
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info

	dirs       *directiveIndex
	diags      *[]Diagnostic
	seen       map[string]bool
	suppressed map[string]int
}

// Reportf records a finding at pos unless a matching suppression
// directive covers it (in which case the suppression is counted, so
// reports can say how many findings each directive family absorbs).
// Findings are deduplicated per line per check so nested expressions do
// not multiply-report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Analyzer.Directive != "" && p.dirs.suppressed(p.Analyzer.Directive, position.Filename, position.Line) {
		key := fmt.Sprintf("%s:%d:%s", position.Filename, position.Line, p.Analyzer.Name)
		if p.suppressed != nil && !p.seen["suppressed:"+key] {
			p.seen["suppressed:"+key] = true
			p.suppressed[p.Analyzer.Name]++
		}
		return
	}
	key := fmt.Sprintf("%s:%d:%s", position.Filename, position.Line, p.Analyzer.Name)
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes every registered analyzer over the package and returns
// the findings sorted by position.
func Run(pkg *Package) []Diagnostic {
	return RunAnalyzers(pkg, Analyzers())
}

// RunAnalyzers executes the given checks over the package.
func RunAnalyzers(pkg *Package, checks []*Analyzer) []Diagnostic {
	diags, _ := RunWithStats(pkg, checks)
	return diags
}

// RunWithStats executes the given checks and additionally returns, per
// analyzer name, how many distinct findings a suppression directive
// absorbed — the number machine-readable reports surface so reviewers
// can watch the exemption count instead of re-auditing every directive.
func RunWithStats(pkg *Package, checks []*Analyzer) ([]Diagnostic, map[string]int) {
	var diags []Diagnostic
	suppressed := map[string]int{}
	dirs := indexDirectives(pkg.Fset, pkg.Files)
	seen := map[string]bool{}
	for _, a := range checks {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			PkgPath:    pkg.Path,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			dirs:       dirs,
			diags:      &diags,
			seen:       seen,
			suppressed: suppressed,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Check < diags[j].Check
	})
	return diags, suppressed
}

// directivePrefix introduces a quqvet comment directive.
const directivePrefix = "quq:"

// directive is one parsed //quq:<token> <reason> comment.
type directive struct {
	token  string
	reason string
	file   string
	line   int
}

// directiveIndex resolves, per file and suppression token, which lines a
// directive covers: its own line, the following line (for standalone
// comment lines), and — when it appears in a function's doc comment —
// the whole function body.
type directiveIndex struct {
	all []directive
	// covered maps token -> filename -> set of suppressed lines.
	covered map[string]map[string]map[int]bool
}

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{covered: map[string]map[string]map[int]bool{}}
	mark := func(tok, file string, line int) {
		byFile, ok := idx.covered[tok]
		if !ok {
			byFile = map[string]map[int]bool{}
			idx.covered[tok] = byFile
		}
		lines, ok := byFile[file]
		if !ok {
			lines = map[int]bool{}
			byFile[file] = lines
		}
		lines[line] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d.file, d.line = pos.Filename, pos.Line
				idx.all = append(idx.all, d)
				mark(d.token, d.file, d.line)
				mark(d.token, d.file, d.line+1)
			}
		}
		// A directive in a function's doc comment covers the whole
		// function.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				start := fset.Position(fn.Body.Lbrace)
				end := fset.Position(fn.Body.Rbrace)
				for line := start.Line; line <= end.Line; line++ {
					mark(d.token, start.Filename, line)
				}
			}
		}
	}
	return idx
}

func (idx *directiveIndex) suppressed(tok, file string, line int) bool {
	byFile, ok := idx.covered[tok]
	if !ok {
		return false
	}
	return byFile[file][line]
}

// parseDirective recognizes "//quq:<token> <reason>" comments.
func parseDirective(text string) (directive, bool) {
	body, ok := strings.CutPrefix(text, "//"+directivePrefix)
	if !ok {
		return directive{}, false
	}
	tok, reason, _ := strings.Cut(body, " ")
	if tok == "" {
		return directive{}, false
	}
	return directive{token: tok, reason: strings.TrimSpace(reason)}, true
}

// Directives is the meta-check over the directive comments themselves:
// every suppression must name a known token and carry a reason, so
// exemptions stay documented and typo-free.
var Directives = &Analyzer{
	Name: "directive",
	Doc:  "quq: suppression directives must use a known token and state a reason",
	Run: func(pass *Pass) {
		known := map[string]bool{
			// hotpath is a marker, not a suppression: it declares a
			// function steady-state and the hotalloc analyzer enforces
			// the no-allocation claim it makes. It still needs a reason.
			hotpathToken: true,
		}
		var tokens []string
		// Every directive-bearing analyzer, in registry order. Listed
		// explicitly (rather than via Analyzers) because Directives is
		// itself in the registry and the compiler rejects the
		// initialization cycle.
		for _, a := range []*Analyzer{
			IntOnly, Pow2, DetIter, ErrDrop, PanicAudit, HotAlloc, Sleepless,
			LockCheck, CtxFlow, LeakCheck, AtomicMix, MetricLabel, FsyncCheck,
		} {
			if a.Directive != "" && !known[a.Directive] {
				known[a.Directive] = true
				tokens = append(tokens, a.Directive)
			}
		}
		tokens = append(tokens, hotpathToken)
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					if !known[d.token] {
						pass.Reportf(c.Pos(), "unknown directive //quq:%s (known: %s)", d.token, strings.Join(tokens, ", "))
						continue
					}
					if d.reason == "" {
						pass.Reportf(c.Pos(), "directive //quq:%s needs a reason explaining why the exemption is sound", d.token)
					}
				}
			}
		}
	},
}

// --- shared AST/type helpers used by the individual checks ---

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the called function or method object of a call
// expression, or nil for builtins, type conversions and indirect calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgCall reports whether call is pkgPath.name(...), resolving the
// qualified identifier through the type checker (so aliased imports are
// still caught).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isFloat reports whether t's underlying type is a floating-point
// scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// walkFuncs visits every node of f together with the name of the
// nearest enclosing declared function ("" at package scope; function
// literals inherit the declaring function's name). Returning false from
// visit skips the node's subtree.
func walkFuncs(f *ast.File, visit func(fn string, n ast.Node) bool) {
	var nodes []ast.Node
	var fns []string
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			popped := nodes[len(nodes)-1]
			nodes = nodes[:len(nodes)-1]
			if _, ok := popped.(*ast.FuncDecl); ok {
				fns = fns[:len(fns)-1]
			}
			return true
		}
		cur := ""
		if len(fns) > 0 {
			cur = fns[len(fns)-1]
		}
		if d, ok := n.(*ast.FuncDecl); ok {
			cur = d.Name.Name
		}
		if !visit(cur, n) {
			return false
		}
		nodes = append(nodes, n)
		if d, ok := n.(*ast.FuncDecl); ok {
			fns = append(fns, d.Name.Name)
		}
		return true
	})
}
