package vit

import (
	"fmt"

	"quq/internal/tensor"
)

// SiteKind classifies a quantization point according to the paper's
// Figure 1 colour coding.
type SiteKind int

const (
	// KindGEMMIn marks activations that feed a GEMM (the figure's green
	// points): these are quantized in both partial and full quantization.
	KindGEMMIn SiteKind = iota
	// KindActivation marks the remaining activations (the figure's red
	// points: residual-connection, LayerNorm, Softmax and GELU inputs):
	// quantized only under full quantization.
	KindActivation
	// KindWeight marks GEMM weight tensors, quantized in both regimes.
	KindWeight
)

func (k SiteKind) String() string {
	switch k {
	case KindGEMMIn:
		return "gemm-in"
	case KindActivation:
		return "activation"
	case KindWeight:
		return "weight"
	}
	return fmt.Sprintf("SiteKind(%d)", int(k))
}

// Site names one quantization point in a model. Block is the global block
// index (-1 for stem and head sites); Name is stable across runs and
// identifies the point within the block.
type Site struct {
	Block int
	Name  string
	Kind  SiteKind
}

// Key returns a stable map key for the site.
func (s Site) Key() string {
	return fmt.Sprintf("b%02d.%s", s.Block, s.Name)
}

func (s Site) String() string { return s.Key() + "[" + s.Kind.String() + "]" }

// Tap observes — and may replace — the tensor flowing through a site.
// Returning x unchanged makes the tap a pure observer (calibration);
// returning a fake-quantized copy simulates quantized inference. A nil
// Tap is the identity.
type Tap func(site Site, x *tensor.Tensor) *tensor.Tensor

// apply routes a tensor through the tap, handling the nil case.
func (t Tap) apply(site Site, x *tensor.Tensor) *tensor.Tensor {
	if t == nil {
		return x
	}
	if y := t(site, x); y != nil {
		return y
	}
	return x
}

// AttnSink receives each block's attention probability tensor
// ([heads*T, T] rows are softmax distributions) during a forward pass;
// the Figure 7 experiment uses it to extract attention maps.
type AttnSink func(block int, attn *tensor.Tensor)

// ForwardOpts bundles the optional instrumentation of a forward pass.
type ForwardOpts struct {
	Tap  Tap
	Attn AttnSink
}
