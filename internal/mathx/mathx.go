// Package mathx collects the small numerical helpers shared by the model
// stack, the synthetic data generators and the quantizers: activation
// functions, stable softmax, and power-of-two utilities.
package mathx

import "math"

// Gelu is the Gaussian error linear unit, x·Φ(x), computed with the exact
// erf formulation (the paper's ViTs use exact GELU, not the tanh
// approximation).
func Gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Erf(x/math.Sqrt2))
}

// SoftmaxInPlace replaces xs with softmax(xs), using the max-subtraction
// trick for numerical stability. An empty slice is left unchanged.
func SoftmaxInPlace(xs []float64) {
	if len(xs) == 0 {
		return
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range xs {
		e := math.Exp(v - m)
		xs[i] = e
		sum += e
	}
	for i := range xs {
		xs[i] /= sum
	}
}

// IsPow2Ratio reports whether a/b equals 2^k for some integer k ≥ 0,
// within floating-point tolerance.
func IsPow2Ratio(a, b float64) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	k := math.Log2(a / b)
	return k > -1e-9 && math.Abs(k-math.Round(k)) < 1e-9
}

// Log2Int returns log2(v) for a positive power-of-two integer, and -1
// otherwise.
func Log2Int(v int64) int {
	if v <= 0 || v&(v-1) != 0 {
		return -1
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
