package analysis

import (
	"go/ast"
	"go/types"
)

// FsyncCheck flags os.Rename calls in functions that never call
// (*os.File).Sync. The module's durable-persistence idiom (the
// internal/snapstore write path) is write-temp, fsync, close, rename:
// the rename is the commit point, and renaming a file whose bytes may
// still sit in the page cache publishes a name that a crash can leave
// pointing at torn or empty content — exactly the corruption the
// snapshot digests exist to catch. A rename that genuinely moves no
// new data (quarantining an already-committed file, say) carries
// //quq:fsync-ok with the reason.
var FsyncCheck = &Analyzer{
	Name:      "fsynccheck",
	Doc:       "os.Rename on a write path needs an (*os.File).Sync in the same function",
	Directive: "fsync-ok",
	Run:       runFsyncCheck,
}

func runFsyncCheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var renames []*ast.CallExpr
			synced := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgCall(pass.Info, call, "os", "Rename") {
					renames = append(renames, call)
				}
				if isFileSync(pass.Info, call) {
					synced = true
				}
				return true
			})
			if synced {
				continue
			}
			for _, call := range renames {
				pass.Reportf(call.Pos(), "os.Rename in %s with no (*os.File).Sync on the same path; fsync before the rename commits, so a crash cannot publish torn data (or annotate //quq:fsync-ok with the reason)", fd.Name.Name)
			}
		}
	}
}

// isFileSync reports whether call is (*os.File).Sync.
func isFileSync(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	return rt.String() == "os.File"
}
