package vit

import (
	"math"
	"quq/internal/check"

	"quq/internal/mathx"
	"quq/internal/tensor"
)

// Linear is a dense layer y = xW + b with W of shape [in, out].
type Linear struct {
	W *tensor.Tensor
	B []float64
}

// NewLinear allocates a zero-initialized layer.
func NewLinear(in, out int) *Linear {
	return &Linear{W: tensor.New(in, out), B: make([]float64, out)}
}

// In returns the input width.
func (l *Linear) In() int { return l.W.Dim(0) }

// Out returns the output width.
func (l *Linear) Out() int { return l.W.Dim(1) }

// Apply computes xW + b for x of shape [n, in], allocating the result.
func (l *Linear) Apply(x *tensor.Tensor) *tensor.Tensor {
	return l.ApplyInto(tensor.New(x.Dim(0), l.Out()), x)
}

// ApplyInto computes xW + b into dst of shape [n, out], which typically
// comes from a scratch arena. The bias add is fused into the GEMM
// epilogue (same operations in the same order as MatMul followed by
// AddRowVector, one less pass over dst).
func (l *Linear) ApplyInto(dst, x *tensor.Tensor) *tensor.Tensor {
	if x.Dim(1) != l.In() {
		panic(check.Invariantf("vit: linear input width %d, want %d", x.Dim(1), l.In()))
	}
	return tensor.MatMulBiasInto(dst, x, l.W, l.B)
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies the learned affine transform.
type LayerNorm struct {
	Gamma, Beta []float64
	Eps         float64
}

// NewLayerNorm returns an identity-initialized LayerNorm over dim
// features.
func NewLayerNorm(dim int) *LayerNorm {
	g := make([]float64, dim)
	for i := range g {
		g[i] = 1
	}
	return &LayerNorm{Gamma: g, Beta: make([]float64, dim), Eps: 1e-6}
}

// Apply normalizes x of shape [n, dim] row-wise into a new tensor.
func (ln *LayerNorm) Apply(x *tensor.Tensor) *tensor.Tensor {
	n, d := x.Dim(0), x.Dim(1)
	if d != len(ln.Gamma) {
		panic(check.Invariantf("vit: layernorm width %d, want %d", d, len(ln.Gamma)))
	}
	out := tensor.New(n, d)
	for r := 0; r < n; r++ {
		row := x.Row(r)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		var ss float64
		for _, v := range row {
			dv := v - mean
			ss += dv * dv
		}
		inv := 1 / math.Sqrt(ss/float64(d)+ln.Eps)
		orow := out.Row(r)
		for c, v := range row {
			orow[c] = (v-mean)*inv*ln.Gamma[c] + ln.Beta[c]
		}
	}
	return out
}

// Block is one transformer encoder block: pre-norm multi-head
// self-attention and a GELU MLP, each wrapped in a residual connection.
type Block struct {
	Heads int
	LN1   *LayerNorm
	QKV   *Linear // [dim, 3*dim]
	Proj  *Linear // [dim, dim]
	LN2   *LayerNorm
	FC1   *Linear // [dim, mlp]
	FC2   *Linear // [mlp, dim]
}

// NewBlock allocates a zero-initialized block.
func NewBlock(dim, heads, mlpRatio int) *Block {
	return &Block{
		Heads: heads,
		LN1:   NewLayerNorm(dim),
		QKV:   NewLinear(dim, 3*dim),
		Proj:  NewLinear(dim, dim),
		LN2:   NewLayerNorm(dim),
		FC1:   NewLinear(dim, dim*mlpRatio),
		FC2:   NewLinear(dim*mlpRatio, dim),
	}
}

// Forward runs the block on x ([S, dim], where S = nSeq·T is nSeq
// independent sequences of T tokens laid out contiguously — nSeq is 1 for
// ViT/DeiT and the window count for Swin). blk is the global block index
// used in tap site names. The input is assumed to have been tapped by the
// caller as the previous block's residual output.
func (b *Block) Forward(x *tensor.Tensor, nSeq, blk int, opts ForwardOpts) *tensor.Tensor {
	tap := opts.Tap
	dim := x.Dim(1)
	s := x.Dim(0)
	if s%nSeq != 0 {
		panic(check.Invariantf("vit: %d rows not divisible into %d sequences", s, nSeq))
	}
	t := s / nSeq
	heads := b.Heads
	dh := dim / heads
	scale := 1 / math.Sqrt(float64(dh))

	// Per-forward scratch: every tensor carved from the arena below is
	// either Put back mid-pass or dead by Release. Tensors that reach a
	// tap (which may retain or replace them) stay ordinary allocations.
	ar := tensor.GetArena()
	defer ar.Release()

	h := b.LN1.Apply(x)
	h = tap.apply(Site{blk, "ln1.out", KindGEMMIn}, h)
	qkvOut := applyLinear(opts, Site{blk, "attn.qkv.w", KindWeight}, b.QKV, ar.NewUninit(s, 3*dim), h)

	// Split into Q, K, V tensors of shape [S, dim].
	q, k, v := tensor.New(s, dim), tensor.New(s, dim), tensor.New(s, dim)
	for r := 0; r < s; r++ {
		row := qkvOut.Row(r)
		copy(q.Row(r), row[:dim])
		copy(k.Row(r), row[dim:2*dim])
		copy(v.Row(r), row[2*dim:])
	}
	ar.Put(qkvOut)
	q = tap.apply(Site{blk, "attn.q", KindGEMMIn}, q)
	k = tap.apply(Site{blk, "attn.k", KindGEMMIn}, k)
	v = tap.apply(Site{blk, "attn.v", KindGEMMIn}, v)

	// Attention scores for every (sequence, head) pair, flattened to
	// [nSeq*heads*T, T] so the whole tensor shares one quantizer.
	scores := tensor.New(nSeq*heads*t, t)
	attnScores(ar, scores, q, k, nSeq, heads, t, dh, scale)
	scores = tap.apply(Site{blk, "attn.softmax_in", KindActivation}, scores)
	for r := 0; r < scores.Dim(0); r++ {
		mathx.SoftmaxInPlace(scores.Row(r))
	}
	if opts.Attn != nil {
		opts.Attn(blk, scores)
	}
	scores = tap.apply(Site{blk, "attn.softmax_out", KindGEMMIn}, scores)

	// Context: P·V per (sequence, head), reassembled to [S, dim].
	ctx := tensor.New(s, dim)
	attnContext(ar, ctx, scores, v, nSeq, heads, t, dh)
	ctx = tap.apply(Site{blk, "attn.proj_in", KindGEMMIn}, ctx)
	o := applyLinear(opts, Site{blk, "attn.proj.w", KindWeight}, b.Proj, tensor.New(s, dim), ctx)
	o = tap.apply(Site{blk, "attn.proj_out", KindActivation}, o)

	x = x.Add(o)
	x = tap.apply(Site{blk, "resid1.out", KindActivation}, x)

	h = b.LN2.Apply(x)
	h = tap.apply(Site{blk, "ln2.out", KindGEMMIn}, h)
	h = applyLinear(opts, Site{blk, "mlp.fc1.w", KindWeight}, b.FC1, tensor.New(s, b.FC1.Out()), h)
	h = tap.apply(Site{blk, "mlp.gelu_in", KindActivation}, h)
	h.Apply(mathx.Gelu)
	h = tap.apply(Site{blk, "mlp.gelu_out", KindGEMMIn}, h)
	h = applyLinear(opts, Site{blk, "mlp.fc2.w", KindWeight}, b.FC2, tensor.New(s, dim), h)
	h = tap.apply(Site{blk, "mlp.fc2_out", KindActivation}, h)

	x = x.Add(h)
	x = tap.apply(Site{blk, "resid2.out", KindActivation}, x)
	return x
}

// packHead copies one head's column band (col0 .. col0+dh) of t
// consecutive src rows starting at row0 into the contiguous [t, dh]
// scratch dst, so the per-head GEMM runs on dense row-major operands.
//
//quq:hotpath per-forward attention inner loop; scratch is arena-backed, no allocations here
func packHead(dst, src *tensor.Tensor, row0, col0 int) {
	t, dh := dst.Dim(0), dst.Dim(1)
	for i := 0; i < t; i++ {
		copy(dst.Row(i), src.Row(row0 + i)[col0:col0+dh])
	}
}

// attnScores fills scores ([nSeq·heads·T, T]) with the scaled Q·Kᵀ
// logits of every (sequence, head) pair: each head's Q and K column
// bands are packed into contiguous arena scratch, multiplied on the
// tiled kernel, and scaled into the destination rows. Element values are
// bit-identical to the scalar reference (one ascending-k dot product per
// element, then a single multiply by scale); vit tests assert this
// against the pre-kernel-layer loop.
//
//quq:hotpath per-forward attention inner loop; scratch is arena-backed, no allocations here
func attnScores(ar *tensor.Arena, scores, q, k *tensor.Tensor, nSeq, heads, t, dh int, scale float64) {
	qh := ar.NewUninit(t, dh)
	kh := ar.NewUninit(t, dh)
	sh := ar.NewUninit(t, t)
	for sq := 0; sq < nSeq; sq++ {
		for hd := 0; hd < heads; hd++ {
			packHead(qh, q, sq*t, hd*dh)
			packHead(kh, k, sq*t, hd*dh)
			tensor.MatMulTInto(sh, qh, kh)
			base := (sq*heads + hd) * t
			for i := 0; i < t; i++ {
				srow := scores.Row(base + i)
				for j, d := range sh.Row(i) {
					srow[j] = d * scale
				}
			}
		}
	}
	ar.Put(sh)
	ar.Put(kh)
	ar.Put(qh)
}

// attnContext fills ctx ([S, dim]) with the P·V product of every
// (sequence, head) pair: the head's probability block and V column band
// are packed into arena scratch, multiplied on the tiled kernel, and
// scattered back into the head's columns. The reference loop skipped
// p == 0 terms; that skip is bit-neutral for the finite probabilities
// softmax produces (adding ±0 products never changes an accumulator),
// so results are bit-identical — vit tests assert it.
//
//quq:hotpath per-forward attention inner loop; scratch is arena-backed, no allocations here
func attnContext(ar *tensor.Arena, ctx, scores, v *tensor.Tensor, nSeq, heads, t, dh int) {
	vh := ar.NewUninit(t, dh)
	ph := ar.NewUninit(t, t)
	ch := ar.NewUninit(t, dh)
	for sq := 0; sq < nSeq; sq++ {
		for hd := 0; hd < heads; hd++ {
			packHead(vh, v, sq*t, hd*dh)
			base := (sq*heads + hd) * t
			copy(ph.Data(), scores.Data()[base*t:(base+t)*t])
			tensor.MatMulInto(ch, ph, vh)
			for i := 0; i < t; i++ {
				copy(ctx.Row(sq*t + i)[hd*dh:(hd+1)*dh], ch.Row(i))
			}
		}
	}
	ar.Put(ch)
	ar.Put(ph)
	ar.Put(vh)
}

// weights enumerates the block's GEMM weight tensors with their site
// names.
func (b *Block) weights(blk int, fn func(Site, *Linear)) {
	fn(Site{blk, "attn.qkv.w", KindWeight}, b.QKV)
	fn(Site{blk, "attn.proj.w", KindWeight}, b.Proj)
	fn(Site{blk, "mlp.fc1.w", KindWeight}, b.FC1)
	fn(Site{blk, "mlp.fc2.w", KindWeight}, b.FC2)
}

// params enumerates every parameter slice of the block for serialization
// and training, in a stable order.
func (b *Block) params(prefix string, fn func(name string, data []float64)) {
	fn(prefix+".ln1.g", b.LN1.Gamma)
	fn(prefix+".ln1.b", b.LN1.Beta)
	fn(prefix+".qkv.w", b.QKV.W.Data())
	fn(prefix+".qkv.b", b.QKV.B)
	fn(prefix+".proj.w", b.Proj.W.Data())
	fn(prefix+".proj.b", b.Proj.B)
	fn(prefix+".ln2.g", b.LN2.Gamma)
	fn(prefix+".ln2.b", b.LN2.Beta)
	fn(prefix+".fc1.w", b.FC1.W.Data())
	fn(prefix+".fc1.b", b.FC1.B)
	fn(prefix+".fc2.w", b.FC2.W.Data())
	fn(prefix+".fc2.b", b.FC2.B)
}
