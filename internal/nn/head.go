// Package nn is the training substrate of the repository: a linear-head
// fitter used to turn the synthetic-weight proxy models into genuine
// classifiers of the pattern task, and a full backpropagation trainer
// for the ViT-Nano model (train.go).
//
// The paper quantizes *pretrained* models; this package is what replaces
// "download the ImageNet checkpoint" in an offline pure-Go reproduction
// (DESIGN.md documents the substitution).
package nn

import (
	"math"
	"quq/internal/check"

	"quq/internal/data"
	"quq/internal/rng"
	"quq/internal/vit"
)

// HeadFitOptions configures FitHead.
type HeadFitOptions struct {
	// Epochs of full-batch gradient descent (default 200).
	Epochs int
	// LR is the learning rate (default 0.5, features are LayerNorm-scaled).
	LR float64
	// Momentum coefficient (default 0.9).
	Momentum float64
	// L2 weight decay (default 1e-4).
	L2 float64
	// Seed for the head initialization.
	Seed uint64
}

func (o *HeadFitOptions) defaults() {
	if o.Epochs == 0 {
		o.Epochs = 200
	}
	if o.LR == 0 {
		o.LR = 0.5
	}
	if o.Momentum == 0 {
		o.Momentum = 0.9
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
}

// FitHead trains the model's classification head by multinomial logistic
// regression on the (frozen) backbone features of the labelled samples,
// writing the trained weights into the model in place. It returns the
// final training accuracy.
//
// This is the repo's stand-in for a pretrained checkpoint on the proxy
// zoo: the backbone provides fixed random features with trained-ViT
// activation statistics, and the fitted head gives the model genuine
// class structure — real margins, real top-1 — on the synthetic task.
func FitHead(m vit.Model, samples []data.Sample, opts HeadFitOptions) float64 {
	opts.defaults()
	head := headOf(m)
	dim, classes := head.In(), head.Out()

	feats := make([][]float64, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		feats[i] = vit.Features(m, s.Image, vit.ForwardOpts{})
		labels[i] = s.Label
	}

	src := rng.New(opts.Seed ^ 0xF17)
	w := make([]float64, dim*classes)
	b := make([]float64, classes)
	for i := range w {
		w[i] = src.Gauss(0, 0.01)
	}
	vw := make([]float64, len(w))
	vb := make([]float64, len(b))
	gw := make([]float64, len(w))
	gb := make([]float64, len(b))
	probs := make([]float64, classes)

	n := float64(len(samples))
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for i := range gw {
			gw[i] = opts.L2 * w[i]
		}
		for i := range gb {
			gb[i] = 0
		}
		for i, f := range feats {
			// probs = softmax(fᵀW + b)
			maxv := math.Inf(-1)
			for c := 0; c < classes; c++ {
				s := b[c]
				for d := 0; d < dim; d++ {
					s += f[d] * w[d*classes+c]
				}
				probs[c] = s
				if s > maxv {
					maxv = s
				}
			}
			var sum float64
			for c := range probs {
				probs[c] = math.Exp(probs[c] - maxv)
				sum += probs[c]
			}
			for c := range probs {
				probs[c] /= sum
			}
			probs[labels[i]] -= 1
			for d := 0; d < dim; d++ {
				fd := f[d] / n
				if fd == 0 {
					continue
				}
				row := w[d*classes : (d+1)*classes]
				_ = row
				for c := 0; c < classes; c++ {
					gw[d*classes+c] += fd * probs[c]
				}
			}
			for c := 0; c < classes; c++ {
				gb[c] += probs[c] / n
			}
		}
		for i := range w {
			vw[i] = opts.Momentum*vw[i] - opts.LR*gw[i]
			w[i] += vw[i]
		}
		for i := range b {
			vb[i] = opts.Momentum*vb[i] - opts.LR*gb[i]
			b[i] += vb[i]
		}
	}

	copy(head.W.Data(), w)
	copy(head.B, b)

	hit := 0
	for i, f := range feats {
		best, bi := math.Inf(-1), 0
		for c := 0; c < classes; c++ {
			s := b[c]
			for d := 0; d < dim; d++ {
				s += f[d] * w[d*classes+c]
			}
			if s > best {
				best, bi = s, c
			}
		}
		if bi == labels[i] {
			hit++
		}
	}
	return float64(hit) / n
}

// headOf extracts the classification head layer from a model.
func headOf(m vit.Model) *vit.Linear {
	var head *vit.Linear
	m.ForEachWeight(func(s vit.Site, l *vit.Linear) {
		if s.Block == -1 && s.Name == "head.w" {
			head = l
		}
	})
	if head == nil {
		panic(check.Invariant("nn: model has no head layer"))
	}
	return head
}

// PretrainedZoo builds the proxy model for cfg and fits its head on a
// deterministic pattern training set, returning the model and its
// training-set accuracy. This is the standard way the experiments obtain
// their "pretrained" models.
func PretrainedZoo(cfg vit.Config, seed uint64, trainN int) (vit.Model, float64) {
	if trainN <= 0 {
		trainN = 300
	}
	m := vit.New(cfg, seed)
	train := data.PatternSamples(cfg.Channels, cfg.ImageSize, trainN, seed^0xBEEF)
	acc := FitHead(m, train, HeadFitOptions{Seed: seed})
	return m, acc
}
