package docmissing

// B is documented, but the package itself is not.
func B() int { return 2 }
