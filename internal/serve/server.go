package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"quq/internal/data"
	"quq/internal/ptq"
	"quq/internal/tensor"
)

// ReplicaHeader names the request header a replicating front-end (or a
// shard-aware client) stamps with the replica slot this backend holds
// for the request's key: 0 is the primary owner, 1..R-1 the successor
// replicas. The index is recorded on the registry entry and surfaced by
// /models; it never influences the cache key or the computation, so a
// wrong or missing header costs observability, not correctness.
const ReplicaHeader = "X-Quq-Replica"

// LatencyBudgetHeader names the request header a client sets to attach
// a per-request latency budget to a classify call (a Go duration such
// as "50ms"). Admission control sheds the request with 429 when its
// estimated queue wait already exceeds the budget; it overrides the
// server-wide -latency-budget default for that request only.
const LatencyBudgetHeader = "X-Quq-Latency-Budget"

// DigestHeader names the response header classify/quantize/snapshot
// responses stamp with the served entry's snapshot content address (hex
// SHA-256 of the snapshot payload). Replicas built from byte-identical
// calibrations carry identical digests, so the header lets any caller —
// and the anti-entropy sweeper — check replica agreement without
// downloading state. Absent when the entry is not snapshottable.
const DigestHeader = "X-Quq-Digest"

// Config assembles the server from its tunables.
type Config struct {
	// Registry tunes the model registry: which configs are servable, the
	// calibration sample budget, and the cache capacity.
	Registry RegistryOptions
	// Batcher tunes the micro-batching scheduler: batch geometry, linger,
	// queue capacity, worker pool, and the default latency budget.
	Batcher BatcherOptions
	// Governor tunes the occupancy-adaptive scheduler that re-splits the
	// core budget between batching and intra-op parallelism. The zero
	// value disables adaptation (static split).
	Governor GovernorOptions
	// RequestTimeout bounds one request end-to-end, including a
	// first-request calibration (default 60s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxImagesPerRequest caps the images in one classify call
	// (default 64).
	MaxImagesPerRequest int
}

func (c *Config) defaults() {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxImagesPerRequest <= 0 {
		c.MaxImagesPerRequest = 64
	}
}

// Server is the HTTP inference service.
type Server struct {
	cfg     Config
	met     *Metrics
	reg     *Registry
	bat     *Batcher
	handler http.Handler
}

// New assembles the service.
func New(cfg Config) *Server {
	cfg.defaults()
	met := NewMetrics()
	gov := NewGovernor(cfg.Governor, met)
	s := &Server{
		cfg: cfg,
		met: met,
		reg: NewRegistry(cfg.Registry, met),
		bat: NewBatcher(cfg.Batcher, gov, met),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", s.handleClassify)
	mux.HandleFunc("POST /v1/quantize", s.handleQuantize)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshotPost)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.middleware(mux)
	return s
}

// Handler returns the fully wrapped HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the model registry (introspection, warm-up, tests).
func (s *Server) Registry() *Registry { return s.reg }

// SetIntPath toggles the fully-integer weight path at runtime; see
// Registry.SetIntPath.
func (s *Server) SetIntPath(on bool) (int, error) { return s.reg.SetIntPath(on) }

// Metrics exposes the instrument set.
func (s *Server) Metrics() *Metrics { return s.met }

// Drain stops admission, waits for in-flight batches, then joins any
// detached registry builds (graceful shutdown; pair with
// http.Server.Shutdown).
func (s *Server) Drain(ctx context.Context) error {
	if err := s.bat.Drain(ctx); err != nil {
		return err
	}
	return s.reg.Drain(ctx)
}

// middleware wraps the mux with, outermost first: panic recovery,
// request accounting and latency, body size limiting, and the
// per-request timeout context.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.Requests.Inc()
		defer func() {
			s.met.Latency.Observe(time.Since(start).Seconds())
			if rec := recover(); rec != nil {
				s.met.Panics.Inc()
				s.met.Failures.Inc()
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// modelRequest is the key-selecting part of a request body; zero values
// pick the defaults (QUQ, 6 bits, partial — the paper's headline
// setting).
type modelRequest struct {
	Model  string `json:"model"`
	Method string `json:"method"`
	Bits   int    `json:"bits"`
	Regime string `json:"regime"`
}

// key validates and canonicalizes the selection (defaults, spelling,
// enum membership) via the same KeyFromWire the quq-shard front-end
// hashes with, so routing and caching always agree on key identity.
func (m *modelRequest) key() (Key, error) {
	return KeyFromWire(m.Model, m.Method, m.Bits, m.Regime)
}

type classifyRequest struct {
	modelRequest
	Images [][]float64 `json:"images"`
}

type classifyResult struct {
	ArgMax int       `json:"argmax"`
	Logits []float64 `json:"logits"`
}

type classifyResponse struct {
	Key     string           `json:"key"`
	Results []classifyResult `json:"results"`
}

// handleClassify decodes images, resolves (building if needed) the
// quantized model, routes the images through the micro-batcher and
// returns per-image logits.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if len(req.Images) == 0 {
		s.writeError(w, fmt.Errorf("%w: no images", ErrBadRequest))
		return
	}
	if len(req.Images) > s.cfg.MaxImagesPerRequest {
		s.writeError(w, fmt.Errorf("%w: %d images exceeds the per-request limit %d",
			ErrBadRequest, len(req.Images), s.cfg.MaxImagesPerRequest))
		return
	}
	key, err := req.key()
	if err != nil {
		s.writeError(w, err)
		return
	}
	cfg, ok := s.reg.Config(key.Config)
	if !ok {
		s.writeError(w, fmt.Errorf("%w %q", ErrUnknownModel, key.Config))
		return
	}
	images := make([]*tensor.Tensor, len(req.Images))
	for i, flat := range req.Images {
		img, err := data.ImageFromFlat(cfg, flat)
		if err != nil {
			s.writeError(w, fmt.Errorf("%w: image %d: %v", ErrBadRequest, i, err))
			return
		}
		images[i] = img
	}

	qm, _, err := s.reg.Get(r.Context(), key)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.NoteReplica(key, replicaFrom(r))
	if d := s.reg.Digest(key); d != "" {
		w.Header().Set(DigestHeader, d)
	}
	budget, err := latencyBudgetFrom(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	items, err := s.bat.SubmitBudget(r.Context(), key.String(), qm, images, budget)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := Await(r.Context(), items); err != nil {
		s.writeError(w, err)
		return
	}
	resp := classifyResponse{Key: key.String(), Results: make([]classifyResult, len(items))}
	for i, it := range items {
		if it.Err != nil {
			s.writeError(w, it.Err)
			return
		}
		resp.Results[i] = classifyResult{ArgMax: it.Out.ArgMax(), Logits: it.Out.Data()}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type quantizeResponse struct {
	Key     string  `json:"key"`
	Cached  bool    `json:"cached"`
	BuildMS float64 `json:"build_ms"`
}

// handleQuantize warms a registry entry without classifying anything.
func (s *Server) handleQuantize(w http.ResponseWriter, r *http.Request) {
	var req modelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	key, err := req.key()
	if err != nil {
		s.writeError(w, err)
		return
	}
	start := time.Now()
	_, cached, err := s.reg.Get(r.Context(), key)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.NoteReplica(key, replicaFrom(r))
	if d := s.reg.Digest(key); d != "" {
		w.Header().Set(DigestHeader, d)
	}
	s.writeJSON(w, http.StatusOK, quantizeResponse{
		Key:     key.String(),
		Cached:  cached,
		BuildMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleSnapshotGet serves a key's snapshot file image — the transfer
// format anti-entropy repair re-pushes to a divergent replica. The key
// comes URL-escaped in the ?key= query parameter.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	keyStr := r.URL.Query().Get("key")
	if keyStr == "" {
		s.writeError(w, fmt.Errorf("%w: missing key query parameter", ErrBadRequest))
		return
	}
	key, err := ParseKey(keyStr)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.reg.Warming() {
		s.writeError(w, ErrWarming)
		return
	}
	blob, digest, err := s.reg.Snapshot(key)
	if err != nil {
		if errors.Is(err, ErrSnapshotUnavailable) {
			s.writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(DigestHeader, digest)
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(blob); err != nil {
		// The client hung up mid-transfer; the failure counter is the
		// only remaining audience.
		s.met.Failures.Inc()
	}
}

type snapshotInstallResponse struct {
	Key    string `json:"key"`
	Digest string `json:"digest"`
}

// handleSnapshotPost verifies and installs a snapshot file image,
// replacing the key's resident entry — the write half of the
// anti-entropy repair path.
func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	if s.reg.Warming() {
		s.writeError(w, ErrWarming)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err))
		return
	}
	key, digest, err := s.reg.InstallSnapshot(data)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set(DigestHeader, digest)
	s.writeJSON(w, http.StatusOK, snapshotInstallResponse{Key: key, Digest: digest})
}

// latencyBudgetFrom reads the per-request latency budget header; zero
// (defer to the server-wide default) when absent. A malformed duration
// is a client mistake and reported as one, not silently ignored —
// otherwise a typo would quietly disable the shedding the client asked
// for.
func latencyBudgetFrom(r *http.Request) (time.Duration, error) {
	v := r.Header.Get(LatencyBudgetHeader)
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("%w: invalid %s %q (want a positive Go duration such as 50ms)",
			ErrBadRequest, LatencyBudgetHeader, v)
	}
	return d, nil
}

// replicaFrom reads the replica slot off a request; -1 when the header
// is absent or malformed (direct traffic carries no replica identity).
func replicaFrom(r *http.Request) int {
	v := r.Header.Get(ReplicaHeader)
	if v == "" {
		return -1
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

type modelInfo struct {
	Name      string `json:"name"`
	Variant   string `json:"variant"`
	ImageSize int    `json:"image_size"`
	Channels  int    `json:"channels"`
	Classes   int    `json:"classes"`
	Pixels    int    `json:"pixels"` // flat image length /v1/classify expects
}

type modelsResponse struct {
	Models  []modelInfo `json:"models"`
	Methods []string    `json:"methods"`
	Entries []EntryInfo `json:"entries"`
}

// handleModels lists servable configs, methods, and cached entries.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	resp := modelsResponse{Methods: MethodNames(), Entries: s.reg.Entries()}
	for _, name := range s.reg.ConfigNames() {
		cfg, _ := s.reg.Config(name)
		resp.Models = append(resp.Models, modelInfo{
			Name:      cfg.Name,
			Variant:   cfg.Variant.String(),
			ImageSize: cfg.ImageSize,
			Channels:  cfg.Channels,
			Classes:   cfg.Classes,
			Pixels:    cfg.Channels * cfg.ImageSize * cfg.ImageSize,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.met.Registry.WriteText(w); err != nil {
		// The client hung up mid-scrape; nothing useful left to do.
		s.met.Failures.Inc()
	}
}

// writeJSON writes a JSON response; an encode failure means the client
// disconnected, which only the failure counter needs to know.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.met.Failures.Inc()
	}
}

// writeError maps an error onto the HTTP status taxonomy: client
// mistakes to 400, backpressure and latency-budget shedding to 429
// (with Retry-After), draining to 503, timeouts to 504, everything
// else to 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverBudget):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrWarming):
		// Warm restart is about to finish; the state the client wants is
		// seconds away, so tell it to retry rather than failing over.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = http.StatusGatewayTimeout
	}
	if code >= 500 {
		s.met.Failures.Inc()
	}
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// compile-time link: the registry's products satisfy the classifier
// interface the batch path relies on.
var _ ptq.Classifier = (*ptq.QuantizedModel)(nil)
