package sfu

import (
	"math"
	"testing"

	"quq/internal/dist"
	"quq/internal/mathx"
	"quq/internal/quant"
	"quq/internal/qub"
	"quq/internal/rng"
)

func TestUnitSoftmaxEndToEnd(t *testing.T) {
	src := rng.New(1)
	// Calibrate the input quantizer on attention-logit-shaped data and
	// the output quantizer on softmax outputs.
	logits := make([]float64, 8192)
	for i := range logits {
		logits[i] = src.Gauss(0, 4)
	}
	pin := quant.PRA(logits, 8, quant.DefaultPRAOptions())
	probs := dist.Sample(dist.PostSoftmax, 8192, src.Split())
	pout := quant.PRA(probs, 8, quant.DefaultPRAOptions())

	u, err := NewUnit(pin, pout)
	if err != nil {
		t.Fatal(err)
	}
	outRegs, err := u.OutRegisters()
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 50; trial++ {
		n := 8 + src.Intn(56)
		row := make([]float64, n)
		for i := range row {
			row[i] = src.Gauss(0, 4)
		}
		// Float reference through the same input quantization.
		ref := make([]float64, n)
		for i, v := range row {
			ref[i] = pin.Value(v)
		}
		mathx.SoftmaxInPlace(ref)

		words := qub.EncodeTensor(pin, row)
		got := qub.DecodeTensor(u.Softmax(words), outRegs)

		var sum float64
		for i := range got {
			// Tolerance: the kernel approximation (≈1%) plus one output
			// quantization step.
			step := pout.BaseDelta() * 4
			if math.Abs(got[i]-pout.Value(ref[i])) > 0.015+step {
				t.Fatalf("trial %d elem %d: SFU %v, reference %v", trial, i, got[i], ref[i])
			}
			sum += got[i]
		}
		if math.Abs(sum-1) > 0.1 {
			t.Fatalf("SFU softmax row sums to %v", sum)
		}
	}
}

func TestUnitGELUEndToEnd(t *testing.T) {
	src := rng.New(2)
	pre := make([]float64, 8192)
	for i := range pre {
		pre[i] = src.Gauss(0, 1.5)
	}
	pin := quant.PRA(pre, 8, quant.DefaultPRAOptions())
	post := make([]float64, len(pre))
	for i, v := range pre {
		post[i] = mathx.Gelu(v)
	}
	pout := quant.PRA(post, 8, quant.DefaultPRAOptions())

	u, err := NewUnit(pin, pout)
	if err != nil {
		t.Fatal(err)
	}
	outRegs, err := u.OutRegisters()
	if err != nil {
		t.Fatal(err)
	}

	xs := pre[:1024]
	words := qub.EncodeTensor(pin, xs)
	got := qub.DecodeTensor(u.GELU(words), outRegs)
	for i, x := range xs {
		want := mathx.Gelu(pin.Value(x))
		tol := 0.03 + 0.03*math.Abs(want) + 2*pout.Slot(quant.CPos).Delta
		if math.Abs(got[i]-want) > tol {
			t.Fatalf("elem %d (x=%v): SFU GELU %v, reference %v", i, x, got[i], want)
		}
	}
}

func TestNewUnitRejectsInvalid(t *testing.T) {
	good := quant.ParamsForUniform(0.1, 8)
	bad := &quant.Params{Bits: 8}
	if _, err := NewUnit(bad, good); err == nil {
		t.Fatal("accepted invalid input params")
	}
	if _, err := NewUnit(good, bad); err == nil {
		t.Fatal("accepted invalid output params")
	}
}
