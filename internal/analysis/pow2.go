package analysis

import (
	"go/ast"
	"go/constant"
)

// Pow2 flags math.Pow(2, k) and math.Exp2(k): QUQ constrains every
// scale-factor ratio to an exact power of two of the shared base Δ
// (paper Eq. (4)), and float exponentiation only approximates that —
// math.Pow goes through log/exp and can land one ULP off the exact
// power, which Validate's power-of-two check then rejects (or worse,
// silently accepts a near-power). Integer shifts (1 << k) or
// math.Ldexp(x, k) produce the exact value. The check runs repo-wide:
// genuinely float-domain exponentiation is annotated //quq:float-ok.
var Pow2 = &Analyzer{
	Name:      "pow2",
	Doc:       "power-of-two scale ratios must use shifts or math.Ldexp, not math.Pow/math.Exp2 (Eq. (4))",
	Directive: "float-ok",
	Run:       runPow2,
}

func runPow2(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(pass.Info, call, "math", "Exp2") {
				pass.Reportf(call.Pos(), "math.Exp2 computes a power of two in floating point; use 1 << k or math.Ldexp(1, k) for the exact value")
				return true
			}
			if isPkgCall(pass.Info, call, "math", "Pow") && len(call.Args) == 2 && isConstTwo(pass, call.Args[0]) {
				pass.Reportf(call.Pos(), "math.Pow(2, k) computes a power-of-two scale ratio approximately; use 1 << k or math.Ldexp(1, k) for the exact value (Eq. (4))")
			}
			return true
		})
	}
}

// isConstTwo reports whether e is the constant 2 (of any numeric type).
func isConstTwo(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	return ok && v == 2
}
