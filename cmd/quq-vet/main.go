// Command quq-vet runs the repository's domain-specific static-analysis
// pass (internal/analysis) over the given packages.
//
// Usage:
//
//	quq-vet [-list] [packages]
//
// Packages default to ./... — every package under the current module,
// skipping testdata, hidden and artifact directories. Diagnostics print
// as file:line:col: check: message; the exit status is 0 when the tree
// is clean, 1 when any check fired, and 2 when loading or type-checking
// failed.
//
// quq-vet enforces the invariants the QUQ reproduction's hardware
// claims rest on; see the Verification section of README.md for the
// check catalogue and the //quq:<token> suppression directives.
package main

import (
	"flag"
	"fmt"
	"os"

	"quq/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list registered checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: quq-vet [-list] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			suffix := ""
			if a.Directive != "" {
				suffix = fmt.Sprintf(" (suppress: //quq:%s <reason>)", a.Directive)
			}
			fmt.Printf("%-12s %s%s\n", a.Name, a.Doc, suffix)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "quq-vet:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quq-vet:", err)
		return 2
	}

	status := 0
	var total int
	for _, dir := range dirs {
		importPath, err := loader.DirImportPath(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quq-vet:", err)
			return 2
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quq-vet:", err)
			return 2
		}
		diags := analysis.Run(pkg)
		for _, d := range diags {
			fmt.Println(d)
		}
		total += len(diags)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "quq-vet: %d finding(s)\n", total)
		status = 1
	}
	return status
}
