// Package shardclient is the shard-aware client library for a quq
// fleet. A Client bootstraps from the front-end's GET /cluster page,
// builds a local replica of the consistent-hash ring from the same
// placement parameters (vnode count, load factor, member list), and
// routes reads directly to the workers that own each key — skipping
// the proxy hop on the hot path. The local ring is byte-identical to
// the server's by construction (same FNV-1a hashing, same tie-breaks),
// which the property tests pin.
//
// Routing policy mirrors the front-end's replication contract:
//
//   - Classify (a read) goes straight to the key's replica owners in
//     slot order, falling back to the proxy — never to an arbitrary
//     worker — when every owner is unreachable. Routing past the
//     replica set is the proxy's decision to make, because it is the
//     component that ejects members and counts failovers.
//   - Quantize (calibration-bearing) always goes through the proxy,
//     which fans it out to all R owners; a client writing to a single
//     worker would silently under-replicate the key.
//
// Every proxied response carries the membership epoch in
// shard.EpochHeader; the client compares it to the epoch its ring was
// built from and refreshes the view on mismatch, so elastic membership
// changes (join/drain/leave) propagate without any push channel.
package shardclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"quq/internal/serve"
	"quq/internal/shard"
)

// ProxyVia is the Via value reported when a request was served through
// the front-end proxy rather than a directly-addressed worker.
const ProxyVia = "proxy"

// ErrStaleView is wrapped into errors caused by the client's cached
// ring view disagreeing with the fleet (all supposed owners gone).
var ErrStaleView = errors.New("shardclient: cluster view is stale")

// Options configures a Client.
type Options struct {
	// HTTPClient is the transport for both worker and proxy requests.
	// Defaults to a plain &http.Client{}.
	HTTPClient *http.Client
}

// Client routes requests onto a quq shard fleet using a locally held
// replica of the front-end's ring. Safe for concurrent use.
type Client struct {
	front string
	hc    *http.Client

	mu       sync.RWMutex
	ring     *shard.Ring
	epoch    uint64
	replicas int
}

// New builds a client and performs the initial /cluster fetch; it
// fails if the front-end is unreachable or serves an unusable view.
func New(ctx context.Context, frontURL string, opts Options) (*Client, error) {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	c := &Client{front: normalizeURL(frontURL), hc: hc}
	if err := c.Refresh(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// normalizeURL applies the same base-URL spelling rules the front-end
// applies to backend addresses.
func normalizeURL(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	if !containsScheme(u) {
		u = "http://" + u
	}
	return u
}

func containsScheme(u string) bool {
	for i := 0; i+2 < len(u); i++ {
		if u[i] == ':' && u[i+1] == '/' && u[i+2] == '/' {
			return true
		}
	}
	return false
}

// Refresh re-fetches the /cluster view and rebuilds the local ring.
// The swap is atomic: requests either see the old complete view or the
// new complete view, never a half-built ring.
func (c *Client) Refresh(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.front+"/cluster", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("shardclient: fetching cluster view: %w", err)
	}
	var view shard.ClusterView
	if err := decodeBody(resp, &view); err != nil {
		return fmt.Errorf("shardclient: cluster view: %w", err)
	}
	if view.VNodes <= 0 {
		return fmt.Errorf("shardclient: cluster view has vnodes=%d; cannot replicate the ring", view.VNodes)
	}
	ring := shard.NewRing(view.VNodes, view.MaxLoadFactor)
	for _, cb := range view.Backends {
		b := ring.Add(cb.Addr)
		b.SetHealthy(cb.Healthy)
	}
	c.mu.Lock()
	c.ring, c.epoch, c.replicas = ring, view.Epoch, view.Replicas
	c.mu.Unlock()
	return nil
}

// Epoch returns the membership epoch the local ring was built from.
func (c *Client) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// Replicas returns the fleet's replication factor.
func (c *Client) Replicas() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.replicas
}

// view snapshots the routing state for one request.
func (c *Client) view() (*shard.Ring, uint64, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring, c.epoch, c.replicas
}

// Owner returns the primary owner's address for a registry key string,
// from the local ring. The property tests compare this against the
// server ring for byte-identical placement.
func (c *Client) Owner(key string) (string, bool) {
	ring, _, _ := c.view()
	b, ok := ring.Owner(key)
	if !ok {
		return "", false
	}
	return b.Addr(), true
}

// OwnerSet returns the key's full replica set, slot-ordered, as
// addresses.
func (c *Client) OwnerSet(key string) []string {
	ring, _, replicas := c.view()
	owners := ring.OwnerN(key, max(replicas, 1))
	addrs := make([]string, len(owners))
	for i, b := range owners {
		addrs[i] = b.Addr()
	}
	return addrs
}

// Classification is one image's classify outcome.
type Classification struct {
	ArgMax int       `json:"argmax"`
	Logits []float64 `json:"logits"`
}

// ClassifyResult is a classify response plus where it was served.
type ClassifyResult struct {
	Key     string           `json:"key"`
	Results []Classification `json:"results"`
	// Via is the worker address that served the request, or ProxyVia
	// when the request fell back to the front-end.
	Via string `json:"-"`
}

// QuantizeResult is a quantize response plus where it was served.
type QuantizeResult struct {
	Key     string  `json:"key"`
	Cached  bool    `json:"cached"`
	BuildMS float64 `json:"build_ms"`
	Via     string  `json:"-"`
}

// modelSelector is the wire shape both endpoints share.
type modelSelector struct {
	Model  string      `json:"model"`
	Method string      `json:"method"`
	Bits   int         `json:"bits"`
	Regime string      `json:"regime"`
	Images [][]float64 `json:"images,omitempty"`
}

// Classify routes a classify request directly to the key's replica
// owners in slot order, stamping each attempt with its replica slot.
// A worker connection failure marks that owner locally unhealthy (the
// mark lasts until the next Refresh) and moves to the next slot; when
// the whole replica set is unreachable the request falls back to the
// proxy, whose failover policy takes over. Any HTTP response, whatever
// its status, is final — backpressure (429) in particular must reach
// the caller, not trigger a stampede of re-sends.
func (c *Client) Classify(ctx context.Context, model, method string, bits int, regime string, images [][]float64) (*ClassifyResult, error) {
	key, err := serve.KeyFromWire(model, method, bits, regime)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(modelSelector{Model: model, Method: method, Bits: bits, Regime: regime, Images: images})
	if err != nil {
		return nil, err
	}
	ring, _, replicas := c.view()
	for slot, b := range ring.OwnerN(key.String(), max(replicas, 1)) {
		if !b.Healthy() {
			continue
		}
		resp, err := c.post(ctx, b.Addr()+"/v1/classify", body, slot)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Locally observed failure: stop routing to this owner until
			// the next view refresh. The front-end's prober owns the real
			// eject/readmit decision; this is just the client not re-dialing
			// a dead socket on every request.
			b.SetHealthy(false)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The worker is alive but not serving yet — typically a
			// restarted owner still warm-loading its snapshot dir. Its
			// replica sibling (or the proxy) can answer now, so move on
			// WITHOUT marking the owner unhealthy: it will be back in
			// seconds and demoting it would steer reads away long after
			// the warm restart completes.
			//quq:errdrop-ok best-effort drain for connection reuse; the 503 status is the whole verdict
			_, _ = io.Copy(io.Discard, resp.Body)
			//quq:errdrop-ok response deliberately abandoned in favor of the next replica
			_ = resp.Body.Close()
			continue
		}
		var out ClassifyResult
		if err := decodeBody(resp, &out); err != nil {
			return nil, fmt.Errorf("classify on %s: %w", b.Addr(), err)
		}
		out.Via = b.Addr()
		return &out, nil
	}
	// Every owner unreachable (or the view so stale it lists none):
	// the proxy is the arbiter of routing beyond the replica set.
	var out ClassifyResult
	if err := c.viaProxy(ctx, "/v1/classify", body, &out); err != nil {
		return nil, err
	}
	out.Via = ProxyVia
	return &out, nil
}

// Quantize warms a key through the front-end proxy, which fans the
// build out to all R replica owners. Deliberately never direct: a
// client-side single-worker quantize would under-replicate the key.
func (c *Client) Quantize(ctx context.Context, model, method string, bits int, regime string) (*QuantizeResult, error) {
	if _, err := serve.KeyFromWire(model, method, bits, regime); err != nil {
		return nil, err
	}
	body, err := json.Marshal(modelSelector{Model: model, Method: method, Bits: bits, Regime: regime})
	if err != nil {
		return nil, err
	}
	var out QuantizeResult
	if err := c.viaProxy(ctx, "/v1/quantize", body, &out); err != nil {
		return nil, err
	}
	out.Via = ProxyVia
	return &out, nil
}

// viaProxy posts through the front-end and observes the epoch header
// on the way back: a mismatch against the local view triggers a
// refresh so the next request routes on current membership.
func (c *Client) viaProxy(ctx context.Context, path string, body []byte, out any) error {
	resp, err := c.post(ctx, c.front+path, body, -1)
	if err != nil {
		return fmt.Errorf("shardclient: proxy %s: %w", path, err)
	}
	c.observeEpoch(ctx, resp.Header.Get(shard.EpochHeader))
	return decodeBody(resp, out)
}

// observeEpoch refreshes the cached view when a proxied response
// carries a different membership epoch. The refresh is best-effort:
// the response in hand is already valid, and a failed refresh leaves
// the old view in place for the next mismatch to retry.
func (c *Client) observeEpoch(ctx context.Context, header string) {
	if header == "" {
		return
	}
	seen, err := strconv.ParseUint(header, 10, 64)
	if err != nil {
		return
	}
	c.mu.RLock()
	current := c.epoch
	c.mu.RUnlock()
	if seen == current {
		return
	}
	//quq:errdrop-ok best-effort staleness repair; the triggering response is valid and the old view survives for the next mismatch to retry
	_ = c.Refresh(ctx)
}

// post issues one JSON POST; slot >= 0 stamps the replica slot the
// target occupies for the key (advisory observability on the worker).
func (c *Client) post(ctx context.Context, url string, body []byte, slot int) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if slot >= 0 {
		req.Header.Set(serve.ReplicaHeader, strconv.Itoa(slot))
	}
	return c.hc.Do(req)
}

// decodeBody reads, closes and decodes a response body; non-200
// statuses surface the server's error string.
func decodeBody(resp *http.Response, out any) error {
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.Unmarshal(body, out)
}
