package tensor

// The 4×4 GEMM micro-kernel behind matMulRange/matMulTRange: 16 dot
// products of four A rows against a shared k×4 packed B panel, every
// accumulator seeing its terms in ascending-k order. micro4x4 is a
// variable so amd64 can swap in the AVX implementation at init when the
// CPU supports it; both implementations perform the identical sequence
// of IEEE-754 multiplies and adds per output element (the vector kernel
// computes the four column lanes of one row with one VMULPD+VADDPD pair
// — lane-wise these are the same two roundings as the scalar
// `c += av*b`, and no FMA contraction is ever used), so swapping
// kernels can never change a result bit.
var micro4x4 func(c *[16]float64, a0, a1, a2, a3, bp []float64, k int) = micro4x4Go

// micro4x4Go is the portable micro-kernel:
// c[r*4+j] = Σ_kk a_r[kk]·bp[kk*4+j].
func micro4x4Go(c *[16]float64, a0, a1, a2, a3, bp []float64, k int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for kk := 0; kk < k; kk++ {
		bq := bp[kk*4 : kk*4+4]
		b0, b1, b2, b3 := bq[0], bq[1], bq[2], bq[3]
		av := a0[kk]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[kk]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[kk]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[kk]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	c[0], c[1], c[2], c[3] = c00, c01, c02, c03
	c[4], c[5], c[6], c[7] = c10, c11, c12, c13
	c[8], c[9], c[10], c[11] = c20, c21, c22, c23
	c[12], c[13], c[14], c[15] = c30, c31, c32, c33
}
