package accel

import (
	"fmt"
	"math"

	"quq/internal/quant"
	"quq/internal/qub"
	"quq/internal/sfu"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// ModelRunner executes an entire plain ViT on the QUA datapath: the patch
// embedding and head GEMMs run as QUB integer matrix multiplies, every
// transformer block runs on a BlockRunner, and the final LayerNorm runs
// on the integer SFU. Only the input image and the output logits cross
// the float boundary.
//
// Swin and DeiT variants are served by the per-block runner; the whole-
// model chain is provided for the plain ViT, which is the architecture
// the paper's accelerator discussion walks through.
type ModelRunner struct {
	m   *vit.ViT
	arr ArrayConfig

	embedIn  *quant.Params // patch vectors
	embedW   *quant.Params
	embedOut *quant.Params // token stream entering block 0
	blocks   []*BlockRunner
	finalLN  *sfu.LayerNormUnit
	headIn   *quant.Params
	headW    *quant.Params
	headOut  *quant.Params

	wEmbed, wHead   []qub.Word
	rWEmbed, rWHead qub.Registers
}

// ModelStats aggregates the cycle accounting of one inference.
type ModelStats struct {
	GEMMCycles int64
	MACs       int64
}

// NewModelRunner calibrates every quantization point of the model over
// the calibration images and prepares the integer pipeline.
func NewModelRunner(model vit.Model, calib []*tensor.Tensor, bits int, arr ArrayConfig) (*ModelRunner, error) {
	m, ok := model.(*vit.ViT)
	if !ok {
		return nil, fmt.Errorf("accel: ModelRunner supports the plain ViT variant")
	}
	cfg := m.Config()
	if cfg.Variant != vit.VariantViT {
		return nil, fmt.Errorf("accel: ModelRunner supports the plain ViT variant")
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("accel: no calibration images")
	}

	// Collect per-site samples over the calibration set, plus the
	// tokenized block inputs needed by the per-block calibrators.
	siteAcc := map[string][]float64{}
	blockInputs := make([][]*tensor.Tensor, cfg.Depth)
	var patchAcc, logitAcc []float64
	for _, img := range calib {
		patches := vit.Patchify(img, cfg.PatchSize)
		patchAcc = append(patchAcc, patches.Data()...)
		logits := m.Forward(img, vit.ForwardOpts{Tap: func(s vit.Site, x *tensor.Tensor) *tensor.Tensor {
			key := s.Key()
			switch {
			case s.Block == -1 && s.Name == "embed.out":
				blockInputs[0] = append(blockInputs[0], x.Clone())
				siteAcc[key] = append(siteAcc[key], x.Data()...)
			case s.Name == "resid2.out" && s.Block < cfg.Depth-1:
				blockInputs[s.Block+1] = append(blockInputs[s.Block+1], x.Clone())
			case s.Block == -1 && s.Name == "head.in":
				siteAcc[key] = append(siteAcc[key], x.Data()...)
			case s.Name == "resid2.out" && s.Block == cfg.Depth-1:
				siteAcc["final.in"] = append(siteAcc["final.in"], x.Data()...)
			}
			return x
		}})
		logitAcc = append(logitAcc, logits.Data()...)
	}
	cal := func(xs []float64) *quant.Params {
		return quant.CalibrateRefined(xs, bits, quant.DefaultPRAOptions(), quant.DefaultRefineOptions())
	}

	r := &ModelRunner{m: m, arr: arr}
	r.embedIn = cal(patchAcc)
	r.embedW = cal(m.Patch.W.Data())
	r.embedOut = cal(siteAcc[vit.Site{Block: -1, Name: "embed.out"}.Key()])
	r.headIn = cal(siteAcc[vit.Site{Block: -1, Name: "head.in"}.Key()])
	r.headW = cal(m.Head.W.Data())
	r.headOut = cal(logitAcc)

	for bi, blk := range m.Blocks {
		bp, err := CalibrateBlock(blk, blockInputs[bi], bits)
		if err != nil {
			return nil, fmt.Errorf("accel: block %d: %w", bi, err)
		}
		br, err := NewBlockRunner(blk, bp, arr)
		if err != nil {
			return nil, fmt.Errorf("accel: block %d: %w", bi, err)
		}
		r.blocks = append(r.blocks, br)
	}

	var err error
	lastIn := r.blocks[cfg.Depth-1].p.Resid2
	if r.finalLN, err = sfu.NewLayerNormUnit(lastIn, r.headIn, m.Final.Gamma, m.Final.Beta); err != nil {
		return nil, fmt.Errorf("accel: final layernorm: %w", err)
	}
	if r.rWEmbed, err = qub.RegistersFor(r.embedW); err != nil {
		return nil, err
	}
	r.wEmbed = qub.EncodeTensor(r.embedW, m.Patch.W.Data())
	if r.rWHead, err = qub.RegistersFor(r.headW); err != nil {
		return nil, err
	}
	r.wHead = qub.EncodeTensor(r.headW, m.Head.W.Data())
	return r, nil
}

// Run classifies one image entirely on the integer datapath and returns
// the logits plus the cycle accounting.
func (r *ModelRunner) Run(img *tensor.Tensor) (*tensor.Tensor, *ModelStats, error) {
	cfg := r.m.Config()
	stats := &ModelStats{}
	gemm := func(x []qub.Word, rx qub.Registers, w []qub.Word, rw qub.Registers,
		m, k, n int, bias []float64, pout *quant.Params) ([]qub.Word, error) {
		res, err := r.arr.GEMM(x, rx, w, rw, m, k, n, nil)
		if err != nil {
			return nil, err
		}
		stats.GEMMCycles += res.Stats.Cycles
		stats.MACs += res.Stats.MACs
		//quq:float-ok accumulator-unit derivation is requantizer configuration (exact power-of-two product), not per-element datapath work
		qu, err := NewQuantizeUnit(pout, rx.BaseDelta*rw.BaseDelta)
		if err != nil {
			return nil, err
		}
		var biasAcc []int64
		if bias != nil {
			biasAcc = make([]int64, n)
			//quq:float-ok one-time weight-loading conversion of the float bias into integer accumulator units
			unit := rx.BaseDelta * rw.BaseDelta
			for j, b := range bias {
				// RoundToEven, not +0.5 truncation: truncation after +0.5
				// rounds negative values toward zero (int64(-1.6) = -1
				// where -2 is nearest), biasing every negative bias up by
				// one accumulator unit.
				//quq:float-ok same weight-loading bias conversion
				biasAcc[j] = int64(math.RoundToEven(b / unit))
			}
		}
		out := make([]qub.Word, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				acc := res.Acc[i*n+j]
				if biasAcc != nil {
					acc += biasAcc[j]
				}
				out[i*n+j] = qub.Encode(pout, qu.Requantize(acc))
			}
		}
		return out, nil
	}

	// Patch embedding GEMM.
	patches := vit.Patchify(img, cfg.PatchSize)
	rIn, err := qub.RegistersFor(r.embedIn)
	if err != nil {
		return nil, nil, err
	}
	pe := qub.EncodeTensor(r.embedIn, patches.Data())
	embW, err := gemm(pe, rIn, r.wEmbed, r.rWEmbed, patches.Dim(0), cfg.PatchDim(), cfg.Dim, r.m.Patch.B, r.embedOut)
	if err != nil {
		return nil, nil, err
	}
	rEmb, err := qub.RegistersFor(r.embedOut)
	if err != nil {
		return nil, nil, err
	}
	emb := qub.DecodeTensor(embW, rEmb)

	// Token assembly (cls, registers, position embeddings) happens at the
	// token buffer in the quantized domain: the additions run on the
	// element-wise SFU; here the decoded integers are reassembled and
	// re-encoded with the block-input quantizer.
	nreg := 0
	if r.m.Reg != nil {
		nreg = r.m.Reg.Dim(0)
	}
	tokens := tensor.New(patches.Dim(0)+1+nreg, cfg.Dim)
	copy(tokens.Row(0), r.m.Cls)
	for i := 0; i < nreg; i++ {
		copy(tokens.Row(1+i), r.m.Reg.Row(i))
	}
	for row := 0; row < patches.Dim(0); row++ {
		copy(tokens.Row(1+nreg+row), emb[row*cfg.Dim:(row+1)*cfg.Dim])
	}
	tokens.AddInPlace(r.m.Pos)

	x := tokens
	for bi, br := range r.blocks {
		out, bstats, err := br.Run(x)
		if err != nil {
			return nil, nil, fmt.Errorf("accel: block %d: %w", bi, err)
		}
		stats.GEMMCycles += bstats.GEMMCycles
		stats.MACs += bstats.MACs
		x = out
	}

	// Final LayerNorm (SFU) on the class token, then the head GEMM.
	lastParams := r.blocks[len(r.blocks)-1].p.Resid2
	clsWords := qub.EncodeTensor(lastParams, x.Row(0))
	headRow := r.finalLN.Row(clsWords)
	rHead, err := qub.RegistersFor(r.headIn)
	if err != nil {
		return nil, nil, err
	}
	logitsW, err := gemm(headRow, rHead, r.wHead, r.rWHead, 1, cfg.Dim, cfg.Classes, r.m.Head.B, r.headOut)
	if err != nil {
		return nil, nil, err
	}
	rLogits, err := qub.RegistersFor(r.headOut)
	if err != nil {
		return nil, nil, err
	}
	logits := qub.DecodeTensor(logitsW, rLogits)
	return tensor.FromSlice(logits, cfg.Classes), stats, nil
}
