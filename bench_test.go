// Benchmarks regenerating each table and figure of the paper's
// evaluation at benchmark-friendly scale, plus micro-benchmarks of the
// quantization primitives. Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale artifacts come from `go run ./cmd/quq all`; these
// benches exist to time the pipelines and catch performance regressions.
package quq_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"quq"
	"quq/internal/accel"
	"quq/internal/baselines"
	"quq/internal/data"
	"quq/internal/dist"
	"quq/internal/experiments"
	"quq/internal/hweval"
	"quq/internal/memsim"
	"quq/internal/ptq"
	"quq/internal/quant"
	"quq/internal/qub"
	"quq/internal/rng"
	"quq/internal/serve"
	"quq/internal/sfu"
	"quq/internal/shard"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// BenchmarkTable1 regenerates the MSE comparison (reduced sample count).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(1<<13, 42)
	}
}

// benchZoo prepares a one-model zoo at benchmark scale, once.
var benchZooCache []*experiments.ZooModel

func benchZoo(b *testing.B) []*experiments.ZooModel {
	b.Helper()
	if benchZooCache == nil {
		benchZooCache = experiments.BuildZoo(experiments.ZooOptions{
			Configs:     []vit.Config{vit.ViTNano},
			TrainImages: 60,
			EvalImages:  20,
			CalibImages: 4,
			Seed:        7,
		})
	}
	return benchZooCache
}

// BenchmarkTable2 regenerates the partial-quantization comparison on a
// reduced zoo.
func BenchmarkTable2(b *testing.B) {
	zoo := benchZoo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(zoo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the full-quantization comparison on a
// reduced zoo.
func BenchmarkTable3(b *testing.B) {
	zoo := benchZoo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(zoo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the accelerator area/power table.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4()
	}
}

// BenchmarkFig2 regenerates the peak-memory sweep.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2(6, nil)
	}
}

// BenchmarkFig3 regenerates the distribution/quantization-point panels.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(1<<12, 4, 42)
	}
}

// BenchmarkFig7 regenerates the attention-retention experiment at
// reduced scale (ViT-Nano-sized model, few images).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(experiments.Fig7Options{Config: vit.ViTNano, Images: 2, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation runs the PRA design-choice sweep.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Ablations(1<<12, 6, 42)
	}
}

// --- Micro-benchmarks of the primitives ---

func benchSamples(n int) []float64 {
	return dist.Sample(dist.PreAddition, n, rng.New(99))
}

// BenchmarkPRA times Algorithm 2 on a 64k-element tensor.
func BenchmarkPRA(b *testing.B) {
	xs := benchSamples(1 << 16)
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.PRA(xs, 6, quant.DefaultPRAOptions())
	}
}

// BenchmarkCalibrateRefined times the full calibration pipeline.
func BenchmarkCalibrateRefined(b *testing.B) {
	xs := benchSamples(1 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quq.Calibrate(xs, 6)
	}
}

// BenchmarkQuantizeSlice times fake quantization throughput.
func BenchmarkQuantizeSlice(b *testing.B) {
	xs := benchSamples(1 << 16)
	p := quant.PRA(xs, 6, quant.DefaultPRAOptions())
	out := make([]float64, len(xs))
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.QuantizeSlice(out, xs)
	}
}

// BenchmarkQUBEncodeDecode times the codec round trip.
func BenchmarkQUBEncodeDecode(b *testing.B) {
	xs := benchSamples(1 << 14)
	p := quant.PRA(xs, 8, quant.DefaultPRAOptions())
	regs, err := qub.RegistersFor(p)
	if err != nil {
		b.Fatal(err)
	}
	words := qub.EncodeTensor(p, xs)
	b.SetBytes(int64(len(xs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qub.DecodeTensor(words, regs)
	}
}

// BenchmarkQUBDot times the Eq. (5) integer dot product.
func BenchmarkQUBDot(b *testing.B) {
	xs := benchSamples(1 << 12)
	ws := dist.Sample(dist.QueryWeight, 1<<12, rng.New(5))
	px := quant.PRA(xs, 6, quant.DefaultPRAOptions())
	pw := quant.PRA(ws, 6, quant.DefaultPRAOptions())
	rx, _ := qub.RegistersFor(px)
	rw, _ := qub.RegistersFor(pw)
	ex := qub.EncodeTensor(px, xs)
	ew := qub.EncodeTensor(pw, ws)
	b.SetBytes(int64(len(xs) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qub.Dot(ex, ew, rx, rw)
	}
}

// BenchmarkAccelGEMM times the bit-exact accelerator GEMM (64×96×64).
func BenchmarkAccelGEMM(b *testing.B) {
	xs := benchSamples(64 * 96)
	ws := dist.Sample(dist.QueryWeight, 96*64, rng.New(6))
	px := quant.PRA(xs, 6, quant.DefaultPRAOptions())
	pw := quant.PRA(ws, 6, quant.DefaultPRAOptions())
	ql, err := accel.NewQuantizedLinear(px, pw)
	if err != nil {
		b.Fatal(err)
	}
	ex := qub.EncodeTensor(px, xs)
	ew := qub.EncodeTensor(pw, ws)
	cfg := accel.DefaultArray(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.GEMM(ex, ql.XRegs, ew, ql.WRegs, 64, 96, 64, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockRunnerIntegerPath times one transformer block executed
// entirely on the integer QUA datapath (QUB GEMMs + integer SFUs).
func BenchmarkBlockRunnerIntegerPath(b *testing.B) {
	src := rng.New(12)
	blk := vit.NewBlock(48, 3, 4)
	blk.QKV.W.Apply(func(float64) float64 { return src.Gauss(0, 0.2) })
	blk.Proj.W.Apply(func(float64) float64 { return src.Gauss(0, 0.15) })
	blk.FC1.W.Apply(func(float64) float64 { return src.Gauss(0, 0.2) })
	blk.FC2.W.Apply(func(float64) float64 { return src.Gauss(0, 0.15) })
	x := tensor.New(17, 48)
	for i := range x.Data() {
		x.Data()[i] = src.Laplace(0.8)
	}
	params, err := accel.CalibrateBlock(blk, []*tensor.Tensor{x}, 8)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := accel.NewBlockRunner(blk, params, accel.DefaultArray(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runner.Run(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSFUSoftmax times the integer softmax kernel on a 64-wide row.
func BenchmarkSFUSoftmax(b *testing.B) {
	src := rng.New(13)
	row := make([]int64, 64)
	for i := range row {
		row[i] = sfu.ToFixed(src.Gauss(0, 4))
	}
	out := make([]int64, len(row))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sfu.Softmax(out, row)
	}
}

// BenchmarkForwardViTNano times one FP32 inference.
func BenchmarkForwardViTNano(b *testing.B) {
	m := vit.New(vit.ViTNano, 1)
	img := data.Images(vit.ViTNano, 1, 2)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(img, vit.ForwardOpts{})
	}
}

// BenchmarkForwardQuantized times one fully quantized inference.
func BenchmarkForwardQuantized(b *testing.B) {
	m := vit.New(vit.ViTNano, 1)
	calib := data.CalibrationSet(vit.ViTNano, 4, 3)
	qm, err := ptq.Quantize(m, ptq.NewQUQ(), ptq.CalibOptions{Bits: 6, Regime: ptq.Full, Images: calib})
	if err != nil {
		b.Fatal(err)
	}
	img := data.Images(vit.ViTNano, 1, 2)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qm.Forward(img)
	}
}

// BenchmarkBaselineCalibration times the comparison methods' calibration
// on one tensor.
func BenchmarkBaselineCalibration(b *testing.B) {
	m := vit.New(vit.ViTNano, 1)
	calib := data.CalibrationSet(vit.ViTNano, 4, 3)
	stats := ptq.Collect(m, calib, 8192)
	var st *ptq.SiteStats
	for _, s := range stats {
		if s.Site.Name == "resid1.out" {
			st = s
			break
		}
	}
	methods := []ptq.Method{baselines.BaseQ{}, baselines.PTQ4ViT{}, baselines.APQViT{}, baselines.FQViT{}, baselines.BiScaled{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		methods[i%len(methods)].CalibrateActivation(st, 6)
	}
}

// BenchmarkMemsim times one peak-memory walk.
func BenchmarkMemsim(b *testing.B) {
	blk := memsim.PaperBlocks(8)[2]
	for i := 0; i < b.N; i++ {
		memsim.Peak(blk, memsim.FullQuant(6))
	}
}

// BenchmarkHweval times one accelerator evaluation.
func BenchmarkHweval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hweval.Evaluate(hweval.DefaultConfig(hweval.QUADesign, 6, 64))
	}
}

// BenchmarkServeThroughput compares quq-serve end-to-end throughput for
// 16 images sent as 16 sequential single-image requests ("unbatched")
// versus one 16-image request coalesced by the micro-batcher
// ("batched"). On this single-core reproduction the batched path wins by
// amortizing HTTP round trips, JSON decoding and the linger window — not
// by parallelism. Results land in artifacts/BENCH_serve.json.
func BenchmarkServeThroughput(b *testing.B) {
	const images = 16
	s := serve.New(serve.Config{
		Registry: serve.RegistryOptions{Seed: 7, CalibImages: 2},
		Batcher:  serve.BatcherOptions{MaxBatch: images, Linger: 2 * time.Millisecond, QueueCap: 256},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(b *testing.B, body []byte) {
		b.Helper()
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bytes.NewBuffer(nil).ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}

	// Warm the registry so neither mode pays the calibration.
	post(b, mustMarshalBench(b, map[string]any{
		"model": "ViT-Nano", "method": "QUQ", "bits": 6,
		"images": benchFlatImages(1),
	}))

	flat := benchFlatImages(images)
	singles := make([][]byte, images)
	for i := range singles {
		singles[i] = mustMarshalBench(b, map[string]any{
			"model": "ViT-Nano", "method": "QUQ", "bits": 6,
			"images": flat[i : i+1],
		})
	}
	batched := mustMarshalBench(b, map[string]any{
		"model": "ViT-Nano", "method": "QUQ", "bits": 6,
		"images": flat,
	})

	var unbatchedIPS, batchedIPS float64
	b.Run("unbatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, body := range singles {
				post(b, body)
			}
		}
		unbatchedIPS = float64(b.N*images) / b.Elapsed().Seconds()
		b.ReportMetric(unbatchedIPS, "img/s")
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(b, batched)
		}
		batchedIPS = float64(b.N*images) / b.Elapsed().Seconds()
		b.ReportMetric(batchedIPS, "img/s")
	})

	if unbatchedIPS == 0 || batchedIPS == 0 {
		return // sub-benchmark filtered out; nothing coherent to record
	}
	artifact := struct {
		Images             int     `json:"images"`
		UnbatchedImgPerSec float64 `json:"unbatched_img_per_sec"`
		BatchedImgPerSec   float64 `json:"batched_img_per_sec"`
		Speedup            float64 `json:"speedup"`
	}{images, unbatchedIPS, batchedIPS, batchedIPS / unbatchedIPS}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("artifacts", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("artifacts", "BENCH_serve.json"), append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("serve throughput: unbatched %.1f img/s, batched %.1f img/s (%.2fx)",
		unbatchedIPS, batchedIPS, artifact.Speedup)
}

func mustMarshalBench(b *testing.B, v any) []byte {
	b.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

// benchFlatImages renders n deterministic ViT-Nano images as the flat
// JSON wire format.
func benchFlatImages(n int) [][]float64 {
	imgs := data.Images(vit.ViTNano, n, 4242)
	flat := make([][]float64, n)
	for i, img := range imgs {
		flat[i] = img.Data()
	}
	return flat
}

// BenchmarkMatMul times the tensor GEMM kernel (96×384×96).
func BenchmarkMatMul(b *testing.B) {
	src := rng.New(1)
	x := tensor.New(96, 384)
	w := tensor.New(384, 96)
	for i := range x.Data() {
		x.Data()[i] = src.Norm()
	}
	for i := range w.Data() {
		w.Data()[i] = src.Norm()
	}
	b.SetBytes(int64(96 * 384 * 96 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, w)
	}
}

// BenchmarkShardThroughput measures the quq-shard proxy tax: the same
// two-key workload (one image per request, keys alternating) sent
// directly to the owning quq-serve backend versus through the
// consistent-hash front-end. The front-end adds one loopback hop plus
// ring lookup and canonicalization; the ratio quantifies that overhead.
// Results land in artifacts/BENCH_shard.json.
func BenchmarkShardThroughput(b *testing.B) {
	const backendsN = 3
	backends := make([]*httptest.Server, backendsN)
	addrs := make([]string, backendsN)
	for i := range backends {
		s := serve.New(serve.Config{
			Registry: serve.RegistryOptions{Seed: 7, CalibImages: 2},
			Batcher:  serve.BatcherOptions{MaxBatch: 8, Linger: time.Millisecond, QueueCap: 256},
		})
		backends[i] = httptest.NewServer(s.Handler())
		defer backends[i].Close()
		addrs[i] = backends[i].URL
	}
	front := shard.New(shard.Options{Backends: addrs, ProbeInterval: -1, Retries: -1})
	defer front.Close()
	fs := httptest.NewServer(front.Handler())
	defer fs.Close()

	post := func(b *testing.B, url string, body []byte) {
		b.Helper()
		resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bytes.NewBuffer(nil).ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}

	img := benchFlatImages(1)
	sels := []map[string]any{
		{"model": "ViT-Nano", "method": "QUQ", "bits": 6, "images": img},
		{"model": "ViT-Nano", "method": "BaseQ", "bits": 6, "images": img},
	}
	bodies := make([][]byte, len(sels))
	owners := make([]string, len(sels))
	for i, sel := range sels {
		bodies[i] = mustMarshalBench(b, sel)
		key, err := serve.KeyFromWire(sel["model"].(string), sel["method"].(string), sel["bits"].(int), "")
		if err != nil {
			b.Fatal(err)
		}
		owner, ok := front.Ring().Owner(key.String())
		if !ok {
			b.Fatal("ring has no backends")
		}
		owners[i] = owner.Addr()
		// Warm through the front so each key calibrates on its owner.
		post(b, fs.URL, bodies[i])
	}

	var directIPS, shardedIPS float64
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(bodies)
			post(b, owners[k], bodies[k])
		}
		directIPS = float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(directIPS, "img/s")
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(bodies)
			post(b, fs.URL, bodies[k])
		}
		shardedIPS = float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(shardedIPS, "img/s")
	})

	if directIPS == 0 || shardedIPS == 0 {
		return // sub-benchmark filtered out; nothing coherent to record
	}
	artifact := struct {
		Backends        int     `json:"backends"`
		Keys            int     `json:"keys"`
		DirectImgPerSec float64 `json:"direct_img_per_sec"`
		ShardImgPerSec  float64 `json:"sharded_img_per_sec"`
		ProxyOverhead   float64 `json:"proxy_overhead"`
	}{backendsN, len(sels), directIPS, shardedIPS, directIPS / shardedIPS}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("artifacts", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("artifacts", "BENCH_shard.json"), append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
