package chaos

import (
	"fmt"
	"io"
	"sort"
)

// CheckResult is one invariant verdict inside a Report.
type CheckResult struct {
	Name   string
	Pass   bool
	Detail string
}

// Report collects the invariant verdicts of one chaos run. Its text
// rendering contains only script-determined values — counts, booleans,
// shard indexes, canonical key strings — never timings, addresses or
// map-ordered output, so two runs of the same script over the same
// workload render byte-identical reports. That property is itself a
// gate: `quq-shard -chaos` replays every script twice and fails on any
// byte difference.
type Report struct {
	Script  string
	Seed    uint64
	Results []CheckResult
}

// NewReport starts an empty report for one script run.
func NewReport(script string, seed uint64) *Report {
	return &Report{Script: script, Seed: seed}
}

// Add records one verdict.
func (r *Report) Add(name string, pass bool, format string, args ...any) {
	r.Results = append(r.Results, CheckResult{
		Name:   name,
		Pass:   pass,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Failed reports whether any check failed.
func (r *Report) Failed() bool {
	for _, c := range r.Results {
		if !c.Pass {
			return true
		}
	}
	return false
}

// WriteText renders the report deterministically, one verdict per line.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "chaos script %s (seed %d)\n", r.Script, r.Seed); err != nil {
		return err
	}
	for _, c := range r.Results {
		verdict := "ok"
		if !c.Pass {
			verdict = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "  %-24s %-4s %s\n", c.Name, verdict, c.Detail); err != nil {
			return err
		}
	}
	return nil
}

// CheckConservation asserts reply conservation: every request sent got
// exactly one terminal answer, and the backends completed exactly as
// many requests as clients saw succeed — a completed backend response
// that reached no client is a lost reply, more completions than client
// successes is a double answer.
func (r *Report) CheckConservation(sent, answered, completions, clientOK int) {
	pass := sent == answered && completions == clientOK
	r.Add("reply-conservation", pass,
		"sent=%d answered=%d backend-completions=%d client-ok=%d", sent, answered, completions, clientOK)
}

// CheckCalibrateOnce asserts QUQ's calibrate-once contract: each key's
// calibration ran the expected number of times fleet-wide (1 in the
// steady state; a key whose first build legitimately failed and was
// retried expects its retry count).
func (r *Report) CheckCalibrateOnce(builds map[string]int, want map[string]int) {
	keys := make([]string, 0, len(builds))
	for k := range builds {
		keys = append(keys, k)
	}
	for k := range want {
		if _, ok := builds[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	pass := true
	detail := ""
	for _, k := range keys {
		w := want[k]
		if w == 0 {
			w = 1
		}
		if builds[k] != w {
			pass = false
		}
		if detail != "" {
			detail += " "
		}
		detail += fmt.Sprintf("%s=%d/%d", k, builds[k], w)
	}
	r.Add("calibrate-exactly-once", pass, "builds got/want: %s", detail)
}

// CheckNeverRetried asserts the backpressure contract: for a workload
// of sent requests that were all answered with 429, the backends saw
// exactly sent attempts (a retried 429 shows up as extra attempts) and
// every client response carried the backend's verbatim status and
// Retry-After header.
func (r *Report) CheckNeverRetried(sent, attempts, got429, gotRetryAfter int) {
	pass := attempts == sent && got429 == sent && gotRetryAfter == sent
	r.Add("429-never-retried", pass,
		"sent=%d backend-attempts=%d client-429s=%d retry-after-kept=%d", sent, attempts, got429, gotRetryAfter)
}

// CheckBoundedRemap asserts the consistent-hashing remap bound across
// an eject/re-admit cycle: while the victim shard was ejected, only the
// keys it owned moved (everything else kept its owner), and after
// re-admission every key returned to its original owner.
func (r *Report) CheckBoundedRemap(before, during, after map[string]int, victim int) {
	keys := make([]string, 0, len(before))
	for k := range before {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	victimKeys, movedForeign, unrestored := 0, 0, 0
	for _, k := range keys {
		if before[k] == victim {
			victimKeys++
		} else if during[k] != before[k] {
			movedForeign++
		}
		if after[k] != before[k] {
			unrestored++
		}
	}
	pass := movedForeign == 0 && unrestored == 0
	r.Add("bounded-remap", pass,
		"keys=%d victim-owned=%d foreign-moved=%d unrestored=%d", len(keys), victimKeys, movedForeign, unrestored)
}

// CheckBoundedDrain asserts the drain contract: drain finished inside
// its deadline and every admitted item was answered (success or error —
// an item still unanswered after drain is a lost reply).
func (r *Report) CheckBoundedDrain(withinDeadline bool, admitted, finished int) {
	pass := withinDeadline && admitted == finished
	r.Add("bounded-drain", pass,
		"within-deadline=%v admitted=%d finished=%d", withinDeadline, admitted, finished)
}

// CheckCalibrateAtMostR is calibrate-exactly-once generalized to a
// replicated fleet: each key's calibration ran at least once (it was
// served) and at most R times fleet-wide — one build per replica owner,
// never a smear onto non-owners or a per-request rebuild.
func (r *Report) CheckCalibrateAtMostR(builds map[string]int, rFactor int) {
	keys := make([]string, 0, len(builds))
	for k := range builds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pass := len(keys) > 0
	detail := ""
	for _, k := range keys {
		if builds[k] < 1 || builds[k] > rFactor {
			pass = false
		}
		if detail != "" {
			detail += " "
		}
		detail += fmt.Sprintf("%s=%d", k, builds[k])
	}
	r.Add("calibrate-at-most-r", pass, "r=%d builds: %s", rFactor, detail)
}

// CheckReplicasIdentical asserts replica determinism: the same classify
// served directly by each of a key's replica owners returned
// byte-identical responses. Divergent replicas would make a failover
// visible to clients as a silent answer change.
func (r *Report) CheckReplicasIdentical(replicas int, identical bool) {
	r.Add("replicas-identical", identical, "replicas=%d byte-identical=%v", replicas, identical)
}

// CheckZeroLostKeys asserts the replicated-failover contract: after
// killing one replica owner, every read of its calibrated keys was
// answered by a survivor (reads-ok counts only responses NOT served by
// the victim) with zero new calibrations — the surviving replica
// already holds the artifact.
func (r *Report) CheckZeroLostKeys(reads, readsOK, newBuilds int) {
	pass := readsOK == reads && newBuilds == 0
	r.Add("zero-lost-keys", pass,
		"reads=%d reads-ok=%d new-builds=%d", reads, readsOK, newBuilds)
}

// CheckLatencySLO asserts the occupancy-adaptive scheduling contract
// over an overload script: every admitted request finished inside its
// latency budget (admission control refused the rest up front — a shed
// count of zero under deliberate overload means shedding never fired),
// shed requests consumed no queue capacity, and the governor both
// lowered the per-batch worker budget under load and raised it back at
// low occupancy (workerPath is the script-observed allocation sequence).
// merged asserts the shed counter surfaced through the fleet's merged
// /metrics view.
func (r *Report) CheckLatencySLO(admitted, withinBudget, shed, shedQueueSlots int, workerPath []int, merged bool) {
	lowered, raised := false, false
	for i := 1; i < len(workerPath); i++ {
		if workerPath[i] < workerPath[i-1] {
			lowered = true
		}
		if workerPath[i] > workerPath[i-1] {
			raised = true
		}
	}
	pass := admitted == withinBudget && shed > 0 && shedQueueSlots == 0 &&
		lowered && raised && merged
	r.Add("latency-slo", pass,
		"admitted=%d within-budget=%d shed=%d shed-queue-slots=%d workers=%v lowered=%v raised=%v merged-metrics=%v",
		admitted, withinBudget, shed, shedQueueSlots, workerPath, lowered, raised, merged)
}

// CheckElasticMembership asserts the membership subsystem's contract
// over a join/drain/leave sequence: the epoch advanced strictly
// monotonically (every effective mutation visible, none reordered), the
// drain re-homed at least one calibrated key, and no key was lost — the
// drained member's keys kept serving warm, without recalibration.
func (r *Report) CheckElasticMembership(epochs []uint64, moved, lost int) {
	monotonic := len(epochs) > 1
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			monotonic = false
		}
	}
	pass := monotonic && moved >= 1 && lost == 0
	r.Add("elastic-membership", pass,
		"epochs=%v moved=%d lost=%d", epochs, moved, lost)
}

// CheckWarmRestart asserts the durability contract over a crash-restart
// script: a worker killed and restarted against its snapshot dir comes
// back holding every previously-calibrated key (restored counts the
// snapshot entries it reloaded), requests that raced the warm-restart
// window were told to retry (warming503 — the retryable 503 contract,
// never a stale 404 or a spurious rebuild), every post-restart read of a
// warm key succeeded, zero new calibration builds ran fleet-wide, and
// the restored entries' digests are byte-identical to the pre-crash
// ones.
func (r *Report) CheckWarmRestart(restored, reads, readsOK, newBuilds int, warming503, digestsStable bool) {
	pass := restored >= 1 && readsOK == reads && newBuilds == 0 && warming503 && digestsStable
	r.Add("warm-restart-zero-recalibration", pass,
		"restored=%d reads=%d reads-ok=%d new-builds=%d warming-503=%v digests-stable=%v",
		restored, reads, readsOK, newBuilds, warming503, digestsStable)
}

// CheckCorruptionQuarantined asserts the verification contract over a
// snapshot-corruption script: a worker restarted over a corrupted
// snapshot file quarantines it (quarantined is its own count of
// rejected files), stays alive (healthy), and never serves the corrupt
// payload — the damaged key is simply absent from its registry
// (servedCorrupt must be zero).
func (r *Report) CheckCorruptionQuarantined(quarantined int, healthy bool, servedCorrupt int) {
	pass := quarantined >= 1 && healthy && servedCorrupt == 0
	r.Add("corruption-quarantined", pass,
		"quarantined=%d healthy=%v served-corrupt=%d", quarantined, healthy, servedCorrupt)
}

// CheckAntiEntropyConverges asserts the self-healing contract: the
// sweep saw the divergence (mismatches), repaired every divergent owner
// (repairs, no failures), left all R owners of every key holding one
// digest (converged), and did it all by copying state — zero new
// calibration builds.
func (r *Report) CheckAntiEntropyConverges(mismatches, repairs, failures, newBuilds int, converged bool) {
	pass := mismatches >= 1 && repairs == mismatches && failures == 0 && newBuilds == 0 && converged
	r.Add("antientropy-converges", pass,
		"mismatches=%d repairs=%d failures=%d new-builds=%d converged=%v",
		mismatches, repairs, failures, newBuilds, converged)
}
