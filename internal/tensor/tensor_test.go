package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"quq/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("unexpected geometry: len=%d rank=%d dim1=%d", x.Len(), x.Rank(), x.Dim(1))
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice should not copy the data")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if x.At(2, 1) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
	if x.Data()[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 5
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 1)
	if x.At(0, 1) != 99 {
		t.Fatal("Reshape should be a view")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape should panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestRow(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 40
	if x.At(1, 0) != 40 {
		t.Fatal("Row should be a view")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	if got := a.Add(b).Data(); got[2] != 33 {
		t.Fatalf("Add: %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 9 {
		t.Fatalf("Sub: %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 40 {
		t.Fatalf("Mul: %v", got)
	}
	if a.Data()[0] != 1 {
		t.Fatal("binary ops must not mutate operands")
	}
	a.AddInPlace(b)
	if a.Data()[0] != 11 {
		t.Fatal("AddInPlace failed")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Add(New(3))
}

func TestAddRowVector(t *testing.T) {
	x := New(2, 3).Fill(1)
	x.AddRowVector([]float64{1, 2, 3})
	want := []float64{2, 3, 4, 2, 3, 4}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("AddRowVector: got %v", x.Data())
		}
	}
}

func TestApplyScaleMap(t *testing.T) {
	x := FromSlice([]float64{1, -2, 3}, 3)
	y := x.Map(math.Abs)
	if y.Data()[1] != 2 || x.Data()[1] != -2 {
		t.Fatal("Map must not mutate the receiver")
	}
	x.Scale(2)
	if x.Data()[2] != 6 {
		t.Fatal("Scale failed")
	}
	x.Apply(func(v float64) float64 { return v + 1 })
	if x.Data()[0] != 3 {
		t.Fatal("Apply failed")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulTMatchesMatMul(t *testing.T) {
	src := rng.New(5)
	a := New(7, 11)
	b := New(13, 11)
	for i := range a.Data() {
		a.Data()[i] = src.Norm()
	}
	for i := range b.Data() {
		b.Data()[i] = src.Norm()
	}
	got := MatMulT(a, b)
	want := MatMul(a, b.Transpose())
	if MSE(got, want) > 1e-20 {
		t.Fatal("MatMulT disagrees with MatMul(a, bᵀ)")
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTransposeInvolution(t *testing.T) {
	src := rng.New(6)
	x := New(4, 9)
	for i := range x.Data() {
		x.Data()[i] = src.Norm()
	}
	if MSE(x.Transpose().Transpose(), x) != 0 {
		t.Fatal("double transpose is not the identity")
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-4, 1, 3, 0}, 4)
	if x.Min() != -4 || x.Max() != 3 || x.AbsMax() != 4 {
		t.Fatalf("min/max/absmax = %v/%v/%v", x.Min(), x.Max(), x.AbsMax())
	}
	if x.Sum() != 0 || x.Mean() != 0 {
		t.Fatalf("sum/mean = %v/%v", x.Sum(), x.Mean())
	}
	if !almostEqual(x.Std(), math.Sqrt(26.0/4.0), 1e-12) {
		t.Fatalf("std = %v", x.Std())
	}
}

func TestMSEAndCosine(t *testing.T) {
	a := FromSlice([]float64{1, 0}, 2)
	b := FromSlice([]float64{0, 1}, 2)
	if MSE(a, b) != 1 {
		t.Fatalf("MSE = %v", MSE(a, b))
	}
	if CosineSimilarity(a, b) != 0 {
		t.Fatal("orthogonal vectors should have cosine 0")
	}
	if !almostEqual(CosineSimilarity(a, a), 1, 1e-12) {
		t.Fatal("self cosine should be 1")
	}
	if CosineSimilarity(a, New(2)) != 0 {
		t.Fatal("zero vector cosine should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if xs[0] != 4 {
		t.Fatal("Quantile must not reorder its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	src := rng.New(3)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = src.Norm()
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(xs, q)
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestArgMax(t *testing.T) {
	x := FromSlice([]float64{3, -1, 8, 8, 2}, 5)
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d, want first maximum index 2", x.ArgMax())
	}
}

func TestSplit(t *testing.T) {
	x := FromSlice([]float64{-2, 0, 3, -1, 0, 5}, 6)
	neg, pos := x.Split()
	if len(neg) != 2 || len(pos) != 2 {
		t.Fatalf("Split sizes: %d neg, %d pos", len(neg), len(pos))
	}
	if neg[0] != 2 || neg[1] != 1 {
		t.Fatalf("neg magnitudes = %v", neg)
	}
	if pos[0] != 3 || pos[1] != 5 {
		t.Fatalf("pos = %v", pos)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random shapes and contents.
func TestMatMulTransposeProperty(t *testing.T) {
	src := rng.New(77)
	f := func(seed uint64) bool {
		s := rng.New(seed)
		m, k, n := 1+s.Intn(8), 1+s.Intn(8), 1+s.Intn(8)
		a, b := New(m, k), New(k, n)
		for i := range a.Data() {
			a.Data()[i] = s.Norm()
		}
		for i := range b.Data() {
			b.Data()[i] = s.Norm()
		}
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return MSE(lhs, rhs) < 1e-18
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	if err := quick.Check(func() bool { return f(src.Uint64()) }, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestMatMulDistributes(t *testing.T) {
	src := rng.New(88)
	for trial := 0; trial < 30; trial++ {
		m, k, n := 1+src.Intn(6), 1+src.Intn(6), 1+src.Intn(6)
		a, b, c := New(m, k), New(k, n), New(k, n)
		for i := range a.Data() {
			a.Data()[i] = src.Norm()
		}
		for i := range b.Data() {
			b.Data()[i] = src.Norm()
			c.Data()[i] = src.Norm()
		}
		lhs := MatMul(a, b.Add(c))
		rhs := MatMul(a, b).Add(MatMul(a, c))
		if MSE(lhs, rhs) > 1e-18 {
			t.Fatalf("distribution law violated for %dx%dx%d", m, k, n)
		}
	}
}
