package check

import (
	"errors"
	"testing"
)

func TestInvariantIsError(t *testing.T) {
	e := Invariant("qub: boom")
	var ie *InvariantError
	if !errors.As(error(e), &ie) {
		t.Fatal("Invariant value does not satisfy errors.As(*InvariantError)")
	}
	if e.Error() != "qub: boom" {
		t.Fatalf("message %q", e.Error())
	}
}

func TestInvariantf(t *testing.T) {
	e := Invariantf("tensor: shape %v vs %v", []int{2}, []int{3})
	want := "tensor: shape [2] vs [3]"
	if e.Error() != want {
		t.Fatalf("got %q, want %q", e.Error(), want)
	}
}

func TestRecoveredValueDistinguishable(t *testing.T) {
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok {
			t.Fatalf("recovered %T, want error", r)
		}
		var ie *InvariantError
		if !errors.As(err, &ie) {
			t.Fatalf("recovered error %v is not an InvariantError", err)
		}
	}()
	panic(Invariant("deliberate"))
}
