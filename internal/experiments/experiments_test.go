package experiments

import (
	"strings"
	"testing"

	"quq/internal/dist"
	"quq/internal/quant"
	"quq/internal/vit"
)

// quickZoo builds a minimal zoo once for the accuracy-table tests.
var quickZooCache []*ZooModel

func quickZoo(t *testing.T) []*ZooModel {
	t.Helper()
	if quickZooCache == nil {
		quickZooCache = BuildZoo(ZooOptions{
			Configs:     []vit.Config{vit.ViTNano},
			TrainImages: 60,
			EvalImages:  20,
			CalibImages: 4,
			Seed:        5,
		})
	}
	return quickZooCache
}

func TestTable1Structure(t *testing.T) {
	rows := Table1(1<<12, 42)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (2 methods × 3 bit-widths)", len(rows))
	}
	// QUQ must beat BaseQ on every family at every bit-width, and MSE
	// must fall with bit-width.
	for i := 0; i < len(rows); i += 2 {
		base, quqRow := rows[i], rows[i+1]
		if base.Method != "BaseQ" || quqRow.Method != "QUQ" || base.Bits != quqRow.Bits {
			t.Fatalf("row order broken: %+v %+v", base, quqRow)
		}
		for f := range base.MSE {
			// Never worse (the uniform special case is always scored);
			// at full sample sizes QUQ is strictly better everywhere.
			if quqRow.MSE[f] > base.MSE[f]+1e-18 {
				t.Errorf("bits=%d family %v: QUQ %v above BaseQ %v",
					base.Bits, dist.Families[f], quqRow.MSE[f], base.MSE[f])
			}
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Post-GELU") || !strings.Contains(out, "QUQ") {
		t.Fatal("formatted table incomplete")
	}
}

func TestBuildZooProducesWorkingClassifier(t *testing.T) {
	zoo := quickZoo(t)
	if len(zoo) != 1 {
		t.Fatalf("zoo size %d", len(zoo))
	}
	zm := zoo[0]
	if zm.FP32Acc < 0.5 {
		t.Fatalf("FP32 accuracy %v too low for a fitted model", zm.FP32Acc)
	}
	if len(zm.Calib) != 4 || len(zm.Images) != 20 || len(zm.Labels) != 20 {
		t.Fatal("workload sizes wrong")
	}
}

func TestTable2Structure(t *testing.T) {
	zoo := quickZoo(t)
	rows, err := Table2(zoo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want Original + 4 methods", len(rows))
	}
	if rows[0].Method != "Original" || rows[0].WA != "32/32" {
		t.Fatalf("first row %+v", rows[0])
	}
	names := map[string]bool{}
	for _, r := range rows[1:] {
		names[r.Method] = true
		if r.WA != "6/6" {
			t.Fatalf("partial rows must be 6/6, got %s", r.WA)
		}
		acc := r.Acc["ViT-Nano"]
		if acc < 0 || acc > 1 {
			t.Fatalf("accuracy %v out of range", acc)
		}
	}
	for _, want := range []string{"BaseQ", "PTQ4ViT", "APQ-ViT", "QUQ"} {
		if !names[want] {
			t.Fatalf("missing method %s", want)
		}
	}
	out := FormatAccuracy(zoo, rows)
	if !strings.Contains(out, "ViT-Nano") {
		t.Fatal("format missing model column")
	}
}

func TestTable3Structure(t *testing.T) {
	zoo := quickZoo(t)
	rows, err := Table3(zoo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want Original + 4 methods × 2 bit-widths", len(rows))
	}
	sixes, eights := 0, 0
	for _, r := range rows[1:] {
		switch r.WA {
		case "6/6":
			sixes++
		case "8/8":
			eights++
		default:
			t.Fatalf("unexpected W/A %s", r.WA)
		}
	}
	if sixes != 4 || eights != 4 {
		t.Fatalf("bit-width split %d/%d", sixes, eights)
	}
}

func TestTable4AndFormat(t *testing.T) {
	rows := Table4()
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	out := FormatTable4(rows)
	for _, frag := range []string{"BaseQ", "QUQ", "mm2", "mW", "overhead", "6-bit QUQ vs 8-bit BaseQ"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("format missing %q", frag)
		}
	}
}

func TestFig2Rows(t *testing.T) {
	rows := Fig2(6, []int{1, 4})
	if len(rows) != 6 { // 2 batches × 3 models
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.FQBytes >= r.PQBytes {
			t.Fatalf("%s batch %d: FQ %d not below PQ %d", r.Model, r.Batch, r.FQBytes, r.PQBytes)
		}
		if r.Overhead <= 0 {
			t.Fatalf("overhead %v not positive", r.Overhead)
		}
	}
	if !strings.Contains(FormatFig2(rows), "ViT-L") {
		t.Fatal("format missing models")
	}
}

func TestFig3Panels(t *testing.T) {
	panels := Fig3(1<<12, 4, 42)
	if len(panels) != 4 {
		t.Fatalf("got %d panels", len(panels))
	}
	for _, p := range panels {
		if len(p.Points) < 8 {
			t.Fatalf("%v: only %d quantization points at 4 bits", p.Family, len(p.Points))
		}
		for i := 1; i < len(p.Points); i++ {
			if p.Points[i] <= p.Points[i-1] {
				t.Fatalf("%v: points not strictly ascending", p.Family)
			}
		}
		if len(p.Edges) != len(p.Counts)+1 {
			t.Fatalf("%v: histogram geometry broken", p.Family)
		}
	}
	out := FormatFig3(panels)
	if !strings.Contains(out, "mode") || !strings.Contains(out, "points:") {
		t.Fatal("format incomplete")
	}
}

func TestQuantPointsUniformCase(t *testing.T) {
	p := quant.ParamsForUniform(1, 4)
	pts := QuantPoints(p)
	// Codes −8..7 → 16 distinct values.
	if len(pts) != 16 {
		t.Fatalf("got %d points, want 16", len(pts))
	}
	if pts[0] != -8 || pts[len(pts)-1] != 7 {
		t.Fatalf("range [%v, %v]", pts[0], pts[len(pts)-1])
	}
}

func TestFig7SmallScale(t *testing.T) {
	res, err := Fig7(Fig7Options{Config: vit.ViTNano, Images: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Retention < -1 || r.Retention > 1.0000001 {
			t.Fatalf("%s %s retention %v outside [-1,1]", r.Method, r.WA, r.Retention)
		}
	}
	// 8-bit must retain at least as much attention as 6-bit for the
	// same method.
	byKey := map[string]float64{}
	for _, r := range res.Rows {
		byKey[r.Method+r.WA] = r.Retention
	}
	if byKey["QUQ8/8"] < byKey["QUQ6/6"]-0.05 {
		t.Fatalf("QUQ retention not improving with bits: %v vs %v", byKey["QUQ8/8"], byKey["QUQ6/6"])
	}
	if res.Reference == "" || len(res.Maps) != 4 {
		t.Fatal("maps missing")
	}
	if !strings.Contains(FormatFig7(res), "retention") {
		t.Fatal("format incomplete")
	}
}

func TestAblationsStructure(t *testing.T) {
	rows := Ablations(1<<11, 6, 42)
	if len(rows) < 8 {
		t.Fatalf("got %d ablation rows", len(rows))
	}
	var def, noSwitch, uniform *AblationRow
	for i := range rows {
		switch {
		case strings.HasPrefix(rows[i].Name, "default ("):
			def = &rows[i]
		case rows[i].Name == "mode switching disabled":
			noSwitch = &rows[i]
		case rows[i].Name == "uniform (BaseQ)":
			uniform = &rows[i]
		}
	}
	if def == nil || noSwitch == nil || uniform == nil {
		t.Fatal("expected variants missing")
	}
	// Mode switching must matter for the one-signed family
	// (post-softmax): with it disabled, PRA still handles the data via
	// the symmetric construction, but the default must be no worse.
	for f := range def.MSE {
		if def.MSE[f] > uniform.MSE[f] {
			t.Errorf("default PRA worse than uniform on %v", dist.Families[f])
		}
	}
	if !strings.Contains(FormatAblations(rows), "λ_A") {
		t.Fatal("format incomplete")
	}
}

func TestCSVEmitters(t *testing.T) {
	t1 := CSVTable1(Table1(1<<10, 1))
	if !strings.HasPrefix(t1, "method,bits,") || strings.Count(t1, "\n") != 7 {
		t.Fatalf("table1 csv malformed:\n%s", t1)
	}
	f2 := CSVFig2(Fig2(6, []int{1}))
	if !strings.HasPrefix(f2, "model,batch,") || strings.Count(f2, "\n") != 4 {
		t.Fatalf("fig2 csv malformed:\n%s", f2)
	}
	panels := Fig3(1<<10, 4, 1)
	f3 := CSVFig3(panels[0])
	if !strings.Contains(f3, "bin_center,count") || !strings.Contains(f3, "point\n") {
		t.Fatalf("fig3 csv malformed:\n%s", f3)
	}
	zoo := quickZoo(t)
	rows, err := Table2(zoo)
	if err != nil {
		t.Fatal(err)
	}
	acc := CSVAccuracy(zoo, rows)
	if !strings.HasPrefix(acc, "method,wa,ViT-Nano") {
		t.Fatalf("accuracy csv malformed:\n%s", acc)
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Fatalf("escape = %q", got)
	}
	if got := csvEscape(`a"b`); got != `"a""b"` {
		t.Fatalf("escape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Fatalf("escape = %q", got)
	}
}

func TestAblationAccuracyStructure(t *testing.T) {
	zoo := quickZoo(t)
	rows, err := AblationAccuracy(zoo[0], 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d variant rows", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		if r.Acc < 0 || r.Acc > 1 {
			t.Fatalf("%s accuracy %v out of range", r.Name, r.Acc)
		}
		names[r.Name] = true
	}
	if !names["QUQ (paper defaults)"] || !names["mode switching disabled"] {
		t.Fatal("expected variants missing")
	}
	if !strings.Contains(FormatAblationAcc("x", 6, rows), "mode switching") {
		t.Fatal("format incomplete")
	}
}
