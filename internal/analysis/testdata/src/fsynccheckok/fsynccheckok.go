// Package fsynccheckok is the conforming corpus for the fsynccheck
// analyzer: the canonical write-temp, fsync, close, rename commit
// sequence, which must stay silent.
package fsynccheckok

import "os"

// commitDurable is the idiom the analyzer enforces: data reaches the
// platter (Sync) before the rename makes it reachable by name.
func commitDurable(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		//quq:errdrop-ok the write error is already being returned; close is cleanup
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//quq:errdrop-ok the sync error is already being returned; close is cleanup
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}
