package accel

import (
	"math"
	"testing"

	"quq/internal/quant"
	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// buildTestBlock makes a small block with realistic weight statistics and
// sample inputs resembling a residual stream.
func buildTestBlock(t *testing.T, seed uint64) (*vit.Block, []*tensor.Tensor) {
	t.Helper()
	const dim, heads, tokens = 24, 2, 10
	src := rng.New(seed)
	b := vit.NewBlock(dim, heads, 2)
	fill := func(l *vit.Linear, sd float64) {
		for i := range l.W.Data() {
			l.W.Data()[i] = src.Gauss(0, sd)
		}
		for i := range l.B {
			l.B[i] = src.Gauss(0, 0.02)
		}
	}
	fill(b.QKV, 0.3)
	fill(b.Proj, 0.15)
	fill(b.FC1, 0.25)
	fill(b.FC2, 0.15)
	for i := range b.LN1.Gamma {
		b.LN1.Gamma[i] = 1 + src.Gauss(0, 0.1)
		b.LN2.Gamma[i] = 1 + src.Gauss(0, 0.1)
	}
	var inputs []*tensor.Tensor
	for n := 0; n < 4; n++ {
		x := tensor.New(tokens, dim)
		for i := range x.Data() {
			x.Data()[i] = src.Laplace(0.8)
		}
		inputs = append(inputs, x)
	}
	return b, inputs
}

func TestCalibrateBlockCoversAllSites(t *testing.T) {
	b, inputs := buildTestBlock(t, 1)
	p, err := CalibrateBlock(b, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, params := range map[string]*quant.Params{
		"In": p.In, "LN1Out": p.LN1Out, "Q": p.Q, "K": p.K, "V": p.V,
		"SoftmaxIn": p.SoftmaxIn, "SoftmaxOut": p.SoftmaxOut,
		"ProjIn": p.ProjIn, "ProjOut": p.ProjOut, "Resid1": p.Resid1,
		"LN2Out": p.LN2Out, "GeluIn": p.GeluIn, "GeluOut": p.GeluOut,
		"FC2Out": p.FC2Out, "Resid2": p.Resid2,
		"WQKV": p.WQKV, "WProj": p.WProj, "WFC1": p.WFC1, "WFC2": p.WFC2,
	} {
		if params == nil {
			t.Fatalf("site %s not calibrated", name)
		}
		if err := params.Validate(); err != nil {
			t.Fatalf("site %s: %v", name, err)
		}
	}
}

func TestCalibrateBlockRejectsEmpty(t *testing.T) {
	b, _ := buildTestBlock(t, 2)
	if _, err := CalibrateBlock(b, nil, 8); err == nil {
		t.Fatal("accepted empty calibration")
	}
}

// TestBlockRunnerMatchesFakeQuant is the capstone integration test: a
// whole transformer block executed on the integer QUA datapath (QUB
// GEMMs, integer SFUs, integer residual adders) must track the float
// fake-quantization reference — the same quantizers applied in the float
// executor — closely, and both must track the FP32 block.
func TestBlockRunnerMatchesFakeQuant(t *testing.T) {
	b, inputs := buildTestBlock(t, 3)
	p, err := CalibrateBlock(b, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewBlockRunner(b, p, DefaultArray(8))
	if err != nil {
		t.Fatal(err)
	}

	// Float fake-quant reference: quantize at every site via the tap.
	siteParams := map[string]*quant.Params{
		"ln1.out": p.LN1Out, "attn.q": p.Q, "attn.k": p.K, "attn.v": p.V,
		"attn.softmax_in": p.SoftmaxIn, "attn.softmax_out": p.SoftmaxOut,
		"attn.proj_in": p.ProjIn, "attn.proj_out": p.ProjOut,
		"resid1.out": p.Resid1, "ln2.out": p.LN2Out,
		"mlp.gelu_in": p.GeluIn, "mlp.gelu_out": p.GeluOut,
		"mlp.fc2_out": p.FC2Out, "resid2.out": p.Resid2,
	}
	// Weights fake-quantized in place on a copy of the block.
	bq := vit.NewBlock(24, 2, 2)
	copyBlock(bq, b)
	p.WQKV.QuantizeSlice(bq.QKV.W.Data(), bq.QKV.W.Data())
	p.WProj.QuantizeSlice(bq.Proj.W.Data(), bq.Proj.W.Data())
	p.WFC1.QuantizeSlice(bq.FC1.W.Data(), bq.FC1.W.Data())
	p.WFC2.QuantizeSlice(bq.FC2.W.Data(), bq.FC2.W.Data())

	for _, x := range inputs {
		xq := x.Clone()
		p.In.QuantizeSlice(xq.Data(), xq.Data())
		ref := bq.Forward(xq, 1, 0, vit.ForwardOpts{Tap: func(s vit.Site, v *tensor.Tensor) *tensor.Tensor {
			if params, ok := siteParams[s.Name]; ok {
				out := v.Clone()
				params.QuantizeSlice(out.Data(), out.Data())
				return out
			}
			return v
		}})

		got, stats, err := runner.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		if stats.GEMMCycles <= 0 || stats.MACs <= 0 {
			t.Fatal("no cycle accounting")
		}
		cos := tensor.CosineSimilarity(got, ref)
		if cos < 0.98 {
			t.Fatalf("integer block diverged from fake-quant reference: cosine %v", cos)
		}
		// Error bounded relative to the signal (SFU approximations plus
		// requantization rounding accumulate across the block).
		rel := math.Sqrt(tensor.MSE(got, ref)) / (ref.Std() + 1e-12)
		if rel > 0.15 {
			t.Fatalf("relative error %v too high", rel)
		}

		// And the quantized paths must track the FP32 block.
		fp := b.Forward(x, 1, 0, vit.ForwardOpts{})
		if c := tensor.CosineSimilarity(got, fp); c < 0.97 {
			t.Fatalf("integer block diverged from FP32: cosine %v", c)
		}
	}
}

// copyBlock copies all parameters from src into dst (same geometry).
func copyBlock(dst, src *vit.Block) {
	copy(dst.QKV.W.Data(), src.QKV.W.Data())
	copy(dst.QKV.B, src.QKV.B)
	copy(dst.Proj.W.Data(), src.Proj.W.Data())
	copy(dst.Proj.B, src.Proj.B)
	copy(dst.FC1.W.Data(), src.FC1.W.Data())
	copy(dst.FC1.B, src.FC1.B)
	copy(dst.FC2.W.Data(), src.FC2.W.Data())
	copy(dst.FC2.B, src.FC2.B)
	copy(dst.LN1.Gamma, src.LN1.Gamma)
	copy(dst.LN1.Beta, src.LN1.Beta)
	copy(dst.LN2.Gamma, src.LN2.Gamma)
	copy(dst.LN2.Beta, src.LN2.Beta)
}

func TestBlockRunnerCycleAccounting(t *testing.T) {
	b, inputs := buildTestBlock(t, 4)
	p, err := CalibrateBlock(b, inputs, 6)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := NewBlockRunner(b, p, ArrayConfig{N: 16, Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewBlockRunner(b, p, ArrayConfig{N: 4, Bits: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, s16, err := r16.Run(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	_, s4, err := r4.Run(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if s16.MACs != s4.MACs {
		t.Fatalf("MAC count depends on array size: %d vs %d", s16.MACs, s4.MACs)
	}
	if s4.GEMMCycles <= s16.GEMMCycles {
		t.Fatalf("smaller array not slower: %d vs %d cycles", s4.GEMMCycles, s16.GEMMCycles)
	}
}
