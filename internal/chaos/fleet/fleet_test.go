package fleet

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"quq/internal/chaos"
)

// render runs one replay and returns its report plus the byte-exact
// text rendering.
func render(t *testing.T, seed uint64, opts Options) (*chaos.Report, string) {
	t.Helper()
	rep, err := Run(context.Background(), seed, opts)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return rep, buf.String()
}

// TestRunInvariantsHoldAndReplayIsByteIdentical is the harness's core
// claim: against the real (hardened) stack every invariant passes, and
// replaying the same seed against a fresh fleet — new ephemeral ports,
// new goroutine interleavings — renders the byte-identical report.
func TestRunInvariantsHoldAndReplayIsByteIdentical(t *testing.T) {
	rep, text1 := render(t, 7, Options{})
	if rep.Failed() {
		t.Fatalf("invariants failed on the healthy stack:\n%s", text1)
	}
	// 14 check entries for the 13 invariants: replica-divergence reports
	// replicas-identical twice — float/float replicas, then again with
	// one replica flipped to the integer weight path.
	if got := len(rep.Results); got != 14 {
		t.Fatalf("checks = %d, want 14 (13 invariants, replicas-identical twice)", got)
	}
	_, text2 := render(t, 7, Options{})
	if text1 != text2 {
		t.Fatalf("replay not byte-identical:\n--- run 1\n%s--- run 2\n%s", text1, text2)
	}

	// A different seed still passes (the invariants are fault-schedule
	// independent) but is allowed to differ in rendering only via the
	// seed header.
	rep3, text3 := render(t, 8, Options{})
	if rep3.Failed() {
		t.Fatalf("invariants failed under seed 8:\n%s", text3)
	}
}

// retry429 is the deliberately reintroduced bug: a transport that
// "helpfully" retries backpressure responses once. The chaos gate must
// catch it — a retried 429 doubles the backend attempt count.
type retry429 struct {
	inner http.RoundTripper
}

func (r retry429) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := r.inner.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusTooManyRequests {
		return resp, err
	}
	//quq:errdrop-ok the buggy transport under test discards the first 429 on purpose
	_ = resp.Body.Close()
	return r.inner.RoundTrip(req)
}

// TestRunCatchesReintroduced429Retry proves the gate has teeth: wiring
// the 429-retrying transport between the proxy and the fault layer
// flips exactly the backpressure invariant to FAIL.
func TestRunCatchesReintroduced429Retry(t *testing.T) {
	rep, text := render(t, 7, Options{
		WrapTransport: func(inner http.RoundTripper) http.RoundTripper {
			return retry429{inner: inner}
		},
	})
	if !rep.Failed() {
		t.Fatalf("429-retrying transport passed the chaos gate:\n%s", text)
	}
	for _, c := range rep.Results {
		if c.Name == "429-never-retried" {
			if c.Pass {
				t.Fatalf("backpressure check passed despite the retry bug: %s", c.Detail)
			}
			if !strings.Contains(c.Detail, "backend-attempts=12") {
				t.Fatalf("detail does not show the doubled attempts: %s", c.Detail)
			}
			return
		}
	}
	t.Fatal("429-never-retried check missing from the report")
}
