package shard

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/url"
	"sort"

	"quq/internal/serve"
)

// SweepStats summarizes one anti-entropy round. Every field is a pure
// function of the fleet's state at sweep time, so a seeded chaos replay
// reports identical stats on every run.
type SweepStats struct {
	// Keys is the number of distinct ready keys examined.
	Keys int
	// Mismatches counts healthy replica owners whose digest diverged
	// from (or was missing against) the authority digest.
	Mismatches int
	// Repairs counts divergent owners successfully overwritten with the
	// authority's snapshot.
	Repairs int
	// Failures counts repair attempts that could not complete (snapshot
	// fetch or install failed).
	Failures int
}

// antiEntropyLoop runs SweepNow every AntiEntropyInterval until Close
// (or the base context) stops it. The wait goes through the injected
// chaos.Clock, so a fake clock drives sweep rounds without wall time.
func (f *Front) antiEntropyLoop() {
	defer close(f.aeDone)
	ctx, cancel := context.WithCancel(f.opts.BaseContext)
	defer cancel()
	go func() {
		// Translate the aeStop signal into context cancellation so the
		// clock sleep (and any in-flight sweep round trip) aborts
		// immediately; the deferred cancel above reaps this goroutine
		// when the loop exits on its own.
		select {
		case <-f.aeStop:
			cancel()
		case <-ctx.Done():
		}
	}()
	f.sweepLoop(ctx)
}

// sweepLoop alternates interval waits and sweep rounds until ctx ends.
func (f *Front) sweepLoop(ctx context.Context) {
	for {
		if err := f.clock.Sleep(ctx, f.opts.AntiEntropyInterval); err != nil {
			return
		}
		f.SweepNow(ctx)
	}
}

// SweepNow runs one synchronous anti-entropy round: it scrapes every
// healthy backend's /models for per-entry snapshot digests, compares
// each key's R replica owners, and repairs divergent or missing copies
// by re-pushing the authority's snapshot (GET /v1/snapshot from the
// authority, POST /v1/snapshot to the divergent owner) through the same
// fault-injectable client the proxy path uses.
//
// The authority for a key is the digest held by the majority of its
// owners; on a tie, the digest of the lowest occupied replica slot wins
// — slot 0 is the key's primary placement, so a 1-vs-1 split heals
// toward the primary. Backends are visited in sorted-address order and
// keys in sorted order, so the sweep's request sequence (and therefore
// its stats and metrics) is deterministic for a given fleet state.
//
// Replication is the precondition: with R < 2 there is nothing to
// compare and the sweep is a no-op.
func (f *Front) SweepNow(ctx context.Context) SweepStats {
	var stats SweepStats
	if f.opts.Replicas < 2 {
		return stats
	}
	type page struct {
		Entries []serve.EntryInfo `json:"entries"`
	}
	digests := map[string]map[string]string{} // backend addr -> key -> digest
	keySet := map[string]bool{}
	backends := f.ring.Backends()
	for _, b := range backends {
		if !b.Healthy() {
			continue
		}
		var p page
		if err := f.getJSON(ctx, b.addr+"/models", &p); err != nil {
			f.met.ScrapeErrors.Inc()
			continue
		}
		held := map[string]string{}
		for _, e := range p.Entries {
			if !e.Ready || e.Digest == "" {
				continue
			}
			held[e.Key] = e.Digest
			keySet[e.Key] = true
		}
		digests[b.addr] = held
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		stats.Keys++
		f.sweepKey(ctx, key, digests, &stats)
	}
	return stats
}

// sweepKey compares one key's replica owners and repairs divergence.
func (f *Front) sweepKey(ctx context.Context, key string, digests map[string]map[string]string, stats *SweepStats) {
	owners := f.ring.OwnerN(key, f.opts.Replicas)
	// Tally the digests held by owners we could scrape; absent owners
	// (unhealthy, scrape failed) neither vote nor get repaired.
	votes := map[string]int{}
	order := []string{} // digests in first-seen (lowest-slot) order
	for _, b := range owners {
		held, scraped := digests[b.addr]
		if !scraped {
			continue
		}
		d, ok := held[key]
		if !ok {
			continue
		}
		if votes[d] == 0 {
			order = append(order, d)
		}
		votes[d]++
	}
	authority, best := "", 0
	for _, d := range order {
		// Strictly-greater keeps the earliest (lowest-slot) digest as the
		// tie winner: slot 0 is the key's primary placement.
		if votes[d] > best {
			authority, best = d, votes[d]
		}
	}
	if authority == "" {
		return // no scraped owner holds the key; nothing to converge to
	}
	// The repair source is the lowest-slot owner holding the authority
	// digest.
	var source *Backend
	for _, b := range owners {
		if held, ok := digests[b.addr]; ok && held[key] == authority {
			source = b
			break
		}
	}
	for _, b := range owners {
		held, scraped := digests[b.addr]
		if !scraped || b == source {
			continue
		}
		if d, ok := held[key]; ok && d == authority {
			continue
		}
		f.met.DigestMismatch.Inc()
		stats.Mismatches++
		if f.repair(ctx, key, source, b) {
			f.met.Repairs.Inc()
			stats.Repairs++
		} else {
			stats.Failures++
		}
	}
}

// repair copies one key's snapshot from the authority owner to a
// divergent one.
func (f *Front) repair(ctx context.Context, key string, from, to *Backend) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		from.addr+"/v1/snapshot?key="+url.QueryEscape(key), nil)
	if err != nil {
		return false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false
	}
	blob, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		to.addr+"/v1/snapshot", bytes.NewReader(blob))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/octet-stream")
	presp, err := f.client.Do(preq)
	if err != nil {
		return false
	}
	//quq:errdrop-ok best-effort drain for connection reuse; the install verdict is the status code
	_, _ = io.Copy(io.Discard, presp.Body)
	//quq:errdrop-ok install verdict already taken from the status code
	_ = presp.Body.Close()
	return presp.StatusCode == http.StatusOK
}
