package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// MetricLabel bounds metric cardinality at compile time. Two rules:
//
//  1. The name handed to a metrics registry constructor (NewCounter,
//     NewGauge, NewHistogram) must be a compile-time constant. A name
//     built from request data mints one time series per distinct value —
//     an unbounded-cardinality leak that grows the scrape payload and
//     the aggregator's merge state forever.
//  2. Prometheus-style label values interpolated at runtime — a format
//     string containing `{label=%...}` handed to fmt's formatting
//     functions — are flagged for the same reason: the label value is
//     whatever the runtime happened to hold, and nothing bounds its
//     domain.
//
// Suppress with //quq:label-ok <reason> where the runtime value is
// provably from a bounded, compile-time-known domain (e.g. histogram
// bucket bounds fixed at construction).
var MetricLabel = &Analyzer{
	Name:      "metriclabel",
	Doc:       "metric names and label values come from compile-time constants, never request data",
	Directive: "label-ok",
	Run:       runMetricLabel,
}

// metricCtors are the registry constructors whose name argument must be
// constant.
var metricCtors = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
}

// labelFmtRe matches a runtime-interpolated label value inside a
// Prometheus exposition format string: `{le=%q}`, `{shard=%s}`, …
var labelFmtRe = regexp.MustCompile(`\{[A-Za-z_][A-Za-z0-9_]*=%`)

func runMetricLabel(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return
	}
	// Rule 2 only bites in metrics packages — exposition text is written
	// there, and `{k=%d}`-shaped debug Stringers elsewhere are not label
	// writes. Rule 1 applies everywhere a registry constructor is called.
	expositionScope := strings.Contains(pass.PkgPath, "metrics")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			// Rule 1: constant metric names.
			if metricCtors[fn.Name()] && len(call.Args) > 0 {
				if tv, ok := pass.Info.Types[call.Args[0]]; !ok || tv.Value == nil {
					pass.Reportf(call.Args[0].Pos(), "metric name passed to %s is not a compile-time constant: runtime-built names mint unbounded time series", fn.Name())
				}
			}
			// Rule 2: runtime label values in exposition format strings.
			if expositionScope && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				switch fn.Name() {
				case "Sprintf", "Fprintf", "Printf", "Appendf":
					for _, arg := range call.Args {
						tv, ok := pass.Info.Types[arg]
						if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
							continue
						}
						if labelFmtRe.MatchString(constant.StringVal(tv.Value)) {
							pass.Reportf(call.Pos(), "format string interpolates a label value at runtime; label values must come from compile-time constants to bound cardinality")
						}
					}
				}
			}
			return true
		})
	}
}
