package shard

import (
	"fmt"
	"testing"
)

// testKeys generates a deterministic registry-key-shaped corpus.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("ViT-%d/QUQ/w6a6/partial", i)
	}
	return keys
}

func ownerMap(r *Ring, keys []string) map[string]string {
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		b, ok := r.Owner(k)
		if !ok {
			panic("ring has no backends")
		}
		owners[k] = b.Addr()
	}
	return owners
}

// TestRingOwnerDeterministic: identical key -> identical backend across
// independently built rings, regardless of Add order. This is what lets
// two quq-shard processes (or a restarted one) agree on placement with
// no coordination.
func TestRingOwnerDeterministic(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	a := NewRing(128, 0)
	for _, addr := range addrs {
		a.Add(addr)
	}
	b := NewRing(128, 0)
	for i := range addrs {
		b.Add(addrs[len(addrs)-1-i]) // reverse order
	}
	keys := testKeys(2000)
	oa, ob := ownerMap(a, keys), ownerMap(b, keys)
	for _, k := range keys {
		if oa[k] != ob[k] {
			t.Fatalf("key %q owned by %s in one ring, %s in the other", k, oa[k], ob[k])
		}
	}
}

// TestRingRemappingOnAdd: adding one backend to N must move only ~1/(N+1)
// of the keyspace, and every moved key must move TO the new backend
// (consistent hashing moves only the arcs the newcomer claims).
func TestRingRemappingOnAdd(t *testing.T) {
	const n = 3
	r := NewRing(128, 0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("http://backend-%d:86", i))
	}
	keys := testKeys(4000)
	before := ownerMap(r, keys)

	newcomer := "http://backend-new:86"
	r.Add(newcomer)
	after := ownerMap(r, keys)

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != newcomer {
				t.Fatalf("key %q moved %s -> %s, not to the new backend", k, before[k], after[k])
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Ideal is 1/(n+1) = 0.25; allow vnode-variance slack.
	if want, slack := 1.0/(n+1), 0.10; frac > want+slack {
		t.Fatalf("adding one backend moved %.1f%% of keys; want <= %.1f%%", 100*frac, 100*(want+slack))
	}
	if moved == 0 {
		t.Fatal("adding a backend moved nothing; ring is not partitioning")
	}
}

// TestRingRemappingOnRemove: removing one backend must move exactly the
// keys it owned (each to a survivor) and leave every other key in place.
func TestRingRemappingOnRemove(t *testing.T) {
	const n = 4
	r := NewRing(128, 0)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("http://backend-%d:86", i)
		r.Add(addrs[i])
	}
	keys := testKeys(4000)
	before := ownerMap(r, keys)

	victim := addrs[1]
	r.Remove(victim)
	after := ownerMap(r, keys)

	moved := 0
	for _, k := range keys {
		switch {
		case before[k] == victim:
			moved++
			if after[k] == victim {
				t.Fatalf("key %q still owned by removed backend", k)
			}
		case before[k] != after[k]:
			t.Fatalf("key %q moved %s -> %s although its owner survived", k, before[k], after[k])
		}
	}
	frac := float64(moved) / float64(len(keys))
	if want, slack := 1.0/n, 0.10; frac > want+slack {
		t.Fatalf("removed backend owned %.1f%% of keys; want ~%.1f%%", 100*frac, 100*want)
	}
}

// TestRingSpreadsKeys: with vnodes, no backend owns a grossly
// disproportionate share.
func TestRingSpreadsKeys(t *testing.T) {
	const n = 3
	r := NewRing(128, 0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("http://backend-%d:86", i))
	}
	counts := map[string]int{}
	keys := testKeys(6000)
	for _, k := range keys {
		b, _ := r.Owner(k)
		counts[b.Addr()]++
	}
	for addr, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("backend %s owns %.1f%% of keys; want roughly 1/3", addr, 100*frac)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d backends own keys", len(counts), n)
	}
}

// TestRingPickHealthAndFailover: Pick skips unhealthy backends and
// honors the exclude set; with everything down it reports ErrNoBackends.
func TestRingPickHealthAndFailover(t *testing.T) {
	r := NewRing(64, 0)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("http://backend-%d:86", i))
	}
	key := "ViT-S/QUQ/w6a6/partial"
	owner, _ := r.Owner(key)
	if picked, err := r.Pick(key, nil); err != nil || picked != owner {
		t.Fatalf("healthy Pick = %v, %v; want the owner %s", picked, err, owner.Addr())
	}

	owner.healthy.Store(false)
	second, err := r.Pick(key, nil)
	if err != nil || second == owner {
		t.Fatalf("Pick with unhealthy owner = %v, %v; want a successor", second, err)
	}

	// Excluding the successor too walks further around the ring.
	third, err := r.Pick(key, map[*Backend]bool{second: true})
	if err != nil || third == owner || third == second {
		t.Fatalf("Pick excluding successor = %v, %v; want the third backend", third, err)
	}

	owner.healthy.Store(true)
	if picked, _ := r.Pick(key, nil); picked != owner {
		t.Fatal("readmitted owner did not get its arc back")
	}

	for _, b := range r.Backends() {
		b.healthy.Store(false)
	}
	if _, err := r.Pick(key, nil); err == nil {
		t.Fatal("Pick with all backends down must fail")
	}
}

// TestRingBoundedLoad: a backend far above the fleet-average load spills
// its keys to a successor; once it drains, placement snaps back.
func TestRingBoundedLoad(t *testing.T) {
	r := NewRing(64, 1.25)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("http://backend-%d:86", i))
	}
	key := "DeiT-B/QUQ/w8a8/full"
	owner, _ := r.Owner(key)

	owner.inflight.Store(100)
	spilled, err := r.Pick(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spilled == owner {
		t.Fatal("overloaded owner was not spilled")
	}

	owner.inflight.Store(0)
	back, _ := r.Pick(key, nil)
	if back != owner {
		t.Fatal("drained owner did not get its arc back")
	}

	// With load bounding disabled the overloaded owner keeps its keys.
	u := NewRing(64, 0)
	for i := 0; i < 3; i++ {
		u.Add(fmt.Sprintf("http://backend-%d:86", i))
	}
	uo, _ := u.Owner(key)
	uo.inflight.Store(100)
	if picked, _ := u.Pick(key, nil); picked != uo {
		t.Fatal("unbounded ring must ignore load")
	}
}

// TestNewRingRejectsNonPositiveVNodes: a vnode count of zero would let
// two rings built from the same view silently disagree on placement, so
// construction rejects it outright instead of papering over it with a
// default.
func TestNewRingRejectsNonPositiveVNodes(t *testing.T) {
	for _, vnodes := range []int{0, -1, -128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(%d, 0) did not panic", vnodes)
				}
			}()
			NewRing(vnodes, 0)
		}()
	}
}

// TestRingAddIdempotent: re-adding a member must return the existing
// backend and claim no additional virtual nodes — double-inserted
// vnodes would double the member's keyspace share and desynchronize
// any ring replica built from the membership view.
func TestRingAddIdempotent(t *testing.T) {
	r := NewRing(64, 0)
	first := r.Add("http://backend-0:86")
	r.Add("http://backend-1:86")
	points := r.Points()
	if points != 2*64 {
		t.Fatalf("points = %d, want %d", points, 2*64)
	}
	again := r.Add("http://backend-0:86")
	if again != first {
		t.Fatal("re-Add returned a different *Backend")
	}
	if got := r.Points(); got != points {
		t.Fatalf("re-Add grew the ring: %d -> %d points", points, got)
	}
	if n := len(r.Backends()); n != 2 {
		t.Fatalf("backends = %d, want 2", n)
	}
}

// TestRingOwnerN: the replica walk yields distinct backends in
// successor order — owner 0 is Owner(key); the set is a pure function
// of membership, so an unhealthy member keeps its slot (callers skip
// it but never renumber); the skip variant previews post-departure
// ownership.
func TestRingOwnerN(t *testing.T) {
	r := NewRing(64, 0)
	addrs := make([]string, 4)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("http://backend-%d:86", i)
		r.Add(addrs[i])
	}
	for _, key := range testKeys(200) {
		owners := r.OwnerN(key, 2)
		if len(owners) != 2 {
			t.Fatalf("OwnerN(%q, 2) = %d owners", key, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("OwnerN(%q, 2) returned a duplicate backend", key)
		}
		if primary, _ := r.Owner(key); owners[0] != primary {
			t.Fatalf("OwnerN(%q)[0] = %s, Owner = %s", key, owners[0].Addr(), primary.Addr())
		}
	}

	key := "ViT-S/QUQ/w6a6/partial"
	all := r.OwnerN(key, len(addrs)+3)
	if len(all) != len(addrs) {
		t.Fatalf("OwnerN over-asked = %d owners, want %d", len(all), len(addrs))
	}
	all[0].healthy.Store(false)
	stable := r.OwnerN(key, 2)
	if len(stable) != 2 || stable[0] != all[0] || stable[1] != all[1] {
		t.Fatal("transient unhealth renumbered the replica slots")
	}
	all[0].healthy.Store(true)

	skipped := r.OwnerNSkip(key, 2, all[0].Addr())
	if len(skipped) != 2 || skipped[0] != all[1] || skipped[1] != all[2] {
		t.Fatal("OwnerNSkip did not preview the post-departure owners")
	}
	if got := r.OwnerN(key, 0); got != nil {
		t.Fatalf("OwnerN(key, 0) = %v, want nil", got)
	}
}
