package baselines

import (
	"math"

	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// PTQ4ViT implements twin uniform quantization: post-Softmax activations
// are split at 2^−k into a small-value range and a large-value range with
// separate scale factors, and post-GELU activations get separate negative
// and positive scale factors; each range spends half the encoding space.
// All other tensors fall back to uniform quantization with clipping
// search. This is the "subset of QUQ" the paper identifies in §5.
type PTQ4ViT struct{}

// Name implements ptq.Method.
func (PTQ4ViT) Name() string { return "PTQ4ViT" }

// CalibrateActivation implements ptq.Method.
func (PTQ4ViT) CalibrateActivation(stats *ptq.SiteStats, bits int) ptq.TensorQuantizer {
	switch {
	case isPostSoftmax(stats.Site):
		return calibrateTwinSoftmax(stats.Samples, bits)
	case isPostGELU(stats.Site):
		return calibrateTwinGELU(stats.Samples, bits)
	default:
		return ptq.UniformQuantizer{Delta: ptq.SearchUniformDelta(stats.Samples, bits, ptq.DefaultAlphaGrid), Bits: bits}
	}
}

// QuantizeWeight implements ptq.Method (uniform, as in PTQ4ViT).
func (PTQ4ViT) QuantizeWeight(site vit.Site, w *tensor.Tensor, bits int) {
	BaseQ{}.QuantizeWeight(site, w, bits)
}

// twinSoftmaxQuantizer quantizes [0,1] attention probabilities with two
// ranges: [0, 2^−k) at fine resolution and [0, 1] at coarse resolution,
// each with 2^(b−1) codes.
type twinSoftmaxQuantizer struct {
	k    int
	bits int
}

func (t twinSoftmaxQuantizer) value(x float64) float64 {
	half := float64(int64(1) << (t.bits - 1))
	split := math.Ldexp(1, -t.k)
	if x < split {
		d := split / half
		q := math.RoundToEven(x / d)
		if q > half-1 {
			q = half - 1
		}
		if q < 0 {
			q = 0
		}
		return q * d
	}
	d := 1.0 / half
	q := math.RoundToEven(x / d)
	if q > half {
		q = half
	}
	return q * d
}

// Apply implements ptq.TensorQuantizer.
func (t twinSoftmaxQuantizer) Apply(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = t.value(v)
	}
	return out
}

func calibrateTwinSoftmax(xs []float64, bits int) ptq.TensorQuantizer {
	best := twinSoftmaxQuantizer{k: 1, bits: bits}
	bestMSE := math.Inf(1)
	for k := 1; k <= bits+2; k++ {
		cand := twinSoftmaxQuantizer{k: k, bits: bits}
		var mse float64
		for _, v := range xs {
			e := v - cand.value(v)
			mse += e * e
		}
		if mse < bestMSE {
			best, bestMSE = cand, mse
		}
	}
	return best
}

// twinGELUQuantizer gives the bounded negative side and the long-tailed
// positive side of a GELU output separate scale factors, each with
// 2^(b−1) codes.
type twinGELUQuantizer struct {
	dNeg, dPos float64
	bits       int
}

func (t twinGELUQuantizer) value(x float64) float64 {
	half := float64(int64(1) << (t.bits - 1))
	if x < 0 {
		q := math.RoundToEven(-x / t.dNeg)
		if q > half {
			q = half
		}
		return -q * t.dNeg
	}
	q := math.RoundToEven(x / t.dPos)
	if q > half-1 {
		q = half - 1
	}
	return q * t.dPos
}

// Apply implements ptq.TensorQuantizer.
func (t twinGELUQuantizer) Apply(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = t.value(v)
	}
	return out
}

func calibrateTwinGELU(xs []float64, bits int) ptq.TensorQuantizer {
	var maxNeg, maxPos float64
	for _, v := range xs {
		if v < 0 && -v > maxNeg {
			maxNeg = -v
		}
		if v > maxPos {
			maxPos = v
		}
	}
	if maxNeg == 0 {
		maxNeg = 1e-9
	}
	if maxPos == 0 {
		maxPos = 1e-9
	}
	half := float64(int64(1) << (bits - 1))
	best := twinGELUQuantizer{dNeg: maxNeg / half, dPos: maxPos / (half - 1), bits: bits}
	bestMSE := math.Inf(1)
	for _, an := range ptq.DefaultAlphaGrid {
		for _, ap := range ptq.DefaultAlphaGrid {
			cand := twinGELUQuantizer{dNeg: an * maxNeg / half, dPos: ap * maxPos / (half - 1), bits: bits}
			var mse float64
			for _, v := range xs {
				e := v - cand.value(v)
				mse += e * e
			}
			if mse < bestMSE {
				best, bestMSE = cand, mse
			}
		}
	}
	return best
}
