package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"quq/internal/rng"
)

// Fault enumerates the injectable failure modes.
type Fault int

const (
	// FaultNone matches without injecting (useful to count traffic).
	FaultNone Fault = iota
	// FaultReset fails the round trip with a connection-reset error
	// before reaching the backend.
	FaultReset
	// FaultLatency delays the round trip by Rule.Latency through the
	// transport's Clock, then passes it through.
	FaultLatency
	// Fault429 synthesizes a 429 Too Many Requests response (with a
	// Retry-After header) without contacting the backend.
	Fault429
	// Fault500 synthesizes a 500 Internal Server Error response without
	// contacting the backend.
	Fault500
	// FaultTruncate passes the request through but cuts the response
	// body in half while keeping the original Content-Length, so the
	// reader sees an unexpected EOF mid-body.
	FaultTruncate
	// FaultBlackhole swallows the request until its context expires —
	// the shape of a dead network path or a black-holed health probe.
	FaultBlackhole
)

// String names the fault for events and reports.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultReset:
		return "reset"
	case FaultLatency:
		return "latency"
	case Fault429:
		return "429"
	case Fault500:
		return "500"
	case FaultTruncate:
		return "truncate"
	case FaultBlackhole:
		return "blackhole"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Rule is one line of a fault schedule. A request matches when every
// non-empty selector matches; the first matching rule with remaining
// budget decides the request's fate.
type Rule struct {
	// Method matches the request method when non-empty ("POST", "GET").
	Method string
	// PathPrefix matches the URL path when non-empty.
	PathPrefix string
	// Host matches the URL host ("127.0.0.1:8642") when non-empty.
	Host string

	// Fault is the injected failure mode.
	Fault Fault
	// Prob injects with this probability per matching request, drawn
	// from the script's seeded stream; 0 means always (probability 1).
	Prob float64
	// Max caps how many times the rule fires; 0 means unlimited.
	Max int
	// Latency is the added delay for FaultLatency.
	Latency time.Duration
}

// Script is a named, seeded fault schedule.
type Script struct {
	Name  string
	Seed  uint64
	Rules []Rule
}

// Event records one round trip seen by the Transport.
type Event struct {
	Seq    int    // arrival order, from 0
	Method string // request method
	Path   string // request URL path
	Host   string // request URL host
	Fault  Fault  // injected fault (FaultNone if passed through)
	Status int    // response status; 0 when the round trip errored
}

// Transport is a fault-injecting http.RoundTripper. All decisions come
// from the script's rules and its seeded rng stream, never from the
// wall clock or math/rand, so a serialized workload replays
// identically. Safe for concurrent use; under concurrent callers the
// injection sequence follows arrival order at the transport's mutex.
type Transport struct {
	inner http.RoundTripper
	clock Clock

	mu     sync.Mutex
	src    *rng.Source
	rules  []Rule
	fired  []int // per-rule injection count
	events []Event
	seq    int
}

// NewTransport compiles a script onto an inner RoundTripper. A nil
// inner uses http.DefaultTransport; a nil clock uses Real.
func NewTransport(inner http.RoundTripper, clock Clock, script *Script) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if clock == nil {
		clock = Real
	}
	t := &Transport{
		inner: inner,
		clock: clock,
		src:   rng.New(script.Seed),
	}
	for _, r := range script.Rules {
		t.rules = append(t.rules, r)
	}
	t.fired = make([]int, len(t.rules))
	return t
}

// AddRule appends a rule at runtime. The harness uses this for rules
// that can only be targeted after the fleet boots (ephemeral backend
// addresses are not known when the script is authored).
func (t *Transport) AddRule(r Rule) {
	t.mu.Lock()
	t.rules = append(t.rules, r)
	t.fired = append(t.fired, 0)
	t.mu.Unlock()
}

// ClearRules drops every rule (the schedule's "recovery" step); the
// event log and sequence counter are preserved.
func (t *Transport) ClearRules() {
	t.mu.Lock()
	t.rules = nil
	t.fired = nil
	t.mu.Unlock()
}

// Events snapshots the round-trip log in arrival order.
func (t *Transport) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Count returns how many logged events match the given selectors
// (empty selector matches everything; status < 0 matches any status).
func (t *Transport) Count(method, pathPrefix, host string, fault Fault, anyFault bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.events {
		if method != "" && e.Method != method {
			continue
		}
		if pathPrefix != "" && !strings.HasPrefix(e.Path, pathPrefix) {
			continue
		}
		if host != "" && e.Host != host {
			continue
		}
		if !anyFault && e.Fault != fault {
			continue
		}
		n++
	}
	return n
}

// decide picks the fault for one request and logs the event skeleton,
// returning the event's index into the log. The index — not a pointer —
// is the handle for later status updates: a concurrent decide can grow
// t.events and reallocate its backing array, so a held *Event may go
// stale and writes through it would silently miss the log.
func (t *Transport) decide(req *http.Request) (Fault, time.Duration, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fault, latency := FaultNone, time.Duration(0)
	for i := range t.rules {
		r := &t.rules[i]
		if r.Method != "" && r.Method != req.Method {
			continue
		}
		if r.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, r.PathPrefix) {
			continue
		}
		if r.Host != "" && r.Host != req.URL.Host {
			continue
		}
		if r.Max > 0 && t.fired[i] >= r.Max {
			continue
		}
		if r.Prob > 0 && t.src.Float64() >= r.Prob {
			continue
		}
		t.fired[i]++
		fault, latency = r.Fault, r.Latency
		break
	}
	t.events = append(t.events, Event{
		Seq:    t.seq,
		Method: req.Method,
		Path:   req.URL.Path,
		Host:   req.URL.Host,
		Fault:  fault,
	})
	t.seq++
	return fault, latency, len(t.events) - 1
}

// setStatus records the final status of the idx-th logged event.
func (t *Transport) setStatus(idx int, status int) {
	t.mu.Lock()
	t.events[idx].Status = status
	t.mu.Unlock()
}

// errConnReset is the injected connection failure. It is a plain error,
// not a net.OpError: the proxy's retry policy keys on "the round trip
// errored", not on the error's concrete type.
var errConnReset = fmt.Errorf("chaos: connection reset by peer")

// RoundTrip applies the schedule to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	fault, latency, ev := t.decide(req) // ev indexes t.events
	switch fault {
	case FaultReset:
		return nil, errConnReset
	case FaultBlackhole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Fault429:
		resp := synthesize(req, http.StatusTooManyRequests, `{"error":"chaos: injected backpressure"}`)
		resp.Header.Set("Retry-After", "7")
		t.setStatus(ev, resp.StatusCode)
		return resp, nil
	case Fault500:
		resp := synthesize(req, http.StatusInternalServerError, `{"error":"chaos: injected server error"}`)
		t.setStatus(ev, resp.StatusCode)
		return resp, nil
	case FaultLatency:
		if err := t.clock.Sleep(req.Context(), latency); err != nil {
			return nil, err
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if fault == FaultTruncate {
		truncateBody(resp)
	}
	t.setStatus(ev, resp.StatusCode)
	return resp, nil
}

// synthesize builds an in-memory response without touching the network.
func synthesize(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody replaces the response body with its first half while
// leaving Content-Length at the full size, so the consumer hits an
// unexpected EOF mid-read — the wire shape of a connection dropped
// while streaming.
func truncateBody(resp *http.Response) {
	full, err := io.ReadAll(resp.Body)
	//quq:errdrop-ok a read error mid-truncation still yields a truncated body, which is the point
	_ = resp.Body.Close()
	if err != nil {
		full = nil
	}
	resp.Body = io.NopCloser(&truncatedReader{r: bytes.NewReader(full[:len(full)/2])})
	if resp.ContentLength <= 0 {
		resp.ContentLength = int64(len(full))
	}
}

// truncatedReader yields its bytes then fails with io.ErrUnexpectedEOF,
// the error a reader of a connection dropped mid-body observes.
type truncatedReader struct {
	r *bytes.Reader
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
