// Accelerator: run a transformer attention projection on the QUA
// simulator — calibrate QUQ for the layer's real activations, encode
// operands as QUBs, execute the bit-exact integer datapath, requantize
// through the quantization unit, and report cycles, energy and fidelity.
package main

import (
	"fmt"
	"log"

	"quq/internal/accel"
	"quq/internal/data"
	"quq/internal/hweval"
	"quq/internal/ptq"
	"quq/internal/quant"
	"quq/internal/tensor"
	"quq/internal/vit"
)

func main() {
	const bits = 6
	cfg := vit.ViTNano
	m := vit.New(cfg, 9)

	// Capture a real layer workload from a forward pass: the attention
	// output projection's input and its weights.
	var ctx *tensor.Tensor
	img := data.Images(cfg, 1, 3)[0]
	m.Forward(img, vit.ForwardOpts{Tap: func(s vit.Site, x *tensor.Tensor) *tensor.Tensor {
		if s.Block == 0 && s.Name == "attn.proj_in" {
			ctx = x.Clone()
		}
		return x
	}})
	var proj *vit.Linear
	m.ForEachWeight(func(s vit.Site, l *vit.Linear) {
		if s.Block == 0 && s.Name == "attn.proj.w" {
			proj = l
		}
	})
	if ctx == nil || proj == nil {
		log.Fatal("workload capture failed")
	}
	_ = ptq.Partial // the PTQ pipeline would calibrate these across many images

	px := quant.CalibrateRefined(ctx.Data(), bits, quant.DefaultPRAOptions(), quant.DefaultRefineOptions())
	pw := quant.CalibrateRefined(proj.W.Data(), bits, quant.DefaultPRAOptions(), quant.DefaultRefineOptions())
	fmt.Printf("layer: attn.proj of block 0, %v @ %v\n", ctx.Shape(), proj.W.Shape())
	fmt.Printf("activation quantizer: %v\n", px)
	fmt.Printf("weight quantizer:     %v\n\n", pw)

	ql, err := accel.NewQuantizedLinear(px, pw)
	if err != nil {
		log.Fatal(err)
	}
	ref := tensor.MatMul(ctx, proj.W)
	pout := quant.PRA(ref.Data(), bits, quant.DefaultPRAOptions())
	qu, err := accel.NewQuantizeUnit(pout, ql.AccUnit())
	if err != nil {
		log.Fatal(err)
	}

	arr := accel.ArrayConfig{N: 16, Bits: bits}
	out, res, err := ql.Run(arr, ctx, proj.W, qu)
	if err != nil {
		log.Fatal(err)
	}

	hw := hweval.Evaluate(hweval.DefaultConfig(hweval.QUADesign, bits, 16))
	secs := float64(res.Stats.Cycles) / (hw.Config.ClockMHz * 1e6)
	fmt.Printf("cycles %d (utilization %.1f%%), %.2f µs @500 MHz, %.3f µJ\n",
		res.Stats.Cycles, 100*res.Stats.Utilization, secs*1e6, hw.PowerMW*secs*1e3)
	fmt.Printf("output MSE vs FP32 layer: %.3e (output std %.3f)\n", tensor.MSE(out, ref), ref.Std())
	fmt.Printf("accelerator: %.3f mm2, %.1f mW (28 nm, 500 MHz)\n", hw.AreaMM2, hw.PowerMW)
}
