package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quq/internal/chaos"
	"quq/internal/data"
	"quq/internal/serve"
	"quq/internal/vit"
)

// selection is one registry-key choice on the wire.
type selection struct {
	Model  string `json:"model"`
	Method string `json:"method"`
	Bits   int    `json:"bits"`
	Regime string `json:"regime,omitempty"`
}

func (s selection) key() (string, error) {
	k, err := serve.KeyFromWire(s.Model, s.Method, s.Bits, s.Regime)
	if err != nil {
		return "", err
	}
	return k.String(), nil
}

// reply is the client-side record of one request.
type reply struct {
	status     int
	key        string // served key (classify) — empty on non-200
	backend    string // X-Quq-Shard header
	retryAfter string
}

// post sends one classify/quantize body and decodes the outcome. A
// transport-level error (client disconnected, connection refused) is
// returned as err with no reply.
func post(ctx context.Context, url string, body any) (reply, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return reply{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return reply{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return reply{}, err
	}
	var page struct {
		Key string `json:"key"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&page)
	if cerr := resp.Body.Close(); cerr != nil && derr == nil {
		derr = cerr
	}
	if derr != nil && resp.StatusCode == http.StatusOK {
		return reply{}, derr
	}
	return reply{
		status:     resp.StatusCode,
		key:        page.Key,
		backend:    resp.Header.Get("X-Quq-Shard"),
		retryAfter: resp.Header.Get("Retry-After"),
	}, nil
}

// classifyBody attaches one deterministic image to a selection.
func classifyBody(sel selection, img []float64) map[string]any {
	return map[string]any{
		"model": sel.Model, "method": sel.Method, "bits": sel.Bits, "regime": sel.Regime,
		"images": [][]float64{img},
	}
}

// scenarioResetFailover replays a connection-reset storm against the
// shard owning one key and checks reply conservation: the victim's
// resets burn the retry schedule (seeded backoff on the fake clock),
// the shard is ejected, the key fails over — and still every request
// sent gets exactly one answer, with backend completions equal to
// client successes.
func scenarioResetFailover(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	f, err := boot(ctx, 3, 1, baseConfig(seed), &chaos.Script{Name: "reset-failover", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()

	img := data.Images(vit.ViTNano, 1, seed)[0].Data()
	selections := []selection{
		{Model: "ViT-Nano", Method: "QUQ", Bits: 6},
		{Model: "ViT-Nano", Method: "BaseQ", Bits: 6},
		{Model: "ViT-Nano", Method: "BaseQ", Bits: 4},
		{Model: "ViT-Nano", Method: "FQ-ViT", Bits: 6},
	}
	sent, answered, clientOK := 0, 0, 0
	victim := ""
	for i, sel := range selections {
		sent++
		r, err := post(ctx, f.base+"/v1/classify", classifyBody(sel, img))
		if err != nil {
			return fmt.Errorf("warm classify %d: %w", i, err)
		}
		answered++
		if r.status == http.StatusOK {
			clientOK++
		}
		if i == 0 {
			victim = hostOf(r.backend)
		}
	}

	// Every further attempt against the first key's shard resets; the
	// front must retry, eject, and fail over without losing a reply.
	f.faults.AddRule(chaos.Rule{Host: victim, PathPrefix: "/v1/classify", Fault: chaos.FaultReset})
	for i := 0; i < 8; i++ {
		sent++
		r, err := post(ctx, f.base+"/v1/classify", classifyBody(selections[0], img))
		if err != nil {
			return fmt.Errorf("failover classify %d: %w", i, err)
		}
		answered++
		if r.status == http.StatusOK {
			clientOK++
		}
		if hostOf(r.backend) == victim {
			// A reply from the reset-storm shard would mean the rule did
			// not fire; surface it through the conservation counts.
			clientOK--
		}
	}
	rep.CheckConservation(sent, answered, completions(f.faults, "/v1/classify", http.StatusOK), clientOK)
	return nil
}

// scenarioCalibrateOnce checks the calibrate-exactly-once contract
// under the two classic spoilers: a first client that disconnects
// mid-build (the detached build must finish and serve the next caller
// from cache) and a transient calibration failure (the poisoned entry
// must be evicted and rebuilt exactly once more — not zero, not per
// subsequent request).
func scenarioCalibrateOnce(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	selA := selection{Model: "ViT-Nano", Method: "BaseQ", Bits: 6}
	selB := selection{Model: "ViT-Nano", Method: "QUQ", Bits: 6}
	keyA, err := selA.key()
	if err != nil {
		return err
	}
	keyB, err := selB.key()
	if err != nil {
		return err
	}

	var mu sync.Mutex
	builds := map[string]int{}
	started := make(chan struct{})
	release := make(chan struct{})
	cfg := baseConfig(seed)
	cfg.Registry.BuildHook = func(k serve.Key) error {
		ks := k.String()
		mu.Lock()
		builds[ks]++
		n := builds[ks]
		mu.Unlock()
		switch {
		case ks == keyA && n == 1:
			close(started) // the disconnecting client is watching
			<-release
		case ks == keyB && n == 1:
			return errors.New("chaos: injected calibration failure")
		}
		return nil
	}
	f, err := boot(ctx, 3, 1, cfg, &chaos.Script{Name: "calibrate-once", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()

	// Key A: the first caller hits the owning backend directly and
	// disconnects while its build is in flight. The build is detached
	// from the caller, so it must complete and serve the next request
	// from cache.
	owner, ok := f.front.Ring().Owner(keyA)
	if !ok {
		return errors.New("empty ring")
	}
	cctx, cancel := context.WithCancel(ctx)
	firstDone := make(chan error, 1)
	go func() {
		_, err := post(cctx, owner.Addr()+"/v1/quantize", selA)
		firstDone <- err
	}()
	<-started
	cancel()
	if err := <-firstDone; err == nil {
		return errors.New("disconnected quantize reported success")
	}
	close(release)

	// The second caller goes through the front-end; the ring is
	// untouched, so it lands on the same backend and must find the
	// abandoned build's entry, not start a second calibration.
	r, err := post(ctx, f.base+"/v1/quantize", selA)
	if err != nil {
		return err
	}
	if r.status != http.StatusOK {
		return fmt.Errorf("quantize after disconnect: status %d", r.status)
	}

	// Key B: first build fails (500 to the client — relayed, never
	// retried by the front), the entry is evicted, the retry rebuilds.
	if r, err = post(ctx, f.base+"/v1/quantize", selB); err != nil {
		return err
	}
	if r.status != http.StatusInternalServerError {
		return fmt.Errorf("failing calibration: status %d, want 500", r.status)
	}
	if r, err = post(ctx, f.base+"/v1/quantize", selB); err != nil {
		return err
	}
	if r.status != http.StatusOK {
		return fmt.Errorf("calibration retry: status %d, want 200", r.status)
	}

	mu.Lock()
	snapshot := make(map[string]int, len(builds))
	for k, v := range builds {
		snapshot[k] = v
	}
	mu.Unlock()
	rep.CheckCalibrateOnce(snapshot, map[string]int{keyA: 1, keyB: 2})
	return nil
}

// scenarioBackpressure storms every classify with injected 429s and
// checks the relay contract: the client sees each 429 verbatim (status
// and Retry-After), and the fleet sees exactly one attempt per request
// — a front-end that "helpfully" retries backpressure doubles the
// attempt count and fails here.
func scenarioBackpressure(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	script := &chaos.Script{Name: "backpressure-storm", Seed: seed, Rules: []chaos.Rule{
		{Method: http.MethodPost, PathPrefix: "/v1/classify", Fault: chaos.Fault429},
	}}
	f, err := boot(ctx, 3, 1, baseConfig(seed), script, opts)
	if err != nil {
		return err
	}
	defer f.close()

	img := data.Images(vit.ViTNano, 1, seed)[0].Data()
	const sent = 6
	got429, gotRetryAfter := 0, 0
	for i := 0; i < sent; i++ {
		sel := selection{Model: "ViT-Nano", Method: "QUQ", Bits: 6}
		if i%2 == 1 {
			sel.Method = "BaseQ"
		}
		r, err := post(ctx, f.base+"/v1/classify", classifyBody(sel, img))
		if err != nil {
			return fmt.Errorf("storm classify %d: %w", i, err)
		}
		if r.status == http.StatusTooManyRequests {
			got429++
		}
		if r.retryAfter == "7" {
			gotRetryAfter++
		}
	}
	attempts := f.faults.Count(http.MethodPost, "/v1/classify", "", chaos.FaultNone, true)
	rep.CheckNeverRetried(sent, attempts, got429, gotRetryAfter)
	return nil
}

// scenarioBoundedRemap ejects one shard via black-holed health probes,
// readmits it after the flap hysteresis clears, and checks the
// consistent-hashing promise at both transitions: only the arcs the
// victim owns ever move, and re-admission restores every key to its
// original owner. The key set is constructed so each shard owns exactly
// keysPerShard keys, keeping the report's counts independent of the
// ephemeral port layout.
func scenarioBoundedRemap(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	f, err := boot(ctx, 3, 1, baseConfig(seed), &chaos.Script{Name: "eject-readmit", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()

	ring := f.front.Ring()
	backends := ring.Backends()
	index := map[string]int{}
	for i, b := range backends {
		index[b.Addr()] = i
	}
	const keysPerShard = 20
	perShard := make([]int, len(backends))
	owners := map[string]int{} // synthetic key -> owning shard index
	for i := 0; len(owners) < keysPerShard*len(backends); i++ {
		if i >= 100000 {
			return errors.New("could not balance synthetic keys across shards")
		}
		key := fmt.Sprintf("chaos-remap-%d", i)
		b, err := ring.Pick(key, nil)
		if err != nil {
			return err
		}
		if idx := index[b.Addr()]; perShard[idx] < keysPerShard {
			perShard[idx]++
			owners[key] = idx
		}
	}
	pickAll := func() (map[string]int, error) {
		m := make(map[string]int, len(owners))
		for key := range owners {
			b, err := ring.Pick(key, nil)
			if err != nil {
				return nil, err
			}
			m[key] = index[b.Addr()]
		}
		return m, nil
	}

	before, err := pickAll()
	if err != nil {
		return err
	}
	const victim = 0 // first shard in address order; owns keysPerShard keys by construction
	f.faults.AddRule(chaos.Rule{Host: hostOf(backends[victim].Addr()), PathPrefix: "/healthz", Fault: chaos.FaultReset})
	f.front.ProbeNow(ctx) // FailAfter=2: one strike
	f.front.ProbeNow(ctx) // ejected
	during, err := pickAll()
	if err != nil {
		return err
	}
	f.faults.ClearRules()
	f.front.ProbeNow(ctx) // OkAfter=2: hysteresis holds it out one more round
	f.front.ProbeNow(ctx) // readmitted
	after, err := pickAll()
	if err != nil {
		return err
	}
	if ring.HealthyCount() != len(backends) {
		return fmt.Errorf("victim not readmitted: healthy=%d", ring.HealthyCount())
	}
	rep.CheckBoundedRemap(before, during, after, victim)
	return nil
}

// scenarioBoundedDrain drives the micro-batcher — the layer drain
// actually waits on — through a drain with every awkward passenger
// aboard: items still lingering undispatched, a submitter whose context
// expired (their slots must already be free), and a worker that panics
// mid-batch. Drain must still answer every admitted item inside the
// deadline.
func scenarioBoundedDrain(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	_ = opts // no proxy in this scenario: drain is a backend-local contract
	reg := serve.NewRegistry(serve.RegistryOptions{Seed: seed, CalibImages: 2}, nil)
	key, err := serve.KeyFromWire("ViT-Nano", "BaseQ", 6, "")
	if err != nil {
		return err
	}
	qm, _, err := reg.Get(ctx, key)
	if err != nil {
		return err
	}

	panicked := false
	var bmu sync.Mutex
	bat := serve.NewBatcher(serve.BatcherOptions{
		MaxBatch: 64, Linger: time.Hour, QueueCap: 16, Workers: 2,
		ForwardHook: func(string) {
			bmu.Lock()
			first := !panicked
			panicked = true
			bmu.Unlock()
			if first {
				//quq:panic-ok injected fault: the invariant under test is that the batcher converts worker panics to errors
				panic("chaos: injected worker crash")
			}
		},
	}, nil, nil)

	imgs := data.Images(vit.ViTNano, 8, seed+1)
	admitted := 0
	items, err := bat.Submit(ctx, key.String(), qm, imgs[:6])
	if err != nil {
		return err
	}
	admitted += len(items)

	cctx, cancel := context.WithCancel(ctx)
	abandoned, err := bat.Submit(cctx, key.String(), qm, imgs[6:8])
	if err != nil {
		cancel()
		return err
	}
	admitted += len(abandoned)
	cancel() // the submitter walks away before dispatch

	dctx, dcancel := context.WithTimeout(ctx, 60*time.Second)
	defer dcancel()
	drainErr := bat.Drain(dctx)
	all := append(append([]*serve.Item{}, items...), abandoned...)
	finished := 0
	for _, it := range all {
		select {
		case <-it.Done:
			if it.Out != nil || it.Err != nil {
				finished++
			}
		default:
			// Unfinished after a successful drain: counted as lost.
		}
	}
	rep.CheckBoundedDrain(drainErr == nil, admitted, finished)
	return nil
}

// rawPost sends one body and returns the verbatim response bytes — the
// replica-divergence check compares them byte for byte.
func rawPost(ctx context.Context, url string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// adminPost drives one membership mutation through the front-end's
// admin surface and decodes its outcome.
func adminPost(ctx context.Context, url, addr string) (epoch uint64, moved int, err error) {
	status, raw, err := rawPost(ctx, url, map[string]string{"addr": addr})
	if err != nil {
		return 0, 0, err
	}
	if status != http.StatusOK {
		return 0, 0, fmt.Errorf("%s: status %d: %s", url, status, raw)
	}
	var out struct {
		Epoch uint64 `json:"epoch"`
		Moved int    `json:"moved"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return 0, 0, err
	}
	return out.Epoch, out.Moved, nil
}

// buildCounter returns a base config whose BuildHook tallies
// calibrations per canonical key, plus a snapshot function.
func buildCounter(seed uint64) (serve.Config, func() map[string]int) {
	var mu sync.Mutex
	builds := map[string]int{}
	cfg := baseConfig(seed)
	cfg.Registry.BuildHook = func(k serve.Key) error {
		mu.Lock()
		builds[k.String()]++
		mu.Unlock()
		return nil
	}
	return cfg, func() map[string]int {
		mu.Lock()
		defer mu.Unlock()
		snap := make(map[string]int, len(builds))
		for k, v := range builds {
			snap[k] = v
		}
		return snap
	}
}

// scenarioReplicaDivergence checks the replicated write contract at
// R=2: one quantize through the front calibrates the key on both
// placement owners — and on nobody else, at most R builds fleet-wide —
// and the two replicas then answer the same classify byte-identically.
// A second quantize hits both warm caches without adding builds.
func scenarioReplicaDivergence(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	cfg, snapshot := buildCounter(seed)
	f, err := boot(ctx, 3, 2, cfg, &chaos.Script{Name: "replica-divergence", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()

	sel := selection{Model: "ViT-Nano", Method: "QUQ", Bits: 6}
	key, err := sel.key()
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ { // second pass must be a fleet-wide cache hit
		r, err := post(ctx, f.base+"/v1/quantize", sel)
		if err != nil {
			return fmt.Errorf("replicated quantize %d: %w", i, err)
		}
		if r.status != http.StatusOK {
			return fmt.Errorf("replicated quantize %d: status %d", i, r.status)
		}
	}

	owners := f.front.Ring().OwnerN(key, 2)
	if len(owners) != 2 {
		return fmt.Errorf("OwnerN returned %d owners, want 2", len(owners))
	}
	img := data.Images(vit.ViTNano, 1, seed)[0].Data()
	bodies := make([][]byte, len(owners))
	for i, o := range owners {
		status, raw, err := rawPost(ctx, o.Addr()+"/v1/classify", classifyBody(sel, img))
		if err != nil {
			return fmt.Errorf("direct classify on replica %d: %w", i, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("direct classify on replica %d: status %d", i, status)
		}
		bodies[i] = raw
	}
	rep.CheckCalibrateAtMostR(snapshot(), 2)
	rep.CheckReplicasIdentical(len(owners), bytes.Equal(bodies[0], bodies[1]))

	// Mixed-backend equivalence: flip the second owner's backend to the
	// integer weight path — the in-process equivalent of restarting it
	// with -int-path — and require the replicas to stay interchangeable
	// for requantized outputs: identical argmax, and logits byte-identical
	// after requantization onto the 2^-16 grid. Raw float64 logits
	// legitimately differ at the ~1 ulp level between the backends (the
	// int path sums exactly then scales once; the float path rounds per
	// accumulation step), which is why this check requantizes instead of
	// comparing response bodies.
	intHost := hostOf(owners[1].Addr())
	var intBackend *backendShard
	for _, b := range f.backends {
		if b.host == intHost {
			intBackend = b
		}
	}
	if intBackend == nil {
		return fmt.Errorf("no backend matches owner host %s", intHost)
	}
	if n, err := intBackend.srv.SetIntPath(true); err != nil || n < 1 {
		return fmt.Errorf("enabling int path on %s: toggled %d entries, err %v", intHost, n, err)
	}
	args := make([]int, len(owners))
	logits := make([][]float64, len(owners))
	for i, o := range owners {
		status, raw, err := rawPost(ctx, o.Addr()+"/v1/classify", classifyBody(sel, img))
		if err != nil {
			return fmt.Errorf("mixed-backend classify on replica %d: %w", i, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("mixed-backend classify on replica %d: status %d", i, status)
		}
		var out struct {
			Results []struct {
				ArgMax int       `json:"argmax"`
				Logits []float64 `json:"logits"`
			} `json:"results"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			return fmt.Errorf("mixed-backend classify on replica %d: %w", i, err)
		}
		if len(out.Results) != 1 {
			return fmt.Errorf("mixed-backend classify on replica %d: %d results, want 1", i, len(out.Results))
		}
		args[i] = out.Results[0].ArgMax
		logits[i] = out.Results[0].Logits
	}
	identical := args[0] == args[1] && len(logits[0]) == len(logits[1]) && len(logits[0]) > 0
	if identical {
		for c := range logits[0] {
			if math.Float64bits(requantGrid(logits[0][c])) != math.Float64bits(requantGrid(logits[1][c])) {
				identical = false
				break
			}
		}
	}
	rep.CheckReplicasIdentical(len(owners), identical)
	return nil
}

// requantGrid snaps a logit onto the 2^-16 grid, normalizing signed zero
// — the cross-backend contract requantized outputs are held to.
func requantGrid(v float64) float64 {
	q := math.RoundToEven(math.Ldexp(v, 16))
	if q == 0 {
		return 0
	}
	return math.Ldexp(q, -16)
}

// scenarioReplicaFailover checks that replication turns a worker death
// into a non-event for calibrated keys: after a replicated warm, a
// reset storm kills the primary owner and every subsequent read is
// answered by the surviving replica from its warm cache — zero new
// calibrations, zero answers from the corpse.
func scenarioReplicaFailover(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	cfg, snapshot := buildCounter(seed)
	f, err := boot(ctx, 3, 2, cfg, &chaos.Script{Name: "replica-failover", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()

	sel := selection{Model: "ViT-Nano", Method: "BaseQ", Bits: 6}
	key, err := sel.key()
	if err != nil {
		return err
	}
	if r, err := post(ctx, f.base+"/v1/quantize", sel); err != nil || r.status != http.StatusOK {
		return fmt.Errorf("replicated warm: %v (status %d)", err, r.status)
	}
	warmBuilds := snapshot()[key]

	owners := f.front.Ring().OwnerN(key, 2)
	if len(owners) != 2 {
		return fmt.Errorf("OwnerN returned %d owners, want 2", len(owners))
	}
	victim := hostOf(owners[0].Addr())
	f.faults.AddRule(chaos.Rule{Host: victim, PathPrefix: "/v1/classify", Fault: chaos.FaultReset})

	img := data.Images(vit.ViTNano, 1, seed)[0].Data()
	const reads = 6
	readsOK := 0
	for i := 0; i < reads; i++ {
		r, err := post(ctx, f.base+"/v1/classify", classifyBody(sel, img))
		if err != nil {
			return fmt.Errorf("failover read %d: %w", i, err)
		}
		if r.status == http.StatusOK && hostOf(r.backend) != victim {
			readsOK++
		}
	}
	rep.CheckZeroLostKeys(reads, readsOK, snapshot()[key]-warmBuilds)
	return nil
}

// scenarioMembershipElastic drives the fleet through its elastic
// lifecycle over the admin surface — join a cold backend, drain the
// member owning a calibrated key, abruptly remove another — and checks
// that the epoch advances monotonically, the drain re-homes the key
// before departure, and the key keeps serving warm afterwards.
func scenarioMembershipElastic(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	cfg, snapshot := buildCounter(seed)
	f, err := boot(ctx, 2, 1, cfg, &chaos.Script{Name: "membership-elastic", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()
	epochs := []uint64{f.front.Members().Epoch()}

	sel := selection{Model: "ViT-Nano", Method: "QUQ", Bits: 6}
	key, err := sel.key()
	if err != nil {
		return err
	}
	if r, err := post(ctx, f.base+"/v1/quantize", sel); err != nil || r.status != http.StatusOK {
		return fmt.Errorf("warm: %v (status %d)", err, r.status)
	}
	owner, ok := f.front.Ring().Owner(key)
	if !ok {
		return errors.New("empty ring")
	}

	// Join a cold third backend through the admin surface.
	third, err := f.startBackend(cfg)
	if err != nil {
		return fmt.Errorf("starting late backend: %w", err)
	}
	f.backends = append(f.backends, third)
	epoch, _, err := adminPost(ctx, f.base+"/admin/join", third.host)
	if err != nil {
		return err
	}
	epochs = append(epochs, epoch)

	// Drain the owner: its one calibrated key must re-home first.
	epoch, moved, err := adminPost(ctx, f.base+"/admin/drain", hostOf(owner.Addr()))
	if err != nil {
		return err
	}
	epochs = append(epochs, epoch)
	drainedBuilds := snapshot()[key]

	// The key keeps serving — warm, off a survivor, no recalibration.
	img := data.Images(vit.ViTNano, 1, seed)[0].Data()
	lost := 0
	r, err := post(ctx, f.base+"/v1/classify", classifyBody(sel, img))
	if err != nil {
		return fmt.Errorf("post-drain read: %w", err)
	}
	if r.status != http.StatusOK || hostOf(r.backend) == hostOf(owner.Addr()) {
		lost++
	}
	lost += snapshot()[key] - drainedBuilds

	// Abrupt leave of a remaining original member still bumps the epoch.
	for _, b := range f.backends[:2] {
		if b.host != hostOf(owner.Addr()) {
			epoch, _, err = adminPost(ctx, f.base+"/admin/leave", b.host)
			if err != nil {
				return err
			}
			epochs = append(epochs, epoch)
			break
		}
	}
	rep.CheckElasticMembership(epochs, moved, lost)
	return nil
}

// budgetPost is rawPost with an X-Quq-Latency-Budget header attached —
// the overload scenario's lenient backdrop client and its impatient
// probes differ only in this header.
func budgetPost(ctx context.Context, url, budget string, body any) (int, http.Header, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if budget != "" {
		req.Header.Set(serve.LatencyBudgetHeader, budget)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, resp.Header, nil
}

// scenarioOverloadShed drives the occupancy-adaptive scheduler through
// its whole operating range on a fake clock and checks the latency-SLO
// invariant:
//
//   - sparse singles keep the governor at the wide point (MaxIntraOp
//     workers, immediate dispatch) and finish inside the default budget;
//   - one full batch shrinks the worker budget to MinIntraOp instantly;
//   - with the queue backed up behind a gated worker, an impatient probe
//     is shed with 429 before taking a queue slot, while the lenient
//     backdrop (explicit wide budget) is admitted and completes;
//   - after the occupancy window ages out, the governor returns to the
//     wide point and the shed counter shows up in the front-end's merged
//     /metrics view.
//
// Every figure in the report — request counts, worker allocations, shed
// tallies, queue depths — is script-determined: the injected clock makes
// service times exact, so two replays render byte-identical verdicts.
func scenarioOverloadShed(ctx context.Context, seed uint64, opts Options, rep *chaos.Report) error {
	clk := chaos.NewFake()
	gate := make(chan struct{})
	var block atomic.Bool
	cfg := baseConfig(seed)
	cfg.Batcher = serve.BatcherOptions{
		MaxBatch: 4, QueueCap: 64, Workers: 2,
		LatencyBudget: 20 * time.Millisecond,
		ForwardHook: func(string) {
			if block.Load() {
				<-gate
			}
			// The fake clock advances instantly and only fails on a
			// cancelled scenario context, at which point the forward's
			// outcome is moot.
			//quq:errdrop-ok fake-clock sleep cannot fail except on scenario teardown
			_ = clk.Sleep(ctx, 5*time.Millisecond)
		},
	}
	cfg.Governor = serve.GovernorOptions{
		Window: 500 * time.Millisecond, MinIntraOp: 1, MaxIntraOp: 4, Clock: clk,
	}
	f, err := boot(ctx, 1, 1, cfg, &chaos.Script{Name: "overload-shed", Seed: seed}, opts)
	if err != nil {
		return err
	}
	defer f.close()
	backend := f.backends[0]
	sel := selection{Model: "ViT-Nano", Method: "QUQ", Bits: 6}
	imgs := data.Images(vit.ViTNano, 12, seed)
	flat := make([][]float64, len(imgs))
	for i, img := range imgs {
		flat[i] = img.Data()
	}
	multi := func(n int) map[string]any {
		return map[string]any{
			"model": sel.Model, "method": sel.Method, "bits": sel.Bits,
			"images": flat[:n],
		}
	}

	// Warm the key so classify latency is pure serving, not calibration.
	if r, err := post(ctx, f.base+"/v1/quantize", sel); err != nil || r.status != http.StatusOK {
		return fmt.Errorf("warm quantize: status %v: %w", r.status, err)
	}

	admitted, withinBudget := 0, 0
	var workerPath []int
	// timed runs one admitted request and scores it against its budget
	// using the fake clock — service time is exactly the injected sleeps.
	timed := func(budget time.Duration, send func() error) error {
		start := clk.Now()
		if err := send(); err != nil {
			return err
		}
		admitted++
		if clk.Now().Sub(start) <= budget {
			withinBudget++
		}
		return nil
	}

	// Phase 1 — sparse singles: occupancy 1/4 sits at the low threshold,
	// so the governor holds the wide point it boots with.
	for i := 0; i < 2; i++ {
		if err := timed(cfg.Batcher.LatencyBudget, func() error {
			r, err := post(ctx, f.base+"/v1/classify", classifyBody(sel, flat[0]))
			if err != nil || r.status != http.StatusOK {
				return fmt.Errorf("sparse classify %d: status %d: %w", i, r.status, err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	workerPath = append(workerPath, int(backend.srv.Metrics().IntraopWorkers.Value()))

	// Phase 2 — one full batch: instantaneous occupancy 1.0 shrinks the
	// per-batch worker budget to the floor.
	if err := timed(cfg.Batcher.LatencyBudget, func() error {
		status, _, err := budgetPost(ctx, f.base+"/v1/classify", "", multi(4))
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("full batch: status %d: %w", status, err)
		}
		return nil
	}); err != nil {
		return err
	}
	workerPath = append(workerPath, int(backend.srv.Metrics().IntraopWorkers.Value()))

	// Phase 3 — overload: jam the workers and queue a 12-image backdrop
	// from a lenient client (wide explicit budget) straight at the
	// backend, then probe it with the default budget. The probe's
	// estimated wait (5ms × 12 queued / 2 workers = 30ms) beats its 20ms
	// budget, so admission control sheds it up front. Both go direct —
	// 429 pass-through via the front is the backpressure scenario's
	// claim; this one pins the backend's own shed behaviour, so a
	// deliberately broken front transport cannot perturb its counts.
	block.Store(true)
	backdropErr := make(chan error, 1)
	go func() {
		backdropErr <- timed(time.Second, func() error {
			status, _, err := budgetPost(ctx, "http://"+backend.host+"/v1/classify", "1s", multi(12))
			if err != nil || status != http.StatusOK {
				return fmt.Errorf("backdrop: status %d: %w", status, err)
			}
			return nil
		})
	}()
	for backend.srv.Metrics().QueueDepth.Value() != 12 {
		if err := ctx.Err(); err != nil {
			return err
		}
		runtime.Gosched()
	}

	status, hdr, err := budgetPost(ctx, "http://"+backend.host+"/v1/classify", "", classifyBody(sel, flat[0]))
	if err != nil {
		return fmt.Errorf("shed probe: %w", err)
	}
	shed := 0
	if status == http.StatusTooManyRequests && hdr.Get("Retry-After") != "" {
		shed = int(backend.srv.Metrics().Shed.Value())
	}
	shedQueueSlots := int(backend.srv.Metrics().QueueDepth.Value()) - 12

	block.Store(false)
	close(gate)
	if err := <-backdropErr; err != nil {
		return err
	}

	// Phase 4 — recovery: age the occupancy window out entirely; the
	// next sparse single dispatches immediately at the wide point again.
	if err := clk.Sleep(ctx, 600*time.Millisecond); err != nil {
		return err
	}
	if err := timed(cfg.Batcher.LatencyBudget, func() error {
		r, err := post(ctx, f.base+"/v1/classify", classifyBody(sel, flat[0]))
		if err != nil || r.status != http.StatusOK {
			return fmt.Errorf("recovery classify: status %d: %w", r.status, err)
		}
		return nil
	}); err != nil {
		return err
	}
	workerPath = append(workerPath, int(backend.srv.Metrics().IntraopWorkers.Value()))

	// The shed counter must surface through the front-end's merged view.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("merged metrics: %w", err)
	}
	page, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	merged := strings.Contains(string(page), fmt.Sprintf("quq_serve_shed_total %d", shed))

	rep.CheckLatencySLO(admitted, withinBudget, shed, shedQueueSlots, workerPath, merged)
	return nil
}
