package serve

import (
	"sync"
	"time"

	"quq/internal/chaos"
)

// GovernorOptions tunes the occupancy-adaptive scheduler. The governor
// re-splits one fixed core budget between inter-request batching and
// intra-op GEMM parallelism: at low occupancy it dispatches batches
// immediately (no linger) and grants each batch up to MaxIntraOp
// workers; under load it shrinks back to MinIntraOp and lets the linger
// window build wide batches. See docs/TUNING.md for the operator view.
type GovernorOptions struct {
	// Window is the sliding occupancy window the governor averages over
	// when deciding to raise the per-batch worker budget. Zero or
	// negative disables adaptation entirely: the batcher keeps its
	// configured linger and a fixed MinIntraOp worker budget (the
	// pre-governor static split). Admission control (latency budgets)
	// works in both modes.
	Window time.Duration
	// MinIntraOp is the per-batch intra-op worker floor the governor
	// shrinks to under load (default 1 — serial kernels, all cores to
	// inter-request fan-out).
	MinIntraOp int
	// MaxIntraOp is the per-batch intra-op worker ceiling granted at low
	// occupancy (default MinIntraOp — no raising). Each dispatched batch
	// contributes MaxIntraOp-1 extra workers to the tensor pool while the
	// governor is in the low-occupancy regime.
	MaxIntraOp int
	// LowOccupancy is the window-average batch occupancy (images per
	// dispatched batch / MaxBatch) at or below which the governor enters
	// the low-occupancy regime: immediate dispatch, MaxIntraOp workers
	// (default 0.25).
	LowOccupancy float64
	// HighOccupancy is the instantaneous occupancy at or above which the
	// governor drops to the load regime: full linger batching,
	// MinIntraOp workers (default 0.5). Shrinking keys off the latest
	// batch, not the window average, so one full batch reacts instantly.
	HighOccupancy float64
	// Clock paces and timestamps every governor decision. Defaults to
	// chaos.Real; tests and the chaos harness inject a *chaos.Fake so
	// occupancy traces and shed decisions replay deterministically.
	Clock chaos.Clock
}

func (o *GovernorOptions) defaults() {
	if o.MinIntraOp < 1 {
		o.MinIntraOp = 1
	}
	if o.MaxIntraOp < o.MinIntraOp {
		o.MaxIntraOp = o.MinIntraOp
	}
	if o.LowOccupancy <= 0 {
		o.LowOccupancy = 0.25
	}
	if o.HighOccupancy <= 0 {
		o.HighOccupancy = 0.5
	}
	if o.Clock == nil {
		o.Clock = chaos.Real
	}
}

// govSample is one dispatch observation inside the sliding window.
type govSample struct {
	at    time.Time
	occ   float64 // images / MaxBatch at dispatch
	depth int     // queued images at dispatch
}

// Governor is the occupancy-adaptive core-budget scheduler. It observes
// every batch dispatch (occupancy, queue depth) and batch completion
// (service time) through the injectable clock, and from those decides
// two things the batcher reads on its hot path: how many intra-op
// workers the next batch may grant, and whether a submit should
// dispatch immediately instead of waiting out the linger. It also owns
// the per-image service-time estimate behind latency-budget admission
// control. All methods are safe for concurrent use; decisions are pure
// functions of the recorded samples and the clock, so a fake clock
// makes every transition deterministic.
type Governor struct {
	opts GovernorOptions
	met  *Metrics

	mu          sync.Mutex
	maxBatch    int // bound by the batcher at construction
	poolWorkers int // batcher worker-pool size, for wait estimates
	samples     []govSample
	workers     int  // current per-batch intra-op allocation
	immediate   bool // low-occupancy regime: dispatch without linger
	ewmaPerImg  time.Duration
}

// NewGovernor builds a governor; met may be nil. The batcher binds its
// MaxBatch and worker-pool size via bind before traffic flows.
func NewGovernor(opts GovernorOptions, met *Metrics) *Governor {
	opts.defaults()
	g := &Governor{opts: opts, met: met, maxBatch: 8, poolWorkers: 1}
	g.workers = opts.MinIntraOp
	if g.enabled() {
		// An idle server starts in the low-occupancy regime: the first
		// sparse request gets immediate dispatch and the full worker
		// ceiling.
		g.workers = opts.MaxIntraOp
		g.immediate = true
	}
	if met != nil {
		met.IntraopWorkers.Set(int64(g.workers))
	}
	return g
}

// enabled reports whether adaptation is on (Window > 0). A disabled
// governor still tracks service times for admission control.
func (g *Governor) enabled() bool { return g.opts.Window > 0 }

// bind wires the batcher's defaulted geometry into the governor.
func (g *Governor) bind(maxBatch, poolWorkers int) {
	g.mu.Lock()
	g.maxBatch = maxBatch
	g.poolWorkers = poolWorkers
	g.mu.Unlock()
}

// NoteBatch records one dispatch (size images, depth queued at dispatch)
// and re-decides the operating point. The batcher calls it at the top of
// every batch run, before any forward, so the decision governs the very
// batch that triggered it.
func (g *Governor) NoteBatch(size, depth int) {
	now := g.opts.Clock.Now()
	g.mu.Lock()
	occ := float64(size) / float64(g.maxBatch)
	g.samples = append(g.samples, govSample{at: now, occ: occ, depth: depth})
	g.decideLocked(now)
	workers := g.workers
	g.mu.Unlock()
	if g.met != nil {
		g.met.Occupancy.Observe(occ)
		g.met.IntraopWorkers.Set(int64(workers))
	}
}

// NoteService records one completed batch's wall time (by the governor's
// clock), updating the per-image service-time estimate admission control
// divides the queue depth by.
func (g *Governor) NoteService(images int, elapsed time.Duration) {
	if images <= 0 || elapsed < 0 {
		return
	}
	per := elapsed / time.Duration(images)
	g.mu.Lock()
	if g.ewmaPerImg == 0 {
		g.ewmaPerImg = per
	} else {
		// EWMA with alpha = 1/2: cheap, integer-exact, and quick to track
		// regime changes.
		g.ewmaPerImg = (g.ewmaPerImg + per) / 2
	}
	g.mu.Unlock()
}

// decideLocked prunes the window and picks the operating point. Caller
// holds g.mu. The control law is asymmetric: shrinking keys off the
// latest sample (one full batch drops the worker budget instantly, so a
// burst never fights wide grants), raising requires the whole window
// average to sit at or below LowOccupancy with a shallow queue.
func (g *Governor) decideLocked(now time.Time) {
	if !g.enabled() {
		g.workers = g.opts.MinIntraOp
		g.immediate = false
		return
	}
	cutoff := now.Add(-g.opts.Window)
	keep := g.samples[:0]
	for _, s := range g.samples {
		if !s.at.Before(cutoff) {
			keep = append(keep, s)
		}
	}
	g.samples = keep
	if len(g.samples) == 0 {
		// Idle long enough that the window emptied: optimize for the next
		// sparse arrival.
		g.workers = g.opts.MaxIntraOp
		g.immediate = true
		return
	}
	latest := g.samples[len(g.samples)-1]
	sum := 0.0
	for _, s := range g.samples {
		sum += s.occ
	}
	avg := sum / float64(len(g.samples))
	switch {
	case latest.occ >= g.opts.HighOccupancy || latest.depth > g.maxBatch:
		g.workers = g.opts.MinIntraOp
		g.immediate = false
	case avg <= g.opts.LowOccupancy && latest.depth <= g.maxBatch:
		g.workers = g.opts.MaxIntraOp
		g.immediate = true
	}
	// Between the thresholds: hysteresis — keep the current point.
}

// BatchWorkers returns the intra-op worker allocation for the batch
// being dispatched. Reads re-run the decision so a governor that sat
// idle past its window snaps back to the wide low-occupancy point
// before the next batch runs, not one batch later.
func (g *Governor) BatchWorkers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.decideLocked(g.opts.Clock.Now())
	return g.workers
}

// ImmediateDispatch reports whether the governor is in the
// low-occupancy regime, where a submit flushes its batch at the end of
// the call instead of waiting out the linger. Like BatchWorkers it
// re-decides first, so the first submit after an idle stretch gets
// immediate dispatch.
func (g *Governor) ImmediateDispatch() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.decideLocked(g.opts.Clock.Now())
	return g.immediate
}

// EstimatedWait estimates how long a new arrival would wait before the
// worker pool even starts it: queued images ahead of it, times the
// per-image service estimate, divided across the pool. Zero until the
// first batch completes (no estimate — never shed blind).
func (g *Governor) EstimatedWait(queued int) time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	if queued <= 0 || g.ewmaPerImg == 0 {
		return 0
	}
	return g.ewmaPerImg * time.Duration(queued) / time.Duration(g.poolWorkers)
}

// clock exposes the governor's time source to the batcher (service
// timing must use the same clock the decisions replay under).
func (g *Governor) clock() chaos.Clock { return g.opts.Clock }
