package quant

import (
	"math"
	"testing"

	"quq/internal/rng"
)

func TestUniformBasics(t *testing.T) {
	// Δ=1, 4 bits: codes in [-8, 7].
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {0.4, 0}, {0.6, 1}, {1.5, 2} /* round half to even */, {2.5, 2},
		{-0.6, -1}, {100, 7}, {-100, -8},
	}
	for _, c := range cases {
		if got := Uniform(c.x, 1, 4); got != c.want {
			t.Errorf("Uniform(%v, 1, 4) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestUniformCodeRange(t *testing.T) {
	src := rng.New(1)
	for i := 0; i < 10000; i++ {
		x := src.Gauss(0, 10)
		c := UniformCode(x, 0.3, 6)
		if c < -32 || c > 31 {
			t.Fatalf("UniformCode out of 6-bit range: %d", c)
		}
	}
}

func TestUniformDelta(t *testing.T) {
	if d := UniformDelta(127, 8); d != 1 {
		t.Fatalf("UniformDelta(127, 8) = %v, want 1", d)
	}
	if d := UniformDelta(0, 8); d != 1 {
		t.Fatalf("UniformDelta of zero tensor should be 1, got %v", d)
	}
}

func TestUniformErrorBound(t *testing.T) {
	// Within the representable range, |x - U(x)·Δ| ≤ Δ/2.
	src := rng.New(2)
	const delta = 0.25
	for i := 0; i < 10000; i++ {
		x := src.Uniform(-31*delta, 31*delta)
		if err := math.Abs(x - Uniform(x, delta, 6)); err > delta/2+1e-12 {
			t.Fatalf("|%v - U(%v)| = %v > Δ/2", x, x, err)
		}
	}
}

func TestRelaxProducesPow2Ratio(t *testing.T) {
	src := rng.New(3)
	for i := 0; i < 5000; i++ {
		d1 := math.Exp(src.Uniform(-10, 10))
		d2 := math.Exp(src.Uniform(-10, 10))
		r1, r2 := Relax(d1, d2)
		k := math.Log2(r2 / r1)
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("Relax(%v, %v) ratio 2^%v is not a power of two", d1, d2, k)
		}
	}
}

func TestRelaxNeverShrinks(t *testing.T) {
	// Algorithm 1's guarantee: neither output is smaller than its input
	// (so relaxation never introduces clipping).
	src := rng.New(4)
	for i := 0; i < 5000; i++ {
		d1 := math.Exp(src.Uniform(-5, 5))
		d2 := math.Exp(src.Uniform(-5, 5))
		r1, r2 := Relax(d1, d2)
		if r1 < d1-1e-12 || r2 < d2-1e-12 {
			t.Fatalf("Relax(%v, %v) = (%v, %v) shrank a factor", d1, d2, r1, r2)
		}
	}
}

func TestRelaxIdempotentOnPow2(t *testing.T) {
	for _, k := range []int{-3, -1, 0, 1, 4} {
		d1 := 0.375
		d2 := d1 * math.Pow(2, float64(k))
		r1, r2 := Relax(d1, d2)
		if math.Abs(r1-d1) > 1e-12 || math.Abs(r2-d2) > 1e-12 {
			t.Fatalf("Relax changed an already-relaxed pair (k=%d): (%v,%v) -> (%v,%v)", k, d1, d2, r1, r2)
		}
	}
}

func TestRelaxExactlyOneChanged(t *testing.T) {
	src := rng.New(5)
	for i := 0; i < 2000; i++ {
		d1 := math.Exp(src.Uniform(-4, 4))
		d2 := math.Exp(src.Uniform(-4, 4))
		r1, r2 := Relax(d1, d2)
		c1 := math.Abs(r1-d1) > 1e-12
		c2 := math.Abs(r2-d2) > 1e-12
		if c1 && c2 {
			t.Fatalf("Relax modified both factors: (%v,%v) -> (%v,%v)", d1, d2, r1, r2)
		}
	}
}

func TestRelaxPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Relax(0, 1)
}

func TestParamsForUniformMatchesUniform(t *testing.T) {
	// The paper: symmetric uniform quantization is a special case of QUQ
	// (Mode D with Δ_C− = Δ_F+).
	src := rng.New(6)
	for _, bits := range []int{4, 6, 8} {
		const delta = 0.17
		p := ParamsForUniform(delta, bits)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			x := src.Gauss(0, 3)
			if got, want := p.Value(x), Uniform(x, delta, bits); got != want {
				t.Fatalf("b=%d x=%v: QUQ uniform-equivalent %v != Uniform %v", bits, x, got, want)
			}
		}
	}
}

func TestValidateRejectsBadRatio(t *testing.T) {
	p := &Params{Bits: 8}
	p.Slots[FPos] = SlotParams{Enabled: true, Delta: 1, MaxMag: 63}
	p.Slots[CPos] = SlotParams{Enabled: true, Delta: 3, MaxMag: 63} // not 2^k
	if p.Validate() == nil {
		t.Fatal("Validate accepted a non-power-of-two ratio")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	p := &Params{Bits: 8}
	if p.Validate() == nil {
		t.Fatal("Validate accepted an all-disabled quantizer")
	}
}

func TestValidateRejectsBadBits(t *testing.T) {
	p := ParamsForUniform(1, 8)
	p.Bits = 2
	if p.Validate() == nil {
		t.Fatal("Validate accepted 2-bit quantizer")
	}
}

func TestShift(t *testing.T) {
	p := &Params{Bits: 8, Mode: ModeA}
	p.Slots[FNeg] = SlotParams{Enabled: true, Delta: 0.5, MaxMag: 64}
	p.Slots[FPos] = SlotParams{Enabled: true, Delta: 0.5, MaxMag: 63}
	p.Slots[CNeg] = SlotParams{Enabled: true, Delta: 4, MaxMag: 64}
	p.Slots[CPos] = SlotParams{Enabled: true, Delta: 2, MaxMag: 63}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BaseDelta() != 0.5 {
		t.Fatalf("BaseDelta = %v", p.BaseDelta())
	}
	if p.Shift(FPos) != 0 || p.Shift(CNeg) != 3 || p.Shift(CPos) != 2 {
		t.Fatalf("shifts = %d,%d,%d", p.Shift(FPos), p.Shift(CNeg), p.Shift(CPos))
	}
}

func TestMaxCodeMag(t *testing.T) {
	p := &Params{Bits: 8, Mode: ModeA}
	p.Slots[FNeg] = SlotParams{Enabled: true, Delta: 0.5, MaxMag: 64}
	p.Slots[FPos] = SlotParams{Enabled: true, Delta: 0.5, MaxMag: 63}
	p.Slots[CNeg] = SlotParams{Enabled: true, Delta: 4, MaxMag: 64}
	p.Slots[CPos] = SlotParams{Enabled: true, Delta: 2, MaxMag: 63}
	// CNeg: 64 << 3 = 512 dominates CPos's 63 << 2 = 252.
	if got := p.MaxCodeMag(); got != 512 {
		t.Fatalf("MaxCodeMag = %d, want 512", got)
	}
	// Uniform quantizer: no shifts, just the widest magnitude.
	if got := ParamsForUniform(1, 4).MaxCodeMag(); got != 8 {
		t.Fatalf("uniform MaxCodeMag = %d, want 8", got)
	}
}

func TestQuantizeZero(t *testing.T) {
	p := ParamsForUniform(0.3, 6)
	c := p.Quantize(0)
	if c.Mag != 0 || p.Dequantize(c) != 0 {
		t.Fatalf("zero does not round-trip: %+v", c)
	}
}

func TestQuantizeFinePreferredOverCoarse(t *testing.T) {
	p := &Params{Bits: 8, Mode: ModeA}
	p.Slots[FNeg] = SlotParams{Enabled: true, Delta: 0.1, MaxMag: 64}
	p.Slots[FPos] = SlotParams{Enabled: true, Delta: 0.1, MaxMag: 63}
	p.Slots[CNeg] = SlotParams{Enabled: true, Delta: 0.8, MaxMag: 64}
	p.Slots[CPos] = SlotParams{Enabled: true, Delta: 0.8, MaxMag: 63}
	// 3.0 is representable in both subranges; fine must win (higher
	// resolution, the paper's overlap rule).
	c := p.Quantize(3.0)
	if c.Slot != FPos {
		t.Fatalf("value in fine range quantized to %v", c.Slot)
	}
	// 6.31 exceeds the fine bound (6.3) and must go coarse.
	c = p.Quantize(6.4)
	if c.Slot != CPos {
		t.Fatalf("value beyond fine range quantized to %v", c.Slot)
	}
	// Negative mirror.
	if c := p.Quantize(-3.0); c.Slot != FNeg {
		t.Fatalf("negative fine value quantized to %v", c.Slot)
	}
	if c := p.Quantize(-7.0); c.Slot != CNeg {
		t.Fatalf("negative coarse value quantized to %v", c.Slot)
	}
}

func TestQuantizeClipsAtCoarseBound(t *testing.T) {
	p := ParamsForUniform(1, 4) // positive max 7, negative max -8
	if v := p.Value(100); v != 7 {
		t.Fatalf("positive clip = %v, want 7", v)
	}
	if v := p.Value(-100); v != -8 {
		t.Fatalf("negative clip = %v, want -8", v)
	}
}

func TestQuantizeWrongSideOfOneSided(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = src.Exp(1) // strictly positive
	}
	p := PRA(xs, 6, DefaultPRAOptions())
	if p.Mode != ModeB {
		t.Fatalf("one-sided tensor got mode %v", p.Mode)
	}
	if v := p.Value(-3); v != 0 {
		t.Fatalf("negative input to non-negative quantizer = %v, want 0 (clip)", v)
	}
}

// TestQuantizeSliceMatchesValue pins the specialized hot loop to the
// scalar Quantize+Dequantize path bit for bit (QuantizeSlice's doc
// promises bit-identity, including the sign of zero), across every slot
// configuration the calibrator can produce and the edge values that
// exercise the clipping, zero-normalization and saturation branches.
func TestQuantizeSliceMatchesValue(t *testing.T) {
	src := rng.New(8)
	calib := make([]float64, 4096)
	for i := range calib {
		calib[i] = src.Laplace(1)
	}
	onePos := make([]float64, 4096)
	oneNeg := make([]float64, 4096)
	for i := range onePos {
		onePos[i] = src.Exp(1)
		oneNeg[i] = -src.Exp(1)
	}
	params := map[string]*Params{
		"pra-two-sided":   PRA(calib, 6, DefaultPRAOptions()),
		"pra-one-sided+":  PRA(onePos, 6, DefaultPRAOptions()),
		"pra-one-sided-":  PRA(oneNeg, 6, DefaultPRAOptions()),
		"uniform-special": ParamsForUniform(0.125, 6),
	}
	edges := []float64{
		0, math.Copysign(0, -1), 1e-300, -1e-300, 1e300, -1e300,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, -math.MaxFloat64, math.NaN(),
	}
	for name, p := range params {
		xs := append([]float64(nil), edges...)
		for i := 0; i < 2000; i++ {
			switch {
			case src.Float64() < 0.1:
				xs = append(xs, 0)
			case src.Float64() < 0.05:
				xs = append(xs, src.Gauss(0, 1e6)) // deep in the clip region
			default:
				xs = append(xs, src.Laplace(1))
			}
		}
		out := make([]float64, len(xs))
		p.QuantizeSlice(out, xs)
		for i, x := range xs {
			want := p.Value(x)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("%s: QuantizeSlice(%v) = %v (bits %016x), want %v (bits %016x)",
					name, x, out[i], math.Float64bits(out[i]), want, math.Float64bits(want))
			}
		}
		// In-place aliasing must produce the same results.
		alias := append([]float64(nil), xs...)
		p.QuantizeSlice(alias, alias)
		for i := range alias {
			if math.Float64bits(alias[i]) != math.Float64bits(out[i]) {
				t.Fatalf("%s: aliased QuantizeSlice diverged at %d", name, i)
			}
		}
	}
}

func TestQuantizeSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParamsForUniform(1, 4).QuantizeSlice(make([]float64, 2), make([]float64, 3))
}
