package ptq

import (
	"quq/internal/quant"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// QUQMethod is the paper's proposed scheme plugged into the PTQ pipeline:
// PRA per tensor, the uniform-special-case comparison, then grid-search
// refinement (the paper's layer-wise Hessian-guided search, realized as
// tensor-output-MSE search — see DESIGN.md).
type QUQMethod struct {
	PRA    quant.PRAOptions
	Refine quant.RefineOptions

	// record, when set via RecordWeightParams, receives the parameter set
	// used for each weight tensor as it is quantized.
	record func(site vit.Site, p *quant.Params)
}

// RecordWeightParams implements WeightParamsRecorder.
func (m *QUQMethod) RecordWeightParams(fn func(site vit.Site, p *quant.Params)) {
	m.record = fn
}

// NewQUQ returns the method with the paper's hyperparameters
// (λ_A=4, q=0.99, q_A=0.95).
func NewQUQ() *QUQMethod {
	return &QUQMethod{PRA: quant.DefaultPRAOptions(), Refine: quant.DefaultRefineOptions()}
}

// Name implements Method.
func (m *QUQMethod) Name() string { return "QUQ" }

// QUQTensorQuantizer wraps a calibrated quant.Params. It is exported so
// the accelerator simulator can retrieve the exact parameter set (and
// hence the QUB registers) behind a quantized model's sites.
type QUQTensorQuantizer struct {
	Params *quant.Params
}

// Apply implements TensorQuantizer. It quantizes x into a fresh tensor
// (x is left untouched — callers may still hold it, e.g. as a residual)
// rather than cloning first, saving a copy pass per site.
func (q QUQTensorQuantizer) Apply(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	q.Params.QuantizeSlice(out.Data(), x.Data())
	return out
}

// CalibrateActivation implements Method.
func (m *QUQMethod) CalibrateActivation(stats *SiteStats, bits int) TensorQuantizer {
	p := quant.CalibrateRefined(stats.Samples, bits, m.PRA, m.Refine)
	return QUQTensorQuantizer{Params: p}
}

// QuantizeWeight implements Method: per-tensor QUQ on the weight matrix.
func (m *QUQMethod) QuantizeWeight(site vit.Site, w *tensor.Tensor, bits int) {
	p := quant.CalibrateRefined(w.Data(), bits, m.PRA, m.Refine)
	p.QuantizeSlice(w.Data(), w.Data())
	if m.record != nil {
		m.record(site, p)
	}
}

// QuantizeWeightAware implements InputAwareWeightQuantizer: the grid
// search is re-scored with a diagonal-Hessian proxy — the squared weight
// error of input row d is weighted by E[x_d²] of the layer's calibration
// inputs, so the search minimizes the expected GEMM *output* error
// rather than the raw weight error. This realizes the paper's layer-wise
// Hessian-guided optimization.
func (m *QUQMethod) QuantizeWeightAware(site vit.Site, w *tensor.Tensor, bits int, inputSq []float64) {
	if w.Rank() != 2 || len(inputSq) != w.Dim(0) {
		// No usable input statistics: fall back to the plain search.
		m.QuantizeWeight(site, w, bits)
		return
	}
	in, out := w.Dim(0), w.Dim(1)
	d := w.Data()
	score := func(p *quant.Params) float64 {
		var s float64
		for r := 0; r < in; r++ {
			wgt := inputSq[r]
			if wgt <= 0 {
				continue
			}
			row := d[r*out : (r+1)*out]
			var rowErr float64
			for _, v := range row {
				e := v - p.Value(v)
				rowErr += e * e
			}
			s += wgt * rowErr
		}
		return s
	}
	p := quant.RefineScored(quant.Calibrate(d, bits, m.PRA), m.Refine, score)
	p.QuantizeSlice(d, d)
	if m.record != nil {
		m.record(site, p)
	}
}
