package vit

import (
	"math"

	"quq/internal/check"
	"quq/internal/rng"
)

// New builds a model for cfg with structured synthetic weights drawn from
// seed. The initialization mimics the statistics of trained ViTs that the
// QUQ paper's Figure 3 characterizes:
//
//   - Xavier-scaled Gaussian weights with a sparse heavy-tail component
//     (a small fraction of weights at 4× scale), matching the query-
//     weight family;
//   - a few designated "outlier channels" on every layer that writes to
//     the residual stream (attention projection and MLP fc2), whose
//     columns are amplified so the residual stream develops the wide
//     pre-addition range that breaks uniform full quantization;
//   - LayerNorm gains spread around one, biases near zero.
//
// New panics on an invalid configuration — model construction is
// program initialization, not data handling.
func New(cfg Config, seed uint64) Model {
	if err := cfg.Validate(); err != nil {
		panic(check.Invariantf("vit: New on invalid config: %v", err))
	}
	src := rng.New(seed)
	switch cfg.Variant {
	case VariantSwin:
		m := newSwin(cfg)
		initSwin(m, src)
		return m
	default:
		m := newViT(cfg)
		initViT(m, src)
		return m
	}
}

func initViT(m *ViT, src *rng.Source) {
	initLinear(m.Patch, src, nil)
	// Class/distillation tokens sit at the patch-embedding scale: their
	// content is the classification feature, so (as in trained ViTs) it
	// must live in the bulk of every activation distribution, not in the
	// outlier tail.
	initVector(m.Cls, src, 1.0)
	if m.Dist != nil {
		initVector(m.Dist, src, 1.0)
	}
	if m.Reg != nil {
		initRegisters(m.Reg.Data(), m.cfg.RegisterScale, src)
	}
	initVector(m.Pos.Data(), src, 0.3)
	outliers := pickOutliers(m.cfg.Dim, src)
	for _, b := range m.Blocks {
		initBlock(b, src, outliers)
	}
	initLayerNorm(m.Final, src)
	initLinear(m.Head, src, nil)
}

func initSwin(m *Swin, src *rng.Source) {
	initLinear(m.Patch, src, nil)
	initVector(m.Pos.Data(), src, 0.3)
	for s, stage := range m.Stages {
		// Outlier channels persist within a stage; patch merging remixes
		// them into the next stage's width.
		outliers := pickOutliers(m.cfg.StageDims[s], src)
		for _, b := range stage.Blocks {
			initBlock(b, src, outliers)
		}
		if stage.Merge != nil {
			initLayerNorm(stage.MergeLN, src)
			initLinear(stage.Merge, src, nil)
		}
	}
	initLayerNorm(m.Final, src)
	initLinear(m.Head, src, nil)
}

// initBlock initializes one block. outliers names the model's persistent
// residual-stream outlier channels: every layer writing to the residual
// stream (attention projection and MLP fc2) amplifies the same columns,
// so their magnitudes accumulate block over block — the mechanism behind
// the wide pre-addition ranges of the paper's Figure 3(c).
//
// The layers writing to the residual stream are additionally scaled down
// (branchScale): trained transformers make small incremental updates to
// the stream, which is what keeps them Lipschitz-stable under activation
// noise. Without this, a random-weight network is chaotic — every block
// remixes the whole stream — and *any* quantizer's noise flips
// predictions, drowning the differences the accuracy tables measure.
func initBlock(b *Block, src *rng.Source, outliers map[int]float64) {
	initLayerNorm(b.LN1, src)
	initLinear(b.QKV, src, nil)
	sharpenAttention(b.QKV, src)
	initLinear(b.Proj, src, outliers)
	scaleLinear(b.Proj, branchScale)
	initLayerNorm(b.LN2, src)
	initLinear(b.FC1, src, nil)
	widenMLPTails(b.FC1, src)
	initLinear(b.FC2, src, outliers)
	scaleLinear(b.FC2, branchScale)
}

// widenMLPTails gives ~3% of fc1 weights a 6× heavy-tail component so
// the MLP hidden pre-activations (and hence the post-GELU outputs) carry
// the long positive tails of Figure 3(d) — the tensors PTQ4ViT's twin
// scheme and QUQ's Mode C exist to handle.
func widenMLPTails(fc1 *Linear, src *rng.Source) {
	d := fc1.W.Data()
	for i := range d {
		if src.Float64() < 0.03 {
			d[i] *= 6
		}
	}
}

// branchScale damps the residual-branch writes (see initBlock).
const branchScale = 0.25

func scaleLinear(l *Linear, f float64) {
	l.W.Scale(f)
	for i := range l.B {
		l.B[i] *= f
	}
}

// sharpenAttention scales up the query and key projections so attention
// logits reach the ±8..15 range of trained ViTs and the post-softmax
// distribution develops its characteristic near-one peaks over a near-
// zero bulk (Figure 3(b)). Without this, random-weight attention is
// diffuse and the attention-map experiment (Figure 7) has nothing to
// preserve.
func sharpenAttention(qkv *Linear, src *rng.Source) {
	out := qkv.Out()
	dim := out / 3
	gain := 2.2 + 0.6*src.Float64()
	data := qkv.W.Data()
	for r := 0; r < qkv.In(); r++ {
		row := data[r*out : (r+1)*out]
		for c := 0; c < 2*dim; c++ { // q and k column groups
			row[c] *= gain
		}
	}
}

// pickOutliers selects a few channels to amplify moderately (2.5–4.5×).
// The amplification stays mild on purpose: real ViT *weights* quantize
// acceptably at 6 bits (the paper's partially-quantized Table 2 shows
// only ~10% drops for plain uniform quantization); the catastrophic
// ranges live in the activations, driven by the register token and the
// residual accumulation of these channels across blocks.
func pickOutliers(width int, src *rng.Source) map[int]float64 {
	n := 3
	if width < 64 {
		n = 2
	}
	chans := make(map[int]float64, n)
	for len(chans) < n {
		chans[src.Intn(width)] = 2.5 + 2*src.Float64()
	}
	return chans
}

// initLinear fills a layer with Xavier-scaled Gaussian weights, a 1.5%
// heavy-tail component at 4× scale, small biases, and per-column
// amplification for the designated outlier channels.
func initLinear(l *Linear, src *rng.Source, outliers map[int]float64) {
	in, out := l.In(), l.Out()
	sd := math.Sqrt(2 / float64(in+out))
	data := l.W.Data()
	for r := 0; r < in; r++ {
		row := data[r*out : (r+1)*out]
		for c := range row {
			s := sd
			if src.Float64() < 0.015 {
				s = 4 * sd
			}
			v := src.Gauss(0, s)
			if amp, ok := outliers[c]; ok {
				v *= amp
			}
			row[c] = v
		}
	}
	for c := range l.B {
		l.B[c] = src.Gauss(0, 0.01)
	}
}

func initLayerNorm(ln *LayerNorm, src *rng.Source) {
	for i := range ln.Gamma {
		ln.Gamma[i] = 1 + src.Gauss(0, 0.15)
	}
	for i := range ln.Beta {
		ln.Beta[i] = src.Gauss(0, 0.05)
	}
}

// initRegisters fills register tokens with the trained-ViT attention-sink
// profile: ~20% of channels carry large values (around ±scale), the rest
// stay at bulk scale. With one register among ~65 tokens this puts ~0.3%
// of each residual tensor's elements in the far tail — enough to set
// every range estimate, yet below the 1% quantile PRA uses for its fine
// subrange boundary.
func initRegisters(reg []float64, scale float64, src *rng.Source) {
	for i := range reg {
		if src.Float64() < 0.2 {
			v := scale * (0.7 + 0.6*src.Float64())
			if src.Float64() < 0.5 {
				v = -v
			}
			reg[i] = v
		} else {
			reg[i] = src.Gauss(0, 1)
		}
	}
}

func initVector(v []float64, src *rng.Source, sd float64) {
	for i := range v {
		v[i] = src.Gauss(0, sd)
	}
}
