package quant

import (
	"math"
	"testing"
	"testing/quick"

	"quq/internal/dist"
	"quq/internal/rng"
)

// sampleFamily draws calibration data for each Figure 3 family.
func sampleFamily(f dist.Family, n int, seed uint64) []float64 {
	return dist.Sample(f, n, rng.New(seed))
}

func TestPRAValidOnAllFamilies(t *testing.T) {
	for _, fam := range dist.Families {
		xs := sampleFamily(fam, 1<<14, 42)
		for _, b := range []int{4, 6, 8} {
			p := PRA(xs, b, DefaultPRAOptions())
			if err := p.Validate(); err != nil {
				t.Errorf("%v b=%d: %v", fam, b, err)
			}
			if p.Bits != b {
				t.Errorf("%v b=%d: params carry bits=%d", fam, b, p.Bits)
			}
		}
	}
}

func TestPRAModeSelectionMatchesPaper(t *testing.T) {
	// Figure 3's characterization: two-sided long-tailed data (query
	// weights, pre-addition) stays in Mode A; non-negative post-softmax
	// takes Mode B; post-GELU (bounded negatives, long positive tail)
	// takes Mode C.
	want := map[dist.Family]Mode{
		dist.QueryWeight: ModeA,
		dist.PostSoftmax: ModeB,
		dist.PreAddition: ModeA,
		dist.PostGELU:    ModeC,
	}
	for fam, wantMode := range want {
		xs := sampleFamily(fam, 1<<16, 42)
		p := PRA(xs, 6, DefaultPRAOptions())
		if p.Mode != wantMode {
			t.Errorf("%v: mode %v, want %v (%v)", fam, p.Mode, wantMode, p)
		}
	}
}

func TestPRANeverClipsCalibrationData(t *testing.T) {
	// PRA sets the coarse bounds from the calibration extremes, and
	// Relax only grows scale factors, so no calibration sample may land
	// beyond the representable range (its quantization error must stay
	// within half of its subrange's step).
	for _, fam := range dist.Families {
		xs := sampleFamily(fam, 1<<13, 9)
		for _, b := range []int{4, 6, 8} {
			p := PRA(xs, b, DefaultPRAOptions())
			for _, x := range xs {
				c := p.Quantize(x)
				step := p.Slots[c.Slot].Delta
				if err := math.Abs(x - p.Dequantize(c)); err > step/2+1e-9 {
					t.Fatalf("%v b=%d: x=%v clipped (err=%v, slot=%v step=%v)", fam, b, x, err, c.Slot, step)
				}
			}
		}
	}
}

func TestPRABeatsUniformMSE(t *testing.T) {
	// The core Table 1 claim: QUQ's MSE is below symmetric uniform
	// quantization's on every family at every bit-width.
	for _, fam := range dist.Families {
		xs := sampleFamily(fam, 1<<16, 42)
		absmax := 0.0
		for _, v := range xs {
			if a := math.Abs(v); a > absmax {
				absmax = a
			}
		}
		for _, b := range []int{4, 6, 8} {
			p := PRA(xs, b, DefaultPRAOptions())
			quqMSE := p.MSE(xs)
			baseMSE := UniformMSE(xs, UniformDelta(absmax, b), b)
			if quqMSE >= baseMSE {
				t.Errorf("%v b=%d: QUQ MSE %v not below uniform %v", fam, b, quqMSE, baseMSE)
			}
		}
	}
}

func TestPRAMSEDecreasesWithBits(t *testing.T) {
	for _, fam := range dist.Families {
		xs := sampleFamily(fam, 1<<14, 17)
		prev := math.Inf(1)
		for _, b := range []int{4, 6, 8} {
			m := PRA(xs, b, DefaultPRAOptions()).MSE(xs)
			if m >= prev {
				t.Errorf("%v: MSE did not decrease from %v to %v bits", fam, b-2, b)
			}
			prev = m
		}
	}
}

func TestPRAAllZeroTensor(t *testing.T) {
	p := PRA(make([]float64, 100), 8, DefaultPRAOptions())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := p.Value(0); v != 0 {
		t.Fatalf("zero tensor quantizer maps 0 to %v", v)
	}
}

func TestPRAOneSidedNegative(t *testing.T) {
	src := rng.New(10)
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = -src.Exp(0.5)
	}
	p := PRA(xs, 6, DefaultPRAOptions())
	if p.Mode != ModeB {
		t.Fatalf("non-positive tensor got mode %v", p.Mode)
	}
	if p.Slots[FPos].Enabled || p.Slots[CPos].Enabled {
		t.Fatal("non-positive tensor has enabled positive subranges")
	}
	// All mass on the negative side; error bounded by the coarse step.
	for _, x := range xs[:500] {
		c := p.Quantize(x)
		if !c.Slot.Negative() && c.Mag != 0 {
			t.Fatalf("negative value %v landed in %v", x, c.Slot)
		}
	}
}

func TestPRAOneSidedTailFreeFallback(t *testing.T) {
	// Near-uniform positive data has no coarse/fine structure; the Mode
	// B construction must fall back to single-slot uniform coverage.
	src := rng.New(11)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = src.Uniform(0.5, 1.0)
	}
	p := PRA(xs, 6, DefaultPRAOptions())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeB {
		t.Fatalf("mode %v", p.Mode)
	}
	// MSE must be no worse than ~uniform quantization with the same
	// number of codes on [0, max].
	maxX := 1.0
	uniform := maxX / float64(int64(1)<<5)
	if m := p.MSE(xs); m > uniform*uniform/12*4 {
		t.Fatalf("tail-free fallback MSE %v too high", m)
	}
}

func TestPRAModeDOnShortTailData(t *testing.T) {
	// Uniformly distributed two-sided data: the coarse/fine ratio is ~1
	// on both sides, so Algorithm 2 must fall back to Mode D (or the C
	// variants), never Mode A.
	src := rng.New(12)
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = src.Uniform(-2, 2)
	}
	p := PRA(xs, 6, DefaultPRAOptions())
	if p.Mode == ModeA {
		t.Fatalf("short-tailed data kept Mode A: %v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPRADisableModeSwitchAblation(t *testing.T) {
	src := rng.New(13)
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = src.Uniform(-2, 2)
	}
	opts := DefaultPRAOptions()
	opts.DisableModeSwitch = true
	p := PRA(xs, 6, opts)
	if p.Mode != ModeA {
		t.Fatalf("DisableModeSwitch still switched to %v", p.Mode)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPRAQuantileRecursionRespectsFloor(t *testing.T) {
	// Craft data with moderate tails so the recursion engages; ensure
	// termination and a valid result even when q walks down to q_A.
	src := rng.New(14)
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = src.Gauss(0, 1)
	}
	opts := DefaultPRAOptions()
	opts.QInit = 0.999
	opts.QAccept = 0.90
	p := PRA(xs, 6, opts)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPRAQuantizerIsMonotone(t *testing.T) {
	// Property: for any calibrated quantizer, x <= y implies
	// Value(x) <= Value(y). Monotonicity is what guarantees argmax
	// stability under mild quantization.
	for _, fam := range dist.Families {
		xs := sampleFamily(fam, 1<<13, 23)
		p := PRA(xs, 6, DefaultPRAOptions())
		src := rng.New(99)
		for i := 0; i < 5000; i++ {
			a := src.Gauss(0, 2)
			b := a + src.Exp(0.5)
			if p.Value(a) > p.Value(b)+1e-12 {
				t.Fatalf("%v: Value(%v)=%v > Value(%v)=%v", fam, a, p.Value(a), b, p.Value(b))
			}
		}
	}
}

func TestPRAPropertyRandomTensors(t *testing.T) {
	// Property-based sweep over random mixture tensors: PRA must always
	// return a valid quantizer, and its MSE may exceed uniform's by at
	// most 4×: Algorithm 1 only ever grows scale factors, and the log-
	// domain rounding inflates a Δ by at most 2× (hence MSE by at most
	// 4×) relative to the uniform fit of the same range. The tighter
	// never-worse-than-uniform guarantee belongs to Calibrate, below.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		xs, bits := randomMixtureTensor(src)
		p := PRA(xs, bits, DefaultPRAOptions())
		if p.Validate() != nil {
			return false
		}
		return p.MSE(xs) <= uniformBaselineMSE(xs, bits)*4+1e-18
	}
	seedSrc := rng.New(2718)
	if err := quick.Check(func() bool { return f(seedSrc.Uint64()) }, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomMixtureTensor draws a Laplace mixture with random scale, optional
// shift and sparse 10× outliers — a stress generator covering symmetric,
// asymmetric, short- and long-tailed data.
func randomMixtureTensor(src *rng.Source) ([]float64, int) {
	n := 512 + src.Intn(2048)
	xs := make([]float64, n)
	scale := math.Exp(src.Uniform(-6, 6))
	outlierP := src.Float64() * 0.05
	shift := 0.0
	if src.Float64() < 0.3 {
		shift = src.Uniform(-2, 2) * scale
	}
	for i := range xs {
		v := src.Laplace(scale)
		if src.Float64() < outlierP {
			v *= 10
		}
		xs[i] = v + shift
	}
	return xs, []int{4, 6, 8}[src.Intn(3)]
}

func uniformBaselineMSE(xs []float64, bits int) float64 {
	absmax := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	return UniformMSE(xs, UniformDelta(absmax, bits), bits)
}

func TestCalibrateNeverWorseThanUniform(t *testing.T) {
	// Calibrate explicitly scores the uniform special case, so — unlike
	// raw PRA — it can never lose to uniform quantization on the
	// calibration data. This is the paper's compatibility claim made
	// operational.
	seedSrc := rng.New(314159)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		xs, bits := randomMixtureTensor(src)
		p := Calibrate(xs, bits, DefaultPRAOptions())
		if p.Validate() != nil {
			return false
		}
		return p.MSE(xs) <= uniformBaselineMSE(xs, bits)+1e-18
	}
	if err := quick.Check(func() bool { return f(seedSrc.Uint64()) }, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineNeverHurts(t *testing.T) {
	// Refine scores the identity candidate, so the refined quantizer's
	// MSE on the scored subsample can only improve.
	seedSrc := rng.New(161803)
	for trial := 0; trial < 40; trial++ {
		src := rng.New(seedSrc.Uint64())
		xs, bits := randomMixtureTensor(src)
		p := PRA(xs, bits, DefaultPRAOptions())
		opts := DefaultRefineOptions()
		opts.MaxSamples = 0 // score the full tensor so the bound is exact
		r := Refine(xs, p, opts)
		if r.Validate() != nil {
			t.Fatal("Refine produced invalid params")
		}
		if r.MSE(xs) > p.MSE(xs)+1e-18 {
			t.Fatalf("Refine increased MSE: %v -> %v", p.MSE(xs), r.MSE(xs))
		}
	}
}

func TestRefineImprovesModeD(t *testing.T) {
	// A concrete case where relaxation inflates Mode D beyond uniform:
	// CalibrateRefined must end at or below the plain-uniform MSE.
	src := rng.New(8410054490953920788)
	xs, _ := randomMixtureTensor(src)
	bits := 6
	base := uniformBaselineMSE(xs, bits)
	refined := CalibrateRefined(xs, bits, DefaultPRAOptions(), DefaultRefineOptions())
	if m := refined.MSE(xs); m > base {
		t.Fatalf("CalibrateRefined MSE %v still above uniform %v", m, base)
	}
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	xs := sampleFamily(dist.PreAddition, 1<<12, 77)
	p := PRA(xs, 6, DefaultPRAOptions())
	before := p.String()
	Refine(xs, p, DefaultRefineOptions())
	if p.String() != before {
		t.Fatal("Refine mutated its input params")
	}
}

func TestPRADeterministic(t *testing.T) {
	xs := sampleFamily(dist.PreAddition, 1<<12, 5)
	a := PRA(xs, 6, DefaultPRAOptions())
	b := PRA(xs, 6, DefaultPRAOptions())
	if a.String() != b.String() {
		t.Fatalf("PRA not deterministic: %v vs %v", a, b)
	}
}
