package ptq

import (
	"math"
	"testing"

	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// requant16 snaps a logit onto the 2^-16 grid, normalizing signed zero
// so +0/−0 cannot produce a spurious bit mismatch. The integer path
// computes the exact integer sum then scales once, while the float path
// rounds per accumulation step, so raw logits differ at the ~1 ulp
// level; on this grid both backends must agree exactly.
func requant16(v float64) float64 {
	q := math.RoundToEven(math.Ldexp(v, 16))
	if q == 0 {
		return 0
	}
	return math.Ldexp(q, -16)
}

func intPathModel(t *testing.T, regime Regime) (*QuantizedModel, []*tensor.Tensor) {
	t.Helper()
	m, calib, eval := nano(t)
	qm, err := Quantize(m, NewQUQ(), CalibOptions{Bits: 6, Regime: regime, Images: calib})
	if err != nil {
		t.Fatal(err)
	}
	return qm, eval
}

// TestIntPathMatchesFloatOnRequantizedGrid is the end-to-end equivalence
// gate: with the integer weight path installed, every logit must land on
// the same 2^-16 grid point as the float path, and the classification
// must be identical.
func TestIntPathMatchesFloatOnRequantizedGrid(t *testing.T) {
	for _, regime := range []Regime{Partial, Full} {
		qm, eval := intPathModel(t, regime)
		var floatLogits []*tensor.Tensor
		for _, img := range eval {
			floatLogits = append(floatLogits, qm.Forward(img))
		}
		if qm.IntPath() {
			t.Fatal("int path on before SetIntPath")
		}
		if err := qm.SetIntPath(true); err != nil {
			t.Fatalf("regime %v: %v", regime, err)
		}
		if !qm.IntPath() {
			t.Fatal("IntPath() false after enabling")
		}
		for i, img := range eval {
			got := qm.Forward(img)
			want := floatLogits[i]
			if got.ArgMax() != want.ArgMax() {
				t.Fatalf("regime %v image %d: int argmax %d, float %d", regime, i, got.ArgMax(), want.ArgMax())
			}
			for c, v := range got.Data() {
				g, w := requant16(v), requant16(want.Data()[c])
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("regime %v image %d class %d: int %v, float %v differ on the 2^-16 grid", regime, i, c, v, want.Data()[c])
				}
			}
		}
		if err := qm.SetIntPath(false); err != nil || qm.IntPath() {
			t.Fatal("disable failed")
		}
	}
}

// TestIntPathZeroWeightRehydration is the zero-rehydration gate: with the
// int path on, the forward pass must never read the float64 weight
// tensors. Poisoning every weight with NaN after the engine is built
// must leave the integer logits bit-identical; turning the engine off
// must then surface the poison.
func TestIntPathZeroWeightRehydration(t *testing.T) {
	qm, eval := intPathModel(t, Partial)
	if err := qm.SetIntPath(true); err != nil {
		t.Fatal(err)
	}
	before := qm.Forward(eval[0]).Clone()
	qm.Model.ForEachWeight(func(_ vit.Site, l *vit.Linear) {
		d := l.W.Data()
		for i := range d {
			d[i] = math.NaN()
		}
	})
	after := qm.Forward(eval[0])
	for c, v := range after.Data() {
		if math.Float64bits(v) != math.Float64bits(before.Data()[c]) {
			t.Fatalf("class %d: logit changed after weight poisoning (%v -> %v): int path read float64 weights", c, before.Data()[c], v)
		}
	}
	// Sanity: the poison is real — the float path must now produce NaN.
	if err := qm.SetIntPath(false); err != nil {
		t.Fatal(err)
	}
	sawNaN := false
	for _, v := range qm.Forward(eval[0]).Data() {
		if math.IsNaN(v) {
			sawNaN = true
			break
		}
	}
	if !sawNaN {
		t.Fatal("poisoned weights did not affect the float path — poison ineffective, test proves nothing")
	}
}

// TestIntEngineRejectsMissingParams: enabling the int path without
// recorded weight params must fail all-or-nothing.
func TestIntEngineRejectsMissingParams(t *testing.T) {
	qm, _ := intPathModel(t, Partial)
	qm.WeightParams = nil
	if err := qm.SetIntPath(true); err == nil {
		t.Fatal("int path enabled without recorded weight params")
	}
	if qm.IntPath() {
		t.Fatal("engine installed despite failed build")
	}
	qm2, _ := intPathModel(t, Partial)
	for k := range qm2.WeightParams {
		delete(qm2.WeightParams, k)
		break
	}
	if err := qm2.SetIntPath(true); err == nil {
		t.Fatal("int path enabled with one weight site missing params")
	}
}

// TestIntEngineFallsBackOffGrid: an input tensor that is not on the
// activation quantizer's grid (e.g. a tap replaced it) must make the
// engine decline the call rather than compute a wrong result.
func TestIntEngineFallsBackOffGrid(t *testing.T) {
	qm, _ := intPathModel(t, Partial)
	e, err := NewIntEngine(qm)
	if err != nil {
		t.Fatal(err)
	}
	var site vit.Site
	var lin *vit.Linear
	qm.Model.ForEachWeight(func(s vit.Site, l *vit.Linear) {
		if s.Name == "attn.qkv.w" && lin == nil {
			site, lin = s, l
		}
	})
	src := rng.New(7)
	x := tensor.New(3, lin.In())
	for i := range x.Data() {
		x.Data()[i] = src.Gauss(0, 1)
	}
	dst := tensor.New(3, lin.Out())
	if e.Linear(site, lin, dst, x) {
		t.Fatal("engine accepted an off-grid input")
	}
	if e.Linear(vit.Site{Block: 99, Name: "nonsense.w"}, lin, dst, x) {
		t.Fatal("engine accepted an unknown site")
	}
}
