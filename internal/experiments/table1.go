package experiments

import (
	"fmt"
	"math"
	"strings"

	"quq/internal/dist"
	"quq/internal/quant"
	"quq/internal/rng"
)

// Table1Row is one row of the paper's Table 1: the mean squared
// quantization error of a method at one bit-width over the four Figure 3
// data families.
type Table1Row struct {
	Method string
	Bits   int
	// MSE holds one entry per dist.Families member, in order.
	MSE [4]float64
}

// Table1 regenerates the MSE comparison. n is the sample count per
// family (the paper uses full calibration tensors; 1<<18 reproduces the
// reported magnitudes).
func Table1(n int, seed uint64) []Table1Row {
	if n <= 0 {
		n = 1 << 18
	}
	var rows []Table1Row
	for _, bits := range []int{4, 6, 8} {
		base := Table1Row{Method: "BaseQ", Bits: bits}
		quqRow := Table1Row{Method: "QUQ", Bits: bits}
		for fi, fam := range dist.Families {
			xs := dist.Sample(fam, n, rng.New(seed))
			absmax := 0.0
			for _, v := range xs {
				if a := math.Abs(v); a > absmax {
					absmax = a
				}
			}
			base.MSE[fi] = quant.UniformMSE(xs, quant.UniformDelta(absmax, bits), bits)
			// Calibrate = PRA plus the uniform-special-case comparison,
			// realizing the paper's "not inferior to uniform" guarantee.
			p := quant.Calibrate(xs, bits, quant.DefaultPRAOptions())
			quqRow.MSE[fi] = p.MSE(xs)
		}
		rows = append(rows, base, quqRow)
	}
	return rows
}

// FormatTable1 renders the rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-4s", "Method", "Bit")
	for _, fam := range dist.Families {
		fmt.Fprintf(&b, " %-15s", fam)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %-4d", r.Method, r.Bits)
		for _, m := range r.MSE {
			fmt.Fprintf(&b, " %-15.2e", m)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
