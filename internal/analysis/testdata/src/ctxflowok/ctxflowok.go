// Package ctxflowok is the conforming corpus for the ctxflow analyzer:
// every blocking call sits in a function that accepts a context and
// threads it, so the analyzer must report nothing here.
package ctxflowok

import (
	"context"
	"net/http"
)

func get(ctx context.Context, c *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// pure functions that never block need no context at all.
func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
