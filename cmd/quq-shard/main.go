// Command quq-shard runs the consistent-hash sharding front-end: it
// hashes each registry key (model, method, bits, regime) onto a ring of
// quq-serve backends with bounded-load virtual nodes, proxies inference
// to the owning shard, health-checks the fleet, and aggregates every
// shard's /metrics into one deterministic cluster exposition.
//
// Usage:
//
//	quq-shard -backends host1:8642,host2:8642[,...] [-addr :8641] [flags]
//	quq-shard -smoke    # spawn 3 in-process quq-serve shards, self-test
//	quq-shard -chaos    # replay seeded fault scripts, verify invariants
//
// Endpoints:
//
//	POST /v1/classify   proxied to the shard owning the request's key
//	POST /v1/quantize   proxied to the key's R replica owners (-replicas)
//	GET  /models        fleet-merged registry view
//	GET  /shards        ring topology, per-backend health and load
//	GET  /cluster       membership view (epoch, replication, ring params)
//	POST /admin/join    admit a backend without a restart
//	POST /admin/drain   re-home a backend's calibrated keys, then remove it
//	POST /admin/leave   remove a backend abruptly (replication covers it)
//	GET  /healthz       front-end liveness (503 when no shard is healthy)
//	GET  /metrics       merged cluster exposition (front-end + shards)
//
// With -replicas R > 1 each key is placed on R ring successors:
// quantizes fan out to all of them (a calibration survives any R-1
// departures) and reads try the replica set in slot order before
// falling past it. Retries with backoff apply only to connection
// failures; HTTP responses — 429 backpressure above all — are relayed
// as-is.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"quq/internal/chaos/fleet"
	"quq/internal/data"
	"quq/internal/serve"
	"quq/internal/serve/metrics"
	"quq/internal/shard"
	"quq/internal/vit"
)

func main() {
	var (
		addr          = flag.String("addr", ":8641", "listen address")
		backends      = flag.String("backends", "", "comma-separated quq-serve backend addresses")
		vnodes        = flag.Int("vnodes", 128, "virtual nodes per backend")
		replicas      = flag.Int("replicas", 1, "replication factor R: each key is owned by R ring successors; quantizes fan out to all of them")
		handoffMax    = flag.Int("handoff-max", 64, "maximum keys re-homed by one /admin/drain")
		loadFactor    = flag.Float64("load-factor", 1.25, "bounded-load factor c (<= 0 disables load bounding)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "health-probe period (<= 0 disables the probe loop)")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "per-probe timeout")
		failAfter     = flag.Int("fail-after", 2, "consecutive probe failures before ejection")
		okAfter       = flag.Int("ok-after", 2, "consecutive healthy probes before an ejected backend is readmitted")
		retries       = flag.Int("retries", 2, "connection-failure retries per backend (never retries HTTP responses)")
		backoff       = flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt, equal-jitter)")
		seed          = flag.Uint64("seed", 1, "deterministic seed for retry-backoff jitter")
		antiEntropy   = flag.Duration("anti-entropy-interval", 0, "period of the background anti-entropy sweep comparing snapshot digests across each key's R replica owners and repairing divergent or missing copies (0 disables; needs -replicas >= 2 and backends running with -snapshot-dir)")
		timeout       = flag.Duration("timeout", 120*time.Second, "per-request timeout, including first-request calibration")
		maxBody       = flag.Int64("max-body", 8<<20, "request body size limit in bytes")
		smoke         = flag.Bool("smoke", false, "spawn 3 in-process quq-serve shards and run the multi-key self-test")
		intPath       = flag.Bool("int-path", false, "enable the integer weight path on the -smoke backends (QUQ-method models run weight GEMMs on resident integer operands)")
		chaosMode     = flag.Bool("chaos", false, "replay the seeded fault-injection scripts against an in-process fleet and verify the failure-domain invariants")
		chaosSeed     = flag.Uint64("chaos-seed", 7, "fault-schedule seed for -chaos")

		latencyBudget  = flag.Duration("latency-budget", 0, "default per-request latency budget on the -smoke backends; estimated queue waits beyond it shed with 429 (0 disables)")
		governorWindow = flag.Duration("governor-window", 0, "occupancy window for the -smoke backends' adaptive scheduler (0 disables adaptation)")
		minIntraOp     = flag.Int("min-intraop", 1, "per-batch intra-op worker floor on the -smoke backends")
		maxIntraOp     = flag.Int("max-intraop", runtime.GOMAXPROCS(0), "per-batch intra-op worker ceiling on the -smoke backends")
	)
	flag.Parse()
	log.SetFlags(0)

	opts := shard.Options{
		VNodes:         *vnodes,
		Replicas:       *replicas,
		HandoffMaxKeys: *handoffMax,
		MaxLoadFactor:  *loadFactor,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailAfter:      *failAfter,
		OkAfter:        *okAfter,
		Retries:        *retries,
		RetryBackoff:   *backoff,
		Seed:           *seed,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,

		AntiEntropyInterval: *antiEntropy,
	}

	backendCfg := serve.Config{
		Registry: serve.RegistryOptions{Seed: 2024, CalibImages: 2, IntPath: *intPath},
		Batcher:  serve.BatcherOptions{LatencyBudget: *latencyBudget},
		Governor: serve.GovernorOptions{
			Window:     *governorWindow,
			MinIntraOp: *minIntraOp,
			MaxIntraOp: *maxIntraOp,
		},
	}

	if *smoke {
		if err := runSmoke(context.Background(), opts, backendCfg); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		log.Printf("smoke: ok")
		return
	}

	if *chaosMode {
		if err := runChaos(context.Background(), *chaosSeed); err != nil {
			log.Fatalf("chaos: %v", err)
		}
		log.Printf("chaos: ok")
		return
	}

	if *backends == "" {
		log.Fatal("quq-shard: -backends is required (or use -smoke)")
	}
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			opts.Backends = append(opts.Backends, b)
		}
	}
	if err := run(opts, *addr); err != nil {
		log.Fatal(err)
	}
}

// run serves until SIGINT/SIGTERM, then shuts down gracefully.
func run(opts shard.Options, addr string) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	f := shard.New(opts)
	defer f.Close()
	httpSrv := &http.Server{Addr: addr, Handler: f.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("quq-shard listening on %s, %d backends", addr, len(opts.Backends))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received; shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("bye")
	return nil
}

// runChaos replays the seeded fault scripts against a fresh in-process
// fleet twice. Both runs must pass every failure-domain invariant AND
// render byte-identical reports — the second condition is what pins the
// harness (and everything under it: seeded backoff jitter, seeded fault
// draws, count-only reporting) to full determinism.
func runChaos(ctx context.Context, seed uint64) error {
	var first string
	for run := 0; run < 2; run++ {
		rep, err := fleet.Run(ctx, seed, fleet.Options{})
		if err != nil {
			return fmt.Errorf("run %d: %w", run+1, err)
		}
		var buf strings.Builder
		if err := rep.WriteText(&buf); err != nil {
			return err
		}
		if run == 0 {
			first = buf.String()
			for _, line := range strings.Split(strings.TrimRight(first, "\n"), "\n") {
				log.Printf("chaos: %s", line)
			}
		} else if buf.String() != first {
			return fmt.Errorf("replay diverged from first run:\n--- run 1\n%s--- run 2\n%s", first, buf.String())
		}
		if rep.Failed() {
			return fmt.Errorf("run %d: invariant violation (see report above)", run+1)
		}
	}
	log.Printf("chaos: replay byte-identical across 2 runs, all invariants hold")
	return nil
}

// smokeShard is one in-process quq-serve backend.
type smokeShard struct {
	srv     *serve.Server
	httpSrv *http.Server
	addr    string
}

// startShard boots one quq-serve instance on an ephemeral loopback
// port; its Serve goroutine joins serving so the smoke exits clean.
func startShard(cfg serve.Config, serving *sync.WaitGroup) (*smokeShard, error) {
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serving.Add(1)
	go func() {
		// Serve exits with ErrServerClosed on Shutdown/Close; the smoke
		// verdict comes from the round trips, not this goroutine.
		defer serving.Done()
		_ = httpSrv.Serve(ln)
	}()
	return &smokeShard{srv: s, httpSrv: httpSrv, addr: ln.Addr().String()}, nil
}

// runSmoke is the acceptance demonstration: three shards, four registry
// keys each calibrated on exactly one shard (proven by the aggregated
// metrics), canonicalized spellings hitting the warm cache, then a
// backend kill with failover and ejection. cfg configures the spawned
// backends, carrying the scheduler flags (-latency-budget,
// -governor-window, -min/max-intraop) onto them.
func runSmoke(ctx context.Context, opts shard.Options, cfg serve.Config) error {
	var serving sync.WaitGroup
	defer serving.Wait()
	const nShards = 3
	shards := make([]*smokeShard, nShards)
	for i := range shards {
		s, err := startShard(cfg, &serving)
		if err != nil {
			return fmt.Errorf("starting shard %d: %w", i, err)
		}
		shards[i] = s
		opts.Backends = append(opts.Backends, s.addr)
	}
	defer func() {
		for _, s := range shards {
			_ = s.httpSrv.Close()
		}
	}()

	// Probing is manual in the smoke so health transitions are
	// deterministic; a single transport attempt keeps failover instant.
	opts.ProbeInterval = -1
	opts.Retries = -1
	f := shard.New(opts)
	defer f.Close()
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	front := &http.Server{Handler: f.Handler()}
	serving.Add(1)
	go func() {
		defer serving.Done()
		_ = front.Serve(fln)
	}()
	defer front.Close()
	base := "http://" + fln.Addr().String()
	log.Printf("smoke: front-end %s over %d shards", base, nShards)

	// Four distinct registry keys on the cheap ViT-Nano config. The
	// third deliberately uses sloppy spelling: canonicalization must map
	// it to the same shard (and later the same cache entry) as "BaseQ".
	img := data.Images(vit.ViTNano, 1, 4242)[0].Data()
	selections := []map[string]any{
		{"model": "ViT-Nano", "method": "QUQ", "bits": 6},
		{"model": "ViT-Nano", "method": "BaseQ", "bits": 6},
		{"model": "vit-nano", "method": "baseq", "bits": 4},
		{"model": "ViT-Nano", "method": "FQ-ViT", "bits": 6},
	}
	served := map[string]string{} // key -> shard addr
	for _, sel := range selections {
		sel["images"] = [][]float64{img}
		key, addr, err := classifyVia(base, sel)
		if err != nil {
			return err
		}
		served[key] = addr
		log.Printf("smoke: %-28s -> shard %s", key, addr)
	}
	if len(served) != len(selections) {
		return fmt.Errorf("expected %d distinct keys, saw %d", len(selections), len(served))
	}

	// Replay the first key with a different spelling: same shard, and —
	// proven below via cache-miss counters — no recalibration.
	warm := map[string]any{"model": "VIT-NANO", "method": "quq", "bits": 6, "regime": "Partial",
		"images": [][]float64{img}}
	key, addr, err := classifyVia(base, warm)
	if err != nil {
		return err
	}
	if served[key] == "" || served[key] != addr {
		return fmt.Errorf("respelled key %s routed to %s, originally %s", key, addr, served[key])
	}

	// Aggregated metrics: exactly one calibration per distinct key
	// fleet-wide, and at least one cache hit from the respelled replay.
	page, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	if misses, ok := page.Scalar("quq_serve_model_cache_misses_total"); !ok || misses != float64(len(selections)) {
		return fmt.Errorf("aggregated cache misses = %v (ok=%v), want %d: a key calibrated on more than one shard",
			misses, ok, len(selections))
	}
	if hits, ok := page.Scalar("quq_serve_model_cache_hits_total"); !ok || hits < 1 {
		return fmt.Errorf("aggregated cache hits = %v (ok=%v), want >= 1", hits, ok)
	}
	log.Printf("smoke: aggregated metrics confirm %d keys, each calibrated exactly once", len(selections))

	// Kill the shard owning the first key: the survivors must serve it.
	victimKey, victimAddr := "", ""
	for k, a := range served {
		victimKey, victimAddr = k, a
		break
	}
	for k, a := range served {
		if k < victimKey { // deterministic choice: lowest key
			victimKey, victimAddr = k, a
		}
	}
	var victimSel map[string]any
	for _, sel := range selections {
		k, err := keyOf(sel)
		if err != nil {
			return fmt.Errorf("canonicalizing smoke selection: %w", err)
		}
		if k == victimKey {
			victimSel = sel
		}
	}
	for _, s := range shards {
		if "http://"+s.addr == victimAddr {
			_ = s.httpSrv.Close()
		}
	}
	log.Printf("smoke: killed shard %s (owned %s)", victimAddr, victimKey)

	_, failoverAddr, err := classifyVia(base, victimSel)
	if err != nil {
		return fmt.Errorf("failover classify: %w", err)
	}
	if failoverAddr == victimAddr {
		return fmt.Errorf("key %s still served by the killed shard", victimKey)
	}
	if got := f.Metrics().Ejections.Value(); got != 1 {
		return fmt.Errorf("ejections = %d, want 1", got)
	}
	log.Printf("smoke: %s failed over to %s", victimKey, failoverAddr)

	// A probe round confirms the fleet view: two healthy survivors.
	f.ProbeNow(ctx)
	var hz struct {
		Healthy  int `json:"healthy"`
		Backends int `json:"backends"`
	}
	if err := getJSON(base+"/healthz", &hz); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if hz.Healthy != nShards-1 || hz.Backends != nShards {
		return fmt.Errorf("healthz = %+v, want %d/%d healthy", hz, nShards-1, nShards)
	}
	log.Printf("smoke: healthz reports %d/%d shards healthy after ejection", hz.Healthy, hz.Backends)
	return nil
}

// keyOf canonicalizes one smoke selection the same way the front-end
// does.
func keyOf(sel map[string]any) (string, error) {
	bits, _ := sel["bits"].(int)
	model, _ := sel["model"].(string)
	method, _ := sel["method"].(string)
	regime, _ := sel["regime"].(string)
	key, err := serve.KeyFromWire(model, method, bits, regime)
	if err != nil {
		return "", err
	}
	return key.String(), nil
}

// classifyVia posts one classify request through the front-end,
// returning the served key and the shard that handled it.
func classifyVia(base string, sel map[string]any) (key, addr string, err error) {
	buf, err := json.Marshal(sel)
	if err != nil {
		return "", "", err
	}
	resp, err := http.Post(base+"/v1/classify", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		return "", "", err
	}
	var out struct {
		Key     string `json:"key"`
		Results []struct {
			ArgMax int `json:"argmax"`
		} `json:"results"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&out)
	if cerr := resp.Body.Close(); cerr != nil && derr == nil {
		derr = cerr
	}
	if derr != nil {
		return "", "", derr
	}
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("classify: status %d", resp.StatusCode)
	}
	if len(out.Results) != 1 {
		return "", "", fmt.Errorf("classify: %d results, want 1", len(out.Results))
	}
	return out.Key, resp.Header.Get(shard.BackendHeader), nil
}

// scrapeMetrics fetches and parses the front-end's aggregated
// exposition.
func scrapeMetrics(base string) (*metrics.Exposition, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	page, perr := metrics.ParseText(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && perr == nil {
		perr = cerr
	}
	if perr != nil {
		return nil, perr
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	return page, nil
}

// getJSON fetches and decodes one JSON page, tolerating non-200
// statuses (healthz deliberately returns 503 with a body).
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	derr := json.NewDecoder(resp.Body).Decode(out)
	if cerr := resp.Body.Close(); cerr != nil && derr == nil {
		derr = cerr
	}
	return derr
}
