package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicAudit flags bare `panic(...)` in library packages. A production
// service built on these packages must be able to distinguish "caller
// broke a documented precondition" from "internal invariant broke" and
// recover coherently; ad-hoc string panics allow neither. A panic is
// sanctioned when:
//
//   - its argument is a check.Invariant / check.Invariantf value (the
//     typed invariant payload this repo standardizes on), or
//   - it sits inside a must*/Must* helper (the conventional
//     panic-on-error wrappers), or
//   - a //quq:panic-ok directive covers it with a reason.
//
// Everything else should be converted to an error return.
var PanicAudit = &Analyzer{
	Name:      "panicaudit",
	Doc:       "library panics must be typed invariants (check.Invariant*) or must* helpers; else return errors",
	Directive: "panic-ok",
	Run:       runPanicAudit,
}

// checkPkgPath is the package providing the sanctioned invariant
// constructors.
const checkPkgPath = "quq/internal/check"

func runPanicAudit(pass *Pass) {
	if pass.Pkg.Name() == "main" || pass.PkgPath == checkPkgPath {
		return
	}
	for _, f := range pass.Files {
		walkFuncs(f, func(fn string, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if strings.HasPrefix(fn, "must") || strings.HasPrefix(fn, "Must") {
				return true
			}
			if len(call.Args) == 1 {
				if arg, ok := unparen(call.Args[0]).(*ast.CallExpr); ok {
					if isPkgCall(pass.Info, arg, checkPkgPath, "Invariant") ||
						isPkgCall(pass.Info, arg, checkPkgPath, "Invariantf") {
						return true
					}
				}
			}
			pass.Reportf(call.Pos(), "unaudited panic in library package; convert to an error return, wrap the payload in check.Invariant(f), or move it into a must* helper")
			return true
		})
	}
}
