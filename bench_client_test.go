// BenchmarkClientDirect measures how much of the quq-shard proxy tax
// the shard-aware client library wins back. The same two-key workload
// as BenchmarkShardThroughput runs three ways: raw HTTP straight at
// each key's owning backend (the floor), through the front-end proxy
// (the ceiling of the tax), and through shardclient, which routes
// directly off its local ring replica. The client should sit near the
// raw-direct floor — it pays the ring lookup and key canonicalization
// but not the proxy's extra loopback hop, relay copy, or jitter-stream
// bookkeeping. Results land in artifacts/BENCH_client.json.
package quq_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"quq/internal/serve"
	"quq/internal/shard"
	"quq/internal/shardclient"
)

func BenchmarkClientDirect(b *testing.B) {
	const backendsN = 3
	addrs := make([]string, backendsN)
	for i := range addrs {
		s := serve.New(serve.Config{
			Registry: serve.RegistryOptions{Seed: 7, CalibImages: 2},
			Batcher:  serve.BatcherOptions{MaxBatch: 8, Linger: time.Millisecond, QueueCap: 256},
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		addrs[i] = ts.URL
	}
	front := shard.New(shard.Options{Backends: addrs, ProbeInterval: -1, Retries: -1})
	defer front.Close()
	fs := httptest.NewServer(front.Handler())
	defer fs.Close()

	client, err := shardclient.New(context.Background(), fs.URL, shardclient.Options{})
	if err != nil {
		b.Fatal(err)
	}

	post := func(b *testing.B, url string, body []byte) {
		b.Helper()
		resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bytes.NewBuffer(nil).ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}

	img := benchFlatImages(1)
	type workload struct {
		model, method string
	}
	keys := []workload{{"ViT-Nano", "QUQ"}, {"ViT-Nano", "BaseQ"}}
	bodies := make([][]byte, len(keys))
	owners := make([]string, len(keys))
	for i, sel := range keys {
		bodies[i] = mustMarshalBench(b, map[string]any{
			"model": sel.model, "method": sel.method, "bits": 6, "images": img,
		})
		key, err := serve.KeyFromWire(sel.model, sel.method, 6, "")
		if err != nil {
			b.Fatal(err)
		}
		owner, ok := front.Ring().Owner(key.String())
		if !ok {
			b.Fatal("ring has no backends")
		}
		owners[i] = owner.Addr()
		// Warm through the front so each key calibrates on its owner.
		post(b, fs.URL, bodies[i])
	}

	var directIPS, proxiedIPS, clientIPS float64
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(bodies)
			post(b, owners[k], bodies[k])
		}
		directIPS = float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(directIPS, "img/s")
	})
	b.Run("proxied", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(bodies)
			post(b, fs.URL, bodies[k])
		}
		proxiedIPS = float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(proxiedIPS, "img/s")
	})
	b.Run("client", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			k := i % len(keys)
			res, err := client.Classify(ctx, keys[k].model, keys[k].method, 6, "", img)
			if err != nil {
				b.Fatal(err)
			}
			if res.Via == shardclient.ProxyVia {
				b.Fatal("client fell back to the proxy mid-benchmark")
			}
		}
		clientIPS = float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(clientIPS, "img/s")
	})

	if directIPS == 0 || proxiedIPS == 0 || clientIPS == 0 {
		return // sub-benchmark filtered out; nothing coherent to record
	}
	artifact := struct {
		Backends        int     `json:"backends"`
		Keys            int     `json:"keys"`
		DirectImgPerSec float64 `json:"direct_img_per_sec"`
		ProxyImgPerSec  float64 `json:"proxied_img_per_sec"`
		ClientImgPerSec float64 `json:"client_img_per_sec"`
		ProxyOverhead   float64 `json:"proxy_overhead"`
		ClientOverhead  float64 `json:"client_overhead"`
	}{backendsN, len(keys), directIPS, proxiedIPS, clientIPS,
		directIPS / proxiedIPS, directIPS / clientIPS}
	buf, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll("artifacts", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("artifacts", "BENCH_client.json"), append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("client routing: direct %.1f img/s, proxied %.1f img/s, client %.1f img/s",
		directIPS, proxiedIPS, clientIPS)
}
