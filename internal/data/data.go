// Package data provides the synthetic image workloads that substitute for
// ImageNet in this reproduction (see DESIGN.md).
//
// Two generators are provided. PatternDataset emits a 10-class texture
// classification task — stripes, checkerboards, blobs, rings at varying
// phases and amplitudes under additive noise — that a small ViT can
// genuinely learn, giving the accuracy experiments a true top-1 metric
// for the trained model. Images emits structured random images at any
// model geometry, used as the evaluation set for the agreement-with-FP32
// metric on the proxy model zoo.
package data

import (
	"fmt"
	"math"

	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// NumPatternClasses is the label count of the pattern dataset.
const NumPatternClasses = 10

// Sample is one labelled image.
type Sample struct {
	Image *tensor.Tensor // [channels, H, W]
	Label int
}

// PatternDataset generates n labelled 1×size×size images, classes
// balanced round-robin, deterministically from seed.
func PatternDataset(n, size int, seed uint64) []Sample {
	src := rng.New(seed)
	out := make([]Sample, n)
	for i := range out {
		label := i % NumPatternClasses
		out[i] = Sample{Image: PatternImage(label, size, src), Label: label}
	}
	return out
}

// PatternImage draws one image of the given class. Every class has a
// random phase, amplitude and noise level so the task requires learning
// the texture, not memorizing pixels.
func PatternImage(label, size int, src *rng.Source) *tensor.Tensor {
	img := tensor.New(1, size, size)
	amp := 0.8 + 0.4*src.Float64()
	phase := src.Float64() * 2 * math.Pi
	noise := 0.10 + 0.10*src.Float64()
	cx := float64(size-1) / 2
	cy := float64(size-1) / 2

	val := func(y, x int) float64 {
		fy, fx := float64(y), float64(x)
		switch label {
		case 0: // low-frequency horizontal stripes
			return math.Sin(fy*2*math.Pi/float64(size) + phase)
		case 1: // high-frequency horizontal stripes
			return math.Sin(fy*6*math.Pi/float64(size) + phase)
		case 2: // low-frequency vertical stripes
			return math.Sin(fx*2*math.Pi/float64(size) + phase)
		case 3: // high-frequency vertical stripes
			return math.Sin(fx*6*math.Pi/float64(size) + phase)
		case 4: // checkerboard
			return math.Sin(fy*4*math.Pi/float64(size)+phase) * math.Sin(fx*4*math.Pi/float64(size)+phase)
		case 5: // diagonal stripes
			return math.Sin((fy+fx)*3*math.Pi/float64(size) + phase)
		case 6: // centre blob
			d := math.Hypot(fy-cy, fx-cx) / float64(size)
			return math.Exp(-8 * d * d * 2)
		case 7: // four corner blobs
			d := math.Min(
				math.Min(math.Hypot(fy, fx), math.Hypot(fy, fx-float64(size-1))),
				math.Min(math.Hypot(fy-float64(size-1), fx), math.Hypot(fy-float64(size-1), fx-float64(size-1))),
			) / float64(size)
			return math.Exp(-10 * d * d * 2)
		case 8: // concentric rings
			d := math.Hypot(fy-cy, fx-cx) / float64(size)
			return math.Sin(d*8*math.Pi + phase)
		default: // radial gradient
			d := math.Hypot(fy-cy, fx-cx) / float64(size)
			return 1 - 2*d
		}
	}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			img.Set(amp*val(y, x)+src.Gauss(0, noise), 0, y, x)
		}
	}
	return img
}

// PatternSamples generates n labelled pattern images at an arbitrary
// geometry: the grayscale pattern is projected onto each channel with a
// random per-channel gain, so multi-channel models see the same 10-class
// texture task. Classes are balanced round-robin.
func PatternSamples(channels, size, n int, seed uint64) []Sample {
	src := rng.New(seed)
	out := make([]Sample, n)
	for i := range out {
		label := i % NumPatternClasses
		gray := PatternImage(label, size, src)
		img := tensor.New(channels, size, size)
		for c := 0; c < channels; c++ {
			gain := 0.85 + 0.3*src.Float64()
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					img.Set(gain*gray.At(0, y, x)+src.Gauss(0, 0.05), c, y, x)
				}
			}
		}
		out[i] = Sample{Image: img, Label: label}
	}
	return out
}

// Images generates n structured random images matching the model
// configuration's geometry: a random low-frequency field per channel plus
// pixel noise, standardized to roughly zero mean and unit variance (the
// normalization a vision pipeline would apply).
func Images(cfg vit.Config, n int, seed uint64) []*tensor.Tensor {
	src := rng.New(seed)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = Image(cfg.Channels, cfg.ImageSize, src)
	}
	return out
}

// Image draws one structured random image: a sum of a few random 2-D
// sinusoids and a Gaussian blob per channel, plus noise.
func Image(channels, size int, src *rng.Source) *tensor.Tensor {
	img := tensor.New(channels, size, size)
	for c := 0; c < channels; c++ {
		// Random sinusoid mixture.
		type wave struct{ ky, kx, phase, amp float64 }
		waves := make([]wave, 3)
		for i := range waves {
			waves[i] = wave{
				ky:    src.Uniform(0, 4) * 2 * math.Pi / float64(size),
				kx:    src.Uniform(0, 4) * 2 * math.Pi / float64(size),
				phase: src.Float64() * 2 * math.Pi,
				amp:   src.Uniform(0.2, 0.8),
			}
		}
		by, bx := src.Uniform(0, float64(size)), src.Uniform(0, float64(size))
		bamp := src.Uniform(-1, 1)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				v := src.Gauss(0, 0.3)
				for _, wv := range waves {
					v += wv.amp * math.Sin(wv.ky*float64(y)+wv.kx*float64(x)+wv.phase)
				}
				d := math.Hypot(float64(y)-by, float64(x)-bx) / float64(size)
				v += bamp * math.Exp(-6*d*d)
				img.Set(v, c, y, x)
			}
		}
	}
	// Standardize.
	mean := img.Mean()
	std := img.Std()
	if std == 0 {
		std = 1
	}
	img.Apply(func(v float64) float64 { return (v - mean) / std })
	return img
}

// ImageFromFlat validates a request-supplied flat pixel slice against the
// model geometry and reshapes it into a [channels, H, W] image tensor.
// The slice is laid out channel-major (all of channel 0's rows, then
// channel 1, ...), matching Tensor's row-major order. Non-finite pixels
// are rejected: a single NaN would propagate through every GEMM and turn
// the logits into garbage that still serializes as valid JSON.
//
// This is the decode path between quq-serve's JSON request body and the
// inference stack; the copy keeps the caller's buffer (typically a
// json.Decoder allocation) out of the model's working set.
func ImageFromFlat(cfg vit.Config, vals []float64) (*tensor.Tensor, error) {
	want := cfg.Channels * cfg.ImageSize * cfg.ImageSize
	if len(vals) != want {
		return nil, fmt.Errorf("data: image has %d values, %s wants %d (%d×%d×%d)",
			len(vals), cfg.Name, want, cfg.Channels, cfg.ImageSize, cfg.ImageSize)
	}
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("data: image value %d is not finite", i)
		}
	}
	img := tensor.New(cfg.Channels, cfg.ImageSize, cfg.ImageSize)
	copy(img.Data(), vals)
	return img, nil
}

// CalibrationSet returns the paper's calibration protocol: a small number
// of images (32 in all experiments) drawn deterministically and disjoint
// from the evaluation seed space.
func CalibrationSet(cfg vit.Config, n int, seed uint64) []*tensor.Tensor {
	return Images(cfg, n, seed^0xCA11B)
}
