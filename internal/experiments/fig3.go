package experiments

import (
	"fmt"
	"sort"
	"strings"

	"quq/internal/dist"
	"quq/internal/quant"
	"quq/internal/rng"
)

// Fig3Data describes one panel of Figure 3: a data family's histogram and
// the QUQ quantization points PRA generates for it at 4 bits.
type Fig3Data struct {
	Family dist.Family
	Mode   quant.Mode
	Edges  []float64
	Counts []int
	// Points are the representable values of the calibrated quantizer,
	// ascending (the vertical lines of Figure 3).
	Points []float64
}

// Fig3 regenerates the distribution/quantization-point panels. bits is 4
// in the paper's figure.
func Fig3(n, bits int, seed uint64) []Fig3Data {
	if n <= 0 {
		n = 1 << 16
	}
	if bits == 0 {
		bits = 4
	}
	var out []Fig3Data
	for _, fam := range dist.Families {
		xs := dist.Sample(fam, n, rng.New(seed))
		p := quant.PRA(xs, bits, quant.DefaultPRAOptions())
		edges, counts := dist.Histogram(xs, 80)
		out = append(out, Fig3Data{
			Family: fam,
			Mode:   p.Mode,
			Edges:  edges,
			Counts: counts,
			Points: QuantPoints(p),
		})
	}
	return out
}

// QuantPoints enumerates the distinct representable values of a QUQ
// parameter set, ascending.
func QuantPoints(p *quant.Params) []float64 {
	seen := map[float64]bool{0: true}
	for _, s := range []quant.Slot{quant.FNeg, quant.FPos, quant.CNeg, quant.CPos} {
		sp := p.Slot(s)
		if !sp.Enabled {
			continue
		}
		for m := int64(1); m <= sp.MaxMag; m++ {
			v := float64(m) * sp.Delta
			if s.Negative() {
				v = -v
			}
			seen[v] = true
		}
	}
	points := make([]float64, 0, len(seen))
	//quq:maporder-ok the map is only a dedup set; sort.Float64s below fixes the order before anything observes it
	for v := range seen {
		points = append(points, v)
	}
	sort.Float64s(points)
	return points
}

// FormatFig3 renders each panel as an ASCII histogram with the
// quantization points marked beneath, plus a CSV block for plotting.
func FormatFig3(panels []Fig3Data) string {
	var b strings.Builder
	for _, p := range panels {
		fmt.Fprintf(&b, "== %s (mode %v, %d quantization points) ==\n", p.Family, p.Mode, len(p.Points))
		maxC := 1
		for _, c := range p.Counts {
			if c > maxC {
				maxC = c
			}
		}
		const height = 8
		for row := height; row >= 1; row-- {
			for _, c := range p.Counts {
				// Log-ish scaling so the long tails stay visible.
				level := 0
				if c > 0 {
					level = 1 + (height-1)*c/maxC
				}
				if level >= row {
					b.WriteByte('#')
				} else {
					b.WriteByte(' ')
				}
			}
			b.WriteByte('\n')
		}
		// Mark quantization points along the same axis.
		lo, hi := p.Edges[0], p.Edges[len(p.Edges)-1]
		marks := make([]byte, len(p.Counts))
		for i := range marks {
			marks[i] = '-'
		}
		for _, pt := range p.Points {
			if pt < lo || pt > hi {
				continue
			}
			idx := int(float64(len(marks)-1) * (pt - lo) / (hi - lo))
			marks[idx] = '|'
		}
		b.Write(marks)
		fmt.Fprintf(&b, "\n[%.4g .. %.4g]\n", lo, hi)
		fmt.Fprintf(&b, "points: ")
		for i, pt := range p.Points {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", pt)
		}
		b.WriteString("\n\n")
	}
	return b.String()
}
