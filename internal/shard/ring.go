package shard

import (
	"errors"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"quq/internal/check"
)

// ErrNoBackends is returned when no healthy backend can serve a key.
var ErrNoBackends = errors.New("shard: no healthy backends")

// Backend is one quq-serve instance on the ring. Health and load are
// atomics: the prober, the proxy path and introspection read them
// concurrently.
type Backend struct {
	addr       string // normalized base URL, e.g. "http://127.0.0.1:8642"
	healthy    atomic.Bool
	inflight   atomic.Int64
	probeFails atomic.Int32 // consecutive failed probes while admitted
	probeOKs   atomic.Int32 // consecutive healthy probes while ejected
}

// Addr returns the backend's base URL.
func (b *Backend) Addr() string { return b.addr }

// Healthy reports whether the backend is currently admitted.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Inflight returns the number of requests currently proxied to the
// backend.
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// SetHealthy overrides the health bit. On a serving front-end the
// prober owns health; the setter exists for client-side ring replicas,
// which mirror the /cluster view's snapshot and record their own
// observed connection failures until the next refresh.
func (b *Backend) SetHealthy(v bool) { b.healthy.Store(v) }

// Ring is a consistent-hash ring with virtual nodes and bounded-load
// overflow. Placement depends only on the backend address set and the
// key bytes — FNV-1a hashing, no map iteration, no randomness, no time —
// so every front-end process computes identical ownership. All methods
// are safe for concurrent use.
type Ring struct {
	vnodes        int
	maxLoadFactor float64

	mu       sync.RWMutex
	backends map[string]*Backend
	points   []ringPoint // sorted by (hash, addr, replica)
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash    uint64
	replica int
	b       *Backend
}

// NewRing builds an empty ring with the given virtual-node count per
// backend and bounded-load factor (<= 0 disables load bounding).
// vnodes must be positive: a silent default here would let a ring and a
// shardclient replica of it disagree on placement, so a non-positive
// count is a programmer error, not a tunable.
func NewRing(vnodes int, maxLoadFactor float64) *Ring {
	if vnodes <= 0 {
		panic(check.Invariantf("shard: NewRing vnodes must be positive, got %d", vnodes))
	}
	return &Ring{
		vnodes:        vnodes,
		maxLoadFactor: maxLoadFactor,
		backends:      map[string]*Backend{},
	}
}

// hashString is FNV-1a 64 — stable across processes and Go versions,
// unlike maphash.
func hashString(s string) uint64 {
	h := fnv.New64a()
	//quq:errdrop-ok hash.Hash.Write is documented to never return an error
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a backend (healthy, idle) and claims its virtual-node
// arcs. Re-adding an existing address is a no-op returning the existing
// backend.
func (r *Ring) Add(addr string) *Backend {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.backends[addr]; ok {
		return b
	}
	b := &Backend{addr: addr}
	b.healthy.Store(true)
	r.backends[addr] = b
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:    hashString(addr + "#" + strconv.Itoa(i)),
			replica: i,
			b:       b,
		})
	}
	r.sortLocked()
	return b
}

// Remove deletes a backend; only the arcs it owned are remapped (each
// moves to its ring successor).
func (r *Ring) Remove(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.backends[addr]; !ok {
		return
	}
	delete(r.backends, addr)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.b.addr != addr {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortLocked orders the points; hash ties (vanishingly rare with 64-bit
// FNV) break on address then replica so ownership stays deterministic
// regardless of Add order.
func (r *Ring) sortLocked() {
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.b.addr != b.b.addr {
			return a.b.addr < b.b.addr
		}
		return a.replica < b.replica
	})
}

// Owner returns the primary owner of a key — the first virtual node at
// or after the key's hash — ignoring health and load. This is the pure
// consistent-hash placement the remapping guarantees are stated over.
func (r *Ring) Owner(key string) (*Backend, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil, false
	}
	return r.points[r.startLocked(key)].b, true
}

// startLocked finds the index of the first point at or after the key's
// hash position (wrapping).
func (r *Ring) startLocked(key string) int {
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// OwnerN returns the key's replica set: the first n distinct backends
// on the ring-successor walk, in placement order, health-agnostic.
// Index i in the result IS the key's replica-i slot — a deliberately
// pure function of membership and key bytes, so the slot identity never
// shifts when a member flaps. Transient health belongs to the caller
// (skip unhealthy entries but keep their slots); only membership
// changes — join, leave, drain — remap the set. Fewer than n members
// yields a shorter set, never duplicates.
func (r *Ring) OwnerN(key string, n int) []*Backend {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerNLocked(key, n, "")
}

// ownerNLocked is OwnerN with an optional address to skip — the drain
// path computes the post-departure owners while the leaver is still a
// ring member and still serving.
func (r *Ring) ownerNLocked(key string, n int, skip string) []*Backend {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	start := r.startLocked(key)
	owners := make([]*Backend, 0, n)
	seen := make(map[*Backend]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.b] {
			continue
		}
		seen[p.b] = true
		if p.b.addr == skip {
			continue
		}
		owners = append(owners, p.b)
	}
	return owners
}

// OwnerNSkip is OwnerN computed as if the named backend had already
// left the ring (drain handoff planning).
func (r *Ring) OwnerNSkip(key string, n int, skip string) []*Backend {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerNLocked(key, n, skip)
}

// VNodes returns the virtual-node count per backend.
func (r *Ring) VNodes() int { return r.vnodes }

// MaxLoadFactor returns the bounded-load factor (<= 0: unbounded).
func (r *Ring) MaxLoadFactor() float64 { return r.maxLoadFactor }

// Points returns the number of virtual nodes currently on the ring —
// always members × vnodes; the Add-idempotency tests pin that.
func (r *Ring) Points() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.points)
}

// Pick returns the backend that should serve a key right now: the first
// ring successor that is healthy, not excluded, and under the bounded-
// load threshold. If every healthy candidate is over the bound, the
// first healthy one is used anyway (shedding load is the backend's 429
// backpressure's job, not the router's). Excluded backends are ones the
// caller already failed against this request.
func (r *Ring) Pick(key string, exclude map[*Backend]bool) (*Backend, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil, ErrNoBackends
	}
	start := r.startLocked(key)
	bound := r.loadBoundLocked()
	var fallback *Backend
	seen := make(map[*Backend]bool, len(r.backends))
	for n := 0; n < len(r.points); n++ {
		p := r.points[(start+n)%len(r.points)]
		if seen[p.b] {
			continue
		}
		seen[p.b] = true
		if exclude[p.b] || !p.b.healthy.Load() {
			continue
		}
		if fallback == nil {
			fallback = p.b
		}
		if bound == 0 || p.b.inflight.Load() < bound {
			return p.b, nil
		}
	}
	if fallback == nil {
		return nil, ErrNoBackends
	}
	return fallback, nil
}

// loadBoundLocked computes the bounded-load threshold: ceil(c * (total
// in-flight + 1) / healthy backends), the classic consistent-hashing-
// with-bounded-loads bound. Zero means unbounded.
func (r *Ring) loadBoundLocked() int64 {
	if r.maxLoadFactor <= 0 {
		return 0
	}
	var total int64
	var healthy int64
	for _, b := range r.backends {
		if b.healthy.Load() {
			healthy++
			total += b.inflight.Load()
		}
	}
	if healthy == 0 {
		return 0
	}
	bound := int64(r.maxLoadFactor * float64(total+1) / float64(healthy))
	if bound < 1 {
		bound = 1
	}
	return bound
}

// Backends snapshots the ring membership sorted by address.
func (r *Ring) Backends() []*Backend {
	r.mu.RLock()
	list := make([]*Backend, 0, len(r.backends))
	// Map order is irrelevant here: the snapshot is sorted below.
	for _, b := range r.backends {
		list = append(list, b)
	}
	r.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].addr < list[j].addr })
	return list
}

// HealthyCount returns the number of admitted backends.
func (r *Ring) HealthyCount() int {
	n := 0
	for _, b := range r.Backends() {
		if b.Healthy() {
			n++
		}
	}
	return n
}
