// Package panicaudit is the fixture corpus for the panicaudit analyzer.
// It is loaded under a library (non-main) import path.
package panicaudit

import "quq/internal/check"

func bad(x int) {
	if x < 0 {
		panic("negative") // want `unaudited panic in library package`
	}
}

func badTyped(err error) {
	panic(err) // want `unaudited panic in library package`
}

func invariant(x int) {
	if x < 0 {
		panic(check.Invariantf("negative %d", x)) // typed invariant: not flagged
	}
}

func invariantPlain() {
	panic(check.Invariant("broken")) // typed invariant: not flagged
}

func mustPositive(x int) int {
	if x < 0 {
		panic("must* helpers sanction panics") // not flagged
	}
	return x
}

func MustRun(f func() error) {
	wrapped := func() {
		if err := f(); err != nil {
			panic(err) // closure inherits the Must* sanction: not flagged
		}
	}
	wrapped()
}

//quq:panic-ok fixture: demonstrating directive suppression
func annotated() {
	panic("covered by the doc-comment directive")
}

type panicker struct{}

// panic as a method name must not confuse the builtin detection.
func (panicker) panic(string) {}

func notTheBuiltin(p panicker) {
	p.panic("a method named panic is not the builtin") // not flagged
}
