package shard

import (
	"context"
	"net/http"
	"time"
)

// Prober watches backend health: every interval it GETs each backend's
// /healthz; FailAfter consecutive failures eject the backend from
// routing, and OkAfter consecutive healthy probes readmit it. Both
// thresholds are hysteresis against flapping — a backend alternating
// alive and dead every probe round never assembles the required streak
// in either direction, so it stays wherever it is instead of churning
// the ring each cycle. Ejection only flips the health bit — the backend
// keeps its virtual nodes, so when it returns, exactly the arcs it
// always owned come back to it (key remapping stays limited to the
// moved arc in both directions).
//
// All probe I/O descends from the base context handed to NewProber, so
// cancelling it (the embedder shutting down) aborts in-flight health
// checks instead of letting them run out their timeouts.
type Prober struct {
	base      context.Context
	ring      *Ring
	client    *http.Client
	interval  time.Duration
	timeout   time.Duration
	failAfter int
	okAfter   int
	met       *Metrics

	stop chan struct{}
	done chan struct{}
}

// NewProber builds a prober over the ring. base roots every probe's
// context and must be non-nil; met may be nil.
func NewProber(base context.Context, ring *Ring, client *http.Client, interval, timeout time.Duration, failAfter, okAfter int, met *Metrics) *Prober {
	if okAfter <= 0 {
		okAfter = 1
	}
	return &Prober{
		base:      base,
		ring:      ring,
		client:    client,
		interval:  interval,
		timeout:   timeout,
		failAfter: failAfter,
		okAfter:   okAfter,
		met:       met,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Start launches the background probe loop. A non-positive interval
// disables it (ProbeNow still works, which is how tests and -smoke drive
// health transitions deterministically).
func (p *Prober) Start() {
	if p.interval <= 0 {
		close(p.done)
		return
	}
	go p.loop()
}

func (p *Prober) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.base.Done():
			return
		case <-t.C:
			p.ProbeNow(p.base)
		}
	}
}

// Stop terminates the probe loop and waits for it to exit.
func (p *Prober) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}

// ProbeNow runs one synchronous probe round over every backend; each
// round trip is bounded by the probe timeout and ctx.
func (p *Prober) ProbeNow(ctx context.Context) {
	for _, b := range p.ring.Backends() {
		p.probe(ctx, b)
	}
	if p.met != nil {
		p.met.Healthy.Set(int64(p.ring.HealthyCount()))
	}
}

// probe checks one backend and applies the ejection/re-admission policy.
func (p *Prober) probe(ctx context.Context, b *Backend) {
	if p.probeOK(ctx, b) {
		b.probeFails.Store(0)
		if b.healthy.Load() {
			return
		}
		if int(b.probeOKs.Add(1)) >= p.okAfter {
			b.probeOKs.Store(0)
			if !b.healthy.Swap(true) && p.met != nil {
				p.met.Readmissions.Inc()
			}
		}
		return
	}
	b.probeOKs.Store(0)
	fails := b.probeFails.Add(1)
	if int(fails) >= p.failAfter {
		eject(b, p.met)
	}
}

// probeOK reports whether one /healthz round trip succeeded.
func (p *Prober) probeOK(ctx context.Context, b *Backend) bool {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	// The body is irrelevant; draining it would only delay the round.
	if err := resp.Body.Close(); err != nil {
		return false
	}
	return resp.StatusCode == http.StatusOK
}

// eject marks a backend unhealthy (idempotently), counting the
// transition. Shared by the prober and the proxy's passive
// connection-failure path. The recovery streak resets so re-admission
// always demands OkAfter fresh consecutive healthy probes.
func eject(b *Backend, met *Metrics) {
	b.probeOKs.Store(0)
	if b.healthy.Swap(false) && met != nil {
		met.Ejections.Inc()
	}
}
