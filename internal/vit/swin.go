package vit

import (
	"fmt"
	"quq/internal/check"

	"quq/internal/tensor"
)

// Swin implements the hierarchical Swin transformer: window attention
// with cyclically shifted windows on alternating blocks, and 2×2 patch
// merging between stages. Two documented simplifications versus the
// original (DESIGN.md): no relative position bias (a learned absolute
// position embedding at the stem instead), and no attention mask after
// the cyclic shift — neither changes the quantization behaviour the
// paper evaluates.
type Swin struct {
	cfg    Config
	Patch  *Linear
	Pos    *tensor.Tensor
	Stages []*SwinStage
	Final  *LayerNorm
	Head   *Linear
}

// SwinStage is a run of blocks at one resolution, optionally followed by
// patch merging into the next stage's width.
type SwinStage struct {
	Blocks  []*Block
	MergeLN *LayerNorm // nil for the last stage
	Merge   *Linear    // [4*dim, 2*dim], nil for the last stage
}

// newSwin allocates a zero-initialized Swin for cfg.
func newSwin(cfg Config) *Swin {
	grid := cfg.gridSide()
	m := &Swin{
		cfg:   cfg,
		Patch: NewLinear(cfg.PatchDim(), cfg.StageDims[0]),
		Pos:   tensor.New(grid*grid, cfg.StageDims[0]),
	}
	for s, depth := range cfg.StageDepths {
		st := &SwinStage{}
		for i := 0; i < depth; i++ {
			st.Blocks = append(st.Blocks, NewBlock(cfg.StageDims[s], cfg.StageHeads[s], cfg.MLPRatio))
		}
		if s < len(cfg.StageDepths)-1 {
			st.MergeLN = NewLayerNorm(4 * cfg.StageDims[s])
			st.Merge = NewLinear(4*cfg.StageDims[s], cfg.StageDims[s+1])
		}
		m.Stages = append(m.Stages, st)
	}
	last := cfg.StageDims[len(cfg.StageDims)-1]
	m.Final = NewLayerNorm(last)
	m.Head = NewLinear(last, cfg.Classes)
	return m
}

// Config implements Model.
func (m *Swin) Config() Config { return m.cfg }

// NumBlocks implements Model.
func (m *Swin) NumBlocks() int {
	n := 0
	for _, s := range m.Stages {
		n += len(s.Blocks)
	}
	return n
}

// windowOrder returns the permutation that regroups a row-major g×g token
// grid (after a cyclic shift by `shift` tokens down and right) into
// window-major order for w×w windows: result[newIndex] = oldIndex.
func windowOrder(g, w, shift int) []int {
	order := make([]int, g*g)
	i := 0
	for wy := 0; wy < g/w; wy++ {
		for wx := 0; wx < g/w; wx++ {
			for y := 0; y < w; y++ {
				for x := 0; x < w; x++ {
					gy := (wy*w + y + shift) % g
					gx := (wx*w + x + shift) % g
					order[i] = gy*g + gx
					i++
				}
			}
		}
	}
	return order
}

// permuteRows returns x with rows reordered so row i of the result is row
// order[i] of x.
func permuteRows(x *tensor.Tensor, order []int) *tensor.Tensor {
	out := tensor.New(x.Dim(0), x.Dim(1))
	for i, o := range order {
		copy(out.Row(i), x.Row(o))
	}
	return out
}

// invertOrder returns the inverse permutation.
func invertOrder(order []int) []int {
	inv := make([]int, len(order))
	for i, o := range order {
		inv[o] = i
	}
	return inv
}

// Forward implements Model.
func (m *Swin) Forward(img *tensor.Tensor, opts ForwardOpts) *tensor.Tensor {
	tap := opts.Tap
	patches := Patchify(img, m.cfg.PatchSize)
	patches = tap.apply(Site{-1, "patch.in", KindGEMMIn}, patches)
	x := applyLinear(opts, Site{-1, "patch.w", KindWeight}, m.Patch, tensor.New(patches.Dim(0), m.cfg.StageDims[0]), patches)
	x.AddInPlace(m.Pos)
	x = tap.apply(Site{-1, "embed.out", KindActivation}, x)

	grid := m.cfg.gridSide()
	w := m.cfg.Window
	blk := 0
	for s, stage := range m.Stages {
		nWin := (grid / w) * (grid / w)
		for i, b := range stage.Blocks {
			shift := 0
			if i%2 == 1 {
				shift = w / 2
			}
			order := windowOrder(grid, w, shift)
			x = permuteRows(x, order)
			x = b.Forward(x, nWin, blk, opts)
			x = permuteRows(x, invertOrder(order))
			blk++
		}
		if stage.Merge != nil {
			x = mergePatches(x, grid)
			x = stage.MergeLN.Apply(x)
			x = tap.apply(Site{blk - 1, "merge.in", KindGEMMIn}, x)
			x = applyLinear(opts, Site{blk - 1, "merge.w", KindWeight}, stage.Merge, tensor.New(x.Dim(0), stage.Merge.Out()), x)
			grid /= 2
			x = tap.apply(Site{blk - 1, "merge.out", KindActivation}, x)
		}
		_ = s
	}

	x = m.Final.Apply(x)
	x = tap.apply(Site{-1, "head.in", KindGEMMIn}, x)

	// Global average pool over tokens, then classify.
	dim := x.Dim(1)
	pooled := tensor.New(1, dim)
	prow := pooled.Row(0)
	for r := 0; r < x.Dim(0); r++ {
		row := x.Row(r)
		for c := range prow {
			prow[c] += row[c]
		}
	}
	for c := range prow {
		prow[c] /= float64(x.Dim(0))
	}
	return applyLinear(opts, Site{-1, "head.w", KindWeight}, m.Head, tensor.New(1, m.cfg.Classes), pooled).Reshape(m.cfg.Classes)
}

// mergePatches concatenates each 2×2 neighbourhood of a row-major g×g
// token grid into one token of 4× width: [g², d] -> [g²/4, 4d].
func mergePatches(x *tensor.Tensor, g int) *tensor.Tensor {
	d := x.Dim(1)
	if x.Dim(0) != g*g || g%2 != 0 {
		panic(check.Invariantf("vit: cannot merge %d tokens as a %dx%d grid", x.Dim(0), g, g))
	}
	h := g / 2
	out := tensor.New(h*h, 4*d)
	for y := 0; y < h; y++ {
		for xx := 0; xx < h; xx++ {
			row := out.Row(y*h + xx)
			copy(row[0:d], x.Row((2*y)*g+2*xx))
			copy(row[d:2*d], x.Row((2*y)*g+2*xx+1))
			copy(row[2*d:3*d], x.Row((2*y+1)*g+2*xx))
			copy(row[3*d:4*d], x.Row((2*y+1)*g+2*xx+1))
		}
	}
	return out
}

// ForEachWeight implements Model.
func (m *Swin) ForEachWeight(fn func(Site, *Linear)) {
	fn(Site{-1, "patch.w", KindWeight}, m.Patch)
	blk := 0
	for _, stage := range m.Stages {
		for _, b := range stage.Blocks {
			b.weights(blk, fn)
			blk++
		}
		if stage.Merge != nil {
			fn(Site{blk - 1, "merge.w", KindWeight}, stage.Merge)
		}
	}
	fn(Site{-1, "head.w", KindWeight}, m.Head)
}

// Params implements Model.
func (m *Swin) Params(fn func(name string, data []float64)) {
	fn("patch.w", m.Patch.W.Data())
	fn("patch.b", m.Patch.B)
	fn("pos", m.Pos.Data())
	blk := 0
	for s, stage := range m.Stages {
		for _, b := range stage.Blocks {
			b.params(fmt.Sprintf("block%02d", blk), fn)
			blk++
		}
		if stage.Merge != nil {
			fn(fmt.Sprintf("stage%d.mergeln.g", s), stage.MergeLN.Gamma)
			fn(fmt.Sprintf("stage%d.mergeln.b", s), stage.MergeLN.Beta)
			fn(fmt.Sprintf("stage%d.merge.w", s), stage.Merge.W.Data())
			fn(fmt.Sprintf("stage%d.merge.b", s), stage.Merge.B)
		}
	}
	fn("final.g", m.Final.Gamma)
	fn("final.b", m.Final.Beta)
	fn("head.w", m.Head.W.Data())
	fn("head.b", m.Head.B)
}

// Clone implements Model.
func (m *Swin) Clone() Model {
	c := newSwin(m.cfg)
	copyParams(m, c)
	return c
}
