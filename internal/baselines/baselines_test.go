package baselines

import (
	"math"
	"testing"

	"quq/internal/dist"
	"quq/internal/ptq"
	"quq/internal/rng"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// statsFor fabricates SiteStats from a sample slice laid out as rows of
// `cols` channels.
func statsFor(site vit.Site, xs []float64, cols int) *ptq.SiteStats {
	st := &ptq.SiteStats{Site: site}
	st.Samples = append([]float64(nil), xs...)
	st.SampleChans = make([]int32, len(xs))
	st.LastDim = cols
	st.ChanAbsMax = make([]float64, cols)
	st.Min, st.Max = xs[0], xs[0]
	for i, v := range xs {
		ch := i % cols
		st.SampleChans[i] = int32(ch)
		if a := math.Abs(v); a > st.ChanAbsMax[ch] {
			st.ChanAbsMax[ch] = a
		}
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	return st
}

func sampleMSE(q ptq.TensorQuantizer, xs []float64) float64 {
	in := tensor.FromSlice(append([]float64(nil), xs...), len(xs))
	out := q.Apply(in)
	var s float64
	for i, v := range xs {
		d := v - out.Data()[i]
		s += d * d
	}
	return s / float64(len(xs))
}

func uniformMSEOf(xs []float64, bits int) float64 {
	absmax := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	hi := float64(int64(1)<<(bits-1) - 1)
	delta := absmax / hi
	q := ptq.UniformQuantizer{Delta: delta, Bits: bits}
	return sampleMSE(q, xs)
}

func TestMethodNames(t *testing.T) {
	names := map[string]ptq.Method{
		"BaseQ":        BaseQ{},
		"PTQ4ViT":      PTQ4ViT{},
		"APQ-ViT":      APQViT{},
		"FQ-ViT":       FQViT{},
		"BiScaled-FxP": BiScaled{},
	}
	for want, m := range names {
		if m.Name() != want {
			t.Errorf("Name() = %q, want %q", m.Name(), want)
		}
	}
}

func TestSiteClassifiers(t *testing.T) {
	if !isPostSoftmax(vit.Site{Name: "attn.softmax_out"}) || isPostSoftmax(vit.Site{Name: "attn.softmax_in"}) {
		t.Error("isPostSoftmax wrong")
	}
	if !isPostGELU(vit.Site{Name: "mlp.gelu_out"}) || isPostGELU(vit.Site{Name: "mlp.gelu_in"}) {
		t.Error("isPostGELU wrong")
	}
	for _, name := range []string{"resid1.out", "resid2.out", "embed.out", "attn.proj_out", "mlp.fc2_out", "merge.out"} {
		if !isResidualStream(vit.Site{Name: name}) {
			t.Errorf("isResidualStream(%s) = false", name)
		}
	}
	if isResidualStream(vit.Site{Name: "ln1.out"}) {
		t.Error("ln1.out misclassified as residual stream")
	}
}

func TestBaseQSearchesClipping(t *testing.T) {
	xs := dist.Sample(dist.PreAddition, 8192, rng.New(1))
	st := statsFor(vit.Site{Name: "resid1.out", Kind: vit.KindActivation}, xs, 64)
	q := BaseQ{}.CalibrateActivation(st, 6)
	if got, naive := sampleMSE(q, xs), uniformMSEOf(xs, 6); got > naive {
		t.Fatalf("BaseQ with search (%v) worse than naive absmax fit (%v)", got, naive)
	}
}

func TestTwinSoftmaxBeatsUniform(t *testing.T) {
	xs := dist.Sample(dist.PostSoftmax, 1<<14, rng.New(2))
	st := statsFor(vit.Site{Name: "attn.softmax_out", Kind: vit.KindGEMMIn}, xs, 64)
	q := PTQ4ViT{}.CalibrateActivation(st, 6)
	if _, ok := q.(twinSoftmaxQuantizer); !ok {
		t.Fatalf("post-softmax site got %T", q)
	}
	if got, uni := sampleMSE(q, xs), uniformMSEOf(xs, 6); got >= uni {
		t.Fatalf("twin softmax MSE %v not below uniform %v", got, uni)
	}
}

func TestTwinGELUBeatsUniform(t *testing.T) {
	xs := dist.Sample(dist.PostGELU, 1<<14, rng.New(3))
	st := statsFor(vit.Site{Name: "mlp.gelu_out", Kind: vit.KindGEMMIn}, xs, 64)
	q := PTQ4ViT{}.CalibrateActivation(st, 6)
	if _, ok := q.(twinGELUQuantizer); !ok {
		t.Fatalf("post-GELU site got %T", q)
	}
	if got, uni := sampleMSE(q, xs), uniformMSEOf(xs, 6); got >= uni {
		t.Fatalf("twin GELU MSE %v not below uniform %v", got, uni)
	}
}

func TestTwinSoftmaxStaysInRange(t *testing.T) {
	q := twinSoftmaxQuantizer{k: 3, bits: 6}
	for _, x := range []float64{0, 1e-6, 0.124, 0.126, 0.5, 1.0, 1.5} {
		v := q.value(x)
		if v < 0 || v > 1.0+1e-12 {
			t.Fatalf("twin softmax value(%v) = %v out of [0,1]", x, v)
		}
	}
}

func TestAPQAffineHandlesAsymmetry(t *testing.T) {
	// Shifted positive data: affine must beat symmetric uniform, whose
	// codes below zero are wasted.
	src := rng.New(4)
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = 3 + src.Exp(0.5)
	}
	st := statsFor(vit.Site{Name: "x", Kind: vit.KindGEMMIn}, xs, 64)
	q := APQViT{}.CalibrateActivation(st, 6)
	if got, uni := sampleMSE(q, xs), uniformMSEOf(xs, 6); got >= uni/2 {
		t.Fatalf("affine MSE %v should be far below symmetric uniform %v on shifted data", got, uni)
	}
}

func TestFQViTLog2OnSoftmax(t *testing.T) {
	xs := dist.Sample(dist.PostSoftmax, 1<<14, rng.New(5))
	st := statsFor(vit.Site{Name: "attn.softmax_out", Kind: vit.KindGEMMIn}, xs, 64)
	q := FQViT{}.CalibrateActivation(st, 6)
	if _, ok := q.(log2Quantizer); !ok {
		t.Fatalf("post-softmax site got %T", q)
	}
	// Log2 quantization's defining property: bounded *relative* error
	// for the small attention probabilities that uniform quantization
	// zeroes out entirely (its absolute steps are coarse near one, so an
	// MSE comparison is not the right check).
	in := tensor.FromSlice(append([]float64(nil), xs...), len(xs))
	out := q.Apply(in)
	for i, v := range xs {
		if v < 1e-9 || v > 0.125 {
			continue
		}
		if rel := math.Abs(out.Data()[i]-v) / v; rel > 0.42 {
			t.Fatalf("log2 relative error %v at x=%v exceeds the half-step bound", rel, v)
		}
	}
}

func TestLog2QuantizerValues(t *testing.T) {
	q := log2Quantizer{bits: 4}
	x := tensor.FromSlice([]float64{1, 0.5, 0.25, 0.3, 0, -0.1, 1e-9}, 7)
	out := q.Apply(x)
	if out.Data()[0] != 1 || out.Data()[1] != 0.5 || out.Data()[2] != 0.25 {
		t.Fatalf("exact powers wrong: %v", out.Data())
	}
	if out.Data()[4] != 0 || out.Data()[5] != 0 {
		t.Fatalf("non-positive values must map to 0: %v", out.Data())
	}
	if out.Data()[6] != 0 {
		t.Fatalf("underflow must map to 0, got %v", out.Data()[6])
	}
}

func TestFQViTPTFPerChannel(t *testing.T) {
	// Two channel populations: narrow (σ=0.1) and wide (σ=10). PTF must
	// give each channel usable resolution; per-tensor uniform cannot.
	src := rng.New(6)
	const cols = 8
	xs := make([]float64, 8192*cols)
	for i := range xs {
		sd := 0.1
		if i%cols == cols-1 {
			sd = 10
		}
		xs[i] = src.Gauss(0, sd)
	}
	st := statsFor(vit.Site{Name: "resid1.out", Kind: vit.KindActivation}, xs, cols)
	q := FQViT{}.CalibrateActivation(st, 6)
	ptf, ok := q.(ptfQuantizer)
	if !ok {
		t.Fatalf("residual site got %T", q)
	}
	// Narrow channels must get smaller effective deltas than wide ones.
	if ptf.shifts[0] >= ptf.shifts[cols-1] {
		t.Fatalf("shifts = %v: narrow channel not finer than wide", ptf.shifts)
	}
	// The decisive property is *relative* fidelity on narrow channels:
	// per-tensor uniform quantization erases them (relative error ≈ 1,
	// every value rounds to zero) while PTF keeps them at full per-
	// channel resolution.
	in := tensor.FromSlice(append([]float64(nil), xs...), len(xs)/cols, cols)
	outPTF := q.Apply(in)
	absmax := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	outUni := ptq.UniformQuantizer{Delta: absmax / 31, Bits: 6}.Apply(in)
	relErr := func(out *tensor.Tensor, ch int) float64 {
		var num, den float64
		for i, v := range xs {
			if i%cols != ch {
				continue
			}
			d := v - out.Data()[i]
			num += d * d
			den += v * v
		}
		return num / den
	}
	if r := relErr(outPTF, 0); r > 0.01 {
		t.Fatalf("PTF narrow-channel relative error %v, want < 1%%", r)
	}
	if r := relErr(outUni, 0); r < 0.5 {
		t.Fatalf("uniform narrow-channel relative error %v — test premise broken", r)
	}
	// And the wide channel must not be worse than uniform's resolution
	// by more than the ceil-rounding factor (4× in MSE).
	if rp, ru := relErr(outPTF, cols-1), relErr(outUni, cols-1); rp > 4*ru+1e-12 {
		t.Fatalf("PTF wide-channel error %v vs uniform %v", rp, ru)
	}
}

func TestFQViTRowWiseWeights(t *testing.T) {
	// Columns with wildly different scales: row-wise (per-column)
	// quantization must keep per-column relative error bounded.
	src := rng.New(7)
	w := tensor.New(64, 4)
	scales := []float64{0.01, 0.1, 1, 10}
	for r := 0; r < 64; r++ {
		for c := 0; c < 4; c++ {
			w.Set(src.Gauss(0, scales[c]), r, c)
		}
	}
	orig := w.Clone()
	FQViT{}.QuantizeWeight(vit.Site{Name: "w", Kind: vit.KindWeight}, w, 6)
	for c := 0; c < 4; c++ {
		var num, den float64
		for r := 0; r < 64; r++ {
			d := w.At(r, c) - orig.At(r, c)
			num += d * d
			den += orig.At(r, c) * orig.At(r, c)
		}
		if den == 0 {
			continue
		}
		if rel := num / den; rel > 1e-2 {
			t.Fatalf("column %d relative error %v too high for row-wise quantization", c, rel)
		}
	}
}

func TestBiScaledStaticIndexTable(t *testing.T) {
	// Channel-structured outliers (BiScaled's home turf): the calibrated
	// table must flag the hot channel and keep fine resolution elsewhere.
	src := rng.New(8)
	const cols = 16
	n := 4096 * cols
	xs := make([]float64, n)
	for i := range xs {
		if i%cols == 3 {
			xs[i] = src.Gauss(0, 20)
		} else {
			xs[i] = src.Gauss(0, 0.5)
		}
	}
	st := statsFor(vit.Site{Name: "resid1.out", Kind: vit.KindActivation}, xs, cols)
	q := BiScaled{}.CalibrateActivation(st, 6).(biScaledQuantizer)
	if !q.outlierChan[3] {
		t.Fatalf("hot channel not flagged: %v", q.outlierChan)
	}
	if got, uni := sampleMSEChannels(q, xs, cols), uniformMSEOf(xs, 6); got >= uni/2 {
		t.Fatalf("BiScaled MSE %v should be well below uniform %v on channel outliers", got, uni)
	}
}

func sampleMSEChannels(q ptq.TensorQuantizer, xs []float64, cols int) float64 {
	in := tensor.FromSlice(append([]float64(nil), xs...), len(xs)/cols, cols)
	out := q.Apply(in)
	var s float64
	for i, v := range xs {
		d := v - out.Data()[i]
		s += d * d
	}
	return s / float64(len(xs))
}

func TestBiScaledClipsPositionalOutliers(t *testing.T) {
	// An outlier arriving in an unflagged channel at inference time is
	// clipped at the fine range — the failure mode the paper describes.
	q := biScaledQuantizer{fineDelta: 0.1, ratioLog: 4, bits: 6, outlierChan: make([]bool, 4)}
	q.outlierChan[0] = true
	in := tensor.FromSlice([]float64{50, 50, 0, 0}, 1, 4)
	out := q.Apply(in)
	// Channel 0 (flagged): coarse delta 1.6 covers 50 (clip at 31*1.6).
	if out.At(0, 0) < 40 {
		t.Fatalf("flagged channel clipped: %v", out.At(0, 0))
	}
	// Channel 1 (unflagged): clipped at fine range 3.1.
	if out.At(0, 1) > 3.2 {
		t.Fatalf("unflagged outlier not clipped: %v", out.At(0, 1))
	}
}

func TestWeightQuantizersPreserveShape(t *testing.T) {
	src := rng.New(9)
	for _, meth := range []ptq.Method{BaseQ{}, PTQ4ViT{}, APQViT{}, FQViT{}, BiScaled{}} {
		w := tensor.New(24, 8)
		for i := range w.Data() {
			w.Data()[i] = src.Gauss(0, 0.1)
		}
		orig := w.Clone()
		meth.QuantizeWeight(vit.Site{Name: "w", Kind: vit.KindWeight}, w, 8)
		if w.Dim(0) != 24 || w.Dim(1) != 8 {
			t.Fatalf("%s changed the weight shape", meth.Name())
		}
		if tensor.MSE(w, orig) == 0 {
			t.Fatalf("%s left weights bit-identical", meth.Name())
		}
		// 8-bit quantization must be a small perturbation.
		if rel := tensor.MSE(w, orig) / (orig.Std() * orig.Std()); rel > 1e-3 {
			t.Fatalf("%s weight error too large: %v", meth.Name(), rel)
		}
	}
}

func TestAllMethodsHandleDegenerateStats(t *testing.T) {
	zero := statsFor(vit.Site{Name: "x", Kind: vit.KindGEMMIn}, make([]float64, 64), 8)
	for _, meth := range []ptq.Method{BaseQ{}, PTQ4ViT{}, APQViT{}, FQViT{}, BiScaled{}} {
		q := meth.CalibrateActivation(zero, 6)
		in := tensor.FromSlice([]float64{0, 0.1, -0.1}, 3)
		out := q.Apply(in)
		for _, v := range out.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s produced non-finite output on degenerate stats", meth.Name())
			}
		}
	}
}
