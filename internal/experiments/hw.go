package experiments

import (
	"fmt"
	"strings"

	"quq/internal/hweval"
	"quq/internal/memsim"
)

// Table4 returns the accelerator area/power reports in the paper's row
// order.
func Table4() []hweval.Report { return hweval.Table4() }

// FormatTable4 renders the reports in the paper's layout, followed by
// the derived relative-overhead and cross-bit-width comparisons.
func FormatTable4(reports []hweval.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-5s %-22s %-22s\n", "Method", "W/A", "16x16 PE Array", "64x64 PE Array")
	byKey := map[string]hweval.Report{}
	for _, r := range reports {
		byKey[fmt.Sprintf("%v/%d/%d", r.Config.Design, r.Config.Bits, r.Config.N)] = r
	}
	for _, bits := range []int{6, 8} {
		for _, d := range []hweval.Design{hweval.BaseQDesign, hweval.QUADesign} {
			r16 := byKey[fmt.Sprintf("%v/%d/16", d, bits)]
			r64 := byKey[fmt.Sprintf("%v/%d/64", d, bits)]
			fmt.Fprintf(&b, "%-7v %d/%-3d %7.3f mm2 %7.1f mW %7.3f mm2 %7.1f mW\n",
				d, bits, bits, r16.AreaMM2, r16.PowerMW, r64.AreaMM2, r64.PowerMW)
		}
	}
	for _, bits := range []int{6, 8} {
		for _, n := range []int{16, 64} {
			a, p := hweval.RelativeOverhead(bits, n)
			fmt.Fprintf(&b, "QUQ overhead @%d-bit %dx%d: area %+.1f%%, power %+.1f%%\n", bits, n, n, a, p)
		}
	}
	for _, n := range []int{16, 64} {
		a, p := hweval.CrossBitSavings(n)
		fmt.Fprintf(&b, "6-bit QUQ vs 8-bit BaseQ @%dx%d: area -%.1f%%, power -%.1f%%\n", n, n, a, p)
	}
	return b.String()
}

// Fig2Row is one point of the Figure 2 sweep.
type Fig2Row struct {
	Model    string
	Batch    int
	PQBytes  int64
	FQBytes  int64
	Overhead float64 // PQ/FQ − 1
}

// Fig2 regenerates the peak-memory comparison at the given bit-width
// over the paper's real ViT-S/B/L block geometries and a batch sweep.
func Fig2(bits int, batches []int) []Fig2Row {
	if bits == 0 {
		bits = 6
	}
	if len(batches) == 0 {
		batches = []int{1, 2, 4, 8, 16, 32, 64}
	}
	var rows []Fig2Row
	for _, batch := range batches {
		for _, blk := range memsim.PaperBlocks(batch) {
			pq, _ := memsim.Peak(blk, memsim.PartialQuant(bits))
			fq, _ := memsim.Peak(blk, memsim.FullQuant(bits))
			rows = append(rows, Fig2Row{
				Model:    blk.Name,
				Batch:    batch,
				PQBytes:  pq,
				FQBytes:  fq,
				Overhead: float64(pq)/float64(fq) - 1,
			})
		}
	}
	return rows
}

// FormatFig2 renders the sweep.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-6s %-12s %-12s %s\n", "Model", "Batch", "PQ peak", "FQ peak", "PQ overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %-6d %-12s %-12s %.1f%%\n",
			r.Model, r.Batch, memsim.FormatBytes(r.PQBytes), memsim.FormatBytes(r.FQBytes), 100*r.Overhead)
	}
	return b.String()
}
