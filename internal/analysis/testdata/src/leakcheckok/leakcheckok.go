// Package leakcheckok is the conforming corpus for the leakcheck
// analyzer: every goroutine is tied to a context, WaitGroup, or
// channel, so the analyzer must report nothing here.
package leakcheckok

import (
	"context"
	"sync"
)

type worker struct {
	jobs chan int
	wg   sync.WaitGroup
	sum  int
	mu   sync.Mutex
}

// start launches the serve loop tied to both the context and the jobs
// channel — either closing jobs or cancelling ctx stops it.
func (w *worker) start(ctx context.Context) {
	w.wg.Add(1)
	go func(ctx context.Context) {
		defer w.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case v, ok := <-w.jobs:
				if !ok {
					return
				}
				w.mu.Lock()
				w.sum += v
				w.mu.Unlock()
			}
		}
	}(ctx)
}

func (w *worker) stop() {
	close(w.jobs)
	w.wg.Wait()
}
