package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix forbids mixing atomic and plain access to the same struct
// field. Once any site reaches a field through sync/atomic (the field's
// address passed to atomic.LoadX/StoreX/AddX/SwapX/CompareAndSwapX),
// every access must be atomic: a plain read can see a torn or stale
// value and a plain write races the atomic ones, and the race detector
// only notices when the schedule cooperates. The typed atomics
// (atomic.Int64 et al.) make this unrepresentable, which is why the
// repo prefers them — this check polices the residual address-based
// uses. Suppress with //quq:atomic-ok <reason> for fields whose plain
// access is provably pre-publication (e.g. inside the constructor,
// before the value escapes).
var AtomicMix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "a struct field accessed via sync/atomic is never accessed non-atomically",
	Directive: "atomic-ok",
	Run:       runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Pass 1: collect fields whose address flows into sync/atomic calls,
	// remembering the selector nodes that did so (they are exempt in
	// pass 2).
	atomicFields := map[*types.Var]bool{}
	atomicUses := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := selectedField(pass.Info, sel); field != nil {
					atomicFields[field] = true
					atomicUses[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: any other selector resolving to one of those fields is a
	// mixed access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			field := selectedField(pass.Info, sel)
			if field == nil || !atomicFields[field] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races the atomic ones", field.Name())
			return true
		})
	}
}

// selectedField resolves a selector expression to the struct field it
// names, or nil when it selects a method or package member.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
