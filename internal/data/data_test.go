package data

import (
	"math"
	"testing"

	"quq/internal/rng"
	"quq/internal/vit"
)

func TestPatternDatasetBalanced(t *testing.T) {
	ds := PatternDataset(100, 16, 1)
	counts := make([]int, NumPatternClasses)
	for _, s := range ds {
		if s.Label < 0 || s.Label >= NumPatternClasses {
			t.Fatalf("label %d out of range", s.Label)
		}
		counts[s.Label]++
		if sh := s.Image.Shape(); sh[0] != 1 || sh[1] != 16 || sh[2] != 16 {
			t.Fatalf("image shape %v", sh)
		}
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want 10", c, n)
		}
	}
}

func TestPatternDatasetDeterministic(t *testing.T) {
	a := PatternDataset(20, 16, 7)
	b := PatternDataset(20, 16, 7)
	for i := range a {
		for j, v := range a[i].Image.Data() {
			if v != b[i].Image.Data()[j] {
				t.Fatal("dataset not deterministic")
			}
		}
	}
}

func TestPatternClassesDistinct(t *testing.T) {
	// Mean inter-class L2 distance must exceed mean intra-class distance
	// — otherwise the classification task is unlearnable.
	const size = 16
	src := rng.New(3)
	perClass := 8
	images := make([][][]float64, NumPatternClasses)
	for c := 0; c < NumPatternClasses; c++ {
		for i := 0; i < perClass; i++ {
			images[c] = append(images[c], PatternImage(c, size, src).Data())
		}
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	var intra, inter float64
	var nIntra, nInter int
	for c := 0; c < NumPatternClasses; c++ {
		for i := 0; i < perClass; i++ {
			for j := i + 1; j < perClass; j++ {
				intra += dist(images[c][i], images[c][j])
				nIntra++
			}
			for c2 := c + 1; c2 < NumPatternClasses; c2++ {
				inter += dist(images[c][i], images[c2][i])
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if inter <= intra {
		t.Fatalf("inter-class distance %v not above intra-class %v", inter, intra)
	}
}

func TestPatternSamplesMultiChannel(t *testing.T) {
	samples := PatternSamples(3, 32, 30, 5)
	if len(samples) != 30 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if sh := s.Image.Shape(); sh[0] != 3 || sh[1] != 32 {
			t.Fatalf("shape %v", sh)
		}
	}
	// Channels carry the same pattern up to gain: high cross-channel
	// correlation within an image.
	img := samples[0].Image
	n := 32 * 32
	c0 := img.Data()[:n]
	c1 := img.Data()[n : 2*n]
	var dot, n0, n1 float64
	for i := range c0 {
		dot += c0[i] * c1[i]
		n0 += c0[i] * c0[i]
		n1 += c1[i] * c1[i]
	}
	if corr := dot / math.Sqrt(n0*n1); corr < 0.8 {
		t.Fatalf("cross-channel correlation %v, want pattern shared across channels", corr)
	}
}

func TestImagesGeometryAndNormalization(t *testing.T) {
	imgs := Images(vit.ViTSmall, 5, 9)
	if len(imgs) != 5 {
		t.Fatalf("got %d images", len(imgs))
	}
	for _, img := range imgs {
		if sh := img.Shape(); sh[0] != 3 || sh[1] != 32 || sh[2] != 32 {
			t.Fatalf("shape %v", sh)
		}
		if m := img.Mean(); math.Abs(m) > 1e-9 {
			t.Fatalf("mean %v, want standardized", m)
		}
		if s := img.Std(); math.Abs(s-1) > 1e-9 {
			t.Fatalf("std %v, want 1", s)
		}
	}
}

func TestCalibrationDisjointFromEval(t *testing.T) {
	calib := CalibrationSet(vit.ViTNano, 3, 42)
	eval := Images(vit.ViTNano, 3, 42)
	same := 0
	for i := range calib {
		if calib[i].Data()[0] == eval[i].Data()[0] {
			same++
		}
	}
	if same == len(calib) {
		t.Fatal("calibration images identical to eval images at the same seed")
	}
}

func TestPatternImageAllClassesFinite(t *testing.T) {
	src := rng.New(11)
	for c := 0; c < NumPatternClasses; c++ {
		img := PatternImage(c, 16, src)
		for _, v := range img.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("class %d produced non-finite pixel", c)
			}
		}
	}
}

func TestImageFromFlat(t *testing.T) {
	cfg := vit.ViTNano // 1×16×16
	n := cfg.Channels * cfg.ImageSize * cfg.ImageSize
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i) / float64(n)
	}
	img, err := ImageFromFlat(cfg, vals)
	if err != nil {
		t.Fatal(err)
	}
	if img.Dim(0) != cfg.Channels || img.Dim(1) != cfg.ImageSize || img.Dim(2) != cfg.ImageSize {
		t.Fatalf("shape %v", img.Shape())
	}
	if img.At(0, 0, 1) != vals[1] {
		t.Fatal("layout mismatch: not channel-major row-major")
	}
	// The tensor must not alias the request buffer.
	vals[1] = 99
	if img.At(0, 0, 1) == 99 {
		t.Fatal("ImageFromFlat aliases the caller's slice")
	}

	if _, err := ImageFromFlat(cfg, vals[:n-1]); err == nil {
		t.Fatal("short slice accepted")
	}
	vals[3] = math.NaN()
	if _, err := ImageFromFlat(cfg, vals); err == nil {
		t.Fatal("NaN pixel accepted")
	}
	vals[3] = math.Inf(1)
	if _, err := ImageFromFlat(cfg, vals); err == nil {
		t.Fatal("Inf pixel accepted")
	}
}
