// Package experiments regenerates every table and figure of the QUQ
// paper's evaluation (§6) on this repository's substrates: Table 1
// (quantization MSE), Tables 2–3 (partially/fully quantized accuracy),
// Table 4 (accelerator area/power), Figure 2 (peak memory), Figure 3
// (distributions and quantization points) and Figure 7 (attention-map
// retention), plus the ablations DESIGN.md calls out.
//
// Each experiment is a function returning typed rows; cmd/quq renders
// them as tables, and the root-level benchmarks time them.
package experiments

import (
	"fmt"

	"quq/internal/data"
	"quq/internal/nn"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// ZooOptions scales the model-zoo experiments: the full settings
// regenerate the paper tables, the quick settings keep unit tests and
// benchmarks fast.
type ZooOptions struct {
	// Configs to evaluate (default: the six paper models).
	Configs []vit.Config
	// TrainImages per model for head fitting (default 300).
	TrainImages int
	// EvalImages for top-1 accuracy (default 200).
	EvalImages int
	// CalibImages for PTQ calibration (default 32, as in the paper).
	CalibImages int
	// Seed drives all randomness.
	Seed uint64
}

func (o *ZooOptions) defaults() {
	if len(o.Configs) == 0 {
		o.Configs = vit.ZooConfigs
	}
	if o.TrainImages == 0 {
		o.TrainImages = 300
	}
	if o.EvalImages == 0 {
		o.EvalImages = 150
	}
	if o.CalibImages == 0 {
		o.CalibImages = 32
	}
	if o.Seed == 0 {
		o.Seed = 2024
	}
}

// ZooModel is one prepared ("pretrained") proxy model with its evaluation
// and calibration workloads.
type ZooModel struct {
	Cfg    vit.Config
	Model  vit.Model
	Calib  []*tensor.Tensor
	Images []*tensor.Tensor
	Labels []int
	// FP32Acc is the unquantized model's top-1 on the eval set — the
	// "Original" row of Tables 2–3.
	FP32Acc float64
}

// BuildZoo prepares the models: synthetic backbone with trained-ViT
// activation statistics, head fitted on the pattern task (the repo's
// substitution for pretrained ImageNet checkpoints — DESIGN.md).
func BuildZoo(opts ZooOptions) []*ZooModel {
	opts.defaults()
	var out []*ZooModel
	for i, cfg := range opts.Configs {
		seed := opts.Seed + uint64(i)*1000
		m, _ := nn.PretrainedZoo(cfg, seed, opts.TrainImages)
		test := data.PatternSamples(cfg.Channels, cfg.ImageSize, opts.EvalImages, seed^0x7E57)
		images := make([]*tensor.Tensor, len(test))
		labels := make([]int, len(test))
		for j, s := range test {
			images[j] = s.Image
			labels[j] = s.Label
		}
		zm := &ZooModel{
			Cfg:    cfg,
			Model:  m,
			Calib:  data.CalibrationSet(cfg, opts.CalibImages, seed),
			Images: images,
			Labels: labels,
		}
		zm.FP32Acc = ptq.Accuracy(ptq.ModelClassifier{M: m}, images, labels)
		out = append(out, zm)
	}
	return out
}

// Pct renders a [0,1] accuracy as the paper's percentage convention.
func Pct(v float64) string { return fmt.Sprintf("%.2f", 100*v) }
