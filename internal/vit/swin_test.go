package vit

import (
	"testing"

	"quq/internal/rng"
	"quq/internal/tensor"
)

// TestWindowIsolationWithoutShift: in a block run with nSeq windows,
// attention must be confined to each window — perturbing a token in one
// window must not change any other window's outputs.
func TestWindowIsolationWithoutShift(t *testing.T) {
	const dim, heads, tokens, windows = 16, 2, 4, 3
	src := rng.New(1)
	b := NewBlock(dim, heads, 2)
	for _, l := range []*Linear{b.QKV, b.Proj, b.FC1, b.FC2} {
		for i := range l.W.Data() {
			l.W.Data()[i] = src.Gauss(0, 0.2)
		}
	}
	x := tensor.New(windows*tokens, dim)
	for i := range x.Data() {
		x.Data()[i] = src.Gauss(0, 1)
	}
	base := b.Forward(x, windows, 0, ForwardOpts{})

	// Perturb a token in window 0.
	x2 := x.Clone()
	x2.Row(1)[3] += 5
	out := b.Forward(x2, windows, 0, ForwardOpts{})

	// Window 0 rows must change; windows 1 and 2 must be identical.
	changed := false
	for r := 0; r < tokens; r++ {
		for c := 0; c < dim; c++ {
			if base.At(r, c) != out.At(r, c) {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("perturbation had no effect within its own window")
	}
	for r := tokens; r < windows*tokens; r++ {
		for c := 0; c < dim; c++ {
			if base.At(r, c) != out.At(r, c) {
				t.Fatalf("window isolation violated at token %d", r)
			}
		}
	}
}

// TestSwinShiftMixesWindows: with the cyclic shift active on alternating
// blocks, information must propagate beyond a single window across the
// full Swin forward — unlike a (hypothetical) shift-free stack.
func TestSwinShiftMixesWindows(t *testing.T) {
	m := New(SwinTiny, 7)
	img := testImage(SwinTiny, 8)
	base := m.Forward(img, ForwardOpts{})

	// Perturb one pixel in the top-left corner; with shifted windows the
	// change reaches the pooled logits (trivially true), but more
	// specifically the change must reach *beyond* the first-stage window
	// containing it. We verify via a tap on the final stage input.
	var baseLast, pertLast *tensor.Tensor
	tapLast := func(dst **tensor.Tensor) Tap {
		return func(s Site, x *tensor.Tensor) *tensor.Tensor {
			if s.Name == "head.in" {
				*dst = x.Clone()
			}
			return x
		}
	}
	m.Forward(img, ForwardOpts{Tap: tapLast(&baseLast)})
	img2 := img.Clone()
	img2.Set(img2.At(0, 0, 0)+3, 0, 0, 0)
	m.Forward(img2, ForwardOpts{Tap: tapLast(&pertLast)})

	diffRows := 0
	for r := 0; r < baseLast.Dim(0); r++ {
		for c := 0; c < baseLast.Dim(1); c++ {
			if baseLast.At(r, c) != pertLast.At(r, c) {
				diffRows++
				break
			}
		}
	}
	// After two stages of patch merging the final grid is 4x4 = 16
	// tokens; the perturbation must have spread to most of them.
	if diffRows < baseLast.Dim(0)/2 {
		t.Fatalf("perturbation reached only %d/%d final tokens — shift not mixing windows", diffRows, baseLast.Dim(0))
	}
	_ = base
}

// TestSwinStageGeometry verifies the token counts through the stages via
// the tap shapes.
func TestSwinStageGeometry(t *testing.T) {
	m := New(SwinTiny, 9)
	shapes := map[int][]int{}
	m.Forward(testImage(SwinTiny, 10), ForwardOpts{
		Tap: func(s Site, x *tensor.Tensor) *tensor.Tensor {
			if s.Name == "resid2.out" {
				shapes[s.Block] = append([]int(nil), x.Shape()...)
			}
			return x
		},
	})
	// Stages: blocks 0-1 at 16x16=256 tokens dim 48, blocks 2-3 at 64
	// tokens dim 96, blocks 4-5 at 16 tokens dim 192.
	want := map[int][]int{
		0: {256, 48}, 1: {256, 48},
		2: {64, 96}, 3: {64, 96},
		4: {16, 192}, 5: {16, 192},
	}
	for blk, sh := range want {
		got := shapes[blk]
		if len(got) != 2 || got[0] != sh[0] || got[1] != sh[1] {
			t.Errorf("block %d shape %v, want %v", blk, got, sh)
		}
	}
}

// TestRegisterTokenProperties: the register token must dominate the
// residual stream's range while staying out of the classification
// readout's way.
func TestRegisterTokenProperties(t *testing.T) {
	m := New(ViTSmall, 11).(*ViT)
	if m.Reg == nil {
		t.Fatal("ViT-S proxy must carry a register token")
	}
	img := testImage(ViTSmall, 12)
	var resid *tensor.Tensor
	m.Forward(img, ForwardOpts{Tap: func(s Site, x *tensor.Tensor) *tensor.Tensor {
		if s.Block == 2 && s.Name == "resid2.out" {
			resid = x.Clone()
		}
		return x
	}})
	// The register row (row 1: after cls) must hold the extreme values.
	regRow := resid.Row(1)
	regMax := 0.0
	for _, v := range regRow {
		if a := abs(v); a > regMax {
			regMax = a
		}
	}
	othersMax := 0.0
	for r := 2; r < resid.Dim(0); r++ {
		for _, v := range resid.Row(r) {
			if a := abs(v); a > othersMax {
				othersMax = a
			}
		}
	}
	if regMax < 4*othersMax {
		t.Fatalf("register row absmax %v not dominating patch tokens %v", regMax, othersMax)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
