package ptq

import (
	"fmt"
	"math"

	"quq/internal/accel"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// IntEngine is the fully-integer weight path: a vit.GEMMEngine that runs
// every weight GEMM of a QUQ-quantized model on resident pre-shifted
// int64 operands through the tensor kernel layer, never touching the
// float64 weight tensors. It is built once per model (NewIntEngine) from
// the fake-quantized weights and reused across forward passes; per-call
// state is arena scratch only, so the engine is safe for concurrent use.
//
// Numerics: the integer dot product is exact — the engine computes the
// mathematically exact sum Σ mx·mw of the operands' integer codes, then
// scales once by Δx·Δw in the float epilogue (plus the float bias). The
// float path accumulates the same products in float64 with per-step
// rounding, so logits agree to ~1 ulp of the accumulation, not bit-for-
// bit; downstream consumers that need cross-backend byte identity
// compare on a coarse requantized grid (see the serve bench and chaos
// checks).
type IntEngine struct {
	ops map[string]*intOp
}

// intOp is one weight site's resident state.
type intOp struct {
	// prep is the weight operand, decoded once to pre-shifted int64.
	prep *accel.PreparedOperand
	// xDelta is the GEMM input's base Δ; xInv its reciprocal for the
	// integer-recovery multiply; unit = xDelta·prep.Delta converts one
	// accumulator unit to a real value.
	xDelta, xInv, unit float64
}

// NewIntEngine prepares the integer weight path for a quantized model.
// The build is all-or-nothing: every weight site must have recorded
// quantizer parameters (WeightParams, i.e. the model was quantized with
// a WeightParamsRecorder method such as QUQ), a QUQ activation quantizer
// on its GEMM input, weights exactly on their quantizer's integer grid,
// and a worst-case accumulator within int64 bounds. Any gap fails the
// whole build rather than leaving a model that silently mixes backends.
func NewIntEngine(q *QuantizedModel) (*IntEngine, error) {
	if q.WeightParams == nil {
		return nil, fmt.Errorf("ptq: model has no recorded weight params (method %q); int path needs a WeightParamsRecorder method", q.Method)
	}
	e := &IntEngine{ops: make(map[string]*intOp)}
	var err error
	q.Model.ForEachWeight(func(site vit.Site, l *vit.Linear) {
		if err != nil {
			return
		}
		wp := q.WeightParams[site.Key()]
		if wp == nil {
			err = fmt.Errorf("ptq: weight site %s has no recorded params", site.Key())
			return
		}
		inSite, ok := weightInputSite(site)
		if !ok {
			err = fmt.Errorf("ptq: weight site %s has no input-site mapping", site.Key())
			return
		}
		tq, ok := q.Acts[inSite.Key()].(QUQTensorQuantizer)
		if !ok {
			err = fmt.Errorf("ptq: GEMM input %s of weight %s has no QUQ activation quantizer", inSite.Key(), site.Key())
			return
		}
		prep, perr := accel.PrepareQuantized(wp, l.W.Data(), l.W.Dim(0), l.W.Dim(1))
		if perr != nil {
			err = fmt.Errorf("ptq: weight site %s: %w", site.Key(), perr)
			return
		}
		// Worst case |Σ mx·mw| ≤ k·max|mx|·max|mw| must stay clear of
		// int64 wrap; 2^62 leaves a 2× safety margin.
		xMax := tq.Params.MaxCodeMag()
		if float64(l.In())*float64(xMax)*float64(prep.MaxAbs) > math.Ldexp(1, 62) {
			err = fmt.Errorf("ptq: weight site %s: worst-case accumulator k=%d·%d·%d exceeds 2^62", site.Key(), l.In(), xMax, prep.MaxAbs)
			return
		}
		xd := tq.Params.BaseDelta()
		e.ops[site.Key()] = &intOp{prep: prep, xDelta: xd, xInv: 1 / xd, unit: xd * prep.Delta}
	})
	if err != nil {
		return nil, err
	}
	if len(e.ops) == 0 {
		return nil, fmt.Errorf("ptq: model has no weight sites")
	}
	return e, nil
}

// Linear implements vit.GEMMEngine. The input tensor is expected to be
// fake-quantized by the site's activation quantizer (the quantizing tap
// runs before the GEMM), so each element is a grid point m·Δx whose
// integer code the engine recovers exactly; any element off the grid —
// e.g. an instrumentation tap replaced the tensor — falls back to the
// float path for the whole call, never computing a wrong result. The
// weight side uses the resident integer operand; the only float64 work
// is the epilogue scale-and-bias at the decode boundary.
//
//quq:hotpath per-inference integer weight GEMM; all scratch is arena-pooled, the destination comes from the caller
func (e *IntEngine) Linear(site vit.Site, l *vit.Linear, dst, x *tensor.Tensor) bool {
	op, ok := e.ops[site.Key()]
	if !ok {
		return false
	}
	rows, k := x.Dim(0), x.Dim(1)
	n := op.prep.Cols
	if k != op.prep.Rows || dst.Dim(0) != rows || dst.Dim(1) != n {
		return false
	}
	ar := tensor.GetArena()
	defer ar.Release()
	vx := ar.Int64(rows * k)
	for i, v := range x.Data() {
		m := int64(math.RoundToEven(v * op.xInv))
		//quq:float-ok integer-recovery verification at the encode boundary: exact comparison against the activation grid, not datapath arithmetic
		if float64(m)*op.xDelta != v {
			ar.PutInt64(vx)
			return false
		}
		vx[i] = m
	}
	acc := ar.Int64(rows * n)
	tensor.IntMatMulInto(acc, vx, op.prep.V, rows, k, n)
	ar.PutInt64(vx)
	dd := dst.Data()
	for r := 0; r < rows; r++ {
		arow := acc[r*n : (r+1)*n]
		drow := dd[r*n : (r+1)*n]
		for j, a := range arow {
			//quq:float-ok decode boundary: one scale of the exact integer accumulator plus the float bias
			drow[j] = float64(a)*op.unit + l.B[j]
		}
	}
	ar.PutInt64(acc)
	return true
}

// assert the interface is satisfied.
var _ vit.GEMMEngine = (*IntEngine)(nil)
