// Quickstart: calibrate a quadruplet uniform quantizer on a long-tailed
// tensor with the progressive relaxation algorithm, compare it against
// symmetric uniform quantization, and round-trip values through the QUB
// hardware encoding.
package main

import (
	"fmt"
	"log"
	"math"

	"quq/internal/dist"
	"quq/internal/quant"
	"quq/internal/qub"
	"quq/internal/rng"
)

func main() {
	// A post-GELU-shaped tensor: bounded negatives, long positive tail —
	// the asymmetric case QUQ's mode system exists for.
	xs := dist.Sample(dist.PostGELU, 1<<15, rng.New(42))

	// Calibrate 6-bit QUQ with the paper's hyperparameters
	// (λ_A=4, q=0.99, q_A=0.95).
	p := quant.PRA(xs, 6, quant.DefaultPRAOptions())
	fmt.Println("calibrated quantizer:", p)
	fmt.Println("selected mode:       ", p.Mode)
	fmt.Println("base Δ (Eq. 4):      ", p.BaseDelta())
	for _, s := range []quant.Slot{quant.FNeg, quant.FPos, quant.CNeg, quant.CPos} {
		if sp := p.Slot(s); sp.Enabled {
			fmt.Printf("  subrange %v: Δ=%.5g (shift %d), magnitudes up to %d\n",
				s, sp.Delta, p.Shift(s), sp.MaxMag)
		}
	}

	// MSE against the uniform baseline.
	absmax := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	uni := quant.UniformMSE(xs, quant.UniformDelta(absmax, 6), 6)
	fmt.Printf("\nMSE: uniform %.3e  quq %.3e  (%.1fx lower)\n", uni, p.MSE(xs), uni/p.MSE(xs))

	// QUB encoding: every value becomes one byte-sized code word plus
	// two per-tensor FC registers.
	regs, err := qub.RegistersFor(p)
	if err != nil {
		log.Fatal(err)
	}
	fp, err := regs.F.Pack()
	if err != nil {
		log.Fatal(err)
	}
	cp, err := regs.C.Pack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFC registers: F=%08b C=%08b\n", fp, cp)
	for _, x := range []float64{0.01, -0.1, 0.4, 3.0} {
		w := qub.EncodeValue(p, x)
		d := qub.Decode(w, regs)
		fmt.Printf("  x=%+.3f -> word %06b -> D=%+d << %d -> %+.4f\n",
			x, w, d.D, d.Nsh, d.Value(regs.BaseDelta))
	}
}
