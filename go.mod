module quq

go 1.22
