package chaos

import (
	"fmt"
	"os"

	"quq/internal/rng"
)

// CorruptFile flips nFlips deterministically-chosen bits in the file at
// path — the snapshot-corruption fault. Positions and bit indexes are
// drawn from seed through internal/rng, so a replayed script damages
// exactly the same bytes and the downstream quarantine/repair counts
// stay byte-identical across runs. The file is rewritten in place (no
// atomic dance: simulating torn on-disk state is the point).
func CorruptFile(path string, seed uint64, nFlips int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: corrupting %s: %w", path, err)
	}
	if len(data) == 0 {
		return fmt.Errorf("chaos: corrupting %s: file is empty", path)
	}
	src := rng.New(seed)
	for i := 0; i < nFlips; i++ {
		pos := src.Intn(len(data))
		bit := src.Intn(8)
		data[pos] ^= 1 << bit
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("chaos: corrupting %s: %w", path, err)
	}
	return nil
}

// TruncateFile cuts the file at path down to a deterministic fraction
// of its size (at least one byte removed) — the torn-write fault a
// crash mid-append leaves behind.
func TruncateFile(path string, seed uint64) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("chaos: truncating %s: %w", path, err)
	}
	size := info.Size()
	if size < 1 {
		return fmt.Errorf("chaos: truncating %s: file is empty", path)
	}
	src := rng.New(seed)
	keep := int64(src.Intn(int(size)))
	if err := os.Truncate(path, keep); err != nil {
		return fmt.Errorf("chaos: truncating %s: %w", path, err)
	}
	return nil
}
