// Command quq-serve runs the concurrent batched inference service: an
// HTTP/JSON front-end over the PTQ pipeline with a lazily populated
// quantized-model registry and a micro-batching scheduler.
//
// Usage:
//
//	quq-serve [-addr :8642] [-ckpt artifacts/vit-nano.ckpt] [flags]
//	quq-serve -smoke    # self-test round trip on an ephemeral port
//
// Endpoints:
//
//	POST /v1/classify   classify images with a (model, method, bits, regime)
//	POST /v1/quantize   warm a registry entry without classifying
//	GET  /models        servable configs, methods, cached entries
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus-style text exposition
//
// SIGINT/SIGTERM triggers a graceful drain: admission stops, pending
// micro-batches flush, in-flight forwards finish, then the process
// exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"quq/internal/data"
	"quq/internal/serve"
	"quq/internal/vit"
)

func main() {
	var (
		addr     = flag.String("addr", ":8642", "listen address")
		ckpt     = flag.String("ckpt", "", "ViT-Nano checkpoint path (empty: synthetic weights)")
		seed     = flag.Uint64("seed", 2024, "base weight/calibration seed")
		calib    = flag.Int("calib", 32, "calibration images per model build")
		maxBatch = flag.Int("max-batch", 8, "micro-batch dispatch threshold (images)")
		linger   = flag.Duration("linger", 2*time.Millisecond, "max wait for a micro-batch to fill")
		queue    = flag.Int("queue", 256, "admitted-image queue capacity (backpressure beyond)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request timeout, including first-request calibration")
		maxBody  = flag.Int64("max-body", 8<<20, "request body size limit in bytes")
		smoke    = flag.Bool("smoke", false, "start on an ephemeral port, run a quantize+classify round trip, exit")
		intPath  = flag.Bool("int-path", false, "run QUQ-method weight GEMMs on resident integer operands (no float64 weight rehydration); requantized outputs are byte-identical to the float path")
		snapDir  = flag.String("snapshot-dir", "", "directory for checksummed calibration snapshots; every successful build is persisted atomically and a restart warm-loads verified snapshots instead of recalibrating (empty disables durability)")

		latencyBudget  = flag.Duration("latency-budget", 0, "default per-request latency budget; estimated queue waits beyond it shed with 429 (0 disables; X-Quq-Latency-Budget overrides per request)")
		governorWindow = flag.Duration("governor-window", 0, "occupancy window for the adaptive scheduler (0 disables adaptation: static linger and min-intraop workers)")
		minIntraOp     = flag.Int("min-intraop", 1, "per-batch intra-op worker floor the governor shrinks to under load")
		maxIntraOp     = flag.Int("max-intraop", runtime.GOMAXPROCS(0), "per-batch intra-op worker ceiling granted at low occupancy")
	)
	flag.Parse()
	log.SetFlags(0)

	cfg := serve.Config{
		Registry: serve.RegistryOptions{
			Seed:        *seed,
			CalibImages: *calib,
			Checkpoint:  *ckpt,
			IntPath:     *intPath,
			SnapshotDir: *snapDir,
		},
		Batcher: serve.BatcherOptions{
			MaxBatch:      *maxBatch,
			Linger:        *linger,
			QueueCap:      *queue,
			LatencyBudget: *latencyBudget,
		},
		Governor: serve.GovernorOptions{
			Window:     *governorWindow,
			MinIntraOp: *minIntraOp,
			MaxIntraOp: *maxIntraOp,
		},
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
	}

	if *smoke {
		// Keep the self-test cheap: two calibration images on ViT-Nano.
		cfg.Registry.CalibImages = 2
		if err := runSmoke(cfg); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		log.Printf("smoke: ok")
		return
	}

	if err := run(cfg, *addr); err != nil {
		log.Fatal(err)
	}
}

// run serves until SIGINT/SIGTERM, then drains gracefully.
func run(cfg serve.Config, addr string) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	s := serve.New(cfg)
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("quq-serve listening on %s", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received; draining")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := s.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("drained; bye")
	return nil
}

// runSmoke boots the server on an ephemeral loopback port and drives one
// quantize + classify round trip through the real HTTP stack.
func runSmoke(cfg serve.Config) error {
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	var serving sync.WaitGroup
	defer serving.Wait()
	serving.Add(1)
	go func() {
		// Serve returns ErrServerClosed on Shutdown; the smoke result is
		// judged by the round trip below, not by this exit path.
		defer serving.Done()
		_ = httpSrv.Serve(ln)
	}()
	base := "http://" + ln.Addr().String()

	// The quantize carries a replica-slot stamp, the way a replicating
	// quq-shard front-end would send it; /models must reflect it back.
	req := map[string]any{"model": vit.ViTNano.Name, "method": "QUQ", "bits": 6}
	var warm struct {
		Key     string  `json:"key"`
		Cached  bool    `json:"cached"`
		BuildMS float64 `json:"build_ms"`
	}
	if err := postJSON(base+"/v1/quantize", req, &warm, http.Header{serve.ReplicaHeader: []string{"0"}}); err != nil {
		return fmt.Errorf("quantize: %w", err)
	}
	log.Printf("smoke: quantized %s in %.0fms (cached=%v)", warm.Key, warm.BuildMS, warm.Cached)

	img := data.Images(vit.ViTNano, 1, 4242)[0]
	req["images"] = [][]float64{img.Data()}
	var cls struct {
		Key     string `json:"key"`
		Results []struct {
			ArgMax int       `json:"argmax"`
			Logits []float64 `json:"logits"`
		} `json:"results"`
	}
	if err := postJSON(base+"/v1/classify", req, &cls, nil); err != nil {
		return fmt.Errorf("classify: %w", err)
	}
	if len(cls.Results) != 1 || len(cls.Results[0].Logits) != vit.ViTNano.Classes {
		return fmt.Errorf("classify: malformed response %+v", cls)
	}
	log.Printf("smoke: classified via %s -> argmax %d", cls.Key, cls.Results[0].ArgMax)

	var models struct {
		Entries []serve.EntryInfo `json:"entries"`
	}
	if err := getJSON(base+"/models", &models); err != nil {
		return fmt.Errorf("models: %w", err)
	}
	found := false
	for _, e := range models.Entries {
		if e.Key == warm.Key {
			found = true
			if !e.Ready || e.Replica != 0 {
				return fmt.Errorf("models entry %s: ready=%v replica=%d, want ready at replica 0", e.Key, e.Ready, e.Replica)
			}
		}
	}
	if !found {
		return fmt.Errorf("models: warmed key %s missing from entries", warm.Key)
	}
	log.Printf("smoke: /models reflects %s ready at replica 0", warm.Key)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !bytes.Contains(body, []byte("quq_serve_requests_total")) {
		return fmt.Errorf("metrics: missing quq_serve_requests_total in exposition")
	}

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := s.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

// postJSON posts v with optional extra headers and decodes the response
// into out, treating non-2xx statuses as errors.
func postJSON(url string, v, out any, extra http.Header) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(url, resp, out)
}

// getJSON fetches one JSON page.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeResponse(url, resp, out)
}

// decodeResponse reads, closes and decodes one response, treating
// non-200 statuses as errors.
func decodeResponse(url string, resp *http.Response, out any) error {
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
