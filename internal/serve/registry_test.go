package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"quq/internal/ptq"
	"quq/internal/vit"
)

// testRegistryOptions keeps calibration cheap: ViT-Nano, 2 images, small
// reservoirs.
func testRegistryOptions() RegistryOptions {
	return RegistryOptions{Seed: 7, CalibImages: 2, MaxSamplesPerSite: 2048}
}

func nanoKey(method string, regime ptq.Regime) Key {
	return Key{Config: vit.ViTNano.Name, Method: method, Bits: 6, Regime: regime}
}

// TestRegistrySingleflight is the calibrate-exactly-once guarantee: 16
// concurrent first requests for one key must produce one build (one
// cache miss) and the identical *QuantizedModel pointer.
func TestRegistrySingleflight(t *testing.T) {
	met := NewMetrics()
	r := NewRegistry(testRegistryOptions(), met)
	key := nanoKey("BaseQ", ptq.Partial)

	const callers = 16
	models := make([]*ptq.QuantizedModel, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qm, _, err := r.Get(context.Background(), key)
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = qm
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatal("concurrent Gets returned different model instances")
		}
	}
	if got := met.CacheMisses.Value(); got != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 calibration", got)
	}
	if got := met.CacheHits.Value(); got != callers-1 {
		t.Fatalf("cache hits = %d, want %d", got, callers-1)
	}

	// A second key on the same config reuses the base model: one more
	// miss, no divergent base build.
	if _, cached, err := r.Get(context.Background(), nanoKey("BaseQ", ptq.Full)); err != nil || cached {
		t.Fatalf("second key: cached=%v err=%v", cached, err)
	}
	if got := met.CacheMisses.Value(); got != 2 {
		t.Fatalf("cache misses after second key = %d, want 2", got)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry(testRegistryOptions(), nil)
	cases := []Key{
		{Config: "no-such-model", Method: "QUQ", Bits: 6, Regime: ptq.Partial},
		{Config: vit.ViTNano.Name, Method: "no-such-method", Bits: 6, Regime: ptq.Partial},
		{Config: vit.ViTNano.Name, Method: "QUQ", Bits: 2, Regime: ptq.Partial},
		{Config: vit.ViTNano.Name, Method: "QUQ", Bits: 99, Regime: ptq.Partial},
	}
	for _, key := range cases {
		if _, _, err := r.Get(context.Background(), key); err == nil {
			t.Fatalf("key %v accepted, want validation error", key)
		}
	}
	if _, err := ParseRegime("bogus"); err == nil {
		t.Fatal("bogus regime accepted")
	}
	if reg, err := ParseRegime(""); err != nil || reg != ptq.Partial {
		t.Fatalf("empty regime = %v, %v; want partial", reg, err)
	}
}

// TestCanonicalKey pins the canonical form: case-insensitive model and
// method spelling, defaults for empty fields, and rejection of unknown
// enum values. The canonical string is what quq-shard hashes, so "Quq"
// and "quq" resolving to one spelling is what keeps one selection on one
// shard.
func TestCanonicalKey(t *testing.T) {
	for _, c := range []struct {
		model, method string
		bits          int
		regime        string
		want          string
	}{
		{"", "", 0, "", "ViT-Nano/QUQ/w6a6/partial"},
		{"vit-nano", "quq", 6, "partial", "ViT-Nano/QUQ/w6a6/partial"},
		{"VIT-NANO", "Quq", 6, "PARTIAL", "ViT-Nano/QUQ/w6a6/partial"},
		{"ViT-S", "fq-vit", 8, "Full", "ViT-S/FQ-ViT/w8a8/full"},
		{"swin-t", "biscaled-fxp", 4, "", "Swin-T/BiScaled-FxP/w4a4/partial"},
	} {
		key, err := KeyFromWire(c.model, c.method, c.bits, c.regime)
		if err != nil {
			t.Fatalf("KeyFromWire(%q, %q, %d, %q): %v", c.model, c.method, c.bits, c.regime, err)
		}
		if key.String() != c.want {
			t.Errorf("KeyFromWire(%q, %q, %d, %q) = %s; want %s",
				c.model, c.method, c.bits, c.regime, key, c.want)
		}
	}

	for _, c := range []struct {
		model, method string
		bits          int
		regime        string
	}{
		{"no-such-model", "QUQ", 6, ""},
		{"ViT-Nano", "no-such-method", 6, ""},
		{"ViT-Nano", "QUQ", 2, ""},
		{"ViT-Nano", "QUQ", 17, ""},
		{"ViT-Nano", "QUQ", 6, "bogus"},
		// A method name where a model belongs (and vice versa) must not
		// canonicalize across namespaces.
		{"QUQ", "QUQ", 6, ""},
		{"ViT-Nano", "ViT-S", 6, ""},
	} {
		if key, err := KeyFromWire(c.model, c.method, c.bits, c.regime); err == nil {
			t.Errorf("KeyFromWire(%q, %q, %d, %q) = %s; want error",
				c.model, c.method, c.bits, c.regime, key)
		}
	}
}

// TestRegistryCanonicalizationDedupes proves the fix at the cache level:
// two spellings of one selection share a single build slot.
func TestRegistryCanonicalizationDedupes(t *testing.T) {
	met := NewMetrics()
	r := NewRegistry(testRegistryOptions(), met)
	for _, method := range []string{"BaseQ", "baseq", "BASEQ"} {
		if _, _, err := r.Get(context.Background(), nanoKey(method, ptq.Partial)); err != nil {
			t.Fatal(err)
		}
	}
	if got := met.CacheMisses.Value(); got != 1 {
		t.Fatalf("cache misses across spellings = %d, want exactly 1", got)
	}
	if entries := r.Entries(); len(entries) != 1 {
		t.Fatalf("registry entries = %d, want 1 canonical entry", len(entries))
	}
}

func TestRegistryEntriesDeterministic(t *testing.T) {
	r := NewRegistry(testRegistryOptions(), nil)
	for _, m := range []string{"BaseQ", "QUQ"} {
		if _, _, err := r.Get(context.Background(), nanoKey(m, ptq.Partial)); err != nil {
			t.Fatal(err)
		}
	}
	a := r.Entries()
	b := r.Entries()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("entries = %d, want 2", len(a))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatal("two Entries snapshots ordered differently")
		}
		if !a[i].Ready {
			t.Fatalf("entry %s not ready after Get returned", a[i].Key)
		}
	}
	if a[0].Key >= a[1].Key {
		t.Fatalf("entries not sorted: %s >= %s", a[0].Key, a[1].Key)
	}
}

// TestRegistryBuildSurvivesCallerCancellation: the calibrate-once
// contract under a disconnecting client — the first caller's context
// expires mid-build, the build still completes on its detached
// goroutine, and the next request is served from cache with no second
// calibration.
func TestRegistryBuildSurvivesCallerCancellation(t *testing.T) {
	met := NewMetrics()
	opts := testRegistryOptions()
	var mu sync.Mutex
	builds := 0
	gate := make(chan struct{})
	opts.BuildHook = func(Key) error {
		mu.Lock()
		builds++
		mu.Unlock()
		<-gate
		return nil
	}
	r := NewRegistry(opts, met)
	key := nanoKey("BaseQ", ptq.Partial)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Get(ctx, key); err != context.Canceled {
		t.Fatalf("cancelled first Get = %v, want context.Canceled", err)
	}
	close(gate) // let the detached build finish

	qm, cached, err := r.Get(context.Background(), key)
	if err != nil || qm == nil {
		t.Fatalf("second Get after abandoned first: qm=%v err=%v", qm, err)
	}
	if !cached {
		t.Fatal("second Get rebuilt instead of hitting the abandoned build's cache entry")
	}
	mu.Lock()
	got := builds
	mu.Unlock()
	if got != 1 {
		t.Fatalf("calibrations = %d, want exactly 1 despite the disconnected first caller", got)
	}
	if met.CacheMisses.Value() != 1 {
		t.Fatalf("cache misses = %d, want 1", met.CacheMisses.Value())
	}
}

// TestRegistryFailedBuildEvictedAndRetried: a transient calibration
// failure must not poison the key — the errored entry is evicted and
// the next request rebuilds successfully.
func TestRegistryFailedBuildEvictedAndRetried(t *testing.T) {
	met := NewMetrics()
	opts := testRegistryOptions()
	var mu sync.Mutex
	builds := 0
	opts.BuildHook = func(Key) error {
		mu.Lock()
		defer mu.Unlock()
		builds++
		if builds == 1 {
			return errors.New("chaos: injected calibration failure")
		}
		return nil
	}
	r := NewRegistry(opts, met)
	key := nanoKey("BaseQ", ptq.Partial)

	if _, _, err := r.Get(context.Background(), key); err == nil {
		t.Fatal("first Get succeeded despite failing calibration hook")
	}
	if entries := r.Entries(); len(entries) != 0 {
		t.Fatalf("failed build left %d registry entries, want eviction", len(entries))
	}
	qm, _, err := r.Get(context.Background(), key)
	if err != nil || qm == nil {
		t.Fatalf("retry after failed build: qm=%v err=%v", qm, err)
	}
	mu.Lock()
	got := builds
	mu.Unlock()
	if got != 2 {
		t.Fatalf("calibrations = %d, want 2 (fail then retry)", got)
	}
}

// TestRegistryIntPath: with RegistryOptions.IntPath set, QUQ-method
// builds come out with the integer weight path installed, non-recording
// methods are unaffected, and SetIntPath toggles cached models in place.
func TestRegistryIntPath(t *testing.T) {
	opts := testRegistryOptions()
	opts.IntPath = true
	r := NewRegistry(opts, nil)

	quq, _, err := r.Get(context.Background(), nanoKey("QUQ", ptq.Partial))
	if err != nil {
		t.Fatal(err)
	}
	if !quq.IntPath() {
		t.Fatal("QUQ build did not enable the int path")
	}
	base, _, err := r.Get(context.Background(), nanoKey("BaseQ", ptq.Partial))
	if err != nil {
		t.Fatal(err)
	}
	if base.IntPath() {
		t.Fatal("non-QUQ build enabled the int path")
	}

	n, err := r.SetIntPath(false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("toggled %d cached models, want 1 (only the QUQ entry)", n)
	}
	if quq.IntPath() {
		t.Fatal("runtime disable did not reach the cached model")
	}
	if n, err = r.SetIntPath(true); err != nil || n != 1 {
		t.Fatalf("re-enable: n=%d err=%v", n, err)
	}
	if !quq.IntPath() {
		t.Fatal("runtime enable did not reach the cached model")
	}
}
