package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"quq/internal/ptq"
	"quq/internal/tensor"
)

// Batcher errors, mapped by the HTTP layer to 429 and 503.
var (
	ErrQueueFull = errors.New("serve: request queue full")
	ErrDraining  = errors.New("serve: server is draining")
	// ErrOverBudget is deadline-aware load shedding: admission control
	// estimated the request would wait longer than its latency budget
	// before even starting, so it is refused up front (429) instead of
	// sitting in the queue only to miss its deadline anyway.
	ErrOverBudget = errors.New("serve: estimated queue wait exceeds the latency budget; request shed")
)

// BatcherOptions tunes the micro-batching scheduler.
type BatcherOptions struct {
	// MaxBatch is the dispatch threshold: a pending batch is flushed as
	// soon as it holds this many images (default 8).
	MaxBatch int
	// Linger is how long the first image of a batch may wait for company
	// before the batch is flushed anyway (default 2ms). Zero keeps the
	// default; use a negative value for immediate dispatch.
	Linger time.Duration
	// QueueCap bounds admitted-but-unfinished images across all keys;
	// beyond it Submit fails with ErrQueueFull (default 256).
	QueueCap int
	// Workers sizes the forward-pass worker pool (default GOMAXPROCS).
	Workers int
	// ForwardHook, when set, runs before every forward pass with the
	// item's registry key. It is the chaos layer's worker seam: a hook
	// that stalls simulates a slow worker, a hook that panics exercises
	// the panic-to-error conversion. Not for production use.
	ForwardHook func(key string)
	// LatencyBudget is the default per-request latency budget behind
	// admission control: a submit whose estimated queue wait already
	// exceeds it is shed with ErrOverBudget before taking a queue slot.
	// Zero disables shedding; SubmitBudget overrides it per request.
	LatencyBudget time.Duration
}

func (o *BatcherOptions) defaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.Linger == 0 {
		o.Linger = 2 * time.Millisecond
	}
	if o.Linger < 0 {
		o.Linger = 0
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Item is one admitted image travelling through the scheduler. The
// submitter waits on Done; afterwards exactly one of Out and Err is set.
type Item struct {
	img  *tensor.Tensor
	ctx  context.Context // the submitter's context
	stop func() bool     // cancels the context.AfterFunc watcher
	p    *pending        // batch holding the item while undispatched
	done bool            // finished (guarded by Batcher.mu)

	Out  *tensor.Tensor
	Err  error
	Done chan struct{}
}

// pending is the open batch for one model key.
type pending struct {
	key        string
	qm         *ptq.QuantizedModel
	items      []*Item
	dispatched bool // detached from Batcher.pend and handed to a worker
}

// Batcher coalesces admitted images into per-model micro-batches and
// runs them on a bounded worker pool. All methods are safe for
// concurrent use.
type Batcher struct {
	opts   BatcherOptions
	met    *Metrics
	gov    *Governor
	tokens chan struct{} // worker-pool semaphore

	mu       sync.Mutex
	queued   int // admitted and not yet finished
	pend     map[string]*pending
	draining bool
	wg       sync.WaitGroup
}

// NewBatcher builds a scheduler. gov is the occupancy-adaptive governor
// steering the batching/parallelism split (nil builds a disabled one:
// static linger, MinIntraOp workers). met may be nil.
func NewBatcher(opts BatcherOptions, gov *Governor, met *Metrics) *Batcher {
	opts.defaults()
	if gov == nil {
		gov = NewGovernor(GovernorOptions{}, met)
	}
	gov.bind(opts.MaxBatch, opts.Workers)
	return &Batcher{
		opts:   opts,
		met:    met,
		gov:    gov,
		tokens: make(chan struct{}, opts.Workers),
		pend:   make(map[string]*pending),
	}
}

// Submit admits images for batched inference on qm, coalescing them with
// other requests for the same key. It returns one Item per image (index-
// aligned) to wait on, or ErrQueueFull / ErrDraining without admitting
// anything — admission is all-or-nothing so a multi-image request can
// never deadlock half-queued.
//
// ctx is the submitter's context and must be non-nil (the HTTP layer
// passes the request's): if it is cancelled while an item is still
// queued (not yet handed to a worker), the item finishes immediately
// with the context's error and releases its QueueCap slot — an
// abandoned client must not hold admission capacity until dispatch.
// Items already dispatched complete normally in the background.
func (b *Batcher) Submit(ctx context.Context, key string, qm *ptq.QuantizedModel, images []*tensor.Tensor) ([]*Item, error) {
	return b.SubmitBudget(ctx, key, qm, images, 0)
}

// SubmitBudget is Submit with an explicit per-request latency budget:
// if admission control estimates the request would wait longer than
// budget before the worker pool even starts it, it is shed with
// ErrOverBudget — before taking a queue slot, not after missing its
// deadline inside one. budget <= 0 falls back to the configured
// BatcherOptions.LatencyBudget; zero for both disables shedding. A
// submitter context deadline tighter than the budget tightens it
// further.
func (b *Batcher) SubmitBudget(ctx context.Context, key string, qm *ptq.QuantizedModel, images []*tensor.Tensor, budget time.Duration) ([]*Item, error) {
	if ctx == nil {
		// Mirroring http.NewRequestWithContext: a nil context is a
		// programming error at the call site, not a runtime condition to
		// paper over with a Background that would detach the work from
		// every deadline.
		//quq:panic-ok API-misuse guard; a nil context is a call-site bug, not a runtime condition
		panic("serve: Submit called with nil context")
	}
	if len(images) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		budget = b.opts.LatencyBudget
	}
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); budget <= 0 || remaining < budget {
			budget = remaining
		}
	}
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return nil, ErrDraining
	}
	if budget > 0 && b.gov.EstimatedWait(b.queued) > budget {
		b.mu.Unlock()
		if b.met != nil {
			b.met.Shed.Inc()
		}
		return nil, ErrOverBudget
	}
	if b.queued+len(images) > b.opts.QueueCap {
		b.mu.Unlock()
		if b.met != nil {
			b.met.Rejected.Inc()
		}
		return nil, ErrQueueFull
	}
	b.queued += len(images)
	if b.met != nil {
		b.met.QueueDepth.Set(int64(b.queued))
	}
	items := make([]*Item, len(images))
	for i, img := range images {
		it := &Item{img: img, ctx: ctx, Done: make(chan struct{})}
		items[i] = it
		// The abandonment watcher is registered under b.mu before the
		// item can be flushed, so it.stop is visible to whichever path
		// finishes the item. AfterFunc always runs its callback on a
		// fresh goroutine, so abandon's own b.mu acquisition cannot
		// deadlock here even for an already-expired context.
		it.stop = context.AfterFunc(ctx, func() { b.abandon(it) })
		p := b.pend[key]
		if p == nil {
			p = &pending{key: key, qm: qm, items: nil}
			b.pend[key] = p
			if b.opts.Linger > 0 {
				timerP := p
				time.AfterFunc(b.opts.Linger, func() { b.flushIf(key, timerP) })
			}
		}
		it.p = p
		p.items = append(p.items, it)
		if len(p.items) >= b.opts.MaxBatch || b.opts.Linger == 0 {
			b.flushLocked(p)
		}
	}
	if b.gov.ImmediateDispatch() {
		// Low-occupancy regime: flush at the end of the submit call, after
		// every image of this request has been appended — within-request
		// batching is preserved, only the cross-request linger wait is
		// skipped. A size-triggered flush above leaves b.pend[key] nil, so
		// this is naturally a no-op then.
		if p := b.pend[key]; p != nil && len(p.items) > 0 {
			b.flushLocked(p)
		}
	}
	b.mu.Unlock()
	return items, nil
}

// abandon handles a submitter whose context expired: a still-queued
// item is pulled out of its batch and finished with the context's
// error, releasing its queue slot right away. A dispatched item is left
// alone — its worker observes the same context before the forward pass
// and short-circuits there.
func (b *Batcher) abandon(it *Item) {
	b.mu.Lock()
	if it.done || it.p == nil || it.p.dispatched {
		b.mu.Unlock()
		return
	}
	kept := it.p.items[:0]
	for _, other := range it.p.items {
		if other != it {
			kept = append(kept, other)
		}
	}
	it.p.items = kept
	it.Err = it.ctx.Err()
	if b.met != nil {
		b.met.Abandoned.Inc()
	}
	b.finishLocked(it)
	b.mu.Unlock()
}

// flushIf flushes p if it is still the open batch for key (the linger
// timer may race a size-triggered flush; the pointer comparison
// disambiguates generations).
func (b *Batcher) flushIf(key string, p *pending) {
	b.mu.Lock()
	if b.pend[key] == p {
		b.flushLocked(p)
	}
	b.mu.Unlock()
}

// flushLocked detaches p and dispatches it. Caller holds b.mu. The
// queue depth at dispatch rides along so the governor observes the
// backlog that existed when the batch left the queue.
func (b *Batcher) flushLocked(p *pending) {
	delete(b.pend, p.key)
	p.dispatched = true
	if len(p.items) == 0 {
		return
	}
	b.wg.Add(1)
	go b.run(p, b.queued)
}

// run executes one batch on the worker pool: each image's forward pass
// acquires a pool token, so total inference parallelism across all
// in-flight batches never exceeds Workers. A panic inside Forward is
// converted to a per-item error instead of killing the server. An item
// whose submitter already gave up is finished with its context error
// without paying for the forward pass.
//
// Ordering matters for determinism: the governor observes the dispatch
// (NoteBatch) before any forward runs, and the service time
// (NoteService) before any submitter is woken — so a caller whose Await
// has returned is guaranteed to see governor state that already reflects
// its own batch, which is what lets the chaos harness replay occupancy
// traces byte-identically.
func (b *Batcher) run(p *pending, depth int) {
	defer b.wg.Done()
	b.gov.NoteBatch(len(p.items), depth)
	if b.met != nil {
		b.met.BatchSize.Observe(float64(len(p.items)))
	}
	if extra := b.gov.BatchWorkers() - 1; extra > 0 {
		// This batch's share of the core budget: contribute extra intra-op
		// workers to the tensor pool for the duration of its forwards.
		g := tensor.GrantWorkers(extra)
		defer g.Release()
	}
	start := b.gov.clock().Now()
	var iwg sync.WaitGroup
	for _, it := range p.items {
		b.tokens <- struct{}{}
		iwg.Add(1)
		go func(it *Item) {
			defer func() {
				if rec := recover(); rec != nil {
					it.Err = fmt.Errorf("serve: forward pass panicked: %v", rec)
					if b.met != nil {
						b.met.Panics.Inc()
					}
				}
				<-b.tokens
				iwg.Done()
			}()
			// Last-moment cancellation check: the submitter may have
			// disconnected while this item waited for a pool token.
			if err := it.ctx.Err(); err != nil {
				it.Err = err
				if b.met != nil {
					b.met.Abandoned.Inc()
				}
				return
			}
			if b.opts.ForwardHook != nil {
				b.opts.ForwardHook(p.key)
			}
			it.Out = p.qm.Forward(it.img)
		}(it)
	}
	iwg.Wait()
	b.gov.NoteService(len(p.items), b.gov.clock().Now().Sub(start))
	for _, it := range p.items {
		b.finish(it)
	}
}

// finish releases an item's queue slot and wakes its submitter.
func (b *Batcher) finish(it *Item) {
	b.mu.Lock()
	if it.done {
		// The abandonment path got here first; nothing left to release.
		b.mu.Unlock()
		return
	}
	b.finishLocked(it)
	b.mu.Unlock()
}

// finishLocked marks an item done under b.mu: slot released, watcher
// stopped, submitter woken. Exactly one of finish/abandon reaches it
// per item (the done flag arbitrates), so Done closes exactly once.
func (b *Batcher) finishLocked(it *Item) {
	it.done = true
	b.queued--
	if b.met != nil {
		b.met.QueueDepth.Set(int64(b.queued))
		b.met.Images.Inc()
	}
	if it.stop != nil {
		it.stop()
	}
	close(it.Done)
}

// Await blocks until every item is finished or ctx expires. On timeout
// the in-flight work still completes in the background (its queue slots
// are released by the workers); only the caller gives up.
func Await(ctx context.Context, items []*Item) error {
	for _, it := range items {
		select {
		case <-it.Done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Drain stops admission, flushes every pending batch immediately, and
// waits for in-flight work to finish or ctx to expire.
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	b.draining = true
	// Collect open batches first: flushLocked mutates b.pend.
	open := make([]*pending, 0, len(b.pend))
	// Map order is irrelevant: every open batch is flushed.
	for _, p := range b.pend {
		open = append(open, p)
	}
	for _, p := range open {
		b.flushLocked(p)
	}
	b.mu.Unlock()

	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
