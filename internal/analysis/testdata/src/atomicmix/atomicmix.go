// Package atomicmix is the fixture corpus for the atomicmix analyzer:
// fields touched through sync/atomic must never also be read or written
// plainly; a constructor-time plain write carries the documented
// //quq:atomic-ok suppression.
package atomicmix

import "sync/atomic"

type counter struct {
	n    int64
	hits int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.n)
}

// plainRead races every atomic.AddInt64 on the same field.
func plainRead(c *counter) int64 {
	return c.n // want `field n is accessed with sync/atomic elsewhere`
}

// plainWrite clobbers concurrent atomic increments.
func plainWrite(c *counter) {
	c.n = 0 // want `field n is accessed with sync/atomic elsewhere`
}

func (c *counter) hit() {
	atomic.AddInt64(&c.hits, 1)
}

// newCounter performs the one sanctioned plain write: before the value
// escapes the constructor no other goroutine can see it.
func newCounter(seed int64) *counter {
	c := &counter{}
	//quq:atomic-ok pre-publication write in the constructor; no concurrent reader exists yet
	c.hits = seed
	return c
}

// untouched is never accessed atomically, so plain access is fine.
type untouched struct {
	n int64
}

func bump(u *untouched) {
	u.n++
}
