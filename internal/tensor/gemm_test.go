package tensor

import (
	"math"
	"sync"
	"testing"

	"quq/internal/rng"
)

// randTensor fills a tensor with finite values, planting exact zeros so
// the reference kernel's zero-skip path is exercised. The determinism
// contract only covers finite inputs (0·±Inf is NaN under one kernel and
// skipped under the other), which is the domain every model tensor
// lives in.
func randTensor(src *rng.Source, m, n int) *Tensor {
	t := New(m, n)
	d := t.Data()
	for i := range d {
		switch {
		case src.Float64() < 0.1:
			d[i] = 0
		case src.Float64() < 0.15:
			d[i] = math.Copysign(0, -1)
		default:
			d[i] = src.Gauss(0, 2)
		}
	}
	return t
}

func assertBitEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	gs, ws := got.Shape(), want.Shape()
	if len(gs) != len(ws) || gs[0] != ws[0] || gs[1] != ws[1] {
		t.Fatalf("%s: shape %v, want %v", name, gs, ws)
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
			t.Fatalf("%s: element %d = %v (bits %016x), want %v (bits %016x)",
				name, i, gd[i], math.Float64bits(gd[i]), wd[i], math.Float64bits(wd[i]))
		}
	}
}

// gemmShapes covers the tile interior, every edge-tile combination, and
// the degenerate shapes (k=0, single row, single column, empty).
var gemmShapes = []struct{ m, k, n int }{
	{0, 3, 3}, {3, 0, 3}, {3, 3, 0},
	{1, 1, 1}, {1, 5, 1}, {5, 1, 1}, {1, 7, 9},
	{4, 4, 4}, {5, 5, 5}, {8, 3, 8}, {7, 2, 3},
	{9, 17, 33}, {17, 16, 17}, {3, 129, 2}, {16, 48, 12},
	{33, 31, 35},
}

func TestMatMulIntoMatchesRef(t *testing.T) {
	src := rng.New(11)
	for _, s := range gemmShapes {
		a := randTensor(src, s.m, s.k)
		b := randTensor(src, s.k, s.n)
		got := MatMulInto(New(s.m, s.n), a, b)
		assertBitEqual(t, "MatMulInto", got, MatMulRef(a, b))
		// The allocating wrapper must agree too.
		assertBitEqual(t, "MatMul", MatMul(a, b), got)
	}
}

func TestMatMulTIntoMatchesRef(t *testing.T) {
	src := rng.New(12)
	for _, s := range gemmShapes {
		a := randTensor(src, s.m, s.k)
		b := randTensor(src, s.n, s.k)
		got := MatMulTInto(New(s.m, s.n), a, b)
		assertBitEqual(t, "MatMulTInto", got, MatMulTRef(a, b))
		assertBitEqual(t, "MatMulT", MatMulT(a, b), got)
	}
}

func TestMatMulBiasIntoMatchesRef(t *testing.T) {
	src := rng.New(13)
	for _, s := range gemmShapes {
		a := randTensor(src, s.m, s.k)
		b := randTensor(src, s.k, s.n)
		bias := make([]float64, s.n)
		for i := range bias {
			bias[i] = src.Gauss(0, 1)
		}
		got := MatMulBiasInto(New(s.m, s.n), a, b, bias)
		want := MatMulRef(a, b).AddRowVector(bias)
		assertBitEqual(t, "MatMulBiasInto", got, want)
	}
}

// TestReferenceKernelSeam verifies the bench seam routes through the
// scalar loops and produces the same bits.
func TestReferenceKernelSeam(t *testing.T) {
	src := rng.New(14)
	a := randTensor(src, 9, 17)
	b := randTensor(src, 17, 33)
	tiled := MatMulInto(New(9, 33), a, b)
	SetReferenceKernels(true)
	defer SetReferenceKernels(false)
	ref := MatMulInto(New(9, 33), a, b)
	assertBitEqual(t, "reference seam", ref, tiled)
}

// TestParallelMatchesSerial raises the intra-op budget and checks that a
// GEMM above the size cutover — which then actually splits across
// workers — produces bit-identical results to the serial kernel.
func TestParallelMatchesSerial(t *testing.T) {
	SetIntraOpWorkers(4)
	t.Cleanup(func() { SetIntraOpWorkers(1) })
	src := rng.New(15)
	// 64·128·80 = 655360 MACs, above parallelMinMACs with 64 rows to split.
	a := randTensor(src, 64, 128)
	b := randTensor(src, 128, 80)
	bt := b.Transpose() // [80, 128] so a @ btᵀ == a @ b
	for round := 0; round < 4; round++ {
		assertBitEqual(t, "parallel MatMul", MatMul(a, b), MatMulRef(a, b))
		assertBitEqual(t, "parallel MatMulT", MatMulT(a, bt), MatMulTRef(a, bt))
	}
}

// TestParallelConcurrentCallers hammers the worker-token pool from many
// goroutines at once (the quq-serve shape: per-image fan-out on top of
// an intra-op budget) and checks every result. Run under -race this also
// proves the pool's acquire/release is sound.
func TestParallelConcurrentCallers(t *testing.T) {
	SetIntraOpWorkers(3)
	t.Cleanup(func() { SetIntraOpWorkers(1) })
	src := rng.New(16)
	a := randTensor(src, 48, 96)
	b := randTensor(src, 96, 64)
	want := MatMulRef(a, b)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := MatMul(a, b)
				gd, wd := got.Data(), want.Data()
				for j := range gd {
					if math.Float64bits(gd[j]) != math.Float64bits(wd[j]) {
						errs <- "concurrent MatMul diverged from serial reference"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	if IntraOpWorkers() != 3 {
		t.Fatalf("IntraOpWorkers = %d, want 3", IntraOpWorkers())
	}
	// The token pool must be whole again: all extra workers returned.
	if got := acquireExtra(2); got != 2 {
		t.Fatalf("token pool leaked: acquired %d of 2 extra workers", got)
	}
	releaseExtra(2)
}

// TestWorkerGrant exercises the per-call budget seam the serve-layer
// governor uses: a grant adds extra workers to the pool, a parallel GEMM
// under the grant stays bit-identical to the serial reference, and
// Release (idempotently) withdraws exactly the granted capacity.
func TestWorkerGrant(t *testing.T) {
	if got := acquireExtra(1); got != 0 {
		t.Fatalf("pool not empty before grant: acquired %d", got)
	}
	g := GrantWorkers(3)
	src := rng.New(18)
	a := randTensor(src, 64, 128)
	b := randTensor(src, 128, 80)
	assertBitEqual(t, "granted MatMul", MatMul(a, b), MatMulRef(a, b))
	// The grant's tokens are all back in the pool after the call.
	if got := acquireExtra(4); got != 3 {
		t.Fatalf("acquired %d extra workers under a 3-worker grant, want 3", got)
	}
	releaseExtra(3)
	g.Release()
	g.Release() // idempotent
	if got := acquireExtra(1); got != 0 {
		t.Fatalf("pool not empty after release: acquired %d", got)
	}
	GrantWorkers(0).Release() // empty grant is a no-op
	var nilGrant *WorkerGrant
	nilGrant.Release() // nil-safe
}

func TestAddInto(t *testing.T) {
	src := rng.New(17)
	a := randTensor(src, 5, 7)
	b := randTensor(src, 5, 7)
	want := New(5, 7)
	for i := range want.Data() {
		want.Data()[i] = a.Data()[i] + b.Data()[i]
	}
	assertBitEqual(t, "AddInto", AddInto(New(5, 7), a, b), want)
	assertBitEqual(t, "Add", a.Add(b), want)
	// AddInto may alias its operands.
	aCopy := a.Clone()
	assertBitEqual(t, "AddInto aliased", AddInto(aCopy, aCopy, b), want)
}

func TestMatMulIntoRejectsBadDst(t *testing.T) {
	a, b := New(3, 4), New(4, 5)
	for name, fn := range map[string]func(){
		"shape":    func() { MatMulInto(New(3, 4), a, b) },
		"aliasing": func() { MatMulInto(a, a, b) },
		"bias":     func() { MatMulBiasInto(New(3, 5), a, b, make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestArenaReuse(t *testing.T) {
	ar := GetArena()
	defer ar.Release()
	x := ar.NewUninit(4, 6)
	x.Fill(7)
	base := &x.Data()[0]
	ar.Put(x)

	// Same element count comes back as the same storage, reshaped.
	y := ar.NewUninit(6, 4)
	if &y.Data()[0] != base {
		t.Fatal("NewUninit did not recycle the Put tensor")
	}
	if y.Dim(0) != 6 || y.Dim(1) != 4 {
		t.Fatalf("recycled shape %v, want [6 4]", y.Shape())
	}
	if y.Data()[0] != 7 {
		t.Fatal("NewUninit should not clear recycled storage")
	}
	ar.Put(y)

	// New clears the recycled storage.
	z := ar.New(24)
	if &z.Data()[0] != base {
		t.Fatal("New did not recycle the Put tensor")
	}
	for i, v := range z.Data() {
		if v != 0 {
			t.Fatalf("New left stale value %v at %d", v, i)
		}
	}
	ar.Put(z)

	// A different element count is a miss: fresh storage.
	w := ar.NewUninit(5, 5)
	if &w.Data()[0] == base {
		t.Fatal("NewUninit recycled across different element counts")
	}
}

// FuzzGEMMEquivalence fuzzes randomized shapes and finite contents
// through every kernel entry point, asserting bit-identity against the
// scalar reference oracle — serial and with the parallel budget raised.
func FuzzGEMMEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(5))
	f.Add(int64(2), uint8(0), uint8(1), uint8(9))
	f.Add(int64(3), uint8(1), uint8(0), uint8(1))
	f.Add(int64(4), uint8(17), uint8(16), uint8(17))
	f.Add(int64(5), uint8(65), uint8(33), uint8(70))
	f.Fuzz(func(t *testing.T, seed int64, m8, k8, n8 uint8) {
		m, k, n := int(m8%80), int(k8%80), int(n8%80)
		src := rng.New(uint64(seed))
		a := randTensor(src, m, k)
		b := randTensor(src, k, n)
		bt := randTensor(src, n, k)
		bias := make([]float64, n)
		for i := range bias {
			bias[i] = src.Gauss(0, 1)
		}
		wantMM := MatMulRef(a, b)
		wantMMB := wantMM.Clone().AddRowVector(bias)
		wantMMT := MatMulTRef(a, bt)

		check := func(label string) {
			t.Helper()
			assertBitEqual(t, label+" MatMulInto", MatMulInto(New(m, n), a, b), wantMM)
			assertBitEqual(t, label+" MatMulBiasInto", MatMulBiasInto(New(m, n), a, b, bias), wantMMB)
			assertBitEqual(t, label+" MatMulTInto", MatMulTInto(New(m, n), a, bt), wantMMT)
		}
		check("serial")
		SetIntraOpWorkers(4)
		defer SetIntraOpWorkers(1)
		check("parallel")
	})
}
