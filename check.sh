#!/bin/sh
# Tier-1 verification gate. Everything here must pass before a change
# lands; CI and the ROADMAP "Tier-1 verify" line both point at this
# script. Runs offline with nothing but the Go toolchain.
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...
# The default tag set skips files gated on `race` (race_enabled_test.go
# at the repo root); vet them under that tag too so both halves of the
# build matrix stay analyzed.
go vet -tags race ./...

# quqvet: the repo's own static-analysis pass (integer-only datapath,
# exact power-of-two scales, deterministic artifacts, audited panics,
# no dropped errors on io paths, lock/context/goroutine/atomic/metric
# concurrency invariants). See README.md "Verification".
go run ./cmd/quq-vet ./...

# quqvet must also keep its own house clean: run the suite over the
# analyzer package explicitly (fixture corpora under testdata are
# exempt by design; the analyzer sources are not).
go run ./cmd/quq-vet ./internal/analysis/

# The machine-readable report must be deterministic: two runs over the
# same tree are byte-identical.
go run ./cmd/quq-vet -json ./... > /tmp/quqvet-report-1.json
go run ./cmd/quq-vet -json ./... > /tmp/quqvet-report-2.json
diff /tmp/quqvet-report-1.json /tmp/quqvet-report-2.json
rm -f /tmp/quqvet-report-1.json /tmp/quqvet-report-2.json

go test -race ./...

# Short fuzz smoke of the property-based targets. `go test -fuzz`
# takes exactly one package per invocation.
go test -fuzz=FuzzPRA -fuzztime=5s -run=^$ ./internal/quant/
go test -fuzz=FuzzQUBRoundtrip -fuzztime=5s -run=^$ ./internal/qub/
go test -fuzz=FuzzGEMMEquivalence -fuzztime=5s -run=^$ ./internal/tensor/
go test -fuzz=FuzzIntGEMMEquivalence -fuzztime=5s -run=^$ ./internal/tensor/
go test -fuzz=FuzzSnapshotDecode -fuzztime=5s -run=^$ ./internal/snapstore/

# Kernel-layer smoke: per-shape GEMM naive-vs-tiled plus the end-to-end
# quantized forward against the in-run pre-kernel-layer replica;
# regenerates artifacts/BENCH_kernels.json. The benchmark itself asserts
# the optimized logits are bit-identical to the replica's before timing.
# (The allocation-regression gate is TestForwardAllocBudget, which runs
# with the suite above.)
go test -run '^$' -bench BenchmarkKernels -benchtime 20x .

# Integer kernel-layer smoke: the resident-operand QUB GEMM against an
# in-run replica of the pre-PR scalar intGEMM (per-call decode + fresh
# buffers); regenerates artifacts/BENCH_int.json. The benchmark itself
# fails unless the gated proxy shapes clear the 2x speedup floor and the
# requantized QUB outputs (and the int-path logits, on the 2^-16 grid)
# are bit-identical to the scalar/float references.
go test -run '^$' -bench BenchmarkIntKernels -benchtime 20x .

# quq-serve smoke: boot the inference service on an ephemeral port and
# drive one quantize + classify round trip through the real HTTP stack.
go run ./cmd/quq-serve -smoke

# Serving throughput benchmark; regenerates artifacts/BENCH_serve.json
# (batched vs unbatched img/s — batched must not be slower).
go test -run '^$' -bench BenchmarkServeThroughput -benchtime 20x .

# quq-shard smoke: 3 in-process quq-serve shards behind the
# consistent-hash front-end — multi-key routing, one calibration per
# key fleet-wide (asserted via merged /metrics), failover + ejection.
go run ./cmd/quq-shard -smoke

# Chaos gate: replay the seeded fault scripts (connection resets, 429
# storms, failed calibrations, black-holed probes, drains under panic,
# replica divergence/failover, elastic join/drain/leave membership,
# crash-restart with snapshot warm-load, on-disk snapshot corruption)
# against an in-process fleet, twice; all failure-domain invariants —
# including calibrate-at-most-R, byte-identical replicas, zero-rebuild
# warm restarts, and anti-entropy convergence — must hold and the two
# invariant reports must be byte-identical.
go run ./cmd/quq-shard -chaos

# Sharded throughput benchmark; regenerates artifacts/BENCH_shard.json
# (direct vs proxied img/s).
go test -run '^$' -bench BenchmarkShardThroughput -benchtime 5x .

# Shard-aware client benchmark; regenerates artifacts/BENCH_client.json
# (direct vs proxied vs client-routed img/s — the client must recover
# most of the proxy hop's overhead by routing reads to owners directly).
go test -run '^$' -bench BenchmarkClientDirect -benchtime 5x .

# Occupancy-adaptive scheduler benchmark; regenerates
# artifacts/BENCH_sched.json (static vs adaptive on a seeded arrival
# mix — the benchmark itself fails unless adaptive p50 beats static at
# low occupancy and adaptive p99 stays within 2x static under bursts).
go test -run '^$' -bench BenchmarkSchedOccupancy -benchtime 3x .

# Doc gate: ARCHITECTURE.md's package inventory must cover every
# package in the module (quqvet's docmissing check covers the inverse:
# every package documents itself in source).
for pkg in $(go list ./...); do
  grep -Fq -- "$pkg" ARCHITECTURE.md || {
    echo "ARCHITECTURE.md: missing package $pkg" >&2
    exit 1
  }
done

# Tuning-guide gate: every CLI flag of both serving binaries must be
# documented in docs/TUNING.md (as `-flagname`), so the operator's
# guide can never drift behind the code.
for main in cmd/quq-serve/main.go cmd/quq-shard/main.go; do
  for f in $(grep -o 'flag\.[A-Za-z0-9]*("[a-z-]*"' "$main" | sed 's/.*("\([a-z-]*\)".*/\1/'); do
    grep -Fq -- "\`-$f\`" docs/TUNING.md || {
      echo "docs/TUNING.md: missing flag -$f from $main" >&2
      exit 1
    }
  done
done

gofmt -l . | tee /dev/stderr | wc -l | grep -qx 0
