package tensor

import (
	"sync"

	"quq/internal/check"
)

// This file is the integer half of the kernel layer: cache-blocked,
// register-tiled int64 GEMM over flat row-major slices, mirroring the
// float kernels in gemm.go. The determinism story is simpler than the
// float one: int64 addition wraps modulo 2^64 and is associative and
// commutative, so *any* summation order produces the same bits. Blocking,
// tiling, SIMD lane grouping with independent accumulator chains, and
// row-partitioned parallelism are therefore all bit-exact against the
// naive reference by construction — the equivalence and fuzz tests in
// intgemm_test.go assert it anyway, over randomized shapes and the
// full worker matrix.
//
// The entry points take flat []int64 slices rather than *Tensor because
// their caller is the integer datapath (internal/accel), which holds
// pre-shifted QUB integers, not float tensors. They share the float
// layer's intra-op worker pool (SetIntraOpWorkers / GrantWorkers), size
// cutover, and reference-kernel seam (SetReferenceKernels).

// intMatMulDims validates operand/destination lengths for an m×k @ k×n
// (or, with bT set, m×k @ (n×k)ᵀ) integer GEMM.
func intMatMulDims(dst, a, b []int64, m, k, n int, bT bool, op string) {
	if m < 0 || k < 0 || n < 0 {
		panic(check.Invariantf("tensor: %s negative dimensions %dx%dx%d", op, m, k, n))
	}
	if len(a) < m*k {
		panic(check.Invariantf("tensor: %s lhs length %d, want >= %d", op, len(a), m*k))
	}
	want := k * n
	if bT {
		want = n * k
	}
	if len(b) < want {
		panic(check.Invariantf("tensor: %s rhs length %d, want >= %d", op, len(b), want))
	}
	if len(dst) < m*n {
		panic(check.Invariantf("tensor: %s destination length %d, want >= %d", op, len(dst), m*n))
	}
	if len(dst) == 0 {
		return
	}
	if (len(a) > 0 && &dst[0] == &a[0]) || (len(b) > 0 && &dst[0] == &b[0]) {
		panic(check.Invariantf("tensor: %s destination aliases an operand", op))
	}
}

// IntMatMulInto computes dst = a @ b for flat row-major int64 matrices
// (m×k) @ (k×n) -> (m×n), writing into caller-provided storage (dst need
// not be zeroed; every element is stored). dst must not share storage
// with a or b. Accumulation is int64 wrapping modulo 2^64, so results
// are bit-exact regardless of kernel, tiling, or worker count; overflow
// bounds are the caller's contract (accel checks them at prepare time).
//
//quq:hotpath steady-state integer GEMM kernel; destinations come from the caller (arena or resident buffer), never fresh allocations
func IntMatMulInto(dst, a, b []int64, m, k, n int) {
	intMatMulDims(dst, a, b, m, k, n, false, "IntMatMulInto")
	if refKernels.Load() {
		intMatMulRefRange(dst, a, b, k, n, 0, m)
		return
	}
	micro := pickIntMicro(a[:m*k], b[:k*n])
	if extra := planExtra(m, k, n); extra > 0 {
		runRows(extra, m, func(i0, i1 int) { intMatMulRange(dst, a, b, k, n, i0, i1, micro) })
	} else {
		intMatMulRange(dst, a, b, k, n, 0, m, micro)
	}
}

// pickIntMicro selects the micro-kernel for one GEMM call: the narrow
// (int32-operand) kernel when it exists and every element of both
// operands fits in int32, the general wide kernel otherwise. The O(mk +
// kn) scan is negligible against the O(mkn) multiply and keeps the
// bit-exactness contract unconditional — wide values simply take the
// wide kernel.
func pickIntMicro(a, b []int64) func(c *[16]int64, a0, a1, a2, a3, bp []int64, k int) {
	if intMicro4x4Narrow != nil && int64sNarrow(a) && int64sNarrow(b) {
		return intMicro4x4Narrow
	}
	return intMicro4x4
}

// int64sNarrow reports whether every value fits in int32.
func int64sNarrow(s []int64) bool {
	for _, v := range s {
		if v != int64(int32(v)) {
			return false
		}
	}
	return true
}

// IntMatMulTInto computes dst = a @ bᵀ for flat row-major int64 matrices
// (m×k) @ (n×k)ᵀ -> (m×n) into caller-provided storage. The transposed
// form streams both operands row-major — it is the natural layout for a
// weight matrix stored output-channel-major. dst must not share storage
// with a or b.
//
//quq:hotpath steady-state integer GEMM kernel; destinations come from the caller (arena or resident buffer), never fresh allocations
func IntMatMulTInto(dst, a, b []int64, m, k, n int) {
	intMatMulDims(dst, a, b, m, k, n, true, "IntMatMulTInto")
	if refKernels.Load() {
		intMatMulTRefRange(dst, a, b, k, n, 0, m)
		return
	}
	micro := pickIntMicro(a[:m*k], b[:n*k])
	if extra := planExtra(m, k, n); extra > 0 {
		runRows(extra, m, func(i0, i1 int) { intMatMulTRange(dst, a, b, k, n, i0, i1, micro) })
	} else {
		intMatMulTRange(dst, a, b, k, n, 0, m, micro)
	}
}

// intPackPool recycles the per-call int64 B-panel pack buffers so
// steady-state integer kernels allocate nothing; each concurrent kernel
// invocation (including each intra-op worker) takes its own buffer.
var intPackPool = sync.Pool{New: func() any { return new([]int64) }}

// getIntPackAndAcc returns a pooled n-element int64 pack panel plus a
// 16-element accumulator block for the micro-kernel, carved from one
// pooled buffer so the steady state allocates nothing. The accumulator
// must live in pooled memory (not the caller's frame): intMicro4x4 is
// called through a function variable, so a stack-declared block would be
// marked escaping and heap-allocated on every kernel invocation.
func getIntPackAndAcc(n int) (*[]int64, []int64, *[16]int64) {
	p := intPackPool.Get().(*[]int64)
	if cap(*p) < n+16 {
		*p = make([]int64, n+16)
	}
	buf := (*p)[:n+16]
	return p, buf[:n:n], (*[16]int64)(buf[n : n+16])
}

// intMatMulRange is the blocked, register-tiled a @ b integer kernel over
// dst rows [i0, i1). Each group of nrTile columns is packed into a
// contiguous k×4 panel so the inner loop's b loads are sequential rather
// than strided by the row width; the panel is then paired with mrTile
// rows of a in a 4×4 micro-kernel holding 16 independent int64
// accumulator chains in registers.
func intMatMulRange(dst, a, b []int64, k, n, i0, i1 int, micro func(c *[16]int64, a0, a1, a2, a3, bp []int64, k int)) {
	if n == 0 {
		return
	}
	pp, packed, acc := getIntPackAndAcc(nrTile * k)
	j := 0
	for ; j+nrTile <= n; j += nrTile {
		boff := j
		for kk := 0; kk < k; kk++ {
			brow := b[boff : boff+nrTile]
			prow := packed[kk*nrTile : kk*nrTile+nrTile]
			prow[0], prow[1], prow[2], prow[3] = brow[0], brow[1], brow[2], brow[3]
			boff += n
		}
		i := i0
		for ; i+mrTile <= i1; i += mrTile {
			a0 := a[(i+0)*k : (i+0)*k+k]
			a1 := a[(i+1)*k : (i+1)*k+k]
			a2 := a[(i+2)*k : (i+2)*k+k]
			a3 := a[(i+3)*k : (i+3)*k+k]
			micro(acc, a0, a1, a2, a3, packed, k)
			d0 := dst[(i+0)*n+j : (i+0)*n+j+nrTile]
			d1 := dst[(i+1)*n+j : (i+1)*n+j+nrTile]
			d2 := dst[(i+2)*n+j : (i+2)*n+j+nrTile]
			d3 := dst[(i+3)*n+j : (i+3)*n+j+nrTile]
			d0[0], d0[1], d0[2], d0[3] = acc[0], acc[1], acc[2], acc[3]
			d1[0], d1[1], d1[2], d1[3] = acc[4], acc[5], acc[6], acc[7]
			d2[0], d2[1], d2[2], d2[3] = acc[8], acc[9], acc[10], acc[11]
			d3[0], d3[1], d3[2], d3[3] = acc[12], acc[13], acc[14], acc[15]
		}
		for ; i < i1; i++ {
			arow := a[i*k : i*k+k]
			var c0, c1, c2, c3 int64
			for kk := 0; kk < k; kk++ {
				bq := packed[kk*nrTile : kk*nrTile+nrTile]
				av := arow[kk]
				c0 += av * bq[0]
				c1 += av * bq[1]
				c2 += av * bq[2]
				c3 += av * bq[3]
			}
			drow := dst[i*n+j : i*n+j+nrTile]
			drow[0], drow[1], drow[2], drow[3] = c0, c1, c2, c3
		}
	}
	for ; j < n; j++ {
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			var s int64
			boff := j
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * b[boff]
				boff += n
			}
			dst[i*n+j] = s
		}
	}
	intPackPool.Put(pp)
}

// intMatMulTRange is the register-tiled a @ bᵀ integer kernel over dst
// rows [i0, i1): each group of nrTile b rows is packed transposed into
// the same contiguous k×4 panel layout intMatMulRange uses, then swept
// with the shared 4×4 micro-kernel.
func intMatMulTRange(dst, a, b []int64, k, n, i0, i1 int, micro func(c *[16]int64, a0, a1, a2, a3, bp []int64, k int)) {
	if n == 0 {
		return
	}
	pp, packed, acc := getIntPackAndAcc(nrTile * k)
	j := 0
	for ; j+nrTile <= n; j += nrTile {
		b0 := b[(j+0)*k : (j+0)*k+k]
		b1 := b[(j+1)*k : (j+1)*k+k]
		b2 := b[(j+2)*k : (j+2)*k+k]
		b3 := b[(j+3)*k : (j+3)*k+k]
		for kk := 0; kk < k; kk++ {
			prow := packed[kk*nrTile : kk*nrTile+nrTile]
			prow[0], prow[1], prow[2], prow[3] = b0[kk], b1[kk], b2[kk], b3[kk]
		}
		i := i0
		for ; i+mrTile <= i1; i += mrTile {
			a0 := a[(i+0)*k : (i+0)*k+k]
			a1 := a[(i+1)*k : (i+1)*k+k]
			a2 := a[(i+2)*k : (i+2)*k+k]
			a3 := a[(i+3)*k : (i+3)*k+k]
			micro(acc, a0, a1, a2, a3, packed, k)
			d0 := dst[(i+0)*n+j : (i+0)*n+j+nrTile]
			d1 := dst[(i+1)*n+j : (i+1)*n+j+nrTile]
			d2 := dst[(i+2)*n+j : (i+2)*n+j+nrTile]
			d3 := dst[(i+3)*n+j : (i+3)*n+j+nrTile]
			d0[0], d0[1], d0[2], d0[3] = acc[0], acc[1], acc[2], acc[3]
			d1[0], d1[1], d1[2], d1[3] = acc[4], acc[5], acc[6], acc[7]
			d2[0], d2[1], d2[2], d2[3] = acc[8], acc[9], acc[10], acc[11]
			d3[0], d3[1], d3[2], d3[3] = acc[12], acc[13], acc[14], acc[15]
		}
		for ; i < i1; i++ {
			arow := a[i*k : i*k+k]
			var c0, c1, c2, c3 int64
			for kk := 0; kk < k; kk++ {
				bq := packed[kk*nrTile : kk*nrTile+nrTile]
				av := arow[kk]
				c0 += av * bq[0]
				c1 += av * bq[1]
				c2 += av * bq[2]
				c3 += av * bq[3]
			}
			drow := dst[i*n+j : i*n+j+nrTile]
			drow[0], drow[1], drow[2], drow[3] = c0, c1, c2, c3
		}
	}
	for ; j < n; j++ {
		brow := b[j*k : j*k+k]
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			var s int64
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * brow[kk]
			}
			dst[i*n+j] = s
		}
	}
	intPackPool.Put(pp)
}

// intMatMulRefRange is the naive scalar a @ b integer loop, retained as
// the oracle the tiled/SIMD kernels are tested against and the baseline
// the integer kernel benchmarks measure.
func intMatMulRefRange(dst, a, b []int64, k, n, i0, i1 int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : i*k+k]
		orow := dst[i*n : i*n+n]
		for j := range orow {
			var s int64
			boff := j
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * b[boff]
				boff += n
			}
			orow[j] = s
		}
	}
}

// intMatMulTRefRange is the naive scalar a @ bᵀ integer loop; see
// intMatMulRefRange.
func intMatMulTRefRange(dst, a, b []int64, k, n, i0, i1 int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : i*k+k]
		orow := dst[i*n : i*n+n]
		for j := range orow {
			brow := b[j*k : j*k+k]
			var s int64
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * brow[kk]
			}
			orow[j] = s
		}
	}
}

// IntMatMulRef computes dst = a @ b with the naive reference loop. It is
// the oracle the blocked integer kernels are tested against; production
// code uses IntMatMulInto.
func IntMatMulRef(dst, a, b []int64, m, k, n int) {
	intMatMulDims(dst, a, b, m, k, n, false, "IntMatMulRef")
	intMatMulRefRange(dst, a, b, k, n, 0, m)
}

// IntMatMulTRef computes dst = a @ bᵀ with the naive reference loop; see
// IntMatMulRef.
func IntMatMulTRef(dst, a, b []int64, m, k, n int) {
	intMatMulDims(dst, a, b, m, k, n, true, "IntMatMulTRef")
	intMatMulTRefRange(dst, a, b, k, n, 0, m)
}
