// Package testutil holds dependency-free helpers shared by the repo's
// test suites. Its centerpiece is a goroutine-leak assertion built on
// runtime.Stack, so lifecycle tests (server Drain, shard front close,
// fleet teardown) can prove that shutdown actually reclaims every
// goroutine it started instead of merely returning.
package testutil

import (
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of *testing.T the leak checker needs, declared
// locally so this package never imports testing (importing testing
// from non-test code would register its flags in any binary that links
// us).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// settleTimeout bounds how long VerifyNoLeaks waits for goroutines that
// are already on their way out (a Drain returns before the drained
// worker's final stack frames unwind). A variable so the package's own
// failure-path test can shorten the wait.
var settleTimeout = 2 * time.Second

// VerifyNoLeaks snapshots the running goroutines and returns a check to
// defer; the check fails the test if goroutines created after the
// snapshot still exist once everything should have shut down:
//
//	defer testutil.VerifyNoLeaks(t)()
//
// Goroutines are compared by stack signature (creation site and frames,
// not goroutine ID), so pre-existing pool members with identical stacks
// cancel out and only net-new survivors count. Runtime and test-harness
// internals are ignored.
//
// The settle loop below polls the runtime's own goroutine table — there
// is no event to select on and no caller deadline to honor, so a plain
// bounded wall-clock wait is the correct tool here:
//
//quq:sleep-ok bounded settle poll of runtime.Stack; no chaos replay involves this test-only helper
//quq:ctx-ok test-only helper with its own fixed 2s bound; no caller deadline exists to thread
func VerifyNoLeaks(tb TB) func() {
	before := snapshot()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(settleTimeout)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		tb.Errorf("testutil: %d goroutine(s) leaked past shutdown:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// snapshot returns the multiset of interesting goroutine stack
// signatures currently running.
func snapshot() map[string]int {
	counts := map[string]int{}
	for _, g := range goroutines() {
		counts[g]++
	}
	return counts
}

// leakedSince diffs the current goroutines against a snapshot and
// returns the stacks present now but not then, sorted for stable
// output.
func leakedSince(before map[string]int) []string {
	remaining := make(map[string]int, len(before))
	for sig, n := range before {
		remaining[sig] = n
	}
	var leaked []string
	for _, g := range goroutines() {
		if remaining[g] > 0 {
			remaining[g]--
			continue
		}
		leaked = append(leaked, g)
	}
	sort.Strings(leaked)
	return leaked
}

// goroutines returns the stack signature of every goroutine except the
// caller's and known runtime/test-harness internals. The signature is
// the full stack dump minus the "goroutine N [state]:" header, so IDs
// and wait states (running vs sleeping) never produce spurious diffs.
func goroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var sigs []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			// First entry is the goroutine calling runtime.Stack — us.
			continue
		}
		header, frames, ok := strings.Cut(g, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		if boring(frames) {
			continue
		}
		sigs = append(sigs, strings.TrimRight(frames, "\n"))
	}
	return sigs
}

// boring reports stacks the leak checker must ignore: the runtime's and
// the testing package's own long-lived goroutines, which exist outside
// any code under test.
func boring(frames string) bool {
	for _, marker := range []string{
		"testing.RunTests(",
		"testing.(*M).",
		"testing.(*T).Run(",
		"testing.tRunner(",
		"testing.runFuzzing(",
		"testing.runFuzzTests(",
		"runtime.goexit",
		"runtime.gc(",
		"runtime.bgsweep(",
		"runtime.bgscavenge(",
		"runtime.forcegchelper(",
		"runtime.ReadTrace(",
		"signal.signal_recv(",
		"created by runtime.",
	} {
		if strings.Contains(frames, marker) {
			return true
		}
	}
	// A goroutine parked in the race detector or in Stack itself.
	return strings.TrimSpace(frames) == ""
}
