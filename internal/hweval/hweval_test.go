package hweval

import (
	"math"
	"testing"
)

func TestAnchorCalibration(t *testing.T) {
	// The model is calibrated to the paper's BaseQ 6-bit 16×16 point:
	// 0.148 mm², 52.4 mW. Guard the calibration within 3%.
	r := Evaluate(DefaultConfig(BaseQDesign, 6, 16))
	if math.Abs(r.AreaMM2-0.148)/0.148 > 0.03 {
		t.Fatalf("anchor area %v drifted from 0.148", r.AreaMM2)
	}
	if math.Abs(r.PowerMW-52.4)/52.4 > 0.03 {
		t.Fatalf("anchor power %v drifted from 52.4", r.PowerMW)
	}
}

func TestPaperAbsolutesWithinBand(t *testing.T) {
	// The uncalibrated points must land near the paper's values (±12%):
	// the model derives them from component counts, not fits.
	want := []struct {
		d    Design
		bits int
		n    int
		area float64
	}{
		{BaseQDesign, 6, 64, 2.205},
		{BaseQDesign, 8, 16, 0.175},
		{BaseQDesign, 8, 64, 2.702},
		{QUADesign, 6, 16, 0.153},
		{QUADesign, 6, 64, 2.247},
		{QUADesign, 8, 16, 0.182},
		{QUADesign, 8, 64, 2.714},
	}
	for _, w := range want {
		r := Evaluate(DefaultConfig(w.d, w.bits, w.n))
		if math.Abs(r.AreaMM2-w.area)/w.area > 0.12 {
			t.Errorf("%v %d-bit %dx%d area %v, paper %v (off by %.1f%%)",
				w.d, w.bits, w.n, w.n, r.AreaMM2, w.area, 100*math.Abs(r.AreaMM2-w.area)/w.area)
		}
	}
}

func TestQUQOverheadBounds(t *testing.T) {
	// Paper: "less than 5% and 10% overheads in area and power,
	// respectively, for the considered cases."
	for _, bits := range []int{6, 8} {
		for _, n := range []int{16, 64} {
			a, p := RelativeOverhead(bits, n)
			if a <= 0 || a >= 5 {
				t.Errorf("area overhead %v%% at b=%d n=%d outside (0,5)", a, bits, n)
			}
			if p <= 0 || p >= 10 {
				t.Errorf("power overhead %v%% at b=%d n=%d outside (0,10)", p, bits, n)
			}
		}
	}
}

func TestOverheadShrinksWithArraySize(t *testing.T) {
	// "Increasing the size of the PE array reduces the relative area
	// overhead" — periphery amortizes against n² PEs.
	a16, _ := RelativeOverhead(6, 16)
	a64, _ := RelativeOverhead(6, 64)
	if a64 >= a16 {
		t.Fatalf("area overhead did not shrink: 16x16 %v%%, 64x64 %v%%", a16, a64)
	}
}

func TestCrossBitSavings(t *testing.T) {
	// Paper headline: 6-bit QUQ achieves higher accuracy than 8-bit
	// BaseQ at 12.6–16.8% less area and 3.7–5.6% less power. Our band is
	// close; guard that both savings are clearly positive and the area
	// saving is in the paper's neighbourhood.
	for _, n := range []int{16, 64} {
		a, p := CrossBitSavings(n)
		if a < 10 || a > 22 {
			t.Errorf("area saving %v%% at %dx%d outside the paper neighbourhood", a, n, n)
		}
		if p <= 0 {
			t.Errorf("power saving %v%% at %dx%d not positive", p, n, n)
		}
	}
}

func TestAreaGrowsWithEverything(t *testing.T) {
	base := Evaluate(DefaultConfig(BaseQDesign, 6, 16))
	bigger := Evaluate(DefaultConfig(BaseQDesign, 6, 32))
	wider := Evaluate(DefaultConfig(BaseQDesign, 8, 16))
	qua := Evaluate(DefaultConfig(QUADesign, 6, 16))
	if bigger.AreaMM2 <= base.AreaMM2 || wider.AreaMM2 <= base.AreaMM2 || qua.AreaMM2 <= base.AreaMM2 {
		t.Fatal("area not monotone in array size / bit-width / design")
	}
}

func TestQuadraticPEScaling(t *testing.T) {
	// 64×64 has 16× the PEs of 16×16; total area grows slightly less
	// than 16× because the periphery is linear in n.
	a16 := Evaluate(DefaultConfig(BaseQDesign, 6, 16)).AreaMM2
	a64 := Evaluate(DefaultConfig(BaseQDesign, 6, 64)).AreaMM2
	ratio := a64 / a16
	if ratio >= 16 || ratio < 14 {
		t.Fatalf("area scaling ratio %v, want just below 16", ratio)
	}
}

func TestBreakdownAccountsForTotal(t *testing.T) {
	r := Evaluate(DefaultConfig(QUADesign, 8, 16))
	var gates float64
	for _, g := range r.Breakdown {
		gates += g
	}
	if got := gates * AreaPerGate / 1e6; math.Abs(got-r.AreaMM2) > 1e-9 {
		t.Fatalf("breakdown %v mm2 != total %v mm2", got, r.AreaMM2)
	}
	if _, ok := r.Breakdown["decode-units"]; !ok {
		t.Fatal("QUA breakdown missing decode units")
	}
	if r.ExtraRegBits == 0 {
		t.Fatal("QUA must report extra clocked bits (the n_sh pipeline)")
	}
	if Evaluate(DefaultConfig(BaseQDesign, 8, 16)).ExtraRegBits != 0 {
		t.Fatal("BaseQ must have no extra register bits")
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	r := Evaluate(Config{Design: BaseQDesign, Bits: 6, N: 16})
	if r.AreaMM2 <= 0 || r.PowerMW <= 0 {
		t.Fatal("zero-value AccBits/clock not defaulted")
	}
}

func TestClockScalesPower(t *testing.T) {
	c := DefaultConfig(BaseQDesign, 6, 16)
	c.ClockMHz = 1000
	fast := Evaluate(c)
	slow := Evaluate(DefaultConfig(BaseQDesign, 6, 16))
	if math.Abs(fast.PowerMW-2*slow.PowerMW) > 1e-9 {
		t.Fatalf("power did not scale with clock: %v vs %v", fast.PowerMW, slow.PowerMW)
	}
	if fast.AreaMM2 != slow.AreaMM2 {
		t.Fatal("area must not depend on clock")
	}
}

func TestTable4RowCount(t *testing.T) {
	rows := Table4()
	if len(rows) != 8 {
		t.Fatalf("Table4 has %d rows, want 8", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.Config.Design.String() + string(rune('0'+r.Config.Bits)) + string(rune('a'+r.Config.N/16))
		if seen[key] {
			t.Fatal("duplicate Table 4 row")
		}
		seen[key] = true
	}
}
