package shard

import (
	"testing"
	"time"

	"quq/internal/rng"
)

// TestRetryDelaysDeterministic pins the backoff schedule's contract:
// seed-determined, equal-jittered over a doubling base, and empty when
// retries are disabled.
func TestRetryDelaysDeterministic(t *testing.T) {
	base := 50 * time.Millisecond
	a := retryDelays(rng.New(7), base, 4)
	b := retryDelays(rng.New(7), base, 4)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("schedule lengths = %d, %d; want 4", len(a), len(b))
	}
	step := base
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delay %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < step/2 || a[i] >= step {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, a[i], step/2, step)
		}
		step *= 2
	}

	c := retryDelays(rng.New(8), base, 4)
	differs := false
	for i := range a {
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced the identical schedule")
	}

	if got := retryDelays(rng.New(7), base, 0); got != nil {
		t.Fatalf("retries=0 schedule = %v, want nil", got)
	}
	if got := retryDelays(rng.New(7), 0, 3); got != nil {
		t.Fatalf("base=0 schedule = %v, want nil", got)
	}
}

// TestRetryDelaysEqualJitterBounds sweeps attempt counts, bases and
// seeds and pins every delay inside its equal-jitter window: attempt i
// draws from [base*2^i/2, base*2^i) — a floor of half the step (an
// instant retry against a refused connection is wasted work) and a
// jittered upper half (so a fleet of front-ends sharing an outage does
// not retry in lockstep).
func TestRetryDelaysEqualJitterBounds(t *testing.T) {
	for _, base := range []time.Duration{time.Millisecond, 50 * time.Millisecond, time.Second} {
		for retries := 1; retries <= 6; retries++ {
			for seed := uint64(1); seed <= 20; seed++ {
				delays := retryDelays(rng.New(seed), base, retries)
				if len(delays) != retries {
					t.Fatalf("base=%v retries=%d: schedule length %d", base, retries, len(delays))
				}
				step := base
				for i, d := range delays {
					if lo, hi := step/2, step; d < lo || d >= hi {
						t.Fatalf("base=%v retries=%d seed=%d attempt %d: delay %v outside [%v, %v)",
							base, retries, seed, i, d, lo, hi)
					}
					step *= 2
				}
			}
		}
	}
}

// TestRetryDelaysDegenerateCallsDrawNothing: a disabled-retry call must
// not advance the shared jitter stream — with the stream consumption
// being part of the chaos determinism contract, a silent draw on the
// degenerate path would shift every schedule drawn after it.
func TestRetryDelaysDegenerateCallsDrawNothing(t *testing.T) {
	src := rng.New(7)
	retryDelays(src, 50*time.Millisecond, 0)
	retryDelays(src, 50*time.Millisecond, -1)
	retryDelays(src, 0, 3)
	want := retryDelays(rng.New(7), 50*time.Millisecond, 3)
	got := retryDelays(src, 50*time.Millisecond, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degenerate calls consumed jitter: schedule %v, want %v", got, want)
		}
	}
}
