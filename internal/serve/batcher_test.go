package serve

import (
	"context"
	"testing"
	"time"

	"quq/internal/data"
	"quq/internal/ptq"
	"quq/internal/tensor"
	"quq/internal/vit"
)

// batchModel builds one cheap quantized model for batcher tests.
func batchModel(t *testing.T) (*ptq.QuantizedModel, []*tensor.Tensor) {
	t.Helper()
	r := NewRegistry(testRegistryOptions(), nil)
	qm, _, err := r.Get(context.Background(), nanoKey("BaseQ", ptq.Partial))
	if err != nil {
		t.Fatal(err)
	}
	return qm, data.Images(vit.ViTNano, 8, 99)
}

// TestBatcherCoalesces submits items one by one under a generous linger
// and checks they dispatch as one batch, bit-identical to direct
// forwards.
func TestBatcherCoalesces(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	b := NewBatcher(BatcherOptions{MaxBatch: 8, Linger: 20 * time.Millisecond, QueueCap: 64}, met)

	var items []*Item
	for _, img := range imgs[:4] {
		got, err := b.Submit("k", qm, []*tensor.Tensor{img})
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, got...)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
		want := qm.Forward(imgs[i])
		for j, v := range it.Out.Data() {
			if v != want.Data()[j] {
				t.Fatalf("item %d differs from direct forward", i)
			}
		}
	}
	// All four items fit one linger window: a single dispatched batch.
	if n := met.BatchSize.Count(); n != 1 {
		t.Fatalf("dispatched %d batches, want 1", n)
	}
	if met.Images.Value() != 4 {
		t.Fatalf("images = %d, want 4", met.Images.Value())
	}
	if d := met.QueueDepth.Value(); d != 0 {
		t.Fatalf("queue depth after completion = %d, want 0", d)
	}
}

// TestBatcherMaxBatchFlush checks the size trigger: MaxBatch items
// dispatch immediately without waiting out the linger.
func TestBatcherMaxBatchFlush(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	// Hour-long linger: only the size trigger can flush.
	b := NewBatcher(BatcherOptions{MaxBatch: 2, Linger: time.Hour, QueueCap: 64}, met)
	items, err := b.Submit("k", qm, imgs[:4])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}
	if n := met.BatchSize.Count(); n != 2 {
		t.Fatalf("dispatched %d batches, want 2 (size-triggered)", n)
	}
}

// TestBatcherBackpressureAndDrain fills the queue under an hour-long
// linger, checks ErrQueueFull, then drains and checks the stuck items
// complete and late submits are refused.
func TestBatcherBackpressureAndDrain(t *testing.T) {
	qm, imgs := batchModel(t)
	met := NewMetrics()
	b := NewBatcher(BatcherOptions{MaxBatch: 64, Linger: time.Hour, QueueCap: 3}, met)

	items, err := b.Submit("k", qm, imgs[:3])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit("k", qm, imgs[3:4]); err != ErrQueueFull {
		t.Fatalf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
	if met.Rejected.Value() != 1 {
		t.Fatalf("rejected = %d, want 1", met.Rejected.Value())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := Await(ctx, items); err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Err != nil || it.Out == nil {
			t.Fatalf("drained item incomplete: out=%v err=%v", it.Out, it.Err)
		}
	}
	if _, err := b.Submit("k", qm, imgs[:1]); err != ErrDraining {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
}

// TestAwaitTimeout: Await must respect an expired context while workers
// finish in the background.
func TestAwaitTimeout(t *testing.T) {
	qm, imgs := batchModel(t)
	b := NewBatcher(BatcherOptions{MaxBatch: 64, Linger: time.Hour, QueueCap: 8}, nil)
	items, err := b.Submit("k", qm, imgs[:1])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Await(ctx, items); err != context.Canceled {
		t.Fatalf("Await on cancelled ctx = %v, want context.Canceled", err)
	}
	// Drain still completes the work.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := b.Drain(dctx); err != nil {
		t.Fatal(err)
	}
}
