package experiments

import (
	"fmt"
	"strings"

	"quq/internal/ptq"
	"quq/internal/quant"
)

// AblationAccRow reports fully-quantized top-1 for one QUQ configuration
// variant — the accuracy-level counterpart of the MSE ablations, run on
// one model.
type AblationAccRow struct {
	Name string
	Acc  float64
}

// AblationAccuracy quantizes the given zoo model at the given bit-width
// (full quantization) under several PRA/refinement variants and reports
// top-1 for each. It isolates how much each design choice of §3.3
// contributes to end accuracy.
func AblationAccuracy(zm *ZooModel, bits int) ([]AblationAccRow, error) {
	type variant struct {
		name string
		meth ptq.Method
	}
	mk := func(mod func(*ptq.QUQMethod)) *ptq.QUQMethod {
		m := ptq.NewQUQ()
		mod(m)
		return m
	}
	variants := []variant{
		{"QUQ (paper defaults)", ptq.NewQUQ()},
		{"mode switching disabled", mk(func(m *ptq.QUQMethod) { m.PRA.DisableModeSwitch = true })},
		{"grid search disabled", mk(func(m *ptq.QUQMethod) { m.Refine = quant.RefineOptions{} })},
		{"λ_A=16", mk(func(m *ptq.QUQMethod) { m.PRA.LambdaA = 16 })},
		{"q=0.9", mk(func(m *ptq.QUQMethod) { m.PRA.QInit = 0.9; m.PRA.QAccept = 0.88 })},
	}
	var rows []AblationAccRow
	for _, v := range variants {
		qm, err := ptq.Quantize(zm.Model, v.meth, ptq.CalibOptions{
			Bits:   bits,
			Regime: ptq.Full,
			Images: zm.Calib,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation accuracy (%s): %w", v.name, err)
		}
		rows = append(rows, AblationAccRow{
			Name: v.name,
			Acc:  ptq.Accuracy(qm, zm.Images, zm.Labels),
		})
	}
	return rows, nil
}

// FormatAblationAcc renders the rows.
func FormatAblationAcc(model string, bits int, rows []AblationAccRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fully quantized %d-bit top-1 on %s under QUQ variants:\n", bits, model)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %s\n", r.Name, Pct(r.Acc))
	}
	return b.String()
}
