package experiments

import (
	"fmt"
	"strings"

	"quq/internal/dist"
)

// The CSV emitters produce plotting-friendly files for the figures (and
// Table 1), so the paper's plots can be regenerated with any tool.
// cmd/quq writes them next to the text output when -csv is set.

// CSVTable1 renders the MSE rows as CSV.
func CSVTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("method,bits")
	for _, fam := range dist.Families {
		fmt.Fprintf(&b, ",%s", csvEscape(fam.String()))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d", r.Method, r.Bits)
		for _, m := range r.MSE {
			fmt.Fprintf(&b, ",%e", m)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVAccuracy renders Table 2/3 rows as CSV.
func CSVAccuracy(zoo []*ZooModel, rows []AccuracyRow) string {
	var b strings.Builder
	b.WriteString("method,wa")
	for _, zm := range zoo {
		fmt.Fprintf(&b, ",%s", csvEscape(zm.Cfg.Name))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s", csvEscape(r.Method), r.WA)
		for _, zm := range zoo {
			fmt.Fprintf(&b, ",%.4f", 100*r.Acc[zm.Cfg.Name])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVFig2 renders the memory sweep as CSV.
func CSVFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("model,batch,pq_bytes,fq_bytes,overhead_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%.2f\n", csvEscape(r.Model), r.Batch, r.PQBytes, r.FQBytes, 100*r.Overhead)
	}
	return b.String()
}

// CSVFig3 renders one panel's histogram and quantization points: two
// sections, "bin_center,count" then "point".
func CSVFig3(p Fig3Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# family=%s mode=%v\n", p.Family, p.Mode)
	b.WriteString("bin_center,count\n")
	for i, c := range p.Counts {
		center := (p.Edges[i] + p.Edges[i+1]) / 2
		fmt.Fprintf(&b, "%g,%d\n", center, c)
	}
	b.WriteString("point\n")
	for _, pt := range p.Points {
		fmt.Fprintf(&b, "%g\n", pt)
	}
	return b.String()
}

// CSVFig7 renders the retention rows as CSV.
func CSVFig7(r Fig7Result) string {
	var b strings.Builder
	b.WriteString("method,wa,retention\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%.6f\n", csvEscape(row.Method), row.WA, row.Retention)
	}
	return b.String()
}

// csvEscape guards names containing commas or quotes (none of ours do,
// but the emitters should not silently corrupt output if that changes).
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
