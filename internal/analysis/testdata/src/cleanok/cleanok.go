// Package cleanok is a corpus that every analyzer must stay silent on:
// documented, integer-only, panic-free, error-propagating, directive-free
// code. The fixture meta-test uses it as the passing corpus for
// analyzers whose failing fixtures have no dedicated conforming twin.
package cleanok

import "errors"

// Scale multiplies by a power-of-two factor via shifting and reports
// overflow as an error.
func Scale(x int32, shift uint) (int32, error) {
	if shift >= 31 {
		return 0, errors.New("cleanok: shift out of range")
	}
	return x << shift, nil
}

// Sum folds a slice with pure integer arithmetic.
func Sum(xs []int32) int64 {
	var acc int64
	for _, x := range xs {
		acc += int64(x)
	}
	return acc
}
