//go:build !race

package quq_test

// raceEnabled mirrors the runtime's race-detector flag so tests that
// depend on allocation behavior can skip under -race (the detector
// deliberately drops sync.Pool reuse to widen the race surface, which
// inflates allocs/op far past the steady-state budget).
const raceEnabled = false
