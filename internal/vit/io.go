package vit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// The checkpoint format is a small self-describing binary container:
// a magic string, the parameter count, then (name, length, float64 data)
// records in the model's stable Params order. Only parameter *values*
// travel; the architecture comes from the Config the caller supplies at
// load time, which keeps the format trivial and version-stable.

const checkpointMagic = "QUQVIT01"

// Save writes the model's parameters to w.
func Save(m Model, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	var entries []struct {
		name string
		data []float64
	}
	m.Params(func(name string, data []float64) {
		entries = append(entries, struct {
			name string
			data []float64
		}{name, data})
	})
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(e.name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(e.name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(e.data))); err != nil {
			return err
		}
		buf := make([]byte, 8)
		for _, v := range e.data {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads parameters from r into a freshly allocated model for cfg.
// The checkpoint's parameter names and sizes must match cfg's layout
// exactly.
func Load(cfg Config, r io.Reader) (Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vit: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("vit: bad checkpoint magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	params := make(map[string][]float64, count)
	order := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("vit: implausible parameter name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		var dataLen uint64
		if err := binary.Read(br, binary.LittleEndian, &dataLen); err != nil {
			return nil, err
		}
		if dataLen > 1<<28 {
			return nil, fmt.Errorf("vit: implausible parameter size %d", dataLen)
		}
		data := make([]float64, dataLen)
		buf := make([]byte, 8)
		for j := range data {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			data[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		name := string(nameBuf)
		params[name] = data
		order = append(order, name)
	}

	var m Model
	if cfg.Variant == VariantSwin {
		m = newSwin(cfg)
	} else {
		m = newViT(cfg)
	}
	var loadErr error
	seen := 0
	m.Params(func(name string, dst []float64) {
		src, ok := params[name]
		if !ok {
			if loadErr == nil {
				loadErr = fmt.Errorf("vit: checkpoint missing parameter %q", name)
			}
			return
		}
		if len(src) != len(dst) {
			if loadErr == nil {
				loadErr = fmt.Errorf("vit: parameter %q has %d values, model wants %d", name, len(src), len(dst))
			}
			return
		}
		copy(dst, src)
		seen++
	})
	if loadErr != nil {
		return nil, loadErr
	}
	if seen != len(order) {
		return nil, fmt.Errorf("vit: checkpoint has %d parameters, model consumed %d", len(order), seen)
	}
	return m, nil
}

// SaveFile writes the model to path.
func SaveFile(m Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(m, f); err != nil {
		//quq:errdrop-ok already on the Save error path; the write error is the one worth reporting
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model for cfg from path.
func LoadFile(cfg Config, path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//quq:errdrop-ok read-only file: a Close error cannot lose data, and Load's own error dominates
	defer f.Close()
	return Load(cfg, f)
}
