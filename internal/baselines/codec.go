package baselines

import (
	"encoding/binary"
	"fmt"
	"math"

	"quq/internal/ptq"
)

// Wire tags for the baseline activation quantizers. Like the ptq tags
// they are part of the on-disk snapshot format: frozen, never reused.
const (
	tagAffine      = "apq-affine"
	tagBiScaled    = "biscaled"
	tagLog2        = "fqvit-log2"
	tagPTF         = "fqvit-ptf"
	tagTwinSoftmax = "ptq4vit-softmax"
	tagTwinGELU    = "ptq4vit-gelu"
)

// bitsOK bounds a decoded bit width so Apply's 1<<(bits-1) shifts cannot
// panic or overflow; calibrated models use single-digit widths.
func bitsOK(bits int) bool { return bits >= 1 && bits <= 62 }

// MarshalQuantizer implements ptq.QuantizerCodec.
func (a affineQuantizer) MarshalQuantizer() (string, []byte, error) {
	buf := make([]byte, 0, 20)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.scale))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.zp))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.bits))
	return tagAffine, buf, nil
}

// MarshalQuantizer implements ptq.QuantizerCodec.
func (b biScaledQuantizer) MarshalQuantizer() (string, []byte, error) {
	buf := make([]byte, 0, 20+len(b.outlierChan))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.fineDelta))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(b.ratioLog))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(b.bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.outlierChan)))
	for _, o := range b.outlierChan {
		if o {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return tagBiScaled, buf, nil
}

// MarshalQuantizer implements ptq.QuantizerCodec.
func (l log2Quantizer) MarshalQuantizer() (string, []byte, error) {
	buf := make([]byte, 0, 4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.bits))
	return tagLog2, buf, nil
}

// MarshalQuantizer implements ptq.QuantizerCodec.
func (p ptfQuantizer) MarshalQuantizer() (string, []byte, error) {
	buf := make([]byte, 0, 16+4*len(p.shifts))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.delta))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.shifts)))
	for _, s := range p.shifts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(s)))
	}
	return tagPTF, buf, nil
}

// MarshalQuantizer implements ptq.QuantizerCodec.
func (t twinSoftmaxQuantizer) MarshalQuantizer() (string, []byte, error) {
	buf := make([]byte, 0, 8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.bits))
	return tagTwinSoftmax, buf, nil
}

// MarshalQuantizer implements ptq.QuantizerCodec.
func (t twinGELUQuantizer) MarshalQuantizer() (string, []byte, error) {
	buf := make([]byte, 0, 20)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.dNeg))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.dPos))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.bits))
	return tagTwinGELU, buf, nil
}

// UnmarshalQuantizer reverses MarshalQuantizer for the tags this package
// owns, keeping the baseline quantizer types unexported. ok=false means
// the tag is not a baselines tag; err!=nil means the tag matched but the
// payload is structurally invalid (lengths, bit widths and shift
// exponents are bounds-checked so Apply cannot panic on decoded state).
func UnmarshalQuantizer(tag string, data []byte) (q ptq.TensorQuantizer, ok bool, err error) {
	switch tag {
	case tagAffine:
		if len(data) != 20 {
			return nil, true, fmt.Errorf("baselines: affine encoding is %d bytes, want 20", len(data))
		}
		a := affineQuantizer{
			scale: math.Float64frombits(binary.LittleEndian.Uint64(data[0:8])),
			zp:    int64(binary.LittleEndian.Uint64(data[8:16])),
			bits:  int(binary.LittleEndian.Uint32(data[16:20])),
		}
		if !bitsOK(a.bits) {
			return nil, true, fmt.Errorf("baselines: affine bits %d out of range", a.bits)
		}
		return a, true, nil
	case tagBiScaled:
		if len(data) < 20 {
			return nil, true, fmt.Errorf("baselines: biscaled encoding is %d bytes, want >= 20", len(data))
		}
		b := biScaledQuantizer{
			fineDelta: math.Float64frombits(binary.LittleEndian.Uint64(data[0:8])),
			ratioLog:  int(binary.LittleEndian.Uint32(data[8:12])),
			bits:      int(binary.LittleEndian.Uint32(data[12:16])),
		}
		n := int(binary.LittleEndian.Uint32(data[16:20]))
		if len(data) != 20+n {
			return nil, true, fmt.Errorf("baselines: biscaled channel table is %d bytes, want %d", len(data)-20, n)
		}
		if !bitsOK(b.bits) || b.ratioLog < 0 || b.ratioLog > 62 {
			return nil, true, fmt.Errorf("baselines: biscaled bits %d / ratioLog %d out of range", b.bits, b.ratioLog)
		}
		b.outlierChan = make([]bool, n)
		for i := 0; i < n; i++ {
			switch data[20+i] {
			case 0:
			case 1:
				b.outlierChan[i] = true
			default:
				return nil, true, fmt.Errorf("baselines: biscaled channel byte %d is %d, want 0 or 1", i, data[20+i])
			}
		}
		return b, true, nil
	case tagLog2:
		if len(data) != 4 {
			return nil, true, fmt.Errorf("baselines: log2 encoding is %d bytes, want 4", len(data))
		}
		l := log2Quantizer{bits: int(binary.LittleEndian.Uint32(data))}
		if !bitsOK(l.bits) {
			return nil, true, fmt.Errorf("baselines: log2 bits %d out of range", l.bits)
		}
		return l, true, nil
	case tagPTF:
		if len(data) < 16 {
			return nil, true, fmt.Errorf("baselines: ptf encoding is %d bytes, want >= 16", len(data))
		}
		p := ptfQuantizer{
			delta: math.Float64frombits(binary.LittleEndian.Uint64(data[0:8])),
			bits:  int(binary.LittleEndian.Uint32(data[8:12])),
		}
		n := int(binary.LittleEndian.Uint32(data[12:16]))
		if len(data) != 16+4*n {
			return nil, true, fmt.Errorf("baselines: ptf shift table is %d bytes, want %d", len(data)-16, 4*n)
		}
		if !bitsOK(p.bits) {
			return nil, true, fmt.Errorf("baselines: ptf bits %d out of range", p.bits)
		}
		p.shifts = make([]int, n)
		for i := 0; i < n; i++ {
			s := int(int32(binary.LittleEndian.Uint32(data[16+4*i : 20+4*i])))
			if s < 0 || s > 62 {
				return nil, true, fmt.Errorf("baselines: ptf shift %d out of range", s)
			}
			p.shifts[i] = s
		}
		return p, true, nil
	case tagTwinSoftmax:
		if len(data) != 8 {
			return nil, true, fmt.Errorf("baselines: twin-softmax encoding is %d bytes, want 8", len(data))
		}
		t := twinSoftmaxQuantizer{
			k:    int(binary.LittleEndian.Uint32(data[0:4])),
			bits: int(binary.LittleEndian.Uint32(data[4:8])),
		}
		if !bitsOK(t.bits) || t.k < 0 || t.k > 62 {
			return nil, true, fmt.Errorf("baselines: twin-softmax bits %d / k %d out of range", t.bits, t.k)
		}
		return t, true, nil
	case tagTwinGELU:
		if len(data) != 20 {
			return nil, true, fmt.Errorf("baselines: twin-gelu encoding is %d bytes, want 20", len(data))
		}
		t := twinGELUQuantizer{
			dNeg: math.Float64frombits(binary.LittleEndian.Uint64(data[0:8])),
			dPos: math.Float64frombits(binary.LittleEndian.Uint64(data[8:16])),
			bits: int(binary.LittleEndian.Uint32(data[16:20])),
		}
		if !bitsOK(t.bits) {
			return nil, true, fmt.Errorf("baselines: twin-gelu bits %d out of range", t.bits)
		}
		return t, true, nil
	}
	return nil, false, nil
}
