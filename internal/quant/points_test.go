package quant

import (
	"sort"
	"testing"

	"quq/internal/dist"
	"quq/internal/rng"
)

// enumeratePoints lists the distinct representable values of p.
func enumeratePoints(p *Params) []float64 {
	seen := map[float64]bool{0: true}
	for _, s := range []Slot{FNeg, FPos, CNeg, CPos} {
		sp := p.Slot(s)
		if !sp.Enabled {
			continue
		}
		for m := int64(1); m <= sp.MaxMag; m++ {
			v := float64(m) * sp.Delta
			if s.Negative() {
				v = -v
			}
			seen[v] = true
		}
	}
	pts := make([]float64, 0, len(seen))
	for v := range seen {
		pts = append(pts, v)
	}
	sort.Float64s(pts)
	return pts
}

// TestEncodingSpaceAccounting verifies the paper's code-space arithmetic:
// a b-bit QUQ quantizer never has more than 2^b representable points
// (subrange overlap can only *reduce* the distinct count, the encoding
// inefficiency §3.2 accepts), and never fewer than 2^(b-1) (each side's
// space is at least half used for any calibrated tensor).
func TestEncodingSpaceAccounting(t *testing.T) {
	for _, fam := range dist.Families {
		xs := dist.Sample(fam, 1<<13, rng.New(7))
		for _, bits := range []int{4, 6, 8} {
			p := PRA(xs, bits, DefaultPRAOptions())
			pts := enumeratePoints(p)
			max := 1 << bits
			if len(pts) > max+1 { // +1: the shared zero
				t.Errorf("%v b=%d: %d points exceed the %d-code space", fam, bits, len(pts), max)
			}
			if len(pts) < max/4 {
				t.Errorf("%v b=%d: only %d points — encoding space badly wasted", fam, bits, len(pts))
			}
		}
	}
}

// TestQuantizeMapsToRepresentablePoints: every quantized value must be
// one of the enumerated points.
func TestQuantizeMapsToRepresentablePoints(t *testing.T) {
	src := rng.New(8)
	for _, fam := range dist.Families {
		xs := dist.Sample(fam, 1<<12, rng.New(9))
		p := PRA(xs, 6, DefaultPRAOptions())
		pts := map[float64]bool{}
		for _, v := range enumeratePoints(p) {
			pts[v] = true
		}
		for i := 0; i < 3000; i++ {
			v := p.Value(src.Gauss(0, 3))
			if !pts[v] {
				t.Fatalf("%v: quantized value %v is not a representable point", fam, v)
			}
		}
	}
}

// TestValueIsIdempotent: quantizing an already-quantized value must be a
// fixed point of the quantizer.
func TestValueIsIdempotent(t *testing.T) {
	src := rng.New(10)
	for _, fam := range dist.Families {
		xs := dist.Sample(fam, 1<<12, rng.New(11))
		for _, bits := range []int{4, 6, 8} {
			p := PRA(xs, bits, DefaultPRAOptions())
			for i := 0; i < 2000; i++ {
				v := p.Value(src.Laplace(2))
				if got := p.Value(v); got != v {
					t.Fatalf("%v b=%d: Value(Value(x))=%v != Value(x)=%v", fam, bits, got, v)
				}
			}
		}
	}
}

// TestQuantizeSymmetryOfUniformCase: the uniform special case must treat
// +x and −x symmetrically apart from the two's-complement extra negative
// code.
func TestQuantizeSymmetryOfUniformCase(t *testing.T) {
	p := ParamsForUniform(0.25, 6)
	src := rng.New(12)
	for i := 0; i < 4000; i++ {
		x := src.Uniform(0, 7) // within the positive range
		pos := p.Value(x)
		neg := p.Value(-x)
		if pos != -neg {
			t.Fatalf("asymmetry at %v: %v vs %v", x, pos, neg)
		}
	}
}
