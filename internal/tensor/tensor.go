// Package tensor implements the dense numerical arrays that every other
// package in this repository builds on: the vision-transformer inference
// stack, the quantizers, the PTQ pipeline and the accelerator simulator.
//
// Tensors are row-major float64 with an explicit shape. The package favours
// predictable, allocation-conscious code over generality: it supports the
// operations a transformer forward/backward pass needs (GEMM, transpose,
// broadcasting over the leading axis, reductions, quantiles) and nothing
// else. All operations are deterministic.
package tensor

import (
	"fmt"
	"math"
	"quq/internal/check"
	"sort"
)

// Tensor is a dense row-major float64 array. The zero value is an empty
// tensor; use New, FromSlice or Zeros to construct one.
type Tensor struct {
	shape []int
	data  []float64
}

// New creates a zero-filled tensor with the given shape. A scalar is
// represented by an empty shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(check.Invariantf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// Zeros is an alias for New, provided for readability at call sites that
// contrast zero-filled allocations with randomized ones.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly prod(shape) elements.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(check.Invariantf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The caller must not modify the
// returned slice.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape of the same total size.
// The view shares storage with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(check.Invariantf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(check.Invariantf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(check.Invariantf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Row returns a view of row i of a rank-2 tensor.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(check.Invariant("tensor: Row requires a rank-2 tensor"))
	}
	cols := t.shape[1]
	return t.data[i*cols : (i+1)*cols]
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Apply replaces every element x with f(x) and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	return t.Clone().Apply(f)
}

// Scale multiplies every element by s in place and returns t.
func (t *Tensor) Scale(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddInPlace adds o elementwise into t and returns t. Shapes must match.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.assertSameShape(o, "AddInPlace")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// Add returns t + o as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor {
	return AddInto(New(t.shape...), t, o)
}

// Sub returns t - o as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.assertSameShape(o, "Sub")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] -= v
	}
	return r
}

// Mul returns the elementwise (Hadamard) product of t and o.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.assertSameShape(o, "Mul")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] *= v
	}
	return r
}

// AddRowVector adds a length-cols vector to every row of a rank-2 tensor,
// in place, and returns t. This is the bias-add used by linear layers.
func (t *Tensor) AddRowVector(v []float64) *Tensor {
	if len(t.shape) != 2 {
		panic(check.Invariant("tensor: AddRowVector requires a rank-2 tensor"))
	}
	rows, cols := t.shape[0], t.shape[1]
	if len(v) != cols {
		panic(check.Invariantf("tensor: vector length %d does not match %d columns", len(v), cols))
	}
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += v[c]
		}
	}
	return t
}

func (t *Tensor) assertSameShape(o *Tensor, op string) {
	if len(t.shape) != len(o.shape) {
		panic(check.Invariantf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			panic(check.Invariantf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
		}
	}
}

// MatMul returns the matrix product a @ b for rank-2 tensors
// (m×k) @ (k×n) -> (m×n), allocating the result. It runs on the blocked,
// register-tiled kernel in gemm.go; results are bit-identical to the
// reference scalar loops (MatMulRef) for finite inputs. Hot paths should
// use MatMulInto with arena-backed storage instead.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := matMulDims(a, b, "MatMul")
	return MatMulInto(New(m, n), a, b)
}

// MatMulT returns a @ bᵀ for rank-2 tensors (m×k) @ (n×k)ᵀ -> (m×n),
// allocating the result. Attention scores (Q @ Kᵀ) use this form;
// computing against the untransposed b keeps both operands streaming
// row-major. See MatMul for the kernel and determinism notes.
func MatMulT(a, b *Tensor) *Tensor {
	m, _, n := matMulTDims(a, b, "MatMulT")
	return MatMulTInto(New(m, n), a, b)
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func (t *Tensor) Transpose() *Tensor {
	if len(t.shape) != 2 {
		panic(check.Invariant("tensor: Transpose requires a rank-2 tensor"))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// Min returns the smallest element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	t.assertNonEmpty("Min")
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	t.assertNonEmpty("Max")
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AbsMax returns max(|x|) over all elements. It panics on an empty tensor.
func (t *Tensor) AbsMax() float64 {
	t.assertNonEmpty("AbsMax")
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 {
	n := len(t.data)
	if n == 0 {
		return 0
	}
	mean := t.Mean()
	var ss float64
	for _, v := range t.data {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (t *Tensor) assertNonEmpty(op string) {
	if len(t.data) == 0 {
		panic(check.Invariantf("tensor: %s on empty tensor", op))
	}
}

// MSE returns the mean squared error between t and o.
func MSE(t, o *Tensor) float64 {
	t.assertSameShape(o, "MSE")
	if len(t.data) == 0 {
		return 0
	}
	var s float64
	for i, v := range t.data {
		d := v - o.data[i]
		s += d * d
	}
	return s / float64(len(t.data))
}

// CosineSimilarity returns the cosine similarity of the two tensors viewed
// as flat vectors, or 0 if either has zero norm.
func CosineSimilarity(a, b *Tensor) float64 {
	a.assertSameShape(b, "CosineSimilarity")
	var dot, na, nb float64
	for i, v := range a.data {
		w := b.data[i]
		dot += v * w
		na += v * v
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the elements using
// linear interpolation between order statistics, matching the Quantile
// operator in the QUQ paper's Algorithm 2. It panics on an empty tensor.
func (t *Tensor) Quantile(q float64) float64 {
	return Quantile(t.data, q)
}

// Quantile returns the q-th linear-interpolation quantile of xs.
// It panics if xs is empty or q is outside [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(check.Invariant("tensor: Quantile of empty data"))
	}
	if q < 0 || q > 1 {
		panic(check.Invariantf("tensor: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ArgMax returns the index of the largest element of a flat view of t.
func (t *Tensor) ArgMax() int {
	t.assertNonEmpty("ArgMax")
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Split returns the positive elements and the negated negative elements of
// t, i.e. (−x[x<0], x[x>0]) from the paper's Algorithm 2 line 3. Zeros are
// excluded from both, as in the paper.
func (t *Tensor) Split() (neg, pos []float64) {
	for _, v := range t.data {
		switch {
		case v > 0:
			pos = append(pos, v)
		case v < 0:
			neg = append(neg, -v)
		}
	}
	return neg, pos
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v{n=%d, min=%.4g, max=%.4g, mean=%.4g, std=%.4g}",
		t.shape, len(t.data), t.Min(), t.Max(), t.Mean(), t.Std())
}
