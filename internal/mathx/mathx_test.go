package mathx

import (
	"math"
	"testing"
)

func TestGeluKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{1, 0.841345},
		{-1, -0.158655},
		{3, 2.995950},
		{-3, -0.004050},
	}
	for _, c := range cases {
		if got := Gelu(c.x); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Gelu(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestGeluLowerBound(t *testing.T) {
	// min GELU ≈ −0.17 at x ≈ −0.7518.
	for x := -6.0; x <= 6.0; x += 0.001 {
		if g := Gelu(x); g < -0.17001 {
			t.Fatalf("Gelu(%v) = %v below the analytic minimum", x, g)
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	SoftmaxInPlace(xs)
	var sum float64
	for i, v := range xs {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax[%d] = %v outside (0,1)", i, v)
		}
		sum += v
		if i > 0 && xs[i] <= xs[i-1] {
			t.Fatal("softmax not monotone in its inputs")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestSoftmaxStability(t *testing.T) {
	xs := []float64{1000, 1001, 1002}
	SoftmaxInPlace(xs)
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", xs)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := []float64{0.3, -1.2, 2.5}
	b := []float64{0.3 + 7, -1.2 + 7, 2.5 + 7}
	SoftmaxInPlace(a)
	SoftmaxInPlace(b)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("softmax not shift invariant at %d", i)
		}
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	SoftmaxInPlace(nil) // must not panic
}

func TestIsPow2Ratio(t *testing.T) {
	if !IsPow2Ratio(8, 2) || !IsPow2Ratio(0.25, 0.25) || !IsPow2Ratio(1, 0.125) {
		t.Error("valid power-of-two ratios rejected")
	}
	if IsPow2Ratio(3, 2) || IsPow2Ratio(0, 1) || IsPow2Ratio(-4, 2) {
		t.Error("invalid ratios accepted")
	}
}

func TestLog2Int(t *testing.T) {
	cases := map[int64]int{1: 0, 2: 1, 1024: 10, 3: -1, 0: -1, -8: -1, 6: -1}
	for v, want := range cases {
		if got := Log2Int(v); got != want {
			t.Errorf("Log2Int(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-5, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
	if ClampInt(5, -2, 3) != 3 || ClampInt(-5, -2, 3) != -2 || ClampInt(1, -2, 3) != 1 {
		t.Error("ClampInt wrong")
	}
}
